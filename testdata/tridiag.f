C     Triangular update (cyclic schedule) plus a serial recurrence.
      PROGRAM TRI
      INTEGER N
      PARAMETER (N = 24)
      REAL A(N,N), D(N)
      INTEGER I, J
      DO I = 1, N
        DO J = 1, N
          A(I,J) = 0.0
        ENDDO
        D(I) = REAL(I)
      ENDDO
      DO I = 1, N
        DO J = I, N
          A(J,I) = REAL(I) + REAL(J) * 0.5
        ENDDO
      ENDDO
      DO I = 2, N
        D(I) = D(I) + D(I-1) * 0.5
      ENDDO
      PRINT *, A(N,1), D(N)
      END
