C     Dot product with a sum reduction over common-block vectors.
      PROGRAM DOT
      INTEGER N
      PARAMETER (N = 1000)
      REAL X(N), Y(N), S
      COMMON /VECS/ X, Y
      INTEGER I
      CALL FILL
      S = 0.0
      DO I = 1, N
        S = S + X(I) * Y(I)
      ENDDO
      PRINT *, 'DOT', S
      END

      SUBROUTINE FILL
      INTEGER N, I
      PARAMETER (N = 1000)
      REAL X(N), Y(N)
      COMMON /VECS/ X, Y
      DO I = 1, N
        X(I) = REAL(I) * 0.001
        Y(I) = REAL(N - I + 1) * 0.001
      ENDDO
      END
