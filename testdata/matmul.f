C     Matrix multiplication (the paper's MM benchmark shape) at a size
C     small enough for CI smoke runs. The parallel I loop partitions
C     rows; column-major storage makes each processor's regions strided,
C     exercising both transfer paths under fault injection.
      PROGRAM MM
      INTEGER N
      PARAMETER (N = 24)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I+J) / REAL(N)
          B(I,J) = REAL(I-J) / REAL(N)
          C(I,J) = 0.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      PRINT *, C(1,1), C(N,N)
      END
