C     Jacobi relaxation: two parallel sweeps per iteration, ping-pong
C     buffers, convergence via a MAX reduction.
      PROGRAM JACOBI
      INTEGER N
      PARAMETER (N = 48)
      REAL U(N,N), V(N,N), DIFF
      INTEGER I, J
      DO I = 1, N
        DO J = 1, N
          U(I,J) = 0.0
          V(I,J) = 0.0
        ENDDO
      ENDDO
      DO I = 1, N
        U(I,1) = 100.0
        U(I,N) = 100.0
        V(I,1) = 100.0
        V(I,N) = 100.0
      ENDDO
      DO I = 2, N-1
        DO J = 2, N-1
          V(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
        ENDDO
      ENDDO
      DO I = 2, N-1
        DO J = 2, N-1
          U(I,J) = 0.25 * (V(I-1,J) + V(I+1,J) + V(I,J-1) + V(I,J+1))
        ENDDO
      ENDDO
      DIFF = 0.0
      DO I = 2, N-1
        DO J = 2, N-1
          DIFF = MAX(DIFF, ABS(U(I,J) - V(I,J)))
        ENDDO
      ENDDO
      PRINT *, 'DIFF', DIFF
      END
