      PROGRAM STRIDE
C     Stride-3 read-modify-write kernel: every planned transfer of the
C     update region is strided, so with -coalesce the transfers past
C     the fabric's pack crossover travel as packed DMA bursts (put.p /
C     get.p on the pack transport class). The CI coalesce-smoke target
C     runs this under -coalesce -trace and validates the exported
C     timeline with vbtrace.
      INTEGER N, S
      PARAMETER (N = 512, S = 3)
      REAL W(S*N)
      INTEGER I
      DO I = 1, S*N
        W(I) = 0.0
      ENDDO
      DO I = 1, N
        W(S*I - S + 1) = W(S*I - S + 1) + 0.5
      ENDDO
      PRINT *, W(1), W(S*N - S + 1)
      END
