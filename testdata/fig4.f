C     The paper's Figure 4 access pattern: REAL A(14,*) with a triply
C     nested loop and strides {364,14,3}.
      PROGRAM FIG4
      REAL A(14,60)
      INTEGER I, J, K
      DO I = 1, 14
        DO J = 1, 60
          A(I,J) = 0.0
        ENDDO
      ENDDO
      CALL TOUCH(A)
      PRINT *, A(1,1), A(4,1)
      END

      SUBROUTINE TOUCH(A)
      REAL A(14,*)
      INTEGER I, J, K
      DO I = 1, 2
        DO J = 1, 2
          DO K = 1, 10, 3
            A(K, J+26*(I-1)) = REAL(K + 100*J + 10000*I)
          ENDDO
        ENDDO
      ENDDO
      END
