// Command vbserve runs the simulated V-Bus PC-cluster as a long-lived
// compile-and-run service. Clients POST Fortran 77 jobs as JSON; the
// daemon compiles each distinct (program, options) pair once, caches
// the compiled plan in an LRU, and executes jobs over a fixed pool of
// simulated clusters with per-tenant weighted fair scheduling and
// explicit load shedding.
//
// Usage:
//
//	vbserve [-addr :8077] [-clusters N] [-queue D] [-cache P] [-workers W] [-fabric vbus|vbus3d|ethernet|ideal]
//	        [-cache-journal F] [-default-deadline D] [-max-deadline D] [-retries N] [-rate R] [-burst B]
//	        [-peers a:p,b:p,c:p -self a:p] [-gossip-interval D]
//
// Endpoints:
//
//	POST   /v1/jobs            submit a job (?wait=1 blocks until done)
//	GET    /v1/jobs/{id}       job record
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/jobs/{id}/trace Chrome trace-event JSON (jobs with "trace": true)
//	GET    /metrics            throughput, cache hit rate, queue depth, latency quantiles
//	GET    /healthz/live       200 while the process serves at all
//	GET    /healthz/ready      200 serving / 503 draining (alias: /healthz)
//
// A saturated queue or an exhausted per-tenant token bucket answers
// 429 with a load-aware Retry-After estimate. SIGTERM or SIGINT starts
// a graceful drain: admission stops, every admitted job finishes, the
// plan cache is journaled to -cache-journal (if set), then the process
// exits 0. On the next boot the journal is replayed — each cached plan
// recompiled — so a restarted daemon starts warm.
//
// With -peers (a comma-separated member list including -self) the
// daemon joins a vbserve federation: plan keys live on a consistent-
// hash ring, submissions are forwarded to their key's owner (so each
// program compiles once cluster-wide), a heartbeat failure detector
// routes around dead peers with bounded failover, and a graceful exit
// hands the plan cache's working set to each key's new owner. Peer
// endpoints: GET /v1/peer/health, GET /v1/peer/ring, POST
// /v1/peer/handoff. A lone or partitioned peer degrades to local
// compilation — never an error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vbuscluster/internal/cliutil"
	"vbuscluster/internal/jobs"
	_ "vbuscluster/internal/nic" // register the vbus and ethernet backends
	"vbuscluster/internal/peer"
)

func main() {
	addr := flag.String("addr", ":8077", "HTTP listen address")
	clusters := flag.Int("clusters", 2, "concurrent simulated clusters (job workers)")
	queueDepth := flag.Int("queue", 64, "admission queue depth; beyond it submissions shed with 429")
	cacheEntries := flag.Int("cache", 32, "compiled-plan LRU capacity")
	workers := flag.Int("workers", 0, "per-run rank scheduler pool size (0 = GOMAXPROCS)")
	fabric := flag.String("fabric", "", cliutil.FabricFlagUsage("default interconnect backend for jobs that omit one: "))
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "maximum time to wait for in-flight jobs on shutdown")
	journal := flag.String("cache-journal", "", "plan-cache journal file: replayed on boot, written on drain (empty = no persistence)")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline for jobs that omit deadline_ms (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on any job deadline, including requested ones (0 = no cap)")
	retries := flag.Int("retries", 2, "retry budget for transiently failed jobs")
	rate := flag.Float64("rate", 0, "per-tenant admission rate limit in jobs/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "token-bucket burst per tenant (0 = 2x rate)")
	peers := flag.String("peers", "", "comma-separated federation member list (host:port, including -self); empty = standalone")
	self := flag.String("self", "", "this node's address in -peers (required with -peers)")
	gossip := flag.Duration("gossip-interval", 500*time.Millisecond, "peer heartbeat period (suspect after 3x, dead after 8x)")
	flag.Parse()

	check(cliutil.ValidateFabric(*fabric))
	if *clusters < 1 {
		check(fmt.Errorf("-clusters must be at least 1"))
	}
	if *queueDepth < 1 {
		check(fmt.Errorf("-queue must be at least 1"))
	}

	srv := jobs.New(jobs.Config{
		Clusters:        *clusters,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		RankWorkers:     *workers,
		DefaultFabric:   *fabric,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		MaxRetries:      *retries,
		RatePerSec:      *rate,
		RateBurst:       *burst,
	})
	if *journal != "" {
		warmed, err := srv.WarmCache(*journal)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vbserve: cache journal ignored: %v\n", err)
		} else if warmed > 0 {
			fmt.Fprintf(os.Stderr, "vbserve: warmed %d plans from %s\n", warmed, *journal)
		}
	}
	handler := srv.Handler()
	var node *peer.Node
	if *peers != "" {
		if *self == "" {
			check(fmt.Errorf("-self is required with -peers"))
		}
		var members []string
		for _, m := range strings.Split(*peers, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		var err error
		node, err = peer.NewNode(srv, peer.Options{
			Self:           *self,
			Peers:          members,
			GossipInterval: *gossip,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "vbserve: "+format+"\n", args...)
			},
		})
		check(err)
		handler = node.Handler()
		node.Start()
		fmt.Fprintf(os.Stderr, "vbserve: federation of %d peers, self %s, gossip every %v\n",
			len(members), *self, *gossip)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "vbserve: listening on %s (%d clusters, queue %d, cache %d plans)\n",
			*addr, *clusters, *queueDepth, *cacheEntries)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		check(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "vbserve: %v: draining (admission stopped, finishing in-flight jobs)\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vbserve: %v\n", err)
		os.Exit(1)
	}
	if node != nil {
		// Peers saw the drain through /v1/peer/health 503s and have
		// already rerouted; now hand the warm plan cache to each key's
		// new owner so the federation keeps its hit rate.
		node.Shutdown(ctx)
	}
	if *journal != "" {
		if err := srv.SaveCache(*journal); err != nil {
			fmt.Fprintf(os.Stderr, "vbserve: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "vbserve: journaled %d plans to %s\n", srv.Metrics().Cache.Entries, *journal)
		}
	}
	// Jobs are done; now close the listener so late pollers get their
	// final snapshots instead of connection-refused mid-drain.
	check(httpSrv.Shutdown(ctx))
	m := srv.Metrics()
	fmt.Fprintf(os.Stderr, "vbserve: drained clean: %d completed, %d failed, %d shed, cache hit rate %.2f\n",
		m.Completed, m.Failed, m.Shed, m.Cache.HitRate)
}

func check(err error) { cliutil.Check("vbserve", err) }
