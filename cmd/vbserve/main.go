// Command vbserve runs the simulated V-Bus PC-cluster as a long-lived
// compile-and-run service. Clients POST Fortran 77 jobs as JSON; the
// daemon compiles each distinct (program, options) pair once, caches
// the compiled plan in an LRU, and executes jobs over a fixed pool of
// simulated clusters with per-tenant weighted fair scheduling and
// explicit load shedding.
//
// Usage:
//
//	vbserve [-addr :8077] [-clusters N] [-queue D] [-cache P] [-workers W] [-fabric vbus|vbus3d|ethernet|ideal]
//
// Endpoints:
//
//	POST /v1/jobs            submit a job (?wait=1 blocks until done)
//	GET  /v1/jobs/{id}       job record
//	GET  /v1/jobs/{id}/trace Chrome trace-event JSON (jobs with "trace": true)
//	GET  /metrics            throughput, cache hit rate, queue depth, latency quantiles
//	GET  /healthz            200 serving / 503 draining
//
// A saturated queue answers 429 with a Retry-After estimate. SIGTERM
// or SIGINT starts a graceful drain: admission stops, every admitted
// job finishes, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vbuscluster/internal/cliutil"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/jobs"
	_ "vbuscluster/internal/nic" // register the vbus and ethernet backends
)

func main() {
	addr := flag.String("addr", ":8077", "HTTP listen address")
	clusters := flag.Int("clusters", 2, "concurrent simulated clusters (job workers)")
	queueDepth := flag.Int("queue", 64, "admission queue depth; beyond it submissions shed with 429")
	cacheEntries := flag.Int("cache", 32, "compiled-plan LRU capacity")
	workers := flag.Int("workers", 0, "per-run rank scheduler pool size (0 = GOMAXPROCS)")
	fabric := flag.String("fabric", "", "default interconnect backend for jobs that omit one: "+strings.Join(interconnect.Names(), ", ")+" (default vbus)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "maximum time to wait for in-flight jobs on shutdown")
	flag.Parse()

	check(cliutil.ValidateFabric(*fabric))
	if *clusters < 1 {
		check(fmt.Errorf("-clusters must be at least 1"))
	}
	if *queueDepth < 1 {
		check(fmt.Errorf("-queue must be at least 1"))
	}

	srv := jobs.New(jobs.Config{
		Clusters:      *clusters,
		QueueDepth:    *queueDepth,
		CacheEntries:  *cacheEntries,
		RankWorkers:   *workers,
		DefaultFabric: *fabric,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "vbserve: listening on %s (%d clusters, queue %d, cache %d plans)\n",
			*addr, *clusters, *queueDepth, *cacheEntries)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		check(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "vbserve: %v: draining (admission stopped, finishing in-flight jobs)\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vbserve: %v\n", err)
		os.Exit(1)
	}
	// Jobs are done; now close the listener so late pollers get their
	// final snapshots instead of connection-refused mid-drain.
	check(httpSrv.Shutdown(ctx))
	m := srv.Metrics()
	fmt.Fprintf(os.Stderr, "vbserve: drained clean: %d completed, %d failed, %d shed, cache hit rate %.2f\n",
		m.Completed, m.Failed, m.Shed, m.Cache.HitRate)
}

func check(err error) { cliutil.Check("vbserve", err) }
