// Command vbtrace validates and summarizes a Chrome trace-event JSON
// file written by vbrun -trace or vbcc -trace. It exits non-zero when
// the file does not parse or contains no events, which makes it the
// CI smoke check for the tracing pipeline:
//
//	vbrun -trace out.json prog.f && vbtrace out.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type traceFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: vbtrace trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail(err.Error())
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("invalid trace JSON: " + err.Error())
	}
	if len(tf.TraceEvents) == 0 {
		fail("trace contains no events")
	}
	type track struct {
		name   string
		events int
		bytes  int64
		last   float64
	}
	tracks := map[int]*track{}
	for _, ev := range tf.TraceEvents {
		tr := tracks[ev.Tid]
		if tr == nil {
			tr = &track{}
			tracks[ev.Tid] = tr
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				if n, ok := ev.Args["name"].(string); ok {
					tr.name = n
				}
			}
		case "X":
			if ev.Dur < 0 {
				fail(fmt.Sprintf("event %q on tid %d has negative duration", ev.Name, ev.Tid))
			}
			tr.events++
			if b, ok := ev.Args["bytes"].(float64); ok {
				tr.bytes += int64(b)
			}
			if end := ev.Ts + ev.Dur; end > tr.last {
				tr.last = end
			}
		default:
			fail(fmt.Sprintf("unexpected event phase %q", ev.Ph))
		}
	}
	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	fmt.Printf("%s: %d events\n", os.Args[1], len(tf.TraceEvents))
	for _, tid := range tids {
		tr := tracks[tid]
		fmt.Printf("  %-10s %6d events  %12d bytes  span %.3fus\n", tr.name, tr.events, tr.bytes, tr.last)
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "vbtrace:", msg)
	os.Exit(1)
}
