// Command vbtrace validates and summarizes a Chrome trace-event JSON
// file written by vbrun -trace or vbcc -trace. It exits non-zero with
// a clear message when the file is malformed, truncated, or contains
// no events, which makes it the CI smoke check for the tracing
// pipeline:
//
//	vbrun -trace out.json prog.f && vbtrace out.json
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

type traceFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: vbtrace trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail(err.Error())
	}
	summary, err := validate(os.Args[1], data)
	if err != nil {
		fail(err.Error())
	}
	fmt.Print(summary)
}

// validate checks a trace file's structure and returns the printable
// per-track summary. Every way the file can be wrong — empty,
// truncated mid-object, trailing garbage, wrong shape, negative
// durations, unknown phases — yields a descriptive error.
func validate(name string, data []byte) (string, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return "", fmt.Errorf("%s: empty trace file", name)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var tf traceFile
	if err := dec.Decode(&tf); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return "", fmt.Errorf("%s: truncated trace JSON (file ends mid-object)", name)
		}
		return "", fmt.Errorf("%s: invalid trace JSON: %v", name, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return "", fmt.Errorf("%s: trailing data after the trace object", name)
	}
	if len(tf.TraceEvents) == 0 {
		return "", fmt.Errorf("%s: trace contains no events", name)
	}
	type track struct {
		name   string
		events int
		bytes  int64
		last   float64
	}
	tracks := map[int]*track{}
	for i, ev := range tf.TraceEvents {
		tr := tracks[ev.Tid]
		if tr == nil {
			tr = &track{}
			tracks[ev.Tid] = tr
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				if n, ok := ev.Args["name"].(string); ok {
					tr.name = n
				}
			}
		case "X":
			if ev.Dur < 0 {
				return "", fmt.Errorf("%s: event %d (%q on tid %d) has negative duration %g",
					name, i, ev.Name, ev.Tid, ev.Dur)
			}
			if ev.Ts < 0 {
				return "", fmt.Errorf("%s: event %d (%q on tid %d) has negative timestamp %g",
					name, i, ev.Name, ev.Tid, ev.Ts)
			}
			tr.events++
			if b, ok := ev.Args["bytes"].(float64); ok {
				tr.bytes += int64(b)
			}
			if end := ev.Ts + ev.Dur; end > tr.last {
				tr.last = end
			}
		default:
			return "", fmt.Errorf("%s: event %d has unexpected phase %q (want \"X\" or \"M\")", name, i, ev.Ph)
		}
	}
	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d events\n", name, len(tf.TraceEvents))
	for _, tid := range tids {
		tr := tracks[tid]
		fmt.Fprintf(&sb, "  %-10s %6d events  %12d bytes  span %.3fus\n", tr.name, tr.events, tr.bytes, tr.last)
	}
	return sb.String(), nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "vbtrace:", msg)
	os.Exit(1)
}
