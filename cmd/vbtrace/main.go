// Command vbtrace validates and summarizes a Chrome trace-event JSON
// file written by vbrun -trace or vbcc -trace. It exits non-zero with
// a clear message when the file is malformed, truncated, or contains
// no events, which makes it the CI smoke check for the tracing
// pipeline:
//
//	vbrun -trace out.json prog.f && vbtrace out.json
//
// -ranks pins the expected rank count: any non-compiler track outside
// [0, ranks) fails validation. -dims pins the mesh geometry ("16x8x8"):
// a geometry too small for the trace's ranks fails. Both catch a trace
// replayed against the wrong machine configuration.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/trace"
)

type traceFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// errUnknownTransport rejects events whose transport class (the
// Chrome "cat" field) is not registered in internal/interconnect.
// New classes — like the checkpoint and recovery transports — must be
// added there explicitly before their traces validate.
var errUnknownTransport = errors.New("unknown transport class")

// errRankMismatch rejects a trace whose tracks fall outside the rank
// count pinned with -ranks.
var errRankMismatch = errors.New("rank count mismatch")

// errGeometryMismatch rejects a -dims geometry that cannot hold the
// trace's ranks (or has a dimension below 1).
var errGeometryMismatch = errors.New("geometry mismatch")

func main() {
	ranks := flag.Int("ranks", 0, "expected rank count; tracks outside [0, ranks) fail validation (0 = don't check)")
	dimsFlag := flag.String("dims", "", "expected mesh geometry, e.g. 16x8x8; too small for the trace's ranks fails ('' = don't check)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vbtrace [-ranks N] [-dims WxHxD] trace.json")
		os.Exit(2)
	}
	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fail(err.Error())
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err.Error())
	}
	summary, err := validate(flag.Arg(0), data, *ranks, dims)
	if err != nil {
		fail(err.Error())
	}
	fmt.Print(summary)
}

// parseDims parses a "16x8x8"-style geometry; "" means no check.
func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		d, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("-dims %q: %w: %q is not a number", s, errGeometryMismatch, p)
		}
		if d < 1 {
			return nil, fmt.Errorf("-dims %q: %w: dimension %d below 1", s, errGeometryMismatch, d)
		}
		dims[i] = d
	}
	return dims, nil
}

// validate checks a trace file's structure and returns the printable
// per-track summary. Every way the file can be wrong — empty,
// truncated mid-object, trailing garbage, wrong shape, negative
// durations, unknown phases — yields a descriptive error. ranks > 0
// pins the expected rank count; a non-empty dims pins the mesh
// geometry (both named errors, errRankMismatch/errGeometryMismatch).
func validate(name string, data []byte, ranks int, dims []int) (string, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return "", fmt.Errorf("%s: empty trace file", name)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var tf traceFile
	if err := dec.Decode(&tf); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return "", fmt.Errorf("%s: truncated trace JSON (file ends mid-object)", name)
		}
		return "", fmt.Errorf("%s: invalid trace JSON: %v", name, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return "", fmt.Errorf("%s: trailing data after the trace object", name)
	}
	if len(tf.TraceEvents) == 0 {
		return "", fmt.Errorf("%s: trace contains no events", name)
	}
	type track struct {
		name   string
		events int
		bytes  int64
		last   float64
	}
	tracks := map[int]*track{}
	for i, ev := range tf.TraceEvents {
		tr := tracks[ev.Tid]
		if tr == nil {
			tr = &track{}
			tracks[ev.Tid] = tr
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				if n, ok := ev.Args["name"].(string); ok {
					tr.name = n
				}
			}
		case "X":
			if ev.Dur < 0 {
				return "", fmt.Errorf("%s: event %d (%q on tid %d) has negative duration %g",
					name, i, ev.Name, ev.Tid, ev.Dur)
			}
			if ev.Ts < 0 {
				return "", fmt.Errorf("%s: event %d (%q on tid %d) has negative timestamp %g",
					name, i, ev.Name, ev.Tid, ev.Ts)
			}
			if ev.Cat != "" {
				tp, ok := interconnect.TransportFromName(ev.Cat)
				if !ok {
					return "", fmt.Errorf("%s: event %d (%q on tid %d): %w %q",
						name, i, ev.Name, ev.Tid, errUnknownTransport, ev.Cat)
				}
				// Checkpoint and recovery intervals must be charged to
				// their dedicated transports, and vice versa, so profiles
				// never misattribute resilience cost.
				if err := checkResilienceClass(ev.Name, tp); err != nil {
					return "", fmt.Errorf("%s: event %d (tid %d): %w", name, i, ev.Tid, err)
				}
				// The same pinning holds for the pack-and-coalesce path.
				if err := checkPackClass(ev.Name, tp); err != nil {
					return "", fmt.Errorf("%s: event %d (tid %d): %w", name, i, ev.Tid, err)
				}
				// And for the eager/rendezvous protocol classes.
				if err := checkProtocolClass(ev.Name, tp); err != nil {
					return "", fmt.Errorf("%s: event %d (tid %d): %w", name, i, ev.Tid, err)
				}
			}
			tr.events++
			if b, ok := ev.Args["bytes"].(float64); ok {
				tr.bytes += int64(b)
			}
			if end := ev.Ts + ev.Dur; end > tr.last {
				tr.last = end
			}
		default:
			return "", fmt.Errorf("%s: event %d has unexpected phase %q (want \"X\" or \"M\")", name, i, ev.Ph)
		}
	}
	// Tracks map 1:1 to physical ranks (the compiler's pseudo-rank -1
	// track excepted), so a pinned rank count or geometry can be
	// checked against the trace itself.
	maxRank := -1
	for tid := range tracks {
		if tid > maxRank {
			maxRank = tid
		}
		if ranks > 0 && tid >= ranks {
			return "", fmt.Errorf("%s: %w: track tid %d outside the %d expected ranks",
				name, errRankMismatch, tid, ranks)
		}
	}
	if len(dims) > 0 {
		nodes := 1
		for _, d := range dims {
			nodes *= d
		}
		need := ranks
		if need == 0 {
			need = maxRank + 1
		}
		if nodes < need {
			return "", fmt.Errorf("%s: %w: geometry %s holds %d nodes but the trace needs %d ranks",
				name, errGeometryMismatch, geomString(dims), nodes, need)
		}
	}
	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d events\n", name, len(tf.TraceEvents))
	for _, tid := range tids {
		tr := tracks[tid]
		fmt.Fprintf(&sb, "  %-10s %6d events  %12d bytes  span %.3fus\n", tr.name, tr.events, tr.bytes, tr.last)
	}
	return sb.String(), nil
}

// checkResilienceClass pins the checkpoint/recovery operations to
// their dedicated transport classes in both directions: a checkpoint
// interval recorded on the p2p transport (or a send on the ckpt
// transport) means the runtime mischarged resilience cost.
func checkResilienceClass(op string, tp interconnect.Transport) error {
	switch {
	case op == trace.OpCheckpoint && tp != interconnect.TransportCkpt:
		return fmt.Errorf("checkpoint interval charged to transport %q, want %q", tp, interconnect.TransportCkpt)
	case op == trace.OpRecovery && tp != interconnect.TransportRecovery:
		return fmt.Errorf("recovery interval charged to transport %q, want %q", tp, interconnect.TransportRecovery)
	case tp == interconnect.TransportCkpt && op != trace.OpCheckpoint:
		return fmt.Errorf("transport %q carries op %q, want %q", tp, op, trace.OpCheckpoint)
	case tp == interconnect.TransportRecovery && op != trace.OpRecovery:
		return fmt.Errorf("transport %q carries op %q, want %q", tp, op, trace.OpRecovery)
	}
	return nil
}

// checkPackClass pins the coalesced put.p/get.p operations to the pack
// transport class in both directions: a packed transfer charged to the
// PIO path (or a plain strided put riding the pack class) means the
// runtime's coalescing decision and its accounting disagree.
func checkPackClass(op string, tp interconnect.Transport) error {
	packed := op == trace.OpPutPacked || op == trace.OpGetPacked
	switch {
	case packed && tp != interconnect.TransportPack:
		return fmt.Errorf("packed transfer %q charged to transport %q, want %q", op, tp, interconnect.TransportPack)
	case tp == interconnect.TransportPack && !packed:
		return fmt.Errorf("transport %q carries op %q, want %q or %q",
			tp, op, trace.OpPutPacked, trace.OpGetPacked)
	}
	return nil
}

// checkProtocolClass pins the eager/rendezvous transport classes of a
// protocol-switched fabric to the contiguous data movers: only put,
// get and send operations ride the protocol-switched path, so any
// other operation charged to "eager" or "rndv" means the runtime
// routed a non-contiguous (or non-data) operation through the
// protocol model.
func checkProtocolClass(op string, tp interconnect.Transport) error {
	if tp != interconnect.TransportEager && tp != interconnect.TransportRndv {
		return nil
	}
	switch op {
	case trace.OpPut, trace.OpGet, trace.OpSend:
		return nil
	}
	return fmt.Errorf("transport %q carries op %q, want %q, %q or %q",
		tp, op, trace.OpPut, trace.OpGet, trace.OpSend)
}

// geomString renders a geometry as "16x8x8".
func geomString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, "x")
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "vbtrace:", msg)
	os.Exit(1)
}
