package main

import (
	"errors"
	"strings"
	"testing"
)

const goodTrace = `{"displayTimeUnit":"ns","traceEvents":[
 {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"rank 0"}},
 {"name":"send","ph":"X","ts":0,"dur":10,"pid":1,"tid":0,"args":{"bytes":64}},
 {"name":"recv","ph":"X","ts":12,"dur":5,"pid":1,"tid":1,"args":{"bytes":64}}
]}`

func TestValidateGood(t *testing.T) {
	out, err := validate("t.json", []byte(goodTrace))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 events") || !strings.Contains(out, "rank 0") {
		t.Errorf("summary missing expected content:\n%s", out)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"empty", "", "empty trace file"},
		{"whitespace", "  \n\t ", "empty trace file"},
		{"truncated", goodTrace[:len(goodTrace)/2], "truncated"},
		{"truncated-tiny", `{"traceEvents":[{"name":`, "truncated"},
		{"not-json", "not a trace", "invalid trace JSON"},
		{"wrong-shape", `{"traceEvents": 42}`, "invalid trace JSON"},
		{"trailing", goodTrace + `{"extra":1}`, "trailing data"},
		{"no-events", `{"traceEvents":[]}`, "no events"},
		{"negative-dur", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"tid":0}]}`, "negative duration"},
		{"negative-ts", `{"traceEvents":[{"name":"x","ph":"X","ts":-5,"dur":1,"tid":0}]}`, "negative timestamp"},
		{"bad-phase", `{"traceEvents":[{"name":"x","ph":"B","ts":0,"dur":1,"tid":0}]}`, "unexpected phase"},
		{"unknown-transport", `{"traceEvents":[{"name":"send","cat":"warp","ph":"X","ts":0,"dur":1,"tid":0}]}`, "unknown transport class"},
		{"ckpt-wrong-class", `{"traceEvents":[{"name":"checkpoint","cat":"p2p","ph":"X","ts":0,"dur":1,"tid":0}]}`, "checkpoint interval charged"},
		{"recovery-wrong-class", `{"traceEvents":[{"name":"recovery","cat":"sync","ph":"X","ts":0,"dur":1,"tid":0}]}`, "recovery interval charged"},
		{"ckpt-class-misused", `{"traceEvents":[{"name":"send","cat":"ckpt","ph":"X","ts":0,"dur":1,"tid":0}]}`, "carries op"},
		{"packed-put-wrong-class", `{"traceEvents":[{"name":"put.p","cat":"pio","ph":"X","ts":0,"dur":1,"tid":0}]}`, "packed transfer"},
		{"packed-get-wrong-class", `{"traceEvents":[{"name":"get.p","cat":"dma","ph":"X","ts":0,"dur":1,"tid":0}]}`, "packed transfer"},
		{"pack-class-misused", `{"traceEvents":[{"name":"put.s","cat":"pack","ph":"X","ts":0,"dur":1,"tid":0}]}`, "carries op"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := validate("t.json", []byte(c.data))
			if err == nil {
				t.Fatalf("accepted %s input", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestUnknownTransportNamedError: the rejection is the named sentinel,
// so callers can branch on it with errors.Is.
func TestUnknownTransportNamedError(t *testing.T) {
	_, err := validate("t.json", []byte(`{"traceEvents":[{"name":"send","cat":"warp","ph":"X","ts":0,"dur":1,"tid":0}]}`))
	if !errors.Is(err, errUnknownTransport) {
		t.Fatalf("got %v, want errUnknownTransport", err)
	}
}

// TestValidateCoalescedTrace: a coalesced run's exported trace — with
// its put.p/get.p bursts on the pack transport next to the plain
// strided PIO traffic they replaced — passes validation.
func TestValidateCoalescedTrace(t *testing.T) {
	const coalescedTrace = `{"displayTimeUnit":"ns","traceEvents":[
 {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},
 {"name":"put.p","cat":"pack","ph":"X","ts":0,"dur":10,"tid":0,"args":{"bytes":800}},
 {"name":"get.p","cat":"pack","ph":"X","ts":12,"dur":8,"tid":0,"args":{"bytes":320}},
 {"name":"put.s","cat":"pio","ph":"X","ts":22,"dur":4,"tid":0,"args":{"bytes":64}}
]}`
	out, err := validate("t.json", []byte(coalescedTrace))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 events") {
		t.Errorf("summary missing expected content:\n%s", out)
	}
}

// TestValidateResilientTrace: a real -resilient run's exported trace —
// with its checkpoint and recovery intervals on the ckpt and recovery
// transports — passes validation.
func TestValidateResilientTrace(t *testing.T) {
	const resilientTrace = `{"displayTimeUnit":"ns","traceEvents":[
 {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},
 {"name":"checkpoint","cat":"ckpt","ph":"X","ts":0,"dur":10,"tid":0},
 {"name":"recovery","cat":"recovery","ph":"X","ts":12,"dur":5,"tid":0},
 {"name":"bcast","cat":"p2p","ph":"X","ts":20,"dur":5,"tid":0,"args":{"bytes":64}}
]}`
	out, err := validate("t.json", []byte(resilientTrace))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 events") {
		t.Errorf("summary missing expected content:\n%s", out)
	}
}
