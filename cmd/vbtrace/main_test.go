package main

import (
	"errors"
	"strings"
	"testing"
)

const goodTrace = `{"displayTimeUnit":"ns","traceEvents":[
 {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"rank 0"}},
 {"name":"send","ph":"X","ts":0,"dur":10,"pid":1,"tid":0,"args":{"bytes":64}},
 {"name":"recv","ph":"X","ts":12,"dur":5,"pid":1,"tid":1,"args":{"bytes":64}}
]}`

func TestValidateGood(t *testing.T) {
	out, err := validate("t.json", []byte(goodTrace), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 events") || !strings.Contains(out, "rank 0") {
		t.Errorf("summary missing expected content:\n%s", out)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"empty", "", "empty trace file"},
		{"whitespace", "  \n\t ", "empty trace file"},
		{"truncated", goodTrace[:len(goodTrace)/2], "truncated"},
		{"truncated-tiny", `{"traceEvents":[{"name":`, "truncated"},
		{"not-json", "not a trace", "invalid trace JSON"},
		{"wrong-shape", `{"traceEvents": 42}`, "invalid trace JSON"},
		{"trailing", goodTrace + `{"extra":1}`, "trailing data"},
		{"no-events", `{"traceEvents":[]}`, "no events"},
		{"negative-dur", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"tid":0}]}`, "negative duration"},
		{"negative-ts", `{"traceEvents":[{"name":"x","ph":"X","ts":-5,"dur":1,"tid":0}]}`, "negative timestamp"},
		{"bad-phase", `{"traceEvents":[{"name":"x","ph":"B","ts":0,"dur":1,"tid":0}]}`, "unexpected phase"},
		{"unknown-transport", `{"traceEvents":[{"name":"send","cat":"warp","ph":"X","ts":0,"dur":1,"tid":0}]}`, "unknown transport class"},
		{"ckpt-wrong-class", `{"traceEvents":[{"name":"checkpoint","cat":"p2p","ph":"X","ts":0,"dur":1,"tid":0}]}`, "checkpoint interval charged"},
		{"recovery-wrong-class", `{"traceEvents":[{"name":"recovery","cat":"sync","ph":"X","ts":0,"dur":1,"tid":0}]}`, "recovery interval charged"},
		{"ckpt-class-misused", `{"traceEvents":[{"name":"send","cat":"ckpt","ph":"X","ts":0,"dur":1,"tid":0}]}`, "carries op"},
		{"packed-put-wrong-class", `{"traceEvents":[{"name":"put.p","cat":"pio","ph":"X","ts":0,"dur":1,"tid":0}]}`, "packed transfer"},
		{"packed-get-wrong-class", `{"traceEvents":[{"name":"get.p","cat":"dma","ph":"X","ts":0,"dur":1,"tid":0}]}`, "packed transfer"},
		{"pack-class-misused", `{"traceEvents":[{"name":"put.s","cat":"pack","ph":"X","ts":0,"dur":1,"tid":0}]}`, "carries op"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := validate("t.json", []byte(c.data), 0, nil)
			if err == nil {
				t.Fatalf("accepted %s input", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestUnknownTransportNamedError: the rejection is the named sentinel,
// so callers can branch on it with errors.Is.
func TestUnknownTransportNamedError(t *testing.T) {
	_, err := validate("t.json", []byte(`{"traceEvents":[{"name":"send","cat":"warp","ph":"X","ts":0,"dur":1,"tid":0}]}`), 0, nil)
	if !errors.Is(err, errUnknownTransport) {
		t.Fatalf("got %v, want errUnknownTransport", err)
	}
}

// A trace with tracks beyond the pinned rank count is a trace from a
// different machine: the rejection is the named errRankMismatch. The
// compiler's pseudo-rank -1 track is exempt.
func TestValidateRankMismatch(t *testing.T) {
	if _, err := validate("t.json", []byte(goodTrace), 4, nil); err != nil {
		t.Fatalf("trace spanning ranks 0-1 rejected for -ranks 4: %v", err)
	}
	_, err := validate("t.json", []byte(goodTrace), 1, nil)
	if !errors.Is(err, errRankMismatch) {
		t.Fatalf("got %v, want errRankMismatch", err)
	}
	const withCompiler = `{"traceEvents":[
 {"name":"parse","ph":"X","ts":0,"dur":3,"tid":-1},
 {"name":"send","ph":"X","ts":0,"dur":10,"tid":0,"args":{"bytes":64}}
]}`
	if _, err := validate("t.json", []byte(withCompiler), 1, nil); err != nil {
		t.Fatalf("compiler track tripped the rank check: %v", err)
	}
}

// A -dims geometry smaller than the trace's rank span (or the pinned
// -ranks) is the named errGeometryMismatch.
func TestValidateGeometryMismatch(t *testing.T) {
	if _, err := validate("t.json", []byte(goodTrace), 0, []int{2, 1}); err != nil {
		t.Fatalf("2x1 geometry rejected for a 2-rank trace: %v", err)
	}
	_, err := validate("t.json", []byte(goodTrace), 0, []int{1, 1})
	if !errors.Is(err, errGeometryMismatch) {
		t.Fatalf("got %v, want errGeometryMismatch", err)
	}
	_, err = validate("t.json", []byte(goodTrace), 64, []int{4, 4, 2})
	if !errors.Is(err, errGeometryMismatch) {
		t.Fatalf("pinned ranks beyond geometry: got %v, want errGeometryMismatch", err)
	}
	if _, err := validate("t.json", []byte(goodTrace), 64, []int{4, 4, 4}); err != nil {
		t.Fatalf("64 ranks on 4x4x4 rejected: %v", err)
	}
}

func TestParseDims(t *testing.T) {
	dims, err := parseDims("16x8x8")
	if err != nil || len(dims) != 3 || dims[0] != 16 || dims[1] != 8 || dims[2] != 8 {
		t.Fatalf("parseDims(16x8x8) = %v, %v", dims, err)
	}
	if dims, err := parseDims(""); err != nil || dims != nil {
		t.Fatalf("empty -dims should disable the check, got %v, %v", dims, err)
	}
	for _, bad := range []string{"16x", "axb", "4x0x4", "4x-1"} {
		if _, err := parseDims(bad); !errors.Is(err, errGeometryMismatch) {
			t.Errorf("parseDims(%q) = %v, want errGeometryMismatch", bad, err)
		}
	}
}

// TestValidateCoalescedTrace: a coalesced run's exported trace — with
// its put.p/get.p bursts on the pack transport next to the plain
// strided PIO traffic they replaced — passes validation.
func TestValidateCoalescedTrace(t *testing.T) {
	const coalescedTrace = `{"displayTimeUnit":"ns","traceEvents":[
 {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},
 {"name":"put.p","cat":"pack","ph":"X","ts":0,"dur":10,"tid":0,"args":{"bytes":800}},
 {"name":"get.p","cat":"pack","ph":"X","ts":12,"dur":8,"tid":0,"args":{"bytes":320}},
 {"name":"put.s","cat":"pio","ph":"X","ts":22,"dur":4,"tid":0,"args":{"bytes":64}}
]}`
	out, err := validate("t.json", []byte(coalescedTrace), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 events") {
		t.Errorf("summary missing expected content:\n%s", out)
	}
}

// TestValidateResilientTrace: a real -resilient run's exported trace —
// with its checkpoint and recovery intervals on the ckpt and recovery
// transports — passes validation.
func TestValidateResilientTrace(t *testing.T) {
	const resilientTrace = `{"displayTimeUnit":"ns","traceEvents":[
 {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},
 {"name":"checkpoint","cat":"ckpt","ph":"X","ts":0,"dur":10,"tid":0},
 {"name":"recovery","cat":"recovery","ph":"X","ts":12,"dur":5,"tid":0},
 {"name":"bcast","cat":"p2p","ph":"X","ts":20,"dur":5,"tid":0,"args":{"bytes":64}}
]}`
	out, err := validate("t.json", []byte(resilientTrace), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 events") {
		t.Errorf("summary missing expected content:\n%s", out)
	}
}
