// Command vbcc is the compiler driver: it runs the Polaris-style front
// end and the MPI-2 postpass over a Fortran 77 source file and reports
// what the compiler found and generated.
//
// Usage:
//
//	vbcc [-procs N] [-grain fine|middle|coarse] [-passes] [-explain] [-avpg] [-trace out.json] file.f
//
// With no file, source is read from standard input. -trace exports the
// pass pipeline's timings as Chrome trace-event JSON (a "compiler"
// track loadable in Perfetto — the same file format vbrun -trace
// writes for whole runs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/cliutil"
	"vbuscluster/internal/core"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
	_ "vbuscluster/internal/nic" // register the vbus and ethernet backends
	"vbuscluster/internal/postpass"
	vbtrace "vbuscluster/internal/trace"
)

func main() {
	procs := flag.Int("procs", 4, "SPMD process count")
	grainName := flag.String("grain", "fine", "communication granularity: fine, middle, coarse or auto")
	explain := flag.Bool("explain", false, "print per-loop analysis annotations")
	avpgDump := flag.Bool("avpg", false, "print the array-value-propagation graph")
	emit := flag.Bool("emit", false, "print the transformed program (inlined, loops annotated) as Fortran source")
	spmd := flag.Bool("spmd", false, "print the generated SPMD program (Fortran 77 with MPI-2 calls)")
	diagram := flag.Bool("diagram", false, "print access-movement diagrams for each communicated region (the paper's Fig. 2-4 pictures)")
	passes := flag.Bool("passes", false, "print the pass pipeline with per-pass wall time")
	dumpAfter := flag.String("dump-after", "", "dump the IR after the named pass (a name from -passes, or 'all')")
	fabric := flag.String("fabric", "", cliutil.FabricFlagUsage("interconnect backend priced by auto-grain: "))
	traceOut := flag.String("trace", "", "write the pass pipeline's timings as Chrome trace-event JSON to this file")
	coalesce := flag.Bool("coalesce", false, "enable the pack-and-coalesce stage: strided transfers past the NIC's crossover go as packed DMA bursts")
	flag.Parse()

	check(cliutil.ValidateFabric(*fabric))
	auto := *grainName == "auto"
	var grain lmad.Grain
	if !auto {
		var err error
		grain, err = lmad.ParseGrain(*grainName)
		check(err)
	}

	var src []byte
	var err error
	if flag.NArg() >= 1 {
		src, err = os.ReadFile(flag.Arg(0))
		check(err)
	} else {
		src, err = io.ReadAll(os.Stdin)
		check(err)
	}

	if *dumpAfter != "" && *dumpAfter != "all" {
		known := false
		for _, p := range core.Passes() {
			if p.Name == *dumpAfter {
				known = true
				break
			}
		}
		if !known {
			var names []string
			for _, p := range core.Passes() {
				names = append(names, p.Name)
			}
			check(fmt.Errorf("unknown pass %q for -dump-after (passes: %s, or 'all')", *dumpAfter, strings.Join(names, ", ")))
		}
	}
	var trace *core.PassTrace
	if *passes || *dumpAfter != "" || *traceOut != "" {
		trace = &core.PassTrace{DumpAfter: *dumpAfter}
	}
	c, err := core.Compile(string(src), core.Options{
		NumProcs:  *procs,
		Grain:     grain,
		AutoGrain: auto,
		Fabric:    *fabric,
		Trace:     trace,
		Coalesce:  *coalesce,
	})
	check(err)
	if *passes {
		fmt.Println("pass pipeline:")
		fmt.Print(trace.String())
		fmt.Println()
	}
	for _, d := range trace.DumpsList() {
		fmt.Printf("--- IR after %s:\n%s\n", d.Pass, d.Text)
	}
	if auto {
		fmt.Fprintf(os.Stderr, "auto-grain selected: %v\n", c.Grain())
	}

	if *explain {
		fmt.Println("loop analysis:")
		f77.WalkStmts(c.Prog.Main().Body, func(s f77.Stmt) bool {
			if loop, ok := s.(*f77.DoLoop); ok {
				fmt.Printf("  line %d: %s\n", loop.Line(), analysis.Explain(loop))
			}
			return true
		})
		fmt.Println()
	}
	if *emit {
		fmt.Print(f77.Format(c.Prog))
		fmt.Println()
	}
	if *spmd {
		fmt.Print(postpass.EmitSPMD(c.SPMD))
		fmt.Println()
	}
	fmt.Print(c.Report())
	if *diagram {
		fmt.Println("\naccess diagrams (first 72 cells):")
		for _, r := range c.SPMD.Regions {
			if r.Par == nil {
				continue
			}
			ops := append(append([]*postpass.CommOp{}, r.Par.Scatters...), r.Par.Collects...)
			for _, op := range ops {
				cells := int(op.Acc.L.High()) + 1
				if cells > 72 {
					cells = 72
				}
				fmt.Print(op.Acc.L.Diagram(cells))
			}
		}
	}
	if *avpgDump {
		fmt.Println("\nAVPG (array-value-propagation graph):")
		fmt.Print(c.SPMD.Graph.String())
	}
	if *traceOut != "" {
		rec := vbtrace.New()
		trace.AddToRecorder(rec)
		f, err := os.Create(*traceOut)
		check(err)
		check(rec.WriteChrome(f))
		check(f.Close())
		fmt.Fprintf(os.Stderr, "vbcc: wrote %d pass spans to %s\n", rec.Len(), *traceOut)
	}
}

func check(err error) { cliutil.Check("vbcc", err) }
