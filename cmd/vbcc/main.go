// Command vbcc is the compiler driver: it runs the Polaris-style front
// end and the MPI-2 postpass over a Fortran 77 source file and reports
// what the compiler found and generated.
//
// Usage:
//
//	vbcc [-procs N] [-grain fine|middle|coarse] [-explain] [-avpg] file.f
//
// With no file, source is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/core"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/postpass"
)

func main() {
	procs := flag.Int("procs", 4, "SPMD process count")
	grainName := flag.String("grain", "fine", "communication granularity: fine, middle, coarse or auto")
	explain := flag.Bool("explain", false, "print per-loop analysis annotations")
	avpgDump := flag.Bool("avpg", false, "print the array-value-propagation graph")
	emit := flag.Bool("emit", false, "print the transformed program (inlined, loops annotated) as Fortran source")
	spmd := flag.Bool("spmd", false, "print the generated SPMD program (Fortran 77 with MPI-2 calls)")
	diagram := flag.Bool("diagram", false, "print access-movement diagrams for each communicated region (the paper's Fig. 2-4 pictures)")
	flag.Parse()

	auto := *grainName == "auto"
	var grain lmad.Grain
	if !auto {
		var err error
		grain, err = lmad.ParseGrain(*grainName)
		check(err)
	}

	var src []byte
	var err error
	if flag.NArg() >= 1 {
		src, err = os.ReadFile(flag.Arg(0))
		check(err)
	} else {
		src, err = io.ReadAll(os.Stdin)
		check(err)
	}

	c, err := core.Compile(string(src), core.Options{NumProcs: *procs, Grain: grain, AutoGrain: auto})
	check(err)
	if auto {
		fmt.Fprintf(os.Stderr, "auto-grain selected: %v\n", c.Grain())
	}

	if *explain {
		fmt.Println("loop analysis:")
		f77.WalkStmts(c.Prog.Main().Body, func(s f77.Stmt) bool {
			if loop, ok := s.(*f77.DoLoop); ok {
				fmt.Printf("  line %d: %s\n", loop.Line(), analysis.Explain(loop))
			}
			return true
		})
		fmt.Println()
	}
	if *emit {
		fmt.Print(f77.Format(c.Prog))
		fmt.Println()
	}
	if *spmd {
		fmt.Print(postpass.EmitSPMD(c.SPMD))
		fmt.Println()
	}
	fmt.Print(c.Report())
	if *diagram {
		fmt.Println("\naccess diagrams (first 72 cells):")
		for _, r := range c.SPMD.Regions {
			if r.Par == nil {
				continue
			}
			ops := append(append([]*postpass.CommOp{}, r.Par.Scatters...), r.Par.Collects...)
			for _, op := range ops {
				cells := int(op.Acc.L.High()) + 1
				if cells > 72 {
					cells = 72
				}
				fmt.Print(op.Acc.L.Diagram(cells))
			}
		}
	}
	if *avpgDump {
		fmt.Println("\nAVPG (array-value-propagation graph):")
		fmt.Print(c.SPMD.Graph.String())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbcc:", err)
		os.Exit(1)
	}
}
