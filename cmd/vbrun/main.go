// Command vbrun compiles a Fortran 77 program and executes it on the
// simulated V-Bus PC-cluster, printing the program's output and a
// virtual-time report.
//
// Usage:
//
//	vbrun [-procs N] [-grain g] [-fabric vbus|vbus3d|ethernet|ideal] [-workers W] [-seq] [-mode full|timing] [-trace out.json] [-profile] [-faults spec] [-resilient [-ckpt-every N] [-ckpt-dir d]] file.f
//
// -workers bounds the rank scheduler's worker pool (0 = GOMAXPROCS,
// negative = one free-running goroutine per rank); all settings
// produce bit-identical virtual results.
//
// -trace writes the run's per-rank event timeline (plus the compiler's
// pass spans as a "compiler" track) as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing. -profile prints the
// derived per-rank counters and the communication matrix.
//
// -faults injects deterministic faults from a spec string such as
// "seed=1,flitdrop=1e-3,linkdown=0-1@1ms+2ms" (see internal/fault for
// the grammar). Same spec, same timeline: runs are replayable.
//
// -resilient compiles the program into checkpoint epochs and runs it
// under coordinated checkpoint/restart: if a rank crashes (e.g. a
// crashafter= fault), the survivors shrink the communicator, restore
// the last checkpoint and replay. -ckpt-every sets the checkpoint
// cadence in parallel regions; -ckpt-dir persists the checkpoint
// blobs to disk for inspection.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vbuscluster/internal/cliutil"
	"vbuscluster/internal/core"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/interp"
	"vbuscluster/internal/lmad"
	_ "vbuscluster/internal/nic" // register the vbus and ethernet backends
	"vbuscluster/internal/trace"
)

func main() {
	procs := flag.Int("procs", 4, "SPMD process count (ignored with -seq)")
	grainName := flag.String("grain", "fine", "communication granularity: fine, middle, coarse or auto")
	seq := flag.Bool("seq", false, "run the sequential baseline instead of the SPMD program")
	profile := flag.Bool("profile", false, "print the per-region, per-rank and communication-matrix profiles")
	modeName := flag.String("mode", "full", "execution mode: full or timing")
	fabric := flag.String("fabric", "", cliutil.FabricFlagUsage("interconnect backend: "))
	traceOut := flag.String("trace", "", "write the run's timeline as Chrome trace-event JSON to this file (open in Perfetto)")
	faultSpec := flag.String("faults", "", "deterministic fault-injection spec, e.g. 'seed=1,flitdrop=1e-3' (see internal/fault)")
	resilient := flag.Bool("resilient", false, "run under coordinated checkpoint/restart, surviving rank crashes")
	ckptEvery := flag.Int("ckpt-every", 1, "checkpoint cadence in parallel regions (with -resilient)")
	ckptDir := flag.String("ckpt-dir", "", "persist checkpoint blobs to this directory (with -resilient)")
	coalesce := flag.Bool("coalesce", false, "enable the pack-and-coalesce stage: strided transfers past the NIC's crossover go as packed DMA bursts")
	workers := flag.Int("workers", 0, "rank scheduler worker-pool size: 0 = GOMAXPROCS, negative = unpooled (results identical)")
	flag.Parse()

	if *resilient && *seq {
		check(fmt.Errorf("-resilient and -seq are mutually exclusive"))
	}
	if *ckptEvery < 1 {
		check(fmt.Errorf("-ckpt-every must be at least 1"))
	}

	check(cliutil.ValidateFabric(*fabric))
	var inj *fault.Injector
	if *faultSpec != "" {
		var err error
		inj, err = fault.FromString(*faultSpec)
		check(err)
	}
	auto := *grainName == "auto"
	var grain lmad.Grain
	if !auto {
		var err error
		grain, err = lmad.ParseGrain(*grainName)
		check(err)
	}
	var mode core.Mode
	switch *modeName {
	case "full":
		mode = core.Full
	case "timing":
		mode = core.Timing
	default:
		check(fmt.Errorf("unknown mode %q", *modeName))
	}

	var src []byte
	var err error
	if flag.NArg() >= 1 {
		src, err = os.ReadFile(flag.Arg(0))
		check(err)
	} else {
		src, err = io.ReadAll(os.Stdin)
		check(err)
	}

	var rec *trace.Recorder
	if *traceOut != "" || *profile {
		rec = trace.New()
	}
	var passTrace *core.PassTrace
	if *traceOut != "" {
		passTrace = &core.PassTrace{}
	}
	c, err := core.Compile(string(src), core.Options{
		NumProcs:  *procs,
		Grain:     grain,
		AutoGrain: auto,
		Fabric:    *fabric,
		Trace:     passTrace,
		Recorder:  rec,
		Faults:    inj,
		Resilient: *resilient,
		CkptEvery: *ckptEvery,
		CkptDir:   *ckptDir,
		Coalesce:  *coalesce,
		Workers:   *workers,
	})
	check(err)
	if auto {
		fmt.Fprintf(os.Stderr, "auto-grain selected: %v\n", c.Grain())
	}

	var res *interp.Result
	switch {
	case *seq:
		res, err = c.RunSequential(mode)
	case *resilient:
		res, err = c.RunResilient(mode)
	default:
		res, err = c.RunParallel(mode)
	}
	check(err)

	fmt.Print(res.Output)
	if *profile && len(res.Regions) > 0 {
		fmt.Println("--- per-region profile:")
		fmt.Print(interp.FormatRegions(res.Regions))
	}
	if *profile && rec != nil {
		fmt.Println("--- per-rank profile:")
		fmt.Print(rec.Profile(res.Report.Clocks))
	}
	fmt.Printf("--- virtual time: %v", res.Elapsed)
	if !*seq {
		fmt.Printf("  (comm %v over %d ops, %d bytes)",
			res.Report.TotalXferTime(), res.Report.TotalCommOps(), res.Report.TotalCommBytes())
	}
	fmt.Println()
	if *resilient {
		fmt.Printf("--- resilience: %d checkpoints, %d recoveries\n",
			res.Checkpoints, res.Recoveries)
	}

	if *traceOut != "" {
		passTrace.AddToRecorder(rec)
		f, err := os.Create(*traceOut)
		check(err)
		check(rec.WriteChrome(f))
		check(f.Close())
		fmt.Fprintf(os.Stderr, "vbrun: wrote %d trace events to %s\n", rec.Len(), *traceOut)
	}
}

func check(err error) { cliutil.Check("vbrun", err) }
