// Command vbbench regenerates the paper's evaluation: Table 1 (MM
// speedups), Table 2 (communication time by granularity for MM, SWIM
// and CFFT2INIT) and the §2 card microbenchmarks.
//
// Usage:
//
//	vbbench -table 1            # MM speedups, paper sizes (256..1024)
//	vbbench -table 2            # comm time by granularity, paper sizes
//	vbbench -micro              # §2 SKWP / latency / broadcast claims
//	vbbench -profile            # comm matrices of the Table 2 programs
//	vbbench -faultsweep         # completion time / bandwidth vs flit-drop rate
//	vbbench -killsweep          # checkpoint/restart survival vs crash point
//	vbbench -coalsweep          # pack-vs-PIO crossover of strided PUTs
//	vbbench -scalesweep         # weak scaling 4..1024 ranks across fabrics -> BENCH_scale.json
//	vbbench -corebench          # end-to-end wall-time baseline at 4 ranks -> BENCH_core.json
//	vbbench -servesweep         # closed-loop throughput vs client count against an in-process vbserve -> BENCH_serve.json
//	vbbench -chaossweep         # seeded hostile workload asserting the server's robustness invariants -> BENCH_serve.json
//	vbbench -peersweep          # three-peer federation: forwarding, mid-run kill, failover + rebalance assertions -> BENCH_serve.json
//	vbbench -benchgate          # re-run -corebench; fail on >10% events/sec regression vs BENCH_core.json
//	vbbench -all -quick         # everything at reduced sizes
//
// -workers bounds the rank scheduler's worker pool for every run
// (0 = GOMAXPROCS, negative = legacy unpooled); virtual results are
// bit-identical across all settings.
//
// -faults applies a deterministic fault-injection spec (see
// internal/fault) to the Table 1/2 runs; -faultsweep runs its own
// per-rate specs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/bench/serve"
	"vbuscluster/internal/cliutil"
	"vbuscluster/internal/core"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/lmad"
	_ "vbuscluster/internal/nic" // register the vbus and ethernet backends
)

func main() {
	table := flag.Int("table", 0, "which table to regenerate (1 or 2); 0 with -all/-micro")
	micro := flag.Bool("micro", false, "run the §2 card microbenchmarks")
	crossover := flag.Bool("crossover", false, "sweep write stride to locate the fine/middle/coarse crossover (extension experiment)")
	extra := flag.Bool("extra", false, "supplementary speedup table for SWIM and CFFT2INIT (extension experiment)")
	all := flag.Bool("all", false, "run everything")
	quick := flag.Bool("quick", false, "reduced problem sizes (fast)")
	procs := flag.Int("procs", 4, "processor count for table 2")
	fabric := flag.String("fabric", "", cliutil.FabricFlagUsage("interconnect backend: "))
	profile := flag.Bool("profile", false, "print the traced communication matrix of each Table 2 program")
	faultSpec := flag.String("faults", "", "deterministic fault-injection spec for the table runs, e.g. 'seed=1,flitdrop=1e-3'")
	faultSweep := flag.Bool("faultsweep", false, "sweep flit-drop rates on MM, verifying payloads and reporting bandwidth/retry overhead")
	sweepSeed := flag.Uint64("faultseed", 1, "fault-injection seed for -faultsweep and -killsweep")
	killSweep := flag.Bool("killsweep", false, "sweep rank-crash points on a resilient MM run, verifying recovered payloads against the fault-free run")
	killVictim := flag.Int("killvictim", 1, "rank to crash in -killsweep")
	coalSweep := flag.Bool("coalsweep", false, "sweep strided PUT shapes to locate the pack-vs-PIO crossover, payload-verified")
	coalesce := flag.Bool("coalesce", false, "enable the compiler's pack-and-coalesce stage for the table runs")
	scaleSweep := flag.Bool("scalesweep", false, "weak-scaling sweep of MM and SWIM, 4..1024 ranks, across all fabrics")
	scaleOut := flag.String("scaleout", "BENCH_scale.json", "write the -scalesweep rows as JSON to this file ('' = stdout table only)")
	coreBench := flag.Bool("corebench", false, "end-to-end wall-time baseline of the benchmark trio at 4 ranks")
	coreOut := flag.String("coreout", "BENCH_core.json", "write the -corebench rows as JSON to this file ('' = stdout table only)")
	serveSweep := flag.Bool("servesweep", false, "closed-loop throughput sweep against an in-process vbserve job server")
	serveOut := flag.String("serveout", "BENCH_serve.json", "write the -servesweep rows as JSON to this file ('' = stdout table only)")
	serveClusters := flag.Int("serveclusters", 4, "simulated cluster (worker) count for -servesweep")
	chaosSweep := flag.Bool("chaossweep", false, "seeded chaos sweep: poison specs, worker kills, deadline storms, rate-limit floods, restart-warm replay")
	chaosSeed := flag.Uint64("chaosseed", 42, "seed for -chaossweep fault schedules (replayable)")
	chaosOut := flag.String("chaosout", "BENCH_serve.json", "merge the -chaossweep result into this JSON file under \"chaos\" ('' = stdout only)")
	peerSweep := flag.Bool("peersweep", false, "three-peer federation sweep: consistent-hash forwarding, a mid-run hard kill, failover and rebalance assertions")
	peerSeed := flag.Uint64("peerseed", 42, "seed for -peersweep forwarder jitter")
	peerOut := flag.String("peerout", "BENCH_serve.json", "merge the -peersweep result into this JSON file under \"peers\" ('' = stdout only)")
	rdmaSweep := flag.Bool("rdmasweep", false, "five-fabric comparison plus the rdma eager/rendezvous crossover table, payload-verified")
	rdmaOut := flag.String("rdmaout", "BENCH_core.json", "merge the -rdmasweep crossover row into this JSON file under \"rdma\" ('' = stdout only)")
	benchGate := flag.Bool("benchgate", false, "re-run -corebench and fail if events/sec regresses >10% vs the checked-in baseline")
	benchBase := flag.String("benchbase", "BENCH_core.json", "baseline file for -benchgate")
	workers := flag.Int("workers", 0, "rank scheduler worker-pool size: 0 = GOMAXPROCS, negative = unpooled (results identical)")
	flag.Parse()

	check(cliutil.ValidateFabric(*fabric))
	var tableOpts []bench.RunOption
	if *faultSpec != "" {
		inj, err := fault.FromString(*faultSpec)
		check(err)
		tableOpts = append(tableOpts, bench.WithFaults(inj))
	}
	if *coalesce {
		tableOpts = append(tableOpts, bench.WithCoalesce())
	}
	if *workers != 0 {
		tableOpts = append(tableOpts, bench.WithWorkers(*workers))
	}
	runT1 := *table == 1 || *all
	runT2 := *table == 2 || *all
	runMicro := *micro || *all
	runCross := *crossover || *all
	runExtra := *extra || *all
	runProfile := *profile || *all
	runSweep := *faultSweep || *all
	runKill := *killSweep || *all
	runCoal := *coalSweep || *all
	runScale := *scaleSweep || *all
	runCore := *coreBench || *all
	runServe := *serveSweep || *all
	runChaos := *chaosSweep || *all
	runPeers := *peerSweep || *all
	runRdma := *rdmaSweep || *all
	if !runT1 && !runT2 && !runMicro && !runCross && !runExtra && !runProfile && !runSweep && !runKill && !runCoal && !runScale && !runCore && !runServe && !runChaos && !runPeers && !runRdma && !*benchGate {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table 1, -table 2, -micro, -crossover, -extra, -profile, -faultsweep, -killsweep, -coalsweep, -rdmasweep, -scalesweep, -corebench, -servesweep, -chaossweep, -peersweep, -benchgate or -all")
		os.Exit(2)
	}

	if runT1 {
		sizes := []int{256, 512, 1024}
		if *quick {
			sizes = []int{64, 128, 256}
		}
		rows, err := bench.Table1(sizes, []int{1, 2, 4}, lmad.Fine, *fabric, tableOpts...)
		check(err)
		fmt.Println(bench.FormatTable1(rows))
		fmt.Println("raw cells:")
		for _, r := range rows {
			fmt.Printf("  MM %4d*%-4d procs=%d seq=%v par=%v speedup=%.3f\n",
				r.Size, r.Size, r.Procs, r.Seq, r.Par, r.Speedup)
		}
		fmt.Println()
	}

	if runT2 {
		mmN, swimN, cfftM := 1024, 512, 11
		if *quick {
			mmN, swimN, cfftM = 128, 128, 9
		}
		rows, err := bench.Table2(bench.Table2Benchmarks(mmN, swimN, cfftM), *procs, *fabric, tableOpts...)
		check(err)
		fmt.Println(bench.FormatTable2(rows))
		fmt.Println("raw cells:")
		for _, r := range rows {
			fmt.Printf("  %-22s %-6v comm=%-12v elapsed=%-12v msgs=%-6d bytes=%d\n",
				r.Benchmark, r.Grain, r.CommTime, r.Elapsed, r.Messages, r.Bytes)
		}
		fmt.Println()
	}

	if runMicro {
		res, err := bench.RunMicro()
		check(err)
		fmt.Println(res)
	}

	if runSweep {
		n := 64
		if *quick {
			n = 32
		}
		rates := []float64{0, 1e-4, 1e-3, 1e-2, 5e-2}
		rows, err := bench.FaultSweep(n, *procs, *sweepSeed, rates, *fabric)
		check(err)
		fmt.Println(bench.FormatFaultSweep(rows))
	}

	if runKill {
		n := 48
		if *quick {
			n = 24
		}
		// 0-20 crash during the first epoch (replay from program start),
		// 45 crashes after the checkpoint committed (restore + replay),
		// and 60 exceeds the victim's total operation count: a control
		// row showing an unfired budget costs nothing.
		ops := []int64{0, 5, 20, 45, 60}
		rows, err := bench.KillSweep(n, *procs, *killVictim, *sweepSeed, ops, *fabric)
		check(err)
		fmt.Println(bench.FormatKillSweep(rows))
	}

	if runCoal {
		elems := []int{4, 8, 16, 32, 48, 64, 128, 256, 1024, 4096}
		if *quick {
			elems = []int{8, 32, 64, 256}
		}
		points, err := bench.CoalSweep(elems, []int{2, 4, 16}, *fabric)
		check(err)
		fmt.Println(bench.FormatCoalSweep(points, *fabric))
	}

	if runScale {
		ranks := []int{4, 16, 64, 256, 1024}
		if *quick {
			ranks = []int{4, 16, 64}
		}
		fabrics := []string{"vbus", "vbus3d", "ethernet", "ideal"}
		rows, err := bench.ScaleSweep(nil, ranks, fabrics, tableOpts...)
		check(err)
		fmt.Println(bench.FormatScaleSweep(rows))
		if *scaleOut != "" {
			f, err := os.Create(*scaleOut)
			check(err)
			check(bench.WriteJSON(f, "vbbench-scalesweep/v1", rows))
			check(f.Close())
			fmt.Fprintf(os.Stderr, "vbbench: wrote %d scale rows to %s\n", len(rows), *scaleOut)
		}
	}

	if runCore {
		rows, err := bench.CoreBench(*fabric, tableOpts...)
		check(err)
		fmt.Println(bench.FormatCoreBench(rows))
		if *coreOut != "" {
			f, err := os.Create(*coreOut)
			check(err)
			check(bench.WriteJSON(f, "vbbench-corebench/v1", rows))
			check(f.Close())
			fmt.Fprintf(os.Stderr, "vbbench: wrote %d baseline rows to %s\n", len(rows), *coreOut)
		}
	}

	if runServe {
		clients := []int{1, 2, 4, 8, 16}
		perClient := 24
		if *quick {
			clients = []int{1, 4}
			perClient = 8
		}
		rows, err := serve.ServeSweep(clients, perClient, *serveClusters)
		check(err)
		fmt.Println(serve.FormatServeSweep(rows))
		if *serveOut != "" {
			f, err := os.Create(*serveOut)
			check(err)
			check(bench.WriteJSON(f, "vbbench-servesweep/v1", rows))
			check(f.Close())
			fmt.Fprintf(os.Stderr, "vbbench: wrote %d service rows to %s\n", len(rows), *serveOut)
		}
	}

	if runChaos {
		res, err := serve.ChaosSweep(*chaosSeed)
		check(err)
		fmt.Println(serve.FormatChaos(res))
		if *chaosOut != "" {
			check(mergeServeSection(*chaosOut, "chaos", res))
			fmt.Fprintf(os.Stderr, "vbbench: merged chaos result into %s\n", *chaosOut)
		}
	}

	if runPeers {
		res, err := serve.PeerSweep(*peerSeed)
		check(err)
		fmt.Println(serve.FormatPeers(res))
		if *peerOut != "" {
			check(mergeServeSection(*peerOut, "peers", res))
			fmt.Fprintf(os.Stderr, "vbbench: merged peer result into %s\n", *peerOut)
		}
	}

	if runRdma {
		res, err := bench.RdmaSweep(*quick)
		check(err)
		fmt.Println(bench.FormatRdmaSweep(res))
		if *rdmaOut != "" {
			check(mergeSection(*rdmaOut, "vbbench-corebench/v1", "rdma", res.Gate))
			fmt.Fprintf(os.Stderr, "vbbench: merged rdma crossover row into %s\n", *rdmaOut)
		}
	}

	if *benchGate {
		check(serve.BenchGate(*benchBase, *fabric, 3, 0.10))
		fmt.Println("bench-gate: core baseline within tolerance")
	}

	if runProfile {
		mmN, swimN, cfftM := 1024, 512, 11
		if *quick {
			mmN, swimN, cfftM = 128, 128, 9
		}
		out, err := bench.CommProfiles(bench.Table2Benchmarks(mmN, swimN, cfftM), *procs, lmad.Coarse, *fabric)
		check(err)
		fmt.Println("Communication matrices of the Table 2 programs (accounted bytes, origin row -> peer column):")
		fmt.Println(out)
	}

	if runExtra {
		swimN, cfftM := 512, 11
		if *quick {
			swimN, cfftM = 128, 9
		}
		fmt.Println("Supplementary speedups (coarse grain, best of Table 2):")
		fmt.Println("benchmark\tprocs\tspeedup")
		for name, src := range bench.Table2Benchmarks(0, swimN, cfftM) {
			if name[:2] == "MM" {
				continue // Table 1 covers MM
			}
			for _, p := range []int{1, 2, 4} {
				c, err := core.Compile(src, core.Options{NumProcs: p, Grain: lmad.Coarse, Fabric: *fabric})
				check(err)
				s, err := c.Speedup()
				check(err)
				fmt.Printf("%s\t%d\t%.3f\n", name, p, s)
			}
		}
		fmt.Println("MM scalability beyond the paper's 4 nodes (1024*1024, fine grain):")
		fmt.Println("procs\tspeedup")
		mmN := 1024
		if *quick {
			mmN = 128
		}
		for _, p := range []int{1, 2, 4, 8, 16} {
			c, err := core.Compile(bench.MMSource(mmN), core.Options{NumProcs: p, Fabric: *fabric})
			check(err)
			s, err := c.Speedup()
			check(err)
			fmt.Printf("%d\t%.3f\n", p, s)
		}
		fmt.Println()
	}

	if runCross {
		n := 1 << 15
		if *quick {
			n = 1 << 12
		}
		points, err := bench.Crossover(n, []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}, *procs, *fabric)
		check(err)
		fmt.Println(bench.FormatCrossover(points))
	}
}

func check(err error) { cliutil.Check("vbbench", err) }

// mergeServeSection folds one sweep's result into the serve benchmark
// file under the given key, preserving every other section already
// there (-servesweep rows, "chaos", "peers" — all report into
// BENCH_serve.json).
func mergeServeSection(path, key string, res any) error {
	return mergeSection(path, "vbbench-servesweep/v1", key, res)
}

// mergeSection folds one sweep's result into a schema-tagged JSON
// benchmark file under the given key, preserving every other section
// already there. A missing file starts a fresh envelope with
// defaultSchema.
func mergeSection(path, defaultSchema, key string, res any) error {
	doc := map[string]interface{}{"schema": defaultSchema}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("vbbench: %s exists but is not JSON: %w", path, err)
		}
	}
	doc[key] = res
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
