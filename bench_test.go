// Package vbuscluster's top-level benchmarks regenerate every table and
// figure-level claim of the paper (see DESIGN.md §5 for the index):
//
//	BenchmarkTable1MM          — Table 1, MM speedups (sizes × nodes)
//	BenchmarkTable2MM/SWIM/CFFT — Table 2, comm time by granularity
//	BenchmarkSKWPBandwidth     — §2.1, SKWP vs conventional pipelining
//	BenchmarkLatencyVsEthernet — §2.1, V-Bus vs Fast Ethernet latency
//	BenchmarkBroadcast         — §2.1, virtual bus vs software trees
//
// Virtual-time results are attached as custom metrics (speedup,
// comm-seconds, ratios); wall-clock ns/op only measures the simulator.
package vbuscluster

import (
	"fmt"
	"testing"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/core"
	"vbuscluster/internal/fabric"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
)

// Paper-scale sizes keep even the 1024² MM tractable because the
// harness runs in timing mode (closed-form compute charging).
var table1Sizes = []int{256, 512, 1024}

func BenchmarkTable1MM(b *testing.B) {
	for _, size := range table1Sizes {
		for _, procs := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/procs=%d", size, procs), func(b *testing.B) {
				var speedup float64
				for i := 0; i < b.N; i++ {
					rows, err := bench.Table1([]int{size}, []int{procs}, lmad.Fine, "")
					if err != nil {
						b.Fatal(err)
					}
					speedup = rows[0].Speedup
				}
				b.ReportMetric(speedup, "speedup")
			})
		}
	}
}

func benchTable2(b *testing.B, name, src string) {
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		b.Run(grain.String(), func(b *testing.B) {
			var comm sim.Time
			for i := 0; i < b.N; i++ {
				c, err := core.Compile(src, core.Options{NumProcs: 4, Grain: grain})
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.RunParallel(core.Timing)
				if err != nil {
					b.Fatal(err)
				}
				comm = res.Report.TotalXferTime()
			}
			b.ReportMetric(comm.Seconds(), "comm-s")
		})
	}
	_ = name
}

func BenchmarkTable2MM(b *testing.B)   { benchTable2(b, "MM", bench.MMSource(1024)) }
func BenchmarkTable2SWIM(b *testing.B) { benchTable2(b, "SWIM", bench.SwimSource(512, 512)) }
func BenchmarkTable2CFFT(b *testing.B) { benchTable2(b, "CFFT2INIT", bench.CFFTSource(11)) }

func BenchmarkSKWPBandwidth(b *testing.B) {
	cfg := nic.DefaultVBusConfig()
	for _, mode := range []fabric.PipelineMode{fabric.Conventional, fabric.Wave, fabric.SKWP} {
		b.Run(mode.String(), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				p, err := fabric.NewPath(fabric.PathConfig{
					Mode: mode, Lines: cfg.Lines, Margin: cfg.Margin,
					Sampler: cfg.Sampler, Hops: 3, RouterLatency: cfg.RouterLatency,
				})
				if err != nil {
					b.Fatal(err)
				}
				bw = p.EffectiveBandwidth(1 << 16)
			}
			b.ReportMetric(bw/1e6, "MB/s")
		})
	}
}

func BenchmarkLatencyVsEthernet(b *testing.B) {
	vbus, err := nic.NewVBus(nic.DefaultVBusConfig())
	if err != nil {
		b.Fatal(err)
	}
	eth, err := nic.NewEthernet(nic.DefaultEthernetConfig())
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = float64(eth.SmallMessageLatency()) / float64(vbus.SmallMessageLatency())
	}
	b.ReportMetric(vbus.SmallMessageLatency().Micros(), "vbus-us")
	b.ReportMetric(eth.SmallMessageLatency().Micros(), "ethernet-us")
	b.ReportMetric(ratio, "ratio")
}

func BenchmarkBroadcast(b *testing.B) {
	for _, bytes := range []int{4096, 65536, 1 << 20} {
		b.Run(fmt.Sprintf("bytes=%d", bytes), func(b *testing.B) {
			var vbusT, treeT sim.Time
			for i := 0; i < b.N; i++ {
				res, err := bench.RunMicro()
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range res.Broadcast {
					if p.Bytes == bytes {
						vbusT, treeT = p.VBus, p.TreeP2P
					}
				}
			}
			b.ReportMetric(vbusT.Micros(), "vbus-us")
			b.ReportMetric(treeT.Micros(), "tree-us")
			b.ReportMetric(float64(treeT)/float64(vbusT), "ratio")
		})
	}
}

// avpgAblationSrc mirrors the paper's Figure 7: array B is written in
// the first loop and never used again (its collect is redundant), and
// array A propagates across an intervening loop before its next use.
const avpgAblationSrc = `
      PROGRAM FIG7
      INTEGER N
      PARAMETER (N = 4096)
      REAL A(N), B(N), C(N)
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I)
        B(I) = REAL(2*I)
      ENDDO
      DO I = 1, N
        C(I) = REAL(I) * 0.5
      ENDDO
      DO I = 1, N
        C(I) = C(I) + A(I)
      ENDDO
      PRINT *, C(1)
      END
`

// BenchmarkAblationAVPG quantifies §5.2's redundant-communication
// elimination: comm time of the Figure-7 program with the AVPG active
// versus the naive every-boundary scheme (approximated by the extra
// bytes the eliminated collects would have moved).
func BenchmarkAblationAVPG(b *testing.B) {
	var elim int
	var comm sim.Time
	for i := 0; i < b.N; i++ {
		c, err := core.Compile(avpgAblationSrc, core.Options{NumProcs: 4, Grain: lmad.Coarse, NoLiveOut: true})
		if err != nil {
			b.Fatal(err)
		}
		elim = c.SPMD.EliminatedCollects + c.SPMD.EliminatedScatters
		res, err := c.RunParallel(core.Timing)
		if err != nil {
			b.Fatal(err)
		}
		comm = res.Report.TotalXferTime()
	}
	b.ReportMetric(float64(elim), "eliminated-ops")
	b.ReportMetric(comm.Seconds(), "comm-s")
	if elim == 0 {
		b.Fatal("AVPG eliminated nothing on the Figure-7 program")
	}
}

// BenchmarkAblationOneSidedVsTwoSided quantifies §2.2's case for
// MPI_PUT/MPI_GET: the same contiguous scatter/collect plans issued as
// one-sided DMA transfers versus MPI-1 SEND/RECEIVE pairs with their
// pack/unpack copies and receiver involvement.
func BenchmarkAblationOneSidedVsTwoSided(b *testing.B) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 65536)
      REAL A(N), B(N)
      INTEGER I
      DO I = 1, N
        B(I) = REAL(I)
      ENDDO
      DO I = 1, N
        A(I) = B(I) * 2.0
      ENDDO
      PRINT *, A(1)
      END
`
	for _, twoSided := range []bool{false, true} {
		name := "one-sided"
		if twoSided {
			name = "two-sided"
		}
		b.Run(name, func(b *testing.B) {
			var comm sim.Time
			for i := 0; i < b.N; i++ {
				c, err := core.Compile(src, core.Options{
					NumProcs: 4, Grain: lmad.Coarse, TwoSided: twoSided,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.RunParallel(core.Timing)
				if err != nil {
					b.Fatal(err)
				}
				comm = res.Report.TotalXferTime()
			}
			b.ReportMetric(comm.Seconds()*1e3, "comm-ms")
		})
	}
}

// BenchmarkAblationPushVsPull compares the master-driven PUT scatter
// against the slave-driven GET scatter (§2.2: either end can drive a
// one-sided transfer; pulling overlaps the slaves' transfers).
func BenchmarkAblationPushVsPull(b *testing.B) {
	for _, pull := range []bool{false, true} {
		name := "push-put"
		if pull {
			name = "pull-get"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				c, err := core.Compile(bench.MMSource(256), core.Options{
					NumProcs: 4, Grain: lmad.Coarse, PullScatter: pull,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.RunParallel(core.Timing)
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "elapsed-s")
		})
	}
}

// BenchmarkAblationVBusVsEthernet re-runs the Table 2 MM experiment on
// a cluster whose NIC is the Fast Ethernet reference card instead of
// the V-Bus card — the whole-system version of the §2 comparison.
func BenchmarkAblationVBusVsEthernet(b *testing.B) {
	run := func(b *testing.B, card nic.Card) sim.Time {
		params := cluster.DefaultParams()
		params.Fabric = card
		c, err := core.Compile(bench.MMSource(256), core.Options{
			NumProcs: 4, Grain: lmad.Coarse, Params: &params,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.RunParallel(core.Timing)
		if err != nil {
			b.Fatal(err)
		}
		return res.Report.TotalXferTime()
	}
	b.Run("vbus", func(b *testing.B) {
		var t sim.Time
		for i := 0; i < b.N; i++ {
			card, _ := nic.NewVBus(nic.DefaultVBusConfig())
			t = run(b, card)
		}
		b.ReportMetric(t.Seconds(), "comm-s")
	})
	b.Run("fast-ethernet", func(b *testing.B) {
		var t sim.Time
		for i := 0; i < b.N; i++ {
			card, _ := nic.NewEthernet(nic.DefaultEthernetConfig())
			t = run(b, card)
		}
		b.ReportMetric(t.Seconds(), "comm-s")
	})
}
