// Integration tests: build the three binaries and drive them end to
// end on the testdata programs.
package vbuscluster

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinaries compiles the cmd/ tree once per test binary run.
func buildBinaries(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"vbcc", "vbrun", "vbbench", "vbtrace"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bins := buildBinaries(t)

	t.Run("vbcc-explain", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbcc"), "-explain", "-grain", "coarse", "testdata/jacobi.f")
		if !strings.Contains(out, "parallel=true") {
			t.Fatalf("no parallel loops reported:\n%s", out)
		}
		if !strings.Contains(out, "SPMD program") {
			t.Fatalf("no translation report:\n%s", out)
		}
	})

	t.Run("vbcc-spmd-listing", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbcc"), "-spmd", "testdata/dotprod.f")
		for _, want := range []string{"CALL MPI_INIT", "MPI_ALLREDUCE", "CALL MPI_BARRIER"} {
			if !strings.Contains(out, want) {
				t.Fatalf("SPMD listing missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("vbcc-emit-reparses", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbcc"), "-emit", "testdata/tridiag.f")
		if !strings.Contains(out, "PROGRAM TRI") {
			t.Fatalf("emit output:\n%s", out)
		}
	})

	t.Run("vbrun-seq-vs-par", func(t *testing.T) {
		vbrun := filepath.Join(bins, "vbrun")
		seq := run(t, vbrun, "-seq", "testdata/dotprod.f")
		par := run(t, vbrun, "-procs", "4", "-grain", "coarse", "testdata/dotprod.f")
		seqLine := strings.SplitN(seq, "\n", 2)[0]
		parLine := strings.SplitN(par, "\n", 2)[0]
		if !strings.HasPrefix(seqLine, "DOT") || !strings.HasPrefix(parLine, "DOT") {
			t.Fatalf("program output missing: %q vs %q", seqLine, parLine)
		}
		// The dot product involves a reduction: values agree to FP
		// reassociation; compare a common prefix.
		n := 10
		if len(seqLine) < n || len(parLine) < n {
			n = min(len(seqLine), len(parLine))
		}
		if seqLine[:n] != parLine[:n] {
			t.Fatalf("outputs diverge: %q vs %q", seqLine, parLine)
		}
	})

	t.Run("vbrun-profile", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbrun"), "-profile", "testdata/jacobi.f")
		if !strings.Contains(out, "per-region profile") || !strings.Contains(out, "DO I") {
			t.Fatalf("profile missing:\n%s", out)
		}
	})

	t.Run("vbrun-auto-grain", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbrun"), "-grain", "auto", "testdata/fig4.f")
		if !strings.Contains(out, "auto-grain selected:") {
			t.Fatalf("auto grain not reported:\n%s", out)
		}
	})

	t.Run("vbbench-quick", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbbench"), "-table", "2", "-quick")
		if !strings.Contains(out, "Table 2") || !strings.Contains(out, "CFFT2INIT") {
			t.Fatalf("bench output:\n%s", out)
		}
	})

	t.Run("vbcc-passes", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbcc"), "-passes", "testdata/jacobi.f")
		if !strings.Contains(out, "pass pipeline:") {
			t.Fatalf("no pipeline table:\n%s", out)
		}
		for _, pass := range []string{
			"parse", "inline", "const-prop", "induction", "parallel-detect",
			"partition", "spmdize", "scatter-collect", "grain-opt", "avpg", "env-gen",
		} {
			if !strings.Contains(out, pass) {
				t.Fatalf("pipeline missing pass %q:\n%s", pass, out)
			}
		}
	})

	t.Run("vbcc-dump-after", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbcc"), "-dump-after", "inline", "testdata/jacobi.f")
		if !strings.Contains(out, "IR after inline") {
			t.Fatalf("no IR dump:\n%s", out)
		}
	})

	t.Run("vbrun-fabric", func(t *testing.T) {
		vbrun := filepath.Join(bins, "vbrun")
		vbus := run(t, vbrun, "-fabric", "vbus", "-mode", "timing", "testdata/jacobi.f")
		eth := run(t, vbrun, "-fabric", "ethernet", "-mode", "timing", "testdata/jacobi.f")
		ideal := run(t, vbrun, "-fabric", "ideal", "-mode", "timing", "testdata/jacobi.f")
		for name, out := range map[string]string{"vbus": vbus, "ethernet": eth, "ideal": ideal} {
			if !strings.Contains(out, "virtual time:") {
				t.Fatalf("%s run produced no report:\n%s", name, out)
			}
		}
		if vbus == eth {
			t.Fatal("vbus and ethernet runs reported identical timing")
		}
		if !strings.Contains(ideal, "comm 0") {
			t.Fatalf("ideal backend charged communication time:\n%s", ideal)
		}
	})

	t.Run("vbrun-fabric-unknown", func(t *testing.T) {
		cmd := exec.Command(filepath.Join(bins, "vbrun"), "-fabric", "no-such-fabric", "testdata/jacobi.f")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("unknown fabric accepted:\n%s", out)
		}
		if !strings.Contains(string(out), "unknown backend") {
			t.Fatalf("unhelpful error:\n%s", out)
		}
	})

	t.Run("vbbench-fabric", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbbench"), "-table", "1", "-quick", "-fabric", "ideal")
		if !strings.Contains(out, "Table 1") {
			t.Fatalf("bench output:\n%s", out)
		}
	})

	t.Run("vbrun-trace", func(t *testing.T) {
		traceFile := filepath.Join(t.TempDir(), "run.json")
		out := run(t, filepath.Join(bins, "vbrun"), "-trace", traceFile, "-profile",
			"-mode", "timing", "testdata/jacobi.f")
		for _, want := range []string{"per-rank profile", "communication matrix", "wrote"} {
			if !strings.Contains(out, want) {
				t.Fatalf("trace run output missing %q:\n%s", want, out)
			}
		}
		// vbtrace is the validator: it parses the JSON and fails on any
		// malformed event, so a clean exit proves the export is loadable.
		summary := run(t, filepath.Join(bins, "vbtrace"), traceFile)
		for _, want := range []string{"compiler", "rank 0", "rank 3", "events"} {
			if !strings.Contains(summary, want) {
				t.Fatalf("trace summary missing %q:\n%s", want, summary)
			}
		}
	})

	t.Run("vbcc-trace", func(t *testing.T) {
		traceFile := filepath.Join(t.TempDir(), "passes.json")
		run(t, filepath.Join(bins, "vbcc"), "-trace", traceFile, "testdata/jacobi.f")
		summary := run(t, filepath.Join(bins, "vbtrace"), traceFile)
		if !strings.Contains(summary, "compiler") {
			t.Fatalf("no compiler track in vbcc trace:\n%s", summary)
		}
	})

	t.Run("vbbench-profile", func(t *testing.T) {
		out := run(t, filepath.Join(bins, "vbbench"), "-profile", "-quick")
		if !strings.Contains(out, "Communication matrices") ||
			!strings.Contains(out, "communication matrix") {
			t.Fatalf("bench profile output:\n%s", out)
		}
		for _, want := range []string{"MM", "Swim", "CFFT2INIT"} {
			if !strings.Contains(out, want) {
				t.Fatalf("profile missing benchmark %q:\n%s", want, out)
			}
		}
	})

	// Tracing must not perturb the run: byte-identical benchmark cells
	// with and without a recorder attached are asserted at the unit
	// level (core.TestRecorderDoesNotChangeTiming); here we pin that two
	// plain runs of the same table are bit-identical, the determinism the
	// trace exports inherit.
	t.Run("vbbench-deterministic", func(t *testing.T) {
		a := run(t, filepath.Join(bins, "vbbench"), "-table", "2", "-quick")
		b := run(t, filepath.Join(bins, "vbbench"), "-table", "2", "-quick")
		if a != b {
			t.Fatal("table 2 output differs across runs")
		}
	})
}
