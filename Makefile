# Repository CI entry points. `make ci` is the gate: formatting, vet,
# build, tests, and a quick end-to-end benchmark smoke run.

GO ?= go

.PHONY: ci fmt vet build test smoke bench

ci: fmt vet build test smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

smoke:
	$(GO) run ./cmd/vbbench -table 1 -quick
	$(GO) run ./cmd/vbbench -table 1 -quick -fabric ideal > /dev/null
	$(GO) run ./cmd/vbcc -passes testdata/jacobi.f > /dev/null

bench:
	$(GO) test -bench=. -benchmem .
