# Repository CI entry points. `make ci` is the gate: formatting, vet,
# build, tests (including the race detector), and end-to-end smoke runs
# of the benchmark tables and the tracing pipeline.

GO ?= go

.PHONY: ci fmt vet build test race smoke trace-smoke fault-smoke recovery-smoke coalesce-smoke scale-smoke workers-smoke serve-smoke chaos-smoke peer-smoke rdma-smoke bench-gate bench

ci: fmt vet build test race smoke trace-smoke fault-smoke recovery-smoke coalesce-smoke scale-smoke workers-smoke serve-smoke chaos-smoke peer-smoke rdma-smoke bench-gate

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

smoke:
	$(GO) run ./cmd/vbbench -table 1 -quick
	$(GO) run ./cmd/vbbench -table 1 -quick -fabric ideal > /dev/null
	$(GO) run ./cmd/vbcc -passes testdata/jacobi.f > /dev/null

# Run a traced program end to end and validate that the exported
# Chrome trace-event JSON parses (vbtrace exits non-zero otherwise).
trace-smoke:
	$(GO) run ./cmd/vbrun -trace /tmp/vbus-trace-smoke.json -profile -mode timing testdata/jacobi.f > /dev/null
	$(GO) run ./cmd/vbtrace /tmp/vbus-trace-smoke.json
	@rm -f /tmp/vbus-trace-smoke.json

# Determinism gate for the fault injector: the same seeded fault spec
# must produce byte-identical output across two runs.
fault-smoke:
	$(GO) run ./cmd/vbrun -faults 'seed=1,flitdrop=1e-3' testdata/matmul.f > /tmp/vbus-fault-a.txt
	$(GO) run ./cmd/vbrun -faults 'seed=1,flitdrop=1e-3' testdata/matmul.f > /tmp/vbus-fault-b.txt
	cmp /tmp/vbus-fault-a.txt /tmp/vbus-fault-b.txt
	@rm -f /tmp/vbus-fault-a.txt /tmp/vbus-fault-b.txt

# Crash-survival gate: the checkpoint serializer must be race-clean,
# and a seeded mid-run rank crash under -resilient must recover with
# program output byte-identical to the fault-free resilient run (the
# timing/resilience footer lines differ, so only the program text is
# diffed). The crashed run's exported timeline must also validate,
# including its checkpoint and recovery intervals.
recovery-smoke:
	$(GO) test -race ./internal/ckpt
	$(GO) run ./cmd/vbrun -resilient testdata/matmul.f | sed '/^---/d' > /tmp/vbus-recovery-clean.txt
	$(GO) run ./cmd/vbrun -resilient -faults 'seed=0,crashafter=1/5' -trace /tmp/vbus-recovery.json testdata/matmul.f | sed '/^---/d' > /tmp/vbus-recovery-crash.txt
	cmp /tmp/vbus-recovery-clean.txt /tmp/vbus-recovery-crash.txt
	$(GO) run ./cmd/vbtrace /tmp/vbus-recovery.json > /dev/null
	@rm -f /tmp/vbus-recovery-clean.txt /tmp/vbus-recovery-crash.txt /tmp/vbus-recovery.json

# Pack-and-coalesce gate: the quick crossover sweep must verify its
# payloads on both paths (CoalSweep fails otherwise), a coalesced run
# of the strided kernel must print the same program text as the plain
# run, and its exported timeline — with put.p/get.p bursts on the pack
# transport — must validate under vbtrace's pack-class pinning.
coalesce-smoke:
	$(GO) run ./cmd/vbbench -coalsweep -quick > /dev/null
	$(GO) run ./cmd/vbrun testdata/stride.f | sed '/^---/d' > /tmp/vbus-coal-plain.txt
	$(GO) run ./cmd/vbrun -coalesce -trace /tmp/vbus-coal.json testdata/stride.f | sed '/^---/d' > /tmp/vbus-coal-on.txt
	cmp /tmp/vbus-coal-plain.txt /tmp/vbus-coal-on.txt
	grep -q '"cat":"pack"' /tmp/vbus-coal.json
	$(GO) run ./cmd/vbtrace /tmp/vbus-coal.json > /dev/null
	@rm -f /tmp/vbus-coal-plain.txt /tmp/vbus-coal-on.txt /tmp/vbus-coal.json

# Scale gate: a 64-rank MM weak-scaling point on the 3D-torus fabric
# must complete under the race detector inside a 512 MB memory budget
# (runtime.MemStats), and a vbus3d run's exported timeline must
# validate against its pinned rank count and geometry.
scale-smoke:
	$(GO) test -race -run TestScaleSmoke ./internal/bench
	$(GO) run ./cmd/vbrun -fabric vbus3d -mode timing -trace /tmp/vbus-3d-smoke.json testdata/jacobi.f > /dev/null
	$(GO) run ./cmd/vbtrace -ranks 4 -dims 2x2x1 /tmp/vbus-3d-smoke.json > /dev/null
	@rm -f /tmp/vbus-3d-smoke.json

# Worker-pool gate: program output must be byte-identical with one
# worker, the default pool (GOMAXPROCS) and the legacy unpooled
# launcher.
workers-smoke:
	$(GO) run ./cmd/vbrun -workers 1 testdata/matmul.f > /tmp/vbus-w1.txt
	$(GO) run ./cmd/vbrun testdata/matmul.f > /tmp/vbus-wn.txt
	$(GO) run ./cmd/vbrun -workers -1 testdata/matmul.f > /tmp/vbus-wu.txt
	cmp /tmp/vbus-w1.txt /tmp/vbus-wn.txt
	cmp /tmp/vbus-w1.txt /tmp/vbus-wu.txt
	@rm -f /tmp/vbus-w1.txt /tmp/vbus-wn.txt /tmp/vbus-wu.txt

# Service gate: a race-built vbserve must accept the example MM job
# twice over HTTP (the second as a plan-cache hit), then drain clean on
# SIGTERM with exit status 0.
serve-smoke:
	$(GO) build -race -o /tmp/vbserve-smoke ./cmd/vbserve
	/tmp/vbserve-smoke -addr 127.0.0.1:18807 -clusters 2 & \
	pid=$$!; \
	sleep 1; \
	curl -sf -X POST --data @examples/serve_mm.json 'http://127.0.0.1:18807/v1/jobs?wait=1' > /tmp/vbus-serve-1.json && \
	curl -sf -X POST --data @examples/serve_mm.json 'http://127.0.0.1:18807/v1/jobs?wait=1' > /tmp/vbus-serve-2.json && \
	grep -q '"cache_hit": false' /tmp/vbus-serve-1.json && \
	grep -q '"cache_hit": true' /tmp/vbus-serve-2.json && \
	grep -q '"state": "done"' /tmp/vbus-serve-2.json && \
	kill -TERM $$pid && wait $$pid
	@rm -f /tmp/vbserve-smoke /tmp/vbus-serve-1.json /tmp/vbus-serve-2.json

# Robustness gate: the jobs layer's hardening tests under the race
# detector, the seeded chaos sweep (poison specs, worker kills,
# deadline storms, rate-limit floods — every invariant asserted), and
# an end-to-end daemon exercise: a poison job fails without taking the
# server down, a stalled job is cancelled at its deadline, SIGTERM
# journals the plan cache, and the restarted server answers the same
# job from the warmed cache.
chaos-smoke:
	$(GO) test -race ./internal/jobs
	$(GO) run ./cmd/vbbench -chaossweep -chaosout '' > /dev/null
	$(GO) build -race -o /tmp/vbserve-chaos ./cmd/vbserve
	sed 's/"tenant": "demo",/"tenant": "demo", "faults": "panicjob=1",/' examples/serve_mm.json > /tmp/vbus-chaos-poison.json
	sed 's/"tenant": "demo",/"tenant": "demo", "faults": "stalljob=10s", "deadline_ms": 200,/' examples/serve_mm.json > /tmp/vbus-chaos-stall.json
	rm -f /tmp/vbus-chaos.vbpj
	/tmp/vbserve-chaos -addr 127.0.0.1:18809 -clusters 2 -cache-journal /tmp/vbus-chaos.vbpj & \
	pid=$$!; \
	sleep 1; \
	curl -sf 'http://127.0.0.1:18809/healthz/ready' > /dev/null && \
	curl -sf -X POST --data @/tmp/vbus-chaos-poison.json 'http://127.0.0.1:18809/v1/jobs?wait=1' | grep -q '"state": "failed"' && \
	curl -sf -X POST --data @/tmp/vbus-chaos-stall.json 'http://127.0.0.1:18809/v1/jobs?wait=1' | grep -q '"state": "cancelled"' && \
	curl -sf -X POST --data @examples/serve_mm.json 'http://127.0.0.1:18809/v1/jobs?wait=1' | grep -q '"state": "done"' && \
	curl -sf 'http://127.0.0.1:18809/healthz/live' > /dev/null && \
	kill -TERM $$pid && wait $$pid
	test -s /tmp/vbus-chaos.vbpj
	/tmp/vbserve-chaos -addr 127.0.0.1:18809 -clusters 2 -cache-journal /tmp/vbus-chaos.vbpj & \
	pid=$$!; \
	sleep 1; \
	curl -sf -X POST --data @examples/serve_mm.json 'http://127.0.0.1:18809/v1/jobs?wait=1' > /tmp/vbus-chaos-warm.json && \
	grep -q '"cache_hit": true' /tmp/vbus-chaos-warm.json && \
	grep -q '"state": "done"' /tmp/vbus-chaos-warm.json && \
	kill -TERM $$pid && wait $$pid
	@rm -f /tmp/vbserve-chaos /tmp/vbus-chaos-poison.json /tmp/vbus-chaos-stall.json /tmp/vbus-chaos.vbpj /tmp/vbus-chaos-warm.json

# Federation gate: the peer package under the race detector, the
# seeded three-peer sweep (forwarding, mid-run kill, failover and
# rebalance claims asserted), then an end-to-end ring of three
# race-built daemons: a job submitted through node 1 executes at its
# ring owner (the X-VBus-Peer header names it), the same job through
# node 2 is a warm hit at that owner, the owner is then kill -9'd and
# a submission through a survivor still completes, after which the
# survivor's /healthz/ready reports the victim "dead". The remaining
# daemons drain clean on SIGTERM.
peer-smoke:
	$(GO) test -race ./internal/peer
	$(GO) run ./cmd/vbbench -peersweep -peerout '' > /dev/null
	$(GO) build -race -o /tmp/vbserve-peer ./cmd/vbserve
	PEERS=127.0.0.1:18811,127.0.0.1:18812,127.0.0.1:18813; \
	/tmp/vbserve-peer -addr 127.0.0.1:18811 -self 127.0.0.1:18811 -peers $$PEERS -gossip-interval 100ms -clusters 2 & p1=$$!; \
	/tmp/vbserve-peer -addr 127.0.0.1:18812 -self 127.0.0.1:18812 -peers $$PEERS -gossip-interval 100ms -clusters 2 & p2=$$!; \
	/tmp/vbserve-peer -addr 127.0.0.1:18813 -self 127.0.0.1:18813 -peers $$PEERS -gossip-interval 100ms -clusters 2 & p3=$$!; \
	sleep 1; \
	curl -sf -D /tmp/vbus-peer-h1.txt -X POST --data @examples/serve_mm.json 'http://127.0.0.1:18811/v1/jobs?wait=1' | grep -q '"state": "done"' && \
	curl -sf -X POST --data @examples/serve_mm.json 'http://127.0.0.1:18812/v1/jobs?wait=1' | grep -q '"cache_hit": true' && \
	owner=$$(grep -i '^x-vbus-peer:' /tmp/vbus-peer-h1.txt | tr -d '\r' | awk '{print $$2}'); \
	echo "peer-smoke: ring owner is $$owner"; \
	case "$$owner" in \
	  *18811) opid=$$p1; entry=127.0.0.1:18812;; \
	  *18812) opid=$$p2; entry=127.0.0.1:18813;; \
	  *18813) opid=$$p3; entry=127.0.0.1:18811;; \
	  *) echo "peer-smoke: unknown owner '$$owner'"; kill $$p1 $$p2 $$p3 2>/dev/null; exit 1;; \
	esac; \
	kill -9 $$opid && \
	curl -sf -X POST --data @examples/serve_mm.json "http://$$entry/v1/jobs?wait=1" | grep -q '"state": "done"' && \
	sleep 2 && \
	curl -sf "http://$$entry/healthz/ready" | grep -q '"dead"' && \
	ok=0 || ok=1; \
	for p in $$p1 $$p2 $$p3; do [ "$$p" = "$$opid" ] || kill -TERM $$p 2>/dev/null; done; \
	for p in $$p1 $$p2 $$p3; do [ "$$p" = "$$opid" ] || wait $$p || ok=1; done; \
	exit $$ok
	@rm -f /tmp/vbserve-peer /tmp/vbus-peer-h1.txt

# Protocol gate: the eager/rendezvous stack under the race detector,
# the quick protocol sweep (every in-sweep assertion checks a measured
# time against the model to the picosecond), then an end-to-end rdma
# run: program text byte-identical to the default-fabric run, and the
# exported timeline — with eager-transport transfers — validating under
# vbtrace's protocol-class pinning.
rdma-smoke:
	$(GO) test -race -run 'Rdma|RDMA|Protocol|RegCache' ./internal/nic ./internal/interconnect ./internal/mpi ./internal/core
	$(GO) run ./cmd/vbbench -rdmasweep -quick -rdmaout '' > /dev/null
	$(GO) run ./cmd/vbrun testdata/jacobi.f | sed '/^---/d' > /tmp/vbus-rdma-plain.txt
	$(GO) run ./cmd/vbrun -fabric rdma -trace /tmp/vbus-rdma.json testdata/jacobi.f | sed '/^---/d' > /tmp/vbus-rdma-on.txt
	cmp /tmp/vbus-rdma-plain.txt /tmp/vbus-rdma-on.txt
	grep -q '"cat":"eager"' /tmp/vbus-rdma.json
	$(GO) run ./cmd/vbtrace /tmp/vbus-rdma.json > /dev/null
	@rm -f /tmp/vbus-rdma-plain.txt /tmp/vbus-rdma-on.txt /tmp/vbus-rdma.json

# Performance gate: the core baseline must stay within 10% of the
# checked-in BENCH_core.json (best of 3 runs absorbs host noise).
bench-gate:
	$(GO) run ./cmd/vbbench -benchgate

bench:
	$(GO) test -bench=. -benchmem .
