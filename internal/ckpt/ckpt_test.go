package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"vbuscluster/internal/sim"
)

func sample() *Snapshot {
	return &Snapshot{
		Epoch:  3,
		Halted: true,
		Nodes:  []int{0, 2, 3},
		Clocks: []sim.Time{17 * sim.Microsecond, 4 * sim.Millisecond, 0, 981},
		Output: []byte("  1.0000\n  2.0000\n"),
		Regions: []Region{
			{Index: 0, Parallel: true, LoopVar: "I", Line: 12, Elapsed: 5 * sim.Microsecond, Comm: sim.Microsecond},
			{Index: 1, Parallel: false, Line: 30, Elapsed: 44},
		},
		Arrays: map[string][]float64{
			"A":    {1, 2.5, -3, math.Inf(1)},
			"B":    {},
			"IVAR": {42},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []*Snapshot{
		sample(),
		{}, // zero snapshot
		{Epoch: 1, Arrays: map[string][]float64{"X": {0.1}}},
	}
	for i, s := range cases {
		blob := s.Encode()
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		// Decode normalizes empty map values like Encode sees them.
		if s.Arrays == nil {
			s = &Snapshot{Epoch: s.Epoch, Halted: s.Halted, Nodes: s.Nodes,
				Clocks: s.Clocks, Output: s.Output, Regions: s.Regions,
				Arrays: map[string][]float64{}}
		}
		if !snapshotsEqual(got, s) {
			t.Errorf("case %d: round trip mismatch:\n got  %+v\n want %+v", i, got, s)
		}
	}
}

// snapshotsEqual compares with NaN/-0 safe float comparison (bits).
func snapshotsEqual(a, b *Snapshot) bool {
	if a.Epoch != b.Epoch || a.Halted != b.Halted ||
		!reflect.DeepEqual(a.Nodes, b.Nodes) || !reflect.DeepEqual(a.Clocks, b.Clocks) ||
		!bytes.Equal(a.Output, b.Output) || !reflect.DeepEqual(a.Regions, b.Regions) {
		return false
	}
	if len(a.Arrays) != len(b.Arrays) {
		return false
	}
	for name, av := range a.Arrays {
		bv, ok := b.Arrays[name]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				return false
			}
		}
	}
	return true
}

// TestEncodeDeterministic: equal snapshots produce identical bytes —
// map iteration order must not leak into the encoding.
func TestEncodeDeterministic(t *testing.T) {
	a := sample().Encode()
	for i := 0; i < 16; i++ {
		if b := sample().Encode(); !bytes.Equal(a, b) {
			t.Fatalf("encoding differs between runs at iteration %d", i)
		}
	}
}

// TestCorruptionDetected: flipping any single byte of a valid blob
// must fail decoding — almost always ErrCorrupt via the CRC; never a
// silent success.
func TestCorruptionDetected(t *testing.T) {
	blob := sample().Encode()
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		}
	}
}

// TestTruncationDetected: every proper prefix fails with a named
// error, never a panic or silent success.
func TestTruncationDetected(t *testing.T) {
	blob := sample().Encode()
	for n := 0; n < len(blob); n++ {
		_, err := Decode(blob[:n])
		if err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", n)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("prefix of %d bytes: unexpected error %v", n, err)
		}
	}
}

func TestBadMagic(t *testing.T) {
	blob := sample().Encode()
	blob[0] = 'X'
	// Re-seal the CRC so the magic check itself is exercised.
	body := blob[:len(blob)-4]
	binary.LittleEndian.PutUint32(blob[len(blob)-4:], crc32.Checksum(body, castagnoli))
	if _, err := Decode(blob); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	blob := sample().Encode()
	binary.LittleEndian.PutUint32(blob[4:8], Version+1)
	body := blob[:len(blob)-4]
	binary.LittleEndian.PutUint32(blob[len(blob)-4:], crc32.Checksum(body, castagnoli))
	if _, err := Decode(blob); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("got %v, want ErrBadVersion", err)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	blob := sample().Encode()
	// Splice extra bytes between body and a recomputed CRC.
	body := append(append([]byte(nil), blob[:len(blob)-4]...), 0xde, 0xad)
	blob = binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, castagnoli))
	if _, err := Decode(blob); err == nil {
		t.Fatal("blob with trailing garbage decoded successfully")
	}
}
