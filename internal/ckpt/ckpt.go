// Package ckpt is the coordinated-checkpoint serializer: the on-disk
// snapshot format the resilient interpreter writes at epoch
// boundaries and restores after a rank failure.
//
// A snapshot captures the master's view of the computation at a
// quiesced epoch boundary — no one-sided transfer or message is in
// flight, every window is fenced — so a single consistent cut of
// interpreter state, window memory and virtual clocks is enough to
// replay from. The encoding is versioned, fully deterministic (array
// names are sorted, every integer is little-endian) and protected by
// a trailing CRC-32C over everything before it: a snapshot that was
// truncated mid-write or corrupted on disk is detected rather than
// silently replayed.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"vbuscluster/internal/sim"
)

// Named decode failures, wrapped in the returned errors so callers
// can errors.Is against them.
var (
	// ErrTruncated means the blob ends before the encoded structure
	// does (an interrupted write).
	ErrTruncated = errors.New("ckpt: truncated snapshot")
	// ErrBadMagic means the blob is not a checkpoint at all.
	ErrBadMagic = errors.New("ckpt: bad magic")
	// ErrBadVersion means the checkpoint was written by an
	// incompatible format version.
	ErrBadVersion = errors.New("ckpt: unsupported version")
	// ErrCorrupt means the CRC-32C over the snapshot body does not
	// match its trailer: the bytes changed after the write.
	ErrCorrupt = errors.New("ckpt: checksum mismatch")
)

// magic identifies a checkpoint blob ("V-Bus ChecKpoint").
const magic = "VBCK"

// Version is the current format version.
const Version = 1

// castagnoli is the CRC-32C table, the same polynomial the fabric's
// packet CRC uses (hardware-friendly, better burst detection than
// IEEE).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Region mirrors one interpreter region-profile row (interp imports
// this package, so the mirror avoids an import cycle).
type Region struct {
	Index    int
	Parallel bool
	LoopVar  string
	Line     int
	Elapsed  sim.Time
	Comm     sim.Time
}

// Snapshot is one consistent cut of a resilient run: everything the
// interpreter needs to resume from the start of epoch Epoch.
type Snapshot struct {
	// Epoch is the index of the next epoch to execute.
	Epoch int
	// Halted records whether the program has executed STOP.
	Halted bool
	// Nodes lists the surviving physical nodes at checkpoint time.
	Nodes []int
	// Clocks holds every physical node's virtual clock (dead nodes
	// included, frozen at their crash time).
	Clocks []sim.Time
	// Output is the program's accumulated printed output.
	Output []byte
	// Regions are the per-region profile rows accumulated so far.
	Regions []Region
	// Arrays is the master's memory: every program array and scalar
	// cell by symbol name.
	Arrays map[string][]float64
}

// Encode serializes the snapshot. The result is deterministic: equal
// snapshots encode to identical bytes regardless of map iteration
// order.
func (s *Snapshot) Encode() []byte {
	var b []byte
	b = append(b, magic...)
	b = appendU32(b, Version)
	b = appendU64(b, uint64(s.Epoch))
	if s.Halted {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU32(b, uint32(len(s.Nodes)))
	for _, nd := range s.Nodes {
		b = appendU32(b, uint32(nd))
	}
	b = appendU32(b, uint32(len(s.Clocks)))
	for _, c := range s.Clocks {
		b = appendU64(b, uint64(c))
	}
	b = appendBytes(b, s.Output)
	b = appendU32(b, uint32(len(s.Regions)))
	for _, r := range s.Regions {
		b = appendU64(b, uint64(r.Index))
		if r.Parallel {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendBytes(b, []byte(r.LoopVar))
		b = appendU64(b, uint64(r.Line))
		b = appendU64(b, uint64(r.Elapsed))
		b = appendU64(b, uint64(r.Comm))
	}
	names := make([]string, 0, len(s.Arrays))
	for name := range s.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	b = appendU32(b, uint32(len(names)))
	for _, name := range names {
		b = appendBytes(b, []byte(name))
		vals := s.Arrays[name]
		b = appendU32(b, uint32(len(vals)))
		for _, v := range vals {
			b = appendU64(b, math.Float64bits(v))
		}
	}
	return appendU32(b, crc32.Checksum(b, castagnoli))
}

// Decode parses and verifies a snapshot blob. The CRC is checked
// before anything is interpreted, so a corrupted blob always reports
// ErrCorrupt rather than a structure error deep inside garbage.
func Decode(blob []byte) (*Snapshot, error) {
	if len(blob) < len(magic)+8 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(blob))
	}
	if string(blob[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, blob[:len(magic)])
	}
	body, trailer := blob[:len(blob)-4], blob[len(blob)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("%w: crc %08x, trailer %08x", ErrCorrupt, got, want)
	}
	r := &reader{b: body, off: len(magic)}
	if v := r.u32(); v != Version {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrBadVersion, v, Version)
	}
	s := &Snapshot{}
	s.Epoch = int(r.u64())
	s.Halted = r.u8() != 0
	if n := int(r.u32()); n > 0 && r.err == nil {
		s.Nodes = make([]int, 0, min(n, 1<<16))
		for i := 0; i < n && r.err == nil; i++ {
			s.Nodes = append(s.Nodes, int(r.u32()))
		}
	}
	if n := int(r.u32()); n > 0 && r.err == nil {
		s.Clocks = make([]sim.Time, 0, min(n, 1<<16))
		for i := 0; i < n && r.err == nil; i++ {
			s.Clocks = append(s.Clocks, sim.Time(r.u64()))
		}
	}
	s.Output = r.bytes()
	if n := int(r.u32()); n > 0 && r.err == nil {
		s.Regions = make([]Region, 0, min(n, 1<<16))
		for i := 0; i < n && r.err == nil; i++ {
			var reg Region
			reg.Index = int(r.u64())
			reg.Parallel = r.u8() != 0
			reg.LoopVar = string(r.bytes())
			reg.Line = int(r.u64())
			reg.Elapsed = sim.Time(r.u64())
			reg.Comm = sim.Time(r.u64())
			s.Regions = append(s.Regions, reg)
		}
	}
	if n := int(r.u32()); r.err == nil {
		s.Arrays = make(map[string][]float64, min(n, 1<<16))
		for i := 0; i < n && r.err == nil; i++ {
			name := string(r.bytes())
			m := int(r.u32())
			vals := make([]float64, 0, min(m, 1<<16))
			for j := 0; j < m && r.err == nil; j++ {
				vals = append(vals, math.Float64frombits(r.u64()))
			}
			if r.err == nil {
				s.Arrays[name] = vals
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after snapshot", len(body)-r.off)
	}
	return s, nil
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendBytes(b, v []byte) []byte {
	b = appendU32(b, uint32(len(v)))
	return append(b, v...)
}

// reader is a bounds-checked little-endian cursor; the first overrun
// latches ErrTruncated and every later read returns zero.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.b))
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) u8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *reader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (r *reader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	v := r.take(n)
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
