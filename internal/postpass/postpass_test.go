package postpass

import (
	"strings"
	"testing"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
)

func translate(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	prog, err := f77.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := analysis.FrontEnd(prog); err != nil {
		t.Fatalf("front end: %v", err)
	}
	p, err := Translate(prog, opts)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return p
}

const mmSrc = `
      PROGRAM MM
      INTEGER N
      PARAMETER (N = 16)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I+J)
          B(I,J) = REAL(I-J)
          C(I,J) = 0.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      PRINT *, C(1,1)
      END
`

func TestMMRegions(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	// init loop (par), compute loop (par), PRINT (seq).
	if len(p.Regions) != 3 {
		t.Fatalf("regions = %d:\n%s", len(p.Regions), p)
	}
	if p.Regions[0].Par == nil || p.Regions[1].Par == nil || p.Regions[2].Par != nil {
		t.Fatalf("region shapes wrong:\n%s", p)
	}
}

func TestMMWindowsCreated(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	names := map[string]bool{}
	for _, w := range p.Windows {
		names[w.Name] = true
	}
	for _, want := range []string{"A", "B", "C"} {
		if !names[want] {
			t.Fatalf("window for %s missing (have %v)", want, names)
		}
	}
}

func TestMMCommClassification(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	compute := p.Regions[1].Par
	// Scatters: A and B (ReadOnly) + C (ReadWrite). Collects: C.
	scatterArrays := map[string]bool{}
	for _, op := range compute.Scatters {
		scatterArrays[op.Sym.Name] = true
	}
	if !scatterArrays["A"] || !scatterArrays["B"] || !scatterArrays["C"] {
		t.Fatalf("scatter set wrong: %v\n%s", scatterArrays, p)
	}
	collectArrays := map[string]bool{}
	for _, op := range compute.Collects {
		collectArrays[op.Sym.Name] = true
	}
	if !collectArrays["C"] || collectArrays["A"] || collectArrays["B"] {
		t.Fatalf("collect set wrong: %v\n%s", collectArrays, p)
	}
}

func TestMMInitLoopWriteFirstNoScatter(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	init := p.Regions[0].Par
	if len(init.Scatters) != 0 {
		t.Fatalf("WriteFirst init loop should scatter nothing:\n%s", p)
	}
	if len(init.Collects) != 3 {
		t.Fatalf("init loop should collect A, B, C:\n%s", p)
	}
}

func TestReplicatedAccessParallelDim(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	compute := p.Regions[1].Par
	for _, op := range compute.Scatters {
		if op.Sym.Name == "B" {
			if op.ParallelDim != -1 {
				t.Fatalf("B(K,J) is invariant in I; ParallelDim = %d", op.ParallelDim)
			}
		}
		if op.Sym.Name == "A" || op.Sym.Name == "C" {
			if op.ParallelDim != 0 {
				t.Fatalf("%s should be partitioned on dim 0, got %d", op.Sym.Name, op.ParallelDim)
			}
		}
	}
}

// §5.6: at coarse grain the per-rank bounding boxes of C's write region
// interleave (row partition of a column-major array), so the race check
// must demote C's collect to fine.
func TestRaceCheckDemotesInterleavedCollect(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Coarse, LiveOutAll: true})
	compute := p.Regions[1].Par
	demoted := false
	for _, op := range compute.Collects {
		if op.Sym.Name == "C" && op.Grain == lmad.Fine && op.RaceFallback {
			demoted = true
		}
	}
	if !demoted {
		t.Fatalf("C collect not demoted to fine:\n%s", p)
	}
	// Scatters keep the requested coarse grain (redundant but safe).
	for _, op := range compute.Scatters {
		if op.Grain != lmad.Coarse {
			t.Fatalf("scatter %s demoted unnecessarily", op.Sym.Name)
		}
	}
}

// Column-partitioned writes have disjoint per-rank boxes: no demotion.
func TestRaceCheckKeepsDisjointCoarse(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 16)
      REAL C(N,N)
      INTEGER I, J
      DO J = 1, N
        DO I = 1, N
          C(I,J) = 1.0
        ENDDO
      ENDDO
      PRINT *, C(1,1)
      END
`
	p := translate(t, src, Options{NumProcs: 4, Grain: lmad.Coarse, LiveOutAll: true})
	par := p.Regions[0].Par
	for _, op := range par.Collects {
		if op.RaceFallback {
			t.Fatalf("disjoint column partition wrongly demoted:\n%s", p)
		}
	}
}

func TestBlockPart(t *testing.T) {
	var total int64
	for r := 0; r < 4; r++ {
		lo, n := BlockPart(1024, r, 4)
		if n != 256 || lo != int64(r)*256 {
			t.Fatalf("rank %d: [%d,+%d)", r, lo, n)
		}
		total += n
	}
	if total != 1024 {
		t.Fatal("partition does not tile")
	}
	// Uneven: 10 trips over 4 ranks → 2,3,2,3 (balanced).
	var sum int64
	prevEnd := int64(0)
	for r := 0; r < 4; r++ {
		lo, n := BlockPart(10, r, 4)
		if lo != prevEnd {
			t.Fatalf("gap at rank %d", r)
		}
		prevEnd = lo + n
		sum += n
	}
	if sum != 10 {
		t.Fatal("uneven partition does not tile")
	}
}

func TestRankTripsCyclic(t *testing.T) {
	got := RankTrips(10, 1, 4, f77.SchedCyclic)
	want := []int64{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("cyclic trips = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cyclic trips = %v, want %v", got, want)
		}
	}
}

// The partition invariant from DESIGN.md: block and cyclic tile the
// iteration space exactly — no overlap, no holes — for any trip count
// and process count.
func TestPartitionTilesExactly(t *testing.T) {
	for _, sched := range []f77.Schedule{f77.SchedBlock, f77.SchedCyclic} {
		for trips := int64(0); trips <= 40; trips++ {
			for procs := 1; procs <= 7; procs++ {
				seen := map[int64]int{}
				for r := 0; r < procs; r++ {
					for _, k := range RankTrips(trips, r, procs, sched) {
						seen[k]++
					}
				}
				if int64(len(seen)) != trips {
					t.Fatalf("%v trips=%d procs=%d: covered %d", sched, trips, procs, len(seen))
				}
				for k, n := range seen {
					if n != 1 || k < 0 || k >= trips {
						t.Fatalf("%v trips=%d procs=%d: trip %d count %d", sched, trips, procs, k, n)
					}
				}
			}
		}
	}
}

// Every element of the full access region must be covered by exactly
// the union of rank plans (scatter completeness).
func TestRankPlansCoverRegion(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	compute := p.Regions[1].Par
	for _, op := range compute.Scatters {
		covered := map[int64]bool{}
		for r := 0; r < 4; r++ {
			for _, tr := range RankPlan(op, compute.Ctx, r, 4, compute.Schedule) {
				for i := int64(0); i < tr.Elems; i++ {
					covered[tr.Offset+i*tr.Stride] = true
				}
			}
		}
		for _, off := range op.Acc.L.Enumerate(1 << 20) {
			if !covered[off] {
				t.Fatalf("op %s %s: element %d uncovered", op.Sym.Name, op.Acc.L, off)
			}
		}
	}
}

// At fine grain, rank plans of a partitioned WRITE never overlap.
func TestFineCollectPlansDisjoint(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	compute := p.Regions[1].Par
	for _, op := range compute.Collects {
		seen := map[int64]int{}
		for r := 0; r < 4; r++ {
			for _, tr := range RankPlan(op, compute.Ctx, r, 4, compute.Schedule) {
				for i := int64(0); i < tr.Elems; i++ {
					seen[tr.Offset+i*tr.Stride]++
				}
			}
		}
		for off, n := range seen {
			if n > 1 {
				t.Fatalf("op %s: element %d written by %d ranks", op.Sym.Name, off, n)
			}
		}
	}
}

// §5.2 / AVPG: B is written in the init loop and read in the compute
// loop, then dead. With LiveOutAll=false, nothing after the compute
// loop reads A or B, so their compute-loop scatter is still needed but
// the PRINT keeps C alive.
func TestAVPGEliminatesDeadCollects(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 8)
      REAL A(N), B(N)
      INTEGER I
      DO I = 1, N
        A(I) = 1.0
      ENDDO
      DO I = 1, N
        B(I) = A(I) + 1.0
      ENDDO
      PRINT *, B(1)
      END
`
	p := translate(t, src, Options{NumProcs: 2, Grain: lmad.Fine, LiveOutAll: false})
	// Region 0 writes A (read later: collect). Region 1 writes B (read
	// by PRINT: collect) and reads A (scatter).
	r0 := p.Regions[0].Par
	if len(r0.Collects) != 1 || r0.Collects[0].Sym.Name != "A" {
		t.Fatalf("region 0 collects: %s", p)
	}
	r1 := p.Regions[1].Par
	if len(r1.Scatters) != 1 || r1.Scatters[0].Sym.Name != "A" {
		t.Fatalf("region 1 scatters: %s", p)
	}
	if len(r1.Collects) != 1 || r1.Collects[0].Sym.Name != "B" {
		t.Fatalf("region 1 collects: %s", p)
	}
}

func TestAVPGDeadWriteNoCollect(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 8)
      REAL A(N), B(N)
      INTEGER I
      DO I = 1, N
        A(I) = 1.0
        B(I) = 2.0
      ENDDO
      DO I = 1, N
        A(I) = A(I) + 1.0
      ENDDO
      PRINT *, A(1)
      END
`
	p := translate(t, src, Options{NumProcs: 2, Grain: lmad.Fine, LiveOutAll: false})
	r0 := p.Regions[0].Par
	for _, op := range r0.Collects {
		if op.Sym.Name == "B" {
			t.Fatalf("dead write of B collected:\n%s", p)
		}
	}
	if p.EliminatedCollects == 0 {
		t.Fatal("no collects eliminated")
	}
}

func TestSerialProgramSingleRegion(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(8)
      INTEGER I
      DO I = 2, 8
        A(I) = A(I-1) + 1.0
      ENDDO
      END
`
	p := translate(t, src, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	if len(p.Regions) != 1 || p.Regions[0].Par != nil {
		t.Fatalf("recurrence should stay sequential:\n%s", p)
	}
	if len(p.Windows) != 0 {
		t.Fatal("sequential program needs no windows")
	}
}

func TestTriangularCyclicPlans(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 12)
      REAL A(N,N)
      INTEGER I, J
      DO I = 1, N
        DO J = I, N
          A(J,I) = 1.0
        ENDDO
      ENDDO
      PRINT *, A(1,1)
      END
`
	p := translate(t, src, Options{NumProcs: 3, Grain: lmad.Fine, LiveOutAll: true})
	par := p.Regions[0].Par
	if par == nil {
		t.Fatalf("triangular loop not parallel:\n%s", p)
	}
	if par.Schedule != f77.SchedCyclic {
		t.Fatalf("schedule = %v", par.Schedule)
	}
	// Cyclic rank plans must tile the parallel dimension.
	for _, op := range par.Collects {
		if op.ParallelDim < 0 {
			continue
		}
		seen := map[int64]int{}
		for r := 0; r < 3; r++ {
			for _, tr := range RankPlan(op, par.Ctx, r, 3, par.Schedule) {
				for i := int64(0); i < tr.Elems; i++ {
					seen[tr.Offset+i*tr.Stride]++
				}
			}
		}
		for _, off := range op.Acc.L.Enumerate(1 << 20) {
			if seen[off] == 0 {
				t.Fatalf("cyclic plans miss element %d", off)
			}
		}
	}
}

func TestScalarScatter(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 8)
      REAL A(N), X
      INTEGER I
      X = 3.5
      DO I = 1, N
        A(I) = X
      ENDDO
      PRINT *, A(1)
      END
`
	p := translate(t, src, Options{NumProcs: 2, Grain: lmad.Fine, LiveOutAll: true})
	var par *ParInfo
	for _, r := range p.Regions {
		if r.Par != nil {
			par = r.Par
		}
	}
	if par == nil {
		t.Fatalf("no parallel region:\n%s", p)
	}
	foundX := false
	for _, op := range par.Scatters {
		if op.Sym.Name == "X" {
			foundX = true
			if op.Acc.L.Rank() != 0 {
				t.Fatal("scalar scatter should be rank 0")
			}
		}
	}
	if !foundX {
		t.Fatalf("scalar X not scattered:\n%s", p)
	}
}

func TestStringReport(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Coarse, LiveOutAll: true})
	out := p.String()
	for _, want := range []string{"parallel DO I", "scatter", "collect", "AVPG eliminated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// The emitted SPMD listing (the paper's "Parallel Program (Fortran77
// with MPI-2)" artifact) must contain the master/slave structure: MPI
// environment generation, barriers and fences at region boundaries,
// rank-partitioned loop bounds, and PUT-based scatter/collect.
func TestEmitSPMDStructure(t *testing.T) {
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Coarse, LiveOutAll: true})
	out := EmitSPMD(p)
	for _, want := range []string{
		"PROGRAM MM$SPMD",
		"CALL MPI_INIT",
		"CALL MPI_COMM_RANK",
		"CALL MPI_WIN_CREATE(A",
		"CALL MPI_WIN_CREATE(C",
		"IF (MYRANK$ .EQ. 0) THEN",
		"DO DST$ = 1, NPROCS$ - 1",
		"CALL MPI_PUT(",
		"CALL MPI_WIN_FENCE",
		"CALL MPI_BARRIER(MPI_COMM_WORLD, IERR$)",
		"LO$ = (16 * MYRANK$) / NPROCS$",
		"IF (MYRANK$ .NE. 0) THEN",
		"CALL MPI_WIN_FREE",
		"CALL MPI_FINALIZE",
		"(race check -> fine)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestEmitSPMDReduction(t *testing.T) {
	src := `
      PROGRAM R
      INTEGER N
      PARAMETER (N = 32)
      REAL A(N), S
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      PRINT *, S
      END
`
	p := translate(t, src, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	out := EmitSPMD(p)
	if !strings.Contains(out, "CALL MPI_ALLREDUCE(MPI_IN_PLACE, S, 1, MPI_REAL,") {
		t.Fatalf("reduction call missing:\n%s", out)
	}
	if !strings.Contains(out, "S = 0.0") {
		t.Fatalf("identity initialization missing:\n%s", out)
	}
}

func TestEmitSPMDCyclic(t *testing.T) {
	src := `
      PROGRAM C
      INTEGER N
      PARAMETER (N = 12)
      REAL A(N,N)
      INTEGER I, J
      DO I = 1, N
        DO J = I, N
          A(J,I) = 1.0
        ENDDO
      ENDDO
      PRINT *, A(1,1)
      END
`
	p := translate(t, src, Options{NumProcs: 3, Grain: lmad.Fine, LiveOutAll: true})
	out := EmitSPMD(p)
	if !strings.Contains(out, "DO K$ = MYRANK$, 11, NPROCS$") {
		t.Fatalf("cyclic partition loop missing:\n%s", out)
	}
}

func TestEmitSPMDStridedVector(t *testing.T) {
	// MM's fine-grain C collect uses strided PUTs → vector type.
	p := translate(t, mmSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	out := EmitSPMD(p)
	if !strings.Contains(out, "VECT$16") {
		t.Fatalf("strided vector-type PUT missing:\n%s", out)
	}
}
