package postpass

import (
	"fmt"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/nic"
)

// The coalesce stage rewrites strided scatter/collect transfers into
// pack → contiguous DMA burst → unpack when the target machine's pack
// cost model (nic.PackModel) says the burst beats per-element PIO.
// The decision is a single per-machine crossover element count: both
// cost curves are linear in the element count with the same wire term,
// so the crossover is independent of the transfer's stride and of the
// hop distance, and one threshold stamped on each comm op is exact.
// RankPlan applies the threshold when a rank's plan is materialized,
// marking qualifying strided transfers Packed; the MPI layer routes
// Packed descriptors over the pack transport class and charges the
// pack/unpack copies plus one contiguous burst.

// wordBytes is the element size every planned transfer moves (REAL*8),
// matching mpi.WordBytes.
const wordBytes = 8

// coalesce stamps the machine's pack crossover on every remaining
// scatter/collect op. Runs after grain-opt (so it sees the effective
// grains — a race-demoted fine collect is exactly the strided traffic
// that profits most) and before the AVPG (which only removes ops, never
// reshapes them). On a protocol-switched fabric
// (interconnect.ProtocolModel) the stage also stamps the
// eager/rendezvous crossover in elements — the cold-cache hops-1
// figure, ceil(ProtocolCrossoverBytes / wordBytes) — so rank plans
// carry the compiler's protocol decision per contiguous transfer.
func (t *translator) coalesce() string {
	if !t.p.Opts.Coalesce {
		return "off"
	}
	params := cluster.DefaultParams()
	if t.p.Opts.Machine != nil {
		params = *t.p.Opts.Machine
	}
	pm := nic.PackModelFor(params)
	threshold := pm.CrossoverElems(wordBytes, 1)
	var rndvElems int64
	if proto, ok := nic.ProtocolModelFor(params); ok {
		if b := proto.ProtocolCrossoverBytes(1, 0); b > 0 {
			rndvElems = (b + wordBytes - 1) / wordBytes
		}
	}
	if threshold == 0 && rndvElems == 0 {
		return fmt.Sprintf("packing never beats PIO on %s", params.Fabric.Name())
	}
	ops := 0
	for _, r := range t.p.Regions {
		if r.Par == nil {
			continue
		}
		for _, op := range append(append([]*CommOp{}, r.Par.Scatters...), r.Par.Collects...) {
			op.PackThreshold = threshold
			op.RndvThreshold = rndvElems
			ops++
		}
	}
	var note string
	if threshold > 0 {
		note = fmt.Sprintf("crossover %d elems on %s, %d comm ops eligible",
			threshold, params.Fabric.Name(), ops)
	} else {
		note = fmt.Sprintf("packing never beats PIO on %s, %d comm ops eligible",
			params.Fabric.Name(), ops)
	}
	if rndvElems > 0 {
		note += fmt.Sprintf("; rendezvous at %d elems", rndvElems)
	}
	return note
}
