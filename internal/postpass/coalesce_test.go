package postpass

import (
	"strings"
	"testing"
	"time"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
	_ "vbuscluster/internal/nic" // register the vbus and ethernet backends
)

// strideSrc is a kernel whose update region is stride-3: exactly the
// per-element PIO traffic the coalesce stage targets. Read-modify-write
// so the collects survive the §5.6 validity check at any grain.
const strideSrc = `
      PROGRAM STR
      INTEGER N, S
      PARAMETER (N = 300, S = 3)
      REAL W(S*N)
      INTEGER I
      DO I = 1, N
        W(S*I - S + 1) = W(S*I - S + 1) + 0.5
      ENDDO
      PRINT *, W(1)
      END
`

// collectTransfers materializes every rank's plan for every comm op of
// the program.
func collectTransfers(p *Program) []lmad.Transfer {
	var all []lmad.Transfer
	for _, r := range p.Regions {
		if r.Par == nil {
			continue
		}
		ops := append(append([]*CommOp{}, r.Par.Scatters...), r.Par.Collects...)
		for _, op := range ops {
			for rank := 0; rank < p.Opts.NumProcs; rank++ {
				all = append(all, RankPlan(op, r.Par.Ctx, rank, p.Opts.NumProcs, r.Par.Schedule)...)
			}
		}
	}
	return all
}

// With the stage off (the default), no op carries a threshold and no
// planned transfer is packed — the invariant behind the Table 1/2
// bit-identity guarantee.
func TestCoalesceOffByDefault(t *testing.T) {
	p := translate(t, strideSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	for _, r := range p.Regions {
		if r.Par == nil {
			continue
		}
		for _, op := range append(append([]*CommOp{}, r.Par.Scatters...), r.Par.Collects...) {
			if op.PackThreshold != 0 {
				t.Errorf("op on %s carries pack threshold %d with coalescing off", op.Sym.Name, op.PackThreshold)
			}
		}
	}
	for i, tr := range collectTransfers(p) {
		if tr.Packed {
			t.Errorf("transfer %d is packed with coalescing off: %+v", i, tr)
		}
	}
}

// With the stage on against the V-Bus machine, every comm op gets the
// machine crossover and the long strided transfers of the stride-3
// kernel come back marked Packed, shapes untouched.
func TestCoalesceMarksLongStridedTransfers(t *testing.T) {
	machine := cluster.DefaultParams()
	off := translate(t, strideSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	on := translate(t, strideSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true,
		Coalesce: true, Machine: &machine})
	var threshold int64
	for _, r := range on.Regions {
		if r.Par == nil {
			continue
		}
		for _, op := range append(append([]*CommOp{}, r.Par.Scatters...), r.Par.Collects...) {
			if op.PackThreshold <= 0 {
				t.Fatalf("op on %s has no pack threshold with coalescing on", op.Sym.Name)
			}
			threshold = op.PackThreshold
		}
	}
	offPlan, onPlan := collectTransfers(off), collectTransfers(on)
	if len(offPlan) != len(onPlan) {
		t.Fatalf("coalescing changed the plan size: %d -> %d", len(offPlan), len(onPlan))
	}
	packed := 0
	for i := range onPlan {
		if onPlan[i].Offset != offPlan[i].Offset || onPlan[i].Elems != offPlan[i].Elems ||
			onPlan[i].Stride != offPlan[i].Stride {
			t.Fatalf("coalescing reshaped transfer %d: %+v -> %+v", i, offPlan[i], onPlan[i])
		}
		wantPacked := onPlan[i].Stride > 1 && onPlan[i].Elems >= threshold
		if onPlan[i].Packed != wantPacked {
			t.Errorf("transfer %d packed=%v, want %v (threshold %d): %+v",
				i, onPlan[i].Packed, wantPacked, threshold, onPlan[i])
		}
		if onPlan[i].Packed {
			packed++
		}
	}
	if packed == 0 {
		t.Error("stride-3 kernel produced no packed transfers with coalescing on")
	}
}

// The coalesce stage's decision and the static estimator's pricing use
// the same pack model: turning the stage on must strictly lower the
// estimated comm cost of a kernel with long strided transfers.
func TestCoalesceLowersEstimatedCost(t *testing.T) {
	machine := cluster.DefaultParams()
	off := translate(t, strideSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
	on := translate(t, strideSrc, Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true,
		Coalesce: true, Machine: &machine})
	costOff := EstimateCommCost(off, machine)
	costOn := EstimateCommCost(on, machine)
	if costOn >= costOff {
		t.Errorf("coalescing did not lower the estimated comm cost: %v -> %v", costOff, costOn)
	}
}

// The stage reports its decision in the pass note: the crossover and
// the eligible op count when on, "off" when off, and "never" on a
// fabric whose PIO path is free.
func TestCoalesceStageNotes(t *testing.T) {
	var notes []string
	hook := func(stage string, _ time.Duration, note string, _ *Program) {
		if stage == StageCoalesce {
			notes = append(notes, note)
		}
	}
	run := func(opts Options) string {
		t.Helper()
		notes = nil
		prog, err := f77.Parse(strideSrc)
		if err != nil {
			t.Fatal(err)
		}
		if err := analysis.FrontEnd(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := TranslateStaged(prog, opts, hook); err != nil {
			t.Fatal(err)
		}
		if len(notes) != 1 {
			t.Fatalf("coalesce stage ran %d times, want 1", len(notes))
		}
		return notes[0]
	}
	if note := run(Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true}); note != "off" {
		t.Errorf("stage note with coalescing off = %q, want \"off\"", note)
	}
	machine := cluster.DefaultParams()
	note := run(Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true, Coalesce: true, Machine: &machine})
	if !strings.Contains(note, "crossover") {
		t.Errorf("stage note %q does not report the crossover", note)
	}
	ideal, err := cluster.ParamsForFabric("ideal")
	if err != nil {
		t.Fatal(err)
	}
	note = run(Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true, Coalesce: true, Machine: &ideal})
	if !strings.Contains(note, "never beats") {
		t.Errorf("stage note on the ideal fabric = %q, want a \"never beats\" report", note)
	}
}
