package postpass

import (
	"vbuscluster/internal/analysis"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
)

// BlockPart computes rank's balanced block partition of trips
// iterations: the half-open trip range [start, start+count).
func BlockPart(trips int64, rank, procs int) (start, count int64) {
	lo := trips * int64(rank) / int64(procs)
	hi := trips * int64(rank+1) / int64(procs)
	return lo, hi - lo
}

// RankTrips enumerates the 0-based trip indices rank executes under the
// given schedule.
func RankTrips(trips int64, rank, procs int, sched f77.Schedule) []int64 {
	var out []int64
	if sched == f77.SchedCyclic {
		for k := int64(rank); k < trips; k += int64(procs) {
			out = append(out, k)
		}
		return out
	}
	lo, n := BlockPart(trips, rank, procs)
	for k := lo; k < lo+n; k++ {
		out = append(out, k)
	}
	return out
}

// RankPlan computes the §5.4/§5.6 communication plan for one op and one
// rank: the op's access region restricted to the rank's partition of
// the parallel dimension, expanded into MPI_PUT/MPI_GET transfers at
// the op's effective granularity. A replicated op (ParallelDim == -1)
// plans the whole region for every rank. An empty plan means the rank
// moves nothing. When the coalesce stage stamped a pack threshold on
// the op, qualifying strided transfers come back marked Packed; a
// rendezvous threshold likewise stamps contiguous transfers with the
// compiler's eager/rendezvous protocol choice.
func RankPlan(op *CommOp, ctx analysis.LoopCtx, rank, procs int, sched f77.Schedule) []lmad.Transfer {
	return lmad.MarkRendezvous(
		lmad.MarkPacked(rankPlan(op, ctx, rank, procs, sched), op.PackThreshold),
		op.RndvThreshold)
}

func rankPlan(op *CommOp, ctx analysis.LoopCtx, rank, procs int, sched f77.Schedule) []lmad.Transfer {
	l := op.Acc.L
	pd := op.ParallelDim
	if pd < 0 {
		return lmad.Plan(l, -1, op.Grain)
	}
	trips := l.Dims[pd].Trips()
	switch sched {
	case f77.SchedCyclic:
		phase := int64(rank) % int64(procs)
		if op.Reversed {
			// Loop trip k maps to lattice position trips-1-k, and k
			// ranges over a full residue class mod procs, so the
			// positions form the cyclic class with mirrored phase:
			// (trips-1-rank) mod procs.
			phase = (trips - 1 - int64(rank)) % int64(procs)
			if phase < 0 {
				phase += int64(procs)
			}
		}
		part, ok := l.CycleDim(pd, phase, int64(procs))
		if !ok {
			return nil
		}
		newPD := pd
		if part.Rank() < l.Rank() {
			newPD = -1 // the dimension collapsed to a single trip
		}
		return lmad.Plan(part, newPD, op.Grain)
	default:
		start, count := BlockPart(trips, rank, procs)
		if count == 0 {
			return nil
		}
		if op.Reversed {
			// Loop trip k maps to lattice position trips-1-k, so the
			// block [start, start+count) maps to
			// [trips-start-count, trips-start).
			start = trips - start - count
		}
		part := l.RestrictDim(pd, start, count)
		newPD := pd
		if part.Rank() < l.Rank() {
			newPD = -1
		}
		return lmad.Plan(part, newPD, op.Grain)
	}
}

// PlanBytes sums the wire elements of a plan.
func PlanBytes(plan []lmad.Transfer) int64 {
	var n int64
	for _, t := range plan {
		n += t.Elems
	}
	return n
}
