package postpass

import (
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
)

// EstimateCommCost predicts the total data scattering/collecting time
// of the SPMD program on the given machine without executing it, by
// pricing every rank's transfer plan with the machine's interconnect
// cost model (any registered backend, not just the V-Bus card) — the
// §5.6 "precise analysis of data access pattern" turned into a static
// cost estimate. It mirrors the interpreter's charging exactly (master
// performs all scatters, each slave its own collects, rank-local moves
// are skipped), so the estimate equals the measured TotalXferTime for
// any program whose region structure is execution-independent.
func EstimateCommCost(p *Program, params cluster.Params) sim.Time {
	card := params.Fabric
	procs := p.Opts.NumProcs
	pm := nic.PackModel{Card: card, MemCopyPerByte: params.CPU.MemCopyPerByte}
	pricePlan := func(plan []lmad.Transfer, target int) sim.Time {
		var t sim.Time
		for _, tr := range plan {
			switch {
			case tr.Stride > 1 && tr.Packed:
				// PackedTime covers both setups (request + staging burst),
				// mirroring the runtime's pack charge exactly.
				t += pm.PackedTime(int(tr.Elems), 8, params.Hops(0, target))
			case tr.Stride > 1:
				t += card.SendSetup() + card.StridedTime(int(tr.Elems), 8, params.Hops(0, target))
			default:
				t += card.SendSetup() + card.ContigTime(int(tr.Elems)*8, params.Hops(0, target))
			}
		}
		return t
	}
	var total sim.Time
	for _, r := range p.Regions {
		if r.Par == nil {
			continue
		}
		price := func(ops []*CommOp, rank int, target int) sim.Time {
			var t sim.Time
			coarse := map[string][]lmad.Transfer{}
			var order []string
			for _, op := range ops {
				plan := RankPlan(op, r.Par.Ctx, rank, procs, r.Par.Schedule)
				if op.Grain == lmad.Coarse {
					if _, ok := coarse[op.Sym.Name]; !ok {
						order = append(order, op.Sym.Name)
					}
					coarse[op.Sym.Name] = append(coarse[op.Sym.Name], plan...)
					continue
				}
				t += pricePlan(plan, target)
			}
			for _, name := range order {
				t += pricePlan(lmad.MergeContiguous(coarse[name]), target)
			}
			return t
		}
		for dst := 1; dst < procs; dst++ {
			total += price(r.Par.Scatters, dst, dst)
		}
		for rank := 1; rank < procs; rank++ {
			total += price(r.Par.Collects, rank, rank)
		}
	}
	return total
}
