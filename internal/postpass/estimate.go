package postpass

import (
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
)

// EstimateCommCost predicts the total data scattering/collecting time
// of the SPMD program on the given machine without executing it, by
// pricing every rank's transfer plan with the machine's interconnect
// cost model (any registered backend, not just the V-Bus card) — the
// §5.6 "precise analysis of data access pattern" turned into a static
// cost estimate. It mirrors the interpreter's charging exactly (master
// performs all scatters, each slave its own collects, rank-local moves
// are skipped), so the estimate equals the measured TotalXferTime for
// any program whose region structure is execution-independent.
//
// On a protocol-switched fabric (interconnect.ProtocolModel) the
// estimator replays a simulated registration cache per origin node —
// the master's for scatters, each slave's own for collects — applying
// the same per-transfer eager/rendezvous decision the MPI runtime
// makes, so warm-cache discounts are predicted, not averaged. The
// replay assumes the runtime's default push-mode scattering; pull-mode
// and two-sided runs shift which node's cache warms and the estimate
// stays an approximation there, as it always has for those modes.
func EstimateCommCost(p *Program, params cluster.Params) sim.Time {
	card := params.Fabric
	procs := p.Opts.NumProcs
	pm := nic.PackModelFor(params)
	proto, hasProto := nic.ProtocolModelFor(params)
	// caches holds the per-origin-node simulated registration caches,
	// shared across regions like the runtime's per-node state.
	var caches map[int]*interconnect.RegCache
	if hasProto {
		caches = map[int]*interconnect.RegCache{}
	}
	cacheFor := func(origin int) *interconnect.RegCache {
		if c, ok := caches[origin]; ok {
			return c
		}
		c := interconnect.NewRegCache(proto.RegCacheCapacity())
		caches[origin] = c
		return c
	}
	// contigTime mirrors mpi's contigCost decision switch: follow the
	// compiler stamp when present, otherwise pick the cheaper path
	// against the origin's current cache state; only a charged
	// rendezvous transfer touches the cache.
	contigTime := func(tr lmad.Transfer, sym string, hops, origin int) sim.Time {
		if !hasProto {
			return card.SendSetup() + card.ContigTime(int(tr.Elems)*8, hops)
		}
		bytes := int(tr.Elems) * 8
		cache := cacheFor(origin)
		key := interconnect.RegKey{Space: sym, Offset: tr.Offset, Elems: tr.Elems}
		choice := tr.Proto
		if choice == lmad.ProtoAuto {
			if proto.RendezvousTime(bytes, hops, cache.Lookup(key)) < proto.EagerTime(bytes, hops) {
				choice = lmad.ProtoRndv
			} else {
				choice = lmad.ProtoEager
			}
		}
		if choice == lmad.ProtoEager {
			return proto.EagerTime(bytes, hops)
		}
		return proto.RendezvousTime(bytes, hops, cache.Use(key))
	}
	pricePlan := func(plan []lmad.Transfer, sym string, target, origin int) sim.Time {
		var t sim.Time
		for _, tr := range plan {
			switch {
			case tr.Stride > 1 && tr.Packed:
				// PackedTime covers both setups (request + staging burst),
				// mirroring the runtime's pack charge exactly.
				t += pm.PackedTime(int(tr.Elems), 8, params.Hops(0, target))
			case tr.Stride > 1:
				t += card.SendSetup() + card.StridedTime(int(tr.Elems), 8, params.Hops(0, target))
			default:
				t += contigTime(tr, sym, params.Hops(0, target), origin)
			}
		}
		return t
	}
	var total sim.Time
	for _, r := range p.Regions {
		if r.Par == nil {
			continue
		}
		price := func(ops []*CommOp, rank, target, origin int) sim.Time {
			var t sim.Time
			coarse := map[string][]lmad.Transfer{}
			var order []string
			var thr int64 // re-stamp threshold for merged coarse plans
			for _, op := range ops {
				if op.RndvThreshold > thr {
					thr = op.RndvThreshold
				}
				plan := RankPlan(op, r.Par.Ctx, rank, procs, r.Par.Schedule)
				if op.Grain == lmad.Coarse {
					if _, ok := coarse[op.Sym.Name]; !ok {
						order = append(order, op.Sym.Name)
					}
					coarse[op.Sym.Name] = append(coarse[op.Sym.Name], plan...)
					continue
				}
				t += pricePlan(plan, op.Sym.Name, target, origin)
			}
			for _, name := range order {
				t += pricePlan(lmad.MarkRendezvous(lmad.MergeContiguous(coarse[name]), thr),
					name, target, origin)
			}
			return t
		}
		for dst := 1; dst < procs; dst++ {
			total += price(r.Par.Scatters, dst, dst, 0)
		}
		for rank := 1; rank < procs; rank++ {
			total += price(r.Par.Collects, rank, rank, rank)
		}
	}
	return total
}
