// Package postpass implements the MPI-2 postpass of §5 — the paper's
// new Polaris back end targeting the V-Bus cluster. It consumes the
// analyzed main unit (parallel loops marked, reductions and privates
// annotated) and produces an SPMD program description:
//
//   - MPI environment generation (§5.1): one memory window per variable
//     accessed remotely;
//   - AVPG construction (§5.2) and elimination of redundant scatter /
//     collect communication at region boundaries;
//   - work partitioning (§5.3): BLOCK for square loops, CYCLIC for
//     triangular ones;
//   - data scattering & collecting (§5.4): ReadOnly → scatter,
//     WriteFirst → collect, ReadWrite → both, driven by split LMADs;
//   - SPMDization (§5.5): barrier/fence points at region boundaries;
//   - communication optimization (§5.6): fine/middle/coarse grain with
//     the overlapped-region race check that forces fine-grain
//     collecting when approximate regions of different slaves overlap.
//
// The result is interpreted by internal/interp on the simulated
// cluster; the per-rank communication plans are computed here so the
// compiler, the interpreter, and the tests all share one source of
// truth.
package postpass

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/avpg"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
)

// Options configures the postpass.
type Options struct {
	// NumProcs is the SPMD process count (master + slaves).
	NumProcs int
	// Grain is the requested communication granularity (§5.6: "it is up
	// to the user that selects the optimal granularity").
	Grain lmad.Grain
	// LiveOutAll treats every array as live at program end, forcing the
	// final writes to be collected to the master (needed whenever the
	// caller inspects results; the AVPG still eliminates interior
	// communication).
	LiveOutAll bool
	// LockReductions combines recognized reductions through an
	// MPI_WIN_LOCK critical section on the master's window (§3:
	// "Locks are useful for establishing critical sections where global
	// operations using shared variables, such as reduction operations,
	// are performed") instead of an Allreduce tree. Serialized but
	// faithful to the paper's target-code description.
	LockReductions bool
	// PullScatter makes the slaves GET their regions from the master's
	// windows instead of the master PUTting to every slave: with
	// one-sided communication either end can drive the transfer (§2.2),
	// and pulling parallelizes the scatter across the slaves instead of
	// serializing it on the master.
	PullScatter bool
	// TwoSided generates MPI-1 style SEND/RECEIVE pairs for data
	// scattering/collecting instead of one-sided PUT/GET: both
	// processors participate and every region is packed/unpacked
	// through message buffers. This is the baseline the paper's §2.2
	// one-sided design argues against; it exists for the ablation.
	TwoSided bool
	// Resilient emits restart-capable SPMD code: regions are grouped
	// into checkpoint epochs (Program.Epochs) and the AVPG's
	// scatter/collect elimination is disabled — an epoch restarted on
	// freshly spawned slaves has no carried-over slave state to reuse,
	// and the master's memory must be complete at every epoch boundary
	// for the checkpoint to be consistent.
	Resilient bool
	// CkptEvery closes a checkpoint epoch after this many parallel
	// regions (minimum 1; only meaningful with Resilient).
	CkptEvery int
	// Coalesce enables the pack-and-coalesce stage: strided
	// scatter/collect transfers at or above the machine's pack crossover
	// are rewritten into pack → contiguous DMA burst → unpack. Off by
	// default so translations (and every table the evaluation prints)
	// are bit-identical to a build without the stage.
	Coalesce bool
	// Machine is the target machine the coalesce stage prices the
	// crossover against; nil means cluster.DefaultParams(). Only the
	// fabric and CPU memcpy rate are consulted.
	Machine *cluster.Params
}

// CommOp is one data-scattering or data-collecting obligation for one
// array access region within a parallel region.
type CommOp struct {
	Sym *f77.Symbol
	// Acc is the access expanded over the full loop nest (parallel loop
	// included).
	Acc analysis.Access
	// ParallelDim indexes Acc.L.Dims at the parallel loop's dimension;
	// -1 means the access is invariant in the parallel loop
	// (replicated: every slave gets/needs the whole region).
	ParallelDim int
	// Reversed notes a negative-coefficient parallel dimension: trip k
	// of the loop maps to lattice position trips-1-k.
	Reversed bool
	// Type is the §4.2 classification that created the op.
	Type lmad.AccType
	// Grain is the effective granularity (may be forced to Fine by the
	// §5.6 race check on collects).
	Grain lmad.Grain
	// RaceFallback records that the §5.6 overlap check demoted this op.
	RaceFallback bool
	// PackThreshold is the machine's pack crossover stamped by the
	// coalesce stage: strided transfers of at least this many elements
	// in the op's rank plans are marked Packed. 0 (the default) leaves
	// every transfer on the per-element PIO path.
	PackThreshold int64
	// RndvThreshold is the machine's eager/rendezvous crossover in
	// elements, stamped by the coalesce stage on protocol-switched
	// fabrics (the cold-cache hops-1 figure): contiguous transfers of
	// at least this many elements in the op's rank plans are stamped
	// rendezvous, smaller ones eager. 0 (the default) leaves every
	// transfer unstamped (ProtoAuto — the runtime decides per message).
	RndvThreshold int64
}

// Region is one schedulable unit of the SPMD program.
type Region struct {
	// Par is nil for a sequential (master-only) region.
	Par *ParInfo
	// Stmts are the statements of a sequential region.
	Stmts []f77.Stmt
}

// ParInfo carries everything the interpreter needs to run one parallel
// region.
type ParInfo struct {
	Loop *f77.DoLoop
	Ctx  analysis.LoopCtx
	// Scatters run at region entry (master → slaves), Collects at exit
	// (slaves → master).
	Scatters []*CommOp
	Collects []*CommOp
	// ScalarBcast lists scalars the slaves read (scattered as
	// one-element windows).
	Reductions []*f77.Reduction
	Schedule   f77.Schedule
}

// Program is the SPMD translation of one Fortran program.
type Program struct {
	Source  *f77.Program
	Main    *f77.Unit
	Regions []*Region
	// Windows lists every symbol that needs an MPI window, in
	// deterministic order.
	Windows []*f77.Symbol
	Graph   *avpg.Graph
	Opts    Options
	// Eliminated counts region-boundary comm ops removed by the AVPG.
	EliminatedScatters int
	EliminatedCollects int
	// Epochs groups consecutive region indices into checkpoint epochs
	// (nil unless Opts.Resilient): the resilient interpreter
	// checkpoints after each group and restarts failed runs at the
	// start of the interrupted group.
	Epochs [][]int
}

// Stage names of the postpass interior, in execution order. The core
// compiler pipeline surfaces them (with the front-end passes) through
// vbcc -passes.
const (
	StagePartition      = "partition"
	StageSPMDize        = "spmdize"
	StageScatterCollect = "scatter-collect"
	StageGrainOpt       = "grain-opt"
	StageCoalesce       = "coalesce"
	StageAVPG           = "avpg"
	StageEnvGen         = "env-gen"
	StageResilience     = "resilience"
)

// StageHook observes one completed stage of the postpass: the stage
// name, its wall-clock duration, a short human note, and the program
// under construction (for IR/LMAD dumps). Hooks are observational; they
// must not mutate p.
type StageHook func(stage string, wall time.Duration, note string, p *Program)

// Translate runs the postpass over an analyzed program (the front end
// must have run: see analysis.FrontEnd).
func Translate(prog *f77.Program, opts Options) (*Program, error) {
	return TranslateStaged(prog, opts, nil)
}

// TranslateStaged is Translate with a per-stage hook: the interior of
// the postpass runs as a named, ordered stage pipeline (partition →
// spmdize → scatter-collect → grain-opt → avpg → env-gen), and hook —
// when non-nil — is invoked after each stage with its timing. This is
// the seam instrumentation and future pass-reordering PRs plug into.
func TranslateStaged(prog *f77.Program, opts Options, hook StageHook) (*Program, error) {
	if opts.NumProcs < 1 {
		return nil, fmt.Errorf("postpass: need at least one process")
	}
	main := prog.Main()
	if main == nil {
		return nil, fmt.Errorf("postpass: no main program unit")
	}
	t := &translator{p: &Program{Source: prog, Main: main, Opts: opts}}
	for _, st := range []struct {
		name string
		run  func() string
	}{
		{StagePartition, t.partition},
		{StageSPMDize, t.spmdize},
		{StageScatterCollect, t.scatterCollect},
		{StageGrainOpt, t.grainOpt},
		{StageCoalesce, t.coalesce},
		{StageAVPG, t.avpg},
		{StageEnvGen, t.envGen},
		{StageResilience, t.resilience},
	} {
		start := time.Now()
		note := st.run()
		if hook != nil {
			hook(st.name, time.Since(start), note, t.p)
		}
	}
	return t.p, nil
}

// translator carries the intermediate state threaded between stages.
type translator struct {
	p *Program
	// crossJump notes a GOTO targeting a top-level label, which forces
	// the whole program into one sequential region.
	crossJump bool
	// cands holds the partition analysis of each viable parallel loop.
	cands map[*f77.DoLoop]*parCandidate
}

// parCandidate is the partition stage's result for one parallel loop.
type parCandidate struct {
	ctx analysis.LoopCtx
	ri  analysis.RegionInfo
}

// partition (§5.3) resolves every top-level parallel loop's bounds and
// builds its region summary — the analysis that decides whether the
// loop's iteration space can be split across ranks at all. Loops that
// fail stay sequential. It also detects control flow that could jump
// across region boundaries, which defeats the barrier-per-region SPMD
// structure (§5.5 inserts synchronization at exactly these
// control-flow points): if any GOTO targets a label carried by a
// top-level statement, the whole program is kept as one sequential
// region rather than risk a jump out of a region.
func (t *translator) partition() string {
	main := t.p.Main
	topLabels := map[int]bool{}
	for _, s := range main.Body {
		if s.Label() != 0 {
			topLabels[s.Label()] = true
		}
	}
	f77.WalkStmts(main.Body, func(s f77.Stmt) bool {
		if g, ok := s.(*f77.Goto); ok && topLabels[g.Target] {
			t.crossJump = true
		}
		return true
	})
	if t.crossJump {
		return "cross-region GOTO: whole program stays sequential"
	}
	t.cands = map[*f77.DoLoop]*parCandidate{}
	total := 0
	for _, s := range main.Body {
		loop, ok := s.(*f77.DoLoop)
		if !ok || !loop.Parallel {
			continue
		}
		total++
		if cand, err := partitionLoop(loop); err == nil {
			t.cands[loop] = cand
		}
	}
	return fmt.Sprintf("%d/%d parallel loops partitionable", len(t.cands), total)
}

// partitionLoop analyzes one parallel loop for communication
// generation: exact compile-time bounds plus an analyzable region
// summary over the full nest.
func partitionLoop(loop *f77.DoLoop) (*parCandidate, error) {
	ctx, err := analysis.ResolveLoop(loop, nil)
	if err != nil {
		return nil, err
	}
	if !ctx.Exact {
		return nil, fmt.Errorf("postpass: loop %s bounds not compile-time constant", loop.Var.Name)
	}
	skip := map[*f77.Symbol]bool{loop.Var: true}
	for _, r := range loop.Reductions {
		skip[r.Sym] = true
	}
	for _, pv := range loop.Private {
		skip[pv] = true
	}
	ri := analysis.Region(loop.Body, []analysis.LoopCtx{ctx}, skip)
	if !ri.OK {
		return nil, fmt.Errorf("postpass: %s", ri.WhyNot)
	}
	return &parCandidate{ctx: ctx, ri: ri}, nil
}

// spmdize (§5.5) segments the main body into schedulable regions:
// partitionable top-level parallel loops become parallel regions with
// barrier/fence points at their boundaries; everything else is
// sequential master code.
func (t *translator) spmdize() string {
	p := t.p
	if t.crossJump {
		p.Regions = append(p.Regions, &Region{Stmts: p.Main.Body})
		return "1 region (sequential)"
	}
	var seq []f77.Stmt
	flush := func() {
		if len(seq) > 0 {
			p.Regions = append(p.Regions, &Region{Stmts: seq})
			seq = nil
		}
	}
	par := 0
	for _, s := range p.Main.Body {
		loop, ok := s.(*f77.DoLoop)
		if !ok || !loop.Parallel {
			seq = append(seq, s)
			continue
		}
		cand, ok := t.cands[loop]
		if !ok {
			// Unanalyzable for communication generation: run serially.
			seq = append(seq, s)
			continue
		}
		flush()
		par++
		p.Regions = append(p.Regions, &Region{Par: &ParInfo{
			Loop:       loop,
			Ctx:        cand.ctx,
			Reductions: loop.Reductions,
			Schedule:   loop.Schedule,
		}})
	}
	flush()
	return fmt.Sprintf("%d regions (%d parallel)", len(p.Regions), par)
}

// scatterCollect (§5.4) generates the communication obligations of
// each parallel region from its split LMADs: ReadOnly → scatter;
// WriteFirst → collect; ReadWrite → both.
func (t *translator) scatterCollect() string {
	scatters, collects := 0, 0
	for _, r := range t.p.Regions {
		if r.Par == nil {
			continue
		}
		info := r.Par
		cand := t.cands[info.Loop]
		mk := func(acc analysis.Access, typ lmad.AccType) *CommOp {
			op := &CommOp{Sym: acc.Sym, Acc: acc, Type: typ, Grain: t.p.Opts.Grain}
			op.ParallelDim = acc.DimOf(info.Loop.Var)
			if op.ParallelDim >= 0 {
				// Negative coefficient: WithDim flipped the offset; the
				// loop's trip order runs backwards along the lattice.
				if c := acc.Coeffs[info.Loop.Var]; c*cand.ctx.Step < 0 {
					op.Reversed = true
				}
			}
			return op
		}
		seen := map[string]bool{}
		for _, typ := range []lmad.AccType{lmad.ReadOnly, lmad.WriteFirst, lmad.ReadWrite} {
			for _, acc := range cand.ri.AccessesOf(typ) {
				key := fmt.Sprintf("%v|%s", typ, acc.L.String())
				if seen[key] {
					continue
				}
				seen[key] = true
				op := mk(acc, typ)
				switch typ {
				case lmad.ReadOnly:
					info.Scatters = append(info.Scatters, op)
				case lmad.WriteFirst:
					info.Collects = append(info.Collects, op)
				case lmad.ReadWrite:
					info.Scatters = append(info.Scatters, op)
					col := mk(acc, typ)
					info.Collects = append(info.Collects, col)
				}
			}
		}
		scatters += len(info.Scatters)
		collects += len(info.Collects)
	}
	return fmt.Sprintf("%d scatters, %d collects", scatters, collects)
}

// grainOpt runs the §5.6 race check ("we implemented a routine to
// check the upper and lower bound of approximate regions"):
// approximate-grain collects must not let a slave's transfer overwrite
// master data it does not own. Checked per array across every collect
// op of every parallel region; violations demote to fine grain.
func (t *translator) grainOpt() string {
	for _, r := range t.p.Regions {
		if r.Par != nil {
			demoteUnsafeCollects(r.Par, t.p.Opts.NumProcs)
		}
	}
	demoted := 0
	for _, r := range t.p.Regions {
		if r.Par == nil {
			continue
		}
		for _, op := range r.Par.Collects {
			if op.RaceFallback {
				demoted++
			}
		}
	}
	if demoted > 0 {
		return fmt.Sprintf("race check demoted %d collects to fine", demoted)
	}
	return "no demotions"
}

// avpg builds the array-value-propagation graph (§5.2) and eliminates
// the region-boundary communication it proves redundant. Under
// Resilient the elimination is skipped: it assumes slave copies and
// master memory persist across region boundaries, which an epoch
// restart (fresh slaves, checkpointed master) violates.
func (t *translator) avpg() string {
	t.p.buildGraph()
	if t.p.Opts.Resilient {
		return "elimination disabled (resilient epochs restart with fresh slaves)"
	}
	t.p.eliminate()
	return fmt.Sprintf("eliminated %d scatters, %d collects",
		t.p.EliminatedScatters, t.p.EliminatedCollects)
}

// envGen is the MPI environment generation (§5.1): one memory window
// for every symbol that appears in any remaining comm op (plus the
// reduction scalars under lock-based combining).
func (t *translator) envGen() string {
	p := t.p
	winSet := map[*f77.Symbol]bool{}
	for _, r := range p.Regions {
		if r.Par == nil {
			continue
		}
		for _, op := range append(append([]*CommOp{}, r.Par.Scatters...), r.Par.Collects...) {
			winSet[op.Sym] = true
		}
		if p.Opts.LockReductions {
			// The reduction scalars need windows for the lock-based
			// critical sections.
			for _, red := range r.Par.Reductions {
				winSet[red.Sym] = true
			}
		}
	}
	for sym := range winSet {
		p.Windows = append(p.Windows, sym)
	}
	sort.Slice(p.Windows, func(i, j int) bool { return p.Windows[i].Name < p.Windows[j].Name })
	return fmt.Sprintf("%d windows", len(p.Windows))
}

// resilience groups regions into checkpoint epochs for restart-capable
// execution: an epoch closes after Opts.CkptEvery parallel regions
// (trailing sequential regions join the last epoch — there is nothing
// after them worth a checkpoint of their own). Partition regeneration
// for a shrunken rank count is handled by re-running the whole
// pipeline with the new NumProcs; this stage only fixes the epoch
// boundaries the interpreter checkpoints at.
func (t *translator) resilience() string {
	p := t.p
	if !p.Opts.Resilient {
		return "off"
	}
	every := p.Opts.CkptEvery
	if every < 1 {
		every = 1
	}
	var epochs [][]int
	var cur []int
	pars := 0
	for i, r := range p.Regions {
		cur = append(cur, i)
		if r.Par != nil {
			if pars++; pars == every {
				epochs = append(epochs, cur)
				cur, pars = nil, 0
			}
		}
	}
	if len(cur) > 0 {
		if len(epochs) > 0 && pars == 0 {
			last := len(epochs) - 1
			epochs[last] = append(epochs[last], cur...)
		} else {
			epochs = append(epochs, cur)
		}
	}
	p.Epochs = epochs
	return fmt.Sprintf("%d epochs (checkpoint every %d parallel regions)", len(epochs), every)
}

// demoteUnsafeCollects applies the §5.6 safety rule per array:
//
//	(a) the approximate regions transferred by different slaves — and
//	    the master's own exact write region — must be pairwise
//	    disjoint, and
//	(b) every element inside a slave's approximate region must carry a
//	    valid value on that slave: either the slave wrote it (exact
//	    write set of any collect op) or it was scattered to the slave
//	    at region entry (so collecting it returns the master's value).
//
// A violation demotes every collect op of the array to fine grain
// (exact regions are disjoint by the parallelism proof).
func demoteUnsafeCollects(info *ParInfo, procs int) {
	if procs == 1 {
		return
	}
	type iv struct{ lo, hi int64 }
	byArray := map[*f77.Symbol][]*CommOp{}
	for _, op := range info.Collects {
		byArray[op.Sym] = append(byArray[op.Sym], op)
	}
	const coverLimit = 1 << 22
	for sym, ops := range byArray {
		approx := false
		for _, op := range ops {
			if op.Grain != lmad.Fine {
				approx = true
			}
		}
		if !approx {
			continue
		}
		demote := func() {
			for _, op := range ops {
				if op.Grain != lmad.Fine {
					op.Grain = lmad.Fine
					op.RaceFallback = true
				}
			}
		}
		// Per-rank transferred intervals (master: exact writes, since
		// it transfers nothing but its results must not be clobbered).
		boxes := make([][]iv, procs)
		safe := true
		for r := 0; r < procs && safe; r++ {
			for _, op := range ops {
				grain := op.Grain
				if r == 0 {
					grain = lmad.Fine
				}
				shadow := *op
				shadow.Grain = grain
				plan := RankPlan(&shadow, info.Ctx, r, procs, info.Schedule)
				if grain == lmad.Coarse {
					plan = lmad.MergeContiguous(plan)
				}
				for _, tr := range plan {
					boxes[r] = append(boxes[r], iv{tr.Offset, tr.Offset + (tr.Elems-1)*tr.Stride})
				}
			}
		}
		// (a) pairwise disjointness across ranks.
		for a := 0; a < procs && safe; a++ {
			for b := a + 1; b < procs && safe; b++ {
				for _, x := range boxes[a] {
					for _, y := range boxes[b] {
						if x.lo <= y.hi && y.lo <= x.hi {
							safe = false
						}
					}
				}
			}
		}
		if !safe {
			demote()
			continue
		}
		// (b) slave-side validity: box elements ⊆ writes ∪ scattered.
		var scatters []*CommOp
		for _, sop := range info.Scatters {
			if sop.Sym == sym {
				scatters = append(scatters, sop)
			}
		}
		for r := 1; r < procs && safe; r++ {
			var need int64
			for _, b := range boxes[r] {
				need += b.hi - b.lo + 1
			}
			if need > coverLimit {
				safe = false
				break
			}
			covered := map[int64]bool{}
			markPlan := func(op *CommOp, grain lmad.Grain) {
				shadow := *op
				shadow.Grain = grain
				for _, tr := range RankPlan(&shadow, info.Ctx, r, procs, info.Schedule) {
					for i := int64(0); i < tr.Elems; i++ {
						if int64(len(covered)) > coverLimit {
							return
						}
						covered[tr.Offset+i*tr.Stride] = true
					}
				}
			}
			for _, op := range ops {
				markPlan(op, lmad.Fine) // exact writes
			}
			for _, sop := range scatters {
				markPlan(sop, sop.Grain)
			}
			for _, b := range boxes[r] {
				for e := b.lo; e <= b.hi && safe; e++ {
					if !covered[e] {
						safe = false
					}
				}
			}
		}
		if !safe {
			demote()
		}
	}
}

// buildGraph records array usage per region into the AVPG, with a
// virtual trailing region for live-out values.
func (p *Program) buildGraph() {
	n := len(p.Regions) + 1 // +1 virtual end region
	g := avpg.New(n)
	for i, r := range p.Regions {
		if r.Par != nil {
			for _, op := range r.Par.Scatters {
				g.Record(i, op.Sym.Name, true, false)
			}
			for _, op := range r.Par.Collects {
				g.Record(i, op.Sym.Name, false, true)
			}
			continue
		}
		// Sequential region: the master touches data directly; record
		// reads and writes so liveness sees them.
		f77.WalkStmts(r.Stmts, func(s f77.Stmt) bool {
			if a, ok := s.(*f77.Assign); ok {
				g.Record(i, a.LHS.Sym.Name, false, true)
			}
			f77.StmtExprs(s, func(e f77.Expr) {
				f77.WalkExpr(e, func(sub f77.Expr) {
					switch v := sub.(type) {
					case *f77.VarExpr:
						g.Record(i, v.Sym.Name, true, false)
					case *f77.ArrayExpr:
						g.Record(i, v.Sym.Name, true, false)
					}
				})
			})
			return true
		})
	}
	if p.Opts.LiveOutAll {
		// The virtual end region reads everything ever written.
		for _, a := range g.Arrays() {
			g.Record(n-1, a, true, false)
		}
	}
	p.Graph = g
}

// eliminate drops redundant comm ops using the AVPG (§5.2): a collect
// whose value is dead afterwards, and a scatter whose slave copies are
// already fresh (nothing wrote the array since the last scatter).
func (p *Program) eliminate() {
	fresh := map[string]bool{} // array → slaves hold the master's current value
	for i, r := range p.Regions {
		if r.Par == nil {
			// Master writes invalidate slave copies.
			f77.WalkStmts(r.Stmts, func(s f77.Stmt) bool {
				if a, ok := s.(*f77.Assign); ok {
					fresh[a.LHS.Sym.Name] = false
				}
				return true
			})
			continue
		}
		var keptS []*CommOp
		for _, op := range r.Par.Scatters {
			if fresh[op.Sym.Name] {
				p.EliminatedScatters++
				continue
			}
			keptS = append(keptS, op)
		}
		r.Par.Scatters = keptS
		// After scatter, slaves are fresh for those arrays — but a
		// partitioned scatter only delivers each slave its own part, so
		// freshness holds for identical access patterns. Conservative:
		// mark fresh only for replicated scatters.
		for _, op := range keptS {
			if op.ParallelDim < 0 {
				fresh[op.Sym.Name] = true
			}
		}
		var keptC []*CommOp
		for _, op := range r.Par.Collects {
			if !p.Graph.NeedCollect(i, op.Sym.Name) {
				p.EliminatedCollects++
				continue
			}
			keptC = append(keptC, op)
		}
		r.Par.Collects = keptC
		// Writes during the region make slave copies of the written
		// arrays stale (each slave only has its own part up to date).
		for _, op := range keptC {
			fresh[op.Sym.Name] = false
		}
	}
}

// String renders a compact report of the translation.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SPMD program: %d regions, %d windows, grain=%v, P=%d",
		len(p.Regions), len(p.Windows), p.Opts.Grain, p.Opts.NumProcs)
	if p.Opts.LockReductions {
		sb.WriteString(", lock-reductions")
	}
	if p.Opts.PullScatter {
		sb.WriteString(", pull-scatter")
	}
	if p.Opts.TwoSided {
		sb.WriteString(", two-sided")
	}
	sb.WriteByte('\n')
	for i, r := range p.Regions {
		if r.Par == nil {
			fmt.Fprintf(&sb, "  region %d: sequential (%d statements)\n", i, len(r.Stmts))
			continue
		}
		fmt.Fprintf(&sb, "  region %d: parallel DO %s = %d,%d,%d schedule=%v\n",
			i, r.Par.Loop.Var.Name, r.Par.Ctx.From, r.Par.Ctx.To, r.Par.Ctx.Step, r.Par.Schedule)
		for _, op := range r.Par.Scatters {
			fmt.Fprintf(&sb, "    scatter %-10s %v %s\n", op.Sym.Name, op.Type, op.Acc.L)
		}
		for _, op := range r.Par.Collects {
			extra := ""
			if op.RaceFallback {
				extra = " (race check → fine)"
			}
			fmt.Fprintf(&sb, "    collect %-10s %v %s grain=%v%s\n", op.Sym.Name, op.Type, op.Acc.L, op.Grain, extra)
		}
	}
	fmt.Fprintf(&sb, "  AVPG eliminated %d scatters, %d collects\n", p.EliminatedScatters, p.EliminatedCollects)
	return sb.String()
}
