package f77

import "fmt"

// SymMap substitutes symbols during cloning: every reference to a key
// symbol is replaced by a reference to its value. Symbols not in the
// map are kept as-is.
type SymMap map[*Symbol]*Symbol

func (m SymMap) get(s *Symbol) *Symbol {
	if r, ok := m[s]; ok {
		return r
	}
	return s
}

// CloneExpr deep-copies an expression, applying the symbol map.
func CloneExpr(e Expr, m SymMap) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		c := *x
		return &c
	case *RealLit:
		c := *x
		return &c
	case *LogLit:
		c := *x
		return &c
	case *StrLit:
		c := *x
		return &c
	case *VarExpr:
		return &VarExpr{Sym: m.get(x.Sym)}
	case *ArrayExpr:
		c := &ArrayExpr{Sym: m.get(x.Sym), Subs: make([]Expr, len(x.Subs))}
		for i, s := range x.Subs {
			c.Subs[i] = CloneExpr(s, m)
		}
		return c
	case *Bin:
		return &Bin{Op: x.Op, L: CloneExpr(x.L, m), R: CloneExpr(x.R, m)}
	case *Un:
		return &Un{Op: x.Op, X: CloneExpr(x.X, m)}
	case *CallExpr:
		c := &CallExpr{Name: x.Name, Intrinsic: x.Intrinsic, Ret: x.Ret, Args: make([]Expr, len(x.Args))}
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a, m)
		}
		return c
	default:
		panic(fmt.Sprintf("f77: CloneExpr(%T)", e))
	}
}

// CloneStmts deep-copies a statement list, applying the symbol map and
// adding labelOffset to every label and GOTO target (0 keeps labels).
func CloneStmts(stmts []Stmt, m SymMap, labelOffset int) []Stmt {
	out := make([]Stmt, 0, len(stmts))
	for _, s := range stmts {
		out = append(out, CloneStmt(s, m, labelOffset))
	}
	return out
}

// CloneStmt deep-copies one statement.
func CloneStmt(s Stmt, m SymMap, labelOffset int) Stmt {
	base := StmtBase{Lbl: s.Label(), SrcLine: s.Line()}
	if base.Lbl != 0 {
		base.Lbl += labelOffset
	}
	switch x := s.(type) {
	case *Assign:
		lhs := &Ref{Sym: m.get(x.LHS.Sym), Subs: make([]Expr, len(x.LHS.Subs))}
		for i, sub := range x.LHS.Subs {
			lhs.Subs[i] = CloneExpr(sub, m)
		}
		return &Assign{StmtBase: base, LHS: lhs, RHS: CloneExpr(x.RHS, m)}
	case *DoLoop:
		c := &DoLoop{
			StmtBase: base,
			Var:      m.get(x.Var),
			From:     CloneExpr(x.From, m),
			To:       CloneExpr(x.To, m),
			Step:     CloneExpr(x.Step, m),
			Body:     CloneStmts(x.Body, m, labelOffset),
			Parallel: x.Parallel,
			Schedule: x.Schedule,
		}
		for _, r := range x.Reductions {
			c.Reductions = append(c.Reductions, &Reduction{Sym: m.get(r.Sym), Op: r.Op})
		}
		for _, p := range x.Private {
			c.Private = append(c.Private, m.get(p))
		}
		c.Triangular = x.Triangular
		return c
	case *IfBlock:
		c := &IfBlock{StmtBase: base}
		for _, cond := range x.Conds {
			c.Conds = append(c.Conds, CloneExpr(cond, m))
		}
		for _, blk := range x.Blocks {
			c.Blocks = append(c.Blocks, CloneStmts(blk, m, labelOffset))
		}
		c.Else = CloneStmts(x.Else, m, labelOffset)
		return c
	case *Goto:
		t := x.Target
		if t != 0 {
			t += labelOffset
		}
		return &Goto{StmtBase: base, Target: t}
	case *ContinueStmt:
		return &ContinueStmt{StmtBase: base}
	case *CallStmt:
		c := &CallStmt{StmtBase: base, Name: x.Name, Args: make([]Expr, len(x.Args))}
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a, m)
		}
		return c
	case *ReturnStmt:
		return &ReturnStmt{StmtBase: base}
	case *StopStmt:
		return &StopStmt{StmtBase: base}
	case *PrintStmt:
		c := &PrintStmt{StmtBase: base, Args: make([]Expr, len(x.Args))}
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a, m)
		}
		return c
	default:
		panic(fmt.Sprintf("f77: CloneStmt(%T)", s))
	}
}
