// Package f77 is the front end of the parallelizing compiler: a lexer,
// parser and semantic analyzer for the Fortran 77 subset that the
// paper's benchmarks (MM, SWIM, CFFT2INIT) and figures use.
//
// The subset, documented in DESIGN.md §8: PROGRAM/SUBROUTINE/FUNCTION
// units, INTEGER/REAL/DOUBLE PRECISION/LOGICAL declarations with array
// dimensions (including assumed-size final dimensions like A(14,*)),
// PARAMETER constants, DATA statements, DO loops (ENDDO or labeled
// CONTINUE form), block IF/ELSEIF/ELSE, logical and arithmetic
// expressions, GOTO, CALL, RETURN, STOP, PRINT *, and the numeric
// intrinsics. Source is accepted in free form with standard Fortran
// case-insensitive keywords; the classic column-6 continuation rules
// are relaxed (a trailing '&' continues a line), which the paper's
// kernels do not depend on.
package f77

import "fmt"

// TokKind classifies a token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIdent
	TokInt
	TokReal
	TokString
	TokPlus
	TokMinus
	TokStar
	TokPower // **
	TokSlash
	TokLParen
	TokRParen
	TokComma
	TokEq // =
	TokColon
	// Relational/logical dot-operators (.LT. etc.) and keywords are
	// delivered as TokIdent-like kinds of their own:
	TokLT
	TokLE
	TokGT
	TokGE
	TokEQ
	TokNE
	TokAND
	TokOR
	TokNOT
	TokTrue  // .TRUE.
	TokFalse // .FALSE.
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "newline"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokReal:
		return "real"
	case TokString:
		return "string"
	case TokPlus:
		return "+"
	case TokMinus:
		return "-"
	case TokStar:
		return "*"
	case TokPower:
		return "**"
	case TokSlash:
		return "/"
	case TokLParen:
		return "("
	case TokRParen:
		return ")"
	case TokComma:
		return ","
	case TokEq:
		return "="
	case TokColon:
		return ":"
	case TokLT:
		return ".LT."
	case TokLE:
		return ".LE."
	case TokGT:
		return ".GT."
	case TokGE:
		return ".GE."
	case TokEQ:
		return ".EQ."
	case TokNE:
		return ".NE."
	case TokAND:
		return ".AND."
	case TokOR:
		return ".OR."
	case TokNOT:
		return ".NOT."
	case TokTrue:
		return ".TRUE."
	case TokFalse:
		return ".FALSE."
	default:
		return fmt.Sprintf("TokKind(%d)", int(k))
	}
}

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string // identifier/literal text, upper-cased for identifiers
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%v(%s)", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// Error is a front-end diagnostic with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("f77: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
