package f77

// WalkStmts visits stmts depth-first, calling pre for each statement
// before its children. Returning false from pre skips the children.
func WalkStmts(stmts []Stmt, pre func(Stmt) bool) {
	for _, s := range stmts {
		walkStmt(s, pre)
	}
}

func walkStmt(s Stmt, pre func(Stmt) bool) {
	if !pre(s) {
		return
	}
	switch x := s.(type) {
	case *DoLoop:
		WalkStmts(x.Body, pre)
	case *IfBlock:
		for _, b := range x.Blocks {
			WalkStmts(b, pre)
		}
		WalkStmts(x.Else, pre)
	}
}

// StmtExprs calls f for every expression directly held by s (not
// descending into child statements).
func StmtExprs(s Stmt, f func(Expr)) {
	switch x := s.(type) {
	case *Assign:
		for _, sub := range x.LHS.Subs {
			f(sub)
		}
		f(x.RHS)
	case *DoLoop:
		f(x.From)
		f(x.To)
		if x.Step != nil {
			f(x.Step)
		}
	case *IfBlock:
		for _, c := range x.Conds {
			f(c)
		}
	case *CallStmt:
		for _, a := range x.Args {
			f(a)
		}
	case *PrintStmt:
		for _, a := range x.Args {
			f(a)
		}
	}
}

// WalkExpr visits e and all subexpressions depth-first (pre-order).
func WalkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *ArrayExpr:
		for _, s := range x.Subs {
			WalkExpr(s, f)
		}
	case *Bin:
		WalkExpr(x.L, f)
		WalkExpr(x.R, f)
	case *Un:
		WalkExpr(x.X, f)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	}
}

// RewriteExpr rebuilds e bottom-up, replacing each node with f(node).
// f receives nodes whose children are already rewritten.
func RewriteExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ArrayExpr:
		for i, s := range x.Subs {
			x.Subs[i] = RewriteExpr(s, f)
		}
	case *Bin:
		x.L = RewriteExpr(x.L, f)
		x.R = RewriteExpr(x.R, f)
	case *Un:
		x.X = RewriteExpr(x.X, f)
	case *CallExpr:
		for i, a := range x.Args {
			x.Args[i] = RewriteExpr(a, f)
		}
	}
	return f(e)
}

// RewriteStmtExprs applies RewriteExpr with f to every expression
// directly held by s (not descending into child statements).
func RewriteStmtExprs(s Stmt, f func(Expr) Expr) {
	switch x := s.(type) {
	case *Assign:
		for i, sub := range x.LHS.Subs {
			x.LHS.Subs[i] = RewriteExpr(sub, f)
		}
		x.RHS = RewriteExpr(x.RHS, f)
	case *DoLoop:
		x.From = RewriteExpr(x.From, f)
		x.To = RewriteExpr(x.To, f)
		if x.Step != nil {
			x.Step = RewriteExpr(x.Step, f)
		}
	case *IfBlock:
		for i, c := range x.Conds {
			x.Conds[i] = RewriteExpr(c, f)
		}
	case *CallStmt:
		for i, a := range x.Args {
			x.Args[i] = RewriteExpr(a, f)
		}
	case *PrintStmt:
		for i, a := range x.Args {
			x.Args[i] = RewriteExpr(a, f)
		}
	}
}

// RewriteAllExprs applies RewriteStmtExprs to every statement in the
// tree rooted at stmts.
func RewriteAllExprs(stmts []Stmt, f func(Expr) Expr) {
	WalkStmts(stmts, func(s Stmt) bool {
		RewriteStmtExprs(s, f)
		return true
	})
}
