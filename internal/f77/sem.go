package f77

import (
	"fmt"
)

// Analyze is the semantic pass run after parsing: it re-classifies
// name(args) forms (array element vs user-function call), resolves
// user-function result types, and checks subscript arity, assignment
// targets, and GOTO labels.
func Analyze(prog *Program) error {
	for _, u := range prog.Units {
		if err := analyzeUnit(prog, u); err != nil {
			return err
		}
	}
	return nil
}

func analyzeUnit(prog *Program, u *Unit) error {
	var firstErr error
	setErr := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	// Pass 1: re-classify ArrayExpr nodes whose symbol is not an array:
	// calls to user functions parse as array references because Fortran
	// syntax cannot distinguish them.
	RewriteAllExprs(u.Body, func(e Expr) Expr {
		ax, ok := e.(*ArrayExpr)
		if !ok {
			return e
		}
		if ax.Sym.IsArray() {
			return e
		}
		if callee := prog.Lookup(ax.Sym.Name); callee != nil && callee.Kind == KFunction {
			return &CallExpr{Name: callee.Name, Args: ax.Subs, Ret: callee.Result}
		}
		if ax.Sym.IsArg {
			// A dummy argument subscripted but not dimensioned here:
			// treat as a 1-D assumed-size array (legal F77 style).
			ax.Sym.Dims = []Dim{{}}
			return e
		}
		setErr(fmt.Errorf("f77: %s: %q is subscripted but is neither an array nor a known function", u.Name, ax.Sym.Name))
		return e
	})

	// Pass 2: structural checks.
	labels := map[int]bool{}
	WalkStmts(u.Body, func(s Stmt) bool {
		if s.Label() != 0 {
			labels[s.Label()] = true
		}
		return true
	})
	WalkStmts(u.Body, func(s Stmt) bool {
		switch x := s.(type) {
		case *Assign:
			if x.LHS.Sym.IsConst {
				setErr(fmt.Errorf("f77: %s: line %d: assignment to PARAMETER %s", u.Name, s.Line(), x.LHS.Sym.Name))
			}
			if len(x.LHS.Subs) > 0 && !x.LHS.Sym.IsArray() {
				setErr(fmt.Errorf("f77: %s: line %d: %s is not an array", u.Name, s.Line(), x.LHS.Sym.Name))
			}
			if x.LHS.Sym.IsArray() && len(x.LHS.Subs) != len(x.LHS.Sym.Dims) {
				setErr(fmt.Errorf("f77: %s: line %d: %s has %d dimensions, subscripted with %d",
					u.Name, s.Line(), x.LHS.Sym.Name, len(x.LHS.Sym.Dims), len(x.LHS.Subs)))
			}
			if x.LHS.Sym.IsArray() && len(x.LHS.Subs) == 0 {
				setErr(fmt.Errorf("f77: %s: line %d: assignment to whole array %s", u.Name, s.Line(), x.LHS.Sym.Name))
			}
		case *Goto:
			if !labels[x.Target] {
				setErr(fmt.Errorf("f77: %s: line %d: GOTO %d has no target", u.Name, s.Line(), x.Target))
			}
		case *CallStmt:
			callee := prog.Lookup(x.Name)
			if callee == nil {
				setErr(fmt.Errorf("f77: %s: line %d: CALL of unknown subroutine %s", u.Name, s.Line(), x.Name))
			} else if callee.Kind != KSubroutine {
				setErr(fmt.Errorf("f77: %s: line %d: CALL of non-subroutine %s", u.Name, s.Line(), x.Name))
			} else if len(x.Args) != len(callee.Params) {
				setErr(fmt.Errorf("f77: %s: line %d: %s takes %d arguments, got %d",
					u.Name, s.Line(), x.Name, len(callee.Params), len(x.Args)))
			}
		case *DoLoop:
			if x.Var.IsArray() || x.Var.IsConst {
				setErr(fmt.Errorf("f77: %s: line %d: invalid DO variable %s", u.Name, s.Line(), x.Var.Name))
			}
			if x.Var.Type != TInteger {
				setErr(fmt.Errorf("f77: %s: line %d: DO variable %s must be INTEGER", u.Name, s.Line(), x.Var.Name))
			}
		}
		// Expression-level checks.
		StmtExprs(s, func(e Expr) {
			WalkExpr(e, func(sub Expr) {
				switch v := sub.(type) {
				case *ArrayExpr:
					if len(v.Subs) != len(v.Sym.Dims) {
						setErr(fmt.Errorf("f77: %s: line %d: %s has %d dimensions, subscripted with %d",
							u.Name, s.Line(), v.Sym.Name, len(v.Sym.Dims), len(v.Subs)))
					}
				case *CallExpr:
					if v.Intrinsic {
						want := Intrinsics[v.Name]
						if want >= 0 && want != len(v.Args) {
							setErr(fmt.Errorf("f77: %s: line %d: intrinsic %s takes %d arguments, got %d",
								u.Name, s.Line(), v.Name, want, len(v.Args)))
						}
						if want == -1 && len(v.Args) < 2 {
							setErr(fmt.Errorf("f77: %s: line %d: intrinsic %s needs at least 2 arguments",
								u.Name, s.Line(), v.Name))
						}
					} else if callee := prog.Lookup(v.Name); callee != nil && len(v.Args) != len(callee.Params) {
						setErr(fmt.Errorf("f77: %s: line %d: function %s takes %d arguments, got %d",
							u.Name, s.Line(), v.Name, len(callee.Params), len(v.Args)))
					}
				}
			})
		})
		return true
	})

	// Pass 3: every declared array must have constant or
	// argument-derived bounds.
	for _, sym := range u.Syms.Order {
		for i, d := range sym.Dims {
			if d.High == nil {
				if i != len(sym.Dims)-1 {
					setErr(fmt.Errorf("f77: %s: assumed-size dimension of %s must be last", u.Name, sym.Name))
				}
				if !sym.IsArg {
					setErr(fmt.Errorf("f77: %s: assumed-size array %s must be a dummy argument", u.Name, sym.Name))
				}
			}
		}
	}
	return firstErr
}

// DimExtent computes the constant extent of a dimension, if both bounds
// fold. The default lower bound is 1.
func DimExtent(d Dim) (low, high int64, ok bool) {
	low = 1
	if d.Low != nil {
		v, o := ConstFold(d.Low)
		if !o {
			return 0, 0, false
		}
		low = int64(v)
	}
	if d.High == nil {
		return low, 0, false
	}
	v, o := ConstFold(d.High)
	if !o {
		return 0, 0, false
	}
	return low, int64(v), true
}
