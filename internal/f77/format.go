package f77

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a program back to Fortran 77 source. The output
// reparses to a structurally identical program (see the round-trip
// property test), which makes it usable both as a compiler listing and
// as input to other Fortran tools.
func Format(p *Program) string {
	var sb strings.Builder
	for i, u := range p.Units {
		if i > 0 {
			sb.WriteByte('\n')
		}
		FormatUnit(&sb, u)
	}
	return sb.String()
}

// FormatUnit renders one program unit.
func FormatUnit(sb *strings.Builder, u *Unit) {
	switch u.Kind {
	case KProgram:
		fmt.Fprintf(sb, "      PROGRAM %s\n", u.Name)
	case KSubroutine:
		fmt.Fprintf(sb, "      SUBROUTINE %s%s\n", u.Name, formatParams(u))
	case KFunction:
		fmt.Fprintf(sb, "      %s FUNCTION %s%s\n", u.Result, u.Name, formatParams(u))
	}
	formatDecls(sb, u)
	formatStmts(sb, u.Body, 6)
	sb.WriteString("      END\n")
}

func formatParams(u *Unit) string {
	if len(u.Params) == 0 {
		return ""
	}
	names := make([]string, len(u.Params))
	for i, p := range u.Params {
		names[i] = p.Name
	}
	return "(" + strings.Join(names, ", ") + ")"
}

// FormatDecls renders a unit's declarations (types, PARAMETER, COMMON,
// DATA) — exported for the SPMD listing emitter.
func FormatDecls(sb *strings.Builder, u *Unit) { formatDecls(sb, u) }

// FormatStmts renders a statement list at the given indentation depth
// (6 = top level) — exported for the SPMD listing emitter.
func FormatStmts(sb *strings.Builder, stmts []Stmt, depth int) { formatStmts(sb, stmts, depth) }

func formatDecls(sb *strings.Builder, u *Unit) {
	// PARAMETERs first (array bounds may reference them).
	var params []string
	for _, sym := range u.Syms.Order {
		if sym.IsConst {
			params = append(params, fmt.Sprintf("%s = %s", sym.Name, formatConst(sym)))
		}
	}
	// Integer PARAMETER symbols need their type declared before use if
	// it differs from implicit typing; declare all consts explicitly.
	for _, sym := range u.Syms.Order {
		if sym.IsConst {
			fmt.Fprintf(sb, "      %s %s\n", sym.Type, sym.Name)
		}
	}
	if len(params) > 0 {
		fmt.Fprintf(sb, "      PARAMETER (%s)\n", strings.Join(params, ", "))
	}
	for _, sym := range u.Syms.Order {
		if sym.IsConst {
			continue
		}
		// Declare everything explicitly (types plus dimensions); the
		// function-name result symbol is typed by the header.
		if u.Kind == KFunction && sym.Name == u.Name {
			continue
		}
		fmt.Fprintf(sb, "      %s %s%s\n", sym.Type, sym.Name, formatDims(sym))
	}
	// COMMON blocks.
	for _, block := range sortedBlocks(u) {
		names := make([]string, 0, len(u.Commons[block]))
		for _, m := range u.Commons[block] {
			names = append(names, m.Name)
		}
		if block == "*BLANK*" {
			fmt.Fprintf(sb, "      COMMON %s\n", strings.Join(names, ", "))
		} else {
			fmt.Fprintf(sb, "      COMMON /%s/ %s\n", block, strings.Join(names, ", "))
		}
	}
	// DATA statements.
	for _, di := range u.DataInits {
		vals := make([]string, len(di.Vals))
		for i, v := range di.Vals {
			vals[i] = formatFloat(v, di.Sym.Type)
		}
		fmt.Fprintf(sb, "      DATA %s /%s/\n", di.Sym.Name, strings.Join(vals, ", "))
	}
}

func sortedBlocks(u *Unit) []string {
	out := make([]string, 0, len(u.Commons))
	for b := range u.Commons {
		out = append(out, b)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func formatConst(sym *Symbol) string { return formatFloat(sym.Const, sym.Type) }

func formatFloat(v float64, t Type) string {
	if t == TInteger {
		return strconv.FormatInt(int64(v), 10)
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	// Fortran uses E, never e.
	return strings.ToUpper(s)
}

func formatDims(sym *Symbol) string {
	if !sym.IsArray() {
		return ""
	}
	parts := make([]string, len(sym.Dims))
	for i, d := range sym.Dims {
		switch {
		case d.High == nil && d.Low == nil:
			parts[i] = "*"
		case d.High == nil:
			parts[i] = FormatExpr(d.Low) + ":*"
		case d.Low == nil:
			parts[i] = FormatExpr(d.High)
		default:
			parts[i] = FormatExpr(d.Low) + ":" + FormatExpr(d.High)
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func indentOf(depth int) string { return strings.Repeat(" ", depth) }

func formatStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		formatStmt(sb, s, depth)
	}
}

func label(sb *strings.Builder, s Stmt) string {
	if l := s.Label(); l != 0 {
		return fmt.Sprintf("%-5d ", l)
	}
	return "      "
}

func formatStmt(sb *strings.Builder, s Stmt, depth int) {
	ind := indentOf(depth - 6)
	switch x := s.(type) {
	case *Assign:
		fmt.Fprintf(sb, "%s%s%s = %s\n", label(sb, s), ind, formatRef(x.LHS), FormatExpr(x.RHS))
	case *DoLoop:
		step := ""
		if x.Step != nil {
			step = ", " + FormatExpr(x.Step)
		}
		if x.Parallel {
			fmt.Fprintf(sb, "!$PAR PARALLEL\n")
		}
		fmt.Fprintf(sb, "%s%sDO %s = %s, %s%s\n", label(sb, s), ind, x.Var.Name,
			FormatExpr(x.From), FormatExpr(x.To), step)
		formatStmts(sb, x.Body, depth+2)
		fmt.Fprintf(sb, "      %sENDDO\n", ind)
	case *IfBlock:
		for i, cond := range x.Conds {
			kw := "IF"
			if i > 0 {
				kw = "ELSEIF"
			}
			pre := label(sb, s)
			if i > 0 {
				pre = "      "
			}
			fmt.Fprintf(sb, "%s%s%s (%s) THEN\n", pre, ind, kw, FormatExpr(cond))
			formatStmts(sb, x.Blocks[i], depth+2)
		}
		if len(x.Else) > 0 {
			fmt.Fprintf(sb, "      %sELSE\n", ind)
			formatStmts(sb, x.Else, depth+2)
		}
		fmt.Fprintf(sb, "      %sENDIF\n", ind)
	case *Goto:
		fmt.Fprintf(sb, "%s%sGOTO %d\n", label(sb, s), ind, x.Target)
	case *ContinueStmt:
		fmt.Fprintf(sb, "%s%sCONTINUE\n", label(sb, s), ind)
	case *CallStmt:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = FormatExpr(a)
		}
		fmt.Fprintf(sb, "%s%sCALL %s(%s)\n", label(sb, s), ind, x.Name, strings.Join(args, ", "))
	case *ReturnStmt:
		fmt.Fprintf(sb, "%s%sRETURN\n", label(sb, s), ind)
	case *StopStmt:
		fmt.Fprintf(sb, "%s%sSTOP\n", label(sb, s), ind)
	case *PrintStmt:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = FormatExpr(a)
		}
		out := "PRINT *"
		if len(args) > 0 {
			out += ", " + strings.Join(args, ", ")
		}
		fmt.Fprintf(sb, "%s%s%s\n", label(sb, s), ind, out)
	default:
		fmt.Fprintf(sb, "%s%sC unhandled %T\n", label(sb, s), ind, s)
	}
}

func formatRef(r *Ref) string {
	if len(r.Subs) == 0 {
		return r.Sym.Name
	}
	subs := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = FormatExpr(s)
	}
	return r.Sym.Name + "(" + strings.Join(subs, ", ") + ")"
}

// FormatExpr renders one expression with minimal parentheses (children
// parenthesized when their operator binds looser than the parent's).
func FormatExpr(e Expr) string {
	return formatPrec(e, 0)
}

// Precedence levels: 1 .OR., 2 .AND., 3 .NOT., 4 relational,
// 5 additive, 6 multiplicative, 7 unary minus, 8 power.
func precOf(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
		return 4
	case OpAdd, OpSub:
		return 5
	case OpMul, OpDiv:
		return 6
	case OpPow:
		return 8
	default:
		return 9
	}
}

func formatPrec(e Expr, parent int) string {
	switch x := e.(type) {
	case *IntLit:
		if x.Val < 0 {
			return "(" + strconv.FormatInt(x.Val, 10) + ")"
		}
		return strconv.FormatInt(x.Val, 10)
	case *RealLit:
		return formatFloat(x.Val, TReal)
	case *LogLit:
		if x.Val {
			return ".TRUE."
		}
		return ".FALSE."
	case *StrLit:
		return "'" + x.Val + "'"
	case *VarExpr:
		return x.Sym.Name
	case *ArrayExpr:
		subs := make([]string, len(x.Subs))
		for i, s := range x.Subs {
			subs[i] = formatPrec(s, 0)
		}
		return x.Sym.Name + "(" + strings.Join(subs, ", ") + ")"
	case *Un:
		switch x.Op {
		case OpNeg:
			inner := formatPrec(x.X, 7)
			return wrap("-"+inner, 7, parent)
		case OpNot:
			return wrap(".NOT. "+formatPrec(x.X, 3), 3, parent)
		default:
			return formatPrec(x.X, parent)
		}
	case *Bin:
		p := precOf(x.Op)
		l := formatPrec(x.L, p)
		// Right child of a left-assoc op needs parens at equal prec.
		r := formatPrec(x.R, p+1)
		if x.Op == OpPow {
			// ** is right-associative.
			l = formatPrec(x.L, p+1)
			r = formatPrec(x.R, p)
		}
		return wrap(l+" "+x.Op.String()+" "+r, p, parent)
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = formatPrec(a, 0)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	default:
		return fmt.Sprintf("?%T?", e)
	}
}

func wrap(s string, prec, parent int) string {
	if prec < parent {
		return "(" + s + ")"
	}
	return s
}
