package f77

import (
	"strings"
	"testing"
)

func TestCloneStmtsDeepCopy(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(10), X
      INTEGER I
      DO 10 I = 1, 10
        IF (A(I) .GT. 0.0) THEN
          A(I) = -A(I) + SQRT(X) * 2.0 ** 2
        ELSE
          X = X + 1.0
        ENDIF
        IF (X .GT. 100.0) GOTO 10
        CALL S(A)
        PRINT *, 'X', X
10    CONTINUE
      RETURN
      END
      SUBROUTINE S(V)
      REAL V(10)
      V(1) = 0.0
      STOP
      END
`
	p := mustParse(t, src)
	u := p.Main()
	cloned := CloneStmts(u.Body, nil, 100)

	// Labels offset.
	loop := cloned[0].(*DoLoop)
	last := loop.Body[len(loop.Body)-1]
	if last.Label() != 110 {
		t.Fatalf("label offset: %d", last.Label())
	}
	// GOTO retargeted.
	found := false
	WalkStmts(cloned, func(s Stmt) bool {
		if g, ok := s.(*Goto); ok {
			if g.Target != 110 {
				t.Fatalf("goto target %d", g.Target)
			}
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("goto lost")
	}
	// Mutating the clone must not touch the original.
	asg := loop.Body[0].(*IfBlock).Blocks[0][0].(*Assign)
	asg.RHS = &IntLit{Val: 99}
	orig := u.Body[0].(*DoLoop).Body[0].(*IfBlock).Blocks[0][0].(*Assign)
	if _, isInt := orig.RHS.(*IntLit); isInt {
		t.Fatal("clone aliases original RHS")
	}
}

func TestCloneExprWithSymMap(t *testing.T) {
	a := &Symbol{Name: "A", Type: TReal, Dims: []Dim{{High: &IntLit{Val: 10}}}}
	b := &Symbol{Name: "B", Type: TReal, Dims: []Dim{{High: &IntLit{Val: 10}}}}
	i := &Symbol{Name: "I", Type: TInteger}
	e := &Bin{Op: OpAdd,
		L: &ArrayExpr{Sym: a, Subs: []Expr{&VarExpr{Sym: i}}},
		R: &Un{Op: OpNeg, X: &CallExpr{Name: "ABS", Intrinsic: true, Args: []Expr{&VarExpr{Sym: i}}}},
	}
	c := CloneExpr(e, SymMap{a: b}).(*Bin)
	if c.L.(*ArrayExpr).Sym != b {
		t.Fatal("symbol not remapped")
	}
	if e.L.(*ArrayExpr).Sym != a {
		t.Fatal("original mutated")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		TInteger: "INTEGER", TReal: "REAL", TDouble: "DOUBLE PRECISION", TLogical: "LOGICAL",
	}
	for ty, want := range cases {
		if ty.String() != want {
			t.Fatalf("%v", ty)
		}
	}
	if !TReal.IsFloat() || !TDouble.IsFloat() || TInteger.IsFloat() {
		t.Fatal("IsFloat wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type must stringify")
	}
}

func TestTokenStrings(t *testing.T) {
	for _, k := range []TokKind{TokEOF, TokNewline, TokIdent, TokInt, TokReal, TokString,
		TokPlus, TokMinus, TokStar, TokPower, TokSlash, TokLParen, TokRParen,
		TokComma, TokEq, TokColon, TokLT, TokLE, TokGT, TokGE, TokEQ, TokNE,
		TokAND, TokOR, TokNOT, TokTrue, TokFalse} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", int(k))
		}
	}
	tok := Token{Kind: TokIdent, Text: "FOO"}
	if !strings.Contains(tok.String(), "FOO") {
		t.Fatal("token string lost text")
	}
	plus := Token{Kind: TokPlus}
	if plus.String() != "+" {
		t.Fatal("bare token string")
	}
}

func TestTypeOfCoverage(t *testing.T) {
	src := `
      PROGRAM P
      REAL X
      DOUBLE PRECISION D
      INTEGER I, IDX
      LOGICAL L
      X = 1.0
      D = 2.0D0
      I = 3
      L = .TRUE.
      L = .NOT. L
      X = REAL(I) + X
      D = D * X
      I = INT(X) + NINT(X) + IABS(-2) + MAX0(1, 2)
      X = FLOAT(I) + AMIN1(X, 2.0) + AMAX1(X, 3.0)
      D = DBLE(X) + DMOD(D, 2.0D0)
      X = SIGN(X, -1.0) + MOD(X, 2.0)
      I = IDX(I)
      END
      INTEGER FUNCTION IDX(K)
      INTEGER K
      IDX = K + 1
      END
`
	p := mustParse(t, src)
	// Type every expression in the program; none may panic.
	WalkStmts(p.Main().Body, func(s Stmt) bool {
		StmtExprs(s, func(e Expr) {
			WalkExpr(e, func(sub Expr) {
				_ = TypeOf(sub)
			})
		})
		return true
	})
	// Spot checks.
	u := p.Main()
	d := u.Syms.Lookup("D")
	if d.Type != TDouble {
		t.Fatal("D not double")
	}
}

func TestScheduleString(t *testing.T) {
	if SchedBlock.String() != "block" || SchedCyclic.String() != "cyclic" {
		t.Fatal("schedule strings")
	}
}

func TestDirString(t *testing.T) {
	// BinOp strings.
	for op := OpAdd; op <= OpOr; op++ {
		if op.String() == "" {
			t.Fatalf("op %d empty", int(op))
		}
	}
	if BinOp(99).String() == "" {
		t.Fatal("unknown op must stringify")
	}
}
