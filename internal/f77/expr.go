package f77

import "strconv"

// Expression parsing: standard precedence climbing over the Fortran 77
// operator hierarchy (lowest to highest):
//
//	.OR. | .AND. | .NOT. | relational | +,- | *,/ | ** (right-assoc) | unary
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		if ok, err := p.accept(TokOR); err != nil {
			return nil, err
		} else if !ok {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: OpOr, L: l, R: r}
	}
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		if ok, err := p.accept(TokAND); err != nil {
			return nil, err
		} else if !ok {
			return l, nil
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: OpAnd, L: l, R: r}
	}
}

func (p *Parser) parseNot() (Expr, error) {
	if ok, err := p.accept(TokNOT); err != nil {
		return nil, err
	} else if ok {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Un{Op: OpNot, X: x}, nil
	}
	return p.parseRel()
}

func (p *Parser) parseRel() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	var op BinOp
	switch t.Kind {
	case TokLT:
		op = OpLT
	case TokLE:
		op = OpLE
	case TokGT:
		op = OpGT
	case TokGE:
		op = OpGE
	case TokEQ:
		op = OpEQ
	case TokNE:
		op = OpNE
	default:
		return l, nil
	}
	p.mustNext()
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &Bin{Op: op, L: l, R: r}, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		var op BinOp
		switch t.Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return l, nil
		}
		p.mustNext()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		var op BinOp
		switch t.Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		default:
			return l, nil
		}
		p.mustNext()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case TokMinus:
		p.mustNext()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: OpNeg, X: x}, nil
	case TokPlus:
		p.mustNext()
		return p.parseUnary()
	}
	return p.parsePower()
}

func (p *Parser) parsePower() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if ok, err := p.accept(TokPower); err != nil {
		return nil, err
	} else if ok {
		// ** is right-associative; the exponent may itself be unary.
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpPow, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case TokInt:
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad integer literal %q", t.Text)
		}
		return &IntLit{Val: v}, nil
	case TokReal:
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad real literal %q", t.Text)
		}
		return &RealLit{Val: v}, nil
	case TokString:
		return &StrLit{Val: t.Text}, nil
	case TokTrue:
		return &LogLit{Val: true}, nil
	case TokFalse:
		return &LogLit{Val: false}, nil
	case TokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		name := t.Text
		nt, err := p.peek()
		if err != nil {
			return nil, err
		}
		if nt.Kind != TokLParen {
			return &VarExpr{Sym: p.sym(name)}, nil
		}
		p.mustNext()
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		// Intrinsic, user function, or array reference? Arrays win if
		// the name is declared (or later declared) with dimensions —
		// resolved finally in the semantic pass; here we use what is
		// known so far and let Analyze re-classify.
		if _, isIntr := Intrinsics[name]; isIntr {
			if s := p.unit.Syms.Lookup(name); s == nil || !s.IsArray() {
				return &CallExpr{Name: name, Args: args, Intrinsic: true}, nil
			}
		}
		sym := p.sym(name)
		return &ArrayExpr{Sym: sym, Subs: args}, nil
	}
	return nil, errf(t.Line, t.Col, "unexpected %v in expression", t)
}
