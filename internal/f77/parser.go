package f77

import (
	"strconv"
	"strings"
)

// Parser builds a Program from source text.
type Parser struct {
	lx   *Lexer
	unit *Unit // unit being parsed
	prog *Program
	// pendingLabel holds a statement label lexed at line start.
	pendingLabel int
	// pendingParallel marks the next DO loop parallel (a !$PAR
	// PARALLEL directive was seen).
	pendingParallel bool
}

// Parse parses a complete source file.
func Parse(src string) (*Program, error) {
	p := &Parser{lx: NewLexer(src), prog: &Program{}}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	if err := Analyze(p.prog); err != nil {
		return nil, err
	}
	return p.prog, nil
}

func (p *Parser) next() (Token, error) { return p.lx.Next() }

func (p *Parser) peek() (Token, error) { return p.lx.Peek(0) }

func (p *Parser) peekN(i int) (Token, error) { return p.lx.Peek(i) }

// skipNewlines consumes newline tokens, capturing statement labels and
// directives that start lines.
func (p *Parser) skipNewlines() error {
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.Kind != TokNewline {
			return nil
		}
		if _, err := p.next(); err != nil {
			return err
		}
	}
}

// expectIdent consumes an identifier with the given upper-case text.
func (p *Parser) expectIdent(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.Kind != TokIdent || t.Text != text {
		return errf(t.Line, t.Col, "expected %s, found %v", text, t)
	}
	return nil
}

func (p *Parser) expect(kind TokKind) (Token, error) {
	t, err := p.next()
	if err != nil {
		return Token{}, err
	}
	if t.Kind != kind {
		return Token{}, errf(t.Line, t.Col, "expected %v, found %v", kind, t)
	}
	return t, nil
}

// accept consumes the next token if it matches kind.
func (p *Parser) accept(kind TokKind) (bool, error) {
	t, err := p.peek()
	if err != nil {
		return false, err
	}
	if t.Kind != kind {
		return false, nil
	}
	_, err = p.next()
	return true, err
}

func (p *Parser) acceptIdent(text string) (bool, error) {
	t, err := p.peek()
	if err != nil {
		return false, err
	}
	if t.Kind != TokIdent || t.Text != text {
		return false, nil
	}
	_, err = p.next()
	return true, err
}

// endOfStatement consumes the statement terminator.
func (p *Parser) endOfStatement() error {
	t, err := p.peek()
	if err != nil {
		return err
	}
	switch t.Kind {
	case TokNewline:
		_, err = p.next()
		return err
	case TokEOF:
		return nil
	default:
		return errf(t.Line, t.Col, "unexpected %v at end of statement", t)
	}
}

func (p *Parser) parseProgram() error {
	for {
		if err := p.skipNewlines(); err != nil {
			return err
		}
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.Kind == TokEOF {
			break
		}
		if err := p.parseUnit(); err != nil {
			return err
		}
	}
	if len(p.prog.Units) == 0 {
		return errf(1, 1, "empty source")
	}
	return nil
}

// parseUnit parses PROGRAM/SUBROUTINE/[type] FUNCTION ... END.
func (p *Parser) parseUnit() error {
	t, err := p.peek()
	if err != nil {
		return err
	}
	if t.Kind != TokIdent {
		return errf(t.Line, t.Col, "expected a program unit header, found %v", t)
	}
	u := &Unit{Syms: NewSymTab()}
	p.unit = u

	declType := -1
	head := t.Text
	switch head {
	case "PROGRAM":
		p.mustNext()
		u.Kind = KProgram
	case "SUBROUTINE":
		p.mustNext()
		u.Kind = KSubroutine
	case "INTEGER", "REAL", "DOUBLE", "LOGICAL":
		// Could be "REAL FUNCTION F(X)".
		t2, err := p.peekN(1)
		if err != nil {
			return err
		}
		off := 1
		if head == "DOUBLE" {
			// DOUBLE PRECISION FUNCTION
			if t2.Kind == TokIdent && t2.Text == "PRECISION" {
				t2, err = p.peekN(2)
				if err != nil {
					return err
				}
				off = 2
			}
		}
		if t2.Kind == TokIdent && t2.Text == "FUNCTION" {
			for i := 0; i <= off; i++ {
				p.mustNext()
			}
			u.Kind = KFunction
			switch head {
			case "INTEGER":
				u.Result = TInteger
			case "REAL":
				u.Result = TReal
			case "DOUBLE":
				u.Result = TDouble
			case "LOGICAL":
				u.Result = TLogical
			}
			declType = int(u.Result)
		} else {
			return errf(t.Line, t.Col, "top-level declaration outside a program unit")
		}
	case "FUNCTION":
		p.mustNext()
		u.Kind = KFunction
		u.Result = TReal
	default:
		return errf(t.Line, t.Col, "expected PROGRAM, SUBROUTINE or FUNCTION, found %s", head)
	}
	_ = declType

	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	u.Name = nameTok.Text

	// Parameter list.
	if ok, err := p.accept(TokLParen); err != nil {
		return err
	} else if ok {
		for {
			if ok, err := p.accept(TokRParen); err != nil {
				return err
			} else if ok {
				break
			}
			at, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			sym := u.Syms.Define(&Symbol{Name: at.Text, Type: implicitType(at.Text), IsArg: true})
			u.Params = append(u.Params, sym)
			if ok, err := p.accept(TokComma); err != nil {
				return err
			} else if !ok {
				if _, err := p.expect(TokRParen); err != nil {
					return err
				}
				break
			}
		}
	}
	if u.Kind == KFunction {
		// The function name is a scalar of the result type.
		u.Syms.Define(&Symbol{Name: u.Name, Type: u.Result})
	}
	if err := p.endOfStatement(); err != nil {
		return err
	}

	// Body statements until END.
	body, err := p.parseStmtsUntil(func(word string) bool { return word == "END" })
	if err != nil {
		return err
	}
	if err := p.expectIdent("END"); err != nil {
		return err
	}
	if err := p.endOfStatement(); err != nil {
		return err
	}
	u.Body = body
	p.prog.Units = append(p.prog.Units, u)
	return nil
}

func (p *Parser) mustNext() Token {
	t, err := p.next()
	if err != nil {
		panic(err)
	}
	return t
}

// implicitType applies Fortran implicit typing: I-N integer, else real.
func implicitType(name string) Type {
	c := name[0]
	if c >= 'I' && c <= 'N' {
		return TInteger
	}
	return TReal
}

// sym resolves or implicitly declares a name in the current unit.
func (p *Parser) sym(name string) *Symbol {
	if s := p.unit.Syms.Lookup(name); s != nil {
		return s
	}
	return p.unit.Syms.Define(&Symbol{Name: name, Type: implicitType(name)})
}

// parseStmtsUntil parses statements until stop(nextKeyword) is true at
// statement start. The stopping token is not consumed.
func (p *Parser) parseStmtsUntil(stop func(word string) bool) ([]Stmt, error) {
	var out []Stmt
	for {
		if err := p.skipNewlines(); err != nil {
			return nil, err
		}
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return nil, errf(t.Line, t.Col, "unexpected end of file inside a block")
		}

		// Statement label.
		label := 0
		if t.Kind == TokInt {
			v, err := strconv.Atoi(t.Text)
			if err != nil {
				return nil, errf(t.Line, t.Col, "bad label %q", t.Text)
			}
			label = v
			p.mustNext()
			t, err = p.peek()
			if err != nil {
				return nil, err
			}
		}

		if t.Kind != TokIdent {
			return nil, errf(t.Line, t.Col, "expected a statement, found %v", t)
		}
		word := t.Text

		// Parallel directive.
		if strings.HasPrefix(word, "!$") {
			p.mustNext()
			// Consume the rest of the directive line.
			for {
				nt, err := p.peek()
				if err != nil {
					return nil, err
				}
				if nt.Kind == TokNewline || nt.Kind == TokEOF {
					break
				}
				dt := p.mustNext()
				if dt.Kind == TokIdent && (dt.Text == "PARALLEL" || word == "!$PAR") {
					p.pendingParallel = true
				}
			}
			if word == "!$PAR" {
				p.pendingParallel = true
			}
			continue
		}

		if label == 0 && stop(word) {
			return out, nil
		}

		st, err := p.parseStatement(label)
		if err != nil {
			return nil, err
		}
		if st != nil {
			out = append(out, st)
		}
	}
}

// isAssignment looks ahead to decide whether the statement starting
// with an identifier is an assignment: the shape IDENT ['(' ... ')']
// '=' with *no comma at paren depth 0 after the '='. Fortran has no
// reserved words, so "IF(I) = 3" is an assignment to array IF, while
// "DO I = 1, N" is a loop header — the classic disambiguation rule is
// exactly that top-level comma.
func (p *Parser) isAssignment() (bool, error) {
	i := 1
	t, err := p.peekN(i)
	if err != nil {
		return false, err
	}
	if t.Kind == TokLParen {
		depth := 1
		for depth > 0 {
			i++
			t, err = p.peekN(i)
			if err != nil {
				return false, err
			}
			switch t.Kind {
			case TokLParen:
				depth++
			case TokRParen:
				depth--
			case TokNewline, TokEOF:
				return false, nil
			}
		}
		i++
		t, err = p.peekN(i)
		if err != nil {
			return false, err
		}
	}
	if t.Kind != TokEq {
		return false, nil
	}
	depth := 0
	for {
		i++
		t, err = p.peekN(i)
		if err != nil {
			return false, err
		}
		switch t.Kind {
		case TokLParen:
			depth++
		case TokRParen:
			depth--
		case TokComma:
			if depth == 0 {
				return false, nil // DO-header comma
			}
		case TokNewline, TokEOF:
			return true, nil
		}
	}
}

func (p *Parser) parseStatement(label int) (Stmt, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	base := StmtBase{Lbl: label, SrcLine: t.Line}
	word := t.Text

	// Assignment has priority over keyword forms (no reserved words).
	if isDeclWord(word) {
		if assign, err := p.isAssignment(); err != nil {
			return nil, err
		} else if !assign {
			return nil, p.parseDeclaration(word)
		}
	}

	switch word {
	case "DO":
		if assign, err := p.isAssignment(); err != nil {
			return nil, err
		} else if !assign {
			return p.parseDo(base)
		}
	case "IF":
		if assign, err := p.isAssignment(); err != nil {
			return nil, err
		} else if !assign {
			return p.parseIf(base)
		}
	case "GOTO":
		p.mustNext()
		lt, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		v, _ := strconv.Atoi(lt.Text)
		if err := p.endOfStatement(); err != nil {
			return nil, err
		}
		return &Goto{StmtBase: base, Target: v}, nil
	case "GO":
		// GO TO label
		t2, err := p.peekN(1)
		if err != nil {
			return nil, err
		}
		if t2.Kind == TokIdent && t2.Text == "TO" {
			p.mustNext()
			p.mustNext()
			lt, err := p.expect(TokInt)
			if err != nil {
				return nil, err
			}
			v, _ := strconv.Atoi(lt.Text)
			if err := p.endOfStatement(); err != nil {
				return nil, err
			}
			return &Goto{StmtBase: base, Target: v}, nil
		}
	case "CONTINUE":
		p.mustNext()
		if err := p.endOfStatement(); err != nil {
			return nil, err
		}
		return &ContinueStmt{StmtBase: base}, nil
	case "CALL":
		p.mustNext()
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		var args []Expr
		if ok, err := p.accept(TokLParen); err != nil {
			return nil, err
		} else if ok {
			args, err = p.parseArgList()
			if err != nil {
				return nil, err
			}
		}
		if err := p.endOfStatement(); err != nil {
			return nil, err
		}
		return &CallStmt{StmtBase: base, Name: nameTok.Text, Args: args}, nil
	case "RETURN":
		p.mustNext()
		if err := p.endOfStatement(); err != nil {
			return nil, err
		}
		return &ReturnStmt{StmtBase: base}, nil
	case "STOP":
		p.mustNext()
		// Optional stop code.
		if nt, err := p.peek(); err == nil && (nt.Kind == TokInt || nt.Kind == TokString) {
			p.mustNext()
		}
		if err := p.endOfStatement(); err != nil {
			return nil, err
		}
		return &StopStmt{StmtBase: base}, nil
	case "PRINT":
		p.mustNext()
		if _, err := p.expect(TokStar); err != nil {
			return nil, err
		}
		var args []Expr
		for {
			if ok, err := p.accept(TokComma); err != nil {
				return nil, err
			} else if !ok {
				break
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		}
		if err := p.endOfStatement(); err != nil {
			return nil, err
		}
		return &PrintStmt{StmtBase: base, Args: args}, nil
	case "WRITE":
		// WRITE(*,*) args — treated as PRINT.
		p.mustNext()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		depth := 1
		for depth > 0 {
			t, err := p.next()
			if err != nil {
				return nil, err
			}
			switch t.Kind {
			case TokLParen:
				depth++
			case TokRParen:
				depth--
			case TokNewline, TokEOF:
				return nil, errf(t.Line, t.Col, "unterminated WRITE control list")
			}
		}
		var args []Expr
		for {
			nt, err := p.peek()
			if err != nil {
				return nil, err
			}
			if nt.Kind == TokNewline || nt.Kind == TokEOF {
				break
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if ok, err := p.accept(TokComma); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.endOfStatement(); err != nil {
			return nil, err
		}
		return &PrintStmt{StmtBase: base, Args: args}, nil
	}

	// Default: assignment.
	return p.parseAssign(base)
}

func isDeclWord(w string) bool {
	switch w {
	case "INTEGER", "REAL", "DOUBLE", "LOGICAL", "DIMENSION", "PARAMETER", "DATA", "IMPLICIT", "EXTERNAL", "INTRINSIC", "COMMON":
		return true
	}
	return false
}

func (p *Parser) parseAssign(base StmtBase) (Stmt, error) {
	ref, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEq); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.endOfStatement(); err != nil {
		return nil, err
	}
	return &Assign{StmtBase: base, LHS: ref, RHS: rhs}, nil
}

func (p *Parser) parseRef() (*Ref, error) {
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	sym := p.sym(nameTok.Text)
	ref := &Ref{Sym: sym}
	if ok, err := p.accept(TokLParen); err != nil {
		return nil, err
	} else if ok {
		subs, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		ref.Subs = subs
	}
	return ref, nil
}

// parseArgList parses a comma-separated expression list up to ')',
// consuming the closing paren.
func (p *Parser) parseArgList() ([]Expr, error) {
	var args []Expr
	if ok, err := p.accept(TokRParen); err != nil {
		return nil, err
	} else if ok {
		return args, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if ok, err := p.accept(TokComma); err != nil {
			return nil, err
		} else if !ok {
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return args, nil
		}
	}
}

// parseDo parses both DO...ENDDO and DO <label> ... <label> CONTINUE.
func (p *Parser) parseDo(base StmtBase) (Stmt, error) {
	p.mustNext() // DO
	parallel := p.pendingParallel
	p.pendingParallel = false

	endLabel := 0
	if t, err := p.peek(); err != nil {
		return nil, err
	} else if t.Kind == TokInt {
		v, _ := strconv.Atoi(t.Text)
		endLabel = v
		p.mustNext()
	}

	varTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	loopVar := p.sym(varTok.Text)
	if _, err := p.expect(TokEq); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var step Expr
	if ok, err := p.accept(TokComma); err != nil {
		return nil, err
	} else if ok {
		step, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.endOfStatement(); err != nil {
		return nil, err
	}

	var body []Stmt
	if endLabel != 0 {
		body, err = p.parseLabeledDoBody(endLabel)
	} else {
		body, err = p.parseStmtsUntil(func(w string) bool { return w == "ENDDO" || w == "END" })
		if err == nil {
			var t Token
			t, err = p.peek()
			if err == nil {
				if t.Text == "ENDDO" {
					p.mustNext()
					err = p.endOfStatement()
				} else {
					// "END DO"
					p.mustNext()
					if err = p.expectIdent("DO"); err == nil {
						err = p.endOfStatement()
					}
				}
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return &DoLoop{StmtBase: base, Var: loopVar, From: from, To: to, Step: step, Body: body, Parallel: parallel}, nil
}

// parseLabeledDoBody parses until the statement carrying endLabel
// (inclusive; the labeled statement — typically CONTINUE — stays in the
// body as the loop's last statement).
func (p *Parser) parseLabeledDoBody(endLabel int) ([]Stmt, error) {
	var out []Stmt
	for {
		if err := p.skipNewlines(); err != nil {
			return nil, err
		}
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return nil, errf(t.Line, t.Col, "unterminated DO %d", endLabel)
		}
		label := 0
		if t.Kind == TokInt {
			v, _ := strconv.Atoi(t.Text)
			label = v
		}
		st, err := p.parseStmtsOne()
		if err != nil {
			return nil, err
		}
		if st != nil {
			out = append(out, st)
		}
		if label == endLabel {
			return out, nil
		}
	}
}

// parseStmtsOne parses exactly one statement (with optional label).
func (p *Parser) parseStmtsOne() (Stmt, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	label := 0
	if t.Kind == TokInt {
		v, _ := strconv.Atoi(t.Text)
		label = v
		p.mustNext()
	}
	return p.parseStatement(label)
}

// parseIf parses logical IF and block IF/ELSEIF/ELSE/ENDIF.
func (p *Parser) parseIf(base StmtBase) (Stmt, error) {
	p.mustNext() // IF
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}

	if ok, err := p.acceptIdent("THEN"); err != nil {
		return nil, err
	} else if !ok {
		// Logical IF: one statement on the same line.
		st, err := p.parseStatement(0)
		if err != nil {
			return nil, err
		}
		return &IfBlock{StmtBase: base, Conds: []Expr{cond}, Blocks: [][]Stmt{{st}}}, nil
	}
	if err := p.endOfStatement(); err != nil {
		return nil, err
	}

	blk := &IfBlock{StmtBase: base, Conds: []Expr{cond}}
	stop := func(w string) bool {
		return w == "ELSEIF" || w == "ELSE" || w == "ENDIF" || w == "END"
	}
	for {
		body, err := p.parseStmtsUntil(stop)
		if err != nil {
			return nil, err
		}
		blk.Blocks = append(blk.Blocks, body)
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		switch t.Text {
		case "ELSEIF":
			p.mustNext()
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if _, err := p.acceptIdent("THEN"); err != nil {
				return nil, err
			}
			if err := p.endOfStatement(); err != nil {
				return nil, err
			}
			blk.Conds = append(blk.Conds, c)
		case "ELSE":
			p.mustNext()
			// "ELSE IF (...) THEN"?
			if ok, err := p.acceptIdent("IF"); err != nil {
				return nil, err
			} else if ok {
				if _, err := p.expect(TokLParen); err != nil {
					return nil, err
				}
				c, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
				if _, err := p.acceptIdent("THEN"); err != nil {
					return nil, err
				}
				if err := p.endOfStatement(); err != nil {
					return nil, err
				}
				blk.Conds = append(blk.Conds, c)
				continue
			}
			if err := p.endOfStatement(); err != nil {
				return nil, err
			}
			els, err := p.parseStmtsUntil(func(w string) bool { return w == "ENDIF" || w == "END" })
			if err != nil {
				return nil, err
			}
			blk.Else = els
			t, err = p.peek()
			if err != nil {
				return nil, err
			}
			if t.Text == "ENDIF" {
				p.mustNext()
			} else {
				p.mustNext()
				if err := p.expectIdent("IF"); err != nil {
					return nil, err
				}
			}
			return blk, p.endOfStatement()
		case "ENDIF":
			p.mustNext()
			return blk, p.endOfStatement()
		case "END":
			// "END IF"
			p.mustNext()
			if err := p.expectIdent("IF"); err != nil {
				return nil, err
			}
			return blk, p.endOfStatement()
		default:
			return nil, errf(t.Line, t.Col, "expected ELSEIF/ELSE/ENDIF, found %v", t)
		}
	}
}
