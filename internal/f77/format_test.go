package f77

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// structEq compares two programs structurally (statement shapes,
// operators, symbol names, constants) ignoring positions.
func structEq(a, b *Program) error {
	if len(a.Units) != len(b.Units) {
		return fmt.Errorf("unit count %d vs %d", len(a.Units), len(b.Units))
	}
	for i := range a.Units {
		if err := unitEq(a.Units[i], b.Units[i]); err != nil {
			return fmt.Errorf("unit %s: %w", a.Units[i].Name, err)
		}
	}
	return nil
}

func unitEq(a, b *Unit) error {
	if a.Name != b.Name || a.Kind != b.Kind || len(a.Params) != len(b.Params) {
		return fmt.Errorf("header mismatch")
	}
	return stmtsEq(a.Body, b.Body)
}

func stmtsEq(a, b []Stmt) error {
	if len(a) != len(b) {
		return fmt.Errorf("statement count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if err := stmtEq(a[i], b[i]); err != nil {
			return fmt.Errorf("stmt %d (%T): %w", i, a[i], err)
		}
	}
	return nil
}

func stmtEq(a, b Stmt) error {
	if reflect.TypeOf(a) != reflect.TypeOf(b) {
		return fmt.Errorf("kind %T vs %T", a, b)
	}
	if a.Label() != b.Label() {
		return fmt.Errorf("label %d vs %d", a.Label(), b.Label())
	}
	switch x := a.(type) {
	case *Assign:
		y := b.(*Assign)
		if x.LHS.Sym.Name != y.LHS.Sym.Name || len(x.LHS.Subs) != len(y.LHS.Subs) {
			return fmt.Errorf("lhs mismatch")
		}
		return exprEq(x.RHS, y.RHS)
	case *DoLoop:
		y := b.(*DoLoop)
		if x.Var.Name != y.Var.Name {
			return fmt.Errorf("loop var")
		}
		if err := exprEq(x.From, y.From); err != nil {
			return err
		}
		if err := exprEq(x.To, y.To); err != nil {
			return err
		}
		return stmtsEq(x.Body, y.Body)
	case *IfBlock:
		y := b.(*IfBlock)
		if len(x.Conds) != len(y.Conds) {
			return fmt.Errorf("cond count")
		}
		for i := range x.Conds {
			if err := exprEq(x.Conds[i], y.Conds[i]); err != nil {
				return err
			}
			if err := stmtsEq(x.Blocks[i], y.Blocks[i]); err != nil {
				return err
			}
		}
		return stmtsEq(x.Else, y.Else)
	case *Goto:
		if x.Target != b.(*Goto).Target {
			return fmt.Errorf("goto target")
		}
	case *CallStmt:
		y := b.(*CallStmt)
		if x.Name != y.Name || len(x.Args) != len(y.Args) {
			return fmt.Errorf("call mismatch")
		}
	case *PrintStmt:
		if len(x.Args) != len(b.(*PrintStmt).Args) {
			return fmt.Errorf("print arity")
		}
	}
	return nil
}

func exprEq(a, b Expr) error {
	if reflect.TypeOf(a) != reflect.TypeOf(b) {
		return fmt.Errorf("expr kind %T vs %T", a, b)
	}
	switch x := a.(type) {
	case *IntLit:
		if x.Val != b.(*IntLit).Val {
			return fmt.Errorf("int %d vs %d", x.Val, b.(*IntLit).Val)
		}
	case *RealLit:
		if x.Val != b.(*RealLit).Val {
			return fmt.Errorf("real %v vs %v", x.Val, b.(*RealLit).Val)
		}
	case *VarExpr:
		if x.Sym.Name != b.(*VarExpr).Sym.Name {
			return fmt.Errorf("var %s vs %s", x.Sym.Name, b.(*VarExpr).Sym.Name)
		}
	case *ArrayExpr:
		y := b.(*ArrayExpr)
		if x.Sym.Name != y.Sym.Name || len(x.Subs) != len(y.Subs) {
			return fmt.Errorf("array ref mismatch")
		}
		for i := range x.Subs {
			if err := exprEq(x.Subs[i], y.Subs[i]); err != nil {
				return err
			}
		}
	case *Bin:
		y := b.(*Bin)
		if x.Op != y.Op {
			return fmt.Errorf("op %v vs %v", x.Op, y.Op)
		}
		if err := exprEq(x.L, y.L); err != nil {
			return err
		}
		return exprEq(x.R, y.R)
	case *Un:
		y := b.(*Un)
		if x.Op != y.Op {
			return fmt.Errorf("unop")
		}
		return exprEq(x.X, y.X)
	case *CallExpr:
		y := b.(*CallExpr)
		if x.Name != y.Name || len(x.Args) != len(y.Args) {
			return fmt.Errorf("call expr mismatch")
		}
		for i := range x.Args {
			if err := exprEq(x.Args[i], y.Args[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Round trip: parse → format → parse must be structurally identical.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1 := mustParse(t, src)
	formatted := Format(p1)
	p2, err := Parse(formatted)
	if err != nil {
		t.Fatalf("reparse failed: %v\nformatted:\n%s", err, formatted)
	}
	if err := structEq(p1, p2); err != nil {
		t.Fatalf("round trip diverged: %v\nformatted:\n%s", err, formatted)
	}
}

func TestFormatRoundTripMM(t *testing.T) { roundTrip(t, mmSource) }

func TestFormatRoundTripControlFlow(t *testing.T) {
	roundTrip(t, `
      PROGRAM P
      REAL A(10), X
      INTEGER I
      X = 0.0
      DO 10 I = 1, 10, 2
        A(I) = -X ** 2 + ABS(X - 1.0)
        IF (A(I) .GT. 0.5 .AND. X .LT. 3.0) THEN
          X = X + 1.0
        ELSEIF (.NOT. (X .GE. 0.0)) THEN
          X = 0.0
        ELSE
          X = X * 0.5
        ENDIF
10    CONTINUE
      IF (X .GT. 0.0) GOTO 20
      X = -1.0
20    CONTINUE
      PRINT *, 'DONE', X
      END
`)
}

func TestFormatRoundTripUnitsAndCommon(t *testing.T) {
	roundTrip(t, `
      PROGRAM P
      REAL V(5), T
      COMMON /BLK/ V, T
      DATA V /5*1.5/
      CALL S(V, 5)
      T = F(2.0)
      END
      SUBROUTINE S(A, N)
      INTEGER N, I
      REAL A(N)
      DO I = 1, N
        A(I) = REAL(I)
      ENDDO
      RETURN
      END
      REAL FUNCTION F(X)
      REAL X
      F = X * 2.0
      END
`)
}

func TestFormatPrecedence(t *testing.T) {
	// (a+b)*c must keep its parens; a+b*c must not gain any.
	src := `
      PROGRAM P
      REAL A, B, C, X, Y
      A = 1.0
      B = 2.0
      C = 3.0
      X = (A + B) * C
      Y = A + B * C
      END
`
	p := mustParse(t, src)
	out := Format(p)
	if !strings.Contains(out, "(A + B) * C") {
		t.Fatalf("parens lost:\n%s", out)
	}
	if !strings.Contains(out, "Y = A + B * C") {
		t.Fatalf("spurious parens:\n%s", out)
	}
	roundTrip(t, src)
}

func TestFormatPowerRightAssoc(t *testing.T) {
	src := `
      PROGRAM P
      REAL X
      X = 2.0 ** 3.0 ** 2.0
      END
`
	roundTrip(t, src)
}

func TestFormatParallelDirective(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(10)
      INTEGER I
!$PAR PARALLEL
      DO I = 1, 10
        A(I) = 1.0
      ENDDO
      END
`
	p := mustParse(t, src)
	out := Format(p)
	if !strings.Contains(out, "!$PAR PARALLEL") {
		t.Fatalf("directive lost:\n%s", out)
	}
	p2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Main().Body[0].(*DoLoop).Parallel {
		t.Fatal("reparsed loop lost parallel mark")
	}
}
