package f77

import "testing"

func TestParseCommonNamed(t *testing.T) {
	src := `
      PROGRAM P
      REAL A, B(10)
      INTEGER K
      COMMON /BLK/ A, B, K
      A = 1.0
      END
`
	p := mustParse(t, src)
	u := p.Main()
	blk := u.Commons["BLK"]
	if len(blk) != 3 {
		t.Fatalf("members = %d", len(blk))
	}
	if blk[0].Name != "A" || blk[1].Name != "B" || blk[2].Name != "K" {
		t.Fatalf("member order: %v %v %v", blk[0].Name, blk[1].Name, blk[2].Name)
	}
	b := u.Syms.Lookup("B")
	if b.Common != "BLK" || b.CommonIndex != 1 {
		t.Fatalf("B common fields: %q %d", b.Common, b.CommonIndex)
	}
}

func TestParseCommonWithDims(t *testing.T) {
	src := `
      PROGRAM P
      COMMON /C/ X(4,4), Y
      X(1,1) = 0.0
      END
`
	p := mustParse(t, src)
	x := p.Main().Syms.Lookup("X")
	if len(x.Dims) != 2 || x.Common != "C" {
		t.Fatalf("X: dims=%d common=%q", len(x.Dims), x.Common)
	}
}

func TestParseBlankCommon(t *testing.T) {
	src := `
      PROGRAM P
      COMMON X, Y
      X = 1.0
      END
`
	p := mustParse(t, src)
	x := p.Main().Syms.Lookup("X")
	if x.Common != "*BLANK*" || x.CommonIndex != 0 {
		t.Fatalf("blank common: %q %d", x.Common, x.CommonIndex)
	}
}

func TestParseCommonMultipleBlocks(t *testing.T) {
	src := `
      PROGRAM P
      COMMON /A/ X, Y /B/ Z
      X = 1.0
      END
`
	p := mustParse(t, src)
	u := p.Main()
	if len(u.Commons["A"]) != 2 || len(u.Commons["B"]) != 1 {
		t.Fatalf("blocks: A=%d B=%d", len(u.Commons["A"]), len(u.Commons["B"]))
	}
}

func TestCommonDuplicateRejected(t *testing.T) {
	parseErr(t, `
      PROGRAM P
      COMMON /A/ X
      COMMON /B/ X
      X = 1.0
      END
`)
}
