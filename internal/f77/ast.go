package f77

import (
	"fmt"
	"strings"
)

// Type is a Fortran data type.
type Type int

// Fortran types of the subset. DOUBLE PRECISION and REAL are both
// executed as float64; they are kept distinct for declarations.
const (
	TInteger Type = iota
	TReal
	TDouble
	TLogical
)

func (t Type) String() string {
	switch t {
	case TInteger:
		return "INTEGER"
	case TReal:
		return "REAL"
	case TDouble:
		return "DOUBLE PRECISION"
	case TLogical:
		return "LOGICAL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// IsFloat reports whether values of the type are floating point.
func (t Type) IsFloat() bool { return t == TReal || t == TDouble }

// Dim is one array dimension with inclusive bounds. A nil High means an
// assumed-size dimension ('*', legal only as the last dimension of a
// dummy argument, as in the paper's REAL A(14,*)).
type Dim struct {
	Low  Expr // nil means the default lower bound 1
	High Expr
}

// Symbol is a declared name within a unit.
type Symbol struct {
	Name string
	Type Type
	Dims []Dim // empty for scalars

	IsArg   bool    // dummy argument
	IsConst bool    // PARAMETER constant
	Const   float64 // value when IsConst

	// Common names the COMMON block the symbol lives in ("" if none);
	// CommonIndex is its position within the block. Members of the
	// same-named block in different units alias storage positionally.
	Common      string
	CommonIndex int

	// Annotations written by internal/analysis:

	// Private marks scalars proven privatizable in the enclosing
	// parallel loop.
	Private bool
}

// IsArray reports whether the symbol is an array.
func (s *Symbol) IsArray() bool { return len(s.Dims) > 0 }

// SymTab is a per-unit symbol table.
type SymTab struct {
	byName map[string]*Symbol
	Order  []*Symbol
}

// NewSymTab returns an empty table.
func NewSymTab() *SymTab { return &SymTab{byName: make(map[string]*Symbol)} }

// Lookup finds a symbol by (upper-case) name.
func (st *SymTab) Lookup(name string) *Symbol { return st.byName[strings.ToUpper(name)] }

// Define inserts a symbol; redefining a name returns the existing one.
func (st *SymTab) Define(s *Symbol) *Symbol {
	key := strings.ToUpper(s.Name)
	if old, ok := st.byName[key]; ok {
		return old
	}
	st.byName[key] = s
	st.Order = append(st.Order, s)
	return s
}

// UnitKind classifies a program unit.
type UnitKind int

// Program unit kinds.
const (
	KProgram UnitKind = iota
	KSubroutine
	KFunction
)

// Unit is one program unit: a main program, subroutine, or function.
type Unit struct {
	Kind   UnitKind
	Name   string
	Params []*Symbol
	Result Type // function result type
	Syms   *SymTab
	Body   []Stmt
	// DataInits are DATA-statement initializations applied at startup:
	// symbol -> flattened initial values (repeated to fill arrays).
	DataInits []DataInit
	// Commons lists each COMMON block's members in declaration order.
	Commons map[string][]*Symbol
}

// DataInit records one DATA initialization.
type DataInit struct {
	Sym  *Symbol
	Vals []float64
}

// Program is a whole translation unit: a main program plus its
// subroutines and functions.
type Program struct {
	Units []*Unit
}

// Main returns the main program unit, or nil.
func (p *Program) Main() *Unit {
	for _, u := range p.Units {
		if u.Kind == KProgram {
			return u
		}
	}
	return nil
}

// Lookup finds a unit by (upper-case) name.
func (p *Program) Lookup(name string) *Unit {
	name = strings.ToUpper(name)
	for _, u := range p.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// ---- Statements ----

// Stmt is any statement.
type Stmt interface {
	stmt()
	// Label returns the numeric statement label (0 if none).
	Label() int
	// Line returns the source line.
	Line() int
}

// StmtBase carries the label and source position.
type StmtBase struct {
	Lbl     int
	SrcLine int
}

func (s *StmtBase) stmt()      {}
func (s *StmtBase) Label() int { return s.Lbl }
func (s *StmtBase) Line() int  { return s.SrcLine }

// Ref is an lvalue: a scalar variable or an array element.
type Ref struct {
	Sym  *Symbol
	Subs []Expr // empty for scalars
}

// Assign is LHS = RHS.
type Assign struct {
	StmtBase
	LHS *Ref
	RHS Expr
}

// Schedule is the iteration-to-processor mapping of a parallel loop.
type Schedule int

// Work-partitioning schedules (§5.3): "cyclic assignment for triangular
// loops, and block assignment for square loops."
const (
	SchedBlock Schedule = iota
	SchedCyclic
)

func (s Schedule) String() string {
	if s == SchedCyclic {
		return "cyclic"
	}
	return "block"
}

// Reduction records one recognized reduction in a parallel loop.
type Reduction struct {
	Sym *Symbol // the reduction scalar (or array for array reductions)
	Op  string  // "+", "*", "MAX", "MIN"
}

// DoLoop is a DO loop (either DO...ENDDO or the labeled DO...CONTINUE
// form, which the parser normalizes away).
type DoLoop struct {
	StmtBase
	Var  *Symbol
	From Expr
	To   Expr
	Step Expr // nil means 1
	Body []Stmt

	// Annotations from the front end's parallelism detection (§3) —
	// "loops that are identified as parallel by these techniques are
	// marked with parallel directive".
	Parallel   bool
	Schedule   Schedule
	Reductions []*Reduction
	Private    []*Symbol
	// Triangular notes that the trip count of an inner loop depends on
	// this loop's index (drives the cyclic schedule).
	Triangular bool
}

// IfBlock is a block IF with optional ELSEIF arms and ELSE. A logical
// IF statement parses as a single-arm IfBlock.
type IfBlock struct {
	StmtBase
	Conds  []Expr   // len >= 1: IF, ELSEIF...
	Blocks [][]Stmt // bodies matching Conds
	Else   []Stmt
}

// Goto jumps to a labeled statement in the same statement sequence.
type Goto struct {
	StmtBase
	Target int
}

// ContinueStmt is a CONTINUE (only meaningful as a label carrier).
type ContinueStmt struct {
	StmtBase
}

// CallStmt invokes a subroutine.
type CallStmt struct {
	StmtBase
	Name string
	Args []Expr
}

// ReturnStmt returns from a subroutine/function.
type ReturnStmt struct {
	StmtBase
}

// StopStmt halts the program.
type StopStmt struct {
	StmtBase
}

// PrintStmt is PRINT *, args.
type PrintStmt struct {
	StmtBase
	Args []Expr
}

// ---- Expressions ----

// Expr is any expression.
type Expr interface {
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	Val int64
}

// RealLit is a floating literal.
type RealLit struct {
	Val    float64
	Double bool
}

// LogLit is .TRUE. / .FALSE.
type LogLit struct {
	Val bool
}

// StrLit is a character literal (PRINT only).
type StrLit struct {
	Val string
}

// VarExpr reads a scalar variable (or names a whole array when passed
// as an argument).
type VarExpr struct {
	Sym *Symbol
}

// ArrayExpr reads an array element.
type ArrayExpr struct {
	Sym  *Symbol
	Subs []Expr
}

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpPow:
		return "**"
	case OpLT:
		return ".LT."
	case OpLE:
		return ".LE."
	case OpGT:
		return ".GT."
	case OpGE:
		return ".GE."
	case OpEQ:
		return ".EQ."
	case OpNE:
		return ".NE."
	case OpAnd:
		return ".AND."
	case OpOr:
		return ".OR."
	default:
		return fmt.Sprintf("BinOp(%d)", int(op))
	}
}

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota
	OpNot
	OpPlus
)

// Un is a unary expression.
type Un struct {
	Op UnOp
	X  Expr
}

// CallExpr invokes an intrinsic or user function.
type CallExpr struct {
	Name      string
	Args      []Expr
	Intrinsic bool
	// Ret is the resolved result type of a user function, filled by the
	// semantic pass.
	Ret Type
}

func (*IntLit) expr()    {}
func (*RealLit) expr()   {}
func (*LogLit) expr()    {}
func (*StrLit) expr()    {}
func (*VarExpr) expr()   {}
func (*ArrayExpr) expr() {}
func (*Bin) expr()       {}
func (*Un) expr()        {}
func (*CallExpr) expr()  {}

// Intrinsics maps intrinsic names to their argument counts (-1 for
// variadic MIN/MAX) — the F77 numeric intrinsics the subset supports.
var Intrinsics = map[string]int{
	"ABS": 1, "IABS": 1, "SQRT": 1, "EXP": 1, "LOG": 1, "ALOG": 1,
	"SIN": 1, "COS": 1, "TAN": 1, "ATAN": 1, "ATAN2": 2,
	"MOD": 2, "MIN": -1, "MAX": -1, "MIN0": -1, "MAX0": -1,
	"AMIN1": -1, "AMAX1": -1, "INT": 1, "NINT": 1, "REAL": 1,
	"FLOAT": 1, "DBLE": 1, "SIGN": 2, "DMOD": 2,
}

// TypeOf computes the static type of an expression (after parsing,
// symbols are resolved so this is total).
func TypeOf(e Expr) Type {
	switch x := e.(type) {
	case *IntLit:
		return TInteger
	case *RealLit:
		if x.Double {
			return TDouble
		}
		return TReal
	case *LogLit:
		return TLogical
	case *StrLit:
		return TLogical // strings only occur in PRINT; type unused
	case *VarExpr:
		return x.Sym.Type
	case *ArrayExpr:
		return x.Sym.Type
	case *Un:
		if x.Op == OpNot {
			return TLogical
		}
		return TypeOf(x.X)
	case *Bin:
		switch x.Op {
		case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE, OpAnd, OpOr:
			return TLogical
		}
		lt, rt := TypeOf(x.L), TypeOf(x.R)
		if lt == TDouble || rt == TDouble {
			return TDouble
		}
		if lt == TReal || rt == TReal {
			return TReal
		}
		return TInteger
	case *CallExpr:
		return intrinsicType(x)
	default:
		panic(fmt.Sprintf("f77: TypeOf(%T)", e))
	}
}

func intrinsicType(c *CallExpr) Type {
	switch c.Name {
	case "INT", "NINT", "IABS", "MAX0", "MIN0":
		return TInteger
	case "REAL", "FLOAT", "AMIN1", "AMAX1":
		return TReal
	case "DBLE", "DMOD":
		return TDouble
	case "MOD", "ABS", "MIN", "MAX", "SIGN":
		// Generic: type of first argument.
		if len(c.Args) > 0 {
			return TypeOf(c.Args[0])
		}
		return TInteger
	case "SQRT", "EXP", "LOG", "ALOG", "SIN", "COS", "TAN", "ATAN", "ATAN2":
		return TReal
	}
	// User function: the semantic pass resolved the result type.
	return c.Ret
}
