package f77

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	return p
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected a parse error for:\n%s", src)
	}
	return err
}

const mmSource = `
      PROGRAM MM
      INTEGER N
      PARAMETER (N = 8)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I) + REAL(J)
          B(I,J) = REAL(I) - REAL(J)
          C(I,J) = 0.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
`

func TestParseMM(t *testing.T) {
	p := mustParse(t, mmSource)
	main := p.Main()
	if main == nil {
		t.Fatal("no main program")
	}
	if main.Name != "MM" {
		t.Fatalf("name = %q", main.Name)
	}
	n := main.Syms.Lookup("N")
	if n == nil || !n.IsConst || n.Const != 8 {
		t.Fatalf("PARAMETER N wrong: %+v", n)
	}
	a := main.Syms.Lookup("A")
	if a == nil || len(a.Dims) != 2 || a.Type != TReal {
		t.Fatalf("A wrong: %+v", a)
	}
	if len(main.Body) != 2 {
		t.Fatalf("main body has %d statements, want 2 loop nests", len(main.Body))
	}
	nest, ok := main.Body[1].(*DoLoop)
	if !ok {
		t.Fatalf("second statement is %T", main.Body[1])
	}
	inner, ok := nest.Body[0].(*DoLoop)
	if !ok || inner.Var.Name != "J" {
		t.Fatal("inner J loop missing")
	}
	kLoop, ok := inner.Body[0].(*DoLoop)
	if !ok || kLoop.Var.Name != "K" {
		t.Fatal("K loop missing")
	}
	asg, ok := kLoop.Body[0].(*Assign)
	if !ok || asg.LHS.Sym.Name != "C" || len(asg.LHS.Subs) != 2 {
		t.Fatalf("inner assign wrong: %+v", kLoop.Body[0])
	}
}

func TestLabeledDoContinue(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(11)
      INTEGER I
      DO 10 I = 1, 11, 2
        A(I) = 1.0
10    CONTINUE
      END
`
	p := mustParse(t, src)
	loop, ok := p.Main().Body[0].(*DoLoop)
	if !ok {
		t.Fatalf("not a loop: %T", p.Main().Body[0])
	}
	if loop.Step == nil {
		t.Fatal("step missing")
	}
	if s, ok := loop.Step.(*IntLit); !ok || s.Val != 2 {
		t.Fatalf("step = %v", loop.Step)
	}
	last := loop.Body[len(loop.Body)-1]
	if _, ok := last.(*ContinueStmt); !ok || last.Label() != 10 {
		t.Fatalf("labeled CONTINUE missing: %T label %d", last, last.Label())
	}
}

// The paper's Figure 3 fragment: variant-stride access A(i*2-1).
func TestParseFigure3Fragment(t *testing.T) {
	src := `
      PROGRAM FIG3
      REAL A(16), S
      INTEGER I
      S = 0.0
      DO I = 1, 4
        S = S + A(I*2-1)
      ENDDO
      END
`
	p := mustParse(t, src)
	loop := p.Main().Body[1].(*DoLoop)
	asg := loop.Body[0].(*Assign)
	bin, ok := asg.RHS.(*Bin)
	if !ok || bin.Op != OpAdd {
		t.Fatalf("RHS = %#v", asg.RHS)
	}
	ax, ok := bin.R.(*ArrayExpr)
	if !ok || ax.Sym.Name != "A" {
		t.Fatalf("array read = %#v", bin.R)
	}
}

// The paper's Figure 4: REAL A(14,*) with a triply nested loop.
func TestParseAssumedSize(t *testing.T) {
	src := `
      SUBROUTINE S(A)
      REAL A(14,*)
      INTEGER I, J, K
      DO I = 1, 2
        DO J = 1, 2
          DO K = 1, 10, 3
            A(K, J+26*(I-1)) = 0.0
          ENDDO
        ENDDO
      ENDDO
      END
`
	p := mustParse(t, src)
	u := p.Units[0]
	a := u.Syms.Lookup("A")
	if len(a.Dims) != 2 {
		t.Fatalf("A dims = %d", len(a.Dims))
	}
	if a.Dims[1].High != nil {
		t.Fatal("second dimension should be assumed-size")
	}
	if !a.IsArg {
		t.Fatal("A should be a dummy argument")
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER I
      REAL X
      I = 3
      IF (I .LT. 2) THEN
        X = 1.0
      ELSEIF (I .LT. 5) THEN
        X = 2.0
      ELSE
        X = 3.0
      ENDIF
      IF (I .EQ. 3) X = X + 1.0
      END
`
	p := mustParse(t, src)
	blk, ok := p.Main().Body[1].(*IfBlock)
	if !ok {
		t.Fatalf("second stmt %T", p.Main().Body[1])
	}
	if len(blk.Conds) != 2 || len(blk.Blocks) != 2 || len(blk.Else) != 1 {
		t.Fatalf("if shape: %d conds %d blocks %d else", len(blk.Conds), len(blk.Blocks), len(blk.Else))
	}
	logical, ok := p.Main().Body[2].(*IfBlock)
	if !ok || len(logical.Blocks[0]) != 1 {
		t.Fatal("logical IF wrong")
	}
}

func TestElseIfTwoWords(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER I
      I = 1
      IF (I .EQ. 0) THEN
        I = 2
      ELSE IF (I .EQ. 1) THEN
        I = 3
      END IF
      END
`
	p := mustParse(t, src)
	blk := p.Main().Body[1].(*IfBlock)
	if len(blk.Conds) != 2 {
		t.Fatalf("ELSE IF not merged: %d conds", len(blk.Conds))
	}
}

func TestGotoAndLabels(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER I
      I = 0
      I = I + 1
      IF (I .LT. 3) GOTO 20
      I = 99
20    CONTINUE
      END
`
	p := mustParse(t, src)
	found := false
	WalkStmts(p.Main().Body, func(s Stmt) bool {
		if g, ok := s.(*Goto); ok && g.Target == 20 {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("GOTO not parsed")
	}
}

func TestGotoUnknownLabelRejected(t *testing.T) {
	parseErr(t, `
      PROGRAM P
      GOTO 99
      END
`)
}

func TestFunctionCallVsArray(t *testing.T) {
	src := `
      PROGRAM P
      REAL X, F
      X = F(2.0)
      END

      REAL FUNCTION F(Y)
      REAL Y
      F = Y * 2.0
      END
`
	p := mustParse(t, src)
	asg := p.Main().Body[0].(*Assign)
	call, ok := asg.RHS.(*CallExpr)
	if !ok {
		t.Fatalf("F(2.0) parsed as %T", asg.RHS)
	}
	if call.Intrinsic {
		t.Fatal("user function flagged intrinsic")
	}
	if TypeOf(call) != TReal {
		t.Fatalf("call type = %v", TypeOf(call))
	}
}

func TestIntrinsics(t *testing.T) {
	src := `
      PROGRAM P
      REAL X
      INTEGER I
      X = SQRT(ABS(-2.0)) + MAX(1.0, 2.0, 3.0)
      I = MOD(7, 3) + INT(2.9)
      END
`
	p := mustParse(t, src)
	n := 0
	WalkStmts(p.Main().Body, func(s Stmt) bool {
		StmtExprs(s, func(e Expr) {
			WalkExpr(e, func(sub Expr) {
				if c, ok := sub.(*CallExpr); ok && c.Intrinsic {
					n++
				}
			})
		})
		return true
	})
	if n != 5 {
		t.Fatalf("found %d intrinsic calls, want 5", n)
	}
}

func TestIntrinsicArityChecked(t *testing.T) {
	parseErr(t, `
      PROGRAM P
      REAL X
      X = SQRT(1.0, 2.0)
      END
`)
}

func TestSubroutineCall(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(4)
      CALL INIT(A, 4)
      END

      SUBROUTINE INIT(V, N)
      INTEGER N, I
      REAL V(N)
      DO I = 1, N
        V(I) = 0.0
      ENDDO
      END
`
	p := mustParse(t, src)
	cs := p.Main().Body[0].(*CallStmt)
	if cs.Name != "INIT" || len(cs.Args) != 2 {
		t.Fatalf("call: %+v", cs)
	}
	init := p.Lookup("INIT")
	if init == nil || len(init.Params) != 2 {
		t.Fatal("INIT unit wrong")
	}
	v := init.Syms.Lookup("V")
	if !v.IsArg || !v.IsArray() {
		t.Fatal("V should be an array argument")
	}
}

func TestCallArityChecked(t *testing.T) {
	parseErr(t, `
      PROGRAM P
      CALL S(1)
      END
      SUBROUTINE S(A, B)
      INTEGER A, B
      END
`)
}

func TestDataStatement(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(5), X
      DATA A /5*1.5/, X /2.25/
      END
`
	p := mustParse(t, src)
	inits := p.Main().DataInits
	if len(inits) != 2 {
		t.Fatalf("data inits = %d", len(inits))
	}
	if len(inits[0].Vals) != 5 || inits[0].Vals[3] != 1.5 {
		t.Fatalf("array init wrong: %v", inits[0].Vals)
	}
	if inits[1].Vals[0] != 2.25 {
		t.Fatalf("scalar init wrong: %v", inits[1].Vals)
	}
}

func TestImplicitTyping(t *testing.T) {
	src := `
      PROGRAM P
      K = 3
      X = 1.5
      END
`
	p := mustParse(t, src)
	if p.Main().Syms.Lookup("K").Type != TInteger {
		t.Fatal("K should be INTEGER by the I-N rule")
	}
	if p.Main().Syms.Lookup("X").Type != TReal {
		t.Fatal("X should be REAL")
	}
}

func TestParameterArithmetic(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N, M
      PARAMETER (N = 64, M = 2*N+1)
      REAL A(M)
      INTEGER I
      DO I = 1, M
        A(I) = 0.0
      ENDDO
      END
`
	p := mustParse(t, src)
	m := p.Main().Syms.Lookup("M")
	if !m.IsConst || m.Const != 129 {
		t.Fatalf("M = %v", m.Const)
	}
	a := p.Main().Syms.Lookup("A")
	_, high, ok := DimExtent(a.Dims[0])
	if !ok || high != 129 {
		t.Fatalf("extent of A = %d (%v)", high, ok)
	}
}

func TestParallelDirective(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(10)
      INTEGER I
!$PAR PARALLEL
      DO I = 1, 10
        A(I) = 1.0
      ENDDO
      DO I = 1, 10
        A(I) = A(I) + 1.0
      ENDDO
      END
`
	p := mustParse(t, src)
	l0 := p.Main().Body[0].(*DoLoop)
	l1 := p.Main().Body[1].(*DoLoop)
	if !l0.Parallel {
		t.Fatal("directive did not mark loop parallel")
	}
	if l1.Parallel {
		t.Fatal("directive leaked to the next loop")
	}
}

func TestCommentStyles(t *testing.T) {
	src := `
C     classic comment
c     lower-case comment
*     star comment
      PROGRAM P ! trailing comment
      INTEGER I
      I = 1 ! another
      END
`
	mustParse(t, src)
}

func TestContinuationLines(t *testing.T) {
	src := `
      PROGRAM P
      REAL X
      X = 1.0 + &
          2.0 + &
          3.0
      END
`
	p := mustParse(t, src)
	asg := p.Main().Body[0].(*Assign)
	v, ok := ConstFold(asg.RHS)
	if !ok || v != 6.0 {
		t.Fatalf("folded continuation = %v (%v)", v, ok)
	}
}

func TestDoubleExponentLiterals(t *testing.T) {
	src := `
      PROGRAM P
      DOUBLE PRECISION X
      X = 1.5D2
      END
`
	p := mustParse(t, src)
	asg := p.Main().Body[0].(*Assign)
	r, ok := asg.RHS.(*RealLit)
	if !ok || r.Val != 150.0 {
		t.Fatalf("D-exponent literal = %#v", asg.RHS)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
      PROGRAM P
      REAL X
      X = 2.0 + 3.0 * 4.0 ** 2.0
      END
`
	p := mustParse(t, src)
	asg := p.Main().Body[0].(*Assign)
	v, ok := ConstFold(asg.RHS)
	_ = ok
	// ConstFold does not fold real **; evaluate structure instead.
	add := asg.RHS.(*Bin)
	if add.Op != OpAdd {
		t.Fatalf("top op = %v", add.Op)
	}
	mul := add.R.(*Bin)
	if mul.Op != OpMul {
		t.Fatalf("mid op = %v", mul.Op)
	}
	pow := mul.R.(*Bin)
	if pow.Op != OpPow {
		t.Fatalf("inner op = %v", pow.Op)
	}
	_ = v
}

func TestIntegerDivisionConstFold(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 7/2)
      END
`
	p := mustParse(t, src)
	if c := p.Main().Syms.Lookup("N").Const; c != 3 {
		t.Fatalf("7/2 folded to %v, want 3 (integer semantics)", c)
	}
}

func TestRelationalAlternatives(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER I
      I = 1
      IF (I == 1) I = 2
      IF (I >= 2) I = 3
      IF (I /= 9) I = 4
      END
`
	p := mustParse(t, src)
	if len(p.Main().Body) != 4 {
		t.Fatalf("body len %d", len(p.Main().Body))
	}
}

func TestAssignToParameterRejected(t *testing.T) {
	parseErr(t, `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 4)
      N = 5
      END
`)
}

func TestWrongSubscriptCountRejected(t *testing.T) {
	parseErr(t, `
      PROGRAM P
      REAL A(4,4)
      A(1) = 0.0
      END
`)
}

func TestUnknownSubroutineRejected(t *testing.T) {
	parseErr(t, `
      PROGRAM P
      CALL NOPE(1)
      END
`)
}

func TestPrintParsed(t *testing.T) {
	src := `
      PROGRAM P
      REAL X
      X = 2.0
      PRINT *, 'X IS', X
      WRITE(*,*) X
      END
`
	p := mustParse(t, src)
	if _, ok := p.Main().Body[1].(*PrintStmt); !ok {
		t.Fatal("PRINT missing")
	}
	if _, ok := p.Main().Body[2].(*PrintStmt); !ok {
		t.Fatal("WRITE-as-print missing")
	}
}

func TestEmptySourceRejected(t *testing.T) {
	parseErr(t, "   \n\n")
}

func TestLexerErrorsSurface(t *testing.T) {
	err := parseErr(t, `
      PROGRAM P
      X = 'unterminated
      END
`)
	if !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFunctionWithTypedHeader(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER K, IDX
      K = IDX(3)
      END

      INTEGER FUNCTION IDX(I)
      INTEGER I
      IDX = I + 1
      END
`
	p := mustParse(t, src)
	f := p.Lookup("IDX")
	if f.Result != TInteger {
		t.Fatalf("result type %v", f.Result)
	}
	asg := p.Main().Body[0].(*Assign)
	if TypeOf(asg.RHS) != TInteger {
		t.Fatal("call site type not integer")
	}
}

func TestAdjustableArrayDims(t *testing.T) {
	src := `
      SUBROUTINE S(A, N)
      INTEGER N
      REAL A(N, N)
      A(1,1) = 0.0
      END
`
	p := mustParse(t, src)
	a := p.Units[0].Syms.Lookup("A")
	if len(a.Dims) != 2 {
		t.Fatal("dims wrong")
	}
	if _, _, ok := DimExtent(a.Dims[0]); ok {
		t.Fatal("adjustable dim should not fold to a constant")
	}
}

func TestNegativeBoundsDims(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(-2:2)
      A(-2) = 1.0
      A(2) = 2.0
      END
`
	p := mustParse(t, src)
	a := p.Main().Syms.Lookup("A")
	low, high, ok := DimExtent(a.Dims[0])
	if !ok || low != -2 || high != 2 {
		t.Fatalf("bounds = %d:%d (%v)", low, high, ok)
	}
}

func TestLeadingAmpersandContinuation(t *testing.T) {
	src := `
      PROGRAM P
      REAL X
      X = 1.0 +
     &    2.0 +
     &    3.0
      END
`
	p := mustParse(t, src)
	asg := p.Main().Body[0].(*Assign)
	v, ok := ConstFold(asg.RHS)
	if !ok || v != 6.0 {
		t.Fatalf("column-6 continuation folded to %v (%v)", v, ok)
	}
}

func TestMixedContinuationStyles(t *testing.T) {
	src := `
      PROGRAM P
      REAL X
      X = 10.0 + &
          20.0 +
     &    30.0
      END
`
	p := mustParse(t, src)
	asg := p.Main().Body[0].(*Assign)
	if v, _ := ConstFold(asg.RHS); v != 60.0 {
		t.Fatalf("mixed continuations folded to %v", v)
	}
}
