package f77

import (
	"strings"
)

// Lexer tokenizes Fortran 77 source. Keywords are not distinguished at
// the lexical level (Fortran has no reserved words); the parser decides
// from context. Comment lines start with 'C', 'c', '*' in column one or
// '!' anywhere; both styles are accepted. A trailing '&' joins the next
// line.
type Lexer struct {
	src   string
	pos   int
	line  int
	col   int
	peeks []Token
}

// NewLexer builds a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) at(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }

// atLineStart reports whether the lexer is at column 1.
func (lx *Lexer) atLineStart() bool { return lx.col == 1 }

// skipToEOL consumes the rest of the current line, excluding the
// newline itself.
func (lx *Lexer) skipToEOL() {
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
		lx.advance()
	}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if n := len(lx.peeks); n > 0 {
		t := lx.peeks[0]
		lx.peeks = lx.peeks[1:]
		return t, nil
	}
	return lx.scan()
}

// Peek returns the i-th upcoming token (0 = next) without consuming.
func (lx *Lexer) Peek(i int) (Token, error) {
	for len(lx.peeks) <= i {
		t, err := lx.scan()
		if err != nil {
			return Token{}, err
		}
		lx.peeks = append(lx.peeks, t)
	}
	return lx.peeks[i], nil
}

func (lx *Lexer) scan() (Token, error) {
	for {
		if lx.pos >= len(lx.src) {
			return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil
		}
		c := lx.at(0)
		// Comment line: C/c/* in column 1, or ! anywhere.
		if lx.atLineStart() && (c == 'C' || c == 'c' || c == '*') {
			// Only a comment if followed by whitespace or text that is
			// not an assignment — classic F77 treats the whole line as
			// comment. We require the conservative form: 'C' or '*'
			// followed by space/EOL, or 'c' likewise, to avoid eating
			// identifiers in free-form code.
			nxt := lx.at(1)
			if nxt == ' ' || nxt == '\t' || nxt == '\n' || nxt == 0 || c == '*' {
				lx.skipToEOL()
				continue
			}
		}
		if c == '!' {
			// Directive comments (!$... / CSRD$ style) are surfaced as
			// special tokens by the parser via PeekDirective; plain
			// comments are skipped. Here we hand the whole line to the
			// directive scanner.
			if tok, ok := lx.scanDirective(); ok {
				return tok, nil
			}
			lx.skipToEOL()
			continue
		}
		switch {
		case c == '\n':
			// Leading continuation: a line whose first non-blank
			// character is '&' (the classic column-6 marker) continues
			// the previous statement, so the newline is suppressed.
			j := lx.pos + 1
			for j < len(lx.src) && (lx.src[j] == ' ' || lx.src[j] == '\t' || lx.src[j] == '\r') {
				j++
			}
			if j < len(lx.src) && lx.src[j] == '&' {
				for lx.pos <= j {
					lx.advance()
				}
				continue
			}
			t := Token{Kind: TokNewline, Line: lx.line, Col: lx.col}
			lx.advance()
			return t, nil
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance()
			continue
		case c == '&':
			// Continuation: join with next line.
			lx.advance()
			lx.skipToEOL()
			if lx.pos < len(lx.src) {
				lx.advance() // the newline
			}
			continue
		}
		break
	}

	line, col := lx.line, lx.col
	c := lx.at(0)

	switch {
	case isDigit(c) || (c == '.' && isDigit(lx.at(1))):
		return lx.scanNumber(line, col)
	case c == '.':
		return lx.scanDotOp(line, col)
	case isLetter(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdent(lx.at(0)) {
			lx.advance()
		}
		return Token{Kind: TokIdent, Text: strings.ToUpper(lx.src[start:lx.pos]), Line: line, Col: col}, nil
	case c == '\'':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) && lx.at(0) != '\'' && lx.at(0) != '\n' {
			lx.advance()
		}
		if lx.at(0) != '\'' {
			return Token{}, errf(line, col, "unterminated string literal")
		}
		text := lx.src[start:lx.pos]
		lx.advance()
		return Token{Kind: TokString, Text: text, Line: line, Col: col}, nil
	}

	lx.advance()
	switch c {
	case '+':
		return Token{Kind: TokPlus, Line: line, Col: col}, nil
	case '-':
		return Token{Kind: TokMinus, Line: line, Col: col}, nil
	case '*':
		if lx.at(0) == '*' {
			lx.advance()
			return Token{Kind: TokPower, Line: line, Col: col}, nil
		}
		return Token{Kind: TokStar, Line: line, Col: col}, nil
	case '/':
		if lx.at(0) == '=' { // tolerate C-style /= as .NE.
			lx.advance()
			return Token{Kind: TokNE, Line: line, Col: col}, nil
		}
		return Token{Kind: TokSlash, Line: line, Col: col}, nil
	case '(':
		return Token{Kind: TokLParen, Line: line, Col: col}, nil
	case ')':
		return Token{Kind: TokRParen, Line: line, Col: col}, nil
	case ',':
		return Token{Kind: TokComma, Line: line, Col: col}, nil
	case '=':
		if lx.at(0) == '=' { // tolerate == as .EQ.
			lx.advance()
			return Token{Kind: TokEQ, Line: line, Col: col}, nil
		}
		return Token{Kind: TokEq, Line: line, Col: col}, nil
	case ':':
		return Token{Kind: TokColon, Line: line, Col: col}, nil
	case '<':
		if lx.at(0) == '=' {
			lx.advance()
			return Token{Kind: TokLE, Line: line, Col: col}, nil
		}
		return Token{Kind: TokLT, Line: line, Col: col}, nil
	case '>':
		if lx.at(0) == '=' {
			lx.advance()
			return Token{Kind: TokGE, Line: line, Col: col}, nil
		}
		return Token{Kind: TokGT, Line: line, Col: col}, nil
	}
	return Token{}, errf(line, col, "unexpected character %q", string(rune(c)))
}

// scanDirective recognizes "!$PAR PARALLEL"-style directive lines and
// returns them as an identifier token "!$PAR" followed by normal
// tokens. Plain '!' comments return ok=false.
func (lx *Lexer) scanDirective(line ...int) (Token, bool) {
	// At '!': check for "!$".
	if lx.at(1) != '$' {
		return Token{}, false
	}
	l, c := lx.line, lx.col
	lx.advance() // !
	lx.advance() // $
	start := lx.pos
	for lx.pos < len(lx.src) && isIdent(lx.at(0)) {
		lx.advance()
	}
	word := strings.ToUpper(lx.src[start:lx.pos])
	return Token{Kind: TokIdent, Text: "!$" + word, Line: l, Col: c}, true
}

func (lx *Lexer) scanNumber(line, col int) (Token, error) {
	start := lx.pos
	kind := TokInt
	for lx.pos < len(lx.src) && isDigit(lx.at(0)) {
		lx.advance()
	}
	// Fractional part — careful not to eat dot-operators like "1.AND.".
	if lx.at(0) == '.' {
		isOp := false
		for _, op := range []string{".AND.", ".OR.", ".NOT.", ".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE.", ".TRUE.", ".FALSE."} {
			if lx.pos+len(op) <= len(lx.src) && strings.EqualFold(lx.src[lx.pos:lx.pos+len(op)], op) {
				isOp = true
				break
			}
		}
		if !isOp {
			kind = TokReal
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.at(0)) {
				lx.advance()
			}
		}
	}
	// Exponent: E/D +- digits.
	if c := lx.at(0); c == 'e' || c == 'E' || c == 'd' || c == 'D' {
		off := 1
		if s := lx.at(1); s == '+' || s == '-' {
			off = 2
		}
		if isDigit(lx.at(off)) {
			kind = TokReal
			for i := 0; i < off; i++ {
				lx.advance()
			}
			for lx.pos < len(lx.src) && isDigit(lx.at(0)) {
				lx.advance()
			}
		}
	}
	text := lx.src[start:lx.pos]
	// Normalize D exponents to E for strconv.
	text = strings.Map(func(r rune) rune {
		if r == 'd' || r == 'D' {
			return 'E'
		}
		return r
	}, text)
	return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
}

func (lx *Lexer) scanDotOp(line, col int) (Token, error) {
	ops := []struct {
		text string
		kind TokKind
	}{
		{".FALSE.", TokFalse}, {".TRUE.", TokTrue},
		{".AND.", TokAND}, {".NOT.", TokNOT}, {".OR.", TokOR},
		{".EQ.", TokEQ}, {".NE.", TokNE}, {".LE.", TokLE},
		{".LT.", TokLT}, {".GE.", TokGE}, {".GT.", TokGT},
	}
	for _, op := range ops {
		if lx.pos+len(op.text) <= len(lx.src) && strings.EqualFold(lx.src[lx.pos:lx.pos+len(op.text)], op.text) {
			for i := 0; i < len(op.text); i++ {
				lx.advance()
			}
			return Token{Kind: op.kind, Line: line, Col: col}, nil
		}
	}
	return Token{}, errf(line, col, "unknown dot-operator")
}
