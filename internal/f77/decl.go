package f77

import (
	"strconv"
)

// parseDeclaration handles type declarations, DIMENSION, PARAMETER,
// DATA, IMPLICIT, EXTERNAL and INTRINSIC statements.
func (p *Parser) parseDeclaration(word string) error {
	switch word {
	case "INTEGER":
		p.mustNext()
		return p.parseTypeDecl(TInteger)
	case "REAL":
		p.mustNext()
		return p.parseTypeDecl(TReal)
	case "DOUBLE":
		p.mustNext()
		if err := p.expectIdent("PRECISION"); err != nil {
			return err
		}
		return p.parseTypeDecl(TDouble)
	case "LOGICAL":
		p.mustNext()
		return p.parseTypeDecl(TLogical)
	case "DIMENSION":
		p.mustNext()
		return p.parseDimensionList(0, false)
	case "PARAMETER":
		p.mustNext()
		return p.parseParameter()
	case "DATA":
		p.mustNext()
		return p.parseData()
	case "IMPLICIT":
		// IMPLICIT NONE accepted and ignored (the subset always types
		// explicitly or by the I-N rule).
		p.mustNext()
		p.mustNext()
		return p.endOfStatement()
	case "COMMON":
		p.mustNext()
		return p.parseCommon()
	case "EXTERNAL", "INTRINSIC":
		p.mustNext()
		for {
			if _, err := p.expect(TokIdent); err != nil {
				return err
			}
			if ok, err := p.accept(TokComma); err != nil {
				return err
			} else if !ok {
				break
			}
		}
		return p.endOfStatement()
	}
	t, _ := p.peek()
	return errf(t.Line, t.Col, "unhandled declaration %s", word)
}

// parseCommon parses COMMON [/BLK/] a, b(10) [/BLK2/ c, ...]. Blank
// common uses the block name "*BLANK*".
func (p *Parser) parseCommon() error {
	block := "*BLANK*"
	if p.unit.Commons == nil {
		p.unit.Commons = map[string][]*Symbol{}
	}
	for {
		if ok, err := p.accept(TokSlash); err != nil {
			return err
		} else if ok {
			nameTok, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			block = nameTok.Text
			if _, err := p.expect(TokSlash); err != nil {
				return err
			}
		}
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		sym := p.sym(nameTok.Text)
		if sym.Common != "" {
			return errf(nameTok.Line, nameTok.Col, "%s already in COMMON /%s/", sym.Name, sym.Common)
		}
		if sym.IsArg {
			return errf(nameTok.Line, nameTok.Col, "dummy argument %s cannot be in COMMON", sym.Name)
		}
		sym.Common = block
		sym.CommonIndex = len(p.unit.Commons[block])
		p.unit.Commons[block] = append(p.unit.Commons[block], sym)
		if ok, err := p.accept(TokLParen); err != nil {
			return err
		} else if ok {
			dims, err := p.parseDims()
			if err != nil {
				return err
			}
			sym.Dims = dims
		}
		if ok, err := p.accept(TokComma); err != nil {
			return err
		} else if !ok {
			// A new block section may follow without a comma.
			t, err := p.peek()
			if err != nil {
				return err
			}
			if t.Kind == TokSlash {
				continue
			}
			break
		}
	}
	return p.endOfStatement()
}

// parseTypeDecl parses "TYPE name[(dims)][, name[(dims)]...]".
func (p *Parser) parseTypeDecl(typ Type) error {
	return p.parseDimensionList(typ, true)
}

// parseDimensionList parses a name(dims) list. When setType is true the
// named symbols take the given type; DIMENSION keeps the implicit or
// previously declared type.
func (p *Parser) parseDimensionList(typ Type, setType bool) error {
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		sym := p.sym(nameTok.Text)
		if setType {
			sym.Type = typ
			if p.unit.Kind == KFunction && nameTok.Text == p.unit.Name {
				p.unit.Result = typ
			}
		}
		if ok, err := p.accept(TokLParen); err != nil {
			return err
		} else if ok {
			dims, err := p.parseDims()
			if err != nil {
				return err
			}
			sym.Dims = dims
		}
		if ok, err := p.accept(TokComma); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	return p.endOfStatement()
}

// parseDims parses dimension declarators up to and including ')'. Each
// is "extent", "low:high", or '*' (assumed size, last position only).
func (p *Parser) parseDims() ([]Dim, error) {
	var dims []Dim
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokStar {
			p.mustNext()
			dims = append(dims, Dim{})
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return dims, nil
		}
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if ok, err := p.accept(TokColon); err != nil {
			return nil, err
		} else if ok {
			t, err := p.peek()
			if err != nil {
				return nil, err
			}
			if t.Kind == TokStar {
				p.mustNext()
				dims = append(dims, Dim{Low: first})
			} else {
				high, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				dims = append(dims, Dim{Low: first, High: high})
			}
		} else {
			dims = append(dims, Dim{High: first})
		}
		if ok, err := p.accept(TokComma); err != nil {
			return nil, err
		} else if !ok {
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return dims, nil
		}
	}
}

// parseParameter parses PARAMETER (NAME = const-expr, ...).
func (p *Parser) parseParameter() error {
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokEq); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		sym := p.sym(nameTok.Text)
		v, ok := ConstFold(e)
		if !ok {
			return errf(nameTok.Line, nameTok.Col, "PARAMETER %s is not a constant expression", nameTok.Text)
		}
		sym.IsConst = true
		sym.Const = v
		if ok, err := p.accept(TokComma); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	return p.endOfStatement()
}

// parseData parses DATA name/v1, v2, .../ [, name/.../]... with n*v
// repeat counts.
func (p *Parser) parseData() error {
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		sym := p.sym(nameTok.Text)
		if _, err := p.expect(TokSlash); err != nil {
			return err
		}
		var vals []float64
		for {
			v, rep, err := p.parseDataItem()
			if err != nil {
				return err
			}
			for i := 0; i < rep; i++ {
				vals = append(vals, v)
			}
			if ok, err := p.accept(TokComma); err != nil {
				return err
			} else if !ok {
				break
			}
		}
		if _, err := p.expect(TokSlash); err != nil {
			return err
		}
		p.unit.DataInits = append(p.unit.DataInits, DataInit{Sym: sym, Vals: vals})
		if ok, err := p.accept(TokComma); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	return p.endOfStatement()
}

// parseDataItem parses one DATA value, optionally "N*value".
func (p *Parser) parseDataItem() (float64, int, error) {
	t, err := p.peek()
	if err != nil {
		return 0, 0, err
	}
	rep := 1
	if t.Kind == TokInt {
		// Could be a repeat count "N*".
		t2, err := p.peekN(1)
		if err != nil {
			return 0, 0, err
		}
		if t2.Kind == TokStar {
			n, _ := strconv.Atoi(t.Text)
			rep = n
			p.mustNext()
			p.mustNext()
		}
	}
	e, err := p.parseUnary()
	if err != nil {
		return 0, 0, err
	}
	v, ok := ConstFold(e)
	if !ok {
		t, _ := p.peek()
		return 0, 0, errf(t.Line, t.Col, "DATA value is not constant")
	}
	return v, rep, nil
}

// ConstFold evaluates a constant expression at compile time. It
// supports literals, PARAMETER symbols, unary +/-, and the arithmetic
// operators (including integer semantics for '/'), which covers
// declaration bounds like 2*N+1.
func ConstFold(e Expr) (float64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return float64(x.Val), true
	case *RealLit:
		return x.Val, true
	case *VarExpr:
		if x.Sym.IsConst {
			return x.Sym.Const, true
		}
		return 0, false
	case *Un:
		v, ok := ConstFold(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case OpNeg:
			return -v, true
		case OpPlus:
			return v, true
		}
		return 0, false
	case *Bin:
		l, ok := ConstFold(x.L)
		if !ok {
			return 0, false
		}
		r, ok := ConstFold(x.R)
		if !ok {
			return 0, false
		}
		intExpr := TypeOf(x.L) == TInteger && TypeOf(x.R) == TInteger
		switch x.Op {
		case OpAdd:
			return l + r, true
		case OpSub:
			return l - r, true
		case OpMul:
			return l * r, true
		case OpDiv:
			if r == 0 {
				return 0, false
			}
			if intExpr {
				return float64(int64(l) / int64(r)), true
			}
			return l / r, true
		case OpPow:
			res := 1.0
			if intExpr && r >= 0 {
				for i := int64(0); i < int64(r); i++ {
					res *= l
				}
				return res, true
			}
			return 0, false
		}
		return 0, false
	default:
		return 0, false
	}
}
