package analysis

import (
	"testing"

	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
)

// TestFigure5SummarySets reproduces the paper's Figure 5: the summary
// sets of a triply nested loop over A(I,J,K) (written) and B(I,2*J,K+1)
// (read), built per statement and integrated (expanded) loop by loop.
func TestFigure5SummarySets(t *testing.T) {
	src := `
      PROGRAM FIG5
      REAL A(100,100,100), B(100,200,101)
      INTEGER I, J, K
      DO J = 1, 100
        DO K = 1, 100
          DO I = 1, 100
            A(I,J,K) = B(I,2*J,K+1)
          ENDDO
        ENDDO
      ENDDO
      END
`
	u := parse(t, src).Main()
	lj := firstLoop(t, u)
	lk := lj.Body[0].(*f77.DoLoop)
	li := lk.Body[0].(*f77.DoLoop)
	cj, err := ResolveLoop(lj, nil)
	if err != nil {
		t.Fatal(err)
	}
	ck, _ := ResolveLoop(lk, []LoopCtx{cj})
	ci, _ := ResolveLoop(li, []LoopCtx{cj, ck})

	// ---- Statement-level summary (innermost): expand over all three
	// loops, as the paper's "Summary Sets of Statement" boxes do after
	// full expansion.
	ri := Region(li.Body, []LoopCtx{cj, ck, ci}, map[*f77.Symbol]bool{
		lj.Var: true, lk.Var: true, li.Var: true,
	})
	if !ri.OK {
		t.Fatalf("region not analyzable: %s", ri.WhyNot)
	}

	// A(I,J,K) in a 100³ column-major array: strides — I:1, J:100,
	// K:10000; loop nest order J,K,I gives dims (100, 10000, 1).
	wf := ri.Summary.ByArray(lmad.WriteFirst, "A")
	if len(wf) != 1 {
		t.Fatalf("A WriteFirst count = %d\n%s", len(wf), ri.Summary)
	}
	if got := wf[0].String(); got != "A^{100,10000,1}_{9900,990000,99}+0" {
		t.Fatalf("A LMAD = %s", got)
	}

	// B(I,2*J,K+1) in a 100×200×101 array: I stride 1; J stride 2·100
	// = 200 per J step... column-major mult for dim2 is 100, dim3 is
	// 100·200=20000; offset of (1,2,2): (2-1)*100 + (2-1)*20000 = 20100.
	ro := ri.Summary.ByArray(lmad.ReadOnly, "B")
	if len(ro) != 1 {
		t.Fatalf("B ReadOnly count = %d\n%s", len(ro), ri.Summary)
	}
	if got := ro[0].String(); got != "B^{200,20000,1}_{19800,1980000,99}+20100" {
		t.Fatalf("B LMAD = %s", got)
	}

	// The two summaries never conflict (different arrays): no ReadWrite.
	if len(ri.Summary.Sets[lmad.ReadWrite]) != 0 {
		t.Fatalf("unexpected ReadWrite promotion:\n%s", ri.Summary)
	}

	// ---- Loop-level integration: the expansion across the parallel J
	// loop is what the postpass partitions. DimOf must place J first.
	for _, c := range ri.Accesses {
		if c.acc.Sym.Name == "A" && c.acc.DimOf(lj.Var) != 0 {
			t.Fatalf("J dimension not outermost in %v", c.acc.DimLoop)
		}
	}

	// Exactness: the descriptor reproduces precisely the accessed
	// offsets (spot totals).
	if wf[0].Count() != 100*100*100 {
		t.Fatalf("A access count = %d", wf[0].Count())
	}
	if ro[0].Count() != 100*100*100 {
		t.Fatalf("B access count = %d", ro[0].Count())
	}
}
