package analysis

import (
	"fmt"

	"vbuscluster/internal/f77"
)

// SubstituteInductions rewrites auxiliary induction variables in every
// loop of the unit (§3's induction variable substitution). The handled
// pattern is the classic one:
//
//	DO I = from, to          ! step 1
//	  ...uses of K...        ! closed form: K0 + c*(I-from)
//	  K = K + c              ! the only assignment to K in the loop
//	  ...uses of K...        ! closed form: K0 + c*(I-from+1)
//	ENDDO
//
// K's pre-loop value is captured in a compiler temporary K$0 inserted
// before the loop; every use inside becomes an affine function of the
// loop index (enabling LMAD analysis), and K is reassigned its final
// value after the loop.
func SubstituteInductions(u *f77.Unit) {
	u.Body = substituteInStmts(u, u.Body)
}

func substituteInStmts(u *f77.Unit, stmts []f77.Stmt) []f77.Stmt {
	var out []f77.Stmt
	for _, s := range stmts {
		switch x := s.(type) {
		case *f77.DoLoop:
			x.Body = substituteInStmts(u, x.Body)
			out = append(out, substituteLoop(u, x)...)
		case *f77.IfBlock:
			for i := range x.Blocks {
				x.Blocks[i] = substituteInStmts(u, x.Blocks[i])
			}
			x.Else = substituteInStmts(u, x.Else)
			out = append(out, x)
		default:
			out = append(out, s)
		}
	}
	return out
}

// substituteLoop rewrites one loop; it returns the replacement
// statement sequence (pre-assignments, the loop, post-assignments).
func substituteLoop(u *f77.Unit, loop *f77.DoLoop) []f77.Stmt {
	// Step must be +1 so (I - from) is directly the 0-based trip.
	if loop.Step != nil {
		if v, ok := f77.ConstFold(loop.Step); !ok || v != 1 {
			return []f77.Stmt{loop}
		}
	}
	ivs := findInductions(loop)
	if len(ivs) == 0 {
		return []f77.Stmt{loop}
	}
	pre := []f77.Stmt{}
	post := []f77.Stmt{}
	for _, iv := range ivs {
		k0 := freshSym(u, iv.sym.Name+"$0", iv.sym.Type)
		// K$0 = K
		pre = append(pre, &f77.Assign{
			LHS: &f77.Ref{Sym: k0},
			RHS: &f77.VarExpr{Sym: iv.sym},
		})
		// Uses before the increment see K$0 + c*(I - from);
		// uses after see K$0 + c*(I - from + 1).
		closed := func(extra int64) f77.Expr {
			// K$0 + c*(I - from + extra)
			idx := f77.Expr(&f77.Bin{Op: f77.OpSub, L: &f77.VarExpr{Sym: loop.Var}, R: f77.CloneExpr(loop.From, nil)})
			if extra != 0 {
				idx = &f77.Bin{Op: f77.OpAdd, L: idx, R: &f77.IntLit{Val: extra}}
			}
			return &f77.Bin{Op: f77.OpAdd,
				L: &f77.VarExpr{Sym: k0},
				R: &f77.Bin{Op: f77.OpMul, L: &f77.IntLit{Val: iv.c}, R: idx},
			}
		}
		replace := func(stmts []f77.Stmt, extra int64) {
			f77.RewriteAllExprs(stmts, func(e f77.Expr) f77.Expr {
				if v, ok := e.(*f77.VarExpr); ok && v.Sym == iv.sym {
					return closed(extra)
				}
				return e
			})
		}
		replace(loop.Body[:iv.pos], 0)
		rest := loop.Body[iv.pos+1:]
		replace(rest, 1)
		loop.Body = append(append([]f77.Stmt{}, loop.Body[:iv.pos]...), rest...)
		// K = K$0 + c * trips — trips folds because bounds are exprs;
		// emit K$0 + c*(to - from + 1) and let later folding handle it.
		trips := &f77.Bin{Op: f77.OpAdd,
			L: &f77.Bin{Op: f77.OpSub, L: f77.CloneExpr(loop.To, nil), R: f77.CloneExpr(loop.From, nil)},
			R: &f77.IntLit{Val: 1},
		}
		post = append(post, &f77.Assign{
			LHS: &f77.Ref{Sym: iv.sym},
			RHS: &f77.Bin{Op: f77.OpAdd,
				L: &f77.VarExpr{Sym: k0},
				R: &f77.Bin{Op: f77.OpMul, L: &f77.IntLit{Val: iv.c}, R: trips},
			},
		})
		// Positions of later inductions shift after removal.
		for _, other := range ivs {
			if other.pos > iv.pos {
				other.pos--
			}
		}
	}
	out := append(pre, f77.Stmt(loop))
	return append(out, post...)
}

type induction struct {
	sym *f77.Symbol
	c   int64
	pos int // index of the increment statement in loop.Body
}

// findInductions locates top-level `K = K + c` statements where K is an
// integer scalar with no other writes in the loop and no uses inside
// nested conditionals before the increment (which would break the
// closed form).
func findInductions(loop *f77.DoLoop) []*induction {
	writes := map[*f77.Symbol]int{}
	f77.WalkStmts(loop.Body, func(s f77.Stmt) bool {
		if a, ok := s.(*f77.Assign); ok && len(a.LHS.Subs) == 0 {
			writes[a.LHS.Sym]++
		}
		if d, ok := s.(*f77.DoLoop); ok {
			writes[d.Var]++
		}
		return true
	})
	var out []*induction
	for pos, s := range loop.Body {
		a, ok := s.(*f77.Assign)
		if !ok || len(a.LHS.Subs) != 0 {
			continue
		}
		sym := a.LHS.Sym
		if sym.Type != f77.TInteger || sym == loop.Var || writes[sym] != 1 {
			continue
		}
		c, ok := incrementOf(a)
		if !ok {
			continue
		}
		// The increment must be at the body's top level (it is: we only
		// scan loop.Body directly) and K must not feed another
		// induction's increment (keep it simple: skip if K appears in
		// any other candidate's RHS — handled by the single-write rule).
		out = append(out, &induction{sym: sym, c: c, pos: pos})
	}
	return out
}

// incrementOf matches K = K + c / K = c + K / K = K - c.
func incrementOf(a *f77.Assign) (int64, bool) {
	bin, ok := a.RHS.(*f77.Bin)
	if !ok {
		return 0, false
	}
	isK := func(e f77.Expr) bool {
		v, ok := e.(*f77.VarExpr)
		return ok && v.Sym == a.LHS.Sym
	}
	constOf := func(e f77.Expr) (int64, bool) {
		v, ok := f77.ConstFold(e)
		if !ok || v != float64(int64(v)) {
			return 0, false
		}
		return int64(v), true
	}
	switch bin.Op {
	case f77.OpAdd:
		if isK(bin.L) {
			if c, ok := constOf(bin.R); ok {
				return c, true
			}
		}
		if isK(bin.R) {
			if c, ok := constOf(bin.L); ok {
				return c, true
			}
		}
	case f77.OpSub:
		if isK(bin.L) {
			if c, ok := constOf(bin.R); ok {
				return -c, true
			}
		}
	}
	return 0, false
}

// freshSym defines a new unit-local symbol with a unique name.
func freshSym(u *f77.Unit, base string, typ f77.Type) *f77.Symbol {
	name := base
	for i := 0; u.Syms.Lookup(name) != nil; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	return u.Syms.Define(&f77.Symbol{Name: name, Type: typ})
}
