package analysis

import (
	"testing"

	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
)

func parse(t *testing.T, src string) *f77.Program {
	t.Helper()
	p, err := f77.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func frontEnd(t *testing.T, src string) *f77.Unit {
	t.Helper()
	p := parse(t, src)
	if err := FrontEnd(p); err != nil {
		t.Fatalf("front end: %v", err)
	}
	return p.Main()
}

func firstLoop(t *testing.T, u *f77.Unit) *f77.DoLoop {
	t.Helper()
	for _, s := range u.Body {
		if l, ok := s.(*f77.DoLoop); ok {
			return l
		}
	}
	t.Fatal("no loop found")
	return nil
}

func loopOf(t *testing.T, u *f77.Unit, v string) *f77.DoLoop {
	t.Helper()
	var found *f77.DoLoop
	f77.WalkStmts(u.Body, func(s f77.Stmt) bool {
		if l, ok := s.(*f77.DoLoop); ok && l.Var.Name == v && found == nil {
			found = l
		}
		return true
	})
	if found == nil {
		t.Fatalf("no loop over %s", v)
	}
	return found
}

// ---- Affine extraction ----

func TestExtractAffine(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 10)
      REAL A(100)
      INTEGER I, J
      DO I = 1, 10
        DO J = 1, 10
          A(2*I + 3*J - 1 + N) = 0.0
        ENDDO
      ENDDO
      END
`
	u := parse(t, src).Main()
	loop := firstLoop(t, u)
	inner := loop.Body[0].(*f77.DoLoop)
	asg := inner.Body[0].(*f77.Assign)
	vars := map[*f77.Symbol]bool{loop.Var: true, inner.Var: true}
	aff, ok := ExtractAffine(asg.LHS.Subs[0], vars)
	if !ok {
		t.Fatal("affine extraction failed")
	}
	if aff.Const != 9 { // -1 + N
		t.Fatalf("const = %d", aff.Const)
	}
	if aff.Coeff(loop.Var) != 2 || aff.Coeff(inner.Var) != 3 {
		t.Fatalf("coeffs = %v", aff.Coeffs)
	}
}

func TestExtractAffineRejectsNonlinear(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(100)
      INTEGER I
      DO I = 1, 10
        A(I*I) = 0.0
      ENDDO
      END
`
	u := parse(t, src).Main()
	loop := firstLoop(t, u)
	asg := loop.Body[0].(*f77.Assign)
	if _, ok := ExtractAffine(asg.LHS.Subs[0], map[*f77.Symbol]bool{loop.Var: true}); ok {
		t.Fatal("I*I extracted as affine")
	}
}

// ---- LMAD construction from references ----

// Figure 2: DO i=1,11,2 / A(i).
func TestBuildAccessFigure2(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(11)
      INTEGER I
      DO I = 1, 11, 2
        A(I) = 0.0
      ENDDO
      END
`
	u := parse(t, src).Main()
	loop := firstLoop(t, u)
	ctx, err := ResolveLoop(loop, nil)
	if err != nil {
		t.Fatal(err)
	}
	asg := loop.Body[0].(*f77.Assign)
	acc, ok := BuildAccess(asg.LHS.Sym, asg.LHS.Subs, []LoopCtx{ctx})
	if !ok {
		t.Fatal("access build failed")
	}
	if acc.L.String() != "A^{2}_{10}+0" {
		t.Fatalf("LMAD = %s", acc.L)
	}
}

// Figure 3: A(I*2-1), I=1..4 → stride 2, offsets 0..6.
func TestBuildAccessFigure3(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(13)
      INTEGER I
      DO I = 1, 4
        A(I*2-1) = 0.0
      ENDDO
      END
`
	u := parse(t, src).Main()
	loop := firstLoop(t, u)
	ctx, _ := ResolveLoop(loop, nil)
	asg := loop.Body[0].(*f77.Assign)
	acc, _ := BuildAccess(asg.LHS.Sym, asg.LHS.Subs, []LoopCtx{ctx})
	if acc.L.String() != "A^{2}_{6}+0" {
		t.Fatalf("LMAD = %s", acc.L)
	}
}

// Figure 4: REAL A(14,*), A(K, J+26*(I-1)) in a triple nest.
func TestBuildAccessFigure4(t *testing.T) {
	src := `
      SUBROUTINE S(A)
      REAL A(14,*)
      INTEGER I, J, K
      DO I = 1, 2
        DO J = 1, 2
          DO K = 1, 10, 3
            A(K, J+26*(I-1)) = 0.0
          ENDDO
        ENDDO
      ENDDO
      END
`
	u := parse(t, src).Units[0]
	li := firstLoop(t, u)
	lj := li.Body[0].(*f77.DoLoop)
	lk := lj.Body[0].(*f77.DoLoop)
	ci, _ := ResolveLoop(li, nil)
	cj, _ := ResolveLoop(lj, []LoopCtx{ci})
	ck, _ := ResolveLoop(lk, []LoopCtx{ci, cj})
	asg := lk.Body[0].(*f77.Assign)
	acc, ok := BuildAccess(asg.LHS.Sym, asg.LHS.Subs, []LoopCtx{ci, cj, ck})
	if !ok {
		t.Fatal("build failed")
	}
	if acc.L.String() != "A^{364,14,3}_{364,14,9}+0" {
		t.Fatalf("LMAD = %s", acc.L)
	}
	if acc.DimOf(li.Var) != 0 || acc.DimOf(lj.Var) != 1 || acc.DimOf(lk.Var) != 2 {
		t.Fatalf("dim-loop mapping wrong: %v", acc.DimLoop)
	}
}

func TestBuildAccessColumnMajor(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(8,8)
      INTEGER I, J
      DO I = 1, 8
        DO J = 1, 8
          A(I,J) = 0.0
        ENDDO
      ENDDO
      END
`
	u := parse(t, src).Main()
	li := firstLoop(t, u)
	lj := li.Body[0].(*f77.DoLoop)
	ci, _ := ResolveLoop(li, nil)
	cj, _ := ResolveLoop(lj, []LoopCtx{ci})
	asg := lj.Body[0].(*f77.Assign)
	acc, _ := BuildAccess(asg.LHS.Sym, asg.LHS.Subs, []LoopCtx{ci, cj})
	// Column-major: I strides 1 (span 7), J strides 8 (span 56).
	if acc.L.String() != "A^{1,8}_{7,56}+0" {
		t.Fatalf("LMAD = %s", acc.L)
	}
}

// ---- Summary sets (Figure 5 structure) ----

func TestRegionSummaryClassification(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(10), B(10), C(10)
      INTEGER I
      DO I = 1, 10
        A(I) = B(I) + 1.0
        C(I) = C(I) * 2.0
      ENDDO
      END
`
	u := parse(t, src).Main()
	loop := firstLoop(t, u)
	ctx, _ := ResolveLoop(loop, nil)
	ri := Region(loop.Body, []LoopCtx{ctx}, map[*f77.Symbol]bool{loop.Var: true})
	if !ri.OK {
		t.Fatalf("region unanalyzable: %s", ri.WhyNot)
	}
	if n := len(ri.Summary.ByArray(lmad.WriteFirst, "A")); n != 1 {
		t.Fatalf("A WriteFirst count = %d\n%s", n, ri.Summary)
	}
	if n := len(ri.Summary.ByArray(lmad.ReadOnly, "B")); n != 1 {
		t.Fatalf("B ReadOnly count = %d\n%s", n, ri.Summary)
	}
	if n := len(ri.Summary.ByArray(lmad.ReadWrite, "C")); n == 0 {
		t.Fatalf("C not ReadWrite:\n%s", ri.Summary)
	}
}

func TestRegionUnanalyzableOnCall(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(10)
      INTEGER I
      DO I = 1, 10
        CALL S(A)
      ENDDO
      END
      SUBROUTINE S(A)
      REAL A(10)
      A(1) = 0.0
      END
`
	u := parse(t, src).Main()
	loop := firstLoop(t, u)
	ctx, _ := ResolveLoop(loop, nil)
	ri := Region(loop.Body, []LoopCtx{ctx}, nil)
	if ri.OK {
		t.Fatal("CALL region reported analyzable")
	}
}

// ---- Parallelism detection ----

func TestSimpleLoopParallel(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100), B(100)
      INTEGER I
      DO I = 1, 100
        A(I) = B(I) + 1.0
      ENDDO
      END
`)
	if !firstLoop(t, u).Parallel {
		t.Fatal("independent loop not parallel")
	}
}

func TestRecurrenceSerial(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100)
      INTEGER I
      DO I = 2, 100
        A(I) = A(I-1) + 1.0
      ENDDO
      END
`)
	if firstLoop(t, u).Parallel {
		t.Fatal("flow-dependent recurrence marked parallel")
	}
}

func TestOffsetWriteSerial(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(101)
      INTEGER I
      DO I = 1, 100
        A(I) = A(I+1) + 1.0
      ENDDO
      END
`)
	if firstLoop(t, u).Parallel {
		t.Fatal("anti-dependent loop marked parallel")
	}
}

func TestStridedDisjointParallel(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(200)
      INTEGER I
      DO I = 1, 100
        A(2*I) = A(2*I-1) + 1.0
      ENDDO
      END
`)
	if !firstLoop(t, u).Parallel {
		t.Fatal("even-write odd-read loop should be parallel")
	}
}

func TestMMOuterLoopParallel(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM MM
      INTEGER N
      PARAMETER (N = 16)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          C(I,J) = 0.0
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
`)
	loop := firstLoop(t, u)
	if !loop.Parallel {
		t.Fatal("MM outer loop should be parallel")
	}
	if loop.Schedule != f77.SchedBlock {
		t.Fatalf("MM schedule = %v, want block", loop.Schedule)
	}
	inner := loopOf(t, u, "J")
	if !inner.Parallel {
		t.Fatal("MM J loop should also be parallel")
	}
}

func TestScalarWriteSerial(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100), S
      INTEGER I
      S = 0.0
      DO I = 1, 100
        S = A(I)
      ENDDO
      A(1) = S
      END
`)
	if loopOf(t, u, "I").Parallel {
		t.Fatal("live-out scalar write marked parallel")
	}
}

// ---- Reductions ----

func TestSumReductionRecognized(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100), S
      INTEGER I
      S = 0.0
      DO I = 1, 100
        S = S + A(I)
      ENDDO
      A(1) = S
      END
`)
	loop := loopOf(t, u, "I")
	if len(loop.Reductions) != 1 || loop.Reductions[0].Op != "+" || loop.Reductions[0].Sym.Name != "S" {
		t.Fatalf("reductions = %+v", loop.Reductions)
	}
	if !loop.Parallel {
		t.Fatal("reduction loop should be parallel")
	}
}

func TestMaxReductionRecognized(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100), S
      INTEGER I
      S = A(1)
      DO I = 1, 100
        S = MAX(S, A(I))
      ENDDO
      A(1) = S
      END
`)
	loop := loopOf(t, u, "I")
	if len(loop.Reductions) != 1 || loop.Reductions[0].Op != "MAX" {
		t.Fatalf("reductions = %+v", loop.Reductions)
	}
	if !loop.Parallel {
		t.Fatal("max-reduction loop should be parallel")
	}
}

func TestReductionVarOtherUseDisqualifies(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100), S
      INTEGER I
      S = 0.0
      DO I = 1, 100
        S = S + A(I)
        A(I) = S
      ENDDO
      END
`)
	loop := loopOf(t, u, "I")
	if len(loop.Reductions) != 0 {
		t.Fatalf("S misrecognized as reduction despite other use")
	}
	if loop.Parallel {
		t.Fatal("prefix-sum pattern marked parallel")
	}
}

// ---- Privatization ----

func TestPrivatizableScalar(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100), T
      INTEGER I
      DO I = 1, 100
        T = A(I) * 2.0
        A(I) = T + 1.0
      ENDDO
      END
`)
	loop := loopOf(t, u, "I")
	found := false
	for _, p := range loop.Private {
		if p.Name == "T" {
			found = true
		}
	}
	if !found {
		t.Fatalf("T not privatized: %v", Explain(loop))
	}
	if !loop.Parallel {
		t.Fatal("loop with privatizable temp should be parallel")
	}
}

func TestReadFirstScalarNotPrivate(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100), T
      INTEGER I
      T = 0.0
      DO I = 1, 100
        A(I) = T
        T = A(I) + 1.0
      ENDDO
      END
`)
	loop := loopOf(t, u, "I")
	for _, p := range loop.Private {
		if p.Name == "T" {
			t.Fatal("read-first scalar wrongly privatized")
		}
	}
	if loop.Parallel {
		t.Fatal("loop-carried scalar dependence marked parallel")
	}
}

func TestConditionalWriteNotPrivate(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100), T
      INTEGER I
      T = 0.0
      DO I = 1, 100
        IF (A(I) .GT. 0.0) THEN
          T = A(I)
        ENDIF
        A(I) = T
      ENDDO
      END
`)
	loop := loopOf(t, u, "I")
	for _, p := range loop.Private {
		if p.Name == "T" {
			t.Fatal("conditionally-written scalar wrongly privatized")
		}
	}
}

// ---- Induction substitution ----

func TestInductionSubstitution(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(200)
      INTEGER I, K
      K = 0
      DO I = 1, 100
        K = K + 2
        A(K) = 1.0
      ENDDO
      A(1) = REAL(K)
      END
`)
	loop := loopOf(t, u, "I")
	// After substitution the loop body has one assignment with an
	// affine subscript, and the loop is parallel (stride-2 writes).
	if !loop.Parallel {
		t.Fatalf("induction loop not parallelized: %s", Explain(loop))
	}
	// K must carry its final value 200 after the loop.
	foundFinal := false
	for _, s := range u.Body {
		if a, ok := s.(*f77.Assign); ok && a.LHS.Sym.Name == "K" {
			foundFinal = true
		}
	}
	if !foundFinal {
		t.Fatal("final value assignment for K missing")
	}
}

func TestInductionNotSubstitutedWithStep(t *testing.T) {
	// Step-2 loops keep the induction (closed form needs division).
	u := frontEnd(t, `
      PROGRAM P
      REAL A(200)
      INTEGER I, K
      K = 0
      DO I = 1, 100, 2
        K = K + 2
        A(K) = 1.0
      ENDDO
      END
`)
	loop := loopOf(t, u, "I")
	if loop.Parallel {
		t.Fatal("unsubstituted induction loop cannot be parallel")
	}
}

// ---- Triangular detection ----

func TestTriangularCyclicSchedule(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(64,64)
      INTEGER I, J
      DO I = 1, 64
        DO J = I, 64
          A(J,I) = 1.0
        ENDDO
      ENDDO
      END
`)
	loop := loopOf(t, u, "I")
	if !loop.Triangular {
		t.Fatal("triangular nest not detected")
	}
	if loop.Schedule != f77.SchedCyclic {
		t.Fatalf("schedule = %v, want cyclic", loop.Schedule)
	}
	if !loop.Parallel {
		t.Fatalf("triangular writes to distinct columns should be parallel: %s", Explain(loop))
	}
}

// ---- Inlining ----

func TestInlineSimpleCall(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 32)
      REAL A(N)
      CALL FILL(A, N)
      END

      SUBROUTINE FILL(V, M)
      INTEGER M, I
      REAL V(M)
      DO I = 1, M
        V(I) = 2.0
      ENDDO
      END
`)
	// After inlining there is a DO loop in main, no CALL.
	hasCall := false
	f77.WalkStmts(u.Body, func(s f77.Stmt) bool {
		if _, ok := s.(*f77.CallStmt); ok {
			hasCall = true
		}
		return true
	})
	if hasCall {
		t.Fatal("CALL not inlined")
	}
	loop := firstLoop(t, u)
	if !loop.Parallel {
		t.Fatalf("inlined fill loop not parallel: %s", Explain(loop))
	}
	// The loop writes A (the actual), not V.
	asg := loop.Body[0].(*f77.Assign)
	if asg.LHS.Sym.Name != "A" {
		t.Fatalf("dummy not bound: writes %s", asg.LHS.Sym.Name)
	}
}

func TestInlineExpressionArg(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(10)
      CALL SETV(A, 2.0 + 3.0)
      END

      SUBROUTINE SETV(V, X)
      REAL V(10), X
      INTEGER I
      DO I = 1, 10
        V(I) = X
      ENDDO
      END
`)
	// The expression actual materializes into a temp assignment.
	if _, ok := u.Body[0].(*f77.Assign); !ok {
		t.Fatalf("expected temp assignment first, got %T", u.Body[0])
	}
}

func TestInlineTransitive(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(10)
      CALL OUTER(A)
      END
      SUBROUTINE OUTER(V)
      REAL V(10)
      CALL INNER(V)
      END
      SUBROUTINE INNER(W)
      REAL W(10)
      INTEGER I
      DO I = 1, 10
        W(I) = 1.0
      ENDDO
      END
`)
	loop := firstLoop(t, u)
	asg := loop.Body[0].(*f77.Assign)
	if asg.LHS.Sym.Name != "A" {
		t.Fatalf("transitive binding failed: writes %s", asg.LHS.Sym.Name)
	}
}

func TestInlineRejectsWrittenExpressionArg(t *testing.T) {
	p := parse(t, `
      PROGRAM P
      REAL X
      CALL BAD(1.0 + 2.0)
      X = 0.0
      END
      SUBROUTINE BAD(Y)
      REAL Y
      Y = 3.0
      END
`)
	if err := FrontEnd(p); err == nil {
		t.Fatal("writing through an expression actual should fail inlining")
	}
}

// ---- Loop context resolution ----

func TestResolveTriangularBounds(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(64,64)
      INTEGER I, J
      DO I = 1, 64
        DO J = I, 64
          A(J,I) = 1.0
        ENDDO
      ENDDO
      END
`
	u := parse(t, src).Main()
	li := firstLoop(t, u)
	lj := li.Body[0].(*f77.DoLoop)
	ci, _ := ResolveLoop(li, nil)
	cj, err := ResolveLoop(lj, []LoopCtx{ci})
	if err != nil {
		t.Fatal(err)
	}
	if cj.Exact {
		t.Fatal("triangular bound reported exact")
	}
	if cj.From != 1 || cj.To != 64 {
		t.Fatalf("conservative bounds = [%d,%d]", cj.From, cj.To)
	}
}

// ---- Constant propagation ----

func TestConstantPropagationThroughScalars(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100)
      INTEGER I, K, L
      K = 10
      L = K * 2
      DO I = 1, L
        A(I + K) = 1.0
      ENDDO
      END
`)
	loop := firstLoop(t, u)
	if !loop.Parallel {
		t.Fatalf("constant-folded loop should be parallel: %s", Explain(loop))
	}
	// The loop bound folded to 20 and the subscript offset to +10.
	ctx, err := ResolveLoop(loop, nil)
	if err != nil || ctx.To != 20 {
		t.Fatalf("bound = %d (%v)", ctx.To, err)
	}
}

func TestConstantPropagationStopsAtReassignment(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(100)
      INTEGER I, K
      K = 5
      K = K + 1
      DO I = 1, 10
        A(I + K) = 1.0
      ENDDO
      END
`)
	loop := firstLoop(t, u)
	// K folded to 6 through the second assignment; loop parallel.
	if !loop.Parallel {
		t.Fatalf("loop should be parallel: %s", Explain(loop))
	}
}

func TestConstantPropagationInvalidatedByLoopWrite(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(100)
      INTEGER I, K
      K = 1
      DO I = 1, 10
        A(K) = 1.0
        K = K + 3
      ENDDO
      A(1) = A(2)
      END
`
	u := frontEnd(t, src)
	// K is an induction variable: after substitution the write is
	// strided and the loop parallelizes; crucially the constant 1 must
	// NOT have been propagated into the loop body as if K were fixed.
	loop := firstLoop(t, u)
	if !loop.Parallel {
		t.Fatalf("induction loop should parallelize: %s", Explain(loop))
	}
}

// ---- Multiple inductions in one loop ----

func TestTwoInductionVariables(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(300)
      INTEGER I, K, L
      K = 0
      L = 100
      DO I = 1, 50
        K = K + 2
        L = L + 1
        A(K) = 1.0
        A(L + 100) = 2.0
      ENDDO
      END
`)
	loop := firstLoop(t, u)
	if !loop.Parallel {
		t.Fatalf("two-induction loop should parallelize: %s", Explain(loop))
	}
}

func TestExplainRendersAnnotations(t *testing.T) {
	u := frontEnd(t, `
      PROGRAM P
      REAL A(50), S, T
      INTEGER I
      S = 0.0
      DO I = 1, 50
        T = A(I) * 2.0
        A(I) = T
        S = S + T
      ENDDO
      A(1) = S
      END
`)
	loop := loopOf(t, u, "I")
	out := Explain(loop)
	for _, want := range []string{"parallel=true", "reduction(+ S)", "private(T)", "schedule=block"} {
		if !contains(out, want) {
			t.Fatalf("Explain missing %q: %s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestAccessesOfClassification(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(10), B(10)
      INTEGER I
      DO I = 1, 10
        A(I) = A(I) + B(I)
      ENDDO
      END
`
	u := parse(t, src).Main()
	loop := firstLoop(t, u)
	ctx, _ := ResolveLoop(loop, nil)
	ri := Region(loop.Body, []LoopCtx{ctx}, map[*f77.Symbol]bool{loop.Var: true})
	rw := ri.AccessesOf(lmad.ReadWrite)
	ro := ri.AccessesOf(lmad.ReadOnly)
	foundA, foundB := false, false
	for _, a := range rw {
		if a.Sym.Name == "A" {
			foundA = true
		}
	}
	for _, a := range ro {
		if a.Sym.Name == "B" {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatalf("AccessesOf: A-rw=%v B-ro=%v", foundA, foundB)
	}
}

func TestInductionFormsRecognized(t *testing.T) {
	// K = c + K and K = K - c forms.
	u := frontEnd(t, `
      PROGRAM P
      REAL A(400)
      INTEGER I, K, L
      K = 0
      L = 401
      DO I = 1, 100
        K = 2 + K
        L = L - 4
        A(K) = 1.0
        A(L) = 2.0
      ENDDO
      END
`)
	loop := firstLoop(t, u)
	if !loop.Parallel {
		t.Fatalf("mixed-form inductions not substituted: %s", Explain(loop))
	}
}

func TestIntrinsicArgsAffineRejected(t *testing.T) {
	// Subscripts containing intrinsic calls are not affine.
	src := `
      PROGRAM P
      REAL A(100)
      INTEGER I
      DO I = 1, 10
        A(MOD(I, 7) + 1) = 1.0
      ENDDO
      END
`
	u := parse(t, src).Main()
	loop := firstLoop(t, u)
	asg := loop.Body[0].(*f77.Assign)
	if _, ok := ExtractAffine(asg.LHS.Subs[0], map[*f77.Symbol]bool{loop.Var: true}); ok {
		t.Fatal("MOD subscript extracted as affine")
	}
	// And the loop must therefore be serial.
	u2 := frontEnd(t, src)
	if firstLoop(t, u2).Parallel {
		t.Fatal("non-affine write marked parallel")
	}
}

func TestAffineDivFold(t *testing.T) {
	// Exact constant division and power fold inside subscripts.
	src := `
      PROGRAM P
      REAL A(100)
      INTEGER I
      DO I = 1, 10
        A(I + 8/4 + 2**3) = 1.0
      ENDDO
      END
`
	u := parse(t, src).Main()
	loop := firstLoop(t, u)
	asg := loop.Body[0].(*f77.Assign)
	aff, ok := ExtractAffine(asg.LHS.Subs[0], map[*f77.Symbol]bool{loop.Var: true})
	if !ok || aff.Const != 10 {
		t.Fatalf("affine = %+v ok=%v", aff, ok)
	}
}
