package analysis

import (
	"fmt"

	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
)

// maxShiftChecks bounds the per-pair iteration-distance sweep of the
// Access Region Test. Loops with more iterations than this are treated
// conservatively (serial) unless an early-exit proves independence.
const maxShiftChecks = 1 << 14

// enumLimit bounds exact enumeration inside overlap tests.
const enumLimit = 1 << 16

// DetectParallel runs the front end's parallelism detection over every
// loop in the unit (§3): reduction recognition, privatization, then the
// Access Region Test on the per-iteration summary sets. Loops proven
// independent are marked Parallel, with BLOCK or CYCLIC schedules per
// §5.3. Loops already marked by a !$PAR directive keep the mark.
func DetectParallel(u *f77.Unit) {
	var visit func(stmts []f77.Stmt, outer []LoopCtx)
	visit = func(stmts []f77.Stmt, outer []LoopCtx) {
		for _, s := range stmts {
			switch x := s.(type) {
			case *f77.DoLoop:
				ctx, err := ResolveLoop(x, outer)
				if err == nil {
					analyzeLoop(u, x, ctx, outer)
					visit(x.Body, append(append([]LoopCtx(nil), outer...), ctx))
				} else {
					visit(x.Body, outer)
				}
			case *f77.IfBlock:
				for _, blk := range x.Blocks {
					visit(blk, outer)
				}
				visit(x.Else, outer)
			}
		}
	}
	visit(u.Body, nil)
}

func analyzeLoop(u *f77.Unit, loop *f77.DoLoop, ctx LoopCtx, outer []LoopCtx) {
	RecognizeReductions(loop)
	Privatize(loop)
	// Privatized scalars must be dead after the loop: a read elsewhere
	// in the unit needs the sequentially-last value, which privatization
	// would lose.
	kept := loop.Private[:0]
	for _, p := range loop.Private {
		if !readOutsideLoop(u, loop, p) {
			kept = append(kept, p)
		}
	}
	loop.Private = kept
	loop.Triangular = isTriangular(loop)
	if loop.Triangular {
		loop.Schedule = f77.SchedCyclic
	} else {
		loop.Schedule = f77.SchedBlock
	}
	if loop.Parallel {
		return // explicit directive wins
	}
	loop.Parallel = IndependentIterations(loop, ctx, outer)
}

// readOutsideLoop reports whether sym is read anywhere in the unit
// outside the given loop's subtree.
func readOutsideLoop(u *f77.Unit, loop *f77.DoLoop, sym *f77.Symbol) bool {
	found := false
	var visit func(stmts []f77.Stmt)
	visit = func(stmts []f77.Stmt) {
		for _, s := range stmts {
			if s == f77.Stmt(loop) {
				continue
			}
			f77.StmtExprs(s, func(e f77.Expr) {
				if exprReads(e, sym) {
					found = true
				}
			})
			switch x := s.(type) {
			case *f77.DoLoop:
				visit(x.Body)
			case *f77.IfBlock:
				for _, blk := range x.Blocks {
					visit(blk)
				}
				visit(x.Else)
			}
		}
	}
	visit(u.Body)
	return found
}

// isTriangular reports whether any nested loop bound references this
// loop's index.
func isTriangular(loop *f77.DoLoop) bool {
	tri := false
	f77.WalkStmts(loop.Body, func(s f77.Stmt) bool {
		if inner, ok := s.(*f77.DoLoop); ok {
			check := func(e f77.Expr) {
				f77.WalkExpr(e, func(sub f77.Expr) {
					if v, ok := sub.(*f77.VarExpr); ok && v.Sym == loop.Var {
						tri = true
					}
				})
			}
			check(inner.From)
			check(inner.To)
			check(inner.Step)
		}
		return true
	})
	return tri
}

// IndependentIterations is the Access Region Test (§4, [2]): the loop
// is parallel iff no memory location written in one iteration is
// accessed in a different iteration, after excluding the loop variable,
// recognized reduction variables, privatized scalars, and inner loop
// indices.
func IndependentIterations(loop *f77.DoLoop, ctx LoopCtx, outer []LoopCtx) bool {
	trips := ctx.Trips()
	if trips <= 1 {
		return true
	}
	skip := map[*f77.Symbol]bool{loop.Var: true}
	for _, r := range loop.Reductions {
		skip[r.Sym] = true
	}
	for _, p := range loop.Private {
		skip[p] = true
	}
	// Per-iteration region: outer loop indices and the target index are
	// pinned to single trips, so inner loops expand into dimensions
	// while the target variable contributes only its coefficient (the
	// per-iteration shift). Pinning outer indices shifts every access
	// uniformly, which cannot affect dependences carried by this loop.
	ctxs := make([]LoopCtx, 0, len(outer)+1)
	for _, o := range outer {
		ctxs = append(ctxs, iterCtx(o))
	}
	ctxs = append(ctxs, iterCtx(ctx))
	riFixed := Region(loop.Body, ctxs, skip)
	if !riFixed.OK {
		return false
	}

	var writes, all []classified
	for _, c := range riFixed.Accesses {
		all = append(all, c)
		if c.write {
			writes = append(writes, c)
		}
	}
	// Scalars written in the loop (not privatized, not reductions)
	// serialize it.
	for _, w := range writes {
		if !w.acc.Sym.IsArray() {
			return false
		}
	}
	for _, w := range writes {
		for _, x := range all {
			if x.acc.Sym != w.acc.Sym {
				continue
			}
			if !crossIterationDisjoint(w.acc, x.acc, loop.Var, ctx) {
				return false
			}
		}
	}
	return true
}

// iterCtx builds a one-trip context pinning the loop variable to its
// first value, so per-iteration LMADs carry the variable's coefficient
// in Coeffs but no expanded dimension.
func iterCtx(ctx LoopCtx) LoopCtx {
	return LoopCtx{Loop: ctx.Loop, Var: ctx.Var, From: ctx.From, To: ctx.From, Step: ctx.Step, Exact: ctx.Exact}
}

// crossIterationDisjoint checks W(i) ∩ X(j) = ∅ for all i ≠ j by
// shifting X by the per-iteration displacement d·coeff·step.
func crossIterationDisjoint(w, x Access, v *f77.Symbol, ctx LoopCtx) bool {
	cw, cx := w.Coeffs[v], x.Coeffs[v]
	trips := ctx.Trips()
	if cw == 0 && cx == 0 {
		// Both invariant in the loop: every iteration touches the same
		// region. A write to it conflicts unless it is the same single
		// element written identically — still a conflict for ART.
		return false
	}
	if cw != cx {
		// Different coefficients: the displacement varies per iteration
		// pair; fall back to whole-expansion overlap (conservative —
		// the expansions include the same-iteration points, so this can
		// only over-report dependence, never miss one).
		wFull := w.L.WithDim(cw*ctx.Step, cw*ctx.Step*(trips-1))
		xFull := x.L.WithDim(cx*ctx.Step, cx*ctx.Step*(trips-1))
		return !lmad.Overlap(wFull, xFull, enumLimit)
	}
	// Equal coefficients: iterations i and i+d are shifted by
	// shift = c·step·d; disjoint iff W ∩ X+shift = ∅ for d = 1..trips-1
	// (and the symmetric direction).
	shift := cw * ctx.Step
	if shift < 0 {
		shift = -shift
	}
	// Early exit: the regions are bounded; once the shift exceeds the
	// combined extent the intervals cannot meet.
	extent := (w.L.High() - w.L.Low()) + (x.L.High() - x.L.Low())
	maxD := trips - 1
	if lim := extent/shift + 1; lim < maxD {
		maxD = lim
	}
	if maxD > maxShiftChecks {
		return false // conservative for enormous loops
	}
	for d := int64(1); d <= maxD; d++ {
		if lmad.Overlap(w.L, x.L.Translate(shift*d), enumLimit) {
			return false
		}
		if lmad.Overlap(x.L, w.L.Translate(shift*d), enumLimit) {
			return false
		}
	}
	return true
}

// RecognizeReductions finds scalar reduction statements S = S op expr
// (op in +, *, MAX, MIN) where S is used nowhere else in the loop, and
// records them on the loop.
func RecognizeReductions(loop *f77.DoLoop) {
	loop.Reductions = nil
	// Count scalar uses and candidate statements.
	type cand struct {
		op    string
		count int // reduction statements for this symbol
	}
	cands := map[*f77.Symbol]*cand{}
	uses := map[*f77.Symbol]int{}

	f77.WalkStmts(loop.Body, func(s f77.Stmt) bool {
		f77.StmtExprs(s, func(e f77.Expr) {
			f77.WalkExpr(e, func(sub f77.Expr) {
				if v, ok := sub.(*f77.VarExpr); ok {
					uses[v.Sym]++
				}
			})
		})
		if a, ok := s.(*f77.Assign); ok && len(a.LHS.Subs) == 0 {
			uses[a.LHS.Sym]++
			if op, ok := reductionOp(a); ok {
				c := cands[a.LHS.Sym]
				if c == nil {
					c = &cand{op: op}
					cands[a.LHS.Sym] = c
				} else if c.op != op {
					c.count = -1 << 30 // mixed operators: disqualify
				}
				c.count++
			}
		}
		return true
	})
	for sym, c := range cands {
		if sym == loop.Var || c.count < 1 {
			continue
		}
		// Every use of sym must come from its reduction statements:
		// each contributes exactly 2 uses (LHS + the RHS occurrence).
		if uses[sym] == 2*c.count {
			loop.Reductions = append(loop.Reductions, &f77.Reduction{Sym: sym, Op: c.op})
		}
	}
}

// reductionOp matches S = S + e, S = S * e (either operand order for
// commutative ops), S = e + S, S = MAX(S, e), S = MIN(S, e).
func reductionOp(a *f77.Assign) (string, bool) {
	s := a.LHS.Sym
	isS := func(e f77.Expr) bool {
		v, ok := e.(*f77.VarExpr)
		return ok && v.Sym == s
	}
	mentionsS := func(e f77.Expr) bool {
		found := false
		f77.WalkExpr(e, func(sub f77.Expr) {
			if isS(sub) {
				found = true
			}
		})
		return found
	}
	switch rhs := a.RHS.(type) {
	case *f77.Bin:
		switch rhs.Op {
		case f77.OpAdd:
			if isS(rhs.L) && !mentionsS(rhs.R) {
				return "+", true
			}
			if isS(rhs.R) && !mentionsS(rhs.L) {
				return "+", true
			}
		case f77.OpMul:
			if isS(rhs.L) && !mentionsS(rhs.R) {
				return "*", true
			}
			if isS(rhs.R) && !mentionsS(rhs.L) {
				return "*", true
			}
		case f77.OpSub:
			// S = S - e is a sum reduction of -e.
			if isS(rhs.L) && !mentionsS(rhs.R) {
				return "+", true
			}
		}
	case *f77.CallExpr:
		if (rhs.Name == "MAX" || rhs.Name == "AMAX1" || rhs.Name == "MAX0" ||
			rhs.Name == "MIN" || rhs.Name == "AMIN1" || rhs.Name == "MIN0") && len(rhs.Args) == 2 {
			op := "MAX"
			if rhs.Name[0] == 'M' && rhs.Name[1] == 'I' || rhs.Name == "AMIN1" {
				op = "MIN"
			}
			if isS(rhs.Args[0]) && !mentionsS(rhs.Args[1]) {
				return op, true
			}
			if isS(rhs.Args[1]) && !mentionsS(rhs.Args[0]) {
				return op, true
			}
		}
	}
	return "", false
}

// flowState is the write-first lattice used by Privatize.
type flowState int

const (
	flowNone flowState = iota // not accessed
	flowWF                    // written before any read on every path
	flowRF                    // (possibly) read before written
)

// Privatize marks scalars that are written before read in every
// iteration (WriteFirst in the body): each slave can keep a private
// copy, removing the loop-carried anti/output dependences (§3's
// privatization technique). Inner loop indices are always private.
func Privatize(loop *f77.DoLoop) {
	loop.Private = nil
	// Collect candidate scalars: written somewhere in the body.
	written := map[*f77.Symbol]bool{}
	f77.WalkStmts(loop.Body, func(s f77.Stmt) bool {
		if a, ok := s.(*f77.Assign); ok && len(a.LHS.Subs) == 0 {
			written[a.LHS.Sym] = true
		}
		if d, ok := s.(*f77.DoLoop); ok {
			written[d.Var] = true
		}
		return true
	})
	for sym := range written {
		if sym == loop.Var {
			continue
		}
		if stmtsFlow(loop.Body, sym) == flowWF || isInnerLoopVar(loop.Body, sym) {
			loop.Private = append(loop.Private, sym)
		}
	}
	// Deterministic order for reproducible codegen.
	sortSymbols(loop.Private)
}

func isInnerLoopVar(stmts []f77.Stmt, sym *f77.Symbol) bool {
	found := false
	f77.WalkStmts(stmts, func(s f77.Stmt) bool {
		if d, ok := s.(*f77.DoLoop); ok && d.Var == sym {
			found = true
		}
		return true
	})
	return found
}

func sortSymbols(syms []*f77.Symbol) {
	for i := 1; i < len(syms); i++ {
		for j := i; j > 0 && syms[j].Name < syms[j-1].Name; j-- {
			syms[j], syms[j-1] = syms[j-1], syms[j]
		}
	}
}

// stmtsFlow computes the write-first state of sym across a statement
// sequence.
func stmtsFlow(stmts []f77.Stmt, sym *f77.Symbol) flowState {
	state := flowNone
	for _, s := range stmts {
		if state != flowNone {
			return state
		}
		state = stmtFlow(s, sym)
	}
	return state
}

func exprReads(e f77.Expr, sym *f77.Symbol) bool {
	found := false
	f77.WalkExpr(e, func(sub f77.Expr) {
		if v, ok := sub.(*f77.VarExpr); ok && v.Sym == sym {
			found = true
		}
	})
	return found
}

func stmtFlow(s f77.Stmt, sym *f77.Symbol) flowState {
	switch x := s.(type) {
	case *f77.Assign:
		for _, sub := range x.LHS.Subs {
			if exprReads(sub, sym) {
				return flowRF
			}
		}
		if exprReads(x.RHS, sym) {
			return flowRF
		}
		if len(x.LHS.Subs) == 0 && x.LHS.Sym == sym {
			return flowWF
		}
		return flowNone
	case *f77.DoLoop:
		if exprReads(x.From, sym) || exprReads(x.To, sym) || (x.Step != nil && exprReads(x.Step, sym)) {
			return flowRF
		}
		if x.Var == sym {
			// The DO statement writes the variable before the body runs.
			return flowWF
		}
		inner := stmtsFlow(x.Body, sym)
		if inner == flowWF {
			// Zero-trip loops would skip the write; only trust constant
			// loops with at least one trip.
			if ctx, err := ResolveLoop(x, nil); err == nil && ctx.Exact && ctx.Trips() >= 1 {
				return flowWF
			}
			return flowRF
		}
		return inner
	case *f77.IfBlock:
		for _, c := range x.Conds {
			if exprReads(c, sym) {
				return flowRF
			}
		}
		arms := make([]flowState, 0, len(x.Blocks)+1)
		for _, blk := range x.Blocks {
			arms = append(arms, stmtsFlow(blk, sym))
		}
		arms = append(arms, stmtsFlow(x.Else, sym))
		all := arms[0]
		for _, a := range arms[1:] {
			if a != all {
				// Mixed outcomes across branches: conservative RF if
				// any access happens at all.
				for _, b := range arms {
					if b == flowRF {
						return flowRF
					}
				}
				return flowRF
			}
		}
		return all
	case *f77.CallStmt, *f77.PrintStmt:
		// Conservative: a call or I/O might read anything it mentions.
		reads := false
		f77.StmtExprs(s, func(e f77.Expr) {
			if exprReads(e, sym) {
				reads = true
			}
		})
		if reads {
			return flowRF
		}
		return flowNone
	default:
		return flowNone
	}
}

// Explain returns a human-readable report of the loop's analysis
// annotations (used by cmd/vbcc -explain).
func Explain(loop *f77.DoLoop) string {
	out := fmt.Sprintf("DO %s: parallel=%v schedule=%s", loop.Var.Name, loop.Parallel, loop.Schedule)
	for _, r := range loop.Reductions {
		out += fmt.Sprintf(" reduction(%s %s)", r.Op, r.Sym.Name)
	}
	for _, p := range loop.Private {
		out += fmt.Sprintf(" private(%s)", p.Name)
	}
	return out
}
