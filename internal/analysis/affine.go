// Package analysis implements the Polaris front end's parallelism
// detection (the paper's §3): building LMADs and summary sets from the
// AST, the Access Region Test for loop-carried dependences, induction
// variable substitution, reduction recognition, privatization, and
// subroutine inlining. Its output is annotations on the AST (parallel
// flags, schedules, reductions, private lists) plus per-loop summary
// sets consumed by the MPI-2 postpass.
package analysis

import (
	"fmt"

	"vbuscluster/internal/f77"
)

// Affine is a linear form over loop index variables:
// Const + Σ Coeff[v]·v.
type Affine struct {
	Const  int64
	Coeffs map[*f77.Symbol]int64
}

func newAffine(c int64) Affine {
	return Affine{Const: c, Coeffs: map[*f77.Symbol]int64{}}
}

// Coeff returns the coefficient of v (0 if absent).
func (a Affine) Coeff(v *f77.Symbol) int64 { return a.Coeffs[v] }

// IsConst reports whether the form has no variable terms.
func (a Affine) IsConst() bool {
	for _, c := range a.Coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

func (a Affine) add(b Affine, sign int64) Affine {
	out := newAffine(a.Const + sign*b.Const)
	for v, c := range a.Coeffs {
		out.Coeffs[v] += c
	}
	for v, c := range b.Coeffs {
		out.Coeffs[v] += sign * c
	}
	return out
}

func (a Affine) scale(k int64) Affine {
	out := newAffine(a.Const * k)
	for v, c := range a.Coeffs {
		out.Coeffs[v] = c * k
	}
	return out
}

// ExtractAffine decomposes e into a linear form over the variables in
// vars (typically the enclosing loop indices). Non-loop symbols must be
// PARAMETER constants; anything else (products of variables, calls,
// real arithmetic) fails with ok=false — the conservative answer that
// makes the caller treat the access as unanalyzable.
func ExtractAffine(e f77.Expr, vars map[*f77.Symbol]bool) (Affine, bool) {
	switch x := e.(type) {
	case *f77.IntLit:
		return newAffine(x.Val), true
	case *f77.VarExpr:
		if x.Sym.IsConst {
			if x.Sym.Type != f77.TInteger {
				// A real PARAMETER in a subscript would be bizarre;
				// accept exact integers only.
				if x.Sym.Const != float64(int64(x.Sym.Const)) {
					return Affine{}, false
				}
			}
			return newAffine(int64(x.Sym.Const)), true
		}
		if vars[x.Sym] {
			a := newAffine(0)
			a.Coeffs[x.Sym] = 1
			return a, true
		}
		return Affine{}, false
	case *f77.Un:
		sub, ok := ExtractAffine(x.X, vars)
		if !ok {
			return Affine{}, false
		}
		switch x.Op {
		case f77.OpNeg:
			return sub.scale(-1), true
		case f77.OpPlus:
			return sub, true
		}
		return Affine{}, false
	case *f77.Bin:
		l, lok := ExtractAffine(x.L, vars)
		r, rok := ExtractAffine(x.R, vars)
		switch x.Op {
		case f77.OpAdd:
			if lok && rok {
				return l.add(r, 1), true
			}
		case f77.OpSub:
			if lok && rok {
				return l.add(r, -1), true
			}
		case f77.OpMul:
			if lok && rok {
				if l.IsConst() {
					return r.scale(l.Const), true
				}
				if r.IsConst() {
					return l.scale(r.Const), true
				}
			}
		case f77.OpDiv:
			// Integer division is affine only for exact constant/constant.
			if lok && rok && l.IsConst() && r.IsConst() && r.Const != 0 && l.Const%r.Const == 0 {
				return newAffine(l.Const / r.Const), true
			}
		case f77.OpPow:
			if lok && rok && l.IsConst() && r.IsConst() && r.Const >= 0 {
				v := int64(1)
				for i := int64(0); i < r.Const; i++ {
					v *= l.Const
				}
				return newAffine(v), true
			}
		}
		return Affine{}, false
	default:
		return Affine{}, false
	}
}

// ArrayLayout is the constant column-major layout of an array: the
// element offset of A(s1..sk) is Σ (si - Low_i)·Mult_i.
type ArrayLayout struct {
	Sym  *f77.Symbol
	Lows []int64
	Mult []int64
	// Size is the total element count; 0 when the last dimension is
	// assumed-size.
	Size int64
}

// LayoutOf computes the layout; it fails when any non-final bound does
// not constant-fold.
func LayoutOf(sym *f77.Symbol) (ArrayLayout, error) {
	lay := ArrayLayout{Sym: sym}
	mult := int64(1)
	for i, d := range sym.Dims {
		low := int64(1)
		if d.Low != nil {
			v, ok := f77.ConstFold(d.Low)
			if !ok {
				return lay, fmt.Errorf("analysis: %s dimension %d lower bound is not constant", sym.Name, i+1)
			}
			low = int64(v)
		}
		lay.Lows = append(lay.Lows, low)
		lay.Mult = append(lay.Mult, mult)
		if d.High == nil {
			if i != len(sym.Dims)-1 {
				return lay, fmt.Errorf("analysis: %s has a non-final assumed dimension", sym.Name)
			}
			lay.Size = 0
			return lay, nil
		}
		hv, ok := f77.ConstFold(d.High)
		if !ok {
			return lay, fmt.Errorf("analysis: %s dimension %d upper bound is not constant", sym.Name, i+1)
		}
		extent := int64(hv) - low + 1
		if extent <= 0 {
			return lay, fmt.Errorf("analysis: %s dimension %d has non-positive extent %d", sym.Name, i+1, extent)
		}
		mult *= extent
	}
	lay.Size = mult
	return lay, nil
}

// Linearize combines per-dimension affine subscripts into a single
// affine element offset using the layout.
func (lay ArrayLayout) Linearize(subs []Affine) Affine {
	out := newAffine(0)
	for i, s := range subs {
		term := s.add(newAffine(lay.Lows[i]), -1).scale(lay.Mult[i])
		out = out.add(term, 1)
	}
	return out
}
