package analysis

import (
	"vbuscluster/internal/f77"
)

// PropagateConstants forward-propagates integer scalar constants
// through the unit body. This is the light-weight propagation Polaris
// runs before access analysis: it turns subscripts like K$0 + 2*I
// (after induction substitution, with K = 0 before the loop) into pure
// affine forms over loop indices so the LMAD builder can handle them.
//
// The analysis is deliberately conservative:
//   - only INTEGER scalars participate;
//   - a compound statement (loop, IF) invalidates every symbol written
//     anywhere inside it, then has invariant constants substituted in;
//   - a labeled statement (potential jump target) and a GOTO clear the
//     whole environment.
func PropagateConstants(u *f77.Unit) {
	consts := map[*f77.Symbol]int64{}
	propStmts(u.Body, consts)
}

func propStmts(stmts []f77.Stmt, consts map[*f77.Symbol]int64) {
	for _, s := range stmts {
		if s.Label() != 0 {
			clear(consts)
		}
		subst := func(e f77.Expr) f77.Expr {
			if v, ok := e.(*f77.VarExpr); ok {
				if c, ok := consts[v.Sym]; ok {
					return &f77.IntLit{Val: c}
				}
			}
			return e
		}
		switch x := s.(type) {
		case *f77.Assign:
			f77.RewriteStmtExprs(x, subst)
			if len(x.LHS.Subs) == 0 && x.LHS.Sym.Type == f77.TInteger {
				if v, ok := f77.ConstFold(x.RHS); ok && v == float64(int64(v)) {
					consts[x.LHS.Sym] = int64(v)
				} else {
					delete(consts, x.LHS.Sym)
				}
			} else if len(x.LHS.Subs) == 0 {
				delete(consts, x.LHS.Sym)
			}
		case *f77.DoLoop:
			// Bounds are evaluated on entry, with the incoming env.
			f77.RewriteStmtExprs(x, subst)
			invalidateWrites(x.Body, consts)
			delete(consts, x.Var)
			inner := cloneConsts(consts)
			propStmts(x.Body, inner)
			// After the loop the invariant constants still hold; the
			// invalidated ones are already gone from consts.
		case *f77.IfBlock:
			f77.RewriteStmtExprs(x, subst)
			for _, blk := range x.Blocks {
				invalidateWrites(blk, consts)
			}
			invalidateWrites(x.Else, consts)
			for _, blk := range x.Blocks {
				inner := cloneConsts(consts)
				propStmts(blk, inner)
			}
			inner := cloneConsts(consts)
			propStmts(x.Else, inner)
		case *f77.Goto:
			clear(consts)
		case *f77.CallStmt:
			// A call may write any variable actual.
			f77.RewriteStmtExprs(x, subst)
			for _, a := range x.Args {
				if v, ok := a.(*f77.VarExpr); ok {
					delete(consts, v.Sym)
				}
			}
		default:
			f77.RewriteStmtExprs(s, subst)
		}
	}
}

func invalidateWrites(stmts []f77.Stmt, consts map[*f77.Symbol]int64) {
	f77.WalkStmts(stmts, func(s f77.Stmt) bool {
		switch x := s.(type) {
		case *f77.Assign:
			if len(x.LHS.Subs) == 0 {
				delete(consts, x.LHS.Sym)
			}
		case *f77.DoLoop:
			delete(consts, x.Var)
		case *f77.CallStmt:
			for _, a := range x.Args {
				if v, ok := a.(*f77.VarExpr); ok {
					delete(consts, v.Sym)
				}
			}
		}
		return true
	})
}

func cloneConsts(m map[*f77.Symbol]int64) map[*f77.Symbol]int64 {
	out := make(map[*f77.Symbol]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
