package analysis

import (
	"fmt"

	"vbuscluster/internal/f77"
)

// maxInlineDepth bounds transitive inlining (and catches recursion,
// which F77 forbids anyway).
const maxInlineDepth = 8

// labelStride spaces out relabeled statements per inlined call so GOTO
// targets stay unique.
const labelStride = 10000

// InlineCalls expands every CALL statement in the main program unit
// in place (§3 lists inlining among the front end's techniques; the
// postpass needs whole loop nests visible in one unit). Subroutines
// remain in the program for direct execution elsewhere.
//
// Supported argument shapes: whole-variable actuals (scalars and
// arrays) bind by aliasing; scalar expressions bind through a compiler
// temporary (legal only when the callee never writes the dummy).
func InlineCalls(prog *f77.Program) error {
	main := prog.Main()
	if main == nil {
		return fmt.Errorf("analysis: program has no main unit")
	}
	var err error
	main.Body, err = inlineInStmts(prog, main, main.Body, 0)
	return err
}

func inlineInStmts(prog *f77.Program, host *f77.Unit, stmts []f77.Stmt, depth int) ([]f77.Stmt, error) {
	var out []f77.Stmt
	for _, s := range stmts {
		switch x := s.(type) {
		case *f77.CallStmt:
			expanded, err := inlineCall(prog, host, x, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, expanded...)
		case *f77.DoLoop:
			body, err := inlineInStmts(prog, host, x.Body, depth)
			if err != nil {
				return nil, err
			}
			x.Body = body
			out = append(out, x)
		case *f77.IfBlock:
			for i := range x.Blocks {
				blk, err := inlineInStmts(prog, host, x.Blocks[i], depth)
				if err != nil {
					return nil, err
				}
				x.Blocks[i] = blk
			}
			els, err := inlineInStmts(prog, host, x.Else, depth)
			if err != nil {
				return nil, err
			}
			x.Else = els
			out = append(out, x)
		default:
			out = append(out, s)
		}
	}
	return out, nil
}

func inlineCall(prog *f77.Program, host *f77.Unit, call *f77.CallStmt, depth int) ([]f77.Stmt, error) {
	if depth >= maxInlineDepth {
		return nil, fmt.Errorf("analysis: inline depth limit at CALL %s (recursion?)", call.Name)
	}
	callee := prog.Lookup(call.Name)
	if callee == nil || callee.Kind != f77.KSubroutine {
		return nil, fmt.Errorf("analysis: CALL of unknown subroutine %s", call.Name)
	}
	if len(call.Args) != len(callee.Params) {
		return nil, fmt.Errorf("analysis: CALL %s arity mismatch", call.Name)
	}

	m := f77.SymMap{}
	var pre []f77.Stmt

	writesDummy := func(dummy *f77.Symbol) bool {
		w := false
		f77.WalkStmts(callee.Body, func(s f77.Stmt) bool {
			if a, ok := s.(*f77.Assign); ok && a.LHS.Sym == dummy {
				w = true
			}
			return true
		})
		return w
	}

	// Bind dummies to actuals.
	for i, dummy := range callee.Params {
		switch actual := call.Args[i].(type) {
		case *f77.VarExpr:
			m[dummy] = actual.Sym
		default:
			if dummy.IsArray() {
				return nil, fmt.Errorf("analysis: CALL %s: array dummy %s needs a whole-array actual", call.Name, dummy.Name)
			}
			if writesDummy(dummy) {
				return nil, fmt.Errorf("analysis: CALL %s: dummy %s is written but bound to an expression", call.Name, dummy.Name)
			}
			tmp := freshSym(host, fmt.Sprintf("%s$A%d", callee.Name, i), dummy.Type)
			pre = append(pre, &f77.Assign{LHS: &f77.Ref{Sym: tmp}, RHS: f77.CloneExpr(actual, nil)})
			m[dummy] = tmp
		}
	}

	// COMMON members alias the host's block members positionally; the
	// element layouts must agree (a deliberate restriction — classic
	// F77 allows re-splitting the byte sequence, our benchmarks don't).
	if len(callee.Commons) > 0 && host.Commons == nil {
		host.Commons = map[string][]*f77.Symbol{}
	}
	for block, members := range callee.Commons {
		hostMembers := host.Commons[block]
		for i, member := range members {
			if i < len(hostMembers) {
				hm := hostMembers[i]
				if symElems(member) != symElems(hm) {
					return nil, fmt.Errorf("analysis: COMMON /%s/ member %d: %s(%d elements) in %s vs %s(%d) in %s",
						block, i, member.Name, symElems(member), callee.Name, hm.Name, symElems(hm), host.Name)
				}
				m[member] = hm
				continue
			}
			// The host has no such member yet: adopt the callee's.
			clone := &f77.Symbol{
				Name:        member.Name,
				Type:        member.Type,
				Common:      block,
				CommonIndex: i,
			}
			base := clone.Name
			for n := 0; host.Syms.Lookup(clone.Name) != nil; n++ {
				clone.Name = fmt.Sprintf("%s$C%d", base, n)
			}
			host.Syms.Define(clone)
			host.Commons[block] = append(host.Commons[block], clone)
			hostMembers = host.Commons[block]
			m[member] = clone
		}
	}
	// Dims of adopted common members rewrite after the map is complete
	// (handled by the shared dims pass below, since m maps them).
	for block, members := range callee.Commons {
		for i, member := range members {
			clone := m[member]
			if clone == nil || clone == member || len(member.Dims) == 0 || len(clone.Dims) > 0 {
				continue
			}
			clone.Dims = make([]f77.Dim, len(member.Dims))
			for j, d := range member.Dims {
				clone.Dims[j] = f77.Dim{Low: f77.CloneExpr(d.Low, m), High: f77.CloneExpr(d.High, m)}
			}
			_ = i
			_ = block
		}
	}

	// Clone callee locals into the host with fresh names. Adjustable
	// dimension expressions are rewritten through the same map, so
	// A(N,N) with dummy N binds to the actual's symbol. Only the
	// symbols created here get their dims rewritten — dummies map to
	// host symbols whose own declarations must stay untouched.
	created := map[*f77.Symbol]*f77.Symbol{} // callee local → fresh clone
	for _, local := range callee.Syms.Order {
		if local.IsArg {
			continue
		}
		if _, bound := m[local]; bound {
			continue
		}
		clone := &f77.Symbol{
			Name:    fmt.Sprintf("%s$%s", callee.Name, local.Name),
			Type:    local.Type,
			IsConst: local.IsConst,
			Const:   local.Const,
		}
		// Uniquify.
		base := clone.Name
		for n := 0; host.Syms.Lookup(clone.Name) != nil; n++ {
			clone.Name = fmt.Sprintf("%s%d", base, n)
		}
		host.Syms.Define(clone)
		m[local] = clone
		created[local] = clone
	}
	// Rewrite dimension expressions after the full map exists.
	for local, clone := range created {
		if len(local.Dims) == 0 {
			continue
		}
		clone.Dims = make([]f77.Dim, len(local.Dims))
		for i, d := range local.Dims {
			clone.Dims[i] = f77.Dim{Low: f77.CloneExpr(d.Low, m), High: f77.CloneExpr(d.High, m)}
		}
	}

	// DATA initializations of callee locals move to the host.
	for _, di := range callee.DataInits {
		if mapped, ok := m[di.Sym]; ok && mapped != di.Sym {
			host.DataInits = append(host.DataInits, f77.DataInit{Sym: mapped, Vals: append([]float64(nil), di.Vals...)})
		}
	}

	// Clone the body, bump labels into a fresh range, then rewrite
	// RETURN into a jump past the inlined body.
	labelOffset := labelStride * (depth + 1 + labelBump(host))
	body := f77.CloneStmts(callee.Body, m, labelOffset)
	endLabel := labelOffset + labelStride - 1
	usedReturn := false
	body = rewriteReturns(body, endLabel, &usedReturn, true)
	if usedReturn {
		body = append(body, &f77.ContinueStmt{StmtBase: f77.StmtBase{Lbl: endLabel}})
	}

	// Transitive inlining inside the expanded body.
	body, err := inlineInStmts(prog, host, body, depth+1)
	if err != nil {
		return nil, err
	}
	return append(pre, body...), nil
}

// symElems reports a symbol's constant element count (1 for scalars,
// 0 when a bound does not fold).
func symElems(sym *f77.Symbol) int64 {
	if !sym.IsArray() {
		return 1
	}
	lay, err := LayoutOf(sym)
	if err != nil {
		return 0
	}
	return lay.Size
}

// labelBump hands out a fresh label block per host call site.
func labelBump(host *f77.Unit) int {
	max := 0
	f77.WalkStmts(host.Body, func(s f77.Stmt) bool {
		if s.Label() > max {
			max = s.Label()
		}
		return true
	})
	return max/labelStride + 1
}

func rewriteReturns(stmts []f77.Stmt, endLabel int, used *bool, topLevel bool) []f77.Stmt {
	out := make([]f77.Stmt, 0, len(stmts))
	for i, s := range stmts {
		switch x := s.(type) {
		case *f77.ReturnStmt:
			if topLevel && i == len(stmts)-1 {
				continue // trailing RETURN just falls off the end
			}
			*used = true
			out = append(out, &f77.Goto{StmtBase: f77.StmtBase{Lbl: x.Label()}, Target: endLabel})
		case *f77.DoLoop:
			x.Body = rewriteReturns(x.Body, endLabel, used, false)
			out = append(out, x)
		case *f77.IfBlock:
			for j := range x.Blocks {
				x.Blocks[j] = rewriteReturns(x.Blocks[j], endLabel, used, false)
			}
			x.Else = rewriteReturns(x.Else, endLabel, used, false)
			out = append(out, x)
		default:
			out = append(out, s)
		}
	}
	return out
}

// FrontEnd runs the complete front-end pipeline on a program: inline
// subroutine calls into the main unit, substitute induction variables,
// then detect parallel loops. It mirrors the paper's Figure 1 FE box.
func FrontEnd(prog *f77.Program) error {
	if err := InlineCalls(prog); err != nil {
		return err
	}
	main := prog.Main()
	PropagateConstants(main)
	SubstituteInductions(main)
	PropagateConstants(main) // fold the induction temporaries' initial values
	DetectParallel(main)
	return nil
}
