// Package avpg implements the Array-Value-Propagation Graph of §5.2: a
// per-array directed graph over the sequence of top-level loop nests
// (parallel regions) that the postpass uses to eliminate redundant
// data-scattering and data-collecting communication.
//
// Each node corresponds to the outermost loop of one loop nest in
// program order. Per array, a node carries one of three attributes:
//
//	Valid     — the array is used (read or written) in the loop;
//	Propagate — not used here, but used by a later loop;
//	Invalid   — not used here nor in any later loop.
//
// Two §5.2 eliminations follow:
//
//  1. a Valid node followed (for that array) by only Invalid nodes
//     needs no data-collecting at its exit — the values are dead;
//  2. communication between a Valid node and the *next* Valid node is
//     delayed across any intervening Propagate nodes — the scatter
//     happens once at the next use instead of at every region boundary.
package avpg

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is a node attribute for one array.
type Attr int

// Node attributes (§5.2).
const (
	Invalid Attr = iota
	Propagate
	Valid
)

func (a Attr) String() string {
	switch a {
	case Valid:
		return "valid"
	case Propagate:
		return "propagate"
	case Invalid:
		return "invalid"
	default:
		return fmt.Sprintf("Attr(%d)", int(a))
	}
}

// Use describes how one region uses one array.
type Use struct {
	Read    bool
	Written bool
}

// Used reports whether the array is touched at all.
func (u Use) Used() bool { return u.Read || u.Written }

// Graph is the AVPG for a sequence of regions.
type Graph struct {
	// NumRegions is the number of nodes, in program order.
	NumRegions int
	// uses[array][region] records the raw usage.
	uses map[string][]Use
}

// New creates a graph over n regions.
func New(n int) *Graph {
	if n < 0 {
		panic("avpg: negative region count")
	}
	return &Graph{NumRegions: n, uses: map[string][]Use{}}
}

// Record notes that region i reads and/or writes the array.
func (g *Graph) Record(region int, array string, read, written bool) {
	if region < 0 || region >= g.NumRegions {
		panic(fmt.Sprintf("avpg: region %d out of range [0,%d)", region, g.NumRegions))
	}
	u := g.uses[array]
	if u == nil {
		u = make([]Use, g.NumRegions)
		g.uses[array] = u
	}
	u[region].Read = u[region].Read || read
	u[region].Written = u[region].Written || written
}

// Arrays lists the recorded arrays, sorted.
func (g *Graph) Arrays() []string {
	out := make([]string, 0, len(g.uses))
	for a := range g.uses {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// AttrOf computes the attribute of one array at one region.
func (g *Graph) AttrOf(region int, array string) Attr {
	u, ok := g.uses[array]
	if !ok {
		return Invalid
	}
	if u[region].Used() {
		return Valid
	}
	for i := region + 1; i < g.NumRegions; i++ {
		if u[i].Used() {
			return Propagate
		}
	}
	return Invalid
}

// Use reports the recorded usage of array at region.
func (g *Graph) Use(region int, array string) Use {
	u, ok := g.uses[array]
	if !ok {
		return Use{}
	}
	return u[region]
}

// NeedScatter reports whether the array's master copy must be
// distributed to slaves at the entry of the region: the region reads
// the array, and some earlier region (or the program start, treated as
// region -1 where the master initializes everything) produced a value
// that has not already been scattered — which the postpass tracks; at
// the graph level a read in a Valid node needs a scatter unless the
// value is already slave-resident, which the planner layer decides.
// Here we expose the §5.2 fact: reads in Valid nodes are the scatter
// points.
func (g *Graph) NeedScatter(region int, array string) bool {
	return g.Use(region, array).Read
}

// NeedCollect reports whether values written by the region must be
// collected back to the master at its exit: the array is written here
// and the value is live afterwards — i.e. the attribute of the *next*
// node is not Invalid. A write whose value is never used again is the
// paper's "edge from a valid node followed by an invalid node": the
// data-collecting there is redundant and eliminated.
func (g *Graph) NeedCollect(region int, array string) bool {
	u := g.Use(region, array)
	if !u.Written {
		return false
	}
	// Live after this region?
	uses := g.uses[array]
	for i := region + 1; i < g.NumRegions; i++ {
		if uses[i].Used() {
			return true
		}
	}
	// Live-out of the whole region sequence (e.g. printed by the final
	// sequential code): the planner marks that by recording a read at a
	// virtual trailing region; absent that, the value is dead.
	return false
}

// String renders the graph like the paper's Figure 7, one array per
// column.
func (g *Graph) String() string {
	var sb strings.Builder
	arrays := g.Arrays()
	fmt.Fprintf(&sb, "region")
	for _, a := range arrays {
		fmt.Fprintf(&sb, "\t%s", a)
	}
	sb.WriteByte('\n')
	for r := 0; r < g.NumRegions; r++ {
		fmt.Fprintf(&sb, "loop%d", r)
		for _, a := range arrays {
			fmt.Fprintf(&sb, "\t%s", g.AttrOf(r, a))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Savings reports how many region-boundary communications the AVPG
// eliminated for one array: boundaries where a scatter or collect
// would naively occur minus the ones still needed.
type Savings struct {
	NaiveScatters, NaiveCollects int
	Scatters, Collects           int
}

// SavingsOf computes the naive-vs-optimized communication counts for
// an array, where the naive scheme scatters before and collects after
// every region regardless of use.
func (g *Graph) SavingsOf(array string) Savings {
	s := Savings{NaiveScatters: g.NumRegions, NaiveCollects: g.NumRegions}
	for r := 0; r < g.NumRegions; r++ {
		if g.NeedScatter(r, array) {
			s.Scatters++
		}
		if g.NeedCollect(r, array) {
			s.Collects++
		}
	}
	return s
}
