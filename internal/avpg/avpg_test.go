package avpg

import (
	"strings"
	"testing"
)

// Figure 7's scenario: three arrays over four consecutive loops.
//
//	A: used in loop0, not in loop1/loop2, used again in loop3
//	   → Valid, Propagate, Propagate, Valid
//	B: used in loop0 only → Valid, Invalid, Invalid, Invalid
//	C: used in loop1 and loop2 → Invalid at 0... (paper draws Valid
//	   chains; we encode C used at 1,2)
func figure7(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	g.Record(0, "A", true, true)
	g.Record(3, "A", true, false)
	g.Record(0, "B", false, true)
	g.Record(1, "C", true, true)
	g.Record(2, "C", true, true)
	return g
}

func TestFigure7Attributes(t *testing.T) {
	g := figure7(t)
	cases := []struct {
		region int
		array  string
		want   Attr
	}{
		{0, "A", Valid}, {1, "A", Propagate}, {2, "A", Propagate}, {3, "A", Valid},
		{0, "B", Valid}, {1, "B", Invalid}, {2, "B", Invalid}, {3, "B", Invalid},
		{0, "C", Propagate}, {1, "C", Valid}, {2, "C", Valid}, {3, "C", Invalid},
	}
	for _, c := range cases {
		if got := g.AttrOf(c.region, c.array); got != c.want {
			t.Errorf("AttrOf(%d,%s) = %v, want %v", c.region, c.array, got, c.want)
		}
	}
}

// §5.2 elimination 1: "the edge from a valid node followed by an
// invalid node" — B is written in loop0 and never used again, so its
// data-collecting is redundant.
func TestDeadWriteNeedsNoCollect(t *testing.T) {
	g := figure7(t)
	if g.NeedCollect(0, "B") {
		t.Fatal("dead write of B should not be collected")
	}
}

// §5.2 elimination 2: communications for A are delayed across the
// propagate nodes — loops 1 and 2 neither scatter nor collect A.
func TestPropagateNodesSkipCommunication(t *testing.T) {
	g := figure7(t)
	for r := 1; r <= 2; r++ {
		if g.NeedScatter(r, "A") {
			t.Fatalf("A scattered at propagate node %d", r)
		}
		if g.NeedCollect(r, "A") {
			t.Fatalf("A collected at propagate node %d", r)
		}
	}
	if !g.NeedCollect(0, "A") {
		t.Fatal("A written in loop0 and read in loop3 must be collected")
	}
	if !g.NeedScatter(3, "A") {
		t.Fatal("A read in loop3 must be scattered there")
	}
}

func TestWriteOnlyRegionNoScatter(t *testing.T) {
	g := New(2)
	g.Record(0, "A", false, true) // write-first
	g.Record(1, "A", true, false)
	if g.NeedScatter(0, "A") {
		t.Fatal("WriteFirst region needs no scatter")
	}
	if !g.NeedCollect(0, "A") {
		t.Fatal("written value read later must be collected")
	}
	if !g.NeedScatter(1, "A") {
		t.Fatal("read region needs scatter")
	}
}

func TestLiveOutViaTrailingVirtualRegion(t *testing.T) {
	// The planner records final sequential uses as a trailing region.
	g := New(3)
	g.Record(0, "A", false, true)
	g.Record(2, "A", true, false) // virtual: printed at program end
	if !g.NeedCollect(0, "A") {
		t.Fatal("live-out write must be collected")
	}
}

func TestUnknownArrayInvalid(t *testing.T) {
	g := New(2)
	if g.AttrOf(0, "NOPE") != Invalid {
		t.Fatal("unknown array should be Invalid")
	}
	if g.NeedScatter(0, "NOPE") || g.NeedCollect(0, "NOPE") {
		t.Fatal("unknown array needs no communication")
	}
}

func TestSavings(t *testing.T) {
	g := figure7(t)
	s := g.SavingsOf("A")
	if s.NaiveScatters != 4 || s.NaiveCollects != 4 {
		t.Fatalf("naive counts: %+v", s)
	}
	if s.Scatters != 2 { // loops 0 and 3 read A
		t.Fatalf("scatters = %d", s.Scatters)
	}
	if s.Collects != 1 { // only loop0's write is live
		t.Fatalf("collects = %d", s.Collects)
	}
	sb := g.SavingsOf("B")
	if sb.Collects != 0 || sb.Scatters != 0 {
		t.Fatalf("B savings: %+v", sb)
	}
}

func TestStringRendersFigure(t *testing.T) {
	g := figure7(t)
	out := g.String()
	if !strings.Contains(out, "propagate") || !strings.Contains(out, "valid") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "loop3") {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestRecordValidation(t *testing.T) {
	g := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range region accepted")
		}
	}()
	g.Record(5, "A", true, false)
}
