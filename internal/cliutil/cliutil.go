// Package cliutil holds the small helpers every command-line tool in
// cmd/ shares: fabric-flag validation against the interconnect
// registry and the uniform fatal-error exit. One implementation here
// replaces the per-CLI copies that used to drift independently.
package cliutil

import (
	"fmt"
	"os"
	"strings"

	"vbuscluster/internal/interconnect"
)

// ValidateFabric fails fast on a mistyped fabric flag value, before
// any source is read or compiled. The empty string selects the default
// backend and is always valid. The error lists every registered
// backend with its capability flags ("rdma [dma+hops+rndv]") so the
// message doubles as the fabric catalog.
func ValidateFabric(name string) error {
	if name == "" {
		return nil
	}
	for _, n := range interconnect.Names() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown backend %q for -fabric (registered: %s)",
		name, strings.Join(interconnect.Describe(), ", "))
}

// FabricFlagUsage renders a -fabric flag's help text: the tool's
// prefix ("interconnect backend: ") followed by the caps-annotated
// backend catalog, so every binary documents the same listing the
// validation error prints.
func FabricFlagUsage(prefix string) string {
	return prefix + strings.Join(interconnect.Describe(), ", ") + " (default vbus)"
}

// Check exits the tool with status 1 and a "tool: error" line on
// stderr when err is non-nil; a nil err is a no-op.
func Check(tool string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}
