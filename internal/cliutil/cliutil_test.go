package cliutil

import (
	"strings"
	"testing"

	"vbuscluster/internal/interconnect"
	_ "vbuscluster/internal/nic" // register the real backends
)

func TestValidateFabricAcceptsRegistered(t *testing.T) {
	if err := ValidateFabric(""); err != nil {
		t.Fatalf("empty fabric (default) rejected: %v", err)
	}
	for _, name := range interconnect.Names() {
		if err := ValidateFabric(name); err != nil {
			t.Fatalf("registered backend %q rejected: %v", name, err)
		}
	}
}

func TestValidateFabricRejectsUnknownListingBackends(t *testing.T) {
	err := ValidateFabric("token-ring")
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, name := range interconnect.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered backend %q", err, name)
		}
	}
}
