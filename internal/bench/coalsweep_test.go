package bench

import (
	"strings"
	"testing"

	"vbuscluster/internal/core"
)

// A small sweep straddling the V-Bus crossover: CoalSweep's built-in
// assertions (payload verification, model-packs-must-win) already run
// inside; the test pins the external shape and the crossover ordering.
func TestCoalSweepCrossover(t *testing.T) {
	elems := []int{8, 64, 256}
	points, err := CoalSweep(elems, []int{2, 4}, "vbus")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(elems)*2 {
		t.Fatalf("got %d points, want %d", len(points), len(elems)*2)
	}
	for _, pt := range points {
		if pt.PIO <= 0 || pt.Packed <= 0 {
			t.Errorf("point %+v has non-positive time", pt)
		}
		switch pt.Elems {
		case 8:
			if pt.ModelPacks || pt.Winner() != "pio" {
				t.Errorf("8 elems below the vbus crossover should stay PIO: %+v", pt)
			}
		case 64, 256:
			if !pt.ModelPacks || pt.Winner() != "packed" {
				t.Errorf("%d elems past the vbus crossover should pack: %+v", pt.Elems, pt)
			}
		}
	}
	out := FormatCoalSweep(points, "vbus")
	for _, want := range []string{"crossover", "elems", "packed", "pio"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted sweep missing %q:\n%s", want, out)
		}
	}
}

// The ideal fabric's PIO path is free: the model must never pack, and
// the sweep must still verify payloads on both paths.
func TestCoalSweepIdealNeverPacks(t *testing.T) {
	points, err := CoalSweep([]int{16, 1024}, []int{4}, "ideal")
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.ModelPacks {
			t.Errorf("model packs on the ideal fabric: %+v", pt)
		}
	}
}

// Strides below 2 are contiguous — not a pack-vs-PIO question.
func TestCoalSweepRejectsContigStride(t *testing.T) {
	if _, err := CoalSweep([]int{8}, []int{1}, ""); err == nil {
		t.Fatal("stride 1 accepted")
	}
}

// End-to-end through the compiler: the same strided kernel compiled
// with and without -coalesce prints identical output in Full mode
// (coalescing is a transport decision, never a semantic one) and
// spends no more comm time with it on.
func TestCoalesceEndToEndEquivalence(t *testing.T) {
	src := StrideSource(1<<10, 3)
	run := func(coalesce bool) (string, int64, int64) {
		t.Helper()
		c, err := core.Compile(src, core.Options{NumProcs: 4, Coalesce: coalesce})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunParallel(core.Full)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output, int64(res.Report.TotalXferTime()), res.Report.TotalCommBytes()
	}
	outOff, commOff, bytesOff := run(false)
	outOn, commOn, bytesOn := run(true)
	if outOff != outOn {
		t.Errorf("coalescing changed the program output:\noff: %q\non:  %q", outOff, outOn)
	}
	if bytesOff != bytesOn {
		t.Errorf("coalescing changed the accounted bytes: %d -> %d", bytesOff, bytesOn)
	}
	if commOn > commOff {
		t.Errorf("coalescing raised comm time: %d -> %d", commOff, commOn)
	}
}
