package bench

import (
	"strings"
	"testing"
)

// TestKillSweepShape: a small sweep completes, every recovered run
// verifies bit-identical against the fault-free resilient baseline,
// and the crash rows actually recovered.
func TestKillSweepShape(t *testing.T) {
	rows, err := KillSweep(16, 4, 1, 1, []int64{0, 8}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want baseline + 2 crash points", len(rows))
	}
	if rows[0].Ops != -1 || rows[0].Recoveries != 0 {
		t.Fatalf("baseline row = %+v", rows[0])
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("kill@%d: recovered payload differs from the fault-free run", r.Ops)
		}
		if r.Checkpoints == 0 {
			t.Errorf("kill@%d: no checkpoints committed", r.Ops)
		}
	}
	for _, r := range rows[1:] {
		if r.Recoveries != 1 {
			t.Errorf("kill@%d: %d recoveries, want 1", r.Ops, r.Recoveries)
		}
		if r.RecoveryTime == 0 {
			t.Errorf("kill@%d: no recovery time traced", r.Ops)
		}
	}
	out := FormatKillSweep(rows)
	if !strings.Contains(out, "Kill sweep") || !strings.Contains(out, "none") {
		t.Errorf("FormatKillSweep output malformed:\n%s", out)
	}
}
