package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"vbuscluster/internal/core"
	"vbuscluster/internal/lmad"
)

// WithWorkers bounds the scheduler's worker pool for every run a
// table or sweep builds (vbbench -workers). Zero means
// runtime.GOMAXPROCS(0); negative runs the legacy unpooled launcher.
// Virtual results are bit-identical across all settings.
func WithWorkers(n int) RunOption {
	return func(o *core.Options) { o.Workers = n }
}

// ScaleRow is one point of the weak-scaling sweep: one benchmark on
// one fabric at one rank count, with the problem scaled to the rank
// count (N = P, so per-rank work stays constant as the machine grows).
type ScaleRow struct {
	Benchmark string `json:"benchmark"`
	Fabric    string `json:"fabric"`
	Ranks     int    `json:"ranks"`
	// Problem is the scaled problem size (matrix order for MM, grid
	// side for SWIM).
	Problem int `json:"problem"`
	// VirtualSec is the simulated execution time in seconds.
	VirtualSec float64 `json:"virtual_seconds"`
	// WallSec is the host wall time of compile + run.
	WallSec float64 `json:"wall_seconds"`
	// PeakRSSBytes is the process memory high-water mark
	// (runtime.MemStats.Sys) when the row finished. Rows run smallest
	// to largest, so the largest row's value is its own peak.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
	// LiveHeapBytes is the live heap (HeapInuse after a GC) once the
	// row's run was released — the sweep's retained baseline.
	LiveHeapBytes uint64 `json:"live_heap_bytes"`
	// CommOps is the number of interconnect operations the run charged.
	CommOps int64 `json:"comm_ops"`
	// EventsPerSec is CommOps divided by WallSec: the simulator's
	// event-processing throughput.
	EventsPerSec float64 `json:"events_per_sec"`
}

// ScaleBenchmarks are the weak-scaling kernels: MM's row-partitioned
// matrix product and SWIM's 2-D stencil.
var ScaleBenchmarks = []string{"MM", "SWIM"}

// scaleSource returns benchmark's source at the weak-scaled problem
// size for p ranks.
func scaleSource(benchmark string, p int) (string, error) {
	switch benchmark {
	case "MM":
		return MMSource(p), nil
	case "SWIM":
		return SwimSource(p, p), nil
	}
	return "", fmt.Errorf("bench: unknown scale benchmark %q (have %s)",
		benchmark, strings.Join(ScaleBenchmarks, ", "))
}

// scalePoint runs one sweep cell in timing mode at coarse grain and
// measures it.
func scalePoint(benchmark, fabric string, p int, opts []RunOption) (ScaleRow, error) {
	src, err := scaleSource(benchmark, p)
	if err != nil {
		return ScaleRow{}, err
	}
	start := time.Now()
	c, err := core.Compile(src, applyRunOptions(core.Options{
		NumProcs: p,
		Grain:    lmad.Coarse,
		Fabric:   fabric,
	}, opts))
	if err != nil {
		return ScaleRow{}, fmt.Errorf("bench: %s/%s/%d: %w", benchmark, fabricLabel(fabric), p, err)
	}
	res, err := c.RunParallel(core.Timing)
	if err != nil {
		return ScaleRow{}, fmt.Errorf("bench: %s/%s/%d run: %w", benchmark, fabricLabel(fabric), p, err)
	}
	wall := time.Since(start)
	ops := res.Report.TotalCommOps()
	virtual := res.Elapsed
	res = nil // release the run before sampling the heap
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	peak := ms.Sys
	runtime.GC()
	runtime.ReadMemStats(&ms)
	row := ScaleRow{
		Benchmark:     benchmark,
		Fabric:        fabricLabel(fabric),
		Ranks:         p,
		Problem:       p,
		VirtualSec:    virtual.Seconds(),
		WallSec:       wall.Seconds(),
		PeakRSSBytes:  peak,
		LiveHeapBytes: ms.HeapInuse,
		CommOps:       ops,
	}
	if row.WallSec > 0 {
		row.EventsPerSec = float64(ops) / row.WallSec
	}
	return row, nil
}

// fabricLabel names the default fabric explicitly in reports.
func fabricLabel(fabric string) string {
	if fabric == "" {
		return "vbus"
	}
	return fabric
}

// ScaleSweep runs the weak-scaling sweep: every benchmark × fabric ×
// rank count, problem scaled with the rank count, in timing mode at
// coarse grain. Nil benchmarks means ScaleBenchmarks; rank counts run
// in the given order (pass them ascending so each row's memory
// high-water mark is its own). fabrics entries are interconnect
// backend names ("" = default V-Bus).
func ScaleSweep(benchmarks []string, ranks []int, fabrics []string, opts ...RunOption) ([]ScaleRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = ScaleBenchmarks
	}
	var rows []ScaleRow
	for _, benchmark := range benchmarks {
		for _, fabric := range fabrics {
			for _, p := range ranks {
				row, err := scalePoint(benchmark, fabric, p, opts)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FormatScaleSweep renders the sweep as an aligned text table.
func FormatScaleSweep(rows []ScaleRow) string {
	var sb strings.Builder
	sb.WriteString("Weak scaling (timing mode, coarse grain, problem = ranks)\n")
	sb.WriteString("benchmark  fabric         ranks  virtual(s)    wall(s)   peakRSS(MB)  ops      ops/s\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-14s %-6d %-13.6f %-9.3f %-12.1f %-8d %.0f\n",
			r.Benchmark, r.Fabric, r.Ranks, r.VirtualSec, r.WallSec,
			float64(r.PeakRSSBytes)/(1<<20), r.CommOps, r.EventsPerSec)
	}
	return sb.String()
}

// CoreRow is one end-to-end measurement of the paper's benchmark trio
// at the paper's 4-rank configuration: compile + full-fidelity run,
// wall-clocked.
type CoreRow struct {
	Benchmark string `json:"benchmark"`
	Ranks     int    `json:"ranks"`
	// Problem is the benchmark's size parameter (matrix order, grid
	// side, or FFT exponent).
	Problem int `json:"problem"`
	// VirtualSec is the simulated execution time in seconds.
	VirtualSec float64 `json:"virtual_seconds"`
	// WallSec is the host wall time of compile + full-mode run.
	WallSec float64 `json:"wall_seconds"`
	// CommOps is the number of interconnect operations the run charged.
	CommOps int64 `json:"comm_ops"`
	// EventsPerSec is CommOps divided by WallSec.
	EventsPerSec float64 `json:"events_per_sec"`
}

// CoreBench measures the end-to-end toolchain on the paper's trio at
// 4 ranks in full mode: MM 128², SWIM 128², CFFT2INIT M=9. It is the
// repository's performance baseline (vbbench -corebench →
// BENCH_core.json): compare events/sec across commits to catch
// runtime regressions.
func CoreBench(fabric string, opts ...RunOption) ([]CoreRow, error) {
	const procs = 4
	cases := []struct {
		name    string
		problem int
		src     string
	}{
		{"MM", 128, MMSource(128)},
		{"SWIM", 128, SwimSource(128, 128)},
		{"CFFT2INIT", 9, CFFTSource(9)},
	}
	var rows []CoreRow
	for _, cse := range cases {
		start := time.Now()
		c, err := core.Compile(cse.src, applyRunOptions(core.Options{
			NumProcs: procs,
			Grain:    lmad.Coarse,
			Fabric:   fabric,
		}, opts))
		if err != nil {
			return nil, fmt.Errorf("bench: corebench %s: %w", cse.name, err)
		}
		res, err := c.RunParallel(core.Full)
		if err != nil {
			return nil, fmt.Errorf("bench: corebench %s run: %w", cse.name, err)
		}
		wall := time.Since(start)
		row := CoreRow{
			Benchmark:  cse.name,
			Ranks:      procs,
			Problem:    cse.problem,
			VirtualSec: res.Elapsed.Seconds(),
			WallSec:    wall.Seconds(),
			CommOps:    res.Report.TotalCommOps(),
		}
		if row.WallSec > 0 {
			row.EventsPerSec = float64(row.CommOps) / row.WallSec
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatCoreBench renders the baseline as an aligned text table.
func FormatCoreBench(rows []CoreRow) string {
	var sb strings.Builder
	sb.WriteString("Core baseline (full mode, coarse grain, 4 ranks)\n")
	sb.WriteString("benchmark   problem  virtual(s)    wall(s)   ops      ops/s\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %-8d %-13.6f %-9.3f %-8d %.0f\n",
			r.Benchmark, r.Problem, r.VirtualSec, r.WallSec, r.CommOps, r.EventsPerSec)
	}
	return sb.String()
}

// WriteJSON writes rows as indented JSON under a schema-tagged
// envelope (BENCH_scale.json / BENCH_core.json).
func WriteJSON(w io.Writer, schema string, rows interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]interface{}{
		"schema": schema,
		"rows":   rows,
	})
}
