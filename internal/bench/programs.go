// Package bench holds the paper's benchmark programs — MM (matrix
// multiplication), the SWIM shallow-water kernel from SPEC97, and
// CFFT2INIT (the initialization subroutine of NASA's TFFT) — rewritten
// in the supported Fortran 77 subset, plus the harness that regenerates
// the evaluation tables (§6: Tables 1 and 2) and the §2 card
// microbenchmarks.
//
// Substitution note (DESIGN.md §3): the original SPEC/NASA sources are
// not redistributable here; these kernels preserve the loop structure
// and, critically, the array access *shapes* the experiment depends on:
// MM's row-partitioned column-major regions, SWIM's 2-D unit-stride
// stencil regions, and CFFT2INIT's stride-2 interleaved writes.
package bench

import "fmt"

// MMSource returns the matrix-multiplication benchmark for n×n
// matrices: the classic I/J/K nest. The outer I loop parallelizes; in
// column-major storage each processor's rows interleave, which is what
// exercises the strided (programmed-I/O) communication path at fine
// grain.
func MMSource(n int) string {
	return fmt.Sprintf(`
      PROGRAM MM
      INTEGER N
      PARAMETER (N = %d)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I+J) / REAL(N)
          B(I,J) = REAL(I-J) / REAL(N)
          C(I,J) = 0.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      PRINT *, C(1,1), C(N,N)
      END
`, n)
}

// SwimSource returns the shallow-water kernel on an n1×n2 grid with
// ITMAX=1 (the paper's configuration): an initialization sweep plus the
// CALC1/CALC2 stencil updates of SWIM's time step.
func SwimSource(n1, n2 int) string {
	return fmt.Sprintf(`
      PROGRAM SWIM
      INTEGER N1, N2
      PARAMETER (N1 = %d, N2 = %d)
      REAL U(N1,N2), V(N1,N2), P(N1,N2)
      REAL UNEW(N1,N2), VNEW(N1,N2), PNEW(N1,N2)
      REAL CU(N1,N2), CV(N1,N2), Z(N1,N2), H(N1,N2)
      REAL DT, TDTS8, TDTSDX, TDTSDY, FSDX, FSDY, A
      INTEGER I, J

      DT = 90.0
      A = 1000000.0
      FSDX = 4.0 / 100000.0
      FSDY = 4.0 / 100000.0
      TDTS8 = DT / 8.0
      TDTSDX = DT / 100000.0
      TDTSDY = DT / 100000.0

C     Initial values of the velocity and pressure fields.
      DO I = 1, N1
        DO J = 1, N2
          U(I,J) = SIN(REAL(I) / REAL(N1)) * 10.0
          V(I,J) = COS(REAL(J) / REAL(N2)) * 10.0
          P(I,J) = A + REAL(I+J) * 0.5
          UNEW(I,J) = 0.0
          VNEW(I,J) = 0.0
          PNEW(I,J) = 0.0
        ENDDO
      ENDDO

C     CALC1: mass fluxes, vorticity and height (one time step).
      DO I = 2, N1
        DO J = 2, N2
          CU(I,J) = 0.5 * (P(I,J) + P(I-1,J)) * U(I,J)
          CV(I,J) = 0.5 * (P(I,J) + P(I,J-1)) * V(I,J)
          Z(I,J) = (FSDX*(V(I,J)-V(I-1,J)) - FSDY*(U(I,J)-U(I,J-1))) /
     &             (P(I-1,J-1) + P(I,J-1) + P(I-1,J) + P(I,J))
          H(I,J) = P(I,J) + 0.25*(U(I,J)*U(I,J) + V(I,J)*V(I,J))
        ENDDO
      ENDDO

C     CALC2: new velocity and pressure fields.
      DO I = 2, N1-1
        DO J = 2, N2-1
          UNEW(I,J) = U(I,J) +
     &      TDTS8*(Z(I,J+1)+Z(I,J))*(CV(I,J)+CV(I+1,J)) -
     &      TDTSDX*(H(I+1,J)-H(I,J))
          VNEW(I,J) = V(I,J) -
     &      TDTS8*(Z(I+1,J)+Z(I,J))*(CU(I,J)+CU(I,J+1)) -
     &      TDTSDY*(H(I,J+1)-H(I,J))
          PNEW(I,J) = P(I,J) -
     &      TDTSDX*(CU(I+1,J)-CU(I,J)) -
     &      TDTSDY*(CV(I,J+1)-CV(I,J))
        ENDDO
      ENDDO
      PRINT *, PNEW(2,2), UNEW(2,2), VNEW(2,2)
      END
`, n1, n2)
}

// CFFTSource returns the CFFT2INIT kernel for m (table size n = 2**m):
// the twiddle-factor table initialization of NASA's TFFT, whose
// interleaved real/imaginary layout produces the stride-2 LMADs the
// paper highlights ("there exist several LMADs with the stride of 2 in
// the subroutine").
func CFFTSource(m int) string {
	return fmt.Sprintf(`
      PROGRAM CFFTI
      INTEGER M, N
      PARAMETER (M = %d, N = 2**M)
      REAL W(2*N), PI, T, TI
      INTEGER I
      PI = 3.141592653589793
      DO I = 1, N
        W(2*I-1) = COS(PI * REAL(I-1) / REAL(N))
        W(2*I)   = SIN(PI * REAL(I-1) / REAL(N))
      ENDDO
      T = W(1)
      TI = W(2)
      PRINT *, T, TI
      END
`, m)
}
