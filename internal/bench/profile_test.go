package bench

import (
	"strings"
	"testing"

	"vbuscluster/internal/lmad"
)

func TestCommMatrixForMM(t *testing.T) {
	const procs = 4
	m, err := CommMatrixFor(MMSource(64), procs, lmad.Coarse, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != procs {
		t.Fatalf("matrix has %d rows, want %d", len(m), procs)
	}
	// The SPMD model is master-scatter/slave-collect: rank 0 ships work
	// out, slaves ship results back, so row 0 and column 0 carry traffic.
	var scatter, collect int64
	for j := 1; j < procs; j++ {
		scatter += m[0][j]
	}
	for i := 1; i < procs; i++ {
		collect += m[i][0]
	}
	if scatter == 0 || collect == 0 {
		t.Fatalf("expected master-centric traffic, matrix: %v", m)
	}
	// Slaves never talk to each other directly in this model.
	for i := 1; i < procs; i++ {
		for j := 1; j < procs; j++ {
			if i != j && m[i][j] != 0 {
				t.Fatalf("unexpected slave-to-slave bytes m[%d][%d]=%d", i, j, m[i][j])
			}
		}
	}
}

func TestCommProfilesDeterministic(t *testing.T) {
	set := Table2Benchmarks(64, 64, 7)
	out1, err := CommProfiles(set, 4, lmad.Coarse, "")
	if err != nil {
		t.Fatal(err)
	}
	out2, err := CommProfiles(set, 4, lmad.Coarse, "")
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("profile output differs across identical runs")
	}
	for name := range set {
		if !strings.Contains(out1, name) {
			t.Fatalf("profile output missing benchmark %q:\n%s", name, out1)
		}
	}
	if !strings.Contains(out1, "communication matrix") {
		t.Fatalf("missing matrix heading:\n%s", out1)
	}
}

func TestCommProfilesBadFabric(t *testing.T) {
	if _, err := CommProfiles(Table2Benchmarks(64, 64, 7), 4, lmad.Coarse, "nonsense"); err == nil {
		t.Fatal("unknown fabric accepted")
	}
}
