package bench

import (
	"fmt"
	"sort"
	"strings"

	"vbuscluster/internal/core"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/trace"
)

// CommMatrixFor runs one benchmark program with tracing on and returns
// its N×N communication matrix (interconnect-accounted bytes, origin
// row → peer column) — the communication-pattern view of the Table 2
// workloads that the timing tables leave implicit.
func CommMatrixFor(src string, procs int, grain lmad.Grain, fabric string) ([][]int64, error) {
	rec := trace.New()
	c, err := core.Compile(src, core.Options{NumProcs: procs, Grain: grain, Fabric: fabric, Recorder: rec})
	if err != nil {
		return nil, err
	}
	if _, err := c.RunParallel(core.Timing); err != nil {
		return nil, err
	}
	return rec.CommMatrix(procs), nil
}

// CommProfiles renders the communication matrix of every benchmark in
// the set (sorted by name, so output is deterministic despite the map)
// at the given granularity.
func CommProfiles(benchmarks map[string]string, procs int, grain lmad.Grain, fabric string) (string, error) {
	names := make([]string, 0, len(benchmarks))
	for name := range benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		m, err := CommMatrixFor(benchmarks[name], procs, grain, fabric)
		if err != nil {
			return "", fmt.Errorf("bench: %s profile: %w", name, err)
		}
		fmt.Fprintf(&sb, "%s (grain=%v, %d procs) communication matrix (bytes):\n", name, grain, procs)
		sb.WriteString(trace.FormatCommMatrix(m))
	}
	return sb.String(), nil
}
