package bench

// Kill sweep: the crash-survival experiment the checkpoint/restart
// subsystem enables. The same program runs resiliently while one rank
// is killed after an increasing operation budget — before the first
// checkpoint, between checkpoints, deep into the run. Every run must
// complete with output arrays bit-identical to the fault-free run;
// the table shows what each crash point cost in checkpoints taken,
// recovery rounds and virtual completion time.

import (
	"fmt"
	"sort"
	"strings"

	"vbuscluster/internal/core"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// KillSweepRow is one crash point's outcome.
type KillSweepRow struct {
	// Ops is the killed rank's operation budget (-1 for the fault-free
	// baseline row).
	Ops int64
	// Elapsed is the run's virtual completion time.
	Elapsed sim.Time
	// Checkpoints counts committed coordinated checkpoints.
	Checkpoints int
	// Recoveries counts shrink-and-replay rounds survived.
	Recoveries int
	// CkptTime and RecoveryTime aggregate the traced checkpoint and
	// recovery intervals — what surviving the crash cost.
	CkptTime     sim.Time
	RecoveryTime sim.Time
	// Verified reports that every final array matched the fault-free
	// resilient run bit for bit.
	Verified bool
}

// KillSweep runs MM(n) on procs ranks resiliently in full mode,
// killing rank `victim` after each operation budget in ops, and
// verifies every recovered run's final memory against the fault-free
// resilient baseline. MM is reduction-free, so the shrunken replay
// must reproduce the baseline bytes exactly. fabric selects the
// interconnect backend ("" = default V-Bus).
func KillSweep(n, procs, victim int, seed uint64, ops []int64, fabric string) ([]KillSweepRow, error) {
	src := MMSource(n)
	run := func(inj *fault.Injector) (map[string][]float64, KillSweepRow, error) {
		rec := trace.New()
		c, err := core.Compile(src, core.Options{
			NumProcs:  procs,
			Grain:     lmad.Fine,
			Fabric:    fabric,
			Recorder:  rec,
			Faults:    inj,
			Resilient: true,
			CkptEvery: 1,
		})
		if err != nil {
			return nil, KillSweepRow{}, err
		}
		res, err := c.RunResilient(core.Full)
		if err != nil {
			return nil, KillSweepRow{}, err
		}
		row := KillSweepRow{
			Elapsed:     res.Elapsed,
			Checkpoints: res.Checkpoints,
			Recoveries:  res.Recoveries,
		}
		for _, ev := range rec.Events() {
			switch ev.Op {
			case trace.OpCheckpoint:
				row.CkptTime += ev.Duration()
			case trace.OpRecovery:
				row.RecoveryTime += ev.Duration()
			}
		}
		return res.Mem, row, nil
	}

	base, baseRow, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("bench: fault-free resilient baseline: %w", err)
	}
	baseRow.Ops = -1
	baseRow.Verified = true
	rows := []KillSweepRow{baseRow}
	sorted := append([]int64(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, budget := range sorted {
		inj, err := fault.FromString(fmt.Sprintf("seed=%d,crashafter=%d/%d", seed, victim, budget))
		if err != nil {
			return nil, fmt.Errorf("bench: kill@%d: %w", budget, err)
		}
		mem, row, err := run(inj)
		if err != nil {
			return nil, fmt.Errorf("bench: kill@%d: %w", budget, err)
		}
		row.Ops = budget
		row.Verified = memEqual(base, mem)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatKillSweep renders the crash-survival table.
func FormatKillSweep(rows []KillSweepRow) string {
	var sb strings.Builder
	sb.WriteString("Kill sweep: checkpoint/restart survival vs crash point\n")
	sb.WriteString("kill@ops\telapsed\tckpts\tckpt-time\trecoveries\trecovery-time\tpayload\n")
	for _, r := range rows {
		label := "none"
		if r.Ops >= 0 {
			label = fmt.Sprintf("%d", r.Ops)
		}
		ok := "ok"
		if !r.Verified {
			ok = "CORRUPT"
		}
		fmt.Fprintf(&sb, "%s\t%v\t%d\t%v\t%d\t%v\t%s\n",
			label, r.Elapsed, r.Checkpoints, r.CkptTime, r.Recoveries, r.RecoveryTime, ok)
	}
	return sb.String()
}
