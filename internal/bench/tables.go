package bench

import (
	"fmt"
	"sort"
	"strings"

	"vbuscluster/internal/core"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/sim"
)

// RunOption adjusts the compile options of every program a table run
// builds (vbbench -faults).
type RunOption func(*core.Options)

// WithFaults attaches a deterministic fault injector to every cluster
// a table run executes on.
func WithFaults(inj *fault.Injector) RunOption {
	return func(o *core.Options) { o.Faults = inj }
}

// WithCoalesce enables the postpass coalesce stage for every program a
// table run compiles (vbbench -coalesce), routing strided transfers
// past the NIC's pack crossover over the packed-DMA path.
func WithCoalesce() RunOption {
	return func(o *core.Options) { o.Coalesce = true }
}

func applyRunOptions(o core.Options, opts []RunOption) core.Options {
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Table1Row is one cell of the paper's Table 1: MM speedup for one
// matrix size on one node count.
type Table1Row struct {
	Size    int
	Procs   int
	Seq     sim.Time
	Par     sim.Time
	Speedup float64
}

// Table1 reproduces "Table 1. Total execution time of the MM code":
// speedups of MM for sizes × node counts, at the given granularity
// (the paper's best: coarse). fabric selects the interconnect backend
// ("" = the default V-Bus machine).
func Table1(sizes []int, procs []int, grain lmad.Grain, fabric string, opts ...RunOption) ([]Table1Row, error) {
	var rows []Table1Row
	for _, n := range sizes {
		src := MMSource(n)
		var seq sim.Time
		{
			c, err := core.Compile(src, applyRunOptions(core.Options{NumProcs: 1, Grain: grain, Fabric: fabric}, opts))
			if err != nil {
				return nil, fmt.Errorf("bench: MM %d: %w", n, err)
			}
			res, err := c.RunSequential(core.Timing)
			if err != nil {
				return nil, fmt.Errorf("bench: MM %d sequential: %w", n, err)
			}
			seq = res.Elapsed
		}
		for _, p := range procs {
			c, err := core.Compile(src, applyRunOptions(core.Options{NumProcs: p, Grain: grain, Fabric: fabric}, opts))
			if err != nil {
				return nil, fmt.Errorf("bench: MM %d/%d: %w", n, p, err)
			}
			res, err := c.RunParallel(core.Timing)
			if err != nil {
				return nil, fmt.Errorf("bench: MM %d on %d procs: %w", n, p, err)
			}
			rows = append(rows, Table1Row{
				Size:    n,
				Procs:   p,
				Seq:     seq,
				Par:     res.Elapsed,
				Speedup: float64(seq) / float64(res.Elapsed),
			})
		}
	}
	return rows, nil
}

// FormatTable1 renders rows like the paper's Table 1 (speedups as a
// nodes × sizes grid).
func FormatTable1(rows []Table1Row) string {
	sizes := []int{}
	procs := []int{}
	cell := map[[2]int]float64{}
	seenS := map[int]bool{}
	seenP := map[int]bool{}
	for _, r := range rows {
		if !seenS[r.Size] {
			seenS[r.Size] = true
			sizes = append(sizes, r.Size)
		}
		if !seenP[r.Procs] {
			seenP[r.Procs] = true
			procs = append(procs, r.Procs)
		}
		cell[[2]int{r.Procs, r.Size}] = r.Speedup
	}
	var sb strings.Builder
	sb.WriteString("Table 1. Speedups of the MM code\n")
	sb.WriteString("# of Nodes")
	for _, s := range sizes {
		fmt.Fprintf(&sb, "\t%d*%d", s, s)
	}
	sb.WriteByte('\n')
	for _, p := range procs {
		fmt.Fprintf(&sb, "%d", p)
		for _, s := range sizes {
			fmt.Fprintf(&sb, "\t%.3f", cell[[2]int{p, s}])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Table2Row is one cell of Table 2: communication time of one benchmark
// at one granularity.
type Table2Row struct {
	Benchmark string
	Grain     lmad.Grain
	// CommTime is the total data scattering/collecting time — the
	// quantity the §5.6 granularity controls and Table 2 compares.
	CommTime sim.Time
	// SyncTime is barrier/fence time (grain-independent).
	SyncTime sim.Time
	Elapsed  sim.Time
	Messages int64
	Bytes    int64
}

// Table2Benchmarks returns the paper's Table 2 benchmark set: MM at
// 1024², SWIM with ITMAX=1, and CFFT2INIT with M=11. Smaller sizes can
// be substituted for quick runs.
func Table2Benchmarks(mmN, swimN, cfftM int) map[string]string {
	return map[string]string{
		fmt.Sprintf("MM(%d*%d)", mmN, mmN):       MMSource(mmN),
		fmt.Sprintf("Swim(ITMAX=1,N=%d)", swimN): SwimSource(swimN, swimN),
		fmt.Sprintf("CFFT2INIT(M=%d)", cfftM):    CFFTSource(cfftM),
	}
}

// Table2 reproduces "Table 2. Communication time for matrix
// multiplication, swim and CFFT2INIT of TFFT": the communication time
// of each benchmark on procs processors at the three granularities.
// fabric selects the interconnect backend ("" = default V-Bus).
func Table2(benchmarks map[string]string, procs int, fabric string, opts ...RunOption) ([]Table2Row, error) {
	names := make([]string, 0, len(benchmarks))
	for name := range benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []Table2Row
	for _, name := range names {
		src := benchmarks[name]
		for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
			c, err := core.Compile(src, applyRunOptions(core.Options{NumProcs: procs, Grain: grain, Fabric: fabric}, opts))
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%v: %w", name, grain, err)
			}
			res, err := c.RunParallel(core.Timing)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%v run: %w", name, grain, err)
			}
			rows = append(rows, Table2Row{
				Benchmark: name,
				Grain:     grain,
				CommTime:  res.Report.TotalXferTime(),
				SyncTime:  res.Report.TotalCommTime() - res.Report.TotalXferTime(),
				Elapsed:   res.Elapsed,
				Messages:  res.Report.TotalCommOps(),
				Bytes:     res.Report.TotalCommBytes(),
			})
		}
	}
	return rows, nil
}

// FormatTable2 renders rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2. Communication time (s) by granularity\n")
	sb.WriteString("Benchmark\tfine\tmiddle\tcoarse\n")
	order := []string{}
	byName := map[string]map[lmad.Grain]Table2Row{}
	for _, r := range rows {
		if byName[r.Benchmark] == nil {
			byName[r.Benchmark] = map[lmad.Grain]Table2Row{}
			order = append(order, r.Benchmark)
		}
		byName[r.Benchmark][r.Grain] = r
	}
	for _, name := range order {
		fmt.Fprintf(&sb, "%s", name)
		for _, g := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
			fmt.Fprintf(&sb, "\t%.5f", byName[name][g].CommTime.Seconds())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
