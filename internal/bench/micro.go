package bench

import (
	"fmt"
	"strings"

	"vbuscluster/internal/fabric"
	"vbuscluster/internal/mesh"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
)

// MicroResults reproduces the §2 card claims with the fabric and mesh
// simulators.
type MicroResults struct {
	// SKWPBandwidth sweeps message sizes and reports SKWP vs
	// conventional pipelining effective bandwidth (bytes/s) over a
	// 3-hop path — §2.1: "SKWP increases the bandwidth up to four
	// times higher than conventional pipelining."
	SKWPBandwidth []BandwidthPoint
	// WaveDegradation shows plain wave pipelining losing throughput
	// with hop count while SKWP stays flat (the skew-sampling claim).
	WaveDegradation []DegradationPoint
	// LatencyVBus / LatencyEthernet are one-way small-message
	// latencies — §2.1: "about four times lower latency than the Fast
	// Ethernet card."
	LatencyVBus     sim.Time
	LatencyEthernet sim.Time
	// Broadcast compares the V-Bus hardware broadcast against a
	// software binomial tree of point-to-point messages on the same
	// mesh, by payload size.
	Broadcast []BroadcastPoint
}

// BandwidthPoint is one message size's bandwidth under two disciplines.
type BandwidthPoint struct {
	Bytes        int
	Conventional float64
	Wave         float64
	SKWP         float64
}

// DegradationPoint is one hop count's bottleneck launch interval.
type DegradationPoint struct {
	Hops int
	Wave sim.Time
	SKWP sim.Time
}

// BroadcastPoint is one payload's broadcast completion time under the
// virtual bus vs a software tree.
type BroadcastPoint struct {
	Bytes    int
	VBus     sim.Time
	TreeP2P  sim.Time
	Ethernet sim.Time
}

// RunMicro executes all §2 microbenchmarks.
func RunMicro() (*MicroResults, error) {
	out := &MicroResults{}
	cfg := nic.DefaultVBusConfig()

	mkPath := func(mode fabric.PipelineMode, hops int) (*fabric.Path, error) {
		return fabric.NewPath(fabric.PathConfig{
			Mode:          mode,
			Lines:         cfg.Lines,
			Margin:        cfg.Margin,
			Sampler:       cfg.Sampler,
			Hops:          hops,
			RouterLatency: cfg.RouterLatency,
		})
	}

	for _, bytes := range []int{64, 1 << 10, 1 << 14, 1 << 18, 1 << 22} {
		words := bytes / (cfg.Lines.Width() / 8)
		pt := BandwidthPoint{Bytes: bytes}
		for _, m := range []fabric.PipelineMode{fabric.Conventional, fabric.Wave, fabric.SKWP} {
			p, err := mkPath(m, 3)
			if err != nil {
				return nil, err
			}
			bw := p.EffectiveBandwidth(words)
			switch m {
			case fabric.Conventional:
				pt.Conventional = bw
			case fabric.Wave:
				pt.Wave = bw
			case fabric.SKWP:
				pt.SKWP = bw
			}
		}
		out.SKWPBandwidth = append(out.SKWPBandwidth, pt)
	}

	for hops := 1; hops <= 8; hops++ {
		wave, err := mkPath(fabric.Wave, hops)
		if err != nil {
			return nil, err
		}
		skwp, err := mkPath(fabric.SKWP, hops)
		if err != nil {
			return nil, err
		}
		out.WaveDegradation = append(out.WaveDegradation, DegradationPoint{
			Hops: hops,
			Wave: wave.BottleneckInterval(),
			SKWP: skwp.BottleneckInterval(),
		})
	}

	vbus, err := nic.NewVBus(cfg)
	if err != nil {
		return nil, err
	}
	eth, err := nic.NewEthernet(nic.DefaultEthernetConfig())
	if err != nil {
		return nil, err
	}
	out.LatencyVBus = vbus.SmallMessageLatency()
	out.LatencyEthernet = eth.SmallMessageLatency()

	for _, bytes := range []int{64, 1 << 12, 1 << 16, 1 << 20} {
		// V-Bus hardware broadcast on a 4x4 mesh (flit-level sim).
		eng := sim.NewEngine()
		m, err := mesh.New(eng, vbus.MeshConfig(4, 4))
		if err != nil {
			return nil, err
		}
		var busDone sim.Time
		m.Broadcast(0, bytes, func(t sim.Time) { busDone = t })
		eng.Run()

		// Software binomial tree on the same mesh.
		eng2 := sim.NewEngine()
		m2, err := mesh.New(eng2, vbus.MeshConfig(4, 4))
		if err != nil {
			return nil, err
		}
		treeDone := runTreeBroadcast(eng2, m2, bytes)

		out.Broadcast = append(out.Broadcast, BroadcastPoint{
			Bytes:    bytes,
			VBus:     busDone,
			TreeP2P:  treeDone,
			Ethernet: eth.BroadcastTime(bytes, 16),
		})
	}
	return out, nil
}

// runTreeBroadcast drives a binomial software broadcast through the
// flit-level mesh and returns the completion time.
func runTreeBroadcast(eng *sim.Engine, m *mesh.Mesh, bytes int) sim.Time {
	var done sim.Time
	holders := []mesh.NodeID{0}
	next := 1
	var stage func()
	stage = func() {
		if next >= m.Nodes() {
			done = eng.Now()
			return
		}
		pending := 0
		var added []mesh.NodeID
		for _, h := range holders {
			if next >= m.Nodes() {
				break
			}
			dst := mesh.NodeID(next)
			next++
			pending++
			added = append(added, dst)
			m.Send(h, dst, bytes, func(sim.Time) {
				pending--
				if pending == 0 {
					stage()
				}
			})
		}
		holders = append(holders, added...)
	}
	stage()
	eng.Run()
	return done
}

// String renders the microbenchmark report.
func (r *MicroResults) String() string {
	var sb strings.Builder
	sb.WriteString("SKWP bandwidth vs conventional pipelining (3-hop path)\n")
	sb.WriteString("bytes\tconventional\twave\tskwp\tskwp/conv\n")
	for _, p := range r.SKWPBandwidth {
		fmt.Fprintf(&sb, "%d\t%.1f MB/s\t%.1f MB/s\t%.1f MB/s\t%.2fx\n",
			p.Bytes, p.Conventional/1e6, p.Wave/1e6, p.SKWP/1e6, p.SKWP/p.Conventional)
	}
	sb.WriteString("\nWave-pipelining skew accumulation (bottleneck launch interval)\n")
	sb.WriteString("hops\twave\tskwp\n")
	for _, p := range r.WaveDegradation {
		fmt.Fprintf(&sb, "%d\t%v\t%v\n", p.Hops, p.Wave, p.SKWP)
	}
	fmt.Fprintf(&sb, "\nSmall-message one-way latency: V-Bus %v vs Fast Ethernet %v (%.1fx)\n",
		r.LatencyVBus, r.LatencyEthernet, float64(r.LatencyEthernet)/float64(r.LatencyVBus))
	sb.WriteString("\nBroadcast on a 4x4 mesh: virtual bus vs software tree\n")
	sb.WriteString("bytes\tv-bus\tp2p tree\tethernet tree\n")
	for _, p := range r.Broadcast {
		fmt.Fprintf(&sb, "%d\t%v\t%v\t%v\n", p.Bytes, p.VBus, p.TreeP2P, p.Ethernet)
	}
	return sb.String()
}
