package bench

// The rdma protocol sweep: the eager/rendezvous counterpart of
// CoalSweep. It measures, at the MPI layer with payload verification,
// that the rdma card's protocol switch behaves exactly as the
// interconnect.ProtocolModel prices it — forced-eager and
// forced-rendezvous transfers cost the model's figures to the
// picosecond, a repeated rendezvous transfer rides the warm
// registration cache, the runtime's automatic choice flips protocols
// at exactly ceil(ProtocolCrossoverBytes/8) elements, and the LRU
// cache evicts under pressure. It also re-prices the Table 2 trio on
// all five fabrics so the rdma card slots into the paper's
// comparative argument.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/core"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/mpi"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
)

// RdmaFabrics is the five-fabric comparison set of the sweep.
var RdmaFabrics = []string{"vbus", "vbus3d", "ethernet", "ideal", "rdma"}

// RdmaFabricCell is one benchmark priced on one fabric (coarse grain,
// the paper's best) for the Table-2-style comparison.
type RdmaFabricCell struct {
	Fabric    string
	Caps      string
	Benchmark string
	CommTime  sim.Time
	Elapsed   sim.Time
}

// RdmaProtoPoint is one payload size of the protocol table: the same
// contiguous PUT timed over the forced-eager path, the forced-
// rendezvous path with a cold registration cache, and again warm.
type RdmaProtoPoint struct {
	Elems int
	Bytes int
	// Eager, RndvCold and RndvWarm are the measured virtual times of
	// one PUT over each path; each must equal the model's figure
	// exactly (asserted during the sweep).
	Eager, RndvCold, RndvWarm sim.Time
	// ModelRndv reports the model's cold-cache decision at this size.
	ModelRndv bool
}

// Winner names the measured cold-cache winner of a point.
func (p RdmaProtoPoint) Winner() string {
	if p.RndvCold < p.Eager {
		return "rndv"
	}
	return "eager"
}

// RdmaGateRow is the drift-gated summary of the protocol model: the
// crossover is a pure function of the card's calibration, so any
// change to it shows up as an exact mismatch against the checked-in
// baseline (serve.BenchGate).
type RdmaGateRow struct {
	// CrossoverBytes is the cold-cache eager/rendezvous crossover at
	// one hop; WarmCrossoverBytes assumes every registration cached.
	CrossoverBytes     int64 `json:"crossover_bytes"`
	WarmCrossoverBytes int64 `json:"warm_crossover_bytes"`
	// CrossoverElems is the measured element count at which the
	// runtime's automatic choice switched — always
	// ceil(CrossoverBytes/8), asserted by the sweep.
	CrossoverElems int64 `json:"crossover_elems"`
	// RegCacheEntries is the per-node registration-cache capacity.
	RegCacheEntries int `json:"reg_cache_entries"`
}

// RdmaResult is everything RdmaSweep measured.
type RdmaResult struct {
	Fabrics    []RdmaFabricCell
	Points     []RdmaProtoPoint
	Gate       RdmaGateRow
	CacheStats interconnect.RegCacheStats
}

// RdmaGate recomputes the protocol model's crossover row from the
// current card calibration alone (no measurement) — the figure
// serve.BenchGate diffs against the checked-in baseline, so any
// recalibration of the rdma card shows up as an exact drift failure.
func RdmaGate() (RdmaGateRow, error) {
	params, err := cluster.ParamsForFabric("rdma")
	if err != nil {
		return RdmaGateRow{}, err
	}
	pm, ok := nic.ProtocolModelFor(params)
	if !ok {
		return RdmaGateRow{}, fmt.Errorf("bench: rdma card does not implement interconnect.ProtocolModel")
	}
	hops := params.Hops(0, 1)
	coldB := pm.ProtocolCrossoverBytes(hops, 0)
	warmB := pm.ProtocolCrossoverBytes(hops, 1)
	if coldB <= 0 || warmB <= 0 {
		return RdmaGateRow{}, fmt.Errorf("bench: rdma model has no eager/rendezvous crossover (cold %d, warm %d)", coldB, warmB)
	}
	return RdmaGateRow{
		CrossoverBytes:     coldB,
		WarmCrossoverBytes: warmB,
		CrossoverElems:     (coldB + mpi.WordBytes - 1) / mpi.WordBytes,
		RegCacheEntries:    pm.RegCacheCapacity(),
	}, nil
}

// RdmaSweep runs the full protocol sweep; quick shrinks the benchmark
// problem sizes (the protocol table is cheap either way).
func RdmaSweep(quick bool) (*RdmaResult, error) {
	params, err := cluster.ParamsForFabric("rdma")
	if err != nil {
		return nil, err
	}
	pm, ok := nic.ProtocolModelFor(params)
	if !ok {
		return nil, fmt.Errorf("bench: rdma card does not implement interconnect.ProtocolModel")
	}
	hops := params.Hops(0, 1)
	gate, err := RdmaGate()
	if err != nil {
		return nil, err
	}
	coldB := gate.CrossoverBytes
	res := &RdmaResult{Gate: gate}

	// Protocol table: payload sizes bracketing both crossovers.
	coldE := int((coldB + mpi.WordBytes - 1) / mpi.WordBytes)
	seen := map[int]bool{}
	for _, e := range []int{1, coldE / 8, coldE / 4, coldE / 2, coldE - 1, coldE, 2 * coldE, 8 * coldE} {
		if e < 1 || seen[e] {
			continue
		}
		seen[e] = true
		pt, err := rdmaProtoCell(params, pm, hops, e)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}

	// The runtime's automatic switch must land exactly on the model's
	// crossover, quantized to whole 8-byte elements.
	measured, err := rdmaMeasureCrossover(params, pm, hops, coldE)
	if err != nil {
		return nil, err
	}
	if measured != int64(coldE) {
		return nil, fmt.Errorf("bench: rdmasweep: auto protocol switched at %d elems, model crossover is %d bytes = %d elems",
			measured, coldB, coldE)
	}
	res.Gate.CrossoverElems = measured

	// Registration-cache pressure: overflow the LRU and observe the
	// eviction turn a would-be hit back into a cold registration.
	stats, err := rdmaCachePressure(params, pm, hops)
	if err != nil {
		return nil, err
	}
	res.CacheStats = stats

	// Five-fabric Table-2-style comparison at the paper's best grain.
	mmN, swimN, cfftM := 128, 128, 9
	if quick {
		mmN, swimN, cfftM = 64, 64, 9
	}
	cells, err := rdmaFabricTable(Table2Benchmarks(mmN, swimN, cfftM), 4)
	if err != nil {
		return nil, err
	}
	res.Fabrics = cells
	return res, nil
}

// rdmaProtoCell times one payload size over all three charged paths on
// a fresh two-rank cluster, verifying payloads at the target and each
// measured time against the model exactly.
func rdmaProtoCell(params cluster.Params, pm interconnect.ProtocolModel, hops, elems int) (RdmaProtoPoint, error) {
	cl, err := cluster.New(2, params)
	if err != nil {
		return RdmaProtoPoint{}, err
	}
	w := mpi.NewWorld(cl)
	bytes := elems * mpi.WordBytes
	pt := RdmaProtoPoint{
		Elems:     elems,
		Bytes:     bytes,
		ModelRndv: pm.RendezvousTime(bytes, hops, false) < pm.EagerTime(bytes, hops),
	}
	region := make([]float64, elems)
	var verr error
	verify := func(label string, base float64) {
		for i := 0; i < elems && verr == nil; i++ {
			if got, want := region[i], base+float64(i); got != want {
				verr = fmt.Errorf("bench: rdmasweep %d elems %s payload: element %d = %v, want %v",
					elems, label, i, got, want)
			}
		}
	}
	put := func(p *mpi.Proc, win *mpi.Win, proto lmad.Protocol, base float64) sim.Time {
		data := make([]float64, elems)
		for i := range data {
			data[i] = base + float64(i)
		}
		d := mpi.ContigDesc(0, int64(elems))
		d.Region = "rdma-bench"
		d.Proto = proto
		t0 := cl.Clock(0)
		p.PutD(win, 1, d, data)
		return cl.Clock(0) - t0
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			p := w.Rank(rank)
			var local []float64
			if rank == 1 {
				local = region
			}
			win := p.WinCreate("rdma", local)
			// Eager first, over the same region key the rendezvous
			// transfers use: if the eager path warmed the cache, the
			// "cold" rendezvous below would come back warm and fail its
			// exactness check.
			if rank == 0 {
				pt.Eager = put(p, win, lmad.ProtoEager, 1)
			}
			p.Fence(win)
			if rank == 1 {
				verify("eager", 1)
			}
			p.Fence(win)
			if rank == 0 {
				pt.RndvCold = put(p, win, lmad.ProtoRndv, 1001)
			}
			p.Fence(win)
			if rank == 1 {
				verify("rndv-cold", 1001)
			}
			p.Fence(win)
			if rank == 0 {
				pt.RndvWarm = put(p, win, lmad.ProtoRndv, 2001)
			}
			p.Fence(win)
			if rank == 1 {
				verify("rndv-warm", 2001)
			}
			p.Fence(win)
		}(rank)
	}
	wg.Wait()
	if verr != nil {
		return RdmaProtoPoint{}, verr
	}
	for _, c := range []struct {
		label    string
		got, way sim.Time
	}{
		{"eager", pt.Eager, pm.EagerTime(bytes, hops)},
		{"rndv-cold", pt.RndvCold, pm.RendezvousTime(bytes, hops, false)},
		{"rndv-warm", pt.RndvWarm, pm.RendezvousTime(bytes, hops, true)},
	} {
		if c.got != c.way {
			return RdmaProtoPoint{}, fmt.Errorf("bench: rdmasweep %d elems: measured %s time %v, model says %v",
				elems, c.label, c.got, c.way)
		}
	}
	if pt.RndvWarm >= pt.RndvCold {
		return RdmaProtoPoint{}, fmt.Errorf("bench: rdmasweep %d elems: warm rendezvous %v not cheaper than cold %v",
			elems, pt.RndvWarm, pt.RndvCold)
	}
	return pt, nil
}

// rdmaMeasureCrossover binary-searches the smallest element count at
// which the runtime's automatic (unstamped) protocol choice takes the
// rendezvous path, probing each size with a charge-only PUT on a fresh
// cluster so every probe sees a cold registration cache.
func rdmaMeasureCrossover(params cluster.Params, pm interconnect.ProtocolModel, hops, hint int) (int64, error) {
	choseRndv := func(elems int) (bool, error) {
		cl, err := cluster.New(2, params)
		if err != nil {
			return false, err
		}
		p := mpi.NewWorld(cl).Rank(0)
		t0 := cl.Clock(0)
		p.ChargePutD(1, mpi.ContigDesc(0, int64(elems)))
		cost := cl.Clock(0) - t0
		bytes := elems * mpi.WordBytes
		switch cost {
		case pm.EagerTime(bytes, hops):
			return false, nil
		case pm.RendezvousTime(bytes, hops, false):
			return true, nil
		}
		return false, fmt.Errorf("bench: rdmasweep probe at %d elems cost %v, matching neither eager %v nor cold rendezvous %v",
			elems, cost, pm.EagerTime(bytes, hops), pm.RendezvousTime(bytes, hops, false))
	}
	hi := hint
	if hi < 1 {
		hi = 1
	}
	for {
		rndv, err := choseRndv(hi)
		if err != nil {
			return 0, err
		}
		if rndv {
			break
		}
		hi *= 2
		if hi > 1<<24 {
			return 0, fmt.Errorf("bench: rdmasweep: automatic choice never took rendezvous")
		}
	}
	lo := 0 // eager (or empty) below
	for lo+1 < hi {
		mid := (lo + hi) / 2
		rndv, err := choseRndv(mid)
		if err != nil {
			return 0, err
		}
		if rndv {
			hi = mid
		} else {
			lo = mid
		}
	}
	return int64(hi), nil
}

// rdmaCachePressure overflows the registration cache with distinct
// regions and checks the LRU behaved: the oldest region re-registers
// (cold cost) after eviction while a recent one still hits.
func rdmaCachePressure(params cluster.Params, pm interconnect.ProtocolModel, hops int) (interconnect.RegCacheStats, error) {
	cl, err := cluster.New(2, params)
	if err != nil {
		return interconnect.RegCacheStats{}, err
	}
	p := mpi.NewWorld(cl).Rank(0)
	const elems = 64
	bytes := elems * mpi.WordBytes
	cold := pm.RendezvousTime(bytes, hops, false)
	warm := pm.RendezvousTime(bytes, hops, true)
	charge := func(offset int64) sim.Time {
		d := mpi.ContigDesc(offset, elems)
		d.Region = "pressure"
		d.Proto = lmad.ProtoRndv
		t0 := cl.Clock(0)
		p.ChargePutD(1, d)
		return cl.Clock(0) - t0
	}
	cap := pm.RegCacheCapacity()
	// Fill the cache, then one more distinct region evicts region 0.
	for i := 0; i <= cap; i++ {
		if got := charge(int64(i) * elems); got != cold {
			return interconnect.RegCacheStats{}, fmt.Errorf("bench: rdmasweep cache fill %d: cost %v, want cold %v", i, got, cold)
		}
	}
	if got := charge(int64(cap) * elems); got != warm {
		return interconnect.RegCacheStats{}, fmt.Errorf("bench: rdmasweep: recent region missed the cache (cost %v, want warm %v)", got, warm)
	}
	if got := charge(0); got != cold {
		return interconnect.RegCacheStats{}, fmt.Errorf("bench: rdmasweep: evicted region still cached (cost %v, want cold %v)", got, cold)
	}
	st := cl.RegCache(0).Stats()
	if st.Evictions < 2 || st.Size != st.Cap {
		return interconnect.RegCacheStats{}, fmt.Errorf("bench: rdmasweep: cache stats %+v after overflow, want >= 2 evictions at full size", st)
	}
	return st, nil
}

// rdmaFabricTable prices the benchmark set at coarse grain on every
// fabric of the comparison.
func rdmaFabricTable(benchmarks map[string]string, procs int) ([]RdmaFabricCell, error) {
	var cells []RdmaFabricCell
	for _, fabric := range RdmaFabrics {
		params, err := cluster.ParamsForFabric(fabric)
		if err != nil {
			return nil, err
		}
		caps := params.Fabric.Caps().String()
		names := make([]string, 0, len(benchmarks))
		for name := range benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c, err := core.Compile(benchmarks[name], core.Options{NumProcs: procs, Grain: lmad.Coarse, Fabric: fabric})
			if err != nil {
				return nil, fmt.Errorf("bench: rdmasweep %s on %s: %w", name, fabric, err)
			}
			r, err := c.RunParallel(core.Timing)
			if err != nil {
				return nil, fmt.Errorf("bench: rdmasweep %s on %s: %w", name, fabric, err)
			}
			cells = append(cells, RdmaFabricCell{
				Fabric:    fabric,
				Caps:      caps,
				Benchmark: name,
				CommTime:  r.Report.TotalXferTime(),
				Elapsed:   r.Elapsed,
			})
		}
	}
	return cells, nil
}

// FormatRdmaSweep renders the sweep: the five-fabric comparison, the
// protocol table and the cache/crossover summary.
func FormatRdmaSweep(res *RdmaResult) string {
	var sb strings.Builder
	sb.WriteString("Communication time (s) by fabric, coarse grain (Table-2-style)\n")
	order := []string{}
	byBench := map[string]map[string]RdmaFabricCell{}
	for _, c := range res.Fabrics {
		if byBench[c.Benchmark] == nil {
			byBench[c.Benchmark] = map[string]RdmaFabricCell{}
			order = append(order, c.Benchmark)
		}
		byBench[c.Benchmark][c.Fabric] = c
	}
	sb.WriteString("Benchmark")
	for _, f := range RdmaFabrics {
		fmt.Fprintf(&sb, "\t%s", f)
	}
	sb.WriteByte('\n')
	for _, name := range order {
		fmt.Fprintf(&sb, "%s", name)
		for _, f := range RdmaFabrics {
			fmt.Fprintf(&sb, "\t%.5f", byBench[name][f].CommTime.Seconds())
		}
		sb.WriteByte('\n')
	}
	sb.WriteByte('\n')
	sb.WriteString("Eager/rendezvous protocol switch on rdma (payload-verified contiguous PUT, 2 ranks)\n")
	sb.WriteString("elems\tbytes\teager\t\trndv(cold)\trndv(warm)\twinner\tmodel\n")
	for _, p := range res.Points {
		model := "eager"
		if p.ModelRndv {
			model = "rndv"
		}
		fmt.Fprintf(&sb, "%d\t%d\t%-10v\t%-10v\t%-10v\t%s\t%s\n",
			p.Elems, p.Bytes, p.Eager, p.RndvCold, p.RndvWarm, p.Winner(), model)
	}
	fmt.Fprintf(&sb, "\ncrossover: cold %d bytes (measured switch at %d elems), warm %d bytes\n",
		res.Gate.CrossoverBytes, res.Gate.CrossoverElems, res.Gate.WarmCrossoverBytes)
	fmt.Fprintf(&sb, "registration cache: %d/%d entries, %d hits, %d misses, %d evictions under pressure\n",
		res.CacheStats.Size, res.CacheStats.Cap, res.CacheStats.Hits, res.CacheStats.Misses, res.CacheStats.Evictions)
	return sb.String()
}
