package bench

import (
	"math"
	"strings"
	"testing"

	"vbuscluster/internal/core"
	"vbuscluster/internal/lmad"
)

// ---- Benchmark sources compile and verify against each other ----

func TestMMSourceCorrect(t *testing.T) {
	c, err := core.Compile(MMSource(16), core.Options{NumProcs: 4, Grain: lmad.Coarse})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.RunSequential(core.Full)
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.RunParallel(core.Full)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range seq.Mem["C"] {
		if math.Abs(v-par.Mem["C"][i]) > 1e-9 {
			t.Fatalf("C[%d]: %g vs %g", i, v, par.Mem["C"][i])
		}
	}
}

func TestSwimSourceCorrect(t *testing.T) {
	c, err := core.Compile(SwimSource(20, 20), core.Options{NumProcs: 4, Grain: lmad.Fine})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.RunSequential(core.Full)
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.RunParallel(core.Full)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"PNEW", "UNEW", "VNEW", "CU", "CV", "Z", "H"} {
		s, p := seq.Mem[name], par.Mem[name]
		if len(s) == 0 || len(s) != len(p) {
			t.Fatalf("%s missing or size mismatch", name)
		}
		for i := range s {
			if math.Abs(s[i]-p[i]) > 1e-9*(1+math.Abs(s[i])) {
				t.Fatalf("%s[%d]: %g vs %g", name, i, s[i], p[i])
			}
		}
	}
}

func TestSwimHasParallelRegions(t *testing.T) {
	c, err := core.Compile(SwimSource(20, 20), core.Options{NumProcs: 4, Grain: lmad.Fine})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Report(), "parallel DO I") {
		t.Fatalf("SWIM loops not parallelized:\n%s", c.Report())
	}
}

func TestCFFTSourceCorrect(t *testing.T) {
	c, err := core.Compile(CFFTSource(7), core.Options{NumProcs: 4, Grain: lmad.Middle})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.RunSequential(core.Full)
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.RunParallel(core.Full)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 7
	w := par.Mem["W"]
	for i := 1; i <= n; i++ {
		wantC := math.Cos(math.Pi * float64(i-1) / float64(n))
		if math.Abs(w[2*i-2]-wantC) > 1e-6 {
			t.Fatalf("W(%d) = %g, want %g", 2*i-1, w[2*i-2], wantC)
		}
	}
	for i := range seq.Mem["W"] {
		if seq.Mem["W"][i] != w[i] {
			t.Fatalf("seq/par diverge at %d", i)
		}
	}
}

// ---- Table 1 shape ----

func TestTable1Shape(t *testing.T) {
	// 64² is still comm-dominated (like the paper's 256² cell, where 2
	// nodes manage only 1.086); 128² shows real scaling.
	rows, err := Table1([]int{64, 128}, []int{1, 2, 4}, lmad.Coarse, "")
	if err != nil {
		t.Fatal(err)
	}
	get := func(size, procs int) float64 {
		for _, r := range rows {
			if r.Size == size && r.Procs == procs {
				return r.Speedup
			}
		}
		t.Fatalf("missing cell %d/%d", size, procs)
		return 0
	}
	// 1 node lands just below 1 (SPMD overhead).
	for _, n := range []int{64, 128} {
		s1 := get(n, 1)
		if s1 >= 1.0 || s1 < 0.85 {
			t.Fatalf("size %d 1-node speedup = %.3f, want slightly below 1", n, s1)
		}
	}
	// Speedup grows with node count at the larger size.
	if !(get(128, 4) > get(128, 2) && get(128, 2) > get(128, 1)) {
		t.Fatalf("128² speedups not increasing: %v %v %v", get(128, 1), get(128, 2), get(128, 4))
	}
	if get(128, 4) < 1.5 {
		t.Fatalf("128² 4-node speedup %.3f too low", get(128, 4))
	}
	// Speedup grows with problem size (comm amortizes).
	if get(128, 4) <= get(64, 4) {
		t.Fatalf("4-node speedup should grow with size: %v vs %v", get(64, 4), get(128, 4))
	}
}

// ---- Table 2 shape (the §6 findings) ----

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(Table2Benchmarks(64, 64, 9), 4, "")
	if err != nil {
		t.Fatal(err)
	}
	get := func(sub string, g lmad.Grain) Table2Row {
		for _, r := range rows {
			if strings.HasPrefix(r.Benchmark, sub) && r.Grain == g {
				return r
			}
		}
		t.Fatalf("missing row %s/%v", sub, g)
		return Table2Row{}
	}
	// MM: coarse beats fine; middle is worse than fine (the paper's
	// §6 finding: "at the middle grain, communication cost increases").
	mmF, mmM, mmC := get("MM", lmad.Fine), get("MM", lmad.Middle), get("MM", lmad.Coarse)
	if !(mmC.CommTime < mmF.CommTime) {
		t.Fatalf("MM: coarse (%v) should beat fine (%v)", mmC.CommTime, mmF.CommTime)
	}
	if !(mmM.CommTime > mmF.CommTime) {
		t.Fatalf("MM: middle (%v) should be worse than fine (%v)", mmM.CommTime, mmF.CommTime)
	}
	// SWIM: same direction ("we obtained poor results at the Middle
	// grain... speedup in the communication time ... at the coarse").
	swF, swM, swC := get("Swim", lmad.Fine), get("Swim", lmad.Middle), get("Swim", lmad.Coarse)
	if !(swC.CommTime < swF.CommTime) {
		t.Fatalf("SWIM: coarse (%v) should beat fine (%v)", swC.CommTime, swF.CommTime)
	}
	if !(swM.CommTime > swF.CommTime) {
		t.Fatalf("SWIM: middle (%v) should be worse than fine (%v)", swM.CommTime, swF.CommTime)
	}
	// CFFT2INIT: stride-2 LMADs make middle profitable, coarse best.
	cfF, cfM, cfC := get("CFFT", lmad.Fine), get("CFFT", lmad.Middle), get("CFFT", lmad.Coarse)
	if !(cfM.CommTime < cfF.CommTime) {
		t.Fatalf("CFFT: middle (%v) should beat fine (%v)", cfM.CommTime, cfF.CommTime)
	}
	if !(cfC.CommTime <= cfM.CommTime) {
		t.Fatalf("CFFT: coarse (%v) should be best (middle %v)", cfC.CommTime, cfM.CommTime)
	}
}

func TestFormatting(t *testing.T) {
	rows, err := Table1([]int{16}, []int{1, 2}, lmad.Coarse, "")
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "16*16") || !strings.Contains(out, "# of Nodes") {
		t.Fatalf("table 1 render:\n%s", out)
	}
	rows2, err := Table2(map[string]string{"CFFT2INIT(M=6)": CFFTSource(6)}, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	out2 := FormatTable2(rows2)
	if !strings.Contains(out2, "fine\tmiddle\tcoarse") {
		t.Fatalf("table 2 render:\n%s", out2)
	}
}

// ---- §2 microbenchmarks ----

func TestMicroShapes(t *testing.T) {
	r, err := RunMicro()
	if err != nil {
		t.Fatal(err)
	}
	// SKWP ≈ 4x conventional for large messages.
	last := r.SKWPBandwidth[len(r.SKWPBandwidth)-1]
	ratio := last.SKWP / last.Conventional
	if ratio < 3 || ratio > 6 {
		t.Fatalf("SKWP/conventional = %.2f, want ~4", ratio)
	}
	// Wave pipelining degrades with hops; SKWP does not.
	first, lastD := r.WaveDegradation[0], r.WaveDegradation[len(r.WaveDegradation)-1]
	if lastD.Wave <= first.Wave {
		t.Fatal("wave interval did not degrade with hops")
	}
	if lastD.SKWP != first.SKWP {
		t.Fatal("SKWP interval changed with hops")
	}
	// V-Bus latency ~4x lower than Ethernet.
	lr := float64(r.LatencyEthernet) / float64(r.LatencyVBus)
	if lr < 3 || lr > 10 {
		t.Fatalf("latency ratio = %.2f, want ~4", lr)
	}
	// V-Bus broadcast beats the p2p tree and the Ethernet tree at every
	// payload.
	for _, p := range r.Broadcast {
		if p.VBus >= p.TreeP2P {
			t.Fatalf("bytes %d: v-bus (%v) should beat p2p tree (%v)", p.Bytes, p.VBus, p.TreeP2P)
		}
		if p.VBus >= p.Ethernet {
			t.Fatalf("bytes %d: v-bus (%v) should beat ethernet (%v)", p.Bytes, p.VBus, p.Ethernet)
		}
	}
	if !strings.Contains(r.String(), "SKWP bandwidth") {
		t.Fatal("report render broken")
	}
}

// The extension experiment quantifying the paper's §6 conclusion ("any
// single technique does not work for all types of communication
// patterns"): dense middle-grain transfers beat strided fine-grain PIO
// at small strides and lose at large ones. The crossover sits near
// PIOPerElement / wireTimePerElement + 1 ≈ 7 under the default
// calibration.
func TestCrossoverShape(t *testing.T) {
	points, err := Crossover(1<<12, []int{2, 4, 16, 32}, 4, "")
	if err != nil {
		t.Fatal(err)
	}
	get := func(s int) CrossoverPoint {
		for _, p := range points {
			if p.Stride == s {
				return p
			}
		}
		t.Fatalf("missing stride %d", s)
		return CrossoverPoint{}
	}
	for _, s := range []int{2, 4} {
		if p := get(s); p.Middle >= p.Fine {
			t.Fatalf("stride %d: middle (%v) should beat fine (%v)", s, p.Middle, p.Fine)
		}
	}
	for _, s := range []int{16, 32} {
		if p := get(s); p.Fine >= p.Middle {
			t.Fatalf("stride %d: fine (%v) should beat middle (%v)", s, p.Fine, p.Middle)
		}
	}
	// And the AutoGrain advisor must pick the right side of the
	// crossover in both regimes.
	for _, c := range []struct {
		stride int
		want   lmad.Grain
	}{{2, lmad.Middle}, {32, lmad.Fine}} {
		comp, err := core.Compile(StrideSource(1<<12, c.stride), core.Options{NumProcs: 4, AutoGrain: true})
		if err != nil {
			t.Fatal(err)
		}
		got := comp.Grain()
		// Middle and coarse tie on this kernel; accept either on the
		// dense side.
		if c.want == lmad.Middle && (got == lmad.Middle || got == lmad.Coarse) {
			continue
		}
		if got != c.want {
			t.Fatalf("stride %d: advisor chose %v, want %v", c.stride, got, c.want)
		}
	}
}

// ---- Cross-backend regression ----

// TestFabricOrdering pins the relative cost of the interconnect
// backends on the paper's MM benchmark: Fast Ethernet must be strictly
// more expensive than the V-Bus card at every granularity (the paper's
// "four times higher bandwidth and much lower latency" claim), and the
// ideal backend must report zero communication time (it isolates
// compute scaling).
func TestFabricOrdering(t *testing.T) {
	src := MMSource(256)
	xfer := func(fabric string, grain lmad.Grain) float64 {
		t.Helper()
		c, err := core.Compile(src, core.Options{NumProcs: 4, Grain: grain, Fabric: fabric})
		if err != nil {
			t.Fatalf("%s/%v: %v", fabric, grain, err)
		}
		res, err := c.RunParallel(core.Timing)
		if err != nil {
			t.Fatalf("%s/%v run: %v", fabric, grain, err)
		}
		return res.Report.TotalXferTime().Seconds()
	}
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		vbus := xfer("vbus", grain)
		eth := xfer("ethernet", grain)
		if eth <= vbus {
			t.Errorf("grain %v: ethernet comm %.6fs <= vbus comm %.6fs, want strictly higher", grain, eth, vbus)
		}
		if ideal := xfer("ideal", grain); ideal != 0 {
			t.Errorf("grain %v: ideal backend comm %.6fs, want 0", grain, ideal)
		}
	}
}

// TestFabricSameNumerics checks that swapping the interconnect changes
// only virtual time, never computed values: the full-mode MM result is
// bit-identical across backends.
func TestFabricSameNumerics(t *testing.T) {
	src := MMSource(16)
	var ref []float64
	for _, fabric := range []string{"vbus", "ethernet", "ideal"} {
		c, err := core.Compile(src, core.Options{NumProcs: 4, Grain: lmad.Coarse, Fabric: fabric})
		if err != nil {
			t.Fatalf("%s: %v", fabric, err)
		}
		res, err := c.RunParallel(core.Full)
		if err != nil {
			t.Fatalf("%s run: %v", fabric, err)
		}
		if ref == nil {
			ref = res.Mem["C"]
			continue
		}
		for i, v := range res.Mem["C"] {
			if v != ref[i] {
				t.Fatalf("%s: C[%d] = %g differs from vbus %g", fabric, i, v, ref[i])
			}
		}
	}
}
