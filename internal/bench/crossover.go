package bench

import (
	"fmt"
	"strings"

	"vbuscluster/internal/core"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/sim"
)

// StrideSource builds a synthetic kernel whose update LMAD has the
// given constant stride: W(s*I - s + 1) over I = 1..n touches every
// s-th element, read-modify-write so the region is ReadWrite (the
// scatter then covers the approximate collect boxes and the §5.6
// validity check permits coarse/middle collecting — a write-only
// strided kernel is always demoted to fine, by design). Sweeping s
// probes the §6 conclusion: which granularity wins depends on the
// access pattern.
func StrideSource(n, stride int) string {
	return fmt.Sprintf(`
      PROGRAM STRIDE
      INTEGER N, S
      PARAMETER (N = %d, S = %d)
      REAL W(S*N)
      INTEGER I
      DO I = 1, N
        W(S*I - S + 1) = W(S*I - S + 1) + 0.5
      ENDDO
      PRINT *, W(1)
      END
`, n, stride)
}

// CrossoverPoint is one stride's comm time under each granularity.
type CrossoverPoint struct {
	Stride    int
	Fine      sim.Time
	Middle    sim.Time
	Coarse    sim.Time
	BestGrain lmad.Grain
}

// Crossover sweeps the write stride and reports, per stride, the
// communication time at each granularity and the winner. The expected
// shape under the V-Bus cost model: fine (strided PIO) wins at very
// large strides where dense approximations ship mostly padding; middle
// and coarse win at small strides, where one dense DMA beats
// per-element programmed I/O — the crossover is where
// stride · wireTimePerElement ≈ PIOPerElement. fabric selects the
// interconnect backend ("" = default V-Bus; the crossover moves with
// the card's per-element vs per-message cost ratio).
func Crossover(n int, strides []int, procs int, fabric string) ([]CrossoverPoint, error) {
	var out []CrossoverPoint
	for _, s := range strides {
		pt := CrossoverPoint{Stride: s}
		best := sim.MaxTime
		for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
			c, err := core.Compile(StrideSource(n, s), core.Options{NumProcs: procs, Grain: grain, Fabric: fabric})
			if err != nil {
				return nil, fmt.Errorf("bench: stride %d: %w", s, err)
			}
			res, err := c.RunParallel(core.Timing)
			if err != nil {
				return nil, fmt.Errorf("bench: stride %d run: %w", s, err)
			}
			t := res.Report.TotalXferTime()
			switch grain {
			case lmad.Fine:
				pt.Fine = t
			case lmad.Middle:
				pt.Middle = t
			case lmad.Coarse:
				pt.Coarse = t
			}
			if t < best {
				best = t
				pt.BestGrain = grain
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatCrossover renders the sweep.
func FormatCrossover(points []CrossoverPoint) string {
	var sb strings.Builder
	sb.WriteString("Granularity crossover: comm time vs write stride (stride-s kernel)\n")
	sb.WriteString("stride\tfine\t\tmiddle\t\tcoarse\t\tbest\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%d\t%-10v\t%-10v\t%-10v\t%v\n", p.Stride, p.Fine, p.Middle, p.Coarse, p.BestGrain)
	}
	return sb.String()
}
