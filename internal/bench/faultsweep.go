package bench

// Fault sweep: the robustness experiment the reliable-transport layer
// enables. The same program runs under increasing flit-drop rates; the
// go-back-N retransmission keeps every payload byte-identical to the
// fault-free run while completion time grows monotonically with the
// injected rate (the injector's drop set at rate p is a subset of the
// set at any p' > p by construction).

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vbuscluster/internal/core"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// FaultSweepRow is one fault rate's outcome.
type FaultSweepRow struct {
	// Rate is the injected per-packet flit-drop probability.
	Rate float64
	// Elapsed is the run's virtual completion time.
	Elapsed sim.Time
	// CommTime is the total transfer time including retries.
	CommTime sim.Time
	// RetryTime and RetryOps aggregate the traced trace.OpRetry
	// intervals — the overhead the faulty fabric added.
	RetryTime sim.Time
	RetryOps  int
	// RetransBytes is the wire traffic re-sent by the go-back-N
	// protocol (the OpRetry events' payloads).
	RetransBytes int64
	// DeliveredMBps is delivered payload bandwidth: accounted bytes
	// over elapsed virtual time, in MB/s.
	DeliveredMBps float64
	// Verified reports that every final array matched the fault-free
	// run bit for bit.
	Verified bool
}

// FaultSweep runs MM(n) on procs ranks in full (data-moving) mode at
// each flit-drop rate, all derived from one seed, and verifies each
// run's final memory against the rate-0 baseline. fabric selects the
// interconnect backend ("" = default V-Bus).
func FaultSweep(n, procs int, seed uint64, rates []float64, fabric string) ([]FaultSweepRow, error) {
	src := MMSource(n)
	run := func(inj *fault.Injector) (map[string][]float64, FaultSweepRow, error) {
		rec := trace.New()
		c, err := core.Compile(src, core.Options{
			NumProcs: procs,
			Grain:    lmad.Fine,
			Fabric:   fabric,
			Recorder: rec,
			Faults:   inj,
		})
		if err != nil {
			return nil, FaultSweepRow{}, err
		}
		res, err := c.RunParallel(core.Full)
		if err != nil {
			return nil, FaultSweepRow{}, err
		}
		row := FaultSweepRow{
			Elapsed:  res.Elapsed,
			CommTime: res.Report.TotalXferTime(),
		}
		for _, ev := range rec.Events() {
			if ev.Op == trace.OpRetry {
				row.RetryOps++
				row.RetryTime += ev.Duration()
				row.RetransBytes += ev.Payload
			}
		}
		if res.Elapsed > 0 {
			bytes := float64(res.Report.TotalCommBytes())
			secs := float64(res.Elapsed) / float64(sim.Second)
			row.DeliveredMBps = bytes / (1 << 20) / secs
		}
		return res.Mem, row, nil
	}

	base, _, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("bench: fault-free baseline: %w", err)
	}
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	var rows []FaultSweepRow
	for _, rate := range sorted {
		var inj *fault.Injector
		if rate > 0 {
			inj, err = fault.FromString(fmt.Sprintf("seed=%d,flitdrop=%g", seed, rate))
			if err != nil {
				return nil, fmt.Errorf("bench: rate %g: %w", rate, err)
			}
		}
		mem, row, err := run(inj)
		if err != nil {
			return nil, fmt.Errorf("bench: rate %g: %w", rate, err)
		}
		row.Rate = rate
		row.Verified = memEqual(base, mem)
		rows = append(rows, row)
	}
	return rows, nil
}

// memEqual compares two final-memory snapshots bit for bit.
func memEqual(a, b map[string][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				return false
			}
		}
	}
	return true
}

// FormatFaultSweep renders the delivered-bandwidth / completion-time
// vs fault-rate table.
func FormatFaultSweep(rows []FaultSweepRow) string {
	var sb strings.Builder
	sb.WriteString("Fault sweep: completion time and delivered bandwidth vs flit-drop rate\n")
	sb.WriteString("rate\telapsed\tcomm\tretry-time\tretries\tresent-bytes\tMB/s\tpayload\n")
	for _, r := range rows {
		ok := "ok"
		if !r.Verified {
			ok = "CORRUPT"
		}
		fmt.Fprintf(&sb, "%g\t%v\t%v\t%v\t%d\t%d\t%.1f\t%s\n",
			r.Rate, r.Elapsed, r.CommTime, r.RetryTime, r.RetryOps, r.RetransBytes, r.DeliveredMBps, ok)
	}
	return sb.String()
}
