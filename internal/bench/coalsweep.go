package bench

import (
	"fmt"
	"strings"
	"sync"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/mpi"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
)

// CoalPoint is one cell of the pack-vs-PIO crossover sweep: a strided
// one-sided transfer of Elems elements at stride Stride, timed over
// the per-element PIO path and over the coalesced pack path on the
// same machine, with payloads verified element-for-element at the
// target after each run.
type CoalPoint struct {
	Elems, Stride int
	// PIO and Packed are the measured virtual times of one strided PUT
	// over each path.
	PIO, Packed sim.Time
	// PIOBW and PackedBW are the corresponding payload bandwidths in
	// MB/s of useful (non-padding) bytes.
	PIOBW, PackedBW float64
	// ModelPacks reports the nic.PackModel decision for this shape —
	// the coalescer packs exactly when this is true.
	ModelPacks bool
}

// Winner names the cheaper path of a point.
func (pt CoalPoint) Winner() string {
	if pt.Packed < pt.PIO {
		return "packed"
	}
	return "pio"
}

// CoalSweep measures the pack-vs-PIO crossover of the fabric directly
// at the MPI layer: for every element count × stride cell it builds a
// fresh two-rank cluster, PUTs the same strided region once over the
// programmed-I/O path and once over the coalesced pack path, verifies
// at the target that both paths delivered byte-identical payloads, and
// checks the measured times against the nic.PackModel decision (the
// packed path must be the cheaper one whenever the model says pack).
// fabric selects the interconnect backend ("" = default V-Bus).
func CoalSweep(elemCounts, strides []int, fabric string) ([]CoalPoint, error) {
	params := cluster.DefaultParams()
	if fabric != "" {
		var err error
		params, err = cluster.ParamsForFabric(fabric)
		if err != nil {
			return nil, err
		}
	}
	pm := nic.PackModelFor(params)
	var out []CoalPoint
	for _, elems := range elemCounts {
		for _, stride := range strides {
			if stride < 2 {
				return nil, fmt.Errorf("bench: coalsweep stride %d must be >= 2 (stride 1 is already contiguous DMA)", stride)
			}
			pt, err := coalCell(params, pm, elems, stride)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// coalCell times one (elems, stride) cell on a fresh cluster.
func coalCell(params cluster.Params, pm nic.PackModel, elems, stride int) (CoalPoint, error) {
	cl, err := cluster.New(2, params)
	if err != nil {
		return CoalPoint{}, err
	}
	w := mpi.NewWorld(cl)
	pt := CoalPoint{
		Elems:      elems,
		Stride:     stride,
		ModelPacks: pm.PackWins(elems, mpi.WordBytes, params.Hops(0, 1)),
	}
	span := (elems-1)*stride + 1
	region := make([]float64, span)
	var verr error
	verify := func(label string, base float64) {
		for i := 0; i < elems && verr == nil; i++ {
			if got, want := region[i*stride], base+float64(i); got != want {
				verr = fmt.Errorf("bench: coalsweep %dx%d %s payload: element %d = %v, want %v",
					elems, stride, label, i, got, want)
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			p := w.Rank(rank)
			var local []float64
			if rank == 1 {
				local = region
			}
			win := p.WinCreate("coal", local)
			if rank == 0 {
				data := make([]float64, elems)
				for i := range data {
					data[i] = 1 + float64(i)
				}
				t0 := cl.Clock(0)
				p.PutD(win, 1, mpi.StridedDesc(0, int64(elems), int64(stride)), data)
				pt.PIO = cl.Clock(0) - t0
			}
			p.Fence(win)
			if rank == 1 {
				verify("pio", 1)
			}
			p.Fence(win)
			if rank == 0 {
				data := make([]float64, elems)
				for i := range data {
					data[i] = 1001 + float64(i)
				}
				d := mpi.StridedDesc(0, int64(elems), int64(stride))
				d.Packed = true
				t0 := cl.Clock(0)
				p.PutD(win, 1, d, data)
				pt.Packed = cl.Clock(0) - t0
			}
			p.Fence(win)
			if rank == 1 {
				verify("packed", 1001)
			}
			p.Fence(win)
		}(rank)
	}
	wg.Wait()
	if verr != nil {
		return CoalPoint{}, verr
	}
	payload := float64(elems * mpi.WordBytes)
	secs := func(t sim.Time) float64 { return float64(t) / (1000 * float64(sim.Millisecond)) }
	if pt.PIO > 0 {
		pt.PIOBW = payload / secs(pt.PIO) / 1e6
	}
	if pt.Packed > 0 {
		pt.PackedBW = payload / secs(pt.Packed) / 1e6
	}
	if pt.ModelPacks && pt.Packed > pt.PIO {
		return CoalPoint{}, fmt.Errorf(
			"bench: coalsweep %dx%d: model packs but packed path measured slower (%v > %v)",
			elems, stride, pt.Packed, pt.PIO)
	}
	return pt, nil
}

// FormatCoalSweep renders the sweep as the crossover table: per cell
// the two measured times, the payload bandwidths, the measured winner
// and the cost-model decision.
func FormatCoalSweep(points []CoalPoint, fabric string) string {
	if fabric == "" {
		fabric = "vbus"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pack-and-coalesce crossover on %s (payload-verified strided PUT, 2 ranks)\n", fabric)
	sb.WriteString("elems\tstride\tpio\t\tpacked\t\tpioMB/s\tpackMB/s\twinner\tmodel\n")
	for _, p := range points {
		model := "pio"
		if p.ModelPacks {
			model = "packed"
		}
		fmt.Fprintf(&sb, "%d\t%d\t%-10v\t%-10v\t%.1f\t%.1f\t%s\t%s\n",
			p.Elems, p.Stride, p.PIO, p.Packed, p.PIOBW, p.PackedBW, p.Winner(), model)
	}
	return sb.String()
}
