package bench

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

// TestScaleSmoke is the CI scale gate (make scale-smoke): a 64-rank MM
// weak-scaling point on the 3D-torus fabric must complete — under the
// race detector in CI — and the process must stay far below the
// 1024-rank acceptance budget: < 512 MB at 64 ranks.
func TestScaleSmoke(t *testing.T) {
	rows, err := ScaleSweep([]string{"MM"}, []int{64}, []string{"vbus3d"})
	if err != nil {
		t.Fatalf("ScaleSweep: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Benchmark != "MM" || r.Fabric != "vbus3d" || r.Ranks != 64 || r.Problem != 64 {
		t.Fatalf("row identity wrong: %+v", r)
	}
	if r.VirtualSec <= 0 {
		t.Errorf("virtual time not positive: %v", r.VirtualSec)
	}
	if r.CommOps <= 0 {
		t.Errorf("no comm ops charged: %d", r.CommOps)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const budget = 512 << 20
	if ms.Sys > budget {
		t.Errorf("memory high-water %d bytes exceeds %d budget", ms.Sys, budget)
	}
	if r.PeakRSSBytes > budget {
		t.Errorf("row peak RSS %d bytes exceeds %d budget", r.PeakRSSBytes, budget)
	}
}

// The sweep must price the same program differently on different
// fabrics, and identically on repeated runs of the same fabric
// (virtual time is deterministic even though wall time is not).
func TestScaleSweepFabricsDiffer(t *testing.T) {
	rows, err := ScaleSweep([]string{"MM"}, []int{16}, []string{"vbus", "vbus3d", "ethernet", "ideal"})
	if err != nil {
		t.Fatalf("ScaleSweep: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	virt := map[string]float64{}
	for _, r := range rows {
		virt[r.Fabric] = r.VirtualSec
	}
	if virt["ideal"] >= virt["ethernet"] {
		t.Errorf("ideal (%v) should beat ethernet (%v)", virt["ideal"], virt["ethernet"])
	}
	if virt["vbus"] >= virt["ethernet"] {
		t.Errorf("vbus (%v) should beat ethernet (%v)", virt["vbus"], virt["ethernet"])
	}
	again, err := ScaleSweep([]string{"MM"}, []int{16}, []string{"vbus3d"})
	if err != nil {
		t.Fatalf("ScaleSweep rerun: %v", err)
	}
	if again[0].VirtualSec != virt["vbus3d"] {
		t.Errorf("vbus3d virtual time not deterministic: %v vs %v", again[0].VirtualSec, virt["vbus3d"])
	}
}

func TestScaleSweepUnknownBenchmark(t *testing.T) {
	if _, err := ScaleSweep([]string{"LINPACK"}, []int{4}, []string{""}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestCoreBenchShape(t *testing.T) {
	rows, err := CoreBench("")
	if err != nil {
		t.Fatalf("CoreBench: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Ranks != 4 {
			t.Errorf("%s: ranks = %d, want 4", r.Benchmark, r.Ranks)
		}
		if r.VirtualSec <= 0 || r.WallSec <= 0 {
			t.Errorf("%s: non-positive times: %+v", r.Benchmark, r)
		}
		if r.CommOps <= 0 {
			t.Errorf("%s: no comm ops", r.Benchmark)
		}
	}
}

func TestWriteJSONEnvelope(t *testing.T) {
	var buf bytes.Buffer
	rows := []ScaleRow{{Benchmark: "MM", Fabric: "vbus3d", Ranks: 4, Problem: 4}}
	if err := WriteJSON(&buf, "vbbench-scalesweep/v1", rows); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var env struct {
		Schema string     `json:"schema"`
		Rows   []ScaleRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if env.Schema != "vbbench-scalesweep/v1" || len(env.Rows) != 1 || env.Rows[0].Fabric != "vbus3d" {
		t.Fatalf("envelope mangled: %+v", env)
	}
}
