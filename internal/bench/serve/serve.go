// Package serve benchmarks the vbserve job service: a closed-loop
// client sweep and the core-baseline regression gate. It lives below
// internal/bench so the bench package itself stays importable from
// the jobs package's tests (bench must not import jobs).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/jobs"
)

// ServeRow is one closed-loop load level against an in-process job
// server: Clients loops of submit-and-wait over the mixed
// MM/SWIM/CFFT2INIT workload.
type ServeRow struct {
	Clients  int `json:"clients"`
	Clusters int `json:"clusters"`
	// Jobs is the number of jobs completed at this level.
	Jobs int `json:"jobs"`
	// WallSec is the host wall time of the whole level.
	WallSec float64 `json:"wall_seconds"`
	// JobsPerSec is the sustained service throughput.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// P50TotalMs / P99TotalMs are submit-to-done latency quantiles.
	P50TotalMs float64 `json:"p50_total_ms"`
	P99TotalMs float64 `json:"p99_total_ms"`
	// CacheHitRate is the plan cache's hit fraction over the level.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// ColdCompiles counts front-end pipeline executions; with three
	// distinct programs it should stay 3 however many jobs ran.
	ColdCompiles int64 `json:"cold_compiles"`
}

// serveWorkload is the mixed job stream: the paper's trio at modest
// sizes, cycled per submission so every client interleaves programs.
func serveWorkload() []jobs.Spec {
	return []jobs.Spec{
		{Source: bench.MMSource(48), Procs: 4, Tenant: "sweep"},
		{Source: bench.SwimSource(64, 64), Procs: 4, Tenant: "sweep"},
		{Source: bench.CFFTSource(9), Procs: 4, Tenant: "sweep"},
	}
}

// ServeSweep drives a closed-loop workload against an in-process
// server at each client count: every client submits a job, waits for
// it, and immediately submits the next, jobsPerClient times. A fresh
// server per level makes levels independent (each pays exactly three
// cold compiles, then runs hot).
func ServeSweep(clientLevels []int, jobsPerClient, clusters int) ([]ServeRow, error) {
	mix := serveWorkload()
	var rows []ServeRow
	for _, clients := range clientLevels {
		srv := jobs.New(jobs.Config{
			Clusters: clusters,
			// The queue must absorb every client's one outstanding job:
			// closed-loop clients never trigger shedding by construction.
			QueueDepth: clients + 1,
		})
		var (
			mu     sync.Mutex
			totals []float64
			firstE error
		)
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < jobsPerClient; i++ {
					j, err := srv.Submit(mix[(c+i)%len(mix)])
					if err == nil {
						<-j.Done()
						err = j.Err()
					}
					mu.Lock()
					if err != nil && firstE == nil {
						firstE = fmt.Errorf("bench: servesweep client %d job %d: %w", c, i, err)
					}
					if err == nil {
						totals = append(totals, j.Snapshot().TotalMs)
					}
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start).Seconds()
		if err := srv.Drain(context.Background()); err != nil {
			return nil, err
		}
		if firstE != nil {
			return nil, firstE
		}
		m := srv.Metrics()
		sort.Float64s(totals)
		row := ServeRow{
			Clients:      clients,
			Clusters:     clusters,
			Jobs:         len(totals),
			WallSec:      wall,
			P50TotalMs:   quantile(totals, 0.50),
			P99TotalMs:   quantile(totals, 0.99),
			CacheHitRate: m.Cache.HitRate,
			ColdCompiles: m.CompileColdMs.Count,
		}
		if wall > 0 {
			row.JobsPerSec = float64(row.Jobs) / wall
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// quantile reads the nearest-rank q-quantile from sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// FormatServeSweep renders the sweep as an aligned text table.
func FormatServeSweep(rows []ServeRow) string {
	var sb strings.Builder
	sb.WriteString("Service throughput (closed loop, MM48/SWIM64/CFFT9 mix, timing mode)\n")
	sb.WriteString("clients  clusters  jobs    wall(s)  jobs/s   p50(ms)  p99(ms)  hit-rate  cold\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8d %-9d %-7d %-8.3f %-8.1f %-8.3f %-8.3f %-9.3f %d\n",
			r.Clients, r.Clusters, r.Jobs, r.WallSec, r.JobsPerSec,
			r.P50TotalMs, r.P99TotalMs, r.CacheHitRate, r.ColdCompiles)
	}
	return sb.String()
}

// BenchGate re-runs the core baseline and compares it against the
// checked-in BENCH_core.json: any benchmark whose events/sec falls
// below baseline × (1 - tolerance) fails the gate. The current run
// takes the best of `runs` attempts so a noisy host does not fail a
// healthy build. When the baseline carries an "rdma" section
// (-rdmasweep), the rdma card's eager/rendezvous crossover is also
// recomputed and must match the checked-in row exactly — the
// crossover is a pure function of the card calibration, so any drift
// is a recalibration, not noise.
func BenchGate(baselinePath, fabric string, runs int, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: gate baseline: %w", err)
	}
	var envelope struct {
		Schema string             `json:"schema"`
		Rows   []bench.CoreRow    `json:"rows"`
		Rdma   *bench.RdmaGateRow `json:"rdma"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		return fmt.Errorf("bench: gate baseline %s: %w", baselinePath, err)
	}
	if len(envelope.Rows) == 0 {
		return fmt.Errorf("bench: gate baseline %s has no rows", baselinePath)
	}
	if envelope.Rdma != nil {
		cur, err := bench.RdmaGate()
		if err != nil {
			return err
		}
		if cur != *envelope.Rdma {
			return fmt.Errorf("bench: gate: rdma crossover drifted from baseline %+v to %+v (recalibrated card? rerun vbbench -rdmasweep)",
				*envelope.Rdma, cur)
		}
		fmt.Printf("bench-gate rdma        crossover cold=%dB warm=%dB switch=%delems cache=%d ok\n",
			cur.CrossoverBytes, cur.WarmCrossoverBytes, cur.CrossoverElems, cur.RegCacheEntries)
	}

	best := map[string]bench.CoreRow{}
	if runs < 1 {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		rows, err := bench.CoreBench(fabric)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if b, ok := best[r.Benchmark]; !ok || r.EventsPerSec > b.EventsPerSec {
				best[r.Benchmark] = r
			}
		}
	}

	var failures []string
	for _, base := range envelope.Rows {
		cur, ok := best[base.Benchmark]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", base.Benchmark))
			continue
		}
		floor := base.EventsPerSec * (1 - tolerance)
		verdict := "ok"
		if cur.EventsPerSec < floor {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f events/s vs baseline %.0f (floor %.0f)",
				base.Benchmark, cur.EventsPerSec, base.EventsPerSec, floor))
		}
		fmt.Printf("bench-gate %-11s baseline=%-9.0f current=%-9.0f floor=%-9.0f %s\n",
			base.Benchmark, base.EventsPerSec, cur.EventsPerSec, floor, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: gate failed (>%d%% regression): %s",
			int(tolerance*100), strings.Join(failures, "; "))
	}
	return nil
}
