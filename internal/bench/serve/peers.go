package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/jobs"
	"vbuscluster/internal/peer"
)

// PeerResult is the record of one federation sweep: a three-peer
// vbserve ring driven over real loopback sockets, one peer hard-killed
// mid-run, with the robustness claims asserted rather than eyeballed —
// ≥99% of submissions complete across the kill, and once the ring has
// rebalanced the warm hit rate recovers to ≥0.8. Like the chaos sweep,
// a violated claim is an error, so `vbbench -peersweep` doubles as a
// CI gate.
type PeerResult struct {
	Seed    uint64  `json:"seed"`
	Nodes   int     `json:"nodes"`
	Killed  string  `json:"killed"`
	WallSec float64 `json:"wall_seconds"`

	Submitted      int     `json:"jobs_submitted"`
	Completed      int     `json:"jobs_completed"`
	CompletionRate float64 `json:"completion_rate"`

	// Forwarding-plane counters summed over the survivors.
	Forwarded        int64 `json:"forwarded"`
	Failovers        int64 `json:"forward_failovers"`
	LocalFallbacks   int64 `json:"local_fallbacks"`
	ReceivedForwards int64 `json:"received_forwards"`

	// DetectMs is how long the survivors took to declare the killed
	// peer dead after the kill.
	DetectMs float64 `json:"detect_ms"`
	// PostKillHitRate is the plan-cache hit rate of the post-rebalance
	// phase: rerouted keys cold-compile once at their new owner, then
	// every later submission hits.
	PostKillHitRate float64 `json:"post_kill_hit_rate"`

	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
}

// peerNode is one in-process federation member behind a real TCP
// listener — forwarding, heartbeats and handoff all cross loopback.
type peerNode struct {
	addr string
	srv  *jobs.Server
	node *peer.Node
	hs   *http.Server
}

func (pn *peerNode) kill() {
	pn.hs.Close()
	pn.node.Stop()
	pn.srv.Drain(context.Background())
}

func (pn *peerNode) shutdown() {
	pn.node.Shutdown(context.Background())
	pn.hs.Close()
	pn.srv.Drain(context.Background())
}

// peerSubmit posts one spec through an entry node with ?wait=1 and
// reports whether it completed and whether the plan came from a warm
// cache.
func peerSubmit(addr string, sp jobs.Spec) (done, hit bool, err error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return false, false, err
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/jobs?wait=1", addr),
		"application/json", strings.NewReader(string(body)))
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return false, false, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var v jobs.View
	if err := json.Unmarshal(data, &v); err != nil {
		return false, false, err
	}
	return v.State == jobs.StateDone, v.CacheHit, nil
}

// PeerSweep runs the three-peer federation scenario end to end:
// phase A floods the ring through every entry node (each program
// compiles exactly once, at its key's owner); one peer is then
// hard-killed and a failover phase submits through the survivors while
// the detector is still converging (hedged forwarding or local
// fallback must complete every job); once both survivors declare the
// victim dead, the rebalance phase asserts the warm hit rate
// recovered. The seed parameterizes forwarder jitter. Listener ports
// are kernel-assigned, so ring placement (and thus which node dies)
// varies run to run — the claims hold for any placement.
func PeerSweep(seed uint64) (*PeerResult, error) {
	res := &PeerResult{Seed: seed, Nodes: 3}
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	res.GoroutinesBefore = runtime.NumGoroutine()
	start := time.Now()

	// Bind first so every node knows the full member list.
	lns := make([]net.Listener, res.Nodes)
	addrs := make([]string, res.Nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*peerNode, res.Nodes)
	for i := range lns {
		srv := jobs.New(jobs.Config{Clusters: 2, QueueDepth: 32})
		nd, err := peer.NewNode(srv, peer.Options{
			Self:           addrs[i],
			Peers:          addrs,
			GossipInterval: 50 * time.Millisecond,
			SuspectAfter:   150 * time.Millisecond,
			DeadAfter:      400 * time.Millisecond,
			AttemptTimeout: 10 * time.Second,
			Backoff:        5 * time.Millisecond,
			HedgeDelay:     50 * time.Millisecond,
			Seed:           seed + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: nd.Handler()}
		go hs.Serve(lns[i])
		nd.Start()
		nodes[i] = &peerNode{addr: addrs[i], srv: srv, node: nd, hs: hs}
	}

	mix := []jobs.Spec{
		{Source: bench.MMSource(16), Procs: 4, Tenant: "sweep"},
		{Source: bench.MMSource(20), Procs: 4, Tenant: "sweep"},
		{Source: bench.MMSource(24), Procs: 4, Tenant: "sweep"},
		{Source: bench.SwimSource(32, 32), Procs: 4, Tenant: "sweep"},
		{Source: bench.CFFTSource(7), Procs: 4, Tenant: "sweep"},
		{Source: bench.CFFTSource(8), Procs: 4, Tenant: "sweep"},
	}

	// Phase A: every program through every entry door, twice. After the
	// first round each program's plan is warm at its owner, whichever
	// door the job came in through.
	for round := 0; round < 2; round++ {
		for i, sp := range mix {
			res.Submitted++
			done, _, err := peerSubmit(nodes[(round+i)%len(nodes)].addr, sp)
			if err != nil {
				return nil, fmt.Errorf("peers: phase A job: %w", err)
			}
			if done {
				res.Completed++
			}
		}
	}

	// Hard-kill one peer — no drain, no handoff, the listener just
	// vanishes mid-run.
	victim := nodes[int(seed)%len(nodes)]
	var survivors []*peerNode
	for _, pn := range nodes {
		if pn != victim {
			survivors = append(survivors, pn)
		}
	}
	res.Killed = victim.addr
	victim.kill()
	killAt := time.Now()

	// Failover phase: submissions land while the survivors may still
	// believe the victim owns its keys. Forwarding must fail over to
	// the ring successor (or degrade to local compilation) — every job
	// still completes.
	for i, sp := range mix {
		res.Submitted++
		done, _, err := peerSubmit(survivors[i%len(survivors)].addr, sp)
		if err != nil {
			return nil, fmt.Errorf("peers: failover-phase job: %w", err)
		}
		if done {
			res.Completed++
		}
	}

	// Wait for both survivors to declare the victim dead (bounded).
	deadline := time.Now().Add(10 * time.Second)
	for _, s := range survivors {
		for {
			if st, ok := s.node.View().Peers[victim.addr]; ok && st.Status == peer.StatusDead {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("peers: survivor %s never declared %s dead", s.addr, victim.addr)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	res.DetectMs = float64(time.Since(killAt)) / float64(time.Millisecond)

	// Rebalance phase: routing is stable again. Rerouted keys cold-
	// compile at most once at their new owner; everything else hits.
	hits, rebal := 0, 0
	for round := 0; round < 3; round++ {
		for i, sp := range mix {
			res.Submitted++
			rebal++
			done, hit, err := peerSubmit(survivors[(round+i)%len(survivors)].addr, sp)
			if err != nil {
				return nil, fmt.Errorf("peers: rebalance-phase job: %w", err)
			}
			if done {
				res.Completed++
			}
			if hit {
				hits++
			}
		}
	}
	res.PostKillHitRate = float64(hits) / float64(rebal)

	// Graceful exit for the survivors, then the leak census.
	for _, s := range survivors {
		s.shutdown()
	}
	for _, pn := range nodes {
		res.Forwarded += pn.node.View().Forwarded
		res.Failovers += pn.node.View().ForwardFailovers
		res.LocalFallbacks += pn.node.View().LocalFallbacks
		res.ReceivedForwards += pn.node.View().ReceivedForwards
	}
	res.WallSec = time.Since(start).Seconds()

	res.CompletionRate = float64(res.Completed) / float64(res.Submitted)
	if res.CompletionRate < 0.99 {
		return nil, fmt.Errorf("peers: completion rate %.3f (%d/%d), want >= 0.99",
			res.CompletionRate, res.Completed, res.Submitted)
	}
	if res.PostKillHitRate < 0.8 {
		return nil, fmt.Errorf("peers: post-rebalance hit rate %.3f, want >= 0.8 (%d/%d hits)",
			res.PostKillHitRate, hits, rebal)
	}
	censusDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		res.GoroutinesAfter = runtime.NumGoroutine()
		if res.GoroutinesAfter <= res.GoroutinesBefore+8 {
			break
		}
		if time.Now().After(censusDeadline) {
			return nil, fmt.Errorf("peers: goroutines %d -> %d after shutdown (allowed +8)",
				res.GoroutinesBefore, res.GoroutinesAfter)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return res, nil
}

// FormatPeers renders the sweep result as a readable block.
func FormatPeers(r *PeerResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "peer sweep (seed %d, %d nodes, killed %s)\n", r.Seed, r.Nodes, r.Killed)
	fmt.Fprintf(&b, "  jobs        %d submitted, %d completed (%.1f%%)\n",
		r.Submitted, r.Completed, 100*r.CompletionRate)
	fmt.Fprintf(&b, "  forwarding  %d forwarded, %d failovers, %d local fallbacks, %d received\n",
		r.Forwarded, r.Failovers, r.LocalFallbacks, r.ReceivedForwards)
	fmt.Fprintf(&b, "  detection   victim dead after %.0fms\n", r.DetectMs)
	fmt.Fprintf(&b, "  cache       post-rebalance hit rate %.2f\n", r.PostKillHitRate)
	fmt.Fprintf(&b, "  goroutines  %d -> %d\n", r.GoroutinesBefore, r.GoroutinesAfter)
	fmt.Fprintf(&b, "  wall        %.2fs\n", r.WallSec)
	return b.String()
}
