package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/jobs"
)

// ChaosResult is the record of one seeded chaos sweep: a hostile
// workload — poison specs, worker kills, deadline storms, transient
// cluster faults, a rate-limited hostile tenant — driven against an
// in-process server, with every robustness claim asserted rather than
// eyeballed. The sweep fails (error, not a sad row) if any claim does
// not hold, so `vbbench -chaossweep` doubles as a CI gate.
type ChaosResult struct {
	Seed     uint64  `json:"seed"`
	WallSec  float64 `json:"wall_seconds"`
	Jobs     int64   `json:"jobs_submitted"`
	Done     int64   `json:"jobs_completed"`
	Failed   int64   `json:"jobs_failed"`
	Canceled int64   `json:"jobs_cancelled"`
	// Quarantined jobs were refused by the open circuit breaker after
	// the poison plan key tripped it.
	Quarantined     int64 `json:"jobs_quarantined"`
	RateLimited     int64 `json:"jobs_rate_limited"`
	Retries         int64 `json:"retries"`
	PanicsRecovered int64 `json:"panics_recovered"`
	BreakerTrips    int64 `json:"breaker_trips"`
	WorkersReplaced int64 `json:"workers_replaced"`
	// MaxOverrunMs is the worst observed lateness of a deadline
	// cancellation past the deadline itself (queueing + timer slop).
	MaxOverrunMs float64 `json:"max_deadline_overrun_ms"`
	// WarmHitRate is the plan-cache hit rate of the post-restart replay:
	// the crash-safe journal's proof of usefulness.
	WarmHitRate float64 `json:"warm_hit_rate"`
	// GoroutinesBefore/After bracket the sweep; After is sampled once
	// both servers have drained, proving nothing leaked.
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
}

// deadlineGrace is how late a deadline cancellation may land before
// the sweep calls it a violation. Generous because CI hosts running
// the race detector schedule timers lazily; the point is to catch a
// deadline that never fires, not a 100ms-late one.
const deadlineGrace = 2 * time.Second

// chaosConfig is the server shape under test: small enough that the
// sweep finishes in seconds, hostile-tenant rate limit included.
func chaosConfig() jobs.Config {
	return jobs.Config{
		Clusters:     2,
		QueueDepth:   32,
		MaxRetries:   2,
		RetryBackoff: 5 * time.Millisecond,
		TenantRates:  map[string]float64{"hostile": 1},
	}
}

// ChaosSweep runs the whole hostile scenario. The seed parameterizes
// the injected fault schedules, so a failure reproduces with the same
// seed. Phases, in order: clean warmup; poison specs until the breaker
// quarantines their plan key; worker-kill jobs; a deadline storm of
// stalled jobs; deterministic transient cluster faults that exhaust the
// retry budget; a 10:1 hostile-tenant flood against a rate limit; a
// drain + journal + restart + replay proving the cache survives; and a
// final goroutine census proving nothing leaked.
func ChaosSweep(seed uint64) (*ChaosResult, error) {
	res := &ChaosResult{Seed: seed}
	// Let earlier tests' stray goroutines settle before the baseline.
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	res.GoroutinesBefore = runtime.NumGoroutine()
	start := time.Now()

	dir, err := os.MkdirTemp("", "vbchaos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "plans.vbpj")

	mix := []jobs.Spec{
		{Source: bench.MMSource(24), Procs: 4, Tenant: "victim"},
		{Source: bench.SwimSource(32, 32), Procs: 4, Tenant: "victim"},
		{Source: bench.CFFTSource(8), Procs: 4, Tenant: "victim"},
	}

	srv := jobs.New(chaosConfig())

	// Phase 1: clean warmup — the cache fills with the mix's three plans.
	for round := 0; round < 2; round++ {
		for i, sp := range mix {
			if err := runJob(srv, sp, jobs.StateDone); err != nil {
				return nil, fmt.Errorf("chaos: warmup job %d: %w", i, err)
			}
		}
	}

	// Phase 2: poison. The same poison plan key panics its worker twice;
	// the breaker trips and the third submission is quarantined without
	// touching a worker. A distinct source keeps the quarantine away
	// from the clean mix.
	poison := jobs.Spec{
		Source: bench.MMSource(17), Procs: 2, Tenant: "victim",
		Faults: fmt.Sprintf("seed=%d,panicjob=1", seed),
	}
	for i := 0; i < 2; i++ {
		if err := runJob(srv, poison, jobs.StateFailed); err != nil {
			return nil, fmt.Errorf("chaos: poison job %d: %w", i, err)
		}
	}
	if err := runJob(srv, poison, jobs.StateQuarantined); err != nil {
		return nil, fmt.Errorf("chaos: poison job post-trip: %w", err)
	}
	m := srv.Metrics()
	if m.PanicsRecovered < 2 || m.BreakerTrips < 1 || m.Quarantined < 1 {
		return nil, fmt.Errorf("chaos: breaker did not engage: panics=%d trips=%d quarantined=%d",
			m.PanicsRecovered, m.BreakerTrips, m.Quarantined)
	}
	// Capacity must be intact after the panics killed two workers.
	if err := runJob(srv, mix[0], jobs.StateDone); err != nil {
		return nil, fmt.Errorf("chaos: clean job after panics: %w", err)
	}

	// Phase 3: worker kills. The job assassinates two workers, re-queues
	// itself each time, and still completes.
	killer := mix[1]
	killer.Faults = fmt.Sprintf("seed=%d,killworker=2", seed)
	if err := runJob(srv, killer, jobs.StateDone); err != nil {
		return nil, fmt.Errorf("chaos: killworker job: %w", err)
	}
	if got := srv.Metrics().WorkersReplaced; got < 4 {
		return nil, fmt.Errorf("chaos: workers replaced = %d, want >= 4 (2 panics + 2 kills)", got)
	}

	// Phase 4: deadline storm. Six stalled jobs against a 40ms deadline
	// on two workers: every one must come back cancelled, none much
	// later than its deadline.
	type admitted struct {
		j  *jobs.Job
		at time.Time
	}
	var storm []admitted
	const stormDeadline = 40 * time.Millisecond
	for i := 0; i < 6; i++ {
		sp := mix[i%len(mix)]
		sp.DeadlineMs = int(stormDeadline / time.Millisecond)
		sp.Faults = "stalljob=500ms"
		j, err := srv.Submit(sp)
		if err != nil {
			return nil, fmt.Errorf("chaos: storm submit %d: %w", i, err)
		}
		storm = append(storm, admitted{j, time.Now()})
	}
	for i, a := range storm {
		<-a.j.Done()
		v := a.j.Snapshot()
		if v.State != jobs.StateCancelled {
			return nil, fmt.Errorf("chaos: storm job %d ended %q, want cancelled (%v)", i, v.State, a.j.Err())
		}
		overrun := time.Since(a.at) - stormDeadline
		if overrun > deadlineGrace {
			return nil, fmt.Errorf("chaos: storm job %d overran its deadline by %v (grace %v)", i, overrun, deadlineGrace)
		}
		if ms := overrun.Seconds() * 1e3; ms > res.MaxOverrunMs {
			res.MaxOverrunMs = ms
		}
	}

	// Phase 5: transient cluster faults. A deterministic rank crash
	// fails every attempt, so the job burns its full retry budget and
	// lands failed — the retries counter proves the backoff path ran.
	crashy := mix[2]
	crashy.Faults = fmt.Sprintf("seed=%d,crash=1@10us", seed|1)
	if err := runJob(srv, crashy, jobs.StateFailed); err != nil {
		return nil, fmt.Errorf("chaos: transient-fault job: %w", err)
	}
	if got := srv.Metrics().Retries; got < 2 {
		return nil, fmt.Errorf("chaos: retries = %d, want >= 2 (full budget)", got)
	}

	// Phase 6: hostile tenant. Twenty rapid-fire submissions from a
	// tenant limited to 1 job/s, interleaved with the victim's normal
	// work: the victim completes everything, the hostile tenant is
	// mostly rate-limited at admission and never occupies queue slots.
	var hostileAdmitted, hostileLimited int
	for i := 0; i < 20; i++ {
		sp := mix[i%len(mix)]
		sp.Tenant = "hostile"
		j, err := srv.Submit(sp)
		switch {
		case errors.Is(err, jobs.ErrRateLimited):
			hostileLimited++
		case err != nil:
			return nil, fmt.Errorf("chaos: hostile submit %d: %w", i, err)
		default:
			hostileAdmitted++
			<-j.Done()
		}
		if i%10 == 9 {
			if err := runJob(srv, mix[i%len(mix)], jobs.StateDone); err != nil {
				return nil, fmt.Errorf("chaos: victim job during flood: %w", err)
			}
		}
	}
	if hostileLimited == 0 {
		return nil, fmt.Errorf("chaos: hostile tenant was never rate-limited (%d admitted)", hostileAdmitted)
	}
	if ra := srv.RetryAfterSeconds(); ra < 1 || ra > 30 {
		return nil, fmt.Errorf("chaos: Retry-After estimate %d out of [1,30]", ra)
	}

	// Phase 7: drain, journal, restart warm, replay. The replay must be
	// nearly all cache hits — the journal carried the working set across
	// the restart.
	if err := srv.Drain(context.Background()); err != nil {
		return nil, fmt.Errorf("chaos: drain: %w", err)
	}
	m = srv.Metrics()
	res.Jobs = m.Submitted
	res.Done = m.Completed
	res.Failed = m.Failed
	res.Canceled = m.Cancelled
	res.Quarantined = m.Quarantined
	res.RateLimited = m.RateLimited
	res.Retries = m.Retries
	res.PanicsRecovered = m.PanicsRecovered
	res.BreakerTrips = m.BreakerTrips
	res.WorkersReplaced = m.WorkersReplaced
	if err := srv.SaveCache(journal); err != nil {
		return nil, fmt.Errorf("chaos: save journal: %w", err)
	}

	srv2 := jobs.New(chaosConfig())
	warmed, err := srv2.WarmCache(journal)
	if err != nil {
		return nil, fmt.Errorf("chaos: warm cache: %w", err)
	}
	if warmed < len(mix) {
		return nil, fmt.Errorf("chaos: warmed %d plans, want >= %d", warmed, len(mix))
	}
	for round := 0; round < 4; round++ {
		for i, sp := range mix {
			if err := runJob(srv2, sp, jobs.StateDone); err != nil {
				return nil, fmt.Errorf("chaos: replay job %d: %w", i, err)
			}
		}
	}
	if err := srv2.Drain(context.Background()); err != nil {
		return nil, fmt.Errorf("chaos: drain restarted server: %w", err)
	}
	res.WarmHitRate = srv2.Metrics().Cache.HitRate
	if res.WarmHitRate < 0.9 {
		return nil, fmt.Errorf("chaos: post-restart hit rate %.2f, want >= 0.9", res.WarmHitRate)
	}

	// Phase 8: goroutine census. Both servers are drained; give late
	// timer goroutines a moment, then require the count back near the
	// baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		res.GoroutinesAfter = runtime.NumGoroutine()
		if res.GoroutinesAfter <= res.GoroutinesBefore+8 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if res.GoroutinesAfter > res.GoroutinesBefore+8 {
		return nil, fmt.Errorf("chaos: goroutine leak: %d before, %d after drain",
			res.GoroutinesBefore, res.GoroutinesAfter)
	}

	res.WallSec = time.Since(start).Seconds()
	return res, nil
}

// runJob submits sp, waits, and checks the terminal state.
func runJob(s *jobs.Server, sp jobs.Spec, want jobs.State) error {
	j, err := s.Submit(sp)
	if err != nil {
		return err
	}
	<-j.Done()
	if got := j.Snapshot().State; got != want {
		return fmt.Errorf("ended %q, want %q (err: %v)", got, want, j.Err())
	}
	return nil
}

// FormatChaos renders the sweep result as a readable block.
func FormatChaos(r *ChaosResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos sweep (seed %d): all invariants held in %.2fs\n", r.Seed, r.WallSec)
	fmt.Fprintf(&sb, "  jobs: %d submitted, %d done, %d failed, %d cancelled, %d quarantined, %d rate-limited\n",
		r.Jobs, r.Done, r.Failed, r.Canceled, r.Quarantined, r.RateLimited)
	fmt.Fprintf(&sb, "  faults absorbed: %d panics recovered, %d breaker trips, %d workers replaced, %d retries\n",
		r.PanicsRecovered, r.BreakerTrips, r.WorkersReplaced, r.Retries)
	fmt.Fprintf(&sb, "  worst deadline overrun: %.1fms; post-restart cache hit rate: %.2f\n",
		r.MaxOverrunMs, r.WarmHitRate)
	fmt.Fprintf(&sb, "  goroutines: %d before, %d after\n", r.GoroutinesBefore, r.GoroutinesAfter)
	return sb.String()
}
