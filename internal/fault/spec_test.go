package fault

import (
	"reflect"
	"strings"
	"testing"

	"vbuscluster/internal/sim"
)

func TestParseSpecTable(t *testing.T) {
	def := func(mut func(*Spec)) *Spec {
		s := &Spec{
			MTU:        DefaultMTU,
			Window:     DefaultWindow,
			MaxRetry:   DefaultMaxRetry,
			Backoff:    DefaultBackoff,
			BusTimeout: DefaultBusTimeout,
		}
		if mut != nil {
			mut(s)
		}
		return s
	}
	cases := []struct {
		in      string
		want    *Spec
		wantErr string
	}{
		{in: "seed=0", want: def(nil)},
		{in: "seed=42", want: def(func(s *Spec) { s.Seed = 42 })},
		{
			in: "seed=1,flitdrop=1e-3",
			want: def(func(s *Spec) {
				s.Seed = 1
				s.FlitDrop = 1e-3
			}),
		},
		{
			in: " seed=7 , corrupt=0.5 , busfail=1 ",
			want: def(func(s *Spec) {
				s.Seed = 7
				s.Corrupt = 0.5
				s.BusFail = 1
			}),
		},
		{
			in: "seed=1,linkdown=3-0@1ms+2us",
			want: def(func(s *Spec) {
				s.Seed = 1
				// Node pair is normalized to A <= B.
				s.LinkDowns = []LinkDown{{A: 0, B: 3, At: sim.Millisecond, Dur: 2 * sim.Microsecond}}
			}),
		},
		{
			in: "seed=1,slow=2*3.5,slow=0*2",
			want: def(func(s *Spec) {
				s.Seed = 1
				// Entries are sorted by rank.
				s.Slows = []Slow{{Rank: 0, Factor: 2}, {Rank: 2, Factor: 3.5}}
			}),
		},
		{
			in: "seed=1,crash=1@500us",
			want: def(func(s *Spec) {
				s.Seed = 1
				s.Crashes = []Crash{{Rank: 1, At: 500 * sim.Microsecond}}
			}),
		},
		{
			in: "seed=1,deadline=2ms,mtu=512,window=8,maxretry=3,backoff=1us,bustimeout=50us",
			want: def(func(s *Spec) {
				s.Seed = 1
				s.Deadline = 2 * sim.Millisecond
				s.MTU = 512
				s.Window = 8
				s.MaxRetry = 3
				s.Backoff = sim.Microsecond
				s.BusTimeout = 50 * sim.Microsecond
			}),
		},
		{in: "", wantErr: "empty spec"},
		{in: "   ", wantErr: "empty spec"},
		{in: "seed=1,,flitdrop=0.1", wantErr: "empty field"},
		{in: "seed", wantErr: "not key=value"},
		{in: "seed=", wantErr: "not key=value"},
		{in: "seed=abc", wantErr: "invalid syntax"},
		{in: "seed=-1", wantErr: "invalid syntax"},
		{in: "bogus=1", wantErr: "unknown key"},
		{in: "flitdrop=1.5", wantErr: "outside [0,1]"},
		{in: "flitdrop=-0.1", wantErr: "outside [0,1]"},
		{in: "corrupt=NaN", wantErr: "outside [0,1]"},
		{in: "linkdown=0-1", wantErr: "missing @"},
		{in: "linkdown=0@1ms+1ms", wantErr: "missing A-B"},
		{in: "linkdown=0-1@1ms", wantErr: "missing +duration"},
		{in: "linkdown=0-0@1ms+1ms", wantErr: "self-link"},
		{in: "linkdown=0-1@1ms+0ms", wantErr: "must be positive"},
		{in: "linkdown=-1-2@1ms+1ms", wantErr: "invalid syntax"},
		{in: "slow=1", wantErr: "missing *factor"},
		{in: "slow=1*0.5", wantErr: "must be >= 1"},
		{in: "slow=-1*2", wantErr: "non-negative"},
		{in: "crash=1", wantErr: "missing @time"},
		{in: "crash=-1@1ms", wantErr: "non-negative"},
		{in: "deadline=5", wantErr: "suffix"},
		{in: "deadline=5m", wantErr: "suffix"},
		{in: "deadline=-5ms", wantErr: "negative"},
		{in: "mtu=0", wantErr: "must be positive"},
		{in: "window=-2", wantErr: "must be positive"},
		{in: "maxretry=-1", wantErr: "must be >= 0"},
		{in: "backoff=1x", wantErr: "suffix"},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error containing %q, got %+v", tc.in, tc.wantErr, got)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseSpec(%q): error %q does not contain %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): unexpected error %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseSpec(%q):\n got  %+v\n want %+v", tc.in, got, tc.want)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []string{
		"seed=0",
		"seed=42,flitdrop=0.001,corrupt=0.0005,busfail=0.01",
		"seed=1,linkdown=0-1@1ms+2ms,linkdown=2-3@0ps+5us",
		"seed=9,slow=1*2,crash=2@40ms,deadline=1s",
		"seed=3,mtu=128,window=2,maxretry=1,backoff=500ns,bustimeout=1ms",
		"seed=0,crashafter=1/120",
		"seed=7,crash=3@80ms,crashafter=2/0,crashafter=1/64",
	}
	for _, in := range specs {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		again, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q -> %q): %v", in, s.String(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Errorf("round trip of %q via %q:\n got  %+v\n want %+v", in, s.String(), again, s)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
		ok   bool
	}{
		{"0ps", 0, true},
		{"1ps", sim.Picosecond, true},
		{"250ns", 250 * sim.Nanosecond, true},
		{"1.5us", 1500 * sim.Nanosecond, true},
		{"2ms", 2 * sim.Millisecond, true},
		{"3s", 3 * sim.Second, true},
		{"", 0, false},
		{"5", 0, false},
		{"5m", 0, false},
		{"ns", 0, false},
		{"-1ms", 0, false},
		{"nans", 0, false},
		{"infs", 0, false},
		{"1e12s", 0, false}, // overflows sim.Time
	}
	for _, tc := range cases {
		got, err := ParseDuration(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseDuration(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseDuration(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFormatDurationRoundTrip(t *testing.T) {
	for _, d := range []sim.Time{
		0, 1, 999, 1000, 1500, sim.Nanosecond, 72 * sim.Nanosecond,
		sim.Microsecond, 28 * sim.Microsecond, sim.Millisecond,
		sim.Second, 3*sim.Second + sim.Picosecond,
	} {
		s := FormatDuration(d)
		got, err := ParseDuration(s)
		if err != nil {
			t.Fatalf("ParseDuration(FormatDuration(%d) = %q): %v", d, s, err)
		}
		if got != d {
			t.Errorf("round trip %d -> %q -> %d", d, s, got)
		}
	}
}

// FuzzParseFaultSpec asserts the parser never panics, and that any
// accepted spec is replayable: its canonical String() re-parses to an
// identical Spec (the property the fault injector's determinism
// guarantee rests on).
func FuzzParseFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"seed=1",
		"seed=42,flitdrop=1e-3,corrupt=5e-4,busfail=0.01",
		"seed=1,linkdown=0-1@1ms+2ms,slow=2*3,crash=1@40ms",
		"seed=1,deadline=2ms,mtu=512,window=8,maxretry=3,backoff=1us,bustimeout=50us",
		"seed=1,crashafter=1/40,crashafter=0/7",
		"seed=1,panicjob=1",
		"seed=7,stalljob=50ms,killworker=2",
		"seed=0,panicjob=true,stalljob=1500us",
		"panicjob=2,stalljob=-1ms,killworker=0",
		"seed=,flitdrop=",
		"linkdown=0-1@+",
		"slow=*,crash=@",
		"crashafter=/,crashafter=1/-2",
		"deadline=999999999999s",
		"seed=1,,seed=2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return
		}
		canon := spec.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, in, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("canonical form %q is not a fixed point:\n got  %+v\n want %+v", canon, again, spec)
		}
		if again.String() != canon {
			t.Fatalf("String() not stable: %q vs %q", again.String(), canon)
		}
	})
}

func TestServerChaosTokens(t *testing.T) {
	spec, err := ParseSpec("seed=3,stalljob=50ms,panicjob=1,killworker=2")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.PanicJob {
		t.Error("PanicJob = false")
	}
	if spec.StallJob != 50*sim.Millisecond {
		t.Errorf("StallJob = %v, want 50ms", spec.StallJob)
	}
	if spec.KillWorker != 2 {
		t.Errorf("KillWorker = %d, want 2", spec.KillWorker)
	}
	want := "seed=3,panicjob=1,stalljob=50ms,killworker=2"
	if got := spec.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	for _, bad := range []string{
		"seed=1,panicjob=maybe",
		"seed=1,stalljob=5m",
		"seed=1,killworker=0",
		"seed=1,killworker=-1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

func TestCrashAfter(t *testing.T) {
	inj, err := FromString("seed=0,crashafter=2/40,crashafter=2/15,crashafter=0/0")
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Enabled() {
		t.Error("crashafter alone should enable the injector")
	}
	if !inj.HasCrashAfter() {
		t.Error("HasCrashAfter() = false")
	}
	// Duplicate entries keep the earliest threshold.
	if got := inj.CrashAfterOps(2); got != 15 {
		t.Errorf("CrashAfterOps(2) = %d, want 15", got)
	}
	if got := inj.CrashAfterOps(0); got != 0 {
		t.Errorf("CrashAfterOps(0) = %d, want 0", got)
	}
	// Unscheduled and out-of-range ranks never crash by count.
	for _, r := range []int{1, 3, -1} {
		if got := inj.CrashAfterOps(r); got != -1 {
			t.Errorf("CrashAfterOps(%d) = %d, want -1", r, got)
		}
	}
	// The nil injector is inert.
	var nilInj *Injector
	if nilInj.HasCrashAfter() || nilInj.CrashAfterOps(0) != -1 {
		t.Error("nil injector must report no crashafter faults")
	}
	// Rejections: malformed and negative forms.
	for _, bad := range []string{"seed=1,crashafter=1", "seed=1,crashafter=-1/5", "seed=1,crashafter=1/-5", "seed=1,crashafter=a/b"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}
