package fault

import (
	"testing"

	"vbuscluster/internal/sim"
)

func mustInjector(t *testing.T, spec string) *Injector {
	t.Helper()
	inj, err := FromString(spec)
	if err != nil {
		t.Fatalf("FromString(%q): %v", spec, err)
	}
	return inj
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Error("nil injector reports Enabled")
	}
	if f := inj.PacketFate(0, 1, 2, 0); f != Delivered {
		t.Errorf("nil PacketFate = %v", f)
	}
	if inj.BusAcquireFail(0, 0) {
		t.Error("nil BusAcquireFail = true")
	}
	if got := inj.SlowFactor(3); got != 1 {
		t.Errorf("nil SlowFactor = %g", got)
	}
	if got := inj.CrashTime(3); got != sim.MaxTime {
		t.Errorf("nil CrashTime = %v", got)
	}
	if got := inj.LinkDownUntil(0, 1, 0); got != 0 {
		t.Errorf("nil LinkDownUntil = %v", got)
	}
	if inj.MTU() != DefaultMTU || inj.Window() != DefaultWindow ||
		inj.MaxRetry() != DefaultMaxRetry || inj.Backoff() != DefaultBackoff ||
		inj.BusTimeout() != DefaultBusTimeout || inj.Deadline() != 0 {
		t.Error("nil injector does not report transport defaults")
	}
}

func TestSeedZeroInjectsNothing(t *testing.T) {
	inj := mustInjector(t, "seed=0,flitdrop=1,corrupt=1,busfail=1")
	if inj.Enabled() {
		t.Error("seed=0 injector reports Enabled")
	}
	for seq := 0; seq < 100; seq++ {
		if f := inj.PacketFate(0, 1, seq, 0); f != Delivered {
			t.Fatalf("seed=0 PacketFate(seq=%d) = %v", seq, f)
		}
		if inj.BusAcquireFail(seq, 0) {
			t.Fatalf("seed=0 BusAcquireFail(seq=%d) = true", seq)
		}
	}
}

func TestPacketFateDeterministic(t *testing.T) {
	a := mustInjector(t, "seed=42,flitdrop=0.2,corrupt=0.2")
	b := mustInjector(t, "seed=42,flitdrop=0.2,corrupt=0.2")
	var delivered, dropped, corrupted int
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			for seq := 0; seq < 200; seq++ {
				fa := a.PacketFate(src, dst, seq, 0)
				if fb := b.PacketFate(src, dst, seq, 0); fa != fb {
					t.Fatalf("same seed disagrees at (%d,%d,%d): %v vs %v", src, dst, seq, fa, fb)
				}
				switch fa {
				case Delivered:
					delivered++
				case Dropped:
					dropped++
				case Corrupted:
					corrupted++
				}
			}
		}
	}
	// With 3200 packets at 20%/20% rates, all three fates must occur and
	// sit within loose bounds — a sanity check on the hash, not a
	// statistical test.
	if dropped < 300 || dropped > 1000 {
		t.Errorf("dropped = %d, want roughly 640", dropped)
	}
	if corrupted < 200 || corrupted > 900 {
		t.Errorf("corrupted = %d, want roughly 512", corrupted)
	}
	if delivered == 0 {
		t.Error("no packets delivered")
	}
}

func TestDropSetMonotoneInRate(t *testing.T) {
	rates := []float64{1e-4, 1e-3, 1e-2, 1e-1, 0.5}
	var prev map[[3]int]bool
	for _, rate := range rates {
		spec := &Spec{Seed: 7, FlitDrop: rate, MTU: DefaultMTU, Window: DefaultWindow,
			MaxRetry: DefaultMaxRetry, Backoff: DefaultBackoff, BusTimeout: DefaultBusTimeout}
		inj := New(spec)
		cur := map[[3]int]bool{}
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				for seq := 0; seq < 500; seq++ {
					if inj.PacketFate(src, dst, seq, 0) == Dropped {
						cur[[3]int{src, dst, seq}] = true
					}
				}
			}
		}
		for k := range prev {
			if !cur[k] {
				t.Fatalf("packet %v dropped at lower rate but not at %g", k, rate)
			}
		}
		prev = cur
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := mustInjector(t, "seed=1,flitdrop=0.3")
	b := mustInjector(t, "seed=2,flitdrop=0.3")
	same := 0
	const total = 2000
	for seq := 0; seq < total; seq++ {
		if a.PacketFate(0, 1, seq, 0) == b.PacketFate(0, 1, seq, 0) {
			same++
		}
	}
	if same == total {
		t.Error("seeds 1 and 2 produce identical fate sequences")
	}
}

func TestScheduledFaults(t *testing.T) {
	inj := mustInjector(t, "seed=0,linkdown=0-1@1ms+2ms,slow=1*3,crash=2@5ms")
	if !inj.Enabled() {
		t.Error("scheduled faults should enable the injector even with seed=0")
	}
	if got := inj.LinkDownUntil(0, 1, 500*sim.Microsecond); got != 0 {
		t.Errorf("link down before outage: until=%v", got)
	}
	want := 3 * sim.Millisecond
	if got := inj.LinkDownUntil(0, 1, sim.Millisecond); got != want {
		t.Errorf("LinkDownUntil at start = %v, want %v", got, want)
	}
	if got := inj.LinkDownUntil(1, 0, 2*sim.Millisecond); got != want {
		t.Errorf("reversed direction LinkDownUntil = %v, want %v", got, want)
	}
	if got := inj.LinkDownUntil(0, 1, want); got != 0 {
		t.Errorf("link still down at outage end: until=%v", got)
	}
	if got := inj.LinkDownUntil(0, 2, sim.Millisecond); got != 0 {
		t.Errorf("unrelated link down: until=%v", got)
	}
	if got := inj.PathDownUntil([]int{2, 0, 1}, sim.Millisecond); got != want {
		t.Errorf("PathDownUntil = %v, want %v", got, want)
	}
	if got := inj.SlowFactor(1); got != 3 {
		t.Errorf("SlowFactor(1) = %g, want 3", got)
	}
	if got := inj.SlowFactor(0); got != 1 {
		t.Errorf("SlowFactor(0) = %g, want 1", got)
	}
	if got := inj.CrashTime(2); got != 5*sim.Millisecond {
		t.Errorf("CrashTime(2) = %v", got)
	}
	if got := inj.CrashTime(0); got != sim.MaxTime {
		t.Errorf("CrashTime(0) = %v, want MaxTime", got)
	}
}

func TestMeshFateIndependentStream(t *testing.T) {
	inj := mustInjector(t, "seed=5,flitdrop=0.5")
	differ := false
	for seq := 0; seq < 200; seq++ {
		if inj.PacketFate(0, 1, seq, 0) != inj.MeshFate(0, 1, seq, 0) {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("NIC and mesh fault streams are correlated")
	}
}
