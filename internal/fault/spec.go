// Package fault is the deterministic fault injector of the simulated
// cluster: a seeded model of everything that can go wrong on a real
// V-Bus machine — corrupted or dropped flits, links that go down for an
// interval, nodes that run slow or crash, failed virtual-bus
// acquisition — scheduled entirely in virtual time so every run is
// replayable from a short spec string.
//
// A fault schedule is described by a comma-separated spec such as
//
//	seed=42,flitdrop=1e-3,corrupt=5e-4,linkdown=0-1@1ms+2ms,crash=3@80ms
//
// The grammar (all keys optional except seed; repeatable keys may
// appear more than once):
//
//	seed=N           PRNG seed; seed=0 disables all probabilistic faults
//	flitdrop=P       per-packet drop probability in [0,1]
//	corrupt=P        per-packet CRC-corruption probability in [0,1]
//	busfail=P        per-attempt V-Bus acquisition failure probability
//	linkdown=A-B@T+D link between nodes A and B is down during [T,T+D)
//	slow=R*F         rank R computes F times slower (F >= 1)
//	crash=R@T        rank R crashes at virtual time T
//	crashafter=R/N   rank R crashes after issuing N MPI operations
//	deadline=D       per-operation deadline for blocking MPI calls
//	mtu=N            reliable-transport packet size in bytes
//	window=N         go-back-N retransmission window in packets
//	maxretry=N       retransmission attempts before giving up
//	backoff=D        base retransmission backoff (doubles per attempt)
//	bustimeout=D     V-Bus acquisition timeout before p2p degradation
//
// Three server-level tokens drive the vbserve chaos harness rather
// than the simulated fabric (the Injector ignores them; the jobs
// layer interprets them before the run starts):
//
//	panicjob=1       the job panics inside the worker (poison spec)
//	stalljob=D       the job stalls for wall-clock D before running
//	killworker=N     the job kills its worker goroutine (N distinct kills)
//
// Durations take a unit suffix: ps, ns, us, ms or s. For the
// wall-clock stalljob token the virtual units are read as wall units
// (1ms virtual = 1ms wall).
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vbuscluster/internal/sim"
)

// Default transport parameters, chosen to sit near the card's real
// constants: MTU spans a few hundred 32-bit flits, the backoff starts
// around the card's small-message latency scale, and the bus timeout is
// a few broadcast times.
const (
	DefaultMTU        = 4096
	DefaultWindow     = 4
	DefaultMaxRetry   = 8
	DefaultBackoff    = 2 * sim.Microsecond
	DefaultBusTimeout = 100 * sim.Microsecond
)

// LinkDown takes the mesh link between two adjacent-or-not nodes out of
// service for a virtual-time interval. Any route crossing the A-B hop
// (in either direction) stalls until the link recovers.
type LinkDown struct {
	A, B int      // node IDs, normalized A <= B
	At   sim.Time // outage start
	Dur  sim.Time // outage length
}

// Until reports when the outage ends.
func (l LinkDown) Until() sim.Time { return l.At + l.Dur }

// Slow makes one rank's computation run slower by a constant factor.
type Slow struct {
	Rank   int
	Factor float64 // >= 1
}

// Crash stops one rank at a virtual time: every MPI operation the rank
// issues at or after At fails with a Crashed error.
type Crash struct {
	Rank int
	At   sim.Time
}

// CrashAfter stops one rank by operation count instead of wall time:
// the rank completes Ops MPI operations, then the next one fails with
// a Crashed error. Counting by operations lets tests and killsweeps
// target exact epoch boundaries independently of the fabric's timing.
type CrashAfter struct {
	Rank int
	Ops  int64
}

// Spec is a parsed fault schedule. The zero Spec (or any spec with
// Seed == 0 and no scheduled faults) injects nothing.
type Spec struct {
	Seed     uint64
	FlitDrop float64 // per-packet drop probability
	Corrupt  float64 // per-packet corruption probability
	BusFail  float64 // per-attempt bus-acquisition failure probability

	LinkDowns   []LinkDown
	Slows       []Slow
	Crashes     []Crash
	CrashAfters []CrashAfter

	Deadline sim.Time // 0 = no deadline

	MTU        int
	Window     int
	MaxRetry   int
	Backoff    sim.Time
	BusTimeout sim.Time

	// Server-level chaos tokens, interpreted by the vbserve jobs layer
	// (the simulated-fabric Injector ignores them).
	PanicJob   bool     // panicjob=1: the job panics inside its worker
	StallJob   sim.Time // stalljob=D: wall-clock stall before the run
	KillWorker int      // killworker=N: kill the worker goroutine (N kills)
}

// ParseSpec parses the comma-separated fault grammar documented in the
// package comment. Unknown keys, malformed values and out-of-range
// probabilities are errors; transport parameters default when omitted.
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{
		MTU:        DefaultMTU,
		Window:     DefaultWindow,
		MaxRetry:   DefaultMaxRetry,
		Backoff:    DefaultBackoff,
		BusTimeout: DefaultBusTimeout,
	}
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("fault: empty spec")
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return nil, fmt.Errorf("fault: empty field in spec %q", s)
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok || val == "" {
			return nil, fmt.Errorf("fault: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		case "flitdrop":
			spec.FlitDrop, err = parseProb(key, val)
		case "corrupt":
			spec.Corrupt, err = parseProb(key, val)
		case "busfail":
			spec.BusFail, err = parseProb(key, val)
		case "linkdown":
			var ld LinkDown
			ld, err = parseLinkDown(val)
			spec.LinkDowns = append(spec.LinkDowns, ld)
		case "slow":
			var sl Slow
			sl, err = parseSlow(val)
			spec.Slows = append(spec.Slows, sl)
		case "crash":
			var cr Crash
			cr, err = parseCrash(val)
			spec.Crashes = append(spec.Crashes, cr)
		case "crashafter":
			var ca CrashAfter
			ca, err = parseCrashAfter(val)
			spec.CrashAfters = append(spec.CrashAfters, ca)
		case "deadline":
			spec.Deadline, err = ParseDuration(val)
		case "mtu":
			spec.MTU, err = parsePositiveInt(key, val)
		case "window":
			spec.Window, err = parsePositiveInt(key, val)
		case "maxretry":
			spec.MaxRetry, err = strconv.Atoi(val)
			if err == nil && spec.MaxRetry < 0 {
				err = fmt.Errorf("fault: maxretry must be >= 0, got %d", spec.MaxRetry)
			}
		case "backoff":
			spec.Backoff, err = ParseDuration(val)
		case "bustimeout":
			spec.BusTimeout, err = ParseDuration(val)
		case "panicjob":
			spec.PanicJob, err = strconv.ParseBool(val)
		case "stalljob":
			spec.StallJob, err = ParseDuration(val)
		case "killworker":
			spec.KillWorker, err = parsePositiveInt(key, val)
		default:
			return nil, fmt.Errorf("fault: unknown key %q in spec", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: field %q: %w", field, err)
		}
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	spec.normalize()
	return spec, nil
}

func (s *Spec) validate() error {
	for _, ld := range s.LinkDowns {
		if ld.A < 0 || ld.B < 0 {
			return fmt.Errorf("fault: linkdown nodes %d-%d must be non-negative", ld.A, ld.B)
		}
		if ld.A == ld.B {
			return fmt.Errorf("fault: linkdown %d-%d is a self-link", ld.A, ld.B)
		}
		if ld.Dur <= 0 {
			return fmt.Errorf("fault: linkdown duration %v must be positive", ld.Dur)
		}
	}
	for _, sl := range s.Slows {
		if sl.Rank < 0 {
			return fmt.Errorf("fault: slow rank %d must be non-negative", sl.Rank)
		}
		if sl.Factor < 1 {
			return fmt.Errorf("fault: slow factor %g must be >= 1", sl.Factor)
		}
	}
	for _, cr := range s.Crashes {
		if cr.Rank < 0 {
			return fmt.Errorf("fault: crash rank %d must be non-negative", cr.Rank)
		}
	}
	for _, ca := range s.CrashAfters {
		if ca.Rank < 0 {
			return fmt.Errorf("fault: crashafter rank %d must be non-negative", ca.Rank)
		}
		if ca.Ops < 0 {
			return fmt.Errorf("fault: crashafter op count %d must be non-negative", ca.Ops)
		}
	}
	if s.Deadline < 0 {
		return fmt.Errorf("fault: negative deadline %v", s.Deadline)
	}
	if s.StallJob < 0 {
		return fmt.Errorf("fault: negative stalljob %v", s.StallJob)
	}
	if s.KillWorker < 0 {
		return fmt.Errorf("fault: killworker count %d must be non-negative", s.KillWorker)
	}
	return nil
}

// normalize puts repeatable entries in canonical order so String() is a
// stable replay key and two equivalent specs compare equal.
func (s *Spec) normalize() {
	for i := range s.LinkDowns {
		if s.LinkDowns[i].A > s.LinkDowns[i].B {
			s.LinkDowns[i].A, s.LinkDowns[i].B = s.LinkDowns[i].B, s.LinkDowns[i].A
		}
	}
	sort.Slice(s.LinkDowns, func(i, j int) bool {
		a, b := s.LinkDowns[i], s.LinkDowns[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.At < b.At
	})
	sort.Slice(s.Slows, func(i, j int) bool { return s.Slows[i].Rank < s.Slows[j].Rank })
	sort.Slice(s.Crashes, func(i, j int) bool {
		if s.Crashes[i].Rank != s.Crashes[j].Rank {
			return s.Crashes[i].Rank < s.Crashes[j].Rank
		}
		return s.Crashes[i].At < s.Crashes[j].At
	})
	sort.Slice(s.CrashAfters, func(i, j int) bool {
		if s.CrashAfters[i].Rank != s.CrashAfters[j].Rank {
			return s.CrashAfters[i].Rank < s.CrashAfters[j].Rank
		}
		return s.CrashAfters[i].Ops < s.CrashAfters[j].Ops
	})
}

// String renders the spec in the canonical parseable form: seed first,
// then every non-default field in grammar order. ParseSpec(s.String())
// reproduces s exactly.
func (s *Spec) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	if s.FlitDrop != 0 {
		parts = append(parts, fmt.Sprintf("flitdrop=%g", s.FlitDrop))
	}
	if s.Corrupt != 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", s.Corrupt))
	}
	if s.BusFail != 0 {
		parts = append(parts, fmt.Sprintf("busfail=%g", s.BusFail))
	}
	for _, ld := range s.LinkDowns {
		parts = append(parts, fmt.Sprintf("linkdown=%d-%d@%s+%s",
			ld.A, ld.B, FormatDuration(ld.At), FormatDuration(ld.Dur)))
	}
	for _, sl := range s.Slows {
		parts = append(parts, fmt.Sprintf("slow=%d*%g", sl.Rank, sl.Factor))
	}
	for _, cr := range s.Crashes {
		parts = append(parts, fmt.Sprintf("crash=%d@%s", cr.Rank, FormatDuration(cr.At)))
	}
	for _, ca := range s.CrashAfters {
		parts = append(parts, fmt.Sprintf("crashafter=%d/%d", ca.Rank, ca.Ops))
	}
	if s.Deadline != 0 {
		parts = append(parts, "deadline="+FormatDuration(s.Deadline))
	}
	if s.MTU != DefaultMTU {
		parts = append(parts, fmt.Sprintf("mtu=%d", s.MTU))
	}
	if s.Window != DefaultWindow {
		parts = append(parts, fmt.Sprintf("window=%d", s.Window))
	}
	if s.MaxRetry != DefaultMaxRetry {
		parts = append(parts, fmt.Sprintf("maxretry=%d", s.MaxRetry))
	}
	if s.Backoff != DefaultBackoff {
		parts = append(parts, "backoff="+FormatDuration(s.Backoff))
	}
	if s.BusTimeout != DefaultBusTimeout {
		parts = append(parts, "bustimeout="+FormatDuration(s.BusTimeout))
	}
	if s.PanicJob {
		parts = append(parts, "panicjob=1")
	}
	if s.StallJob != 0 {
		parts = append(parts, "stalljob="+FormatDuration(s.StallJob))
	}
	if s.KillWorker != 0 {
		parts = append(parts, fmt.Sprintf("killworker=%d", s.KillWorker))
	}
	return strings.Join(parts, ",")
}

func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 || p != p {
		return 0, fmt.Errorf("fault: %s probability %g outside [0,1]", key, p)
	}
	return p, nil
}

func parsePositiveInt(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("fault: %s must be positive, got %d", key, n)
	}
	return n, nil
}

// parseLinkDown parses "A-B@T+D".
func parseLinkDown(val string) (LinkDown, error) {
	nodes, when, ok := strings.Cut(val, "@")
	if !ok {
		return LinkDown{}, fmt.Errorf("missing @start+duration in %q", val)
	}
	as, bs, ok := strings.Cut(nodes, "-")
	if !ok {
		return LinkDown{}, fmt.Errorf("missing A-B node pair in %q", val)
	}
	a, err := strconv.Atoi(as)
	if err != nil {
		return LinkDown{}, err
	}
	b, err := strconv.Atoi(bs)
	if err != nil {
		return LinkDown{}, err
	}
	ts, ds, ok := strings.Cut(when, "+")
	if !ok {
		return LinkDown{}, fmt.Errorf("missing +duration in %q", val)
	}
	at, err := ParseDuration(ts)
	if err != nil {
		return LinkDown{}, err
	}
	dur, err := ParseDuration(ds)
	if err != nil {
		return LinkDown{}, err
	}
	return LinkDown{A: a, B: b, At: at, Dur: dur}, nil
}

// parseSlow parses "R*F".
func parseSlow(val string) (Slow, error) {
	rs, fs, ok := strings.Cut(val, "*")
	if !ok {
		return Slow{}, fmt.Errorf("missing *factor in %q", val)
	}
	r, err := strconv.Atoi(rs)
	if err != nil {
		return Slow{}, err
	}
	f, err := strconv.ParseFloat(fs, 64)
	if err != nil {
		return Slow{}, err
	}
	if f != f {
		return Slow{}, fmt.Errorf("slow factor is NaN")
	}
	return Slow{Rank: r, Factor: f}, nil
}

// parseCrash parses "R@T".
func parseCrash(val string) (Crash, error) {
	rs, ts, ok := strings.Cut(val, "@")
	if !ok {
		return Crash{}, fmt.Errorf("missing @time in %q", val)
	}
	r, err := strconv.Atoi(rs)
	if err != nil {
		return Crash{}, err
	}
	at, err := ParseDuration(ts)
	if err != nil {
		return Crash{}, err
	}
	if at < 0 {
		return Crash{}, fmt.Errorf("negative crash time %v", at)
	}
	return Crash{Rank: r, At: at}, nil
}

// parseCrashAfter parses "R/N".
func parseCrashAfter(val string) (CrashAfter, error) {
	rs, ns, ok := strings.Cut(val, "/")
	if !ok {
		return CrashAfter{}, fmt.Errorf("missing /op-count in %q", val)
	}
	r, err := strconv.Atoi(rs)
	if err != nil {
		return CrashAfter{}, err
	}
	n, err := strconv.ParseInt(ns, 10, 64)
	if err != nil {
		return CrashAfter{}, err
	}
	return CrashAfter{Rank: r, Ops: n}, nil
}

// durUnits maps suffix to scale, longest suffixes first so "ms" is not
// read as "m"+"s".
var durUnits = []struct {
	suffix string
	scale  sim.Time
}{
	{"ps", sim.Picosecond},
	{"ns", sim.Nanosecond},
	{"us", sim.Microsecond},
	{"ms", sim.Millisecond},
	{"s", sim.Second},
}

// ParseDuration parses a virtual-time duration with a mandatory unit
// suffix (ps, ns, us, ms, s). Fractional values are allowed and rounded
// to the nearest picosecond.
func ParseDuration(s string) (sim.Time, error) {
	for _, u := range durUnits {
		num, ok := strings.CutSuffix(s, u.suffix)
		if !ok || num == "" {
			continue
		}
		// "5m" + "s" must not parse as minutes; reject a trailing unit
		// letter left in the numeric part.
		if c := num[len(num)-1]; c < '0' || c > '9' {
			if c != '.' {
				continue
			}
		}
		f, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q: %w", s, err)
		}
		if f < 0 || f != f {
			return 0, fmt.Errorf("bad duration %q: negative or NaN", s)
		}
		prod := f*float64(u.scale) + 0.5
		// float64(sim.MaxTime) rounds to 2^63; anything at or above it
		// cannot be converted portably.
		if prod >= float64(sim.MaxTime) {
			return 0, fmt.Errorf("bad duration %q: overflows virtual time", s)
		}
		return sim.Time(prod), nil
	}
	return 0, fmt.Errorf("bad duration %q: need a ps/ns/us/ms/s suffix", s)
}

// FormatDuration renders t exactly in the largest unit that divides it,
// so ParseDuration(FormatDuration(t)) == t for all non-negative t.
func FormatDuration(t sim.Time) string {
	for _, u := range []struct {
		suffix string
		scale  sim.Time
	}{
		{"s", sim.Second},
		{"ms", sim.Millisecond},
		{"us", sim.Microsecond},
		{"ns", sim.Nanosecond},
	} {
		if t != 0 && t%u.scale == 0 {
			return fmt.Sprintf("%d%s", t/u.scale, u.suffix)
		}
	}
	return fmt.Sprintf("%dps", t)
}
