package fault

import (
	"vbuscluster/internal/sim"
)

// Fate is the injector's verdict on one packet transmission attempt.
type Fate uint8

const (
	// Delivered means the packet arrives intact.
	Delivered Fate = iota
	// Dropped means the packet vanishes in the fabric; the sender
	// discovers the loss only by ACK timeout.
	Dropped
	// Corrupted means the packet arrives but fails its CRC; the
	// receiver NACKs immediately.
	Corrupted
)

// String names the fate.
func (f Fate) String() string {
	switch f {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Corrupted:
		return "corrupted"
	default:
		return "invalid"
	}
}

// Stream tags partition the injector's random decisions so distinct
// fault classes never share a random value even for identical
// identifiers.
const (
	streamDrop uint64 = 1 + iota
	streamCorrupt
	streamBus
	streamMesh
)

// Injector makes every fault decision of a run. It is built from a
// Spec and is stateless: each decision is a pure hash of the seed and
// the decision's identity (source, destination, per-pair sequence
// number, attempt), so concurrent ranks can consult it without locks
// and two runs with the same spec make byte-identical decisions
// regardless of goroutine interleaving.
//
// A nil *Injector is valid and injects nothing, so fault handling is
// a nil check when off.
type Injector struct {
	spec Spec
	// slowByRank is densely indexed for the hot ChargeCompute path.
	slowByRank []float64
	// crashByRank holds the earliest crash time per rank (MaxTime when
	// the rank never crashes).
	crashByRank []sim.Time
	// crashAfterByRank holds the smallest operation-count crash
	// threshold per rank (-1 when the rank never crashes by count).
	crashAfterByRank []int64
}

// New builds the injector for spec. A nil spec yields a nil injector.
func New(spec *Spec) *Injector {
	if spec == nil {
		return nil
	}
	inj := &Injector{spec: *spec}
	maxRank := -1
	for _, sl := range spec.Slows {
		if sl.Rank > maxRank {
			maxRank = sl.Rank
		}
	}
	for _, cr := range spec.Crashes {
		if cr.Rank > maxRank {
			maxRank = cr.Rank
		}
	}
	for _, ca := range spec.CrashAfters {
		if ca.Rank > maxRank {
			maxRank = ca.Rank
		}
	}
	inj.slowByRank = make([]float64, maxRank+1)
	inj.crashByRank = make([]sim.Time, maxRank+1)
	inj.crashAfterByRank = make([]int64, maxRank+1)
	for i := range inj.slowByRank {
		inj.slowByRank[i] = 1
		inj.crashByRank[i] = sim.MaxTime
		inj.crashAfterByRank[i] = -1
	}
	for _, sl := range spec.Slows {
		if sl.Factor > inj.slowByRank[sl.Rank] {
			inj.slowByRank[sl.Rank] = sl.Factor
		}
	}
	for _, cr := range spec.Crashes {
		if cr.At < inj.crashByRank[cr.Rank] {
			inj.crashByRank[cr.Rank] = cr.At
		}
	}
	for _, ca := range spec.CrashAfters {
		if cur := inj.crashAfterByRank[ca.Rank]; cur < 0 || ca.Ops < cur {
			inj.crashAfterByRank[ca.Rank] = ca.Ops
		}
	}
	return inj
}

// FromString parses spec and builds its injector.
func FromString(spec string) (*Injector, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return New(s), nil
}

// Spec returns a copy of the injector's spec (the zero Spec on nil).
func (inj *Injector) Spec() Spec {
	if inj == nil {
		return Spec{}
	}
	return inj.spec
}

// Enabled reports whether the injector can produce any fault at all.
// Probabilistic faults require a non-zero seed; scheduled faults
// (linkdown, slow, crash) and deadlines act regardless of seed.
func (inj *Injector) Enabled() bool {
	if inj == nil {
		return false
	}
	s := &inj.spec
	probabilistic := s.Seed != 0 && (s.FlitDrop > 0 || s.Corrupt > 0 || s.BusFail > 0)
	return probabilistic || len(s.LinkDowns) > 0 || len(s.Slows) > 0 ||
		len(s.Crashes) > 0 || len(s.CrashAfters) > 0 || s.Deadline > 0
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix with no detectable bias, used here as a keyed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform hashes the decision identity into [0,1).
func (inj *Injector) uniform(stream uint64, ids ...uint64) float64 {
	h := splitmix64(inj.spec.Seed ^ stream)
	for _, id := range ids {
		h = splitmix64(h ^ id)
	}
	// 53 high-quality mantissa bits → uniform double in [0,1).
	return float64(h>>11) / (1 << 53)
}

// PacketFate decides what happens to the attempt-th transmission of
// packet seq from src to dst. Drop is checked before corruption on an
// independent random value; the same (seed, identifiers) always yields
// the same fate, and because the decision compares a uniform value
// against the rate, the set of dropped packets at rate p is a subset
// of the set at any rate p' > p — completion time is monotone in the
// injected rate by construction.
func (inj *Injector) PacketFate(src, dst, seq, attempt int) Fate {
	if inj == nil || inj.spec.Seed == 0 {
		return Delivered
	}
	ids := []uint64{uint64(src), uint64(dst), uint64(seq), uint64(attempt)}
	if inj.spec.FlitDrop > 0 && inj.uniform(streamDrop, ids...) < inj.spec.FlitDrop {
		return Dropped
	}
	if inj.spec.Corrupt > 0 && inj.uniform(streamCorrupt, ids...) < inj.spec.Corrupt {
		return Corrupted
	}
	return Delivered
}

// MeshFate is PacketFate on the flit-level simulator's stream: the two
// simulators must not share random values or their fault patterns
// would be correlated.
func (inj *Injector) MeshFate(src, dst, seq, attempt int) Fate {
	if inj == nil || inj.spec.Seed == 0 {
		return Delivered
	}
	ids := []uint64{uint64(src), uint64(dst), uint64(seq), uint64(attempt)}
	if inj.spec.FlitDrop > 0 && inj.uniform(streamMesh, ids...) < inj.spec.FlitDrop {
		return Dropped
	}
	if inj.spec.Corrupt > 0 && inj.uniform(streamMesh+16, ids...) < inj.spec.Corrupt {
		return Corrupted
	}
	return Delivered
}

// BusAcquireFail decides whether the attempt-th acquisition of the
// virtual bus for broadcast seq times out.
func (inj *Injector) BusAcquireFail(seq, attempt int) bool {
	if inj == nil || inj.spec.Seed == 0 || inj.spec.BusFail <= 0 {
		return false
	}
	return inj.uniform(streamBus, uint64(seq), uint64(attempt)) < inj.spec.BusFail
}

// SlowFactor reports rank's compute slowdown (1 when unaffected).
func (inj *Injector) SlowFactor(rank int) float64 {
	if inj == nil || rank < 0 || rank >= len(inj.slowByRank) {
		return 1
	}
	return inj.slowByRank[rank]
}

// CrashTime reports the virtual time at which rank crashes, or
// sim.MaxTime when it never does.
func (inj *Injector) CrashTime(rank int) sim.Time {
	if inj == nil || rank < 0 || rank >= len(inj.crashByRank) {
		return sim.MaxTime
	}
	return inj.crashByRank[rank]
}

// CrashAfterOps reports the operation-count crash threshold of rank:
// the rank completes that many MPI operations and the next one fails.
// -1 means the rank never crashes by operation count.
func (inj *Injector) CrashAfterOps(rank int) int64 {
	if inj == nil || rank < 0 || rank >= len(inj.crashAfterByRank) {
		return -1
	}
	return inj.crashAfterByRank[rank]
}

// HasCrashAfter reports whether any operation-count crash is
// scheduled; when false the runtime skips per-operation counting
// entirely.
func (inj *Injector) HasCrashAfter() bool {
	return inj != nil && len(inj.spec.CrashAfters) > 0
}

// LinkDownUntil reports, for the link between nodes a and b at virtual
// time at, the end of the outage covering at (0 when the link is up).
// Outages are direction-agnostic.
func (inj *Injector) LinkDownUntil(a, b int, at sim.Time) sim.Time {
	if inj == nil {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	var until sim.Time
	for _, ld := range inj.spec.LinkDowns {
		if ld.A == a && ld.B == b && at >= ld.At && at < ld.Until() {
			if u := ld.Until(); u > until {
				until = u
			}
		}
	}
	return until
}

// PathDownUntil reports the latest outage end over every hop of a
// node path at virtual time at (0 when the whole path is up). path
// lists the node IDs visited in order.
func (inj *Injector) PathDownUntil(path []int, at sim.Time) sim.Time {
	if inj == nil || len(inj.spec.LinkDowns) == 0 {
		return 0
	}
	var until sim.Time
	for i := 0; i+1 < len(path); i++ {
		if u := inj.LinkDownUntil(path[i], path[i+1], at); u > until {
			until = u
		}
	}
	return until
}

// AnyLinkDownUntil reports the latest outage end covering virtual
// time at on any link (0 when every link is up). The V-Bus broadcast
// uses it: the virtual bus is constructed out of the mesh's physical
// links across the whole machine, so one downed link anywhere blocks
// bus construction until it recovers.
func (inj *Injector) AnyLinkDownUntil(at sim.Time) sim.Time {
	if inj == nil {
		return 0
	}
	var until sim.Time
	for _, ld := range inj.spec.LinkDowns {
		if at >= ld.At && at < ld.Until() && ld.Until() > until {
			until = ld.Until()
		}
	}
	return until
}

// HasLinkDowns reports whether any link outage is scheduled.
func (inj *Injector) HasLinkDowns() bool {
	return inj != nil && len(inj.spec.LinkDowns) > 0
}

// Transport parameter accessors, nil-safe with the spec defaults.

// MTU is the reliable-transport packet size in bytes.
func (inj *Injector) MTU() int {
	if inj == nil {
		return DefaultMTU
	}
	return inj.spec.MTU
}

// Window is the go-back-N window in packets.
func (inj *Injector) Window() int {
	if inj == nil {
		return DefaultWindow
	}
	return inj.spec.Window
}

// MaxRetry is the retransmission attempt limit.
func (inj *Injector) MaxRetry() int {
	if inj == nil {
		return DefaultMaxRetry
	}
	return inj.spec.MaxRetry
}

// Backoff is the base retransmission backoff.
func (inj *Injector) Backoff() sim.Time {
	if inj == nil {
		return DefaultBackoff
	}
	return inj.spec.Backoff
}

// BusTimeout is the V-Bus acquisition timeout.
func (inj *Injector) BusTimeout() sim.Time {
	if inj == nil {
		return DefaultBusTimeout
	}
	return inj.spec.BusTimeout
}

// Deadline is the per-operation deadline (0 = none).
func (inj *Injector) Deadline() sim.Time {
	if inj == nil {
		return 0
	}
	return inj.spec.Deadline
}
