package mesh

import (
	"testing"

	"vbuscluster/internal/fault"
	"vbuscluster/internal/sim"
)

func faultInj(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	inj, err := fault.FromString(spec)
	if err != nil {
		t.Fatalf("FromString(%q): %v", spec, err)
	}
	return inj
}

func TestRouteErrorsOnInvalidNodes(t *testing.T) {
	_, m := newMesh(t, 4, 4)
	for _, pair := range [][2]NodeID{{-1, 0}, {0, -1}, {16, 0}, {0, 16}} {
		if _, err := m.Route(pair[0], pair[1]); err == nil {
			t.Errorf("Route(%d,%d) accepted out-of-range node", pair[0], pair[1])
		}
	}
}

func TestSendBroadcastErrors(t *testing.T) {
	_, m := newMesh(t, 2, 2)
	if err := m.Send(0, 99, 64, nil); err == nil {
		t.Error("Send to out-of-range node accepted")
	}
	if err := m.Send(0, 1, -1, nil); err == nil {
		t.Error("Send with negative payload accepted")
	}
	if err := m.Broadcast(-3, 64, nil); err == nil {
		t.Error("Broadcast from out-of-range node accepted")
	}
	if err := m.Broadcast(0, -1, nil); err == nil {
		t.Error("Broadcast with negative payload accepted")
	}
	if got := m.Stats().MessagesDelivered; got != 0 {
		t.Errorf("rejected traffic was injected: %d messages", got)
	}
}

func TestLinkDownStallsDelivery(t *testing.T) {
	engClean, clean := newMesh(t, 4, 1)
	var cleanAt sim.Time
	if err := clean.Send(0, 3, 256, func(ts sim.Time) { cleanAt = ts }); err != nil {
		t.Fatal(err)
	}
	engClean.Run()

	eng, m := newMesh(t, 4, 1)
	m.SetFaults(faultInj(t, "seed=1,linkdown=1-2@0ns+5us"))
	var faultAt sim.Time
	if err := m.Send(0, 3, 256, func(ts sim.Time) { faultAt = ts }); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if faultAt <= cleanAt {
		t.Fatalf("link outage did not delay delivery: clean %v, faulty %v", cleanAt, faultAt)
	}
	if faultAt < 5*sim.Microsecond {
		t.Fatalf("delivery at %v, before the outage window ends", faultAt)
	}
	if m.Stats().LinkStalls == 0 {
		t.Error("no link stalls recorded")
	}
}

// TestLinkDownStallsBroadcast: the virtual bus is constructed from
// the mesh's physical links, so a broadcast issued during a link
// outage must wait for the link to recover before the bus can be
// driven — it used to ignore outages entirely and complete at the
// clean-network time.
func TestLinkDownStallsBroadcast(t *testing.T) {
	engClean, clean := newMesh(t, 4, 1)
	var cleanAt sim.Time
	if err := clean.Broadcast(0, 256, func(ts sim.Time) { cleanAt = ts }); err != nil {
		t.Fatal(err)
	}
	engClean.Run()

	eng, m := newMesh(t, 4, 1)
	m.SetFaults(faultInj(t, "seed=1,linkdown=1-2@0ns+5us"))
	var faultAt sim.Time
	if err := m.Broadcast(0, 256, func(ts sim.Time) { faultAt = ts }); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if faultAt <= cleanAt {
		t.Fatalf("link outage did not delay the broadcast: clean %v, faulty %v", cleanAt, faultAt)
	}
	// The whole outage window precedes the bus window: completion is
	// the outage end plus the full clean broadcast.
	if want := 5*sim.Microsecond + cleanAt; faultAt != want {
		t.Fatalf("broadcast completed at %v, want outage end + clean time = %v", faultAt, want)
	}
	if m.Stats().LinkStalls == 0 {
		t.Error("no link stalls recorded for the stalled broadcast")
	}

	// After the outage window the bus behaves normally again.
	eng2, m2 := newMesh(t, 4, 1)
	m2.SetFaults(faultInj(t, "seed=1,linkdown=1-2@0ns+5us"))
	var lateAt sim.Time
	eng2.At(10*sim.Microsecond, func() {
		if err := m2.Broadcast(0, 256, func(ts sim.Time) { lateAt = ts }); err != nil {
			t.Error(err)
		}
	})
	eng2.Run()
	if want := 10*sim.Microsecond + cleanAt; lateAt != want {
		t.Fatalf("post-outage broadcast completed at %v, want %v", lateAt, want)
	}
}

func TestMeshRetransmissionsDeterministicAndDelayed(t *testing.T) {
	run := func(spec string) (sim.Time, Stats) {
		eng, m := newMesh(t, 4, 4)
		if spec != "" {
			m.SetFaults(faultInj(t, spec))
		}
		var last sim.Time
		for i := 0; i < 20; i++ {
			if err := m.Send(NodeID(i%16), NodeID((i*7+3)%16), 2048, func(ts sim.Time) {
				if ts > last {
					last = ts
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return last, m.Stats()
	}

	cleanAt, cleanStats := run("")
	if cleanStats.Retransmissions != 0 {
		t.Fatalf("clean run retransmitted %d times", cleanStats.Retransmissions)
	}
	aAt, aStats := run("seed=5,flitdrop=0.4,corrupt=0.2")
	bAt, bStats := run("seed=5,flitdrop=0.4,corrupt=0.2")
	if aAt != bAt || aStats.Retransmissions != bStats.Retransmissions {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", aAt, aStats.Retransmissions, bAt, bStats.Retransmissions)
	}
	if aStats.Retransmissions == 0 {
		t.Error("no retransmissions at 40% drop")
	}
	if aAt <= cleanAt {
		t.Errorf("faulty run (%v) not slower than clean (%v)", aAt, cleanAt)
	}
}
