// Package mesh simulates the V-Bus interconnection network: a 2-D mesh
// of wormhole routers whose channels are the wave-pipelined links from
// internal/fabric, plus the paper's Virtual Bus — a broadcast bus that
// is dynamically constructed over the mesh when a broadcast request is
// issued, freezing on-going point-to-point messages in their buffers
// while the bus is driven.
//
// The simulator works at message granularity with wormhole semantics: a
// message acquires the channels along its dimension-ordered (XY) route
// hop by hop, holds every acquired channel until its tail flit drains
// (backpressure), and contends FIFO for busy channels. This is the
// standard message-level wormhole approximation; it preserves the cost
// structure the paper's evaluation depends on (head latency per hop,
// serialization at the bottleneck link rate, blocking under contention,
// and bus preemption for broadcasts).
package mesh

import (
	"fmt"

	"vbuscluster/internal/fabric"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/sim"
)

// NodeID identifies a node (PC) on the mesh, numbered row-major.
type NodeID int

// Config describes the mesh geometry and its physical channels.
type Config struct {
	Width, Height int

	// Torus adds wrap-around channels in both dimensions (the paper
	// lists "mesh, torus and hypercube" as the switched networks the
	// V-Bus design targets). Routing stays dimension-ordered but picks
	// the shorter direction around each ring.
	Torus bool

	// Hypercube replaces the grid entirely with a binary n-cube over
	// Width*Height nodes (which must be a power of two): node i links
	// to i^(1<<d) for each dimension d, routed e-cube (lowest differing
	// bit first), which is deadlock-free by dimension ordering.
	Hypercube bool

	// Channel physics (shared by every mesh channel).
	LinkMode fabric.PipelineMode
	Lines    fabric.LineSet
	Margin   sim.Time
	Sampler  fabric.SkewSampler

	// RouterLatency is the per-hop routing decision + switch traversal
	// time for the head flit.
	RouterLatency sim.Time

	// BusArbitration is the fixed cost of constructing the virtual bus
	// (grant + freeze propagation) before a broadcast may be driven.
	BusArbitration sim.Time
}

// Dir is a channel direction out of a router.
type Dir int

// Channel directions. Inject/Eject are the NIC-router channels.
const (
	East Dir = iota
	West
	North
	South
	Inject
	Eject
)

func (d Dir) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	case Inject:
		return "inj"
	case Eject:
		return "ej"
	default:
		return fmt.Sprintf("Dir(%d)", int(d))
	}
}

// chanKey names one directed channel: the channel leaving node in
// direction dir on virtual channel vc. Virtual channels exist for
// torus deadlock freedom: a message that crosses a dimension's
// wrap-around link (the "dateline") continues on vc 1, which breaks
// the cyclic channel-dependency a ring would otherwise form under
// wormhole holds. Mesh routing always uses vc 0.
type chanKey struct {
	node NodeID
	dir  Dir
	vc   int
}

// channel tracks FIFO occupancy of one directed physical channel. While
// a message holds the channel (wormhole: from head acquisition until its
// tail drains), arrivals queue as waiters and are woken in FIFO order on
// release.
type channel struct {
	held    bool
	freeAt  sim.Time // earliest reacquire time once not held
	waiters []func()
}

// Stats aggregates delivery statistics.
type Stats struct {
	MessagesDelivered   int
	BroadcastsDone      int
	FlitsDelivered      int64
	TotalLatency        sim.Time
	MaxLatency          sim.Time
	BlockedAcquires     int // channel acquisitions that had to wait
	FrozenByBus         int // p2p progress events delayed by a virtual bus
	LinkStalls          int // head-flit advances stalled by an injected link outage
	Retransmissions     int // message streams repeated after injected drop/corruption
	BusOccupancy        sim.Time
	PeakInFlight        int
	currentInFlight     int
	DeliveredByDst      map[NodeID]int
	BytesPerFlit        int
	TotalBytesDelivered int64
}

// Mesh is the network simulator. All methods must be called from the
// owning goroutine (typically inside engine events).
type Mesh struct {
	eng  *sim.Engine
	cfg  Config
	link *fabric.Link // channel timing model (per hop, freshly sampled)

	channels map[chanKey]*channel
	draining map[*message]struct{}

	// busFreeAt is the time the current/last virtual bus releases the
	// network. P2p progress is frozen until then.
	busFreeAt sim.Time

	// inj injects flit-level faults (nil = clean network): link outages
	// stall head flits, drop/corruption forces full message re-streams.
	inj *fault.Injector
	// meshSeq numbers each (src,dst) pair's messages so fault decisions
	// are deterministic and independent of event interleaving.
	meshSeq map[[2]NodeID]int

	stats Stats
}

// New validates cfg and builds the mesh.
func New(eng *sim.Engine, cfg Config) (*Mesh, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("mesh: invalid geometry %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.RouterLatency < 0 || cfg.BusArbitration < 0 {
		return nil, fmt.Errorf("mesh: negative latency config")
	}
	if cfg.Hypercube {
		if cfg.Torus {
			return nil, fmt.Errorf("mesh: Torus and Hypercube are mutually exclusive")
		}
		if n := cfg.Width * cfg.Height; n&(n-1) != 0 {
			return nil, fmt.Errorf("mesh: hypercube needs a power-of-two node count, got %d", n)
		}
	}
	l, err := fabric.NewLink(fabric.LinkConfig{
		Mode:    cfg.LinkMode,
		Lines:   cfg.Lines,
		Margin:  cfg.Margin,
		Sampler: cfg.Sampler,
	})
	if err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	m := &Mesh{
		eng:      eng,
		cfg:      cfg,
		link:     l,
		channels: make(map[chanKey]*channel),
		draining: make(map[*message]struct{}),
		meshSeq:  make(map[[2]NodeID]int),
	}
	m.stats.DeliveredByDst = make(map[NodeID]int)
	m.stats.BytesPerFlit = l.Width() / 8
	return m, nil
}

// Nodes reports the node count.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// Engine returns the driving event engine.
func (m *Mesh) Engine() *sim.Engine { return m.eng }

// BytesPerFlit reports the payload bytes carried per flit (= link width).
func (m *Mesh) BytesPerFlit() int { return m.stats.BytesPerFlit }

// Stats returns a snapshot of delivery statistics.
func (m *Mesh) Stats() Stats { return m.stats }

// SetFaults attaches a fault injector to the network. Pass nil to
// restore clean operation. Must be called before traffic is injected.
func (m *Mesh) SetFaults(inj *fault.Injector) { m.inj = inj }

// Coord maps a NodeID to mesh coordinates.
func (m *Mesh) Coord(n NodeID) (x, y int) {
	return int(n) % m.cfg.Width, int(n) / m.cfg.Width
}

// NodeAt maps coordinates to a NodeID.
func (m *Mesh) NodeAt(x, y int) NodeID { return NodeID(y*m.cfg.Width + x) }

// valid reports whether n is a node of this mesh.
func (m *Mesh) valid(n NodeID) bool { return n >= 0 && int(n) < m.Nodes() }

// Route computes the dimension-ordered (X then Y) channel sequence from
// src to dst, including the injection and ejection channels. Nodes
// outside the mesh yield an error rather than a panic, so callers fed
// from external configuration can report the problem.
func (m *Mesh) Route(src, dst NodeID) ([]chanKey, error) {
	if !m.valid(src) || !m.valid(dst) {
		return nil, fmt.Errorf("mesh: route %d->%d outside %dx%d mesh", src, dst, m.cfg.Width, m.cfg.Height)
	}
	route := []chanKey{{src, Inject, 0}}
	if m.cfg.Hypercube {
		// E-cube: correct differing bits lowest-first. Channel "dir"
		// values beyond Eject encode the cube dimension.
		cur := int(src)
		diff := cur ^ int(dst)
		for d := 0; diff != 0; d++ {
			if diff&1 == 1 {
				route = append(route, chanKey{NodeID(cur), cubeDir(d), 0})
				cur ^= 1 << d
			}
			diff >>= 1
		}
		route = append(route, chanKey{dst, Eject, 0})
		return route, nil
	}
	x, y := m.Coord(src)
	dx, dy := m.Coord(dst)
	vcX, vcY := 0, 0
	stepX := func() {
		goEast := x < dx
		if m.cfg.Torus {
			fwd := mod(dx-x, m.cfg.Width)
			goEast = fwd <= m.cfg.Width-fwd
		}
		if goEast {
			if m.cfg.Torus && x == m.cfg.Width-1 {
				vcX = 1 // crossing the X dateline
			}
			route = append(route, chanKey{m.NodeAt(x, y), East, vcX})
			x = x + 1
			if m.cfg.Torus {
				x = mod(x, m.cfg.Width)
			}
		} else {
			if m.cfg.Torus && x == 0 {
				vcX = 1
			}
			route = append(route, chanKey{m.NodeAt(x, y), West, vcX})
			x = x - 1
			if m.cfg.Torus {
				x = mod(x, m.cfg.Width)
			}
		}
	}
	stepY := func() {
		goSouth := y < dy
		if m.cfg.Torus {
			fwd := mod(dy-y, m.cfg.Height)
			goSouth = fwd <= m.cfg.Height-fwd
		}
		if goSouth {
			if m.cfg.Torus && y == m.cfg.Height-1 {
				vcY = 1 // crossing the Y dateline
			}
			route = append(route, chanKey{m.NodeAt(x, y), South, vcY})
			y = y + 1
			if m.cfg.Torus {
				y = mod(y, m.cfg.Height)
			}
		} else {
			if m.cfg.Torus && y == 0 {
				vcY = 1
			}
			route = append(route, chanKey{m.NodeAt(x, y), North, vcY})
			y = y - 1
			if m.cfg.Torus {
				y = mod(y, m.cfg.Height)
			}
		}
	}
	for x != dx {
		stepX()
	}
	for y != dy {
		stepY()
	}
	route = append(route, chanKey{dst, Eject, 0})
	return route, nil
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// cubeDir encodes a hypercube dimension as a channel direction.
func cubeDir(d int) Dir { return Dir(int(Eject) + 1 + d) }

// Hops reports the hop count (mesh channels, excluding inject/eject)
// between two nodes.
func (m *Mesh) Hops(src, dst NodeID) int {
	if m.cfg.Hypercube {
		diff := uint(int(src) ^ int(dst))
		n := 0
		for diff != 0 {
			n += int(diff & 1)
			diff >>= 1
		}
		return n
	}
	x1, y1 := m.Coord(src)
	x2, y2 := m.Coord(dst)
	dx, dy := abs(x1-x2), abs(y1-y2)
	if m.cfg.Torus {
		if w := m.cfg.Width - dx; w < dx {
			dx = w
		}
		if w := m.cfg.Height - dy; w < dy {
			dy = w
		}
	}
	return dx + dy
}

// Diameter is the longest shortest-path hop count on the network.
func (m *Mesh) Diameter() int {
	if m.cfg.Hypercube {
		d := 0
		for n := m.cfg.Width * m.cfg.Height; n > 1; n >>= 1 {
			d++
		}
		return d
	}
	if m.cfg.Torus {
		return m.cfg.Width/2 + m.cfg.Height/2
	}
	return m.cfg.Width - 1 + m.cfg.Height - 1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (m *Mesh) channelFor(k chanKey) *channel {
	c, ok := m.channels[k]
	if !ok {
		c = &channel{}
		m.channels[k] = c
	}
	return c
}

// message is an in-flight wormhole message.
type message struct {
	src, dst NodeID
	flits    int
	seq      int // per-(src,dst) order for fault decisions
	route    []chanKey
	hop      int
	injected sim.Time
	done     func(deliveredAt sim.Time)
	held     []*channel
	release  sim.Time
	relEv    *sim.Event
}

// FlitsFor converts a payload byte count to a flit count (at least one
// flit: the head flit carries routing info even for empty payloads).
func (m *Mesh) FlitsFor(bytes int) int {
	if bytes < 0 {
		panic("mesh: negative payload")
	}
	bpf := m.stats.BytesPerFlit
	f := (bytes + bpf - 1) / bpf
	if f == 0 {
		f = 1
	}
	return f
}

// Send injects a point-to-point message at the current engine time.
// done (optional) is called when the tail flit is ejected at dst.
// Invalid endpoints or a negative payload yield an error and inject
// nothing.
func (m *Mesh) Send(src, dst NodeID, bytes int, done func(sim.Time)) error {
	if bytes < 0 {
		return fmt.Errorf("mesh: send %d->%d with negative payload %d", src, dst, bytes)
	}
	route, err := m.Route(src, dst)
	if err != nil {
		return err
	}
	msg := &message{
		src:      src,
		dst:      dst,
		flits:    m.FlitsFor(bytes),
		route:    route,
		injected: m.eng.Now(),
		done:     done,
	}
	if m.inj != nil {
		key := [2]NodeID{src, dst}
		msg.seq = m.meshSeq[key]
		m.meshSeq[key]++
	}
	m.stats.currentInFlight++
	if m.stats.currentInFlight > m.stats.PeakInFlight {
		m.stats.PeakInFlight = m.stats.currentInFlight
	}
	m.advance(msg)
	return nil
}

// advance tries to move msg's head flit across its next channel.
func (m *Mesh) advance(msg *message) {
	now := m.eng.Now()
	// The virtual bus freezes p2p progress: "other on-going
	// point-to-point messages are frozen in buffers."
	if now < m.busFreeAt {
		m.stats.FrozenByBus++
		m.eng.At(m.busFreeAt, func() { m.advance(msg) })
		return
	}
	if msg.hop >= len(msg.route) {
		m.deliver(msg)
		return
	}
	// An injected link outage stalls the head flit in its buffer until
	// the link recovers (inject/eject channels are node-local and never
	// go down).
	if m.inj != nil && m.inj.HasLinkDowns() {
		if a, b, ok := m.linkEnds(msg.route[msg.hop]); ok {
			if until := m.inj.LinkDownUntil(int(a), int(b), now); until > now {
				m.stats.LinkStalls++
				m.eng.At(until, func() { m.advance(msg) })
				return
			}
		}
	}
	ch := m.channelFor(msg.route[msg.hop])
	if ch.held {
		m.stats.BlockedAcquires++
		ch.waiters = append(ch.waiters, func() { m.advance(msg) })
		return
	}
	if ch.freeAt > now {
		m.stats.BlockedAcquires++
		m.eng.At(ch.freeAt, func() { m.advance(msg) })
		return
	}
	// Acquire: the channel is held until the tail drains (settled on
	// delivery). XY dimension order makes the hold graph acyclic, so
	// this cannot deadlock.
	ch.held = true
	msg.held = append(msg.held, ch)
	msg.hop++
	// Head flit crosses: router decision + wire propagation.
	m.eng.After(m.cfg.RouterLatency+m.link.PropagationDelay(), func() { m.advance(msg) })
}

// deliver fires when the head flit ejects at dst; the tail drains after
// (flits-1) launch intervals, which is when channels release and the
// completion callback runs. Under fault injection, a dropped or
// CRC-corrupted stream is re-driven over the already-held wormhole
// path (one extra full stream per failed attempt, bounded by the
// injector's retry limit), so delivery is guaranteed but slower.
func (m *Mesh) deliver(msg *message) {
	drain := sim.Time(msg.flits-1) * m.link.LaunchInterval()
	if m.inj != nil {
		resend := sim.Time(msg.flits)*m.link.LaunchInterval() + m.link.PropagationDelay()
		for attempt := 0; attempt <= m.inj.MaxRetry(); attempt++ {
			if m.inj.MeshFate(int(msg.src), int(msg.dst), msg.seq, attempt) == fault.Delivered {
				break
			}
			m.stats.Retransmissions++
			drain += resend
		}
	}
	m.scheduleRelease(msg, m.eng.Now()+drain)
}

// linkEnds reports the two nodes an inter-router channel connects
// (ok=false for the node-local inject/eject channels).
func (m *Mesh) linkEnds(k chanKey) (a, b NodeID, ok bool) {
	switch {
	case k.dir == Inject || k.dir == Eject:
		return 0, 0, false
	case k.dir > Eject:
		// Hypercube dimension channel.
		d := int(k.dir) - int(Eject) - 1
		return k.node, NodeID(int(k.node) ^ (1 << d)), true
	}
	x, y := m.Coord(k.node)
	switch k.dir {
	case East:
		x = mod(x+1, m.cfg.Width)
	case West:
		x = mod(x-1, m.cfg.Width)
	case South:
		y = mod(y+1, m.cfg.Height)
	case North:
		y = mod(y-1, m.cfg.Height)
	}
	return k.node, m.NodeAt(x, y), true
}

// scheduleRelease arms (or re-arms, after a bus freeze) the event that
// releases msg's channels and completes delivery.
func (m *Mesh) scheduleRelease(msg *message, release sim.Time) {
	msg.release = release
	m.draining[msg] = struct{}{}
	msg.relEv = m.eng.At(release, func() {
		delete(m.draining, msg)
		for _, ch := range msg.held {
			ch.held = false
			ch.freeAt = release
			waiters := ch.waiters
			ch.waiters = nil
			for _, w := range waiters {
				w()
			}
		}
		m.stats.currentInFlight--
		m.stats.MessagesDelivered++
		m.stats.FlitsDelivered += int64(msg.flits)
		m.stats.TotalBytesDelivered += int64(msg.flits) * int64(m.stats.BytesPerFlit)
		m.stats.DeliveredByDst[msg.dst]++
		lat := release - msg.injected
		m.stats.TotalLatency += lat
		if lat > m.stats.MaxLatency {
			m.stats.MaxLatency = lat
		}
		if msg.done != nil {
			msg.done(release)
		}
	})
}

// Broadcast issues a V-Bus broadcast from src at the current engine
// time. The network constructs a virtual bus (arbitration + freeze),
// drives the message once — source and destinations are "connected
// directly through the virtual bus connection without intervening
// buffers" — and every other node receives it simultaneously. done
// (optional) is called once at completion with the delivery time.
// An invalid source or negative payload yields an error and drives
// nothing.
func (m *Mesh) Broadcast(src NodeID, bytes int, done func(sim.Time)) error {
	if !m.valid(src) {
		return fmt.Errorf("mesh: broadcast from invalid node %d on %dx%d mesh", src, m.cfg.Width, m.cfg.Height)
	}
	if bytes < 0 {
		return fmt.Errorf("mesh: broadcast from %d with negative payload %d", src, bytes)
	}
	flits := m.FlitsFor(bytes)
	now := m.eng.Now()
	start := now
	if m.busFreeAt > start {
		start = m.busFreeAt // back-to-back broadcasts serialize on the bus
	}
	// The virtual bus is constructed from the mesh's physical links, so
	// an injected outage anywhere blocks bus construction until the
	// link recovers — a broadcast cannot be driven over a dead wire.
	if m.inj != nil && m.inj.HasLinkDowns() {
		for {
			until := m.inj.AnyLinkDownUntil(start)
			if until <= start {
				break
			}
			m.stats.LinkStalls++
			start = until
		}
	}
	// Bus setup: arbitration plus driving the bus lines across the
	// diameter of the mesh (no per-hop router latency: no buffering).
	setup := m.cfg.BusArbitration + sim.Time(m.Diameter())*m.link.PropagationDelay()
	// Stream all flits once over the bus.
	stream := sim.Time(flits-1)*m.link.LaunchInterval() + m.link.PropagationDelay()
	end := start + setup + stream
	m.stats.BusOccupancy += end - now
	m.busFreeAt = end
	// Freeze p2p messages that are mid-drain: their tails stop moving
	// for the bus window and resume afterwards.
	busDur := end - start
	for msg := range m.draining {
		if msg.release > start {
			msg.relEv.Cancel()
			m.stats.FrozenByBus++
			m.scheduleRelease(msg, msg.release+busDur)
		}
	}
	m.eng.At(end, func() {
		m.stats.BroadcastsDone++
		m.stats.FlitsDelivered += int64(flits) * int64(m.Nodes()-1)
		if done != nil {
			done(end)
		}
	})
	return nil
}

// P2PTime analytically reports the uncontended point-to-point time for
// a payload between two nodes (used to calibrate the cluster model).
func (m *Mesh) P2PTime(src, dst NodeID, bytes int) sim.Time {
	hops := m.Hops(src, dst) + 2 // + inject/eject
	head := sim.Time(hops) * (m.cfg.RouterLatency + m.link.PropagationDelay())
	return head + sim.Time(m.FlitsFor(bytes)-1)*m.link.LaunchInterval()
}

// BroadcastTime analytically reports the uncontended V-Bus broadcast
// time for a payload.
func (m *Mesh) BroadcastTime(bytes int) sim.Time {
	setup := m.cfg.BusArbitration + sim.Time(m.Diameter())*m.link.PropagationDelay()
	stream := sim.Time(m.FlitsFor(bytes)-1)*m.link.LaunchInterval() + m.link.PropagationDelay()
	return setup + stream
}
