// Package mesh simulates the V-Bus interconnection network: a 2-D mesh
// of wormhole routers whose channels are the wave-pipelined links from
// internal/fabric, plus the paper's Virtual Bus — a broadcast bus that
// is dynamically constructed over the mesh when a broadcast request is
// issued, freezing on-going point-to-point messages in their buffers
// while the bus is driven.
//
// The simulator works at message granularity with wormhole semantics: a
// message acquires the channels along its dimension-ordered (XY) route
// hop by hop, holds every acquired channel until its tail flit drains
// (backpressure), and contends FIFO for busy channels. This is the
// standard message-level wormhole approximation; it preserves the cost
// structure the paper's evaluation depends on (head latency per hop,
// serialization at the bottleneck link rate, blocking under contention,
// and bus preemption for broadcasts).
package mesh

import (
	"errors"
	"fmt"
	"strings"

	"vbuscluster/internal/fabric"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/sim"
)

// NodeID identifies a node (PC) on the mesh, numbered row-major
// (dimension 0 is the fastest-varying coordinate).
type NodeID int

// Named configuration errors, matchable with errors.Is.
var (
	// ErrBadGeometry rejects a geometry with a dimension below 1.
	ErrBadGeometry = errors.New("mesh: invalid geometry")
	// ErrGeometryMismatch rejects inconsistent geometry specifications
	// (conflicting Width×Height vs Dims, or a node population that
	// does not fit the geometry).
	ErrGeometryMismatch = errors.New("mesh: geometry mismatch")
)

// Config describes the mesh geometry and its physical channels.
type Config struct {
	// Width and Height are the classic 2-D geometry (kept as the
	// common case and for backward compatibility). Ignored when Dims
	// is set — unless both are given and disagree, which is an error.
	Width, Height int

	// Dims generalizes the geometry to an N-dimensional grid (e.g.
	// [16, 8, 8] for the 1024-node 3-D torus an APEnet-style fabric
	// uses). Empty means [Width, Height]. Routing stays
	// dimension-ordered across all dimensions.
	Dims []int

	// Torus adds wrap-around channels in every dimension (the paper
	// lists "mesh, torus and hypercube" as the switched networks the
	// V-Bus design targets). Routing stays dimension-ordered but picks
	// the shorter direction around each ring.
	Torus bool

	// Hypercube replaces the grid entirely with a binary n-cube over
	// the geometry's node count (which must be a power of two): node i
	// links to i^(1<<d) for each dimension d, routed e-cube (lowest
	// differing bit first), which is deadlock-free by dimension
	// ordering.
	Hypercube bool

	// Channel physics (shared by every mesh channel).
	LinkMode fabric.PipelineMode
	Lines    fabric.LineSet
	Margin   sim.Time
	Sampler  fabric.SkewSampler

	// RouterLatency is the per-hop routing decision + switch traversal
	// time for the head flit.
	RouterLatency sim.Time

	// BusArbitration is the fixed cost of constructing the virtual bus
	// (grant + freeze propagation) before a broadcast may be driven.
	BusArbitration sim.Time
}

// Dir is a channel direction out of a router.
type Dir int

// Channel directions. Inject/Eject are the NIC-router channels.
// Values beyond Eject encode either a hypercube dimension (cubeDir)
// or a mesh dimension beyond the first two (dirFor) — the two
// encodings share the value space because the topologies are mutually
// exclusive.
const (
	East Dir = iota
	West
	North
	South
	Inject
	Eject
)

func (d Dir) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	case Inject:
		return "inj"
	case Eject:
		return "ej"
	}
	if k := int(d) - int(Eject) - 1; k >= 0 {
		// Higher mesh dimension: D2+, D2-, D3+, ... (a hypercube
		// channel of cube dimension c prints as the mesh encoding of
		// the same value).
		sign := "+"
		if k%2 == 1 {
			sign = "-"
		}
		return fmt.Sprintf("D%d%s", 2+k/2, sign)
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// dirFor encodes a mesh dimension and direction as a channel Dir:
// dimensions 0 and 1 keep the classic compass names, higher
// dimensions extend past Eject in (positive, negative) pairs.
func dirFor(d int, fwd bool) Dir {
	switch d {
	case 0:
		if fwd {
			return East
		}
		return West
	case 1:
		if fwd {
			return South
		}
		return North
	}
	k := int(Eject) + 1 + 2*(d-2)
	if !fwd {
		k++
	}
	return Dir(k)
}

// meshDim decodes dirFor: the dimension and direction of a mesh
// channel Dir.
func meshDim(d Dir) (dim int, fwd bool) {
	switch d {
	case East:
		return 0, true
	case West:
		return 0, false
	case South:
		return 1, true
	case North:
		return 1, false
	}
	k := int(d) - int(Eject) - 1
	return 2 + k/2, k%2 == 0
}

// chanKey names one directed channel: the channel leaving node in
// direction dir on virtual channel vc. Virtual channels exist for
// torus deadlock freedom: a message that crosses a dimension's
// wrap-around link (the "dateline") continues on vc 1, which breaks
// the cyclic channel-dependency a ring would otherwise form under
// wormhole holds. Mesh routing always uses vc 0.
type chanKey struct {
	node NodeID
	dir  Dir
	vc   int
}

// channel tracks FIFO occupancy of one directed physical channel. While
// a message holds the channel (wormhole: from head acquisition until its
// tail drains), arrivals queue as waiters and are woken in FIFO order on
// release.
type channel struct {
	held    bool
	freeAt  sim.Time // earliest reacquire time once not held
	waiters []func()
}

// Stats aggregates delivery statistics.
type Stats struct {
	MessagesDelivered   int
	BroadcastsDone      int
	FlitsDelivered      int64
	TotalLatency        sim.Time
	MaxLatency          sim.Time
	BlockedAcquires     int // channel acquisitions that had to wait
	FrozenByBus         int // p2p progress events delayed by a virtual bus
	LinkStalls          int // head-flit advances stalled by an injected link outage
	Retransmissions     int // message streams repeated after injected drop/corruption
	BusOccupancy        sim.Time
	PeakInFlight        int
	currentInFlight     int
	DeliveredByDst      map[NodeID]int
	BytesPerFlit        int
	TotalBytesDelivered int64
}

// Mesh is the network simulator. All methods must be called from the
// owning goroutine (typically inside engine events).
type Mesh struct {
	eng  *sim.Engine
	cfg  Config
	link *fabric.Link // channel timing model (per hop, freshly sampled)

	// dims is the normalized geometry ([Width, Height] when cfg.Dims
	// is empty); strides are the row-major coordinate multipliers.
	dims    []int
	strides []int

	channels map[chanKey]*channel
	draining map[*message]struct{}

	// busFreeAt is the time the current/last virtual bus releases the
	// network. P2p progress is frozen until then.
	busFreeAt sim.Time

	// inj injects flit-level faults (nil = clean network): link outages
	// stall head flits, drop/corruption forces full message re-streams.
	inj *fault.Injector
	// meshSeq numbers each (src,dst) pair's messages so fault decisions
	// are deterministic and independent of event interleaving.
	meshSeq map[[2]NodeID]int

	stats Stats
}

// geomString renders a geometry as "16x8x8".
func geomString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return strings.Join(parts, "x")
}

// prodDims is the node count of a geometry.
func prodDims(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

// New validates cfg and builds the mesh. A geometry with a dimension
// below 1 fails with ErrBadGeometry; conflicting Width×Height and
// Dims specifications fail with ErrGeometryMismatch — both named, so
// callers fed from external configuration can classify the rejection
// instead of discovering it as an index panic deep inside Route.
func New(eng *sim.Engine, cfg Config) (*Mesh, error) {
	dims := append([]int(nil), cfg.Dims...)
	if len(dims) == 0 {
		dims = []int{cfg.Width, cfg.Height}
	} else if (cfg.Width != 0 || cfg.Height != 0) && cfg.Width*cfg.Height != prodDims(dims) {
		return nil, fmt.Errorf("%w: Width×Height %dx%d conflicts with Dims %s",
			ErrGeometryMismatch, cfg.Width, cfg.Height, geomString(dims))
	}
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("%w %s", ErrBadGeometry, geomString(dims))
		}
	}
	if cfg.RouterLatency < 0 || cfg.BusArbitration < 0 {
		return nil, fmt.Errorf("mesh: negative latency config")
	}
	if cfg.Hypercube {
		if cfg.Torus {
			return nil, fmt.Errorf("mesh: Torus and Hypercube are mutually exclusive")
		}
		if n := prodDims(dims); n&(n-1) != 0 {
			return nil, fmt.Errorf("mesh: hypercube needs a power-of-two node count, got %d", n)
		}
	}
	l, err := fabric.NewLink(fabric.LinkConfig{
		Mode:    cfg.LinkMode,
		Lines:   cfg.Lines,
		Margin:  cfg.Margin,
		Sampler: cfg.Sampler,
	})
	if err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	strides := make([]int, len(dims))
	s := 1
	for i, d := range dims {
		strides[i] = s
		s *= d
	}
	m := &Mesh{
		eng:      eng,
		cfg:      cfg,
		link:     l,
		dims:     dims,
		strides:  strides,
		channels: make(map[chanKey]*channel),
		draining: make(map[*message]struct{}),
		meshSeq:  make(map[[2]NodeID]int),
	}
	m.stats.DeliveredByDst = make(map[NodeID]int)
	m.stats.BytesPerFlit = l.Width() / 8
	return m, nil
}

// Nodes reports the node count.
func (m *Mesh) Nodes() int { return prodDims(m.dims) }

// Dims returns the normalized geometry (a copy).
func (m *Mesh) Dims() []int { return append([]int(nil), m.dims...) }

// Engine returns the driving event engine.
func (m *Mesh) Engine() *sim.Engine { return m.eng }

// BytesPerFlit reports the payload bytes carried per flit (= link width).
func (m *Mesh) BytesPerFlit() int { return m.stats.BytesPerFlit }

// Stats returns a snapshot of delivery statistics.
func (m *Mesh) Stats() Stats { return m.stats }

// SetFaults attaches a fault injector to the network. Pass nil to
// restore clean operation. Must be called before traffic is injected.
func (m *Mesh) SetFaults(inj *fault.Injector) { m.inj = inj }

// Coord maps a NodeID to its first two mesh coordinates (the classic
// 2-D view; use coords for the full coordinate vector).
func (m *Mesh) Coord(n NodeID) (x, y int) {
	return int(n) % m.dims[0], int(n) / m.dims[0]
}

// NodeAt maps 2-D coordinates to a NodeID.
func (m *Mesh) NodeAt(x, y int) NodeID { return NodeID(y*m.dims[0] + x) }

// coords maps a NodeID to its full row-major coordinate vector.
func (m *Mesh) coords(n NodeID) []int {
	c := make([]int, len(m.dims))
	for d := range m.dims {
		c[d] = (int(n) / m.strides[d]) % m.dims[d]
	}
	return c
}

// nodeAtCoords maps a coordinate vector back to a NodeID.
func (m *Mesh) nodeAtCoords(c []int) NodeID {
	n := 0
	for d := range m.dims {
		n += c[d] * m.strides[d]
	}
	return NodeID(n)
}

// valid reports whether n is a node of this mesh.
func (m *Mesh) valid(n NodeID) bool { return n >= 0 && int(n) < m.Nodes() }

// Route computes the dimension-ordered channel sequence from src to
// dst (dimension 0 fully corrected first, then 1, ...), including the
// injection and ejection channels. Dimension ordering makes the
// wormhole hold graph acyclic in any number of dimensions; on a torus
// each dimension additionally switches to virtual channel 1 after
// crossing that dimension's wrap-around link (its dateline), breaking
// the per-ring cyclic dependency. Nodes outside the mesh yield an
// error rather than a panic, so callers fed from external
// configuration can report the problem.
func (m *Mesh) Route(src, dst NodeID) ([]chanKey, error) {
	if !m.valid(src) || !m.valid(dst) {
		return nil, fmt.Errorf("mesh: route %d->%d outside %s mesh", src, dst, geomString(m.dims))
	}
	route := []chanKey{{src, Inject, 0}}
	if m.cfg.Hypercube {
		// E-cube: correct differing bits lowest-first. Channel "dir"
		// values beyond Eject encode the cube dimension.
		cur := int(src)
		diff := cur ^ int(dst)
		for d := 0; diff != 0; d++ {
			if diff&1 == 1 {
				route = append(route, chanKey{NodeID(cur), cubeDir(d), 0})
				cur ^= 1 << d
			}
			diff >>= 1
		}
		route = append(route, chanKey{dst, Eject, 0})
		return route, nil
	}
	cur := m.coords(src)
	want := m.coords(dst)
	for d := range m.dims {
		size := m.dims[d]
		vc := 0
		for cur[d] != want[d] {
			fwd := cur[d] < want[d]
			if m.cfg.Torus {
				f := mod(want[d]-cur[d], size)
				fwd = f <= size-f // ties break toward the positive ring
			}
			if fwd {
				if m.cfg.Torus && cur[d] == size-1 {
					vc = 1 // crossing this dimension's dateline
				}
				route = append(route, chanKey{m.nodeAtCoords(cur), dirFor(d, true), vc})
				cur[d]++
				if m.cfg.Torus {
					cur[d] = mod(cur[d], size)
				}
			} else {
				if m.cfg.Torus && cur[d] == 0 {
					vc = 1
				}
				route = append(route, chanKey{m.nodeAtCoords(cur), dirFor(d, false), vc})
				cur[d]--
				if m.cfg.Torus {
					cur[d] = mod(cur[d], size)
				}
			}
		}
	}
	route = append(route, chanKey{dst, Eject, 0})
	return route, nil
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// cubeDir encodes a hypercube dimension as a channel direction.
func cubeDir(d int) Dir { return Dir(int(Eject) + 1 + d) }

// Hops reports the hop count (mesh channels, excluding inject/eject)
// between two nodes.
func (m *Mesh) Hops(src, dst NodeID) int {
	if m.cfg.Hypercube {
		diff := uint(int(src) ^ int(dst))
		n := 0
		for diff != 0 {
			n += int(diff & 1)
			diff >>= 1
		}
		return n
	}
	a := m.coords(src)
	b := m.coords(dst)
	total := 0
	for d := range m.dims {
		diff := abs(a[d] - b[d])
		if m.cfg.Torus {
			if w := m.dims[d] - diff; w < diff {
				diff = w
			}
		}
		total += diff
	}
	return total
}

// Diameter is the longest shortest-path hop count on the network.
func (m *Mesh) Diameter() int {
	if m.cfg.Hypercube {
		d := 0
		for n := m.Nodes(); n > 1; n >>= 1 {
			d++
		}
		return d
	}
	total := 0
	for _, size := range m.dims {
		if m.cfg.Torus {
			total += size / 2
		} else {
			total += size - 1
		}
	}
	return total
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (m *Mesh) channelFor(k chanKey) *channel {
	c, ok := m.channels[k]
	if !ok {
		c = &channel{}
		m.channels[k] = c
	}
	return c
}

// message is an in-flight wormhole message.
type message struct {
	src, dst NodeID
	flits    int
	seq      int // per-(src,dst) order for fault decisions
	route    []chanKey
	hop      int
	injected sim.Time
	done     func(deliveredAt sim.Time)
	held     []*channel
	release  sim.Time
	relEv    *sim.Event
}

// FlitsFor converts a payload byte count to a flit count (at least one
// flit: the head flit carries routing info even for empty payloads).
func (m *Mesh) FlitsFor(bytes int) int {
	if bytes < 0 {
		panic("mesh: negative payload")
	}
	bpf := m.stats.BytesPerFlit
	f := (bytes + bpf - 1) / bpf
	if f == 0 {
		f = 1
	}
	return f
}

// Send injects a point-to-point message at the current engine time.
// done (optional) is called when the tail flit is ejected at dst.
// Invalid endpoints or a negative payload yield an error and inject
// nothing.
func (m *Mesh) Send(src, dst NodeID, bytes int, done func(sim.Time)) error {
	if bytes < 0 {
		return fmt.Errorf("mesh: send %d->%d with negative payload %d", src, dst, bytes)
	}
	route, err := m.Route(src, dst)
	if err != nil {
		return err
	}
	msg := &message{
		src:      src,
		dst:      dst,
		flits:    m.FlitsFor(bytes),
		route:    route,
		injected: m.eng.Now(),
		done:     done,
	}
	if m.inj != nil {
		key := [2]NodeID{src, dst}
		msg.seq = m.meshSeq[key]
		m.meshSeq[key]++
	}
	m.stats.currentInFlight++
	if m.stats.currentInFlight > m.stats.PeakInFlight {
		m.stats.PeakInFlight = m.stats.currentInFlight
	}
	m.advance(msg)
	return nil
}

// advance tries to move msg's head flit across its next channel.
func (m *Mesh) advance(msg *message) {
	now := m.eng.Now()
	// The virtual bus freezes p2p progress: "other on-going
	// point-to-point messages are frozen in buffers."
	if now < m.busFreeAt {
		m.stats.FrozenByBus++
		m.eng.At(m.busFreeAt, func() { m.advance(msg) })
		return
	}
	if msg.hop >= len(msg.route) {
		m.deliver(msg)
		return
	}
	// An injected link outage stalls the head flit in its buffer until
	// the link recovers (inject/eject channels are node-local and never
	// go down).
	if m.inj != nil && m.inj.HasLinkDowns() {
		if a, b, ok := m.linkEnds(msg.route[msg.hop]); ok {
			if until := m.inj.LinkDownUntil(int(a), int(b), now); until > now {
				m.stats.LinkStalls++
				m.eng.At(until, func() { m.advance(msg) })
				return
			}
		}
	}
	ch := m.channelFor(msg.route[msg.hop])
	if ch.held {
		m.stats.BlockedAcquires++
		ch.waiters = append(ch.waiters, func() { m.advance(msg) })
		return
	}
	if ch.freeAt > now {
		m.stats.BlockedAcquires++
		m.eng.At(ch.freeAt, func() { m.advance(msg) })
		return
	}
	// Acquire: the channel is held until the tail drains (settled on
	// delivery). XY dimension order makes the hold graph acyclic, so
	// this cannot deadlock.
	ch.held = true
	msg.held = append(msg.held, ch)
	msg.hop++
	// Head flit crosses: router decision + wire propagation.
	m.eng.After(m.cfg.RouterLatency+m.link.PropagationDelay(), func() { m.advance(msg) })
}

// deliver fires when the head flit ejects at dst; the tail drains after
// (flits-1) launch intervals, which is when channels release and the
// completion callback runs. Under fault injection, a dropped or
// CRC-corrupted stream is re-driven over the already-held wormhole
// path (one extra full stream per failed attempt, bounded by the
// injector's retry limit), so delivery is guaranteed but slower.
func (m *Mesh) deliver(msg *message) {
	drain := sim.Time(msg.flits-1) * m.link.LaunchInterval()
	if m.inj != nil {
		resend := sim.Time(msg.flits)*m.link.LaunchInterval() + m.link.PropagationDelay()
		for attempt := 0; attempt <= m.inj.MaxRetry(); attempt++ {
			if m.inj.MeshFate(int(msg.src), int(msg.dst), msg.seq, attempt) == fault.Delivered {
				break
			}
			m.stats.Retransmissions++
			drain += resend
		}
	}
	m.scheduleRelease(msg, m.eng.Now()+drain)
}

// linkEnds reports the two nodes an inter-router channel connects
// (ok=false for the node-local inject/eject channels).
func (m *Mesh) linkEnds(k chanKey) (a, b NodeID, ok bool) {
	if k.dir == Inject || k.dir == Eject {
		return 0, 0, false
	}
	if m.cfg.Hypercube && k.dir > Eject {
		// Hypercube dimension channel.
		d := int(k.dir) - int(Eject) - 1
		return k.node, NodeID(int(k.node) ^ (1 << d)), true
	}
	dim, fwd := meshDim(k.dir)
	c := m.coords(k.node)
	if fwd {
		c[dim] = mod(c[dim]+1, m.dims[dim])
	} else {
		c[dim] = mod(c[dim]-1, m.dims[dim])
	}
	return k.node, m.nodeAtCoords(c), true
}

// scheduleRelease arms (or re-arms, after a bus freeze) the event that
// releases msg's channels and completes delivery.
func (m *Mesh) scheduleRelease(msg *message, release sim.Time) {
	msg.release = release
	m.draining[msg] = struct{}{}
	msg.relEv = m.eng.At(release, func() {
		delete(m.draining, msg)
		for _, ch := range msg.held {
			ch.held = false
			ch.freeAt = release
			waiters := ch.waiters
			ch.waiters = nil
			for _, w := range waiters {
				w()
			}
		}
		m.stats.currentInFlight--
		m.stats.MessagesDelivered++
		m.stats.FlitsDelivered += int64(msg.flits)
		m.stats.TotalBytesDelivered += int64(msg.flits) * int64(m.stats.BytesPerFlit)
		m.stats.DeliveredByDst[msg.dst]++
		lat := release - msg.injected
		m.stats.TotalLatency += lat
		if lat > m.stats.MaxLatency {
			m.stats.MaxLatency = lat
		}
		if msg.done != nil {
			msg.done(release)
		}
	})
}

// Broadcast issues a V-Bus broadcast from src at the current engine
// time. The network constructs a virtual bus (arbitration + freeze),
// drives the message once — source and destinations are "connected
// directly through the virtual bus connection without intervening
// buffers" — and every other node receives it simultaneously. done
// (optional) is called once at completion with the delivery time.
// An invalid source or negative payload yields an error and drives
// nothing.
func (m *Mesh) Broadcast(src NodeID, bytes int, done func(sim.Time)) error {
	if !m.valid(src) {
		return fmt.Errorf("mesh: broadcast from invalid node %d on %s mesh", src, geomString(m.dims))
	}
	if bytes < 0 {
		return fmt.Errorf("mesh: broadcast from %d with negative payload %d", src, bytes)
	}
	flits := m.FlitsFor(bytes)
	now := m.eng.Now()
	start := now
	if m.busFreeAt > start {
		start = m.busFreeAt // back-to-back broadcasts serialize on the bus
	}
	// The virtual bus is constructed from the mesh's physical links, so
	// an injected outage anywhere blocks bus construction until the
	// link recovers — a broadcast cannot be driven over a dead wire.
	if m.inj != nil && m.inj.HasLinkDowns() {
		for {
			until := m.inj.AnyLinkDownUntil(start)
			if until <= start {
				break
			}
			m.stats.LinkStalls++
			start = until
		}
	}
	// Bus setup: arbitration plus driving the bus lines across the
	// diameter of the mesh (no per-hop router latency: no buffering).
	setup := m.cfg.BusArbitration + sim.Time(m.Diameter())*m.link.PropagationDelay()
	// Stream all flits once over the bus.
	stream := sim.Time(flits-1)*m.link.LaunchInterval() + m.link.PropagationDelay()
	end := start + setup + stream
	m.stats.BusOccupancy += end - now
	m.busFreeAt = end
	// Freeze p2p messages that are mid-drain: their tails stop moving
	// for the bus window and resume afterwards.
	busDur := end - start
	for msg := range m.draining {
		if msg.release > start {
			msg.relEv.Cancel()
			m.stats.FrozenByBus++
			m.scheduleRelease(msg, msg.release+busDur)
		}
	}
	m.eng.At(end, func() {
		m.stats.BroadcastsDone++
		m.stats.FlitsDelivered += int64(flits) * int64(m.Nodes()-1)
		if done != nil {
			done(end)
		}
	})
	return nil
}

// P2PTime analytically reports the uncontended point-to-point time for
// a payload between two nodes (used to calibrate the cluster model).
func (m *Mesh) P2PTime(src, dst NodeID, bytes int) sim.Time {
	hops := m.Hops(src, dst) + 2 // + inject/eject
	head := sim.Time(hops) * (m.cfg.RouterLatency + m.link.PropagationDelay())
	return head + sim.Time(m.FlitsFor(bytes)-1)*m.link.LaunchInterval()
}

// BroadcastTime analytically reports the uncontended V-Bus broadcast
// time for a payload.
func (m *Mesh) BroadcastTime(bytes int) sim.Time {
	setup := m.cfg.BusArbitration + sim.Time(m.Diameter())*m.link.PropagationDelay()
	stream := sim.Time(m.FlitsFor(bytes)-1)*m.link.LaunchInterval() + m.link.PropagationDelay()
	return setup + stream
}
