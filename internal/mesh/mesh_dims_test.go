package mesh

import (
	"errors"
	"testing"

	"vbuscluster/internal/sim"
)

func testConfig3(dims []int, torus bool) Config {
	cfg := testConfig(0, 0)
	cfg.Width, cfg.Height = 0, 0
	cfg.Dims = dims
	cfg.Torus = torus
	return cfg
}

func TestDimsValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, testConfig3([]int{4, 0, 4}, false)); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("zero dimension: got %v, want ErrBadGeometry", err)
	}
	if _, err := New(eng, testConfig3([]int{4, -1}, false)); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("negative dimension: got %v, want ErrBadGeometry", err)
	}
	cfg := testConfig(4, 4) // 16 nodes...
	cfg.Dims = []int{2, 2, 2}
	if _, err := New(eng, cfg); !errors.Is(err, ErrGeometryMismatch) { // ...but Dims says 8
		t.Fatalf("conflicting Width×Height vs Dims: got %v, want ErrGeometryMismatch", err)
	}
	cfg = testConfig(4, 4)
	cfg.Dims = []int{4, 2, 2} // same node count: consistent
	if _, err := New(eng, cfg); err != nil {
		t.Fatalf("consistent Width×Height + Dims rejected: %v", err)
	}
}

// A 2D Dims config must behave exactly like the equivalent legacy
// Width/Height config.
func TestDims2DCompat(t *testing.T) {
	engA := sim.NewEngine()
	a, err := New(engA, testConfig(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	engB := sim.NewEngine()
	b, err := New(engB, testConfig3([]int{4, 3}, false))
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes() != b.Nodes() || a.Diameter() != b.Diameter() {
		t.Fatalf("shape mismatch: %d/%d nodes, %d/%d diameter",
			a.Nodes(), b.Nodes(), a.Diameter(), b.Diameter())
	}
	for src := NodeID(0); int(src) < a.Nodes(); src++ {
		for dst := NodeID(0); int(dst) < a.Nodes(); dst++ {
			if a.Hops(src, dst) != b.Hops(src, dst) {
				t.Fatalf("hops(%d,%d): %d vs %d", src, dst, a.Hops(src, dst), b.Hops(src, dst))
			}
		}
	}
}

func TestRoute3DTorus(t *testing.T) {
	eng := sim.NewEngine()
	m, err := New(eng, testConfig3([]int{4, 4, 4}, true))
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 64 {
		t.Fatalf("nodes = %d, want 64", m.Nodes())
	}
	// Opposite corner (3,3,3) = node 63: one wrap hop per dimension.
	if h := m.Hops(0, 63); h != 3 {
		t.Fatalf("torus corner hops = %d, want 3", h)
	}
	if d := m.Diameter(); d != 6 {
		t.Fatalf("4x4x4 torus diameter = %d, want 6", d)
	}
	r := mustRoute(t, m, 0, 63)
	if len(r) != 5 {
		t.Fatalf("route length = %d, want 5 (inject + 3 + eject): %v", len(r), r)
	}
	if r[0].dir != Inject || r[4].dir != Eject {
		t.Fatalf("route endpoints wrong: %v", r)
	}
	// Dimension order: the X wrap first, then Y, then Z — each on the
	// negative ring (distance 1 backward vs 3 forward).
	if r[1].dir != West || r[2].dir != North || r[3].dir != dirFor(2, false) {
		t.Fatalf("route dirs = %v %v %v, want W N D2-", r[1].dir, r[2].dir, r[3].dir)
	}
	// Every cross-dateline hop must ride virtual channel 1.
	for _, k := range r[1:4] {
		if k.vc != 1 {
			t.Fatalf("dateline hop %v on vc %d, want 1", k, k.vc)
		}
	}
}

func TestRoute3DMeshDelivers(t *testing.T) {
	eng := sim.NewEngine()
	m, err := New(eng, testConfig3([]int{3, 3, 3}, false))
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Time
	if err := m.Send(0, 26, 512, func(at sim.Time) { got = at }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got == 0 {
		t.Fatal("3D send never delivered")
	}
	if want := m.P2PTime(0, 26, 512); got != want {
		t.Fatalf("uncontended 3D delivery at %v, analytic %v", got, want)
	}
	if h := m.Hops(0, 26); h != 6 {
		t.Fatalf("corner hops = %d, want 6", h)
	}
}

// All-pairs traffic on a 3D torus must drain: the per-dimension
// dateline virtual channels keep the extended dimension-ordered
// routing deadlock-free.
func TestTorus3DAllPairsDrain(t *testing.T) {
	eng := sim.NewEngine()
	m, err := New(eng, testConfig3([]int{3, 3, 2}, true))
	if err != nil {
		t.Fatal(err)
	}
	want, got := 0, 0
	for src := NodeID(0); int(src) < m.Nodes(); src++ {
		for dst := NodeID(0); int(dst) < m.Nodes(); dst++ {
			if src == dst {
				continue
			}
			want++
			if err := m.Send(src, dst, 128, func(sim.Time) { got++ }); err != nil {
				t.Fatalf("send %d->%d: %v", src, dst, err)
			}
		}
	}
	eng.Run()
	if got != want {
		t.Fatalf("delivered %d of %d messages", got, want)
	}
}

func TestRouteOutsideGeometryNamedError(t *testing.T) {
	eng := sim.NewEngine()
	m, err := New(eng, testConfig3([]int{2, 2, 2}, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Route(0, 8); err == nil {
		t.Fatal("out-of-mesh destination accepted")
	}
}
