package mesh

import (
	"testing"

	"vbuscluster/internal/sim"
)

func TestTorusRandomTrafficStress(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		eng := sim.NewEngine()
		cfg := testConfig(4, 4)
		cfg.Torus = true
		m, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := seed
		rand := func(mod int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		n := 60
		for i := 0; i < n; i++ {
			src := NodeID(rand(m.Nodes()))
			dst := NodeID(rand(m.Nodes()))
			m.Send(src, dst, rand(4096), nil)
		}
		eng.Run()
		if got := m.Stats().MessagesDelivered; got != n {
			t.Fatalf("seed %d: delivered %d of %d (torus deadlock?)", seed, got, n)
		}
	}
}
