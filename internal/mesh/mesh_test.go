package mesh

import (
	"testing"
	"testing/quick"

	"vbuscluster/internal/fabric"
	"vbuscluster/internal/sim"
)

func testConfig(w, h int) Config {
	return Config{
		Width:          w,
		Height:         h,
		LinkMode:       fabric.SKWP,
		Lines:          fabric.NewLineSet(32, 40*sim.Nanosecond, 4*sim.Nanosecond, 1),
		Margin:         2 * sim.Nanosecond,
		Sampler:        fabric.SkewSampler{Resolution: 8 * sim.Nanosecond},
		RouterLatency:  60 * sim.Nanosecond,
		BusArbitration: 200 * sim.Nanosecond,
	}
}

func newMesh(t *testing.T, w, h int) (*sim.Engine, *Mesh) {
	t.Helper()
	eng := sim.NewEngine()
	m, err := New(eng, testConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func mustRoute(t *testing.T, m *Mesh, src, dst NodeID) []chanKey {
	t.Helper()
	r, err := m.Route(src, dst)
	if err != nil {
		t.Fatalf("Route(%d,%d): %v", src, dst, err)
	}
	return r
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{Width: 0, Height: 2}); err == nil {
		t.Fatal("zero width accepted")
	}
	cfg := testConfig(2, 2)
	cfg.RouterLatency = -1
	if _, err := New(eng, cfg); err == nil {
		t.Fatal("negative router latency accepted")
	}
	cfg = testConfig(2, 2)
	cfg.Lines = fabric.LineSet{}
	if _, err := New(eng, cfg); err == nil {
		t.Fatal("empty line set accepted")
	}
}

func TestCoordRoundTrip(t *testing.T) {
	_, m := newMesh(t, 4, 3)
	for n := NodeID(0); int(n) < m.Nodes(); n++ {
		x, y := m.Coord(n)
		if m.NodeAt(x, y) != n {
			t.Fatalf("coord round trip failed for node %d", n)
		}
	}
}

func TestXYRouteShape(t *testing.T) {
	_, m := newMesh(t, 4, 4)
	r := mustRoute(t, m, m.NodeAt(0, 0), m.NodeAt(3, 2))
	// inject + 3 east + 2 south + eject
	if len(r) != 7 {
		t.Fatalf("route length = %d, want 7: %v", len(r), r)
	}
	if r[0].dir != Inject || r[len(r)-1].dir != Eject {
		t.Fatalf("route endpoints wrong: %v", r)
	}
	for i := 1; i <= 3; i++ {
		if r[i].dir != East {
			t.Fatalf("hop %d = %v, want E", i, r[i].dir)
		}
	}
	for i := 4; i <= 5; i++ {
		if r[i].dir != South {
			t.Fatalf("hop %d = %v, want S", i, r[i].dir)
		}
	}
}

func TestRouteWestNorth(t *testing.T) {
	_, m := newMesh(t, 3, 3)
	r := mustRoute(t, m, m.NodeAt(2, 2), m.NodeAt(0, 0))
	if len(r) != 6 {
		t.Fatalf("route length = %d, want 6", len(r))
	}
	if r[1].dir != West || r[2].dir != West || r[3].dir != North || r[4].dir != North {
		t.Fatalf("route = %v", r)
	}
}

func TestHopsAndDiameter(t *testing.T) {
	_, m := newMesh(t, 4, 4)
	if m.Hops(0, 0) != 0 {
		t.Fatal("self hops != 0")
	}
	if h := m.Hops(m.NodeAt(0, 0), m.NodeAt(3, 3)); h != 6 {
		t.Fatalf("corner-to-corner hops = %d, want 6", h)
	}
	if m.Diameter() != 6 {
		t.Fatalf("diameter = %d, want 6", m.Diameter())
	}
}

func TestSelfSendDelivers(t *testing.T) {
	eng, m := newMesh(t, 2, 2)
	var at sim.Time
	m.Send(0, 0, 64, func(t sim.Time) { at = t })
	eng.Run()
	if at == 0 {
		t.Fatal("self send never delivered")
	}
}

func TestSingleMessageLatencyMatchesAnalytic(t *testing.T) {
	eng, m := newMesh(t, 2, 2)
	var got sim.Time
	m.Send(0, 3, 1024, func(t sim.Time) { got = t })
	eng.Run()
	want := m.P2PTime(0, 3, 1024)
	if got != want {
		t.Fatalf("uncontended delivery at %v, analytic %v", got, want)
	}
}

func TestFlitsFor(t *testing.T) {
	_, m := newMesh(t, 2, 2)
	bpf := m.BytesPerFlit()
	if bpf != 4 {
		t.Fatalf("bytes/flit = %d, want 4 for 32-line links", bpf)
	}
	if m.FlitsFor(0) != 1 {
		t.Fatal("empty payload should still need a head flit")
	}
	if m.FlitsFor(1) != 1 || m.FlitsFor(4) != 1 || m.FlitsFor(5) != 2 {
		t.Fatal("flit rounding wrong")
	}
}

func TestLargerMessagesTakeLonger(t *testing.T) {
	var prev sim.Time
	for _, bytes := range []int{16, 256, 4096, 65536} {
		eng, m := newMesh(t, 2, 2)
		var at sim.Time
		m.Send(0, 3, bytes, func(t sim.Time) { at = t })
		eng.Run()
		if at <= prev {
			t.Fatalf("delivery time for %dB (%v) not greater than smaller message (%v)", bytes, at, prev)
		}
		prev = at
	}
}

func TestContentionSerializes(t *testing.T) {
	// Two messages sharing the full route must serialize on the links.
	eng, m := newMesh(t, 4, 1)
	var first, second sim.Time
	m.Send(0, 3, 4096, func(t sim.Time) { first = t })
	m.Send(0, 3, 4096, func(t sim.Time) { second = t })
	eng.Run()
	if second <= first {
		t.Fatalf("contended messages did not serialize: %v then %v", first, second)
	}
	solo := m.P2PTime(0, 3, 4096)
	if second < solo*2-solo/2 {
		t.Fatalf("second message finished too early under contention: %v vs solo %v", second, solo)
	}
	if m.Stats().BlockedAcquires == 0 {
		t.Fatal("expected blocked acquisitions under contention")
	}
}

func TestDisjointRoutesDoNotInterfere(t *testing.T) {
	eng, m := newMesh(t, 4, 2)
	var a, b sim.Time
	// Row 0 west→east and row 1 west→east use disjoint channels.
	m.Send(m.NodeAt(0, 0), m.NodeAt(3, 0), 4096, func(t sim.Time) { a = t })
	m.Send(m.NodeAt(0, 1), m.NodeAt(3, 1), 4096, func(t sim.Time) { b = t })
	eng.Run()
	if a != b {
		t.Fatalf("disjoint transfers should complete simultaneously: %v vs %v", a, b)
	}
}

func TestAllPairsDeliver(t *testing.T) {
	eng, m := newMesh(t, 3, 3)
	want := 0
	for s := NodeID(0); int(s) < m.Nodes(); s++ {
		for d := NodeID(0); int(d) < m.Nodes(); d++ {
			if s == d {
				continue
			}
			m.Send(s, d, 128, nil)
			want++
		}
	}
	eng.Run()
	if got := m.Stats().MessagesDelivered; got != want {
		t.Fatalf("delivered %d of %d messages", got, want)
	}
}

func TestBroadcastDelivers(t *testing.T) {
	eng, m := newMesh(t, 2, 2)
	var at sim.Time
	m.Broadcast(0, 1024, func(t sim.Time) { at = t })
	eng.Run()
	if at != m.BroadcastTime(1024) {
		t.Fatalf("broadcast done at %v, analytic %v", at, m.BroadcastTime(1024))
	}
	if m.Stats().BroadcastsDone != 1 {
		t.Fatal("broadcast not recorded")
	}
}

// The headline V-Bus property: broadcasting over the virtual bus beats a
// software binomial tree of point-to-point messages.
func TestVBusBroadcastBeatsP2PTree(t *testing.T) {
	bytes := 4096
	eng, m := newMesh(t, 4, 4)
	var busDone sim.Time
	m.Broadcast(0, bytes, func(t sim.Time) { busDone = t })
	eng.Run()

	// Software broadcast: binomial tree, stage s doubles the holders.
	eng2, m2 := newMesh(t, 4, 4)
	var treeDone sim.Time
	holders := []NodeID{0}
	var stage func()
	next := 1
	stage = func() {
		if next >= m2.Nodes() {
			treeDone = eng2.Now()
			return
		}
		pending := 0
		var newHolders []NodeID
		for _, h := range holders {
			if next >= m2.Nodes() {
				break
			}
			dst := NodeID(next)
			next++
			pending++
			newHolders = append(newHolders, dst)
			m2.Send(h, dst, bytes, func(sim.Time) {
				pending--
				if pending == 0 {
					stage()
				}
			})
		}
		holders = append(holders, newHolders...)
	}
	stage()
	eng2.Run()

	if treeDone == 0 {
		t.Fatal("software tree broadcast never completed")
	}
	if busDone >= treeDone {
		t.Fatalf("V-Bus broadcast (%v) should beat p2p tree (%v)", busDone, treeDone)
	}
}

// "If an urgent message occurs, it can intervene on-going point-to-point
// communication": a broadcast freezes in-flight p2p traffic, which
// resumes afterwards and still delivers.
func TestBroadcastFreezesP2P(t *testing.T) {
	eng, m := newMesh(t, 4, 1)
	var p2pAt sim.Time
	m.Send(0, 3, 1<<16, func(t sim.Time) { p2pAt = t })
	// Issue the broadcast shortly after the p2p starts.
	eng.After(1*sim.Microsecond, func() { m.Broadcast(1, 1<<16, nil) })
	eng.Run()
	if p2pAt == 0 {
		t.Fatal("frozen p2p message never resumed")
	}
	solo := m.P2PTime(0, 3, 1<<16)
	if p2pAt <= solo {
		t.Fatalf("p2p unaffected by broadcast freeze: %v vs solo %v", p2pAt, solo)
	}
	if m.Stats().FrozenByBus == 0 {
		t.Fatal("freeze counter not incremented")
	}
}

func TestBackToBackBroadcastsSerialize(t *testing.T) {
	eng, m := newMesh(t, 2, 2)
	var first, second sim.Time
	m.Broadcast(0, 4096, func(t sim.Time) { first = t })
	m.Broadcast(1, 4096, func(t sim.Time) { second = t })
	eng.Run()
	if second <= first {
		t.Fatalf("broadcasts must serialize on the bus: %v, %v", first, second)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, m := newMesh(t, 2, 2)
	m.Send(0, 1, 100, nil)
	m.Send(1, 2, 100, nil)
	eng.Run()
	st := m.Stats()
	if st.MessagesDelivered != 2 {
		t.Fatalf("delivered = %d", st.MessagesDelivered)
	}
	if st.DeliveredByDst[1] != 1 || st.DeliveredByDst[2] != 1 {
		t.Fatalf("per-dst counts wrong: %v", st.DeliveredByDst)
	}
	if st.TotalLatency <= 0 || st.MaxLatency <= 0 {
		t.Fatal("latency stats not recorded")
	}
	if st.FlitsDelivered != int64(2*m.FlitsFor(100)) {
		t.Fatalf("flits delivered = %d", st.FlitsDelivered)
	}
}

// Property: every message injected into a random mesh with random
// traffic is eventually delivered (no deadlock, no loss) — XY routing's
// deadlock freedom carries over to the hold-based model.
func TestRandomTrafficAlwaysDelivers(t *testing.T) {
	f := func(seed int64, wRaw, hRaw, nRaw uint8) bool {
		w := int(wRaw%4) + 1
		h := int(hRaw%4) + 1
		n := int(nRaw%40) + 1
		eng := sim.NewEngine()
		m, err := New(eng, testConfig(w, h))
		if err != nil {
			return false
		}
		rng := seed
		rand := func(mod int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		for i := 0; i < n; i++ {
			src := NodeID(rand(m.Nodes()))
			dst := NodeID(rand(m.Nodes()))
			bytes := rand(8192)
			delay := sim.Time(rand(1000)) * sim.Nanosecond
			eng.After(delay, func() { m.Send(src, dst, bytes, nil) })
		}
		eng.Run()
		return m.Stats().MessagesDelivered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestP2PTimeGrowsWithDistance(t *testing.T) {
	_, m := newMesh(t, 4, 4)
	near := m.P2PTime(0, 1, 1024)
	far := m.P2PTime(0, 15, 1024)
	if far <= near {
		t.Fatalf("far transfer (%v) not slower than near (%v)", far, near)
	}
}

func newTorus(t *testing.T, w, h int) (*sim.Engine, *Mesh) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := testConfig(w, h)
	cfg.Torus = true
	m, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func TestTorusWrapRoutesShorter(t *testing.T) {
	_, mesh4 := newMesh(t, 4, 4)
	_, torus4 := newTorus(t, 4, 4)
	// Corner to corner: mesh 6 hops; torus wraps in 2.
	if mesh4.Hops(0, 15) != 6 {
		t.Fatalf("mesh hops = %d", mesh4.Hops(0, 15))
	}
	if torus4.Hops(0, 15) != 2 {
		t.Fatalf("torus hops = %d, want 2 via wrap", torus4.Hops(0, 15))
	}
	if torus4.Diameter() != 4 {
		t.Fatalf("torus diameter = %d", torus4.Diameter())
	}
}

func TestTorusRouteLengthMatchesHops(t *testing.T) {
	_, m := newTorus(t, 5, 3)
	for s := NodeID(0); int(s) < m.Nodes(); s++ {
		for d := NodeID(0); int(d) < m.Nodes(); d++ {
			r := mustRoute(t, m, s, d)
			if len(r) != m.Hops(s, d)+2 {
				t.Fatalf("route %d->%d has %d entries, hops %d", s, d, len(r), m.Hops(s, d))
			}
		}
	}
}

func TestTorusAllPairsDeliver(t *testing.T) {
	eng, m := newTorus(t, 3, 3)
	want := 0
	for s := NodeID(0); int(s) < m.Nodes(); s++ {
		for d := NodeID(0); int(d) < m.Nodes(); d++ {
			if s == d {
				continue
			}
			m.Send(s, d, 256, nil)
			want++
		}
	}
	eng.Run()
	if got := m.Stats().MessagesDelivered; got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
}

func TestTorusFasterCornerTransfer(t *testing.T) {
	engM, mm := newMesh(t, 4, 4)
	var meshT sim.Time
	mm.Send(0, 15, 4096, func(ts sim.Time) { meshT = ts })
	engM.Run()
	engT, tt := newTorus(t, 4, 4)
	var torusT sim.Time
	tt.Send(0, 15, 4096, func(ts sim.Time) { torusT = ts })
	engT.Run()
	if torusT >= meshT {
		t.Fatalf("torus corner transfer (%v) should beat mesh (%v)", torusT, meshT)
	}
}

func newHypercube(t *testing.T, nodes int) (*sim.Engine, *Mesh) {
	t.Helper()
	eng := sim.NewEngine()
	w := 1
	for w*w < nodes {
		w *= 2
	}
	cfg := testConfig(w, nodes/w)
	cfg.Hypercube = true
	m, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func TestHypercubeValidation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig(3, 2) // 6 nodes: not a power of two
	cfg.Hypercube = true
	if _, err := New(eng, cfg); err == nil {
		t.Fatal("non-power-of-two hypercube accepted")
	}
	cfg = testConfig(2, 2)
	cfg.Hypercube = true
	cfg.Torus = true
	if _, err := New(eng, cfg); err == nil {
		t.Fatal("torus+hypercube accepted")
	}
}

func TestHypercubeHopsAndDiameter(t *testing.T) {
	_, m := newHypercube(t, 16)
	if m.Diameter() != 4 {
		t.Fatalf("diameter = %d, want 4", m.Diameter())
	}
	if m.Hops(0, 15) != 4 || m.Hops(0, 1) != 1 || m.Hops(5, 5) != 0 {
		t.Fatalf("hops wrong: %d %d %d", m.Hops(0, 15), m.Hops(0, 1), m.Hops(5, 5))
	}
}

func TestHypercubeRouteLengthMatchesHops(t *testing.T) {
	_, m := newHypercube(t, 8)
	for s := NodeID(0); int(s) < m.Nodes(); s++ {
		for d := NodeID(0); int(d) < m.Nodes(); d++ {
			if len(mustRoute(t, m, s, d)) != m.Hops(s, d)+2 {
				t.Fatalf("route %d->%d length mismatch", s, d)
			}
		}
	}
}

func TestHypercubeAllPairsDeliver(t *testing.T) {
	eng, m := newHypercube(t, 8)
	want := 0
	for s := NodeID(0); int(s) < m.Nodes(); s++ {
		for d := NodeID(0); int(d) < m.Nodes(); d++ {
			if s == d {
				continue
			}
			m.Send(s, d, 512, nil)
			want++
		}
	}
	eng.Run()
	if got := m.Stats().MessagesDelivered; got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
}

func TestHypercubeRandomStressNoDeadlock(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		eng, m := newHypercube(t, 16)
		rng := seed
		rand := func(mod int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		n := 50
		for i := 0; i < n; i++ {
			m.Send(NodeID(rand(16)), NodeID(rand(16)), rand(4096), nil)
		}
		eng.Run()
		if got := m.Stats().MessagesDelivered; got != n {
			t.Fatalf("seed %d: delivered %d of %d (deadlock?)", seed, got, n)
		}
	}
}

func TestHypercubeShorterThanMeshCorner(t *testing.T) {
	_, mm := newMesh(t, 4, 4)
	_, hc := newHypercube(t, 16)
	if hc.Hops(0, 15) >= mm.Hops(0, 15) {
		t.Fatalf("hypercube corner hops %d should beat mesh %d", hc.Hops(0, 15), mm.Hops(0, 15))
	}
}
