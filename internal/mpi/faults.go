package mpi

// Fault-handling glue for the MPI runtime. With no injector attached
// (the default) every function here is a nil check and the runtime's
// charges, traces and data movement are bit-identical to a build
// without the fault layer.
//
// The reliability protocol (per-packet CRC + ACK/NACK go-back-N
// retransmission, priced by nic.ReliableCost) guarantees payload
// delivery; its cost is charged to the sending rank as a separate
// trace.OpRetry interval on the retry transport class, so profiles
// show exactly what the faulty fabric cost. Link outages stall the
// sender until the routing path recovers. Crashed ranks and expired
// deadlines surface as structured *Error values instead of
// deadlocking the goroutine-per-rank runtime.

import (
	"time"

	"vbuscluster/internal/fault"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// WatchdogWall is the wall-clock escape hatch for deadline-carrying
// operations blocked on a peer that will never show up (the virtual
// clock of a blocked rank does not advance, so a wall timer is the
// only way out). The reported Error still carries the deterministic
// virtual deadline. Tests shrink this.
var WatchdogWall = 3 * time.Second

// watchdogTick is how often the watchdog goroutine wakes blocked
// waiters to re-check their deadlines.
const watchdogTick = 25 * time.Millisecond

// busAcquireAttempts is how many times a broadcast retries virtual-bus
// acquisition before degrading to the software p2p tree.
const busAcquireAttempts = 3

// Faults returns the world's injector (nil when fault injection is
// off; the nil injector is inert and safe to query).
func (w *World) Faults() *fault.Injector { return w.inj }

// Shutdown stops the world's deadline watchdog, if one is running.
// Call it when the run completes; it is safe to call on any world.
func (w *World) Shutdown() {
	if w.watchStop != nil {
		close(w.watchStop)
		w.watchStop = nil
	}
}

// startWatchdog spawns the broadcast ticker that lets deadline-blocked
// waiters re-check wall time. Only started when the spec sets a
// deadline.
func (w *World) startWatchdog() {
	w.watchStop = make(chan struct{})
	stop := w.watchStop
	go func() {
		t := time.NewTicker(watchdogTick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.mu.Lock()
				w.cond.Broadcast()
				w.mu.Unlock()
			}
		}
	}()
}

// Cancel aborts the run from outside the simulation: every subsequent
// operation — and every operation currently blocked in a rendezvous,
// receive wait or lock acquisition — fails with ErrCancelled so the
// rank goroutines unwind promptly instead of leaking a running
// cluster. Idempotent and safe to call from any goroutine (the
// interpreter's context monitor calls it when a job deadline expires).
func (w *World) Cancel() {
	if w.cancelled.CompareAndSwap(false, true) {
		close(w.cancelCh)
		w.mu.Lock()
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

// Cancelled reports whether the run has been aborted with Cancel.
func (w *World) Cancelled() bool { return w.cancelled.Load() }

// cancelErr builds the structured failure for an operation abandoned
// after Cancel.
func (p *Proc) cancelErr(op string, peer int) *Error {
	return &Error{Kind: ErrCancelled, Rank: p.rank, Op: op, Peer: peer, Time: p.w.cl.Clock(p.node())}
}

// noteDown marks rank as crashed/departed and wakes every blocked
// waiter so operations depending on it can fail instead of hanging.
func (w *World) noteDown(rank int) {
	w.mu.Lock()
	if !w.down[rank] {
		w.down[rank] = true
		w.nDown++
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// noteCrashed marks rank as genuinely failed (not just departed); the
// recovery protocol's Agree round excludes exactly these ranks.
func (w *World) noteCrashed(rank int) {
	w.mu.Lock()
	w.crashed[rank] = true
	if !w.down[rank] {
		w.down[rank] = true
		w.nDown++
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Depart marks rank as gone (used by the interpreter when a rank's
// goroutine exits on an error): peers blocked on it observe a
// peer-crashed failure rather than a deadlock.
func (w *World) Depart(rank int) {
	if rank >= 0 && rank < w.n {
		w.noteDown(rank)
	}
}

// enter is the per-operation liveness check: a rank whose virtual
// clock has passed its injected crash time — or whose operation count
// has exceeded its crashafter budget — fails every subsequent
// operation with ErrCrashed (and is announced to its peers). On a
// revoked communicator every operation fails with ErrRevoked instead.
func (p *Proc) enter(op string, peer int) *Error {
	w := p.w
	if w.cancelled.Load() {
		return p.cancelErr(op, peer)
	}
	if w.inj == nil {
		return nil
	}
	node := p.node()
	if w.Revoked() {
		return &Error{Kind: ErrRevoked, Rank: p.rank, Op: op, Peer: peer, Time: w.cl.Clock(node)}
	}
	if ct := w.inj.CrashTime(node); ct != sim.MaxTime && w.cl.Clock(node) >= ct {
		w.noteCrashed(p.rank)
		return &Error{Kind: ErrCrashed, Rank: p.rank, Op: op, Peer: peer, Time: ct}
	}
	if w.inj.HasCrashAfter() {
		if limit := w.inj.CrashAfterOps(node); limit >= 0 {
			if w.cl.BumpOps(node) > limit {
				w.noteCrashed(p.rank)
				// Error.Time is the virtual time of detection: the
				// clock at the entry of the first operation past the
				// budget.
				return &Error{Kind: ErrCrashed, Rank: p.rank, Op: op, Peer: peer, Time: w.cl.Clock(node)}
			}
		}
	}
	return nil
}

// takeSeq hands out the per-(src,dst) packet sequence numbers for a
// transfer of bytes. Each element is written only by the sending
// rank's goroutine, so the counters are race-free and — because every
// rank issues its sends in deterministic program order — independent
// of goroutine interleaving.
func (w *World) takeSeq(src, dst, bytes int) int {
	mtu := w.inj.MTU()
	npkts := (bytes + mtu - 1) / mtu
	i := src*w.n + dst
	s := w.pktSeq[i]
	w.pktSeq[i] += npkts
	return s
}

// chargeReliability prices everything the faulty fabric costs a remote
// transfer of bytes to peer beyond the clean base charge: a stall
// until the routing path's injected outages end, then the go-back-N
// retransmission overhead. The total is charged to the calling rank
// and recorded as one adjacent trace.OpRetry interval (zero accounted
// bytes, so byte reconciliation with the clean accounting holds;
// Payload carries the re-sent wire bytes). entry is the operation's
// entry clock: with a deadline set, an operation whose faults push it
// past entry+deadline fails with ErrTimeout — the caller must not
// deliver its payload in that case.
func (p *Proc) chargeReliability(op string, peer, bytes int, entry sim.Time) *Error {
	w := p.w
	if !w.inj.Enabled() || peer == p.rank || bytes <= 0 {
		return nil
	}
	node, peerNode := p.node(), w.nodeOf(peer)
	var stall sim.Time
	now := w.cl.Clock(node)
	if w.inj.HasLinkDowns() {
		path := w.cl.Params().Path(node, peerNode)
		for {
			until := w.inj.PathDownUntil(path, now+stall)
			if until <= now+stall {
				break
			}
			stall = until - now
		}
	}
	out, _ := nic.ReliableCost(w.cl.Fabric(), w.inj, node, peerNode,
		w.cl.Hops(node, peerNode), bytes, w.takeSeq(p.rank, peer, bytes))
	extra := stall + out.Extra
	if extra > 0 {
		rec, begin := p.traceBegin()
		w.cl.ChargeComm(node, extra, 0)
		p.traceEnd(rec, begin, trace.OpRetry, peer, 0, out.RetransBytes, interconnect.TransportRetry)
	}
	if d := w.inj.Deadline(); d > 0 && w.cl.Clock(node)-entry > d {
		return &Error{Kind: ErrTimeout, Rank: p.rank, Op: op, Peer: peer, Time: entry + d}
	}
	return nil
}

// entryClock reads the calling rank's clock when fault handling needs
// it (deadlines, retries); zero-fault runs skip the read entirely.
func (p *Proc) entryClock() sim.Time {
	if !p.w.inj.Enabled() {
		return 0
	}
	return p.w.cl.Clock(p.node())
}

// othersDown reports (holding w.mu) whether every rank except rank is
// down — the point where an AnySource receive can never match.
func (w *World) othersDown(rank int) bool {
	if w.nDown < w.n-1 {
		return false
	}
	for r := 0; r < w.n; r++ {
		if r != rank && !w.down[r] {
			return false
		}
	}
	return true
}

// softwareTreeCost is the degraded broadcast: the binomial p2p tree a
// root falls back to when virtual-bus acquisition keeps timing out
// (the same shape BroadcastTime uses on cards without a hardware bus).
func (w *World) softwareTreeCost(bytes int) sim.Time {
	card := w.cl.Fabric()
	stages := 0
	for p := 1; p < w.n; p *= 2 {
		stages++
	}
	return sim.Time(stages) * (card.SendSetup() + card.ContigTime(bytes, 1))
}

// broadcastCost prices a size-bytes broadcast starting at virtual
// time at under fault injection: a link outage anywhere in the mesh
// stalls bus construction until the link recovers (the virtual bus is
// built from the physical links), each failed virtual-bus acquisition
// costs one bus timeout, and after busAcquireAttempts failures the
// root degrades to the software p2p tree. Returns the cost and the
// transport class actually used. Must be called with w.mu held (it
// consumes the deterministic broadcast sequence number).
func (w *World) broadcastCost(bytes int, at sim.Time) (sim.Time, interconnect.Transport) {
	card := w.cl.Fabric()
	if w.n < w.cl.N() {
		// Degraded mode: a shrunken communicator's membership no
		// longer matches the physical bus, so the hardware broadcast
		// (whose address decode is wired to all-nodes membership)
		// falls back to the software p2p tree among the survivors.
		return w.softwareTreeCost(bytes), interconnect.TransportP2P
	}
	var stall sim.Time
	if w.inj.HasLinkDowns() {
		for {
			until := w.inj.AnyLinkDownUntil(at + stall)
			if until <= at+stall {
				break
			}
			stall = until - at
		}
	}
	if !w.inj.Enabled() || !card.Caps().HardwareBroadcast || w.inj.Spec().BusFail <= 0 {
		return stall + card.BroadcastTime(bytes, w.n), interconnect.TransportBcast
	}
	seq := w.bcastSeq
	w.bcastSeq++
	cost := stall
	for attempt := 0; attempt < busAcquireAttempts; attempt++ {
		if !w.inj.BusAcquireFail(seq, attempt) {
			return cost + card.BroadcastTime(bytes, w.n), interconnect.TransportBcast
		}
		cost += w.inj.BusTimeout()
	}
	// Bus never acquired: degrade gracefully to the software tree.
	return cost + w.softwareTreeCost(bytes), interconnect.TransportP2P
}
