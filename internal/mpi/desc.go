package mpi

// The descriptor-based one-sided API: PutD/GetD take an LMAD-backed
// AccessDesc, so contiguous (DMA), strided (programmed I/O) and packed
// (pack → contiguous DMA burst → unpack) transfers share one
// entrypoint, one validation site, one fault/retry path and one trace
// charge site. The legacy Put/PutStrided/Get/GetStrided names are thin
// compatibility wrappers over this core (win.go).

import (
	"fmt"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// AccessDesc describes one one-sided access region in the target
// window: Elems elements starting at Offset, Stride apart (the
// innermost dimension of a split LMAD — the unit the compiler's §5.4
// scatter/collect generation emits one MPI_PUT/MPI_GET for).
type AccessDesc struct {
	// Offset is the first element's index in the target window.
	Offset int64
	// Elems is the element count.
	Elems int64
	// Stride is the element stride; 1 means contiguous.
	Stride int64
	// Packed routes a strided access over the pack-and-coalesce path:
	// the origin packs the region into a staging buffer, one contiguous
	// DMA burst moves it, and the far side unpacks. Set by the
	// compiler's coalesce stage when the fabric's pack cost model says
	// the burst beats per-element PIO; ignored for contiguous accesses
	// and rank-local copies (no NIC is involved).
	Packed bool
	// Region names the source buffer the access reads from (the
	// compiler uses the array symbol name) — the registration-cache key
	// space on protocol-switched fabrics. Empty marks an anonymous
	// buffer, which is never cached: its rendezvous transfers always
	// pay registration. Ignored on fabrics without a protocol model.
	Region string
	// Proto is the compiler's eager/rendezvous stamp for contiguous
	// accesses on protocol-switched fabrics. ProtoAuto (the zero value)
	// lets the runtime pick per message by consulting the live
	// registration cache. Ignored on other fabrics, for strided
	// accesses and for rank-local copies.
	Proto lmad.Protocol
}

// ContigDesc describes a contiguous run of elems elements at offset.
func ContigDesc(offset, elems int64) AccessDesc {
	return AccessDesc{Offset: offset, Elems: elems, Stride: 1}
}

// StridedDesc describes elems elements at offset, stride apart.
func StridedDesc(offset, elems, stride int64) AccessDesc {
	return AccessDesc{Offset: offset, Elems: elems, Stride: stride}
}

// DescFromTransfer converts one compiler-planned transfer (a split
// LMAD's innermost dimension, possibly marked packed by the coalesce
// stage) into its access descriptor.
func DescFromTransfer(t lmad.Transfer) AccessDesc {
	return AccessDesc{Offset: t.Offset, Elems: t.Elems, Stride: t.Stride, Packed: t.Packed, Proto: t.Proto}
}

// Contig reports whether the descriptor is a contiguous run.
func (d AccessDesc) Contig() bool { return d.Stride <= 1 }

// Bytes is the wire payload of the access.
func (d AccessDesc) Bytes() int { return int(d.Elems) * WordBytes }

// putOp names the trace operation of a PUT-direction access: "put"
// for contiguous runs, "put.p" for packed strided bursts (remote
// targets only — a rank-local copy involves no NIC, so packing is
// meaningless and the access traces as plain strided), "put.s"
// otherwise.
func putOp(local bool, d AccessDesc) string {
	switch {
	case d.Contig():
		return trace.OpPut
	case d.Packed && !local:
		return trace.OpPutPacked
	default:
		return trace.OpPutStrided
	}
}

// getOp is putOp for the GET direction.
func getOp(local bool, d AccessDesc) string {
	switch {
	case d.Contig():
		return trace.OpGet
	case d.Packed && !local:
		return trace.OpGetPacked
	default:
		return trace.OpGetStrided
	}
}

// packModel is the fabric's pack-vs-PIO cost model, shared with the
// compiler's coalesce stage and static estimator so runtime charges
// and compile-time decisions agree by construction.
func (p *Proc) packModel() nic.PackModel {
	return nic.PackModelFor(p.w.cl.Params())
}

// regKey is the access's registration-cache key; ok is false for
// anonymous (unnamed) source buffers, which are never cached.
func (d AccessDesc) regKey() (interconnect.RegKey, bool) {
	if d.Region == "" {
		return interconnect.RegKey{}, false
	}
	return interconnect.RegKey{Space: d.Region, Offset: d.Offset, Elems: d.Elems}, true
}

// contigCost prices a remote contiguous access and names its traced
// transport. On fabrics without a protocol model it is the classic
// DMA charge (setup + wire on the capability-derived transport). On a
// protocol-switched fabric (interconnect.ProtocolModel) the access
// rides the eager or rendezvous path: a compiler stamp (d.Proto) is
// followed as-is; an unstamped access picks whichever path the model
// prices cheaper given the origin node's live registration-cache
// state. Only a charged rendezvous transfer touches the cache —
// eager payloads ride pre-registered bounce buffers, so the eager
// path neither warms nor consults registration state.
func (p *Proc) contigCost(target int, d AccessDesc) (sim.Time, interconnect.Transport) {
	card := p.w.cl.Fabric()
	pm, ok := card.(interconnect.ProtocolModel)
	if !ok {
		return card.SendSetup() + card.ContigTime(d.Bytes(), p.hops(target)),
			card.Caps().ContigTransport()
	}
	bytes, hops := d.Bytes(), p.hops(target)
	cache := p.w.cl.RegCache(p.node())
	key, cacheable := d.regKey()
	cacheable = cacheable && cache != nil
	proto := d.Proto
	if proto == lmad.ProtoAuto {
		registered := cacheable && cache.Lookup(key)
		if pm.RendezvousTime(bytes, hops, registered) < pm.EagerTime(bytes, hops) {
			proto = lmad.ProtoRndv
		} else {
			proto = lmad.ProtoEager
		}
	}
	if proto == lmad.ProtoEager {
		return pm.EagerTime(bytes, hops), interconnect.TransportEager
	}
	registered := cacheable && cache.Use(key)
	return pm.RendezvousTime(bytes, hops, registered), interconnect.TransportRndv
}

// validateAccess is the single validation site of the one-sided layer
// (argument errors panic: they are programming errors, not faults —
// the same rule SendE documents). name is the public entry point, so
// wrapper panics read exactly as they always have. dataLen is the
// caller's buffer length (-1 for the charge-only paths, which move no
// data). Returns the target window buffer (nil without a window).
func (p *Proc) validateAccess(name string, win *Win, target int, d AccessDesc, dataLen int) []float64 {
	if d.Stride <= 0 {
		panic(fmt.Sprintf("mpi: %s stride %d must be positive", name, d.Stride))
	}
	if d.Elems < 0 {
		panic(fmt.Sprintf("mpi: %s element count %d must be non-negative", name, d.Elems))
	}
	if dataLen >= 0 && int64(dataLen) != d.Elems {
		panic(fmt.Sprintf("mpi: %s buffer has %d elements, descriptor wants %d", name, dataLen, d.Elems))
	}
	if win == nil {
		return nil
	}
	buf := win.target(target)
	if d.Stride == 1 {
		if d.Offset < 0 || d.Offset+d.Elems > int64(len(buf)) {
			panic(fmt.Sprintf("mpi: %s %q rank %d [%d,%d) outside window size %d",
				name, win.name, target, d.Offset, d.Offset+d.Elems, len(buf)))
		}
	} else if d.Elems > 0 {
		last := d.Offset + (d.Elems-1)*d.Stride
		if d.Offset < 0 || last >= int64(len(buf)) {
			panic(fmt.Sprintf("mpi: %s %q rank %d last index %d outside window size %d",
				name, win.name, target, last, len(buf)))
		}
	}
	return buf
}

// chargeAccessE is the single charge site of the one-sided layer: it
// prices moving the described region to/from target and charges the
// origin rank. Rank-local accesses cost a memory copy; remote
// contiguous accesses cost DMA setup + wire (or the eager/rendezvous
// protocol path on fabrics with a protocol model — contigCost); remote
// strided accesses
// cost the per-element PIO path; remote packed accesses cost the
// pack/unpack copies plus one contiguous DMA burst, charged to the
// dedicated pack transport class. The traced transport otherwise
// follows the fabric's capabilities (a card without a DMA engine
// moves contiguous data as p2p messages). Under fault injection the
// access also pays the reliable-transport overhead and can fail with
// an *Error; callers must not move the payload on error.
func (p *Proc) chargeAccessE(op string, target int, d AccessDesc) *Error {
	if err := p.enter(op, target); err != nil {
		return err
	}
	entry := p.entryClock()
	rec, begin := p.traceBegin()
	bytes := d.Bytes()
	if target == p.rank {
		p.w.cl.ChargeComm(p.node(), p.localCopyCost(bytes), bytes)
		p.traceEnd(rec, begin, op, target, int64(bytes), int64(bytes), interconnect.TransportLocal)
		return nil
	}
	card := p.w.cl.Fabric()
	caps := card.Caps()
	var cost sim.Time
	var tr interconnect.Transport
	switch {
	case d.Stride > 1 && d.Packed:
		cost = p.packModel().PackedTime(int(d.Elems), WordBytes, p.hops(target))
		tr = interconnect.TransportPack
	case d.Stride > 1:
		cost = card.SendSetup() + card.StridedTime(int(d.Elems), WordBytes, p.hops(target))
		tr = caps.StridedTransport()
	default:
		cost, tr = p.contigCost(target, d)
	}
	p.w.cl.ChargeComm(p.node(), cost, bytes)
	p.traceEnd(rec, begin, op, target, int64(bytes), int64(bytes), tr)
	return p.chargeReliability(op, target, bytes, entry)
}

// PutD transfers data into target's window region described by d
// (descriptor MPI_PUT). Contiguous, strided and packed descriptors all
// enter here; the legacy Put/PutStrided names are wrappers over this
// API. Under fault injection a failed transfer panics with the
// *Error; use PutDE for error returns.
func (p *Proc) PutD(win *Win, target int, d AccessDesc, data []float64) {
	if err := p.PutDE(win, target, d, data); err != nil {
		panic(err)
	}
}

// PutDE is PutD with structured error reporting under fault injection.
// On error the target window is not modified.
func (p *Proc) PutDE(win *Win, target int, d AccessDesc, data []float64) error {
	return p.putDE("PutD", win, target, d, data)
}

// putDE is the shared PUT body; name labels validation panics with the
// public entry point that was called.
func (p *Proc) putDE(name string, win *Win, target int, d AccessDesc, data []float64) error {
	buf := p.validateAccess(name, win, target, d, len(data))
	if err := p.chargeAccessE(putOp(target == p.rank, d), target, d); err != nil {
		return err
	}
	win.applyMu[target].Lock()
	if d.Stride == 1 {
		copy(buf[d.Offset:], data)
	} else {
		for i, v := range data {
			buf[d.Offset+int64(i)*d.Stride] = v
		}
	}
	win.applyMu[target].Unlock()
	return nil
}

// GetD reads the region described by d from target's window into dst
// (descriptor MPI_GET); len(dst) must equal d.Elems. Under fault
// injection a failed transfer panics with the *Error; use GetDE for
// error returns.
func (p *Proc) GetD(win *Win, target int, d AccessDesc, dst []float64) {
	if err := p.GetDE(win, target, d, dst); err != nil {
		panic(err)
	}
}

// GetDE is GetD with structured error reporting under fault injection.
// On error dst is not modified.
func (p *Proc) GetDE(win *Win, target int, d AccessDesc, dst []float64) error {
	return p.getDE("GetD", win, target, d, dst)
}

// getDE is the shared GET body; name labels validation panics with the
// public entry point that was called.
func (p *Proc) getDE(name string, win *Win, target int, d AccessDesc, dst []float64) error {
	buf := p.validateAccess(name, win, target, d, len(dst))
	if err := p.chargeAccessE(getOp(target == p.rank, d), target, d); err != nil {
		return err
	}
	win.applyMu[target].Lock()
	if d.Stride == 1 {
		copy(dst, buf[d.Offset:d.Offset+d.Elems])
	} else {
		for i := range dst {
			dst[i] = buf[d.Offset+int64(i)*d.Stride]
		}
	}
	win.applyMu[target].Unlock()
	return nil
}

// ChargePutD charges the cost of the described PUT/GET to target
// without moving data — the interpreter's timing-only mode, where
// large experiments cost the same virtual time as full execution
// without touching real arrays. The descriptor is validated exactly
// like the data-moving paths (window bounds excepted: there is no
// window); a charged transfer can no longer price a shape the real
// API would reject. Panics with the *Error on fault; use ChargePutDE
// for error returns.
func (p *Proc) ChargePutD(target int, d AccessDesc) {
	if err := p.ChargePutDE(target, d); err != nil {
		panic(err)
	}
}

// ChargePutDE is ChargePutD with structured error reporting under
// fault injection.
func (p *Proc) ChargePutDE(target int, d AccessDesc) error {
	p.validateAccess("ChargePutD", nil, target, d, -1)
	if err := p.chargeAccessE(putOp(target == p.rank, d), target, d); err != nil {
		return err
	}
	return nil
}
