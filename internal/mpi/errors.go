package mpi

import (
	"fmt"

	"vbuscluster/internal/sim"
)

// ErrorKind classifies a structured MPI runtime error.
type ErrorKind int

const (
	// ErrTimeout means the operation could not complete within the
	// fault spec's per-operation deadline.
	ErrTimeout ErrorKind = iota
	// ErrCrashed means the calling rank itself has crashed (its virtual
	// clock passed the injected crash time).
	ErrCrashed
	// ErrPeerCrashed means a rank this operation depends on has crashed
	// or departed, so the operation can never complete.
	ErrPeerCrashed
	// ErrRevoked means the communicator was revoked (ULFM
	// MPI_Comm_revoke) after a failure elsewhere: the operation was
	// interrupted so the rank can join the recovery protocol.
	ErrRevoked
	// ErrCancelled means the run itself was cancelled from outside the
	// simulation (a job deadline or an explicit abort — World.Cancel):
	// the operation was abandoned so the rank goroutine can unwind
	// instead of leaking a running cluster.
	ErrCancelled
)

// String names the kind.
func (k ErrorKind) String() string {
	switch k {
	case ErrTimeout:
		return "timeout"
	case ErrCrashed:
		return "crashed"
	case ErrPeerCrashed:
		return "peer-crashed"
	case ErrRevoked:
		return "revoked"
	case ErrCancelled:
		return "cancelled"
	default:
		return "invalid"
	}
}

// Error is the structured failure of one MPI operation under fault
// injection: which rank failed, doing what, against whom, and when in
// virtual time. Operations that cannot complete return (or, through
// the panicking convenience wrappers, raise) an *Error instead of
// deadlocking the goroutine-per-rank runtime.
type Error struct {
	Kind ErrorKind
	// Rank is the rank the operation failed on.
	Rank int
	// Op is the operation's trace name ("send", "barrier", ...).
	Op string
	// Peer is the remote rank involved (-1 when the operation has no
	// single peer, e.g. a collective).
	Peer int
	// Time is the virtual time of the failure: the deadline expiry for
	// timeouts, the injected crash time for crashes.
	Time sim.Time
}

// Error implements error.
func (e *Error) Error() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("mpi: rank %d %s (peer %d) %s at %v", e.Rank, e.Op, e.Peer, e.Kind, e.Time)
	}
	return fmt.Sprintf("mpi: rank %d %s %s at %v", e.Rank, e.Op, e.Kind, e.Time)
}
