package mpi

import (
	"sync"
	"testing"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/sim"
)

// runWorld spawns one goroutine per rank, runs body, and waits.
func runWorld(t *testing.T, n int, body func(p *Proc)) (*World, *cluster.Cluster) {
	t.Helper()
	params := cluster.DefaultParams()
	if n > 4 {
		params.MeshWidth, params.MeshHeight = 4, 4
	}
	cl, err := cluster.New(n, params)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(cl)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(w.Rank(rank))
		}(r)
	}
	wg.Wait()
	return w, cl
}

func TestRankAndSize(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		if p.Size() != 4 {
			t.Errorf("size = %d", p.Size())
		}
		if p.Rank() < 0 || p.Rank() >= 4 {
			t.Errorf("rank = %d", p.Rank())
		}
	})
}

func TestSendRecv(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := p.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("recv got %v", got)
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			buf := []float64{42}
			p.Send(1, 0, buf)
			buf[0] = 0 // must not affect the in-flight message
		} else {
			if got := p.Recv(0, 0); got[0] != 42 {
				t.Errorf("message aliased sender buffer: got %v", got)
			}
		}
	})
}

func TestRecvAdvancesClockToArrival(t *testing.T) {
	_, cl := runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.w.cl.ChargeCompute(0, 100*sim.Microsecond) // sender busy first
			p.Send(1, 0, make([]float64, 1024))
		} else {
			p.Recv(0, 0)
		}
	})
	if cl.Clock(1) <= 100*sim.Microsecond {
		t.Fatalf("receiver clock %v should be after sender's send at 100us", cl.Clock(1))
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				p.Send(1, 3, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := p.Recv(0, 3); got[0] != float64(i) {
					t.Errorf("message %d arrived out of order: %v", i, got)
				}
			}
		}
	})
}

func TestRecvAnySource(t *testing.T) {
	runWorld(t, 3, func(p *Proc) {
		switch p.Rank() {
		case 1, 2:
			p.Send(0, 5, []float64{float64(p.Rank())})
		case 0:
			seen := map[float64]bool{}
			for i := 0; i < 2; i++ {
				got := p.Recv(AnySource, 5)
				seen[got[0]] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("AnySource missed a sender: %v", seen)
			}
		}
	})
}

func TestRecvAnyTag(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 9, []float64{9})
		} else {
			if got := p.Recv(0, AnyTag); got[0] != 9 {
				t.Errorf("AnyTag got %v", got)
			}
		}
	})
}

func TestSendToSelf(t *testing.T) {
	runWorld(t, 1, func(p *Proc) {
		p.Send(0, 1, []float64{5})
		if got := p.Recv(0, 1); got[0] != 5 {
			t.Errorf("self message got %v", got)
		}
	})
}

func TestSendrecvExchangeNoDeadlock(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		other := 1 - p.Rank()
		got := p.Sendrecv(other, 0, []float64{float64(p.Rank())}, other, 0)
		if got[0] != float64(other) {
			t.Errorf("rank %d exchanged got %v", p.Rank(), got)
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	_, cl := runWorld(t, 4, func(p *Proc) {
		p.w.cl.ChargeCompute(p.Rank(), sim.Time(p.Rank()+1)*10*sim.Microsecond)
		p.Barrier()
	})
	want := cl.Clock(0)
	for r := 1; r < 4; r++ {
		if cl.Clock(r) != want {
			t.Fatalf("clocks diverge after barrier: %v vs %v", cl.Clock(r), want)
		}
	}
	if want <= 40*sim.Microsecond {
		t.Fatalf("release %v must exceed the latest arrival 40us", want)
	}
}

func TestBarrierBooksCommTime(t *testing.T) {
	w, cl := runWorld(t, 4, func(p *Proc) { p.Barrier() })
	r := cl.Snapshot()
	for rank := 0; rank < 4; rank++ {
		if r.CommTime[rank] != w.BarrierCost() {
			t.Fatalf("rank %d barrier comm = %v, want %v", rank, r.CommTime[rank], w.BarrierCost())
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Barrier()
		}
	})
}

func TestSingleRankBarrier(t *testing.T) {
	_, cl := runWorld(t, 1, func(p *Proc) { p.Barrier() })
	if cl.Clock(0) == 0 {
		t.Fatal("1-rank barrier should still cost time")
	}
}

func TestBcast(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		var in []float64
		if p.Rank() == 2 {
			in = []float64{3.5, 4.5}
		}
		out := p.Bcast(2, in)
		if len(out) != 2 || out[0] != 3.5 || out[1] != 4.5 {
			t.Errorf("rank %d bcast got %v", p.Rank(), out)
		}
	})
}

func TestBcastResultNotAliased(t *testing.T) {
	results := make([][]float64, 2)
	runWorld(t, 2, func(p *Proc) {
		var in []float64
		if p.Rank() == 0 {
			in = []float64{1}
		}
		results[p.Rank()] = p.Bcast(0, in)
	})
	results[0][0] = 99
	if results[1][0] == 99 {
		t.Fatal("bcast results alias each other")
	}
}

func TestReduceSum(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		res := p.Reduce(Sum, 0, []float64{float64(p.Rank()), 1})
		if p.Rank() == 0 {
			if res[0] != 6 || res[1] != 4 {
				t.Errorf("reduce got %v", res)
			}
		} else if res != nil {
			t.Errorf("non-root got %v", res)
		}
	})
}

func TestReduceOps(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		x := float64(p.Rank() + 1) // 1..4
		if mx := p.Allreduce(Max, []float64{x}); mx[0] != 4 {
			t.Errorf("max got %v", mx)
		}
		if mn := p.Allreduce(Min, []float64{x}); mn[0] != 1 {
			t.Errorf("min got %v", mn)
		}
		if pr := p.Allreduce(Prod, []float64{x}); pr[0] != 24 {
			t.Errorf("prod got %v", pr)
		}
	})
}

func TestAllreduceEveryRankGetsResult(t *testing.T) {
	runWorld(t, 3, func(p *Proc) {
		res := p.Allreduce(Sum, []float64{1})
		if res[0] != 3 {
			t.Errorf("rank %d allreduce got %v", p.Rank(), res)
		}
	})
}

func TestWinCreatePutGet(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		local := make([]float64, 8)
		win := p.WinCreate("A", local)
		if p.Rank() == 0 {
			p.Put(win, 1, 2, []float64{7, 8})
		}
		p.Fence(win)
		if p.Rank() == 1 {
			if local[2] != 7 || local[3] != 8 {
				t.Errorf("window after put: %v", local)
			}
		}
		p.Fence(win)
		if p.Rank() == 1 {
			dst := make([]float64, 2)
			p.Get(win, 1, 2, dst)
			if dst[0] != 7 {
				t.Errorf("self get: %v", dst)
			}
		}
	})
}

func TestPutStrided(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		local := make([]float64, 10)
		win := p.WinCreate("S", local)
		if p.Rank() == 0 {
			p.PutStrided(win, 1, 1, 3, []float64{1, 2, 3})
		}
		p.Fence(win)
		if p.Rank() == 1 {
			want := []float64{0, 1, 0, 0, 2, 0, 0, 3, 0, 0}
			for i, v := range want {
				if local[i] != v {
					t.Errorf("strided put result %v, want %v", local, want)
					break
				}
			}
		}
	})
}

func TestGetStrided(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		local := make([]float64, 10)
		if p.Rank() == 0 {
			for i := range local {
				local[i] = float64(i)
			}
		}
		win := p.WinCreate("G", local)
		p.Fence(win)
		if p.Rank() == 1 {
			dst := make([]float64, 3)
			p.GetStrided(win, 0, 1, 4, dst)
			if dst[0] != 1 || dst[1] != 5 || dst[2] != 9 {
				t.Errorf("strided get %v", dst)
			}
		}
	})
}

// §2.2: strided PUT/GET "increase communication setup time
// significantly" — the strided path must cost far more per byte.
func TestStridedPutCostsMoreThanContig(t *testing.T) {
	_, clA := runWorld(t, 2, func(p *Proc) {
		local := make([]float64, 20000)
		win := p.WinCreate("x", local)
		if p.Rank() == 0 {
			p.Put(win, 1, 0, make([]float64, 8192))
		}
		p.Fence(win)
	})
	_, clB := runWorld(t, 2, func(p *Proc) {
		local := make([]float64, 20000)
		win := p.WinCreate("x", local)
		if p.Rank() == 0 {
			p.PutStrided(win, 1, 0, 2, make([]float64, 8192))
		}
		p.Fence(win)
	})
	contig := clA.Snapshot().CommTime[0]
	strided := clB.Snapshot().CommTime[0]
	if strided < 2*contig {
		t.Fatalf("strided comm %v should dwarf contiguous %v", strided, contig)
	}
}

func TestPutBoundsPanic(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		win := p.WinCreate("b", make([]float64, 4))
		if p.Rank() == 0 {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("out-of-bounds put did not panic")
					}
				}()
				p.Put(win, 1, 3, []float64{1, 2})
			}()
		}
		p.Fence(win)
	})
}

func TestAccumulate(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		local := make([]float64, 1)
		win := p.WinCreate("acc", local)
		p.Accumulate(win, 0, 0, []float64{float64(p.Rank() + 1)})
		p.Fence(win)
		if p.Rank() == 0 && local[0] != 10 {
			t.Errorf("accumulate total = %v, want 10", local[0])
		}
	})
}

func TestLockUnlockCriticalSection(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		shared := make([]float64, 1)
		win := p.WinCreate("crit", shared)
		for i := 0; i < 25; i++ {
			p.Lock(win, 0)
			v := make([]float64, 1)
			p.Get(win, 0, 0, v)
			v[0]++
			p.Put(win, 0, 0, v)
			p.Unlock(win, 0)
		}
		p.Fence(win)
		if p.Rank() == 0 && shared[0] != 100 {
			t.Errorf("critical section lost updates: %v", shared[0])
		}
	})
}

// The fence invariant from DESIGN.md: after a fence, every window
// reflects all PUTs issued before it, and no rank's clock is behind any
// transfer's landing time.
func TestFenceCompletesAllPuts(t *testing.T) {
	const n = 4
	_, cl := runWorld(t, n, func(p *Proc) {
		local := make([]float64, n)
		win := p.WinCreate("f", local)
		// Everyone puts its rank into everyone's window slot.
		for dst := 0; dst < n; dst++ {
			p.Put(win, dst, p.Rank(), []float64{float64(p.Rank() + 1)})
		}
		p.Fence(win)
		for i := 0; i < n; i++ {
			if local[i] != float64(i+1) {
				t.Errorf("rank %d window slot %d = %v after fence", p.Rank(), i, local[i])
			}
		}
	})
	// All clocks equal after fence.
	for r := 1; r < n; r++ {
		if cl.Clock(r) != cl.Clock(0) {
			t.Fatalf("clocks diverge after fence")
		}
	}
}

func TestChargeOnlyHelpersMatchRealCosts(t *testing.T) {
	_, clReal := runWorld(t, 2, func(p *Proc) {
		win := p.WinCreate("c", make([]float64, 4096))
		if p.Rank() == 0 {
			p.Put(win, 1, 0, make([]float64, 4096))
			p.PutStrided(win, 1, 0, 2, make([]float64, 2048))
		}
		p.Fence(win)
	})
	_, clCharge := runWorld(t, 2, func(p *Proc) {
		win := p.WinCreate("c", make([]float64, 4096))
		if p.Rank() == 0 {
			p.ChargePutContig(1, 4096)
			p.ChargePutStrided(1, 2048)
		}
		p.Fence(win)
	})
	if clReal.Snapshot().CommTime[0] != clCharge.Snapshot().CommTime[0] {
		t.Fatalf("charge-only cost %v differs from real cost %v",
			clCharge.Snapshot().CommTime[0], clReal.Snapshot().CommTime[0])
	}
}

func TestWinFree(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		win := p.WinCreate("tmp", make([]float64, 1))
		p.WinFree(win)
		// Recreating under the same name must work.
		win2 := p.WinCreate("tmp", make([]float64, 2))
		if len(win2.Local(p.Rank())) != 2 {
			t.Error("stale window returned after free")
		}
	})
}

func TestWtimeMonotone(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		t0 := p.Wtime()
		p.Barrier()
		t1 := p.Wtime()
		if t1 <= t0 {
			t.Errorf("Wtime not monotone: %v -> %v", t0, t1)
		}
	})
}

func TestSendRecvRegion(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendRegion(1, 7, 3, []float64{1, 2, 3})
		} else {
			got := p.RecvRegion(0, 7, 3)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("region payload = %v", got)
			}
		}
	})
}

func TestSendRegionNilPayloadTimingOnly(t *testing.T) {
	_, cl := runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendRegion(1, 0, 1024, nil)
		} else {
			got := p.RecvRegion(0, 0, 1024)
			if len(got) != 0 {
				t.Errorf("nil payload should arrive empty, got %d", len(got))
			}
		}
	})
	if cl.Snapshot().CommTime[0] <= 0 {
		t.Fatal("timing-only region send charged nothing")
	}
}

// Two-sided costs strictly more than the equivalent one-sided PUT: the
// pack/unpack copies plus the receiver's involvement.
func TestRegionCostExceedsPut(t *testing.T) {
	_, clPut := runWorld(t, 2, func(p *Proc) {
		win := p.WinCreate("x", make([]float64, 8192))
		if p.Rank() == 0 {
			p.Put(win, 1, 0, make([]float64, 8192))
		}
		p.Fence(win)
	})
	_, clReg := runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendRegion(1, 0, 8192, make([]float64, 8192))
		} else {
			p.RecvRegion(0, 0, 8192)
		}
		p.Barrier()
	})
	put := clPut.Snapshot().CommTime[0]
	reg := clReg.Snapshot().CommTime[0] + clReg.Snapshot().CommTime[1] -
		clPut.Snapshot().CommTime[1] // subtract the barrier share
	if reg <= put {
		t.Fatalf("two-sided region (%v) should cost more than one-sided put (%v)", reg, put)
	}
}

// Fence soundness depends on transfers being charged fully to the
// origin: after any sequence of puts and a fence, no rank's clock may
// be behind the landing time of any transfer it observed.
func TestFenceClockSoundnessUnderLoad(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Proc) {
		local := make([]float64, 256)
		win := p.WinCreate("load", local)
		for round := 0; round < 5; round++ {
			// Everyone puts a round-stamped value everywhere.
			for dst := 0; dst < n; dst++ {
				p.Put(win, dst, p.Rank()*8, []float64{float64(round*100 + p.Rank())})
			}
			p.Fence(win)
			// After the fence, every slot must hold this round's stamp.
			for r := 0; r < n; r++ {
				if got := local[r*8]; got != float64(round*100+r) {
					t.Errorf("round %d rank %d slot %d = %v", round, p.Rank(), r, got)
				}
			}
			p.Fence(win)
		}
	})
}

// Interleaved strided and contiguous puts to adjacent regions must not
// corrupt each other (apply-lock coverage).
func TestMixedPutsInterleaved(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		local := make([]float64, 64)
		win := p.WinCreate("mix", local)
		if p.Rank() != 0 {
			base := (p.Rank() - 1) * 20
			p.Put(win, 0, base, []float64{1, 2, 3, 4, 5})
			p.PutStrided(win, 0, base+5, 3, []float64{9, 9, 9})
		}
		p.Fence(win)
		if p.Rank() == 0 {
			for r := 0; r < 3; r++ {
				base := r * 20
				for i, want := range []float64{1, 2, 3, 4, 5} {
					if local[base+i] != want {
						t.Errorf("contig slot %d = %v", base+i, local[base+i])
					}
				}
				for k := 0; k < 3; k++ {
					if local[base+5+k*3] != 9 {
						t.Errorf("strided slot %d = %v", base+5+k*3, local[base+5+k*3])
					}
				}
			}
		}
	})
}
