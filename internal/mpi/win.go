package mpi

import (
	"fmt"
	"sync"
	"time"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/trace"
)

// Win is an MPI-2 memory window (MPI_WIN): each rank exposes a region
// of its private memory that remote ranks may access with Put/Get
// without the owner's involvement. Windows are created collectively,
// identified by name (the compiler uses the array name).
type Win struct {
	world *World
	name  string

	mu   sync.Mutex // guards bufs wiring during creation
	bufs [][]float64

	applyMu []sync.Mutex // per-target apply serialization
	// lockCh holds the MPI_Win_lock exclusive locks as one-slot
	// channels: a send acquires, a receive releases. Channels (rather
	// than mutexes) let a deadline-carrying Lock time out in a select
	// instead of blocking forever on a dead lock holder.
	lockCh []chan struct{}
}

// WinCreate collectively creates (or attaches to) the window named
// name, exposing local as this rank's region (MPI_WIN_CREATE). Every
// rank must call it; it synchronizes like a barrier.
func (p *Proc) WinCreate(name string, local []float64) *Win {
	w := p.w
	w.mu.Lock()
	win, ok := w.wins[name]
	if !ok {
		win = &Win{
			world:   w,
			name:    name,
			bufs:    make([][]float64, w.n),
			applyMu: make([]sync.Mutex, w.n),
			lockCh:  make([]chan struct{}, w.n),
		}
		for i := range win.lockCh {
			win.lockCh[i] = make(chan struct{}, 1)
		}
		w.wins[name] = win
	}
	w.mu.Unlock()
	win.mu.Lock()
	win.bufs[p.rank] = local
	win.mu.Unlock()
	p.Barrier()
	return win
}

// WinFree collectively destroys the window (MPI_WIN_FREE).
func (p *Proc) WinFree(win *Win) {
	p.Barrier()
	if p.rank == 0 {
		w := p.w
		w.mu.Lock()
		delete(w.wins, win.name)
		w.mu.Unlock()
	}
	p.Barrier()
}

// Name reports the window's collective name.
func (win *Win) Name() string { return win.name }

// Local returns the calling rank's exposed region.
func (win *Win) Local(rank int) []float64 { return win.bufs[rank] }

func (win *Win) target(rank int) []float64 {
	if rank < 0 || rank >= len(win.bufs) {
		panic(fmt.Sprintf("mpi: window %q target rank %d out of range", win.name, rank))
	}
	b := win.bufs[rank]
	if b == nil {
		panic(fmt.Sprintf("mpi: window %q has no region on rank %d", win.name, rank))
	}
	return b
}

// chargeTransferE charges the origin rank for moving elems words
// to/from target: local copies cost memcpy, remote contiguous
// transfers cost DMA setup + wire, remote strided transfers cost the
// per-element PIO path. The traced transport class follows the
// fabric's capabilities (a card without a DMA engine moves contiguous
// data as p2p messages). Under fault injection the transfer also pays
// the reliable-transport overhead and can fail with an *Error; callers
// must not move the payload on error.
func (p *Proc) chargeTransferE(op string, target, elems int, strided bool) *Error {
	if err := p.enter(op, target); err != nil {
		return err
	}
	entry := p.entryClock()
	rec, begin := p.traceBegin()
	bytes := elems * WordBytes
	if target == p.rank {
		p.w.cl.ChargeComm(p.node(), p.localCopyCost(bytes), bytes)
		p.traceEnd(rec, begin, op, target, int64(bytes), int64(bytes), interconnect.TransportLocal)
		return nil
	}
	card := p.w.cl.Fabric()
	caps := card.Caps()
	cost := card.SendSetup()
	var tr interconnect.Transport
	if strided {
		cost += card.StridedTime(elems, WordBytes, p.hops(target))
		tr = caps.StridedTransport()
	} else {
		cost += card.ContigTime(bytes, p.hops(target))
		tr = caps.ContigTransport()
	}
	p.w.cl.ChargeComm(p.node(), cost, bytes)
	p.traceEnd(rec, begin, op, target, int64(bytes), int64(bytes), tr)
	return p.chargeReliability(op, target, bytes, entry)
}

// chargeTransfer is chargeTransferE for the panicking entry points.
func (p *Proc) chargeTransfer(op string, target, elems int, strided bool) {
	if err := p.chargeTransferE(op, target, elems, strided); err != nil {
		panic(err)
	}
}

// Put transfers data into target's window region starting at
// targetOff, using the contiguous DMA path (contiguous MPI_PUT).
// Under fault injection a failed transfer panics with the *Error; use
// PutE for error returns.
func (p *Proc) Put(win *Win, target, targetOff int, data []float64) {
	if err := p.PutE(win, target, targetOff, data); err != nil {
		panic(err)
	}
}

// PutE is Put with structured error reporting under fault injection.
// On error the target window is not modified.
func (p *Proc) PutE(win *Win, target, targetOff int, data []float64) error {
	buf := win.target(target)
	if targetOff < 0 || targetOff+len(data) > len(buf) {
		panic(fmt.Sprintf("mpi: Put %q rank %d [%d,%d) outside window size %d",
			win.name, target, targetOff, targetOff+len(data), len(buf)))
	}
	if err := p.chargeTransferE(trace.OpPut, target, len(data), false); err != nil {
		return err
	}
	win.applyMu[target].Lock()
	copy(buf[targetOff:], data)
	win.applyMu[target].Unlock()
	return nil
}

// PutStrided transfers data into target's window with a constant
// element stride: data[i] lands at targetOff + i*stride (strided
// MPI_PUT, the programmed-I/O path).
func (p *Proc) PutStrided(win *Win, target, targetOff, stride int, data []float64) {
	if stride == 1 {
		p.Put(win, target, targetOff, data)
		return
	}
	if stride <= 0 {
		panic(fmt.Sprintf("mpi: PutStrided stride %d must be positive", stride))
	}
	buf := win.target(target)
	if len(data) > 0 {
		last := targetOff + (len(data)-1)*stride
		if targetOff < 0 || last >= len(buf) {
			panic(fmt.Sprintf("mpi: PutStrided %q rank %d last index %d outside window size %d",
				win.name, target, last, len(buf)))
		}
	}
	p.chargeTransfer(trace.OpPutStrided, target, len(data), true)
	win.applyMu[target].Lock()
	for i, v := range data {
		buf[targetOff+i*stride] = v
	}
	win.applyMu[target].Unlock()
}

// Get reads elems words from target's window starting at targetOff
// into dst (contiguous MPI_GET). dst must have length >= elems. Under
// fault injection a failed transfer panics with the *Error; use GetE
// for error returns.
func (p *Proc) Get(win *Win, target, targetOff int, dst []float64) {
	if err := p.GetE(win, target, targetOff, dst); err != nil {
		panic(err)
	}
}

// GetE is Get with structured error reporting under fault injection.
// On error dst is not modified.
func (p *Proc) GetE(win *Win, target, targetOff int, dst []float64) error {
	buf := win.target(target)
	if targetOff < 0 || targetOff+len(dst) > len(buf) {
		panic(fmt.Sprintf("mpi: Get %q rank %d [%d,%d) outside window size %d",
			win.name, target, targetOff, targetOff+len(dst), len(buf)))
	}
	if err := p.chargeTransferE(trace.OpGet, target, len(dst), false); err != nil {
		return err
	}
	win.applyMu[target].Lock()
	copy(dst, buf[targetOff:targetOff+len(dst)])
	win.applyMu[target].Unlock()
	return nil
}

// GetStrided reads len(dst) words with a constant stride from target's
// window: dst[i] = window[targetOff + i*stride] (strided MPI_GET).
func (p *Proc) GetStrided(win *Win, target, targetOff, stride int, dst []float64) {
	if stride == 1 {
		p.Get(win, target, targetOff, dst)
		return
	}
	if stride <= 0 {
		panic(fmt.Sprintf("mpi: GetStrided stride %d must be positive", stride))
	}
	buf := win.target(target)
	if len(dst) > 0 {
		last := targetOff + (len(dst)-1)*stride
		if targetOff < 0 || last >= len(buf) {
			panic(fmt.Sprintf("mpi: GetStrided %q rank %d last index %d outside window size %d",
				win.name, target, last, len(buf)))
		}
	}
	p.chargeTransfer(trace.OpGetStrided, target, len(dst), true)
	win.applyMu[target].Lock()
	for i := range dst {
		dst[i] = buf[targetOff+i*stride]
	}
	win.applyMu[target].Unlock()
}

// Accumulate adds data element-wise into target's window starting at
// targetOff (MPI_ACCUMULATE with MPI_SUM). The per-target apply lock
// makes concurrent accumulations from different origins atomic.
func (p *Proc) Accumulate(win *Win, target, targetOff int, data []float64) {
	buf := win.target(target)
	if targetOff < 0 || targetOff+len(data) > len(buf) {
		panic(fmt.Sprintf("mpi: Accumulate %q rank %d [%d,%d) outside window size %d",
			win.name, target, targetOff, targetOff+len(data), len(buf)))
	}
	p.chargeTransfer(trace.OpAccumulate, target, len(data), false)
	win.applyMu[target].Lock()
	for i, v := range data {
		buf[targetOff+i] += v
	}
	win.applyMu[target].Unlock()
}

// Fence completes all outstanding one-sided operations on the window
// and synchronizes all ranks (MPI_WIN_FENCE). Because transfer time is
// charged to the origin, synchronizing every clock to the global
// maximum guarantees all PUTs issued before the fence have landed in
// virtual time as well as in memory.
func (p *Proc) Fence(win *Win) {
	p.barrier(trace.OpFence)
}

// FenceE is Fence with structured error reporting under fault
// injection (see BarrierE).
func (p *Proc) FenceE(win *Win) error {
	if err := p.barrierE(trace.OpFence); err != nil {
		return err
	}
	return nil
}

// Lock acquires an exclusive lock on target's region of the window
// (MPI_WIN_LOCK). Used for passive-target critical sections such as
// reductions into shared variables. Under fault injection a failed
// acquisition panics with the *Error; use LockE for error returns.
func (p *Proc) Lock(win *Win, target int) {
	if err := p.LockE(win, target); err != nil {
		panic(err)
	}
}

// LockE is Lock with structured error reporting under fault injection:
// a crashed caller fails with ErrCrashed, and with a deadline set, an
// acquisition stuck past the wall-clock watchdog (the holder crashed
// inside its critical section) fails with ErrTimeout.
func (p *Proc) LockE(win *Win, target int) error {
	if err := p.enter(trace.OpLock, target); err != nil {
		return err
	}
	entry := p.entryClock()
	rec, begin := p.traceBegin()
	if d := p.w.inj.Deadline(); d > 0 {
		select {
		case win.lockCh[target] <- struct{}{}:
		case <-time.After(WatchdogWall):
			return &Error{Kind: ErrTimeout, Rank: p.rank, Op: trace.OpLock, Peer: target, Time: entry + d}
		}
	} else {
		win.lockCh[target] <- struct{}{}
	}
	card := p.w.cl.Fabric()
	p.w.cl.ChargeComm(p.node(), card.SendSetup()+card.ContigTime(WordBytes, p.hops(target)), 0)
	p.traceEnd(rec, begin, trace.OpLock, target, 0, 0, interconnect.TransportSync)
	return nil
}

// Unlock releases the exclusive lock (MPI_WIN_UNLOCK).
func (p *Proc) Unlock(win *Win, target int) {
	rec, begin := p.traceBegin()
	card := p.w.cl.Fabric()
	p.w.cl.ChargeComm(p.node(), card.SendSetup()+card.ContigTime(WordBytes, p.hops(target)), 0)
	<-win.lockCh[target]
	p.traceEnd(rec, begin, trace.OpUnlock, target, 0, 0, interconnect.TransportSync)
}

// ChargePutContig charges the cost of a contiguous PUT/GET of elems
// words to target without moving data. The interpreter's timing-only
// mode uses these so large experiments cost the same virtual time as
// full execution without touching real arrays.
func (p *Proc) ChargePutContig(target, elems int) {
	p.chargeTransfer(trace.OpPut, target, elems, false)
}

// ChargePutStrided charges the cost of a strided PUT/GET of elems words
// to target without moving data.
func (p *Proc) ChargePutStrided(target, elems int) {
	p.chargeTransfer(trace.OpPutStrided, target, elems, true)
}
