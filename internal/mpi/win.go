package mpi

import (
	"fmt"
	"sync"
	"time"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/trace"
)

// Win is an MPI-2 memory window (MPI_WIN): each rank exposes a region
// of its private memory that remote ranks may access with Put/Get
// without the owner's involvement. Windows are created collectively,
// identified by name (the compiler uses the array name).
type Win struct {
	world *World
	name  string

	mu   sync.Mutex // guards bufs wiring during creation
	bufs [][]float64

	applyMu []sync.Mutex // per-target apply serialization
	// lockCh holds the MPI_Win_lock exclusive locks as one-slot
	// channels: a send acquires, a receive releases. Channels (rather
	// than mutexes) let a deadline-carrying Lock time out in a select
	// instead of blocking forever on a dead lock holder.
	lockCh []chan struct{}
}

// WinCreate collectively creates (or attaches to) the window named
// name, exposing local as this rank's region (MPI_WIN_CREATE). Every
// rank must call it; it synchronizes like a barrier.
func (p *Proc) WinCreate(name string, local []float64) *Win {
	w := p.w
	w.mu.Lock()
	win, ok := w.wins[name]
	if !ok {
		win = &Win{
			world:   w,
			name:    name,
			bufs:    make([][]float64, w.n),
			applyMu: make([]sync.Mutex, w.n),
			lockCh:  make([]chan struct{}, w.n),
		}
		for i := range win.lockCh {
			win.lockCh[i] = make(chan struct{}, 1)
		}
		w.wins[name] = win
	}
	w.mu.Unlock()
	win.mu.Lock()
	win.bufs[p.rank] = local
	win.mu.Unlock()
	p.Barrier()
	return win
}

// WinFree collectively destroys the window (MPI_WIN_FREE).
func (p *Proc) WinFree(win *Win) {
	p.Barrier()
	if p.rank == 0 {
		w := p.w
		w.mu.Lock()
		delete(w.wins, win.name)
		w.mu.Unlock()
	}
	p.Barrier()
}

// Name reports the window's collective name.
func (win *Win) Name() string { return win.name }

// Local returns the calling rank's exposed region.
func (win *Win) Local(rank int) []float64 { return win.bufs[rank] }

func (win *Win) target(rank int) []float64 {
	if rank < 0 || rank >= len(win.bufs) {
		panic(fmt.Sprintf("mpi: window %q target rank %d out of range", win.name, rank))
	}
	b := win.bufs[rank]
	if b == nil {
		panic(fmt.Sprintf("mpi: window %q has no region on rank %d", win.name, rank))
	}
	return b
}

// Put transfers data into target's window region starting at
// targetOff, using the contiguous DMA path (contiguous MPI_PUT).
// Compatibility wrapper over the descriptor API: new code should
// prefer PutD with a ContigDesc. Under fault injection a failed
// transfer panics with the *Error; use PutE for error returns.
func (p *Proc) Put(win *Win, target, targetOff int, data []float64) {
	if err := p.PutE(win, target, targetOff, data); err != nil {
		panic(err)
	}
}

// PutE is Put with structured error reporting under fault injection.
// On error the target window is not modified.
func (p *Proc) PutE(win *Win, target, targetOff int, data []float64) error {
	return p.putDE("Put", win, target, ContigDesc(int64(targetOff), int64(len(data))), data)
}

// PutStrided transfers data into target's window with a constant
// element stride: data[i] lands at targetOff + i*stride (strided
// MPI_PUT, the programmed-I/O path). Compatibility wrapper over the
// descriptor API: new code should prefer PutD with a StridedDesc,
// which can also route large transfers over the coalesced pack path.
func (p *Proc) PutStrided(win *Win, target, targetOff, stride int, data []float64) {
	if err := p.PutStridedE(win, target, targetOff, stride, data); err != nil {
		panic(err)
	}
}

// PutStridedE is PutStrided with structured error reporting under
// fault injection. On error the target window is not modified.
func (p *Proc) PutStridedE(win *Win, target, targetOff, stride int, data []float64) error {
	if stride == 1 {
		return p.PutE(win, target, targetOff, data)
	}
	return p.putDE("PutStrided", win, target,
		StridedDesc(int64(targetOff), int64(len(data)), int64(stride)), data)
}

// Get reads elems words from target's window starting at targetOff
// into dst (contiguous MPI_GET). dst must have length >= elems.
// Compatibility wrapper over the descriptor API: new code should
// prefer GetD with a ContigDesc. Under fault injection a failed
// transfer panics with the *Error; use GetE for error returns.
func (p *Proc) Get(win *Win, target, targetOff int, dst []float64) {
	if err := p.GetE(win, target, targetOff, dst); err != nil {
		panic(err)
	}
}

// GetE is Get with structured error reporting under fault injection.
// On error dst is not modified.
func (p *Proc) GetE(win *Win, target, targetOff int, dst []float64) error {
	return p.getDE("Get", win, target, ContigDesc(int64(targetOff), int64(len(dst))), dst)
}

// GetStrided reads len(dst) words with a constant stride from target's
// window: dst[i] = window[targetOff + i*stride] (strided MPI_GET).
// Compatibility wrapper over the descriptor API: new code should
// prefer GetD with a StridedDesc.
func (p *Proc) GetStrided(win *Win, target, targetOff, stride int, dst []float64) {
	if err := p.GetStridedE(win, target, targetOff, stride, dst); err != nil {
		panic(err)
	}
}

// GetStridedE is GetStrided with structured error reporting under
// fault injection. On error dst is not modified.
func (p *Proc) GetStridedE(win *Win, target, targetOff, stride int, dst []float64) error {
	if stride == 1 {
		return p.GetE(win, target, targetOff, dst)
	}
	return p.getDE("GetStrided", win, target,
		StridedDesc(int64(targetOff), int64(len(dst)), int64(stride)), dst)
}

// Accumulate adds data element-wise into target's window starting at
// targetOff (MPI_ACCUMULATE with MPI_SUM). The per-target apply lock
// makes concurrent accumulations from different origins atomic. Under
// fault injection a failed transfer panics with the *Error; use
// AccumulateE for error returns.
func (p *Proc) Accumulate(win *Win, target, targetOff int, data []float64) {
	if err := p.AccumulateE(win, target, targetOff, data); err != nil {
		panic(err)
	}
}

// AccumulateE is Accumulate with structured error reporting under
// fault injection. On error the target window is not modified.
func (p *Proc) AccumulateE(win *Win, target, targetOff int, data []float64) error {
	d := ContigDesc(int64(targetOff), int64(len(data)))
	buf := p.validateAccess("Accumulate", win, target, d, len(data))
	if err := p.chargeAccessE(trace.OpAccumulate, target, d); err != nil {
		return err
	}
	win.applyMu[target].Lock()
	for i, v := range data {
		buf[targetOff+i] += v
	}
	win.applyMu[target].Unlock()
	return nil
}

// Fence completes all outstanding one-sided operations on the window
// and synchronizes all ranks (MPI_WIN_FENCE). Because transfer time is
// charged to the origin, synchronizing every clock to the global
// maximum guarantees all PUTs issued before the fence have landed in
// virtual time as well as in memory.
func (p *Proc) Fence(win *Win) {
	p.barrier(trace.OpFence)
}

// FenceE is Fence with structured error reporting under fault
// injection (see BarrierE).
func (p *Proc) FenceE(win *Win) error {
	if err := p.barrierE(trace.OpFence); err != nil {
		return err
	}
	return nil
}

// Lock acquires an exclusive lock on target's region of the window
// (MPI_WIN_LOCK). Used for passive-target critical sections such as
// reductions into shared variables. Under fault injection a failed
// acquisition panics with the *Error; use LockE for error returns.
func (p *Proc) Lock(win *Win, target int) {
	if err := p.LockE(win, target); err != nil {
		panic(err)
	}
}

// LockE is Lock with structured error reporting under fault injection:
// a crashed caller fails with ErrCrashed, and with a deadline set, an
// acquisition stuck past the wall-clock watchdog (the holder crashed
// inside its critical section) fails with ErrTimeout.
func (p *Proc) LockE(win *Win, target int) error {
	if err := p.enter(trace.OpLock, target); err != nil {
		return err
	}
	entry := p.entryClock()
	rec, begin := p.traceBegin()
	d := p.w.inj.Deadline()
	if sched := p.w.sched; sched != nil {
		// Contended acquisitions release the worker slot while blocked
		// so the lock holder can run to its Unlock even when every slot
		// is busy (critical sections contain no blocking operations, so
		// a holder always progresses). The uncontended fast path keeps
		// the slot.
		select {
		case win.lockCh[target] <- struct{}{}:
		default:
			sched.Park(p.node())
			if d > 0 {
				select {
				case win.lockCh[target] <- struct{}{}:
				case <-p.w.cancelCh:
					sched.Unpark(p.node())
					return p.cancelErr(trace.OpLock, target)
				case <-time.After(WatchdogWall):
					sched.Unpark(p.node())
					return &Error{Kind: ErrTimeout, Rank: p.rank, Op: trace.OpLock, Peer: target, Time: entry + d}
				}
			} else {
				select {
				case win.lockCh[target] <- struct{}{}:
				case <-p.w.cancelCh:
					sched.Unpark(p.node())
					return p.cancelErr(trace.OpLock, target)
				}
			}
			sched.Unpark(p.node())
		}
	} else if d > 0 {
		select {
		case win.lockCh[target] <- struct{}{}:
		case <-p.w.cancelCh:
			return p.cancelErr(trace.OpLock, target)
		case <-time.After(WatchdogWall):
			return &Error{Kind: ErrTimeout, Rank: p.rank, Op: trace.OpLock, Peer: target, Time: entry + d}
		}
	} else {
		select {
		case win.lockCh[target] <- struct{}{}:
		case <-p.w.cancelCh:
			return p.cancelErr(trace.OpLock, target)
		}
	}
	card := p.w.cl.Fabric()
	p.w.cl.ChargeComm(p.node(), card.SendSetup()+card.ContigTime(WordBytes, p.hops(target)), 0)
	p.traceEnd(rec, begin, trace.OpLock, target, 0, 0, interconnect.TransportSync)
	return nil
}

// Unlock releases the exclusive lock (MPI_WIN_UNLOCK).
func (p *Proc) Unlock(win *Win, target int) {
	rec, begin := p.traceBegin()
	card := p.w.cl.Fabric()
	p.w.cl.ChargeComm(p.node(), card.SendSetup()+card.ContigTime(WordBytes, p.hops(target)), 0)
	<-win.lockCh[target]
	p.traceEnd(rec, begin, trace.OpUnlock, target, 0, 0, interconnect.TransportSync)
}

// ChargePutContig charges the cost of a contiguous PUT/GET of elems
// words to target without moving data. Compatibility wrapper over
// ChargePutD with a ContigDesc.
func (p *Proc) ChargePutContig(target, elems int) {
	p.ChargePutD(target, ContigDesc(0, int64(elems)))
}

// ChargePutStrided charges the cost of a strided PUT/GET of elems words
// to target without moving data. Compatibility wrapper over ChargePutD;
// the strided charge depends only on the element count, so the
// descriptor carries a placeholder stride. New code should pass the
// real descriptor, which also lets the coalescer's packed marking
// through.
func (p *Proc) ChargePutStrided(target, elems int) {
	p.ChargePutD(target, AccessDesc{Elems: int64(elems), Stride: 2})
}
