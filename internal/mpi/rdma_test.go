package mpi

import (
	"testing"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/sim"
)

// rdmaRank0 builds a two-rank world on the rdma fabric and returns
// rank 0 (charge-only tests need no partner goroutine), the cluster,
// the protocol model and the 0->1 hop distance.
func rdmaRank0(t *testing.T) (*Proc, *cluster.Cluster, interconnect.ProtocolModel, int) {
	t.Helper()
	params, err := cluster.ParamsForFabric("rdma")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(2, params)
	if err != nil {
		t.Fatal(err)
	}
	pm, ok := params.Fabric.(interconnect.ProtocolModel)
	if !ok {
		t.Fatal("rdma fabric does not implement interconnect.ProtocolModel")
	}
	return NewWorld(cl).Rank(0), cl, pm, params.Hops(0, 1)
}

func chargeDesc(cl *cluster.Cluster, p *Proc, d AccessDesc) sim.Time {
	t0 := cl.Clock(0)
	p.ChargePutD(1, d)
	return cl.Clock(0) - t0
}

// Above the cold crossover the automatic protocol choice takes
// rendezvous; a repeat transfer from the same region must hit the
// registration cache and be charged exactly the warm model time.
func TestRdmaRepeatTransferWarmsCache(t *testing.T) {
	p, cl, pm, hops := rdmaRank0(t)
	elems := 2 * (pm.ProtocolCrossoverBytes(hops, 0) + WordBytes - 1) / WordBytes
	d := ContigDesc(0, elems)
	d.Region = "A"
	bytes := int(elems) * WordBytes
	if got, want := chargeDesc(cl, p, d), pm.RendezvousTime(bytes, hops, false); got != want {
		t.Fatalf("first transfer cost %v, want cold rendezvous %v", got, want)
	}
	if got, want := chargeDesc(cl, p, d), pm.RendezvousTime(bytes, hops, true); got != want {
		t.Fatalf("repeat transfer cost %v, want warm rendezvous %v", got, want)
	}
	st := cl.RegCache(0).Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats %+v, want exactly 1 hit and 1 miss", st)
	}
}

// A forced-eager transfer rides the bounce buffer and must not touch
// the registration cache: a later rendezvous from the same region still
// pays the cold registration.
func TestRdmaEagerDoesNotWarmCache(t *testing.T) {
	p, cl, pm, hops := rdmaRank0(t)
	const elems = 4096
	bytes := elems * WordBytes
	d := ContigDesc(0, elems)
	d.Region = "B"
	d.Proto = lmad.ProtoEager
	if got, want := chargeDesc(cl, p, d), pm.EagerTime(bytes, hops); got != want {
		t.Fatalf("forced eager cost %v, want %v", got, want)
	}
	if st := cl.RegCache(0).Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("eager transfer touched the registration cache: %+v", st)
	}
	d.Proto = lmad.ProtoRndv
	if got, want := chargeDesc(cl, p, d), pm.RendezvousTime(bytes, hops, false); got != want {
		t.Fatalf("rendezvous after eager cost %v, want cold %v (eager must not register)", got, want)
	}
}

// An anonymous transfer (no Region) can never be cached: every
// rendezvous stays cold, however often it repeats.
func TestRdmaAnonymousTransferStaysCold(t *testing.T) {
	p, cl, pm, hops := rdmaRank0(t)
	elems := 2 * (pm.ProtocolCrossoverBytes(hops, 0) + WordBytes - 1) / WordBytes
	d := ContigDesc(0, elems)
	bytes := int(elems) * WordBytes
	cold := pm.RendezvousTime(bytes, hops, false)
	for i := 0; i < 3; i++ {
		if got := chargeDesc(cl, p, d); got != cold {
			t.Fatalf("anonymous transfer %d cost %v, want cold rendezvous %v", i, got, cold)
		}
	}
}

// Below the warm crossover the automatic choice must take eager even
// when the region is already registered.
func TestRdmaSmallTransferStaysEager(t *testing.T) {
	p, cl, pm, hops := rdmaRank0(t)
	elems := pm.ProtocolCrossoverBytes(hops, 1) / (2 * WordBytes)
	if elems < 1 {
		elems = 1
	}
	d := ContigDesc(0, elems)
	d.Region = "C"
	// Register the region first with a forced rendezvous.
	d.Proto = lmad.ProtoRndv
	chargeDesc(cl, p, d)
	d.Proto = lmad.ProtoAuto
	bytes := int(elems) * WordBytes
	if got, want := chargeDesc(cl, p, d), pm.EagerTime(bytes, hops); got != want {
		t.Fatalf("small registered transfer cost %v, want eager %v", got, want)
	}
}

// Two-sided sends on a protocol fabric ride the same eager/rendezvous
// switch as one-sided transfers (anonymous, so always cold), while the
// classic cards keep their SendSetup+ContigTime pricing.
func TestRdmaSendUsesProtocolPath(t *testing.T) {
	params, err := cluster.ParamsForFabric("rdma")
	if err != nil {
		t.Fatal(err)
	}
	pm := params.Fabric.(interconnect.ProtocolModel)
	hops := params.Hops(0, 1)
	for _, elems := range []int{8, 8192} {
		var cost sim.Time
		runWorldParams(t, 2, params, func(p *Proc) {
			if p.Rank() == 0 {
				t0 := p.w.cl.Clock(0)
				p.Send(1, 0, make([]float64, elems))
				cost = p.w.cl.Clock(0) - t0
			} else {
				p.Recv(0, 0)
			}
		})
		bytes := elems * WordBytes
		want := pm.EagerTime(bytes, hops)
		if r := pm.RendezvousTime(bytes, hops, false); r < want {
			want = r
		}
		if cost != want {
			t.Errorf("%d-elem send cost %v, want protocol-priced %v", elems, cost, want)
		}
	}
}

// runWorldParams is runWorld with an explicit machine model.
func runWorldParams(t *testing.T, n int, params cluster.Params, body func(p *Proc)) {
	t.Helper()
	cl, err := cluster.New(n, params)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(cl)
	done := make(chan struct{})
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer func() { done <- struct{}{} }()
			body(w.Rank(rank))
		}(r)
	}
	for r := 0; r < n; r++ {
		<-done
	}
}
