package mpi

import (
	"sync"
	"testing"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// runTraced is runWorld with a trace.Recorder attached before the rank
// goroutines start. It returns the recorder alongside the cluster's
// final accounting so tests can reconcile the two.
func runTraced(t *testing.T, n int, fabric string, body func(p *Proc)) (*trace.Recorder, *cluster.Cluster) {
	t.Helper()
	params, err := cluster.ParamsForFabric(fabric)
	if err != nil {
		t.Fatal(err)
	}
	if n > 4 {
		params.MeshWidth, params.MeshHeight = 4, 4
	}
	cl, err := cluster.New(n, params)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	cl.SetRecorder(rec)
	w := NewWorld(cl)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(w.Rank(rank))
		}(r)
	}
	wg.Wait()
	return rec, cl
}

// mixedWorkload exercises every instrumented operation: one-sided
// contiguous/strided puts and gets, accumulate, lock/unlock, two-sided
// ring exchange, region send/recv, the three collectives, fences and
// barriers. Sizes vary per rank through a fixed linear-congruential
// sequence so the workload is deterministic but not uniform.
func mixedWorkload(p *Proc) {
	n := p.Size()
	seed := uint64(p.Rank())*2654435761 + 12345
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33)%mod + 1
	}
	local := make([]float64, 4096)
	win := p.WinCreate("prop", local)
	for round := 0; round < 3; round++ {
		dst := (p.Rank() + 1 + round) % n
		p.Put(win, dst, 0, make([]float64, next(256)))
		p.PutStrided(win, dst, next(16), 3, make([]float64, next(128)))
		got := make([]float64, next(64))
		p.Get(win, dst, next(32), got)
		p.GetStrided(win, dst, next(16), 2, make([]float64, next(32)))
		p.Accumulate(win, 0, 0, make([]float64, next(8)))
		p.Fence(win)
	}
	p.Lock(win, 0)
	p.Put(win, 0, 8*p.Rank(), []float64{float64(p.Rank())})
	p.Unlock(win, 0)
	p.Fence(win)

	// Two-sided ring plus region traffic.
	nextRank, prevRank := (p.Rank()+1)%n, (p.Rank()+n-1)%n
	p.Send(nextRank, 1, make([]float64, next(200)))
	p.Recv(prevRank, 1)
	elems := 64 + 8*p.Rank()
	p.SendRegion(nextRank, 2, elems, make([]float64, elems))
	p.RecvRegion(prevRank, 2, 64+8*prevRank)

	// Collectives.
	var in []float64
	if p.Rank() == 0 {
		in = make([]float64, 32)
	}
	p.Bcast(0, in)
	p.Reduce(Sum, 0, []float64{float64(p.Rank())})
	p.Allreduce(Max, []float64{float64(p.Rank())})
	p.Barrier()

	// Charge-only helpers (the interpreter's Timing mode path).
	if p.Rank() == 0 {
		p.ChargePutContig(1, next(512))
		p.ChargePutStrided(1, next(128))
	}
	p.Barrier()
}

// checkTraceInvariants pins the three properties from the design: every
// interval has end >= begin, intervals on one rank never overlap, and
// summed traced bytes per rank (and per transport) exactly equal the
// bytes priced through the interconnect cost calls.
func checkTraceInvariants(t *testing.T, rec *trace.Recorder, cl *cluster.Cluster) {
	t.Helper()
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("traced run recorded no events")
	}
	rep := cl.Snapshot()
	n := cl.N()
	lastEnd := make(map[int]sim.Time)
	bytesByRank := make([]int64, n)
	for i, e := range evs {
		if e.End < e.Begin {
			t.Fatalf("event %d %+v has end < begin", i, e)
		}
		if e.Begin < lastEnd[e.Rank] {
			t.Fatalf("event %d %+v overlaps previous interval on rank %d (ends at %v)",
				i, e, e.Rank, lastEnd[e.Rank])
		}
		lastEnd[e.Rank] = e.End
		if e.Rank >= 0 && e.Rank < n {
			bytesByRank[e.Rank] += e.Bytes
			if e.End > cl.Clock(e.Rank) {
				t.Fatalf("event %+v ends after rank %d's final clock %v", e, e.Rank, cl.Clock(e.Rank))
			}
		}
	}
	for r := 0; r < n; r++ {
		if bytesByRank[r] != rep.CommBytes[r] {
			t.Errorf("rank %d traced %d bytes, cluster accounted %d",
				r, bytesByRank[r], rep.CommBytes[r])
		}
	}
	// The per-transport split must partition the per-rank total, and the
	// traced intervals must fit inside the rank's clock.
	for _, s := range rec.Summaries(rep.Clocks) {
		var sum int64
		for tr := interconnect.Transport(0); tr < interconnect.NumTransports; tr++ {
			sum += s.BytesByTransport[tr]
		}
		if sum != s.Bytes {
			t.Errorf("rank %d transport split sums to %d, total is %d", s.Rank, sum, s.Bytes)
		}
		if s.Transfer+s.Wait > s.Clock {
			t.Errorf("rank %d traced time %v exceeds clock %v",
				s.Rank, s.Transfer+s.Wait, s.Clock)
		}
	}
}

func TestTraceInvariantsAcrossFabrics(t *testing.T) {
	for _, fabric := range []string{"vbus", "ethernet", "ideal"} {
		for _, n := range []int{1, 2, 4} {
			rec, cl := runTraced(t, n, fabric, mixedWorkload)
			t.Run(fabric, func(t *testing.T) { checkTraceInvariants(t, rec, cl) })
		}
	}
}

// The traced timeline is a pure function of the program, not of the
// goroutine schedule: two runs of the same deterministic workload must
// produce identical sorted event lists.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	rec1, _ := runTraced(t, 4, "vbus", mixedWorkload)
	rec2, _ := runTraced(t, 4, "vbus", mixedWorkload)
	e1, e2 := rec1.Events(), rec2.Events()
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ across runs: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs across runs:\n  %+v\n  %+v", i, e1[i], e2[i])
		}
	}
}

// Transport classification per fabric: the V-Bus card moves contiguous
// puts over DMA and strided puts over PIO; Ethernet has neither engine
// (contiguous goes P2P, strided PIO); the ideal fabric moves everything
// over DMA.
func TestTraceTransportClasses(t *testing.T) {
	cases := []struct {
		fabric  string
		contig  interconnect.Transport
		strided interconnect.Transport
	}{
		{"vbus", interconnect.TransportDMA, interconnect.TransportPIO},
		{"ethernet", interconnect.TransportP2P, interconnect.TransportPIO},
		{"ideal", interconnect.TransportDMA, interconnect.TransportDMA},
	}
	for _, tc := range cases {
		rec, _ := runTraced(t, 2, tc.fabric, func(p *Proc) {
			win := p.WinCreate("t", make([]float64, 64))
			if p.Rank() == 0 {
				p.Put(win, 1, 0, make([]float64, 8))
				p.PutStrided(win, 1, 0, 2, make([]float64, 8))
				p.Send(1, 0, make([]float64, 4))
			} else {
				p.Recv(0, 0)
			}
			p.Fence(win)
		})
		got := map[string]interconnect.Transport{}
		for _, e := range rec.Events() {
			if e.Rank == 0 {
				got[e.Op] = e.Transport
			}
		}
		if got[trace.OpPut] != tc.contig {
			t.Errorf("%s: contiguous put on %v, want %v", tc.fabric, got[trace.OpPut], tc.contig)
		}
		if got[trace.OpPutStrided] != tc.strided {
			t.Errorf("%s: strided put on %v, want %v", tc.fabric, got[trace.OpPutStrided], tc.strided)
		}
		if got[trace.OpSend] != interconnect.TransportP2P {
			t.Errorf("%s: send on %v, want p2p", tc.fabric, got[trace.OpSend])
		}
		if got[trace.OpFence] != interconnect.TransportSync {
			t.Errorf("%s: fence on %v, want sync", tc.fabric, got[trace.OpFence])
		}
	}
}

// Rank-local operations never leave the node: puts and gets targeting
// the calling rank are tagged TransportLocal and still carry their
// accounted bytes.
func TestTraceLocalTransport(t *testing.T) {
	rec, cl := runTraced(t, 2, "", func(p *Proc) {
		win := p.WinCreate("l", make([]float64, 16))
		p.Put(win, p.Rank(), 0, make([]float64, 4))
		p.Fence(win)
	})
	var localEvents int
	for _, e := range rec.Events() {
		if e.Op == trace.OpPut {
			if e.Transport != interconnect.TransportLocal {
				t.Fatalf("self put classified %v", e.Transport)
			}
			localEvents++
		}
	}
	if localEvents != 2 {
		t.Fatalf("want 2 local put events, got %d", localEvents)
	}
	checkTraceInvariants(t, rec, cl)
}

// The charge-only helpers must trace exactly like the real transfers
// they stand in for: same op, bytes and transport (the interpreter's
// Timing mode depends on this equivalence).
func TestChargeOnlyHelpersTraceLikeRealPuts(t *testing.T) {
	realBody := func(p *Proc) {
		win := p.WinCreate("c", make([]float64, 4096))
		if p.Rank() == 0 {
			p.Put(win, 1, 0, make([]float64, 4096))
			p.PutStrided(win, 1, 0, 2, make([]float64, 2048))
		}
		p.Fence(win)
	}
	chargeBody := func(p *Proc) {
		win := p.WinCreate("c", make([]float64, 4096))
		if p.Rank() == 0 {
			p.ChargePutContig(1, 4096)
			p.ChargePutStrided(1, 2048)
		}
		p.Fence(win)
	}
	recReal, _ := runTraced(t, 2, "", realBody)
	recCharge, _ := runTraced(t, 2, "", chargeBody)
	e1, e2 := recReal.Events(), recCharge.Events()
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: real %d, charge-only %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs:\n  real:   %+v\n  charge: %+v", i, e1[i], e2[i])
		}
	}
}

// With no recorder attached, nothing is recorded and the accounting is
// identical to a traced run — tracing observes, never perturbs.
func TestTracingDoesNotPerturbCosts(t *testing.T) {
	_, clPlain := runWorld(t, 4, mixedWorkload)
	rec, clTraced := runTraced(t, 4, "", mixedWorkload)
	if rec.Len() == 0 {
		t.Fatal("traced run recorded nothing")
	}
	plain, traced := clPlain.Snapshot(), clTraced.Snapshot()
	for r := 0; r < 4; r++ {
		if plain.Clocks[r] != traced.Clocks[r] {
			t.Fatalf("rank %d clock differs with tracing: %v vs %v", r, plain.Clocks[r], traced.Clocks[r])
		}
		if plain.CommBytes[r] != traced.CommBytes[r] || plain.CommTime[r] != traced.CommTime[r] {
			t.Fatalf("rank %d accounting differs with tracing on", r)
		}
	}
}

// Receives are waits: the recv interval spans the block until the
// message lands, tagged sync with zero accounted bytes but the logical
// payload recorded.
func TestTraceRecvWaitsAndPayload(t *testing.T) {
	rec, _ := runTraced(t, 2, "", func(p *Proc) {
		if p.Rank() == 0 {
			p.w.cl.ChargeCompute(0, 100*sim.Microsecond)
			p.Send(1, 0, make([]float64, 1024))
		} else {
			p.Recv(0, 0)
		}
	})
	for _, e := range rec.Events() {
		if e.Op != trace.OpRecv {
			continue
		}
		if e.Transport != interconnect.TransportSync || e.Bytes != 0 {
			t.Fatalf("recv should be a zero-byte sync event, got %+v", e)
		}
		if e.Payload != 1024*WordBytes {
			t.Fatalf("recv payload = %d, want %d", e.Payload, 1024*WordBytes)
		}
		if e.Peer != 0 {
			t.Fatalf("recv peer = %d, want 0", e.Peer)
		}
		if e.Duration() < 100*sim.Microsecond {
			t.Fatalf("recv wait %v should cover the sender's 100us head start", e.Duration())
		}
		return
	}
	t.Fatal("no recv event traced")
}
