package mpi

import (
	"errors"
	"testing"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// TestCrashAfterOps: a rank with a crashafter budget completes exactly
// that many operations; the next one fails with ErrCrashed whose Time
// is the virtual time of detection (the rank's clock at the failing
// operation's entry), and a blocked peer observes ErrPeerCrashed.
func TestCrashAfterOps(t *testing.T) {
	shrinkWatchdog(t)
	var detectClock sim.Time
	_, _, errs := runFaultWorld(t, 2, "seed=0,crashafter=0/2", func(p *Proc) error {
		if p.Rank() == 0 {
			// Ops 1 and 2 fit the budget.
			if err := p.SendE(1, 1, []float64{1}); err != nil {
				return err
			}
			if err := p.SendE(1, 2, []float64{2}); err != nil {
				return err
			}
			detectClock = p.w.cl.Clock(0)
			// Op 3 exceeds it.
			return p.SendE(1, 3, []float64{3})
		}
		if _, err := p.RecvE(0, 1); err != nil {
			return err
		}
		if _, err := p.RecvE(0, 2); err != nil {
			return err
		}
		_, err := p.RecvE(0, 3)
		return err
	})
	var crashed *Error
	if !errors.As(errs[0], &crashed) || crashed.Kind != ErrCrashed {
		t.Fatalf("rank 0: got %v, want ErrCrashed", errs[0])
	}
	if crashed.Time != detectClock {
		t.Errorf("crash Time = %v, want the detection clock %v", crashed.Time, detectClock)
	}
	var peer *Error
	if !errors.As(errs[1], &peer) || peer.Kind != ErrPeerCrashed || peer.Peer != 0 {
		t.Fatalf("rank 1: got %v, want ErrPeerCrashed from rank 0", errs[1])
	}
}

// TestRevokeWakesBlockedRanks: revoking the communicator fails a rank
// blocked in a collective with ErrRevoked instead of leaving it
// waiting for arrivals that will never come.
func TestRevokeWakesBlockedRanks(t *testing.T) {
	shrinkWatchdog(t)
	entered := make(chan struct{})
	_, _, errs := runFaultWorld(t, 2, "seed=0,crashafter=0/0", func(p *Proc) error {
		if p.Rank() == 0 {
			<-entered
			p.w.Revoke()
			return nil
		}
		close(entered)
		return p.BarrierE()
	})
	var revoked *Error
	if !errors.As(errs[1], &revoked) || revoked.Kind != ErrRevoked {
		t.Fatalf("rank 1: got %v, want ErrRevoked", errs[1])
	}
	if errs[0] != nil {
		t.Fatalf("rank 0: %v", errs[0])
	}
}

// TestAgreeShrinkRecover drives the full recovery protocol by hand:
// rank 1 of 4 exhausts its crashafter budget mid-run, the survivors
// agree on the failed set, shrink to a 3-rank world with contiguous
// ids over the surviving nodes, and run a recovery round plus a
// collective there — while the dead node's clock stays frozen.
func TestAgreeShrinkRecover(t *testing.T) {
	shrinkWatchdog(t)
	w, rec, errs := runFaultWorld(t, 4, "seed=0,crashafter=1/1", func(p *Proc) error {
		if err := p.BarrierE(); err != nil {
			return err
		}
		return p.BarrierE()
	})
	var sawCrash bool
	for _, err := range errs {
		var me *Error
		if errors.As(err, &me) && me.Kind == ErrCrashed {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatalf("no rank crashed: %v", errs)
	}

	failed := w.Agree()
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("Agree() = %v, want [1]", failed)
	}
	deadClock := w.cl.Clock(1)

	nw, err := w.Shrink(failed)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	if nw.Size() != 3 {
		t.Fatalf("shrunken world size %d, want 3", nw.Size())
	}
	wantNodes := []int{0, 2, 3}
	for i, nd := range nw.Nodes() {
		if nd != wantNodes[i] {
			t.Fatalf("shrunken nodes = %v, want %v", nw.Nodes(), wantNodes)
		}
	}

	// Recovery round + a working collective on the survivors.
	done := make(chan error, 3)
	for r := 0; r < 3; r++ {
		go func(rank int) {
			p := nw.Rank(rank)
			if err := p.RecoverE(4096 * boolToInt(rank == 0)); err != nil {
				done <- err
				return
			}
			sum := p.Allreduce(Sum, []float64{1})
			if len(sum) != 1 || sum[0] != 3 {
				t.Errorf("rank %d: allreduce = %v, want [3]", rank, sum)
			}
			done <- nil
		}(r)
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatalf("survivor: %v", err)
		}
	}

	// The dead node's clock froze at detection.
	if got := w.cl.Clock(1); got != deadClock {
		t.Errorf("dead node clock moved from %v to %v", deadClock, got)
	}
	// Survivors' recovery work is traced on the recovery transport,
	// keyed by physical node (node 2 = new rank 1).
	var recovery, onDead int
	for _, ev := range rec.Events() {
		if ev.Transport == interconnect.TransportRecovery {
			recovery++
			if ev.Rank == 1 {
				onDead++
			}
		}
	}
	if recovery == 0 {
		t.Error("no recovery-transport events recorded")
	}
	if onDead != 0 {
		t.Errorf("%d recovery events recorded on the dead node", onDead)
	}
}

// TestCheckpointRound: a checkpoint is a synchronizing collective that
// charges every rank the quiesce plus rank 0's snapshot stream, and
// is traced on the ckpt transport.
func TestCheckpointRound(t *testing.T) {
	w, rec, errs := runFaultWorld(t, 4, "", func(p *Proc) error {
		return p.CheckpointE(8192 * boolToInt(p.Rank() == 0))
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Synchronizing: all clocks equal and past the barrier cost.
	t0 := w.cl.Clock(0)
	if t0 < w.BarrierCost() {
		t.Errorf("checkpoint cost %v below the quiesce floor %v", t0, w.BarrierCost())
	}
	for r := 1; r < 4; r++ {
		if w.cl.Clock(r) != t0 {
			t.Errorf("rank %d clock %v != rank 0 clock %v after checkpoint", r, w.cl.Clock(r), t0)
		}
	}
	var ckpts int
	for _, ev := range rec.Events() {
		if ev.Op == trace.OpCheckpoint {
			ckpts++
			if ev.Transport != interconnect.TransportCkpt {
				t.Errorf("checkpoint event on transport %v, want ckpt", ev.Transport)
			}
			if ev.Bytes != 0 {
				t.Errorf("checkpoint event accounts %d bytes, want 0", ev.Bytes)
			}
		}
	}
	if ckpts != 4 {
		t.Errorf("recorded %d checkpoint events, want 4", ckpts)
	}
}

// TestShrunkenBcastDegrades: on a communicator smaller than the
// machine, broadcast must take the software p2p tree — the hardware
// bus membership no longer matches — even with no faults injected.
func TestShrunkenBcastDegrades(t *testing.T) {
	w, rec, errs := runFaultWorld(t, 4, "", func(p *Proc) error {
		return nil
	})
	_ = errs
	w.Shutdown()
	nw := NewWorldOver(w.Cluster(), []int{0, 2, 3})
	defer nw.Shutdown()
	done := make(chan struct{})
	for r := 0; r < 3; r++ {
		go func(rank int) {
			defer func() { done <- struct{}{} }()
			p := nw.Rank(rank)
			var in []float64
			if rank == 0 {
				in = []float64{7, 8}
			}
			out := p.Bcast(0, in)
			if len(out) != 2 || out[0] != 7 {
				t.Errorf("rank %d: bcast payload %v", rank, out)
			}
		}(r)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
	for _, ev := range rec.Events() {
		if ev.Op == trace.OpBcast && ev.Transport == interconnect.TransportBcast {
			t.Errorf("shrunken-world bcast used the hardware bus: %+v", ev)
		}
	}
}

// TestBcastLinkdownDetection: the virtual bus is built from the mesh
// links, so a link outage stalls a broadcast until the link recovers —
// and with a per-operation deadline injected, a broadcast stalled past
// it fails with ErrTimeout whose Time is the virtual time of detection
// (entry + deadline), never the post-stall clock.
func TestBcastLinkdownDetection(t *testing.T) {
	shrinkWatchdog(t)
	// No deadline: the outage is charged as a stall.
	w, _, errs := runFaultWorld(t, 2, "seed=0,linkdown=0-1@0ns+2ms", func(p *Proc) error {
		out, err := p.BcastE(0, []float64{7})
		if err == nil && (len(out) != 1 || out[0] != 7) {
			t.Errorf("rank %d: payload %v", p.Rank(), out)
		}
		return err
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if got := w.cl.Clock(0); got < 2*sim.Millisecond {
		t.Errorf("clock %v after stalled broadcast, want at least the outage end 2ms", got)
	}

	// Deadline: the stall pushes the operation past entry+deadline and
	// the error reports exactly that detection time.
	_, _, errs = runFaultWorld(t, 2, "seed=0,linkdown=0-1@0ns+20ms,deadline=1ms", func(p *Proc) error {
		_, err := p.BcastE(0, []float64{7})
		return err
	})
	for r, err := range errs {
		var me *Error
		if !errors.As(err, &me) || me.Kind != ErrTimeout {
			t.Fatalf("rank %d: got %v, want ErrTimeout", r, err)
		}
		if me.Time != sim.Millisecond {
			t.Errorf("rank %d: Time = %v, want the detection time %v", r, me.Time, sim.Millisecond)
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
