package mpi

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// runFaultWorld is runWorld with a fault spec and a recorder attached.
// body returns the rank's error (nil on success); an erroring rank is
// departed so peers observe the failure instead of deadlocking.
func runFaultWorld(t *testing.T, n int, spec string, body func(p *Proc) error) (*World, *trace.Recorder, []error) {
	t.Helper()
	params := cluster.DefaultParams()
	if n > 4 {
		params.MeshWidth, params.MeshHeight = 4, 4
	}
	if spec != "" {
		inj, err := fault.FromString(spec)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		params.Faults = inj
	}
	cl, err := cluster.New(n, params)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	cl.SetRecorder(rec)
	w := NewWorld(cl)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(w.Rank(rank))
			if errs[rank] != nil {
				w.Depart(rank)
			}
		}(r)
	}
	wg.Wait()
	w.Shutdown()
	return w, rec, errs
}

// faultWorkload runs every transfer path — two-sided ring exchange,
// one-sided put/get with a fence, broadcast, allreduce — and returns
// every payload the rank received, concatenated in program order.
func faultWorkload(p *Proc) []float64 {
	n, r := p.Size(), p.Rank()
	var got []float64
	local := make([]float64, 256)
	win := p.WinCreate("fw", local)
	for round := 0; round < 3; round++ {
		// Ring exchange with round-varying payload sizes.
		msg := make([]float64, 17+round*31+r)
		for i := range msg {
			msg[i] = float64(r*1000 + round*100 + i)
		}
		got = append(got, p.Sendrecv((r+1)%n, round, msg, (r+n-1)%n, round)...)
		// One-sided: put into the right neighbor, fence, read it back.
		put := make([]float64, 23+round*7)
		for i := range put {
			put[i] = float64(r) + float64(i)/64
		}
		p.Put(win, (r+1)%n, 0, put)
		p.Fence(win)
		back := make([]float64, len(put))
		p.Get(win, (r+1)%n, 0, back)
		got = append(got, back...)
		// Collectives: root rotates; bcast exercises the V-Bus path
		// (and its degradation under busfail specs).
		b := p.Bcast(round%n, []float64{float64(round), float64(r), 3.5})
		got = append(got, b...)
		got = append(got, p.Allreduce(Sum, []float64{float64(r + round)})...)
	}
	p.Barrier()
	return got
}

// faultSpecs is the schedule zoo the delivery property runs under:
// drops, corruption, bus-acquisition failures (forcing p2p tree
// degradation) and a link outage, alone and combined.
var faultSpecs = []string{
	"seed=7,flitdrop=2e-2",
	"seed=9,corrupt=3e-2",
	"seed=11,flitdrop=5e-2,corrupt=1e-2,mtu=512,window=2",
	"seed=13,busfail=0.9,bustimeout=20us",
	"seed=15,flitdrop=1e-2,linkdown=0-1@0ns+50us",
}

// TestFaultDeliveryByteIdentical is the delivery property: under any
// fault schedule the reliability layer must hand every rank payloads
// byte-identical to a fault-free run — faults may only cost time.
func TestFaultDeliveryByteIdentical(t *testing.T) {
	const n = 4
	collect := func(spec string) ([][]float64, *World) {
		payloads := make([][]float64, n)
		w, _, errs := runFaultWorld(t, n, spec, func(p *Proc) error {
			payloads[p.Rank()] = faultWorkload(p)
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("spec %q rank %d: %v", spec, r, err)
			}
		}
		return payloads, w
	}
	clean, cw := collect("")
	for _, spec := range faultSpecs {
		faulty, fw := collect(spec)
		for r := 0; r < n; r++ {
			if len(faulty[r]) != len(clean[r]) {
				t.Fatalf("spec %q rank %d: got %d words, clean run got %d",
					spec, r, len(faulty[r]), len(clean[r]))
			}
			for i := range clean[r] {
				if math.Float64bits(faulty[r][i]) != math.Float64bits(clean[r][i]) {
					t.Fatalf("spec %q rank %d word %d: got %v (bits %#x), want %v (bits %#x)",
						spec, r, i, faulty[r][i], math.Float64bits(faulty[r][i]),
						clean[r][i], math.Float64bits(clean[r][i]))
				}
			}
			// Faults never make a rank finish earlier than the clean run.
			if fc, cc := fw.cl.Clock(r), cw.cl.Clock(r); fc < cc {
				t.Errorf("spec %q rank %d: faulty clock %v < clean clock %v", spec, r, fc, cc)
			}
		}
	}
}

// TestFaultClocksMonotone is the timeline property: per-rank trace
// intervals are well-formed (End >= Begin) and never overlap — each
// rank's virtual clock only moves forward — under every fault spec.
func TestFaultClocksMonotone(t *testing.T) {
	for _, spec := range faultSpecs {
		_, rec, errs := runFaultWorld(t, 4, spec, func(p *Proc) error {
			faultWorkload(p)
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("spec %q rank %d: %v", spec, r, err)
			}
		}
		retries := 0
		lastEnd := map[int]sim.Time{}
		for _, ev := range rec.Events() {
			if ev.End < ev.Begin {
				t.Fatalf("spec %q: event %+v runs backwards", spec, ev)
			}
			if ev.Begin < lastEnd[ev.Rank] {
				t.Fatalf("spec %q rank %d: event %q begins at %v before previous end %v",
					spec, ev.Rank, ev.Op, ev.Begin, lastEnd[ev.Rank])
			}
			lastEnd[ev.Rank] = ev.End
			if ev.Op == trace.OpRetry {
				retries++
				if ev.Bytes != 0 {
					t.Errorf("spec %q: retry interval accounts %d bytes, want 0", spec, ev.Bytes)
				}
			}
		}
		if retries == 0 && spec == faultSpecs[0] {
			t.Errorf("spec %q injected no retransmissions; property is vacuous", spec)
		}
	}
}

// TestFaultTimelineReplayable: the same seed and spec produce an
// identical event timeline across runs — the injector is a pure
// function of the spec and the deterministic packet sequence numbers.
func TestFaultTimelineReplayable(t *testing.T) {
	run := func() []trace.Event {
		_, rec, _ := runFaultWorld(t, 4, faultSpecs[2], func(p *Proc) error {
			faultWorkload(p)
			return nil
		})
		return rec.Events()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i < len(b) && !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("timelines diverge at event %d:\n  run A: %+v\n  run B: %+v", i, a[i], b[i])
			}
		}
		t.Fatalf("timelines differ in length: %d vs %d events", len(a), len(b))
	}
}

// TestFaultCostMonotoneInDropRate: same seed, rising drop rate — a
// rank's completion clock never decreases, because the injector's
// uniform-threshold decision makes every lower-rate drop a subset of
// the higher-rate drops.
func TestFaultCostMonotoneInDropRate(t *testing.T) {
	rates := []string{"", "seed=21,flitdrop=1e-3", "seed=21,flitdrop=1e-2", "seed=21,flitdrop=8e-2"}
	var prev sim.Time
	for _, spec := range rates {
		w, _, errs := runFaultWorld(t, 4, spec, func(p *Proc) error {
			faultWorkload(p)
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("spec %q rank %d: %v", spec, r, err)
			}
		}
		var last sim.Time
		for r := 0; r < 4; r++ {
			if c := w.cl.Clock(r); c > last {
				last = c
			}
		}
		if last < prev {
			t.Fatalf("spec %q: completion %v earlier than lower drop rate's %v", spec, last, prev)
		}
		prev = last
	}
}

// shrinkWatchdog makes the wall-clock escape hatch fast for tests that
// deliberately block forever.
func shrinkWatchdog(t *testing.T) {
	t.Helper()
	old := WatchdogWall
	WatchdogWall = 300 * time.Millisecond
	t.Cleanup(func() { WatchdogWall = old })
}

// TestRecvDeadlineTimeout: a receive whose sender never shows up fails
// with a structured timeout instead of deadlocking, and the Error
// carries the deterministic virtual deadline.
func TestRecvDeadlineTimeout(t *testing.T) {
	shrinkWatchdog(t)
	_, _, errs := runFaultWorld(t, 2, "deadline=1ms", func(p *Proc) error {
		if p.Rank() == 1 {
			_, err := p.RecvE(0, 5)
			return err
		}
		return nil // rank 0 never sends
	})
	var me *Error
	if !errors.As(errs[1], &me) {
		t.Fatalf("rank 1: got %v, want *mpi.Error", errs[1])
	}
	if me.Kind != ErrTimeout || me.Rank != 1 || me.Op != trace.OpRecv || me.Peer != 0 {
		t.Errorf("timeout error fields = %+v", me)
	}
	if me.Time != sim.Millisecond {
		t.Errorf("timeout at %v, want the deterministic deadline %v", me.Time, sim.Millisecond)
	}
}

// TestCrashSurfacesStructuredErrors: a crashed rank fails its own next
// operation with ErrCrashed, and a peer blocked on it gets
// ErrPeerCrashed rather than hanging.
func TestCrashSurfacesStructuredErrors(t *testing.T) {
	shrinkWatchdog(t)
	_, _, errs := runFaultWorld(t, 2, "crash=0@1us", func(p *Proc) error {
		if p.Rank() == 0 {
			p.w.cl.ChargeCompute(0, 5*sim.Microsecond) // sail past the crash time
			return p.SendE(1, 3, []float64{1})
		}
		_, err := p.RecvE(0, 3)
		return err
	})
	var crashed *Error
	if !errors.As(errs[0], &crashed) || crashed.Kind != ErrCrashed {
		t.Fatalf("rank 0: got %v, want ErrCrashed", errs[0])
	}
	if crashed.Time != sim.Microsecond {
		t.Errorf("crash reported at %v, want the injected %v", crashed.Time, sim.Microsecond)
	}
	var peer *Error
	if !errors.As(errs[1], &peer) || peer.Kind != ErrPeerCrashed {
		t.Fatalf("rank 1: got %v, want ErrPeerCrashed", errs[1])
	}
	if peer.Peer != 0 {
		t.Errorf("peer-crashed error blames rank %d, want 0", peer.Peer)
	}
}

// TestBcastDegradesToSoftwareTree: with bus acquisition guaranteed to
// fail, broadcast still delivers (over the p2p tree) and costs more
// than the clean hardware broadcast.
func TestBcastDegradesToSoftwareTree(t *testing.T) {
	elapsed := func(spec string) sim.Time {
		w, _, errs := runFaultWorld(t, 4, spec, func(p *Proc) error {
			got := p.Bcast(0, []float64{4, 5, 6})
			if len(got) != 3 || got[0] != 4 || got[2] != 6 {
				t.Errorf("rank %d: bcast payload %v", p.Rank(), got)
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		var last sim.Time
		for r := 0; r < 4; r++ {
			if c := w.cl.Clock(r); c > last {
				last = c
			}
		}
		return last
	}
	clean := elapsed("")
	degraded := elapsed("seed=1,busfail=1,bustimeout=50us")
	// Three failed acquisitions plus the tree: at least the timeouts.
	if degraded < clean+3*50*sim.Microsecond {
		t.Errorf("degraded bcast finished at %v, want >= clean %v + 3 bus timeouts", degraded, clean)
	}
}
