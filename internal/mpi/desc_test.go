package mpi

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/trace"
)

// seq fills a buffer with a distinct deterministic ramp so payload
// mixups are visible in comparisons.
func seq(n int, base float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = base + float64(i)
	}
	return out
}

// descRun captures everything observable about one equivalence run:
// the values the origin read back and the target window's final state.
type descRun struct {
	mu     sync.Mutex
	reads  [][]float64
	window []float64
}

func (r *descRun) record(dst []float64) {
	r.mu.Lock()
	r.reads = append(r.reads, append([]float64(nil), dst...))
	r.mu.Unlock()
}

// The legacy names must be pure sugar over the descriptor core: the
// same logical workload issued through Put/PutStrided/Get/GetStrided/
// ChargePutContig/ChargePutStrided and through PutD/GetD/ChargePutD
// produces identical trace event lists (ops, peers, bytes, payloads,
// transports, begin/end times), identical final clocks and identical
// window contents on every fabric.
func TestDescEquivalenceWithLegacyWrappers(t *testing.T) {
	legacy := func(obs *descRun) func(p *Proc) {
		return func(p *Proc) {
			win := p.WinCreate("eq", make([]float64, 256))
			if p.Rank() == 0 {
				p.Put(win, 1, 3, seq(8, 100))
				p.PutStrided(win, 1, 1, 5, seq(7, 200))
				got := make([]float64, 6)
				p.Get(win, 1, 2, got)
				obs.record(got)
				gs := make([]float64, 5)
				p.GetStrided(win, 1, 4, 3, gs)
				obs.record(gs)
				p.Accumulate(win, 1, 10, seq(4, 300))
				p.ChargePutContig(1, 100)
				p.ChargePutStrided(1, 40)
				// Rank-local traffic goes through the same wrappers.
				p.Put(win, 0, 0, seq(4, 400))
				p.PutStrided(win, 0, 2, 7, seq(3, 500))
			}
			p.Fence(win)
			if p.Rank() == 1 {
				obs.mu.Lock()
				obs.window = append([]float64(nil), win.target(1)...)
				obs.mu.Unlock()
			}
		}
	}
	desc := func(obs *descRun) func(p *Proc) {
		return func(p *Proc) {
			win := p.WinCreate("eq", make([]float64, 256))
			if p.Rank() == 0 {
				p.PutD(win, 1, ContigDesc(3, 8), seq(8, 100))
				p.PutD(win, 1, StridedDesc(1, 7, 5), seq(7, 200))
				got := make([]float64, 6)
				p.GetD(win, 1, ContigDesc(2, 6), got)
				obs.record(got)
				gs := make([]float64, 5)
				p.GetD(win, 1, StridedDesc(4, 5, 3), gs)
				obs.record(gs)
				p.Accumulate(win, 1, 10, seq(4, 300))
				p.ChargePutD(1, ContigDesc(0, 100))
				// ChargePutStrided's synthetic descriptor: the strided cost
				// does not depend on the stride value, only on elems.
				p.ChargePutD(1, AccessDesc{Elems: 40, Stride: 2})
				p.PutD(win, 0, ContigDesc(0, 4), seq(4, 400))
				p.PutD(win, 0, StridedDesc(2, 3, 7), seq(3, 500))
			}
			p.Fence(win)
			if p.Rank() == 1 {
				obs.mu.Lock()
				obs.window = append([]float64(nil), win.target(1)...)
				obs.mu.Unlock()
			}
		}
	}
	for _, fabric := range []string{"vbus", "ethernet", "ideal"} {
		t.Run(fabric, func(t *testing.T) {
			var obsL, obsD descRun
			recL, clL := runTraced(t, 2, fabric, legacy(&obsL))
			recD, clD := runTraced(t, 2, fabric, desc(&obsD))
			evL, evD := recL.Events(), recD.Events()
			if len(evL) != len(evD) {
				t.Fatalf("event counts differ: legacy %d, descriptor %d", len(evL), len(evD))
			}
			for i := range evL {
				if evL[i] != evD[i] {
					t.Fatalf("event %d differs:\n  legacy     %+v\n  descriptor %+v", i, evL[i], evD[i])
				}
			}
			for r := 0; r < 2; r++ {
				if clL.Clock(r) != clD.Clock(r) {
					t.Errorf("rank %d clock differs: legacy %v, descriptor %v", r, clL.Clock(r), clD.Clock(r))
				}
			}
			if len(obsL.reads) != len(obsD.reads) {
				t.Fatalf("read counts differ: %d vs %d", len(obsL.reads), len(obsD.reads))
			}
			for i := range obsL.reads {
				for j := range obsL.reads[i] {
					if obsL.reads[i][j] != obsD.reads[i][j] {
						t.Errorf("read %d element %d differs: %v vs %v",
							i, j, obsL.reads[i][j], obsD.reads[i][j])
					}
				}
			}
			for i := range obsL.window {
				if obsL.window[i] != obsD.window[i] {
					t.Errorf("window element %d differs: %v vs %v", i, obsL.window[i], obsD.window[i])
				}
			}
		})
	}
}

// mustPanic runs fn and asserts it panics with a message containing
// want. Safe to call from rank goroutines (t.Errorf only).
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic, want one mentioning %q", want)
			return
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Errorf("panic %q does not mention %q", msg, want)
		}
	}()
	fn()
}

// The descriptor core is the single validation site: direct PutD/GetD/
// ChargePutD calls panic with PutD-named messages, while the legacy
// wrappers keep their historical message formats (the entry-point name
// is threaded through). The charge-only path validates stride and
// element count exactly like the data-moving paths — the bounds-check
// asymmetry the redesign removed — but skips window bounds (it has no
// window).
func TestDescValidationPanics(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		win := p.WinCreate("w", make([]float64, 64))
		if p.Rank() == 0 {
			// Descriptor API, PutD/GetD-named messages.
			mustPanic(t, "mpi: PutD stride 0 must be positive", func() {
				p.PutD(win, 1, AccessDesc{Elems: 4, Stride: 0}, seq(4, 0))
			})
			mustPanic(t, "mpi: PutD element count -1 must be non-negative", func() {
				p.PutD(win, 1, AccessDesc{Elems: -1, Stride: 1}, nil)
			})
			mustPanic(t, "mpi: PutD buffer has 3 elements, descriptor wants 4", func() {
				p.PutD(win, 1, ContigDesc(0, 4), seq(3, 0))
			})
			mustPanic(t, `mpi: PutD "w" rank 1 [60,70) outside window size 64`, func() {
				p.PutD(win, 1, ContigDesc(60, 10), seq(10, 0))
			})
			mustPanic(t, `mpi: GetD "w" rank 1 last index 64 outside window size 64`, func() {
				p.GetD(win, 1, StridedDesc(0, 5, 16), make([]float64, 5))
			})
			// Legacy wrappers keep their historical entry-point names.
			mustPanic(t, `mpi: Put "w" rank 1 [62,66) outside window size 64`, func() {
				p.Put(win, 1, 62, seq(4, 0))
			})
			mustPanic(t, "mpi: PutStrided stride 0 must be positive", func() {
				p.PutStrided(win, 1, 0, 0, seq(4, 0))
			})
			mustPanic(t, `mpi: GetStrided "w" rank 1 last index 99 outside window size 64`, func() {
				p.GetStrided(win, 1, 0, 33, make([]float64, 4))
			})
			// Charge-only paths validate shape too (no window to bound).
			mustPanic(t, "mpi: ChargePutD stride -2 must be positive", func() {
				p.ChargePutD(1, AccessDesc{Elems: 8, Stride: -2})
			})
			mustPanic(t, "mpi: ChargePutD element count -5 must be non-negative", func() {
				p.ChargePutD(1, AccessDesc{Elems: -5, Stride: 1})
			})
			// A panicked call charges nothing and moves nothing.
			if got := p.w.cl.Snapshot().CommBytes[0]; got != 0 {
				t.Errorf("validation panics charged %d bytes", got)
			}
		}
		p.Fence(win)
	})
}

// A remote packed descriptor travels the pack transport under the
// put.p/get.p ops, costs exactly the pack model's PackedTime, beats
// the PIO path it replaces, and still reconciles traced bytes with the
// cluster accounting. A rank-local packed descriptor involves no NIC:
// it stays a plain local strided copy.
func TestDescPackedClassificationAndCost(t *testing.T) {
	const elems = 100
	var window []float64
	var mu sync.Mutex
	rec, cl := runTraced(t, 2, "vbus", func(p *Proc) {
		win := p.WinCreate("pk", make([]float64, 512))
		if p.Rank() == 0 {
			d := StridedDesc(0, elems, 3)
			d.Packed = true
			p.PutD(win, 1, d, seq(elems, 1000))
			g := StridedDesc(1, 40, 2)
			g.Packed = true
			p.GetD(win, 1, g, make([]float64, 40))
			l := StridedDesc(0, 20, 2)
			l.Packed = true
			p.PutD(win, 0, l, seq(20, 2000))
		}
		p.Fence(win)
		if p.Rank() == 1 {
			mu.Lock()
			window = append([]float64(nil), win.target(1)...)
			mu.Unlock()
		}
	})
	params := cl.Params()
	pm := nic.PackModelFor(params)
	hops := params.Hops(0, 1)
	var sawPutPacked, sawGetPacked, sawLocal bool
	for _, e := range rec.Events() {
		switch {
		case e.Op == trace.OpPutPacked:
			sawPutPacked = true
			if e.Transport != interconnect.TransportPack {
				t.Errorf("put.p on transport %v, want pack", e.Transport)
			}
			if e.Bytes != elems*WordBytes {
				t.Errorf("put.p carried %d bytes, want %d", e.Bytes, elems*WordBytes)
			}
			if got, want := e.Duration(), pm.PackedTime(elems, WordBytes, hops); got != want {
				t.Errorf("put.p cost %v, want PackedTime %v", got, want)
			}
			if pio := pm.PIOTime(elems, WordBytes, hops); e.Duration() >= pio {
				t.Errorf("packed cost %v not below the PIO cost %v it replaces", e.Duration(), pio)
			}
		case e.Op == trace.OpGetPacked:
			sawGetPacked = true
			if e.Transport != interconnect.TransportPack {
				t.Errorf("get.p on transport %v, want pack", e.Transport)
			}
		case e.Op == trace.OpPutStrided && e.Transport == interconnect.TransportLocal:
			sawLocal = true
		case e.Transport == interconnect.TransportPack:
			t.Errorf("pack transport carries op %q", e.Op)
		}
	}
	if !sawPutPacked || !sawGetPacked {
		t.Fatalf("packed ops missing from trace: put.p=%v get.p=%v", sawPutPacked, sawGetPacked)
	}
	if !sawLocal {
		t.Error("rank-local packed put was not demoted to a local strided copy")
	}
	for i := 0; i < elems; i++ {
		if got, want := window[3*i], 1000.0+float64(i); got != want {
			t.Fatalf("window[%d] = %v, want %v (packed payload corrupted)", 3*i, got, want)
		}
	}
	checkTraceInvariants(t, rec, cl)
}

// Packing is a transport decision, not a semantic one: the same strided
// workload with and without Packed lands identical window contents,
// and past the crossover the packed run's origin clock is strictly
// earlier.
func TestDescPackedPayloadEquivalence(t *testing.T) {
	const elems = 128 // past the vbus crossover
	run := func(packed bool) ([]float64, *descRun) {
		var obs descRun
		_, cl := runTraced(t, 2, "vbus", func(p *Proc) {
			win := p.WinCreate("pe", make([]float64, 4*elems))
			if p.Rank() == 0 {
				d := StridedDesc(2, elems, 4)
				d.Packed = packed
				p.PutD(win, 1, d, seq(elems, 7))
			}
			p.Fence(win)
			if p.Rank() == 1 {
				obs.mu.Lock()
				obs.window = append([]float64(nil), win.target(1)...)
				obs.mu.Unlock()
			}
		})
		return []float64{float64(cl.Clock(0))}, &obs
	}
	clkPIO, pio := run(false)
	clkPacked, packed := run(true)
	for i := range pio.window {
		if pio.window[i] != packed.window[i] {
			t.Fatalf("window element %d differs: PIO %v, packed %v", i, pio.window[i], packed.window[i])
		}
	}
	if clkPacked[0] >= clkPIO[0] {
		t.Errorf("packed origin clock %v not below PIO clock %v at %d elems", clkPacked[0], clkPIO[0], elems)
	}
}
