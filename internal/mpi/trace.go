package mpi

import (
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// Tracing glue: every MPI operation brackets its body with
// traceBegin/traceEnd, recording one interval [clock-at-entry,
// clock-at-exit] on the calling rank's virtual timeline. Instrumented
// operations never nest (Fence records through the shared barrier
// body, Sendrecv through its Send and Recv halves), so the intervals
// of one rank never overlap — the invariant the trace property tests
// pin. With no recorder attached the cost is one nil check; the extra
// Clock() reads are skipped entirely.

// traceBegin returns the cluster's recorder and the calling rank's
// clock. A nil recorder means tracing is off (and the clock is not
// read).
func (p *Proc) traceBegin() (*trace.Recorder, sim.Time) {
	rec := p.w.cl.Recorder()
	if rec == nil {
		return nil, 0
	}
	return rec, p.w.cl.Clock(p.node())
}

// traceEnd records the interval from begin to the rank's current
// clock. bytes must be exactly what the operation charged through
// cluster.ChargeComm/BookComm, so traced totals reconcile with the
// cluster's interconnect-priced accounting; payload is the logical
// payload size (they differ for collectives, which account no bytes).
func (p *Proc) traceEnd(rec *trace.Recorder, begin sim.Time, op string, peer int, bytes, payload int64, tr interconnect.Transport) {
	if rec == nil {
		return
	}
	// Events are keyed by physical node, not communicator rank, so a
	// timeline stays coherent across communicator shrinks (on the
	// all-nodes world the two are identical).
	rec.Add(trace.Event{
		Rank:      p.node(),
		Op:        op,
		Peer:      p.w.nodeOf(peer),
		Bytes:     bytes,
		Payload:   payload,
		Transport: tr,
		Begin:     begin,
		End:       p.w.cl.Clock(p.node()),
	})
}
