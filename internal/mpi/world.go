// Package mpi implements the MPI-2 subset the paper's environment
// provides on the V-Bus PC-cluster: the traditional two-sided
// SEND/RECEIVE of MPI-1 plus the MPI-2 one-sided extensions — memory
// windows, MPI_PUT/MPI_GET in contiguous (DMA) and strided (programmed
// I/O) flavors, fences, locks — and collectives that exploit the V-Bus
// hardware broadcast.
//
// Each MPI process is a goroutine holding a *Proc handle. Data really
// moves between Go buffers; time is virtual: every operation charges
// the calling rank's clock in the underlying cluster.Cluster with its
// pluggable interconnect cost model (internal/interconnect) — the same
// interface the compiler's static estimator prices against, so runtime
// and compile-time comm costs agree backend by backend — and
// synchronizing operations (barrier, fence,
// collectives) reconcile the clocks. Charging the full transfer time to
// the origin rank makes the fence-time reconciliation sound: data
// always lands at or before the origin's post-call clock.
//
// The element type of all buffers is float64 — the machine word of the
// Fortran system built on top (REAL and INTEGER values both travel as
// 8-byte words, as the compiler's code generator emits them).
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// WordBytes is the wire size of one element.
const WordBytes = 8

// World is a communicator spanning every process of the cluster (the
// analogue of MPI_COMM_WORLD).
type World struct {
	cl *cluster.Cluster
	n  int
	// nodes maps communicator rank → physical cluster node. The world
	// spanning every node is the identity mapping; a communicator
	// shrunk after a crash (NewWorldOver) re-ranks the survivors
	// contiguously while clocks, fault schedules and traces stay keyed
	// to the physical node.
	nodes []int

	mu   sync.Mutex
	cond *sync.Cond

	// Collective rendezvous state (one collective in flight at a time,
	// as MPI ordering rules require).
	arrived int
	gen     uint64
	maxT    sim.Time
	slots   map[uint64]*collSlot

	// Window registry (windows are created collectively by name).
	wins map[string]*Win

	// Two-sided mailboxes.
	boxes map[mbKey][]*pendingSend

	barrierCost sim.Time

	// Fault-injection state (see faults.go). inj is nil on a clean
	// machine; the remaining fields are then never touched on hot paths.
	inj *fault.Injector
	// pktSeq hands out per-(src,dst) packet sequence numbers, flattened
	// [src*n+dst]. Each element is written only by src's goroutine.
	pktSeq []int
	// bcastSeq numbers broadcasts deterministically (guarded by mu: it
	// is only consumed inside collective finish closures).
	bcastSeq int
	// down marks crashed or departed ranks (guarded by mu).
	down  []bool
	nDown int
	// crashed marks the subset of down ranks that actually failed (as
	// opposed to departing collaterally after a peer's failure). The
	// recovery protocol's Agree round excludes only these.
	crashed []bool
	// revoked poisons the communicator (ULFM MPI_Comm_revoke): every
	// subsequent or blocked operation fails with ErrRevoked so all
	// ranks reach the recovery path instead of deadlocking.
	revoked bool
	// watchStop stops the deadline watchdog goroutine.
	watchStop chan struct{}

	// cancelled flags an external run abort (World.Cancel): every
	// subsequent or blocked operation fails with ErrCancelled. The flag
	// is an atomic so the per-operation entry check stays lock-free;
	// cancelCh is closed alongside it so channel-based waits (window
	// lock acquisition) can select on cancellation.
	cancelled atomic.Bool
	cancelCh  chan struct{}

	// sched, when non-nil, is notified whenever a rank blocks inside
	// the runtime (SetScheduler). Nil — the default — keeps every
	// blocking operation exactly as before.
	sched Scheduler
}

// Scheduler lets the rank-execution layer above multiplex many ranks
// over a bounded set of worker goroutine slots: a rank about to block
// inside the runtime (receive wait, collective rendezvous, lock
// acquisition) Parks — releasing its slot so a runnable rank can use
// the goroutine budget — and Unparks once the wait is over, which may
// block until a slot frees up again.
//
// Contract: Park may be called with runtime-internal locks held and
// must never block; Unpark is always called with no runtime locks held
// and may block. Both are keyed by the rank's physical cluster node,
// which stays stable across communicator shrinks. The scheduler only
// affects which goroutines run when — it adds no virtual-time charges,
// so results are bit-identical with and without one.
type Scheduler interface {
	Park(node int)
	Unpark(node int)
}

// SetScheduler attaches the blocked-rank scheduler. It must be called
// before the world's rank goroutines start issuing operations; nil
// detaches.
func (w *World) SetScheduler(s Scheduler) { w.sched = s }

// NewWorld creates the communicator for all ranks of c.
func NewWorld(c *cluster.Cluster) *World {
	nodes := make([]int, c.N())
	for i := range nodes {
		nodes[i] = i
	}
	return newWorld(c, nodes)
}

// NewWorldOver creates a communicator over a subset of c's nodes:
// rank i of the new world runs on physical node nodes[i]. The
// recovery protocol uses it to shrink the world to the survivors of a
// crash with contiguous re-ranked ids (ULFM MPI_Comm_shrink).
func NewWorldOver(c *cluster.Cluster, nodes []int) *World {
	if len(nodes) == 0 {
		panic("mpi: NewWorldOver needs at least one node")
	}
	for _, nd := range nodes {
		if nd < 0 || nd >= c.N() {
			panic(fmt.Sprintf("mpi: NewWorldOver node %d out of range [0,%d)", nd, c.N()))
		}
	}
	return newWorld(c, append([]int(nil), nodes...))
}

func newWorld(c *cluster.Cluster, nodes []int) *World {
	n := len(nodes)
	w := &World{
		cl:       c,
		n:        n,
		nodes:    nodes,
		slots:    make(map[uint64]*collSlot),
		wins:     make(map[string]*Win),
		boxes:    make(map[mbKey][]*pendingSend),
		inj:      c.Faults(),
		pktSeq:   make([]int, n*n),
		down:     make([]bool, n),
		crashed:  make([]bool, n),
		cancelCh: make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	if w.inj.Deadline() > 0 {
		w.startWatchdog()
	}
	// Barrier = gather over log2(n) p2p stages + V-Bus release
	// broadcast. Precomputed once; charged at every barrier/fence.
	card := c.Fabric()
	stages := 0
	for p := 1; p < w.n; p *= 2 {
		stages++
	}
	w.barrierCost = sim.Time(stages)*(card.SendSetup()+card.ContigTime(WordBytes, 1)) +
		card.BroadcastTime(WordBytes, w.n)
	// Even a single-process barrier is a library call.
	if floor := c.Params().CPU.CallOverhead; w.barrierCost < floor {
		w.barrierCost = floor
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.n }

// Nodes returns the physical cluster node of every rank (a copy).
func (w *World) Nodes() []int { return append([]int(nil), w.nodes...) }

// nodeOf maps a communicator rank to its physical cluster node.
// Negative pseudo-ranks (AnySource, "no peer") pass through, as do
// out-of-range ranks: the charge-only helpers may price a transfer to
// a mesh node beyond the communicator (timing-mode estimation).
func (w *World) nodeOf(r int) int {
	if r < 0 || r >= len(w.nodes) {
		return r
	}
	return w.nodes[r]
}

// Cluster exposes the underlying machine model.
func (w *World) Cluster() *cluster.Cluster { return w.cl }

// BarrierCost reports the charged cost of one barrier.
func (w *World) BarrierCost() sim.Time { return w.barrierCost }

// Proc is rank-local handle through which a process issues MPI calls.
// A Proc must only be used from its owning goroutine.
type Proc struct {
	w    *World
	rank int
}

// Rank returns a handle for the given rank.
func (w *World) Rank(r int) *Proc {
	if r < 0 || r >= w.n {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, w.n))
	}
	return &Proc{w: w, rank: r}
}

// Rank reports the calling process's rank.
func (p *Proc) Rank() int { return p.rank }

// Size reports the communicator size.
func (p *Proc) Size() int { return p.w.n }

// World returns the communicator.
func (p *Proc) World() *World { return p.w }

// node is the calling rank's physical cluster node.
func (p *Proc) node() int { return p.w.nodes[p.rank] }

// Wtime reports the calling rank's virtual clock (MPI_WTIME).
func (p *Proc) Wtime() sim.Time { return p.w.cl.Clock(p.node()) }

// Barrier blocks until every rank has entered (MPI_BARRIER). On
// release, all clocks advance to the latest arrival plus the barrier's
// communication cost, which is booked as communication on every rank.
func (p *Proc) Barrier() { p.barrier(trace.OpBarrier) }

// BarrierE is Barrier with structured error reporting under fault
// injection: a crashed caller, a crashed peer or an expired deadline
// surfaces as an *Error instead of a deadlock.
func (p *Proc) BarrierE() error {
	if err := p.barrierE(trace.OpBarrier); err != nil {
		return err
	}
	return nil
}

// barrier is the shared barrier body, traced under the caller's op
// name (MPI_BARRIER and MPI_WIN_FENCE synchronize identically but
// profile differently). It panics with the *Error on fault.
func (p *Proc) barrier(op string) {
	if err := p.barrierE(op); err != nil {
		panic(err)
	}
}

func (p *Proc) barrierE(op string) *Error {
	w := p.w
	if err := p.enter(op, -1); err != nil {
		return err
	}
	rec, begin := p.traceBegin()
	_, _, err := w.collectiveE(p.rank, op, nil,
		func(maxT sim.Time, _ [][]float64) (sim.Time, []float64, sim.Time, interconnect.Transport) {
			return maxT + w.barrierCost, nil, w.barrierCost, interconnect.TransportSync
		})
	if err != nil {
		return err
	}
	p.traceEnd(rec, begin, op, -1, 0, 0, interconnect.TransportSync)
	return nil
}

// hops reports mesh distance from this rank's node to target's node.
func (p *Proc) hops(target int) int { return p.w.cl.Hops(p.node(), p.w.nodeOf(target)) }

// localCopyCost is the cost of a rank-local data movement (no NIC):
// call overhead plus a memory copy.
func (p *Proc) localCopyCost(bytes int) sim.Time {
	cpu := p.w.cl.Params().CPU
	return cpu.CallOverhead + sim.Time(bytes)*cpu.MemCopyPerByte
}
