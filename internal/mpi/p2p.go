package mpi

import (
	"fmt"
	"time"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// mbKey identifies one (source, destination, tag) mailbox.
type mbKey struct {
	src, dst, tag int
}

// pendingSend is a message in flight: the payload, the sending rank
// and tag (the tag lets a deadline-expired receiver push the message
// back unconsumed), and the virtual time at which it has fully landed
// at the destination.
type pendingSend struct {
	data    []float64
	src     int
	tag     int
	readyAt sim.Time
}

// AnyTag matches any tag on the receive side (MPI_ANY_TAG).
const AnyTag = -1

// AnySource matches any source rank on the receive side
// (MPI_ANY_SOURCE).
const AnySource = -1

// Send transmits data to rank dst with the given tag (MPI_SEND). The
// payload is copied; the caller may reuse its buffer immediately. The
// sender is charged the full transfer, so the message's arrival time
// never exceeds the sender's post-call clock. Under fault injection a
// failed send panics with the *Error; use SendE for error returns.
func (p *Proc) Send(dst, tag int, data []float64) {
	if err := p.SendE(dst, tag, data); err != nil {
		panic(err)
	}
}

// SendE is Send with structured error reporting under fault injection:
// a crashed caller or a transfer pushed past the deadline by
// retransmissions surfaces as an *Error. On error the message is not
// delivered. Argument validation still panics (a programming error,
// not a fault).
func (p *Proc) SendE(dst, tag int, data []float64) error {
	w := p.w
	if dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("mpi: Send to rank %d out of range [0,%d)", dst, w.n))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: Send tag %d must be non-negative", tag))
	}
	if err := p.enter(trace.OpSend, dst); err != nil {
		return err
	}
	entry := p.entryClock()
	rec, begin := p.traceBegin()
	bytes := len(data) * WordBytes
	tr := interconnect.TransportLocal
	if dst == p.rank {
		w.cl.ChargeComm(p.node(), p.localCopyCost(bytes), bytes)
	} else {
		cost, sendTr := p.sendCost(dst, int64(len(data)))
		tr = sendTr
		w.cl.ChargeComm(p.node(), cost, bytes)
	}
	p.traceEnd(rec, begin, trace.OpSend, dst, int64(bytes), int64(bytes), tr)
	if err := p.chargeReliability(trace.OpSend, dst, bytes, entry); err != nil {
		return err
	}
	p.post(dst, tag, append([]float64(nil), data...))
	return nil
}

// sendCost prices a remote two-sided send of elems words. Classic
// fabrics charge setup + contiguous wire on the p2p transport class,
// exactly as before protocol switching existed. A protocol-switched
// fabric routes the message body through contigCost — the payload is
// an anonymous message buffer (no Region), so its rendezvous path
// always re-registers and never warms the cache.
func (p *Proc) sendCost(dst int, elems int64) (sim.Time, interconnect.Transport) {
	card := p.w.cl.Fabric()
	if _, ok := card.(interconnect.ProtocolModel); ok {
		return p.contigCost(dst, ContigDesc(0, elems))
	}
	bytes := int(elems) * WordBytes
	return card.SendSetup() + card.ContigTime(bytes, p.hops(dst)), interconnect.TransportP2P
}

// post delivers a ready message into dst's mailbox, stamped with the
// sender's current clock (all charges, including retransmissions, are
// already booked).
func (p *Proc) post(dst, tag int, data []float64) {
	w := p.w
	item := &pendingSend{
		data:    data,
		src:     p.rank,
		tag:     tag,
		readyAt: w.cl.Clock(p.node()),
	}
	w.mu.Lock()
	k := mbKey{src: p.rank, dst: dst, tag: tag}
	w.boxes[k] = append(w.boxes[k], item)
	w.cond.Broadcast()
	w.mu.Unlock()
}

// match pops the first pending message matching (src, dst, tag) with
// wildcards. Caller holds w.mu.
func (w *World) match(src, dst, tag int) *pendingSend {
	// Deterministic scan order for wildcards: ascending source, then
	// ascending tag, is enforced by scanning ranks and known keys in
	// order.
	for s := 0; s < w.n; s++ {
		if src != AnySource && s != src {
			continue
		}
		if tag != AnyTag {
			k := mbKey{src: s, dst: dst, tag: tag}
			if q := w.boxes[k]; len(q) > 0 {
				item := q[0]
				w.boxes[k] = q[1:]
				return item
			}
			continue
		}
		// AnyTag: find the lowest tag with a pending message from s.
		best := -1
		for k, q := range w.boxes {
			if k.src != s || k.dst != dst || len(q) == 0 {
				continue
			}
			if best == -1 || k.tag < best {
				best = k.tag
			}
		}
		if best >= 0 {
			k := mbKey{src: s, dst: dst, tag: best}
			q := w.boxes[k]
			item := q[0]
			w.boxes[k] = q[1:]
			return item
		}
	}
	return nil
}

// Recv blocks until a matching message arrives and returns its payload
// (MPI_RECV). src may be AnySource and tag may be AnyTag. The
// receiver's clock advances to the message arrival time if it was
// ahead, plus a fixed receive-side processing charge. Under fault
// injection a failed receive panics with the *Error; use RecvE for
// error returns.
func (p *Proc) Recv(src, tag int) []float64 {
	data, err := p.RecvE(src, tag)
	if err != nil {
		panic(err)
	}
	return data
}

// RecvE is Recv with structured error reporting under fault injection.
// A receive fails with ErrTimeout when no message can land within the
// deadline (the deterministic check compares the matched message's
// virtual arrival time against entry+deadline; an unmatched wait is
// bounded by the wall-clock watchdog), and with ErrPeerCrashed when
// the awaited sender — or, under AnySource, every other rank — is
// down. A message rejected for arriving too late stays queued.
func (p *Proc) RecvE(src, tag int) ([]float64, error) {
	w := p.w
	if src != AnySource && (src < 0 || src >= w.n) {
		panic(fmt.Sprintf("mpi: Recv from rank %d out of range", src))
	}
	if err := p.enter(trace.OpRecv, src); err != nil {
		return nil, err
	}
	node := p.node()
	deadline := w.inj.Deadline()
	var entry sim.Time
	var wallStart time.Time
	if deadline > 0 {
		entry = w.cl.Clock(node)
		wallStart = time.Now()
	}
	rec, begin := p.traceBegin()
	// A rank that has to wait for its sender releases its worker slot
	// (Park, under w.mu: non-blocking by contract) and reclaims one on
	// every exit path — match, deadline push-back, revocation, crashed
	// peer or watchdog — after w.mu is dropped.
	sched := w.sched
	parked := false
	defer func() {
		if parked {
			sched.Unpark(node)
		}
	}()
	w.mu.Lock()
	var item *pendingSend
	for {
		item = w.match(src, p.rank, tag)
		if item != nil {
			if deadline > 0 && item.readyAt > entry+deadline {
				// The message exists but lands after the deadline:
				// deterministic timeout. Push it back unconsumed.
				k := mbKey{src: item.src, dst: p.rank, tag: item.tag}
				w.boxes[k] = append([]*pendingSend{item}, w.boxes[k]...)
				w.mu.Unlock()
				return nil, &Error{Kind: ErrTimeout, Rank: p.rank, Op: trace.OpRecv, Peer: src, Time: entry + deadline}
			}
			break
		}
		if w.revoked {
			w.mu.Unlock()
			return nil, &Error{Kind: ErrRevoked, Rank: p.rank, Op: trace.OpRecv, Peer: src, Time: w.cl.Clock(node)}
		}
		if w.cancelled.Load() {
			w.mu.Unlock()
			return nil, &Error{Kind: ErrCancelled, Rank: p.rank, Op: trace.OpRecv, Peer: src, Time: w.cl.Clock(node)}
		}
		if w.nDown > 0 {
			if src != AnySource && w.down[src] {
				w.mu.Unlock()
				return nil, &Error{Kind: ErrPeerCrashed, Rank: p.rank, Op: trace.OpRecv, Peer: src, Time: w.cl.Clock(node)}
			}
			if src == AnySource && w.othersDown(p.rank) {
				w.mu.Unlock()
				return nil, &Error{Kind: ErrPeerCrashed, Rank: p.rank, Op: trace.OpRecv, Peer: src, Time: w.cl.Clock(node)}
			}
		}
		if deadline > 0 && time.Since(wallStart) > WatchdogWall {
			w.mu.Unlock()
			return nil, &Error{Kind: ErrTimeout, Rank: p.rank, Op: trace.OpRecv, Peer: src, Time: entry + deadline}
		}
		if sched != nil && !parked {
			parked = true
			sched.Park(node)
		}
		w.cond.Wait()
	}
	w.mu.Unlock()

	// Waiting for the sender shows up as communication-stall time.
	before := w.cl.Clock(node)
	w.cl.AdvanceTo(node, item.readyAt)
	stall := w.cl.Clock(node) - before
	cpu := w.cl.Params().CPU
	w.cl.ChargeComm(node, cpu.CallOverhead, 0)
	w.cl.BookComm(node, stall, 0)
	p.traceEnd(rec, begin, trace.OpRecv, item.src, 0, int64(len(item.data)*WordBytes), interconnect.TransportSync)
	return item.data, nil
}

// Sendrecv performs a combined send and receive (MPI_SENDRECV): the
// send is posted first, then the receive blocks, so exchanging
// neighbors cannot deadlock.
func (p *Proc) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) []float64 {
	p.Send(dst, sendTag, data)
	return p.Recv(src, recvTag)
}

// SendRegion is the two-sided transfer of an elems-word region: the
// sender packs the region into a message buffer (a per-word CPU copy —
// the cost one-sided DMA avoids), then transmits. data carries the
// packed payload and may be nil in timing-only runs; elems governs the
// charges either way. Strided regions must be packed by the caller.
func (p *Proc) SendRegion(dst, tag, elems int, data []float64) {
	w := p.w
	if dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("mpi: SendRegion to rank %d out of range", dst))
	}
	if err := p.enter(trace.OpSend, dst); err != nil {
		panic(err)
	}
	entry := p.entryClock()
	rec, begin := p.traceBegin()
	bytes := elems * WordBytes
	cpu := w.cl.Params().CPU
	// Pack: user region → message buffer (booked as communication: it
	// exists only to feed the send).
	w.cl.ChargeComm(p.node(), sim.Time(bytes)*cpu.MemCopyPerByte, 0)
	tr := interconnect.TransportLocal
	if dst == p.rank {
		w.cl.ChargeComm(p.node(), p.localCopyCost(bytes), bytes)
	} else {
		cost, sendTr := p.sendCost(dst, int64(elems))
		tr = sendTr
		w.cl.ChargeComm(p.node(), cost, bytes)
	}
	p.traceEnd(rec, begin, trace.OpSend, dst, int64(bytes), int64(bytes), tr)
	if err := p.chargeReliability(trace.OpSend, dst, bytes, entry); err != nil {
		panic(err)
	}
	payload := make([]float64, 0)
	if data != nil {
		payload = append([]float64(nil), data...)
	}
	p.post(dst, tag, payload)
}

// RecvRegion receives a region sent with SendRegion and charges the
// receiver's unpack copy — the second processor's involvement that
// makes two-sided communication costlier than MPI_PUT/MPI_GET ("two
// processors are needed for MPI_SEND/MPI_RECEIVE"). It returns the
// payload (empty in timing-only runs).
func (p *Proc) RecvRegion(src, tag, elems int) []float64 {
	data := p.Recv(src, tag)
	rec, begin := p.traceBegin()
	cpu := p.w.cl.Params().CPU
	p.w.cl.ChargeComm(p.node(), sim.Time(elems*WordBytes)*cpu.MemCopyPerByte, 0)
	p.traceEnd(rec, begin, trace.OpUnpack, src, 0, int64(elems*WordBytes), interconnect.TransportLocal)
	return data
}
