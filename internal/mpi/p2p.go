package mpi

import (
	"fmt"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// mbKey identifies one (source, destination, tag) mailbox.
type mbKey struct {
	src, dst, tag int
}

// pendingSend is a message in flight: the payload, the sending rank
// (reported to the receiver's trace as its peer even under AnySource
// matching), and the virtual time at which it has fully landed at the
// destination.
type pendingSend struct {
	data    []float64
	src     int
	readyAt sim.Time
}

// AnyTag matches any tag on the receive side (MPI_ANY_TAG).
const AnyTag = -1

// AnySource matches any source rank on the receive side
// (MPI_ANY_SOURCE).
const AnySource = -1

// Send transmits data to rank dst with the given tag (MPI_SEND). The
// payload is copied; the caller may reuse its buffer immediately. The
// sender is charged the full transfer, so the message's arrival time
// never exceeds the sender's post-call clock.
func (p *Proc) Send(dst, tag int, data []float64) {
	w := p.w
	if dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("mpi: Send to rank %d out of range [0,%d)", dst, w.n))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: Send tag %d must be non-negative", tag))
	}
	rec, begin := p.traceBegin()
	bytes := len(data) * WordBytes
	tr := interconnect.TransportLocal
	if dst == p.rank {
		w.cl.ChargeComm(p.rank, p.localCopyCost(bytes), bytes)
	} else {
		card := w.cl.Fabric()
		tr = interconnect.TransportP2P
		w.cl.ChargeComm(p.rank, card.SendSetup()+card.ContigTime(bytes, p.hops(dst)), bytes)
	}
	item := &pendingSend{
		data:    append([]float64(nil), data...),
		src:     p.rank,
		readyAt: w.cl.Clock(p.rank),
	}
	w.mu.Lock()
	k := mbKey{src: p.rank, dst: dst, tag: tag}
	w.boxes[k] = append(w.boxes[k], item)
	w.cond.Broadcast()
	w.mu.Unlock()
	p.traceEnd(rec, begin, trace.OpSend, dst, int64(bytes), int64(bytes), tr)
}

// match pops the first pending message matching (src, dst, tag) with
// wildcards. Caller holds w.mu.
func (w *World) match(src, dst, tag int) *pendingSend {
	// Deterministic scan order for wildcards: ascending source, then
	// ascending tag, is enforced by scanning ranks and known keys in
	// order.
	for s := 0; s < w.n; s++ {
		if src != AnySource && s != src {
			continue
		}
		if tag != AnyTag {
			k := mbKey{src: s, dst: dst, tag: tag}
			if q := w.boxes[k]; len(q) > 0 {
				item := q[0]
				w.boxes[k] = q[1:]
				return item
			}
			continue
		}
		// AnyTag: find the lowest tag with a pending message from s.
		best := -1
		for k, q := range w.boxes {
			if k.src != s || k.dst != dst || len(q) == 0 {
				continue
			}
			if best == -1 || k.tag < best {
				best = k.tag
			}
		}
		if best >= 0 {
			k := mbKey{src: s, dst: dst, tag: best}
			q := w.boxes[k]
			item := q[0]
			w.boxes[k] = q[1:]
			return item
		}
	}
	return nil
}

// Recv blocks until a matching message arrives and returns its payload
// (MPI_RECV). src may be AnySource and tag may be AnyTag. The
// receiver's clock advances to the message arrival time if it was
// ahead, plus a fixed receive-side processing charge.
func (p *Proc) Recv(src, tag int) []float64 {
	w := p.w
	if src != AnySource && (src < 0 || src >= w.n) {
		panic(fmt.Sprintf("mpi: Recv from rank %d out of range", src))
	}
	rec, begin := p.traceBegin()
	w.mu.Lock()
	var item *pendingSend
	for {
		item = w.match(src, p.rank, tag)
		if item != nil {
			break
		}
		w.cond.Wait()
	}
	w.mu.Unlock()

	// Waiting for the sender shows up as communication-stall time.
	before := w.cl.Clock(p.rank)
	w.cl.AdvanceTo(p.rank, item.readyAt)
	stall := w.cl.Clock(p.rank) - before
	cpu := w.cl.Params().CPU
	w.cl.ChargeComm(p.rank, cpu.CallOverhead, 0)
	w.cl.BookComm(p.rank, stall, 0)
	p.traceEnd(rec, begin, trace.OpRecv, item.src, 0, int64(len(item.data)*WordBytes), interconnect.TransportSync)
	return item.data
}

// Sendrecv performs a combined send and receive (MPI_SENDRECV): the
// send is posted first, then the receive blocks, so exchanging
// neighbors cannot deadlock.
func (p *Proc) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) []float64 {
	p.Send(dst, sendTag, data)
	return p.Recv(src, recvTag)
}

// SendRegion is the two-sided transfer of an elems-word region: the
// sender packs the region into a message buffer (a per-word CPU copy —
// the cost one-sided DMA avoids), then transmits. data carries the
// packed payload and may be nil in timing-only runs; elems governs the
// charges either way. Strided regions must be packed by the caller.
func (p *Proc) SendRegion(dst, tag, elems int, data []float64) {
	w := p.w
	if dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("mpi: SendRegion to rank %d out of range", dst))
	}
	rec, begin := p.traceBegin()
	bytes := elems * WordBytes
	cpu := w.cl.Params().CPU
	// Pack: user region → message buffer (booked as communication: it
	// exists only to feed the send).
	w.cl.ChargeComm(p.rank, sim.Time(bytes)*cpu.MemCopyPerByte, 0)
	tr := interconnect.TransportLocal
	if dst == p.rank {
		w.cl.ChargeComm(p.rank, p.localCopyCost(bytes), bytes)
	} else {
		card := w.cl.Fabric()
		tr = interconnect.TransportP2P
		w.cl.ChargeComm(p.rank, card.SendSetup()+card.ContigTime(bytes, p.hops(dst)), bytes)
	}
	item := &pendingSend{src: p.rank, readyAt: w.cl.Clock(p.rank)}
	if data != nil {
		item.data = append([]float64(nil), data...)
	} else {
		item.data = make([]float64, 0)
	}
	w.mu.Lock()
	k := mbKey{src: p.rank, dst: dst, tag: tag}
	w.boxes[k] = append(w.boxes[k], item)
	w.cond.Broadcast()
	w.mu.Unlock()
	p.traceEnd(rec, begin, trace.OpSend, dst, int64(bytes), int64(bytes), tr)
}

// RecvRegion receives a region sent with SendRegion and charges the
// receiver's unpack copy — the second processor's involvement that
// makes two-sided communication costlier than MPI_PUT/MPI_GET ("two
// processors are needed for MPI_SEND/MPI_RECEIVE"). It returns the
// payload (empty in timing-only runs).
func (p *Proc) RecvRegion(src, tag, elems int) []float64 {
	data := p.Recv(src, tag)
	rec, begin := p.traceBegin()
	cpu := p.w.cl.Params().CPU
	p.w.cl.ChargeComm(p.rank, sim.Time(elems*WordBytes)*cpu.MemCopyPerByte, 0)
	p.traceEnd(rec, begin, trace.OpUnpack, src, 0, int64(elems*WordBytes), interconnect.TransportLocal)
	return data
}
