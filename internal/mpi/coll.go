package mpi

import (
	"fmt"
	"math"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// Op is a reduction operator (the MPI_SUM/MPI_MAX/... constants).
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Prod
	Max
	Min
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case Sum:
		return a + b
	case Prod:
		return a * b
	case Max:
		return math.Max(a, b)
	case Min:
		return math.Min(a, b)
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", int(o)))
	}
}

// collSlot carries one in-flight collective's contributions and result
// across the rendezvous generation.
type collSlot struct {
	vals      [][]float64
	result    []float64
	commCost  sim.Time
	remaining int
}

// collective is the shared rendezvous: every rank contributes, the last
// arrival runs finish (which sees all contributions and the latest
// clock) to compute the released clock, the shared result and the
// per-rank comm cost to book. All ranks return the shared result.
func (w *World) collective(rank int, contrib []float64,
	finish func(maxT sim.Time, vals [][]float64) (release sim.Time, result []float64, commCost sim.Time)) []float64 {

	if w.n == 1 {
		release, result, commCost := finish(w.cl.Clock(rank), [][]float64{contrib})
		w.cl.SetAll(release)
		w.cl.BookComm(rank, commCost, 0)
		return result
	}
	w.mu.Lock()
	gen := w.gen
	slot, ok := w.slots[gen]
	if !ok {
		slot = &collSlot{vals: make([][]float64, w.n), remaining: w.n}
		w.slots[gen] = slot
	}
	slot.vals[rank] = contrib
	if t := w.cl.Clock(rank); t > w.maxT {
		w.maxT = t
	}
	w.arrived++
	if w.arrived == w.n {
		release, result, commCost := finish(w.maxT, slot.vals)
		slot.result = result
		slot.commCost = commCost
		w.cl.SetAll(release)
		w.arrived = 0
		w.maxT = 0
		w.gen++
		w.cond.Broadcast()
	} else {
		for gen == w.gen {
			w.cond.Wait()
		}
	}
	res := slot.result
	cost := slot.commCost
	slot.remaining--
	if slot.remaining == 0 {
		delete(w.slots, gen)
	}
	w.mu.Unlock()
	w.cl.BookComm(rank, cost, 0)
	return res
}

// Bcast broadcasts root's data to every rank (MPI_BCAST), using the
// V-Bus hardware broadcast facility of the card: one bus construction,
// one stream, every node listens — rather than a log2(P) software tree.
// Every rank receives its own copy; root's input is not aliased.
func (p *Proc) Bcast(root int, data []float64) []float64 {
	w := p.w
	if root < 0 || root >= w.n {
		panic(fmt.Sprintf("mpi: Bcast root %d out of range", root))
	}
	card := w.cl.Fabric()
	var contrib []float64
	if p.rank == root {
		contrib = data
	}
	rec, begin := p.traceBegin()
	res := w.collective(p.rank, contrib, func(maxT sim.Time, vals [][]float64) (sim.Time, []float64, sim.Time) {
		payload := vals[root]
		cost := card.SendSetup() + card.BroadcastTime(len(payload)*WordBytes, w.n)
		return maxT + cost, append([]float64(nil), payload...), cost
	})
	p.traceEnd(rec, begin, trace.OpBcast, root, 0, int64(len(res)*WordBytes), interconnect.TransportBcast)
	return append([]float64(nil), res...)
}

// reduceCost models a binomial gather tree of vector messages.
func (w *World) reduceCost(elems int) sim.Time {
	card := w.cl.Fabric()
	stages := 0
	for p := 1; p < w.n; p *= 2 {
		stages++
	}
	return sim.Time(stages) * (card.SendSetup() + card.ContigTime(elems*WordBytes, 1))
}

// Reduce combines each rank's vector element-wise with op; the combined
// vector is returned on root, nil elsewhere (MPI_REDUCE).
func (p *Proc) Reduce(op Op, root int, data []float64) []float64 {
	w := p.w
	if root < 0 || root >= w.n {
		panic(fmt.Sprintf("mpi: Reduce root %d out of range", root))
	}
	rec, begin := p.traceBegin()
	res := w.collective(p.rank, data, func(maxT sim.Time, vals [][]float64) (sim.Time, []float64, sim.Time) {
		out := append([]float64(nil), vals[0]...)
		for r := 1; r < w.n; r++ {
			v := vals[r]
			if len(v) != len(out) {
				panic(fmt.Sprintf("mpi: Reduce length mismatch: rank 0 has %d, rank %d has %d", len(out), r, len(v)))
			}
			for i := range out {
				out[i] = op.apply(out[i], v[i])
			}
		}
		cost := w.reduceCost(len(out))
		return maxT + cost, out, cost
	})
	p.traceEnd(rec, begin, trace.OpReduce, root, 0, int64(len(data)*WordBytes), interconnect.TransportP2P)
	if p.rank != root {
		return nil
	}
	return append([]float64(nil), res...)
}

// Allreduce is Reduce followed by a V-Bus broadcast of the result;
// every rank receives the combined vector (MPI_ALLREDUCE).
func (p *Proc) Allreduce(op Op, data []float64) []float64 {
	w := p.w
	card := w.cl.Fabric()
	rec, begin := p.traceBegin()
	res := w.collective(p.rank, data, func(maxT sim.Time, vals [][]float64) (sim.Time, []float64, sim.Time) {
		out := append([]float64(nil), vals[0]...)
		for r := 1; r < w.n; r++ {
			v := vals[r]
			if len(v) != len(out) {
				panic(fmt.Sprintf("mpi: Allreduce length mismatch: rank 0 has %d, rank %d has %d", len(out), r, len(v)))
			}
			for i := range out {
				out[i] = op.apply(out[i], v[i])
			}
		}
		cost := w.reduceCost(len(out)) + card.BroadcastTime(len(out)*WordBytes, w.n)
		return maxT + cost, out, cost
	})
	p.traceEnd(rec, begin, trace.OpAllreduce, -1, 0, int64(len(data)*WordBytes), interconnect.TransportBcast)
	return append([]float64(nil), res...)
}
