package mpi

import (
	"fmt"
	"math"
	"time"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// Op is a reduction operator (the MPI_SUM/MPI_MAX/... constants).
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Prod
	Max
	Min
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case Sum:
		return a + b
	case Prod:
		return a * b
	case Max:
		return math.Max(a, b)
	case Min:
		return math.Min(a, b)
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", int(o)))
	}
}

// collSlot carries one in-flight collective's contributions and result
// across the rendezvous generation.
type collSlot struct {
	vals      [][]float64
	result    []float64
	commCost  sim.Time
	transport interconnect.Transport
	remaining int
}

// collectiveE is the shared rendezvous: every rank contributes, the
// last arrival runs finish (which sees all contributions and the
// latest clock) to compute the released clock, the shared result, the
// per-rank comm cost to book, and the transport class the collective
// actually used (carried through the slot so every rank traces the
// same class — under fault injection a broadcast may degrade from the
// hardware bus to the software tree). All ranks return the shared
// result.
//
// Under fault injection the rendezvous can fail instead of blocking
// forever: a crashed or departed rank fails every waiter with
// ErrPeerCrashed, and with a deadline set, a waiter stuck past the
// wall-clock watchdog fails with ErrTimeout. A failed collective
// poisons the world — the run is over, only error propagation remains.
func (w *World) collectiveE(rank int, op string, contrib []float64,
	finish func(maxT sim.Time, vals [][]float64) (release sim.Time, result []float64, commCost sim.Time, tr interconnect.Transport)) ([]float64, interconnect.Transport, *Error) {

	node := w.nodes[rank]
	if w.n == 1 {
		release, result, commCost, tr := finish(w.cl.Clock(node), [][]float64{contrib})
		w.cl.SetSome(w.nodes, release)
		w.cl.BookComm(node, commCost, 0)
		return result, tr, nil
	}
	deadline := w.inj.Deadline()
	var entry sim.Time
	var wallStart time.Time
	if deadline > 0 {
		entry = w.cl.Clock(node)
		wallStart = time.Now()
	}
	// A waiter releases its worker slot while blocked in the rendezvous
	// (Park under w.mu is non-blocking by contract) and reclaims one on
	// every exit path — release, revocation, crashed peer, watchdog —
	// after w.mu is dropped. The last arrival never parks: it runs
	// finish and returns holding its slot.
	sched := w.sched
	parked := false
	defer func() {
		if parked {
			sched.Unpark(node)
		}
	}()
	w.mu.Lock()
	if w.nDown > 0 {
		w.mu.Unlock()
		return nil, 0, &Error{Kind: ErrPeerCrashed, Rank: rank, Op: op, Peer: -1, Time: w.cl.Clock(node)}
	}
	gen := w.gen
	slot, ok := w.slots[gen]
	if !ok {
		slot = &collSlot{vals: make([][]float64, w.n), remaining: w.n}
		w.slots[gen] = slot
	}
	slot.vals[rank] = contrib
	if t := w.cl.Clock(node); t > w.maxT {
		w.maxT = t
	}
	w.arrived++
	if w.arrived == w.n {
		release, result, commCost, tr := finish(w.maxT, slot.vals)
		slot.result = result
		slot.commCost = commCost
		slot.transport = tr
		w.cl.SetSome(w.nodes, release)
		w.arrived = 0
		w.maxT = 0
		w.gen++
		w.cond.Broadcast()
	} else {
		for gen == w.gen {
			if w.revoked {
				w.arrived--
				w.mu.Unlock()
				return nil, 0, &Error{Kind: ErrRevoked, Rank: rank, Op: op, Peer: -1, Time: w.cl.Clock(node)}
			}
			if w.cancelled.Load() {
				w.arrived--
				w.mu.Unlock()
				return nil, 0, &Error{Kind: ErrCancelled, Rank: rank, Op: op, Peer: -1, Time: w.cl.Clock(node)}
			}
			if w.nDown > 0 {
				w.arrived--
				w.mu.Unlock()
				return nil, 0, &Error{Kind: ErrPeerCrashed, Rank: rank, Op: op, Peer: -1, Time: w.cl.Clock(node)}
			}
			if deadline > 0 && time.Since(wallStart) > WatchdogWall {
				w.arrived--
				w.mu.Unlock()
				return nil, 0, &Error{Kind: ErrTimeout, Rank: rank, Op: op, Peer: -1, Time: entry + deadline}
			}
			if sched != nil && !parked {
				parked = true
				sched.Park(node)
			}
			w.cond.Wait()
		}
	}
	res := slot.result
	cost := slot.commCost
	tr := slot.transport
	slot.remaining--
	if slot.remaining == 0 {
		delete(w.slots, gen)
	}
	w.mu.Unlock()
	w.cl.BookComm(node, cost, 0)
	return res, tr, nil
}

// Bcast broadcasts root's data to every rank (MPI_BCAST), using the
// V-Bus hardware broadcast facility of the card: one bus construction,
// one stream, every node listens — rather than a log2(P) software tree.
// Every rank receives its own copy; root's input is not aliased.
func (p *Proc) Bcast(root int, data []float64) []float64 {
	res, err := p.BcastE(root, data)
	if err != nil {
		panic(err)
	}
	return res
}

// BcastE is Bcast returning structured fault errors instead of
// panicking. A broadcast stalled by link outages past the injected
// per-operation deadline fails with ErrTimeout whose Time is the
// virtual time of detection — the instant the deadline expired, not
// the later clock at which the stalled operation would have finished.
func (p *Proc) BcastE(root int, data []float64) ([]float64, error) {
	w := p.w
	if root < 0 || root >= w.n {
		panic(fmt.Sprintf("mpi: Bcast root %d out of range", root))
	}
	if err := p.enter(trace.OpBcast, root); err != nil {
		return nil, err
	}
	entry := p.entryClock()
	card := w.cl.Fabric()
	var contrib []float64
	if p.rank == root {
		contrib = data
	}
	rec, begin := p.traceBegin()
	res, tr, cerr := w.collectiveE(p.rank, trace.OpBcast, contrib,
		func(maxT sim.Time, vals [][]float64) (sim.Time, []float64, sim.Time, interconnect.Transport) {
			payload := vals[root]
			bcost, btr := w.broadcastCost(len(payload)*WordBytes, maxT+card.SendSetup())
			cost := card.SendSetup() + bcost
			return maxT + cost, append([]float64(nil), payload...), cost, btr
		})
	if cerr != nil {
		return nil, cerr
	}
	p.traceEnd(rec, begin, trace.OpBcast, root, 0, int64(len(res)*WordBytes), tr)
	if d := w.inj.Deadline(); d > 0 && w.cl.Clock(p.node())-entry > d {
		return nil, &Error{Kind: ErrTimeout, Rank: p.rank, Op: trace.OpBcast, Peer: root, Time: entry + d}
	}
	return append([]float64(nil), res...), nil
}

// reduceCost models a binomial gather tree of vector messages.
func (w *World) reduceCost(elems int) sim.Time {
	card := w.cl.Fabric()
	stages := 0
	for p := 1; p < w.n; p *= 2 {
		stages++
	}
	return sim.Time(stages) * (card.SendSetup() + card.ContigTime(elems*WordBytes, 1))
}

// Reduce combines each rank's vector element-wise with op; the combined
// vector is returned on root, nil elsewhere (MPI_REDUCE). Under fault
// injection a failed rendezvous panics with the *Error; use ReduceE for
// error returns.
func (p *Proc) Reduce(op Op, root int, data []float64) []float64 {
	res, err := p.ReduceE(op, root, data)
	if err != nil {
		panic(err)
	}
	return res
}

// ReduceE is Reduce with structured error reporting under fault
// injection. Root-range and length-mismatch violations are programming
// errors and still panic.
func (p *Proc) ReduceE(op Op, root int, data []float64) ([]float64, error) {
	w := p.w
	if root < 0 || root >= w.n {
		panic(fmt.Sprintf("mpi: Reduce root %d out of range", root))
	}
	if err := p.enter(trace.OpReduce, root); err != nil {
		return nil, err
	}
	rec, begin := p.traceBegin()
	res, _, cerr := w.collectiveE(p.rank, trace.OpReduce, data,
		func(maxT sim.Time, vals [][]float64) (sim.Time, []float64, sim.Time, interconnect.Transport) {
			out := append([]float64(nil), vals[0]...)
			for r := 1; r < w.n; r++ {
				v := vals[r]
				if len(v) != len(out) {
					panic(fmt.Sprintf("mpi: Reduce length mismatch: rank 0 has %d, rank %d has %d", len(out), r, len(v)))
				}
				for i := range out {
					out[i] = op.apply(out[i], v[i])
				}
			}
			cost := w.reduceCost(len(out))
			return maxT + cost, out, cost, interconnect.TransportP2P
		})
	if cerr != nil {
		return nil, cerr
	}
	p.traceEnd(rec, begin, trace.OpReduce, root, 0, int64(len(data)*WordBytes), interconnect.TransportP2P)
	if p.rank != root {
		return nil, nil
	}
	return append([]float64(nil), res...), nil
}

// Allreduce is Reduce followed by a V-Bus broadcast of the result;
// every rank receives the combined vector (MPI_ALLREDUCE). Under fault
// injection a failed rendezvous panics with the *Error; use AllreduceE
// for error returns.
func (p *Proc) Allreduce(op Op, data []float64) []float64 {
	res, err := p.AllreduceE(op, data)
	if err != nil {
		panic(err)
	}
	return res
}

// AllreduceE is Allreduce with structured error reporting under fault
// injection. Length-mismatch violations are programming errors and
// still panic.
func (p *Proc) AllreduceE(op Op, data []float64) ([]float64, error) {
	w := p.w
	if err := p.enter(trace.OpAllreduce, -1); err != nil {
		return nil, err
	}
	rec, begin := p.traceBegin()
	res, tr, cerr := w.collectiveE(p.rank, trace.OpAllreduce, data,
		func(maxT sim.Time, vals [][]float64) (sim.Time, []float64, sim.Time, interconnect.Transport) {
			out := append([]float64(nil), vals[0]...)
			for r := 1; r < w.n; r++ {
				v := vals[r]
				if len(v) != len(out) {
					panic(fmt.Sprintf("mpi: Allreduce length mismatch: rank 0 has %d, rank %d has %d", len(out), r, len(v)))
				}
				for i := range out {
					out[i] = op.apply(out[i], v[i])
				}
			}
			rcost := w.reduceCost(len(out))
			bcost, btr := w.broadcastCost(len(out)*WordBytes, maxT+rcost)
			cost := rcost + bcost
			return maxT + cost, out, cost, btr
		})
	if cerr != nil {
		return nil, cerr
	}
	p.traceEnd(rec, begin, trace.OpAllreduce, -1, 0, int64(len(data)*WordBytes), tr)
	return append([]float64(nil), res...), nil
}
