package mpi

// ULFM-style recovery verbs (User-Level Failure Mitigation, the
// fault-tolerance proposal for MPI): Revoke poisons a communicator so
// every rank reaches the recovery path instead of deadlocking, Agree
// is the survivors' fault-tolerant consensus on the failed set, and
// Shrink builds a new communicator over the survivors with contiguous
// re-ranked ids. CheckpointE and RecoverE price the coordinated
// checkpoint and restore rounds the resilient interpreter drives
// between parallel-region epochs.

import (
	"fmt"
	"sort"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// Revoke poisons the communicator (MPI_Comm_revoke): every blocked or
// subsequent operation on it fails with ErrRevoked. A rank that
// observes a failure calls it so its peers stop waiting on messages
// that will never arrive and join the recovery protocol. Revocation
// is idempotent and cannot be undone; recovery builds a new world.
func (w *World) Revoke() {
	w.mu.Lock()
	w.revoked = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Revoked reports whether the communicator has been revoked.
func (w *World) Revoked() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.revoked
}

// Agree is the survivors' consensus on the failed set
// (MPI_Comm_agree): it returns the communicator ranks that genuinely
// crashed — those that raised ErrCrashed, plus any whose virtual
// clock has passed an injected crash time without the rank detecting
// it yet. Ranks that merely departed after observing a peer's failure
// are survivors. The agreement round — one software-tree gather and
// release among the survivors — is charged to every survivor and
// recorded as a trace.OpRecovery interval on the recovery transport.
//
// Agree must be called after the world's rank goroutines have
// stopped (the per-rank clocks are then stable); the resilient
// interpreter calls it from its coordinator between epochs.
func (w *World) Agree() []int {
	w.mu.Lock()
	var failed []int
	for r := 0; r < w.n; r++ {
		node := w.nodes[r]
		crashed := w.crashed[r]
		if !crashed {
			if ct := w.inj.CrashTime(node); ct != sim.MaxTime && w.cl.Clock(node) >= ct {
				crashed = true
			}
		}
		if crashed {
			failed = append(failed, r)
		}
	}
	w.mu.Unlock()
	if len(failed) == 0 {
		return nil
	}
	bad := make(map[int]bool, len(failed))
	for _, r := range failed {
		bad[r] = true
	}
	var survNodes []int
	for r := 0; r < w.n; r++ {
		if !bad[r] {
			survNodes = append(survNodes, w.nodes[r])
		}
	}
	if len(survNodes) == 0 {
		return failed
	}
	// One gather + release over the software p2p tree: the hardware
	// bus cannot be trusted mid-failure, so agreement always takes the
	// degraded path.
	cost := w.cl.Fabric().SendSetup() + w.softwareTreeCost(WordBytes)
	var t sim.Time
	for _, nd := range survNodes {
		if c := w.cl.Clock(nd); c > t {
			t = c
		}
	}
	w.cl.SetSome(survNodes, t+cost)
	rec := w.cl.Recorder()
	for _, nd := range survNodes {
		w.cl.BookComm(nd, cost, 0)
		if rec != nil {
			rec.Add(trace.Event{
				Rank:      nd,
				Op:        trace.OpRecovery,
				Peer:      -1,
				Payload:   WordBytes,
				Transport: interconnect.TransportRecovery,
				Begin:     t,
				End:       t + cost,
			})
		}
	}
	return failed
}

// Shrink builds the recovered communicator (MPI_Comm_shrink): a new
// world over the surviving nodes with contiguous ranks in ascending
// node order. failed lists this world's failed ranks (Agree's
// result). The old world should be Shutdown first; windows and
// in-flight messages do not carry over — the caller restores state
// from the last checkpoint. Shrinking to zero survivors is an error.
func (w *World) Shrink(failed []int) (*World, error) {
	bad := make(map[int]bool, len(failed))
	for _, r := range failed {
		if r < 0 || r >= w.n {
			return nil, fmt.Errorf("mpi: Shrink failed rank %d out of range [0,%d)", r, w.n)
		}
		bad[r] = true
	}
	var nodes []int
	for r := 0; r < w.n; r++ {
		if !bad[r] {
			nodes = append(nodes, w.nodes[r])
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("mpi: Shrink left no survivors")
	}
	sort.Ints(nodes)
	return NewWorldOver(w.cl, nodes), nil
}

// CheckpointE is the coordinated checkpoint round: a Chandy-Lamport
// style quiesce — the collective rendezvous fences every window and
// drains in-flight messages, exactly like a barrier — after which
// rank 0 streams the serialized snapshot (bytes long; other ranks
// pass 0) to stable storage over the contiguous path. The whole round
// is charged to every rank as one trace.OpCheckpoint interval on the
// ckpt transport, so profiles show the true cost of the cadence.
func (p *Proc) CheckpointE(bytes int) error {
	w := p.w
	if err := p.enter(trace.OpCheckpoint, -1); err != nil {
		return err
	}
	var contrib []float64
	if p.rank == 0 {
		contrib = []float64{float64(bytes)}
	}
	card := w.cl.Fabric()
	rec, begin := p.traceBegin()
	_, tr, err := w.collectiveE(p.rank, trace.OpCheckpoint, contrib,
		func(maxT sim.Time, vals [][]float64) (sim.Time, []float64, sim.Time, interconnect.Transport) {
			size := 0
			if len(vals[0]) > 0 {
				size = int(vals[0][0])
			}
			cost := w.barrierCost + card.SendSetup() + card.ContigTime(size, 1)
			return maxT + cost, nil, cost, interconnect.TransportCkpt
		})
	if err != nil {
		return err
	}
	p.traceEnd(rec, begin, trace.OpCheckpoint, -1, 0, int64(bytes), tr)
	return nil
}

// RecoverE is the checkpoint-restore round on a recovered world: rank
// 0 reads the snapshot (bytes long; other ranks pass 0) back from
// stable storage and rebroadcasts the restored state to the
// survivors over the software tree (the degraded broadcast path —
// the communicator no longer matches the physical bus). Charged to
// every rank as one trace.OpRecovery interval on the recovery
// transport.
func (p *Proc) RecoverE(bytes int) error {
	w := p.w
	if err := p.enter(trace.OpRecovery, -1); err != nil {
		return err
	}
	var contrib []float64
	if p.rank == 0 {
		contrib = []float64{float64(bytes)}
	}
	card := w.cl.Fabric()
	rec, begin := p.traceBegin()
	_, tr, err := w.collectiveE(p.rank, trace.OpRecovery, contrib,
		func(maxT sim.Time, vals [][]float64) (sim.Time, []float64, sim.Time, interconnect.Transport) {
			size := 0
			if len(vals[0]) > 0 {
				size = int(vals[0][0])
			}
			cost := card.SendSetup() + card.ContigTime(size, 1) + w.softwareTreeCost(size)
			return maxT + cost, nil, cost, interconnect.TransportRecovery
		})
	if err != nil {
		return err
	}
	p.traceEnd(rec, begin, trace.OpRecovery, -1, 0, int64(bytes), tr)
	return nil
}
