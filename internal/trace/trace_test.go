package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
)

// mkEvent builds a simple data event for rank with the given interval.
func mkEvent(rank int, begin, end sim.Time, op string, peer int, bytes int64) Event {
	return Event{Rank: rank, Op: op, Peer: peer, Bytes: bytes, Payload: bytes,
		Transport: interconnect.TransportDMA, Begin: begin, End: end}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(mkEvent(0, 0, 1, OpPut, 1, 8))
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder recorded something")
	}
	if got := r.Profile(nil); got == "" {
		t.Fatal("nil recorder profile should still render an (empty) table")
	}
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatalf("nil recorder chrome export: %v", err)
	}
}

// TestEventsDeterministicOrder records the same event set under many
// goroutine interleavings and requires identical sorted output and
// identical Chrome JSON bytes every time — the determinism guarantee
// golden tests rely on.
func TestEventsDeterministicOrder(t *testing.T) {
	build := func(perm []int) *Recorder {
		r := New()
		var wg sync.WaitGroup
		for _, i := range perm {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rank := i % 4
				base := sim.Time(i/4) * 100
				r.Add(mkEvent(rank, base, base+50, OpPut, (rank+1)%4, int64(8*i)))
			}(i)
		}
		wg.Wait()
		return r
	}
	perm1 := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	perm2 := []int{11, 3, 7, 0, 9, 1, 10, 4, 2, 8, 6, 5}
	r1, r2 := build(perm1), build(perm2)
	e1, e2 := r1.Events(), r2.Events()
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs across interleavings: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	var b1, b2 bytes.Buffer
	if err := r1.WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("chrome export bytes differ across recording interleavings")
	}
}

func TestEventsSortWithinRank(t *testing.T) {
	r := New()
	r.Add(mkEvent(1, 300, 400, OpGet, 0, 8))
	r.Add(mkEvent(0, 100, 200, OpPut, 1, 8))
	r.Add(mkEvent(1, 0, 50, OpPut, 0, 8))
	r.Add(mkEvent(CompilerRank, 0, 10, "parse", -1, 0))
	evs := r.Events()
	if evs[0].Rank != CompilerRank {
		t.Fatalf("compiler track should sort first, got rank %d", evs[0].Rank)
	}
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Begin > b.Begin) {
			t.Fatalf("events out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestChromeExportParses(t *testing.T) {
	r := New()
	r.Add(mkEvent(0, 0, 100, OpPut, 1, 64))
	r.Add(Event{Rank: 0, Op: OpBarrier, Peer: -1, Transport: interconnect.TransportSync, Begin: 100, End: 250})
	r.Add(mkEvent(1, 10, 20, OpGet, 0, 32))
	r.Add(Event{Rank: CompilerRank, Op: "parse", Peer: -1, Begin: 0, End: 5, Detail: "2 units"})
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 3 thread_name metadata + 4 events.
	if len(out.TraceEvents) != 8 {
		t.Fatalf("got %d trace events, want 8:\n%s", len(out.TraceEvents), buf.String())
	}
	names := map[string]bool{}
	var sawCompiler bool
	for _, ev := range out.TraceEvents {
		names[ev.Name] = true
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "compiler" {
			sawCompiler = true
		}
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Fatalf("negative duration on %q", ev.Name)
		}
	}
	if !sawCompiler {
		t.Fatal("no compiler track metadata in export")
	}
	for _, want := range []string{OpPut, OpGet, OpBarrier, "parse"} {
		if !names[want] {
			t.Fatalf("export missing event %q", want)
		}
	}
}

func TestSummariesSplitTime(t *testing.T) {
	r := New()
	r.Add(mkEvent(0, 100, 300, OpPut, 1, 64))                                                                   // 200 transfer
	r.Add(Event{Rank: 0, Op: OpBarrier, Peer: -1, Transport: interconnect.TransportSync, Begin: 300, End: 450}) // 150 wait
	sums := r.Summaries([]sim.Time{500})
	if len(sums) != 1 {
		t.Fatalf("want 1 rank, got %d", len(sums))
	}
	s := sums[0]
	if s.Transfer != 200 || s.Wait != 150 || s.Compute != 150 {
		t.Fatalf("time split transfer=%v wait=%v compute=%v, want 200/150/150", s.Transfer, s.Wait, s.Compute)
	}
	if s.Bytes != 64 || s.BytesByTransport[interconnect.TransportDMA] != 64 {
		t.Fatalf("byte counters wrong: %+v", s)
	}
	if s.Ops != 2 || s.OpCount[OpPut] != 1 || s.OpCount[OpBarrier] != 1 {
		t.Fatalf("op counters wrong: %+v", s.OpCount)
	}
}

func TestCommMatrix(t *testing.T) {
	r := New()
	r.Add(mkEvent(0, 0, 10, OpPut, 1, 100))
	r.Add(mkEvent(0, 10, 20, OpPut, 2, 50))
	r.Add(mkEvent(2, 0, 10, OpGet, 0, 30))
	r.Add(mkEvent(1, 0, 5, OpSend, 1, 25)) // local, diagonal
	r.Add(Event{Rank: 0, Op: OpBarrier, Peer: -1, Transport: interconnect.TransportSync, Begin: 20, End: 30})
	m := r.CommMatrix(3)
	want := [][]int64{{0, 100, 50}, {0, 25, 0}, {30, 0, 0}}
	for i := range want {
		for j := range want[i] {
			if m[i][j] != want[i][j] {
				t.Fatalf("matrix[%d][%d] = %d, want %d", i, j, m[i][j], want[i][j])
			}
		}
	}
	out := FormatCommMatrix(m)
	if out == "" || len(out) < 10 {
		t.Fatalf("matrix rendering too short: %q", out)
	}
}
