package trace

import (
	"fmt"
	"sort"
	"strings"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
)

// Summary is the derived per-rank counter set.
type Summary struct {
	Rank int
	// Ops is the number of traced runtime operations.
	Ops int64
	// OpCount counts events per operation name.
	OpCount map[string]int64
	// Bytes is the total interconnect-accounted bytes, equal to the
	// rank's cluster.Report.CommBytes entry.
	Bytes int64
	// BytesByTransport splits Bytes by data path.
	BytesByTransport [interconnect.NumTransports]int64
	// TimeByTransport splits traced interval time by data path.
	TimeByTransport [interconnect.NumTransports]sim.Time
	// Transfer is the time spent moving data (all transports except
	// sync); Wait is the time inside synchronizing ops (barriers,
	// fences, locks, receive stalls); Compute is the remaining clock
	// time outside any traced interval.
	Transfer, Wait, Compute sim.Time
	// Clock is the rank's final virtual clock (the last event end when
	// no final clocks are supplied).
	Clock sim.Time
}

// dataTransport reports whether t moves payload (vs synchronizes).
func dataTransport(t interconnect.Transport) bool {
	switch t {
	case interconnect.TransportLocal, interconnect.TransportDMA,
		interconnect.TransportPIO, interconnect.TransportP2P,
		interconnect.TransportBcast, interconnect.TransportRetry,
		interconnect.TransportPack:
		return true
	}
	return false
}

// Summaries derives per-rank counters from the timeline. finalClocks,
// when non-nil, supplies each rank's end-of-run clock (so trailing
// compute after the last traced event is counted); it also fixes the
// number of ranks reported. With nil clocks, ranks present in the
// timeline are reported and each clock is its last event end.
// CompilerRank events are excluded.
func (r *Recorder) Summaries(finalClocks []sim.Time) []Summary {
	evs := r.Events()
	n := len(finalClocks)
	if n == 0 {
		for _, e := range evs {
			if e.Rank >= n {
				n = e.Rank + 1
			}
		}
	}
	out := make([]Summary, n)
	for i := range out {
		out[i].Rank = i
		out[i].OpCount = map[string]int64{}
		if finalClocks != nil {
			out[i].Clock = finalClocks[i]
		}
	}
	for _, e := range evs {
		if e.Rank < 0 || e.Rank >= n {
			continue
		}
		s := &out[e.Rank]
		s.Ops++
		s.OpCount[e.Op]++
		s.Bytes += e.Bytes
		s.BytesByTransport[e.Transport] += e.Bytes
		s.TimeByTransport[e.Transport] += e.Duration()
		if dataTransport(e.Transport) {
			s.Transfer += e.Duration()
		} else {
			s.Wait += e.Duration()
		}
		if finalClocks == nil && e.End > s.Clock {
			s.Clock = e.End
		}
	}
	// Intervals of one rank never overlap, so the clock splits exactly
	// into transfer + wait + (untraced) compute.
	for i := range out {
		out[i].Compute = out[i].Clock - out[i].Transfer - out[i].Wait
		if out[i].Compute < 0 {
			out[i].Compute = 0
		}
	}
	return out
}

// CommAccount is the sparse communication account: accounted bytes
// keyed by (origin, peer), holding only the non-zero cells. SPMD
// programs communicate master↔slave and neighbor↔neighbor, so a
// 1024-rank account holds thousands of cells where the dense N×N
// matrix would hold a million — the account scales with traffic, not
// with the square of the rank count.
type CommAccount struct {
	// N is the rank count the account spans.
	N int
	// Cells maps [origin, peer] to accounted bytes; zero cells are
	// absent.
	Cells map[[2]int]int64
}

// denseFormatMax is the largest rank count Format renders as the full
// dense matrix; beyond it the account summarizes (the 1024-rank table
// would be a megacell wall of mostly zeros).
const denseFormatMax = 16

// CommAccount builds the sparse communication account over n ranks:
// the bytes of operations initiated by rank i with peer j (the
// diagonal holds rank-local copies). Collectives have no single peer
// and do not appear.
func (r *Recorder) CommAccount(n int) *CommAccount {
	a := &CommAccount{N: n, Cells: map[[2]int]int64{}}
	for _, e := range r.Events() {
		if e.Rank < 0 || e.Rank >= n || e.Peer < 0 || e.Peer >= n || e.Bytes == 0 {
			continue
		}
		a.Cells[[2]int{e.Rank, e.Peer}] += e.Bytes
	}
	return a
}

// Dense renders the account as the full N×N matrix.
func (a *CommAccount) Dense() [][]int64 {
	m := make([][]int64, a.N)
	for i := range m {
		m[i] = make([]int64, a.N)
	}
	for cell, b := range a.Cells {
		m[cell[0]][cell[1]] = b
	}
	return m
}

// CommEdge is one non-zero account cell.
type CommEdge struct {
	From, To int
	Bytes    int64
}

// TopK returns the k heaviest edges, sorted by bytes descending, then
// origin, then peer. k beyond the edge count returns them all.
func (a *CommAccount) TopK(k int) []CommEdge {
	edges := make([]CommEdge, 0, len(a.Cells))
	for cell, b := range a.Cells {
		edges = append(edges, CommEdge{From: cell[0], To: cell[1], Bytes: b})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Bytes != edges[j].Bytes {
			return edges[i].Bytes > edges[j].Bytes
		}
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	if k < len(edges) {
		edges = edges[:k]
	}
	return edges
}

// Format renders the account: the full dense matrix up to
// denseFormatMax ranks (byte-identical to FormatCommMatrix of the
// dense rendering), an aggregate summary with the heaviest edges
// above it.
func (a *CommAccount) Format() string {
	if a.N <= denseFormatMax {
		return FormatCommMatrix(a.Dense())
	}
	var total int64
	for _, b := range a.Cells {
		total += b
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d ranks, %d of %d cells non-zero, %d bytes total\n",
		a.N, len(a.Cells), int64(a.N)*int64(a.N), total)
	edges := a.TopK(denseFormatMax)
	if len(edges) > 0 {
		fmt.Fprintf(&sb, "top %d edges (origin -> peer: bytes):\n", len(edges))
		for _, e := range edges {
			fmt.Fprintf(&sb, "  %d -> %d: %d\n", e.From, e.To, e.Bytes)
		}
	}
	return sb.String()
}

// CommMatrix builds the N×N communication matrix: cell [i][j] is the
// interconnect-accounted bytes of operations initiated by rank i with
// peer j (the diagonal holds rank-local copies). Collectives have no
// single peer and do not appear. Dense rendering of CommAccount; at
// large rank counts prefer the account itself.
func (r *Recorder) CommMatrix(n int) [][]int64 {
	return r.CommAccount(n).Dense()
}

// FormatCommMatrix renders a communication matrix as an aligned table
// (rows are origins, columns peers).
func FormatCommMatrix(m [][]int64) string {
	n := len(m)
	w := len("origin")
	for i := range m {
		for j := range m[i] {
			if l := len(fmt.Sprintf("%d", m[i][j])); l > w {
				w = l
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s", w, "origin")
	for j := 0; j < n; j++ {
		fmt.Fprintf(&sb, "  %*s", w, fmt.Sprintf("->%d", j))
	}
	sb.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%-*d", w, i)
		for j := 0; j < n; j++ {
			fmt.Fprintf(&sb, "  %*d", w, m[i][j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// transportBreakdown renders the non-zero per-transport byte counts of
// one summary, in transport order ("dma=8192 pio=1024").
func transportBreakdown(s Summary) string {
	var parts []string
	for t := interconnect.Transport(0); t < interconnect.NumTransports; t++ {
		if s.BytesByTransport[t] != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", t, s.BytesByTransport[t]))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// opBreakdown renders a summary's op counts sorted by name.
func opBreakdown(s Summary) string {
	names := make([]string, 0, len(s.OpCount))
	for n := range s.OpCount {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, s.OpCount[n]))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// Profile renders the text profile report: the per-rank counter table
// (compute vs transfer vs wait, bytes by transport, op counts) and the
// communication matrix. finalClocks is as in Summaries. Output is
// deterministic for a given timeline.
func (r *Recorder) Profile(finalClocks []sim.Time) string {
	sums := r.Summaries(finalClocks)
	var sb strings.Builder
	sb.WriteString("rank  ops     compute        transfer       wait           bytes       by transport\n")
	for _, s := range sums {
		fmt.Fprintf(&sb, "%-5d %-7d %-14v %-14v %-14v %-11d %s\n",
			s.Rank, s.Ops, s.Compute, s.Transfer, s.Wait, s.Bytes, transportBreakdown(s))
	}
	sb.WriteString("op counts:\n")
	for _, s := range sums {
		fmt.Fprintf(&sb, "  rank %d: %s\n", s.Rank, opBreakdown(s))
	}
	sb.WriteString("communication matrix (accounted bytes, origin row -> peer column):\n")
	sb.WriteString(r.CommAccount(len(sums)).Format())
	return sb.String()
}
