package trace

import (
	"reflect"
	"strings"
	"testing"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
)

// synthTimeline records a deterministic pseudo-random traffic pattern
// over n ranks and returns the recorder plus the reference dense
// matrix accumulated independently.
func synthTimeline(n int) (*Recorder, [][]int64) {
	r := New()
	want := make([][]int64, n)
	for i := range want {
		want[i] = make([]int64, n)
	}
	seed := int64(1)
	for i := 0; i < 40*n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		src := int(uint64(seed)>>33) % n
		dst := int(uint64(seed)>>17) % n
		bytes := int64(uint64(seed)>>50) % 4096 // sometimes zero
		r.Add(Event{
			Rank: src, Peer: dst, Op: OpPut, Bytes: bytes,
			Transport: interconnect.TransportDMA,
			Begin:     sim.Time(i), End: sim.Time(i + 1),
		})
		want[src][dst] += bytes
	}
	// Events the account must ignore: no single peer, out of range.
	r.Add(Event{Rank: 0, Peer: -1, Op: OpBarrier, Begin: 1, End: 2})
	r.Add(Event{Rank: CompilerRank, Peer: 0, Op: "parse", Bytes: 99, Begin: 0, End: 1})
	r.Add(Event{Rank: 0, Peer: n, Op: OpPut, Bytes: 99, Begin: 0, End: 1})
	return r, want
}

// The sparse account must agree cell-for-cell with the dense matrix at
// every rank count, and its cells must hold no zeros.
func TestCommAccountMatchesDense(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		r, want := synthTimeline(n)
		a := r.CommAccount(n)
		if got := a.Dense(); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: account dense rendering disagrees with reference:\ngot  %v\nwant %v", n, got, want)
		}
		if got := r.CommMatrix(n); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: CommMatrix disagrees with reference", n)
		}
		for cell, b := range a.Cells {
			if b == 0 {
				t.Fatalf("n=%d: zero cell %v stored", n, cell)
			}
		}
	}
}

// Format must be byte-identical to the dense formatter for small rank
// counts — existing vbtrace/report consumers see no change.
func TestCommAccountFormatDenseCompat(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		r, _ := synthTimeline(n)
		a := r.CommAccount(n)
		if got, want := a.Format(), FormatCommMatrix(a.Dense()); got != want {
			t.Fatalf("n=%d: Format diverged from dense matrix:\n%s\nvs\n%s", n, got, want)
		}
	}
}

func TestCommAccountFormatLarge(t *testing.T) {
	n := denseFormatMax + 16
	r, want := synthTimeline(n)
	a := r.CommAccount(n)
	out := a.Format()
	// The dense table's column header is "->0" with no spaces; the
	// summary's edge lines always space the arrow.
	if strings.Contains(out, "->0") {
		t.Fatalf("large-N format fell back to the dense table:\n%s", out)
	}
	var total int64
	for i := range want {
		for j := range want[i] {
			total += want[i][j]
		}
	}
	if !strings.Contains(out, "bytes total") || !strings.Contains(out, "top ") {
		t.Fatalf("large-N summary missing expected lines:\n%s", out)
	}
	edges := a.TopK(denseFormatMax)
	if len(edges) == 0 {
		t.Fatal("no edges in a synthetic timeline with traffic")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].Bytes > edges[i-1].Bytes {
			t.Fatalf("TopK not sorted by bytes descending: %v", edges)
		}
	}
}

func TestCommAccountScalesSparsely(t *testing.T) {
	// A neighbor-ring pattern over many ranks: the account must hold
	// O(n) cells, not O(n²).
	n := 1024
	r := New()
	for i := 0; i < n; i++ {
		r.Add(Event{
			Rank: i, Peer: (i + 1) % n, Op: OpSend, Bytes: 64,
			Transport: interconnect.TransportP2P,
			Begin:     sim.Time(i), End: sim.Time(i + 1),
		})
	}
	a := r.CommAccount(n)
	if len(a.Cells) != n {
		t.Fatalf("ring account holds %d cells, want %d", len(a.Cells), n)
	}
}
