package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event JSON export: the format chrome://tracing and
// Perfetto load. Every rank becomes one named thread track inside a
// single "v-bus cluster" process; CompilerRank events land on a
// "compiler" track. Timestamps and durations are microseconds of
// virtual time ("X" complete events), so a Perfetto timeline reads
// directly in the units the paper's tables use.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []any  `json:"traceEvents"`
}

const chromePid = 0

// trackName labels one rank's thread track.
func trackName(rank int) string {
	if rank == CompilerRank {
		return "compiler"
	}
	return fmt.Sprintf("rank %d", rank)
}

// WriteChrome serializes the timeline as Chrome trace-event JSON.
// Events are emitted in the canonical sorted order and map keys are
// marshaled sorted, so the same timeline always produces identical
// bytes regardless of how goroutines interleaved while recording.
func (r *Recorder) WriteChrome(w io.Writer) error {
	evs := r.Events()
	out := chromeTrace{DisplayTimeUnit: "ns"}
	out.TraceEvents = append(out.TraceEvents, chromeMeta{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "v-bus cluster"},
	})
	// One thread_name metadata record per track, in rank order
	// (Events() is rank-sorted, so first sighting is ordered).
	seen := map[int]bool{}
	for _, e := range evs {
		if seen[e.Rank] {
			continue
		}
		seen[e.Rank] = true
		out.TraceEvents = append(out.TraceEvents, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: e.Rank,
			Args: map[string]any{"name": trackName(e.Rank)},
		})
	}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Op,
			Cat:  e.Transport.String(),
			Ph:   "X",
			Ts:   e.Begin.Micros(),
			Dur:  e.End.Micros() - e.Begin.Micros(),
			Pid:  chromePid,
			Tid:  e.Rank,
		}
		args := map[string]any{}
		if e.Peer >= 0 {
			args["peer"] = e.Peer
		}
		if e.Bytes != 0 {
			args["bytes"] = e.Bytes
		}
		if e.Payload != 0 {
			args["payload"] = e.Payload
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
