// Package trace is the cluster-wide observability subsystem: a
// structured, per-rank timeline of every runtime event in virtual
// time. The MPI layer records one Event per operation — begin/end
// clock values, peer rank, payload bytes and the transport class the
// bytes travelled (DMA-contig, PIO-strided, V-Bus broadcast, wormhole
// p2p) — and this package derives everything the paper's evaluation
// tables leave implicit: per-rank counters (op counts, bytes by
// transport, compute vs transfer vs wait time), the N×N communication
// matrix, a text profile report, and Chrome trace-event JSON that
// loads in Perfetto with one track per rank.
//
// A nil *Recorder is valid and records nothing, so tracing is
// zero-cost when off: the runtime guards every event with a single
// nil check and never reads the virtual clock for tracing purposes
// unless a recorder is attached.
//
// Events are recorded concurrently by the per-rank goroutines;
// every accessor sorts them into a stable order (rank, begin, end,
// op, peer) so exports and reports are deterministic regardless of
// goroutine interleaving.
package trace

import (
	"sort"
	"sync"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
)

// CompilerRank is the pseudo-rank carrying compiler pass spans in an
// exported timeline (the "rank -1" track).
const CompilerRank = -1

// Operation names recorded by the MPI runtime. Ops are plain strings
// so auxiliary tracks (compiler passes) can use their own names.
const (
	OpSend       = "send"
	OpRecv       = "recv"
	OpUnpack     = "unpack"
	OpPut        = "put"
	OpPutStrided = "put.s"
	OpGet        = "get"
	OpGetStrided = "get.s"
	// OpPutPacked / OpGetPacked are strided one-sided transfers the
	// coalescer rewrote into pack → contiguous DMA burst → unpack; they
	// travel the dedicated pack transport class so profiles separate
	// coalesced bursts from the per-element PIO path they replace.
	OpPutPacked  = "put.p"
	OpGetPacked  = "get.p"
	OpAccumulate = "accumulate"
	OpBarrier    = "barrier"
	OpFence      = "fence"
	OpLock       = "lock"
	OpUnlock     = "unlock"
	OpBcast      = "bcast"
	OpReduce     = "reduce"
	OpAllreduce  = "allreduce"
	// OpRetry is the reliability layer's retransmission overhead: the
	// extra time a faulty fabric costs on top of the operation that
	// triggered the retries (recorded as a separate adjacent interval so
	// the base operation's accounting stays identical to a clean run).
	OpRetry = "retry"
	// OpCheckpoint is a coordinated checkpoint epoch boundary: the
	// quiesce rendezvous plus the snapshot serialization, priced through
	// the active interconnect and charged to the ckpt transport.
	OpCheckpoint = "checkpoint"
	// OpRecovery is the crash-recovery interval on each survivor: the
	// failed-set agreement, communicator shrink and checkpoint restore.
	OpRecovery = "recovery"
)

// Event is one recorded interval on a rank's virtual timeline.
type Event struct {
	// Rank is the recording rank (CompilerRank for aux tracks).
	Rank int
	// Op names the operation ("send", "put", "barrier", ...).
	Op string
	// Peer is the other rank involved: the destination of a send/put,
	// the source of a recv, the target of a get/lock, the root of a
	// rooted collective. -1 when the op has no single peer.
	Peer int
	// Bytes is the byte count the operation charged through the
	// interconnect accounting (cluster.ChargeComm), so per-rank sums
	// over events reconcile exactly with cluster.Report.CommBytes.
	// Synchronizing ops and collectives account zero bytes.
	Bytes int64
	// Payload is the logical payload size of the operation in bytes —
	// equal to Bytes for point-to-point data movement, and the vector
	// size for collectives (whose cluster accounting books no bytes).
	Payload int64
	// Transport classifies the data path (see interconnect.Transport).
	Transport interconnect.Transport
	// Begin and End bound the interval on the rank's virtual clock.
	// End >= Begin always; intervals of one rank never overlap.
	Begin, End sim.Time
	// Detail is an optional free-form note (pass notes on the
	// compiler track).
	Detail string
}

// Duration is the interval length.
func (e Event) Duration() sim.Time { return e.End - e.Begin }

// Recorder collects events from concurrently running ranks. Storage
// is sharded per rank: each rank's goroutine appends to its own shard
// under a shard-local lock, so a 1024-rank run never serializes its
// event stream through one global mutex. Shards are merged in rank
// order on export, then canonically sorted, so the sharding is
// invisible to every consumer. All methods are safe for concurrent
// use, and safe on a nil receiver (where they record and return
// nothing).
type Recorder struct {
	mu     sync.RWMutex // guards the shard map, not the events
	shards map[int]*traceShard
}

// traceShard is one rank's private event stream.
type traceShard struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{shards: map[int]*traceShard{}} }

// shard returns rank's shard, creating it on first use. The read lock
// covers the common case; creation upgrades with a double-check.
func (r *Recorder) shard(rank int) *traceShard {
	r.mu.RLock()
	s := r.shards[rank]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shards == nil {
		r.shards = map[int]*traceShard{}
	}
	if s = r.shards[rank]; s == nil {
		s = &traceShard{}
		r.shards[rank] = s
	}
	return s
}

// Add records one event. No-op on a nil recorder.
func (r *Recorder) Add(ev Event) {
	if r == nil {
		return
	}
	s := r.shard(ev.Rank)
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Len reports the number of recorded events (0 on a nil recorder).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, s := range r.shards {
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// Events returns a copy of the recorded events in the canonical
// stable order: by rank, then begin time, then end time, then op,
// then peer. Shards are concatenated in ascending rank order before
// the stable sort, so the merge is deterministic regardless of both
// goroutine interleaving and shard layout.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	ranks := make([]int, 0, len(r.shards))
	byRank := make(map[int]*traceShard, len(r.shards))
	for rank, s := range r.shards {
		ranks = append(ranks, rank)
		byRank[rank] = s
	}
	r.mu.RUnlock()
	sort.Ints(ranks)
	var evs []Event
	for _, rank := range ranks {
		s := byRank[rank]
		s.mu.Lock()
		evs = append(evs, s.events...)
		s.mu.Unlock()
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Peer < b.Peer
	})
	return evs
}
