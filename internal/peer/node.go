package peer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vbuscluster/internal/jobs"
)

// FailoverPriority is the admission priority given to jobs that are
// executed off their ring owner (failover attempts and local
// fallbacks): recovery traffic preempts bulk work (Spec.Priority 0)
// but stays below the interactive ceiling, so an operator can still
// outrank it explicitly.
const FailoverPriority = 7

// Options shapes a federation node.
type Options struct {
	// Self is this node's address exactly as it appears in Peers.
	Self string
	// Peers is the full member list, including Self.
	Peers []string
	// GossipInterval is the heartbeat period (default 500ms).
	GossipInterval time.Duration
	// SuspectAfter / DeadAfter bound the failure detector's windows
	// (defaults 3× and 8× the gossip interval).
	SuspectAfter, DeadAfter time.Duration
	// Replicas is the ring's virtual-node count per member (0 = default).
	Replicas int
	// MaxForwardAttempts bounds how many ring successors a submission
	// tries before degrading to local compilation (default 3).
	MaxForwardAttempts int
	// AttemptTimeout bounds one forward attempt; Backoff and HedgeDelay
	// shape the failover schedule (see Forwarder).
	AttemptTimeout, Backoff, HedgeDelay time.Duration
	// Seed keys the deterministic forward jitter.
	Seed uint64
	// Logf receives membership transitions and fallback decisions
	// (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.GossipInterval <= 0 {
		o.GossipInterval = 500 * time.Millisecond
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 3 * o.GossipInterval
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 8 * o.GossipInterval
	}
	if o.MaxForwardAttempts <= 0 {
		o.MaxForwardAttempts = 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Node federates a local jobs.Server with the rest of a vbserve ring:
// it routes submissions to their plan key's owner, probes peers, and
// hands the plan cache's working set to the right owners on shutdown
// and on peer revival. All other endpoints pass through to the local
// server untouched.
type Node struct {
	self string
	srv  *jobs.Server
	ring *Ring
	det  *Detector
	fwd  *Forwarder
	opts Options

	client *http.Client // heartbeats + handoff

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	forwarded        atomic.Int64
	forwardFailovers atomic.Int64
	localFallbacks   atomic.Int64
	receivedForwards atomic.Int64
	handoffPlansSent atomic.Int64
	handoffPlansRecv atomic.Int64
}

// NewNode builds (but does not start) a federation node over srv.
func NewNode(srv *jobs.Server, opts Options) (*Node, error) {
	opts = opts.withDefaults()
	if opts.Self == "" {
		return nil, fmt.Errorf("peer: Options.Self is required")
	}
	ring, err := NewRing(opts.Peers, opts.Replicas)
	if err != nil {
		return nil, err
	}
	inRing := false
	var others []string
	for _, m := range ring.Members() {
		if m == opts.Self {
			inRing = true
		} else {
			others = append(others, m)
		}
	}
	if !inRing {
		return nil, fmt.Errorf("peer: self %q is not in the peer list %v", opts.Self, ring.Members())
	}
	probeTimeout := opts.GossipInterval
	if probeTimeout > 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	n := &Node{
		self:   opts.Self,
		srv:    srv,
		ring:   ring,
		det:    NewDetector(others, opts.SuspectAfter, opts.DeadAfter),
		opts:   opts,
		client: &http.Client{Timeout: probeTimeout},
		stop:   make(chan struct{}),
	}
	n.fwd = NewForwarder(opts.AttemptTimeout, opts.Backoff, opts.HedgeDelay, opts.Seed, func(peer string, ok bool) {
		var tr *Transition
		if ok {
			tr = n.det.ObserveOK(peer)
		} else {
			tr = n.det.ObserveFail(peer)
		}
		n.reactTo(tr)
	})
	return n, nil
}

// live is the routing view: self is always live, everyone else as the
// detector says.
func (n *Node) live(member string) bool {
	return member == n.self || n.det.Alive(member)
}

// Start launches the heartbeat loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.gossipLoop()
}

// Stop halts the heartbeat loop without handing the cache off — the
// in-process stand-in for kill -9 in tests and sweeps. Idempotent.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Shutdown is the graceful exit: the heartbeat loop stops, then the
// plan cache's working set is handed off to the live owners of each
// key so the federation keeps the warm set after this node leaves.
// Handoff is best-effort within ctx; failures are logged, not fatal.
func (n *Node) Shutdown(ctx context.Context) {
	n.Stop()
	n.handoffAll(ctx)
}

func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.probeAll()
			for _, tr := range n.det.Sweep() {
				tr := tr
				n.reactTo(&tr)
			}
		}
	}
}

// probeAll heartbeats every other member in parallel and waits for
// the round (each probe bounded by the client timeout).
func (n *Node) probeAll() {
	var wg sync.WaitGroup
	for _, m := range n.ring.Members() {
		if m == n.self {
			continue
		}
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			resp, err := n.client.Get(fmt.Sprintf("http://%s/v1/peer/health", m))
			ok := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
				resp.Body.Close()
			}
			var tr *Transition
			if ok {
				tr = n.det.ObserveOK(m)
			} else {
				tr = n.det.ObserveFail(m)
			}
			n.reactTo(tr)
		}(m)
	}
	wg.Wait()
}

// reactTo logs a membership transition and, on a revival, hands the
// revived peer the cached plans it now owns so it rejoins warm.
func (n *Node) reactTo(tr *Transition) {
	if tr == nil {
		return
	}
	n.opts.Logf("peer: %s %s -> %s", tr.Peer, tr.From, tr.To)
	if tr.To == StatusAlive {
		n.handoffTo(context.Background(), tr.Peer)
	}
}

// ownerFor places a normalized spec's plan key under the current
// liveness view.
func (n *Node) ownerFor(spec jobs.Spec) (string, []string) {
	key := jobs.PlanKey(spec)
	targets := n.ring.Successors(key, 1+n.opts.MaxForwardAttempts, n.live)
	if len(targets) == 0 {
		return n.self, nil
	}
	return targets[0], targets
}

// handoffTo ships the cached specs owned by peer (under the current
// view) as VBPJ journal bytes.
func (n *Node) handoffTo(ctx context.Context, peer string) {
	var owned []jobs.Spec
	for _, sp := range n.srv.CachedSpecs() {
		if owner, ok := n.ring.Owner(jobs.PlanKey(sp), n.live); ok && owner == peer {
			owned = append(owned, sp)
		}
	}
	n.sendHandoff(ctx, peer, owned)
}

// handoffAll distributes the whole cached working set to the live
// owners of each key, excluding self — the shutdown path.
func (n *Node) handoffAll(ctx context.Context) {
	liveWithoutSelf := func(m string) bool { return m != n.self && n.det.Alive(m) }
	byOwner := map[string][]jobs.Spec{}
	for _, sp := range n.srv.CachedSpecs() {
		if owner, ok := n.ring.Owner(jobs.PlanKey(sp), liveWithoutSelf); ok {
			byOwner[owner] = append(byOwner[owner], sp)
		}
	}
	for owner, specs := range byOwner {
		n.sendHandoff(ctx, owner, specs)
	}
}

func (n *Node) sendHandoff(ctx context.Context, peer string, specs []jobs.Spec) {
	if len(specs) == 0 {
		return
	}
	body := jobs.EncodeJournal(specs)
	hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodPost,
		fmt.Sprintf("http://%s/v1/peer/handoff", peer), bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.client.Do(req)
	if err != nil {
		n.opts.Logf("peer: handoff of %d plans to %s failed: %v", len(specs), peer, err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.opts.Logf("peer: handoff of %d plans to %s refused: status %d", len(specs), peer, resp.StatusCode)
		return
	}
	n.handoffPlansSent.Add(int64(len(specs)))
	n.opts.Logf("peer: handed %d plans to %s", len(specs), peer)
}

// Handler wraps the local server's API with the federation layer:
// submissions are ring-routed, peer endpoints answer probes and
// handoffs, and readiness reports ring state. Everything else passes
// through to the jobs handler.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	mux.HandleFunc("GET /v1/peer/health", n.handlePeerHealth)
	mux.HandleFunc("POST /v1/peer/handoff", n.handleHandoff)
	mux.HandleFunc("GET /v1/peer/ring", n.handleRing)
	mux.HandleFunc("GET /healthz", n.handleReady)
	mux.HandleFunc("GET /healthz/ready", n.handleReady)
	mux.Handle("/", n.srv.Handler())
	return mux
}

// maxSubmitBytes mirrors the jobs layer's body bound; handoff bodies
// scale with the cache, so they get more headroom.
const (
	maxSubmitBytes  = 1 << 20
	maxHandoffBytes = 64 << 20
)

func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		jobs.WriteError(w, http.StatusBadRequest, "bad_spec", "bad job spec: "+err.Error())
		return
	}
	spec, err := n.srv.NormalizeSpec(spec)
	if err != nil {
		jobs.WriteError(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}

	// Forwarded submissions execute here unconditionally: one hop at
	// most, so divergent ring views can never loop a job. Failover
	// hops run at boosted priority — recovery preempts bulk.
	if r.URL.Query().Get(forwardedParam) != "" {
		n.receivedForwards.Add(1)
		if r.URL.Query().Get(failoverParam) != "" && spec.Priority < FailoverPriority {
			spec.Priority = FailoverPriority
		}
		w.Header().Set("X-VBus-Peer", n.self)
		n.srv.SubmitHTTP(w, r, spec)
		return
	}

	owner, targets := n.ownerFor(spec)
	if owner == n.self {
		w.Header().Set("X-VBus-Peer", n.self)
		n.srv.SubmitHTTP(w, r, spec)
		return
	}

	// Remote owner: forward along the successor chain up to (never
	// including) ourselves; if we appear in the chain we are the
	// natural last resort and run the job locally instead.
	var remote []string
	for _, t := range targets {
		if t == n.self {
			break
		}
		remote = append(remote, t)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		jobs.WriteError(w, http.StatusInternalServerError, "bad_spec", err.Error())
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	hedge := n.det.Status(owner) == StatusSuspect
	res, err := n.fwd.Submit(r.Context(), remote, body, wait, hedge)
	if err != nil {
		// Every live successor refused or vanished: degrade to local
		// compilation at failover priority rather than failing the job.
		// A partitioned or lone peer serves everything this way.
		n.localFallbacks.Add(1)
		n.opts.Logf("peer: forward of key owner %s failed (%v); running locally", owner, err)
		if spec.Priority < FailoverPriority {
			spec.Priority = FailoverPriority
		}
		w.Header().Set("X-VBus-Peer", n.self)
		w.Header().Set("X-VBus-Fallback", "local")
		n.srv.SubmitHTTP(w, r, spec)
		return
	}
	n.forwarded.Add(1)
	n.forwardFailovers.Add(int64(res.Failovers))
	w.Header().Set("X-VBus-Peer", res.Peer)
	if res.Type != "" {
		w.Header().Set("Content-Type", res.Type)
	}
	if res.RetryIn != "" {
		w.Header().Set("Retry-After", res.RetryIn)
	}
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
}

func (n *Node) handlePeerHealth(w http.ResponseWriter, r *http.Request) {
	if n.srv.Draining() {
		// A draining peer reads as failed so the ring routes around it
		// before it disappears.
		jobs.WriteError(w, http.StatusServiceUnavailable, "draining", "peer draining")
		return
	}
	writePeerJSON(w, http.StatusOK, map[string]any{"self": n.self, "status": "ready"})
}

func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxHandoffBytes))
	if err != nil {
		jobs.WriteError(w, http.StatusBadRequest, "bad_handoff", err.Error())
		return
	}
	specs, err := jobs.DecodeJournal(b)
	if err != nil {
		jobs.WriteError(w, http.StatusBadRequest, "bad_handoff", err.Error())
		return
	}
	warmed := n.srv.WarmSpecs(specs)
	n.handoffPlansRecv.Add(int64(warmed))
	writePeerJSON(w, http.StatusOK, map[string]any{"warmed": warmed})
}

// RingView is the GET /v1/peer/ring (and /healthz/ready) body: the
// node's current view of the federation.
type RingView struct {
	Self    string               `json:"self"`
	Status  string               `json:"status"`
	Members []string             `json:"members"`
	Peers   map[string]PeerState `json:"peers"`
	// Counters for the forwarding plane.
	Forwarded        int64 `json:"forwarded"`
	ForwardFailovers int64 `json:"forward_failovers"`
	LocalFallbacks   int64 `json:"local_fallbacks"`
	ReceivedForwards int64 `json:"received_forwards"`
	HandoffPlansSent int64 `json:"handoff_plans_sent"`
	HandoffPlansRecv int64 `json:"handoff_plans_received"`
}

// View snapshots the node's federation state.
func (n *Node) View() RingView {
	status := "ready"
	if n.srv.Draining() {
		status = "draining"
	}
	return RingView{
		Self:             n.self,
		Status:           status,
		Members:          n.ring.Members(),
		Peers:            n.det.Snapshot(),
		Forwarded:        n.forwarded.Load(),
		ForwardFailovers: n.forwardFailovers.Load(),
		LocalFallbacks:   n.localFallbacks.Load(),
		ReceivedForwards: n.receivedForwards.Load(),
		HandoffPlansSent: n.handoffPlansSent.Load(),
		HandoffPlansRecv: n.handoffPlansRecv.Load(),
	}
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	writePeerJSON(w, http.StatusOK, n.View())
}

// handleReady is the peer-aware readiness probe: 503 while draining,
// otherwise 200 with the ring view, so a load balancer (and the CI
// smoke) can see membership state — a dead peer shows up as "dead" in
// every survivor's readiness body.
func (n *Node) handleReady(w http.ResponseWriter, r *http.Request) {
	if n.srv.Draining() {
		jobs.WriteError(w, http.StatusServiceUnavailable, "draining", "server draining, not admitting jobs")
		return
	}
	writePeerJSON(w, http.StatusOK, n.View())
}

func writePeerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
