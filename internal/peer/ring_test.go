package peer

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("plan-key-%04d", i)
	}
	return keys
}

// TestRingDeterministicAcrossOrderings is the federation's routing
// contract: every peer builds the same ring from any spelling of the
// member set, so owners agree without exchanging ring state.
func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a, err := NewRing([]string{"n1:1", "n2:1", "n3:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3:1", "n1:1", "n2:1", "n1:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(500) {
		oa, _ := a.Owner(k, nil)
		ob, _ := b.Owner(k, nil)
		if oa != ob {
			t.Fatalf("key %s: owner %s vs %s across member orderings", k, oa, ob)
		}
	}
}

// TestRingDistribution: 64 virtual nodes per member should split a
// three-member ring within a loose factor of even — no member starved,
// none dominant.
func TestRingDistribution(t *testing.T) {
	r, err := NewRing([]string{"n1:1", "n2:1", "n3:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, k := range keys {
		o, ok := r.Owner(k, nil)
		if !ok {
			t.Fatalf("key %s: no owner", k)
		}
		counts[o]++
	}
	for m, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("member %s owns %.1f%% of keys, want 15-55%%", m, 100*frac)
		}
	}
}

// TestRingSuccessorsDistinct: the failover order is every member once,
// owner first, no repeats.
func TestRingSuccessorsDistinct(t *testing.T) {
	members := []string{"n1:1", "n2:1", "n3:1", "n4:1"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(100) {
		succ := r.Successors(k, len(members), nil)
		if len(succ) != len(members) {
			t.Fatalf("key %s: %d successors, want %d", k, len(succ), len(members))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %s: duplicate successor %s in %v", k, s, succ)
			}
			seen[s] = true
		}
		owner, _ := r.Owner(k, nil)
		if succ[0] != owner {
			t.Fatalf("key %s: successor[0]=%s, owner=%s", k, succ[0], owner)
		}
	}
}

// TestRingDeadMemberStability is consistent hashing's point: a death
// reroutes only the dead member's keys. Every key owned by a survivor
// keeps its owner, and the dead member's keys land on their next
// successor.
func TestRingDeadMemberStability(t *testing.T) {
	r, err := NewRing([]string{"n1:1", "n2:1", "n3:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const dead = "n2:1"
	live := func(m string) bool { return m != dead }
	moved := 0
	for _, k := range ringKeys(1000) {
		before, _ := r.Owner(k, nil)
		after, _ := r.Owner(k, live)
		if before != dead {
			if after != before {
				t.Fatalf("key %s owned by survivor %s moved to %s on unrelated death", k, before, after)
			}
			continue
		}
		moved++
		if after == dead {
			t.Fatalf("key %s still routed to dead member", k)
		}
		// The new owner must be the old failover successor, so warm
		// handoff and failover forwarding agree on the destination.
		succ := r.Successors(k, 2, nil)
		if len(succ) < 2 || after != succ[1] {
			t.Fatalf("key %s: rerouted to %s, want next successor %v", k, after, succ)
		}
	}
	if moved == 0 {
		t.Fatal("dead member owned no keys — distribution broken")
	}
}

// TestRingRejectsBadMembers: empty lists and empty member names are
// configuration errors, not silent one-node rings.
func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]string{"n1:1", ""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
}

// TestRingAllDead: no live member means no owner — the caller (the
// node layer) then degrades to local compilation.
func TestRingAllDead(t *testing.T) {
	r, err := NewRing([]string{"n1:1", "n2:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o, ok := r.Owner("k", func(string) bool { return false }); ok {
		t.Fatalf("owner %s under all-dead view, want none", o)
	}
}
