package peer

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/jobs"
)

// testNode is one in-process federation member: a real jobs server
// behind a real TCP listener, so forwarding, heartbeats and handoff
// all cross loopback exactly as they would in production.
type testNode struct {
	addr string
	srv  *jobs.Server
	node *Node
	hs   *http.Server
	ln   net.Listener
}

// kill is the in-process kill -9: the listener and HTTP server drop
// instantly, the gossip loop stops, and no handoff happens.
func (tn *testNode) kill() {
	tn.hs.Close()
	tn.node.Stop()
	tn.srv.Drain(context.Background())
}

// shutdown is the graceful exit: cache handoff, then drain.
func (tn *testNode) shutdown() {
	tn.node.Shutdown(context.Background())
	tn.hs.Close()
	tn.srv.Drain(context.Background())
}

func startCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range lns {
		srv := jobs.New(jobs.Config{Clusters: 1})
		nd, err := NewNode(srv, Options{
			Self:           addrs[i],
			Peers:          addrs,
			GossipInterval: 50 * time.Millisecond,
			SuspectAfter:   150 * time.Millisecond,
			DeadAfter:      400 * time.Millisecond,
			AttemptTimeout: 5 * time.Second,
			Backoff:        5 * time.Millisecond,
			HedgeDelay:     50 * time.Millisecond,
			Seed:           uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: nd.Handler()}
		go hs.Serve(lns[i])
		nd.Start()
		nodes[i] = &testNode{addr: addrs[i], srv: srv, node: nd, hs: hs, ln: lns[i]}
	}
	return nodes
}

// submitVia posts a spec through one entry node and returns the
// response, the decoded job view, and the executing peer's address
// (the X-VBus-Peer header).
func submitVia(t *testing.T, addr string, spec jobs.Spec, wait bool) (*http.Response, jobs.View, string) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	u := fmt.Sprintf("http://%s/v1/jobs", addr)
	if wait {
		u += "?wait=1"
	}
	resp, err := http.Post(u, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v jobs.View
	_ = json.Unmarshal(data, &v)
	return resp, v, resp.Header.Get("X-VBus-Peer")
}

func waitForDead(t *testing.T, survivor *testNode, victim string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if survivor.node.det.Status(victim) == StatusDead {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("survivor %s never declared %s dead", survivor.addr, victim)
}

// TestNodeForwardAndCacheAffinity: every entry node routes one plan
// key to the same owner, so the second submission — through a
// different door — hits the owner's warm cache.
func TestNodeForwardAndCacheAffinity(t *testing.T) {
	nodes := startCluster(t, 3)
	defer func() {
		for _, tn := range nodes {
			tn.kill()
		}
	}()

	spec := jobs.Spec{Source: bench.MMSource(8), Tenant: "t"}
	resp, v, owner := submitVia(t, nodes[0].addr, spec, true)
	if resp.StatusCode != http.StatusOK || v.State != jobs.StateDone {
		t.Fatalf("first submit: status %d state %s", resp.StatusCode, v.State)
	}
	if owner == "" {
		t.Fatal("no X-VBus-Peer header on routed submission")
	}
	// Enter through a node that is not the owner.
	entry := nodes[0]
	for _, tn := range nodes {
		if tn.addr != owner {
			entry = tn
			break
		}
	}
	resp, v2, owner2 := submitVia(t, entry.addr, spec, true)
	if resp.StatusCode != http.StatusOK || v2.State != jobs.StateDone {
		t.Fatalf("second submit: status %d state %s", resp.StatusCode, v2.State)
	}
	if owner2 != owner {
		t.Fatalf("same key routed to %s then %s", owner, owner2)
	}
	if !v2.CacheHit {
		t.Fatal("second submission through a different entry node missed the owner's plan cache")
	}
}

// TestNodeFailoverOnKill: hard-kill a plan key's owner; a submission
// for that key through a survivor must still complete — forwarded to
// the ring successor or compiled locally — and must run at boosted
// priority. Afterward every survivor's readiness view shows the
// victim dead.
func TestNodeFailoverOnKill(t *testing.T) {
	nodes := startCluster(t, 3)
	killed := map[string]bool{}
	defer func() {
		for _, tn := range nodes {
			if !killed[tn.addr] {
				tn.kill()
			}
		}
	}()

	spec := jobs.Spec{Source: bench.MMSource(8), Tenant: "t"}
	_, _, owner := submitVia(t, nodes[0].addr, spec, true)

	var victim *testNode
	var survivors []*testNode
	for _, tn := range nodes {
		if tn.addr == owner {
			victim = tn
		} else {
			survivors = append(survivors, tn)
		}
	}
	if victim == nil {
		t.Fatalf("owner %s is not a cluster member", owner)
	}
	victim.kill()
	killed[victim.addr] = true

	resp, v, exec := submitVia(t, survivors[0].addr, spec, true)
	if resp.StatusCode != http.StatusOK || v.State != jobs.StateDone {
		t.Fatalf("post-kill submit: status %d state %s", resp.StatusCode, v.State)
	}
	if exec == victim.addr {
		t.Fatalf("post-kill submission executed by the dead owner %s", exec)
	}
	if v.Priority != FailoverPriority {
		t.Fatalf("failover job priority %d, want %d", v.Priority, FailoverPriority)
	}

	for _, s := range survivors {
		waitForDead(t, s, victim.addr)
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz/ready", s.addr))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"dead"`) {
			t.Fatalf("survivor %s readiness after kill: status %d body %s", s.addr, resp.StatusCode, body)
		}
	}
}

// TestNodeGracefulHandoffKeepsCacheWarm: when an owner leaves
// gracefully it ships its cached plans to their new owners, so the
// first post-departure submission is already a cache hit.
func TestNodeGracefulHandoffKeepsCacheWarm(t *testing.T) {
	nodes := startCluster(t, 3)
	gone := map[string]bool{}
	defer func() {
		for _, tn := range nodes {
			if !gone[tn.addr] {
				tn.kill()
			}
		}
	}()

	spec := jobs.Spec{Source: bench.MMSource(8), Tenant: "t"}
	_, _, owner := submitVia(t, nodes[0].addr, spec, true)

	var victim *testNode
	var survivors []*testNode
	for _, tn := range nodes {
		if tn.addr == owner {
			victim = tn
		} else {
			survivors = append(survivors, tn)
		}
	}
	victim.shutdown()
	gone[victim.addr] = true

	waitForDead(t, survivors[0], victim.addr)
	resp, v, exec := submitVia(t, survivors[0].addr, spec, true)
	if resp.StatusCode != http.StatusOK || v.State != jobs.StateDone {
		t.Fatalf("post-shutdown submit: status %d state %s", resp.StatusCode, v.State)
	}
	if exec == victim.addr {
		t.Fatalf("executed by departed peer %s", exec)
	}
	if !v.CacheHit {
		t.Fatal("post-shutdown submission cold-compiled: warm handoff did not reach the new owner")
	}
}

// TestNodeLonePeerDegradesLocal is the partition contract: a peer
// whose entire member list is unreachable serves every submission by
// local compilation instead of erroring.
func TestNodeLonePeerDegradesLocal(t *testing.T) {
	// Two dead addresses: bind, learn the port, close immediately.
	deadAddrs := make([]string, 2)
	for i := range deadAddrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		deadAddrs[i] = ln.Addr().String()
		ln.Close()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := ln.Addr().String()
	srv := jobs.New(jobs.Config{Clusters: 1})
	nd, err := NewNode(srv, Options{
		Self:           self,
		Peers:          append(deadAddrs, self),
		GossipInterval: 50 * time.Millisecond,
		AttemptTimeout: time.Second,
		Backoff:        5 * time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: nd.Handler()}
	go hs.Serve(ln)
	nd.Start()
	defer func() {
		hs.Close()
		nd.Stop()
		srv.Drain(context.Background())
	}()

	// Submit several distinct programs: whatever their nominal owners,
	// all must complete here.
	for _, n := range []int{8, 10, 12} {
		spec := jobs.Spec{Source: bench.MMSource(n), Tenant: "t"}
		resp, v, exec := submitVia(t, self, spec, true)
		if resp.StatusCode != http.StatusOK || v.State != jobs.StateDone {
			t.Fatalf("MM(%d): status %d state %s", n, resp.StatusCode, v.State)
		}
		if exec != self {
			t.Fatalf("MM(%d): executor %s, want lone peer %s", n, exec, self)
		}
	}
	if nd.View().LocalFallbacks == 0 && nd.forwarded.Load() > 0 {
		t.Fatal("lone peer forwarded to dead members without falling back")
	}
}

// TestNodeShutdownLeaksNoGoroutines is the peer-mode leak census:
// heartbeat loops, probe goroutines and forwarder attempts must all be
// gone after the cluster stops.
func TestNodeShutdownLeaksNoGoroutines(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	nodes := startCluster(t, 3)
	spec := jobs.Spec{Source: bench.MMSource(8), Tenant: "t"}
	for _, tn := range nodes {
		if resp, v, _ := submitVia(t, tn.addr, spec, true); resp.StatusCode != http.StatusOK || v.State != jobs.StateDone {
			t.Fatalf("submit via %s: status %d state %s", tn.addr, resp.StatusCode, v.State)
		}
	}
	// One graceful, one hard, one graceful — both exits must clean up.
	nodes[0].shutdown()
	nodes[1].kill()
	nodes[2].shutdown()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+8 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after shutdown (allowed +8)", before, runtime.NumGoroutine())
}
