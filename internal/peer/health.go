package peer

import (
	"sync"
	"time"
)

// Status is a peer's position in the failure detector's lifecycle.
type Status string

const (
	// StatusAlive: heartbeats are arriving inside the suspect window.
	StatusAlive Status = "alive"
	// StatusSuspect: probes have been failing (or silent) past
	// SuspectAfter — the peer stays in the ring as an owner, but
	// forwarding hedges against its successor instead of waiting.
	StatusSuspect Status = "suspect"
	// StatusDead: silent past DeadAfter (or enough consecutive probe
	// failures). The peer leaves the routing view: its keys belong to
	// their ring successors until it answers again.
	StatusDead Status = "dead"
)

// failsToDead is the consecutive-failure shortcut to StatusDead: a
// peer refusing connections outright (process killed) is declared dead
// after this many failed probes even before DeadAfter elapses, keeping
// the failover window bounded by probes rather than wall time alone.
const failsToDead = 3

// Transition records one peer's status change from a sweep or an
// observation — the node layer reacts to these (logging, warm-cache
// handoff on revival).
type Transition struct {
	Peer string
	From Status
	To   Status
}

// Detector is the heartbeat failure detector. Every verdict is a pure
// function of observation timestamps and the injected clock, so tests
// drive it deterministically by stepping a fake clock; the live node
// feeds it from its gossip loop and from forwarding outcomes.
type Detector struct {
	mu           sync.Mutex
	suspectAfter time.Duration
	deadAfter    time.Duration
	now          func() time.Time
	peers        map[string]*peerHealth
}

type peerHealth struct {
	status Status
	lastOK time.Time
	fails  int
}

// PeerState is one peer's externally visible health snapshot.
type PeerState struct {
	Status Status `json:"status"`
	// SilentMs is how long since the last successful observation.
	SilentMs float64 `json:"silent_ms"`
	// Fails is the current consecutive probe-failure count.
	Fails int `json:"fails,omitempty"`
}

// NewDetector tracks the given peers. Peers start alive with a full
// grace window — a cold-started federation must not declare everyone
// dead before the first probe round completes.
func NewDetector(peers []string, suspectAfter, deadAfter time.Duration) *Detector {
	if suspectAfter <= 0 {
		suspectAfter = 1500 * time.Millisecond
	}
	if deadAfter <= suspectAfter {
		deadAfter = 4 * suspectAfter
	}
	d := &Detector{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		now:          time.Now,
		peers:        map[string]*peerHealth{},
	}
	start := d.now()
	for _, p := range peers {
		d.peers[p] = &peerHealth{status: StatusAlive, lastOK: start}
	}
	return d
}

// setClock injects a deterministic clock (tests only).
func (d *Detector) setClock(now func() time.Time) {
	d.mu.Lock()
	d.now = now
	d.mu.Unlock()
}

// ObserveOK records a successful probe or forward: the peer is alive
// again whatever it was before. The returned transition is non-nil
// when this revived a suspect or dead peer.
func (d *Detector) ObserveOK(peer string) *Transition {
	d.mu.Lock()
	defer d.mu.Unlock()
	ph, ok := d.peers[peer]
	if !ok {
		return nil
	}
	ph.lastOK = d.now()
	ph.fails = 0
	if ph.status == StatusAlive {
		return nil
	}
	tr := &Transition{Peer: peer, From: ph.status, To: StatusAlive}
	ph.status = StatusAlive
	return tr
}

// ObserveFail records a failed probe or forward. Failures escalate
// immediately to suspect (no reason to keep trusting a peer that just
// refused a connection) and to dead after failsToDead consecutive
// misses, without waiting for the wall-clock windows.
func (d *Detector) ObserveFail(peer string) *Transition {
	d.mu.Lock()
	defer d.mu.Unlock()
	ph, ok := d.peers[peer]
	if !ok {
		return nil
	}
	ph.fails++
	next := StatusSuspect
	if ph.fails >= failsToDead || d.now().Sub(ph.lastOK) >= d.deadAfter {
		next = StatusDead
	}
	if next == ph.status || (ph.status == StatusDead && next == StatusSuspect) {
		return nil
	}
	tr := &Transition{Peer: peer, From: ph.status, To: next}
	ph.status = next
	return tr
}

// Sweep re-evaluates every peer against the clock: silent past
// SuspectAfter becomes suspect, past DeadAfter becomes dead. Called
// each gossip tick; returns the transitions it caused.
func (d *Detector) Sweep() []Transition {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	var out []Transition
	for name, ph := range d.peers {
		silent := now.Sub(ph.lastOK)
		next := ph.status
		switch {
		case silent >= d.deadAfter:
			next = StatusDead
		case silent >= d.suspectAfter && ph.status == StatusAlive:
			next = StatusSuspect
		}
		if next != ph.status {
			out = append(out, Transition{Peer: name, From: ph.status, To: next})
			ph.status = next
		}
	}
	return out
}

// Status returns the peer's current status (unknown peers are dead:
// never route to an address outside the ring).
func (d *Detector) Status(peer string) Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ph, ok := d.peers[peer]; ok {
		return ph.status
	}
	return StatusDead
}

// Alive reports whether the peer may own keys (alive or suspect — a
// suspect peer keeps its keys until it is declared dead, so a brief
// network blip does not reshuffle the ring).
func (d *Detector) Alive(peer string) bool {
	return d.Status(peer) != StatusDead
}

// Snapshot returns every tracked peer's state.
func (d *Detector) Snapshot() map[string]PeerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	out := make(map[string]PeerState, len(d.peers))
	for name, ph := range d.peers {
		out[name] = PeerState{
			Status:   ph.status,
			SilentMs: float64(now.Sub(ph.lastOK)) / float64(time.Millisecond),
			Fails:    ph.fails,
		}
	}
	return out
}
