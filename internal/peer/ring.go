// Package peer federates N vbserve processes into one control plane:
// plan keys are placed on a consistent-hash ring, jobs are forwarded
// over HTTP to their key's owner, and a heartbeat failure detector
// (alive → suspect → dead, bounded timeouts, injected clocks under
// test) keeps routing away from peers that stopped answering. The
// robustness contract mirrors the data plane's: on owner death,
// forwarding fails over along the ring's successors with bounded
// hedged retries and deterministic backoff jitter; membership changes
// trigger warm-cache handoff in the VBPJ journal format; and a
// partitioned or lone peer degrades to local compilation instead of
// erroring.
package peer

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultReplicas is the virtual-node count per member: enough that a
// three-member ring splits key space within a few percent of evenly,
// small enough that ring construction is trivial.
const defaultReplicas = 64

// Ring is the consistent-hash placement of plan keys onto federation
// members. The ring itself is immutable — it always contains every
// configured member — and liveness is applied at lookup time through a
// predicate, so two peers with the same member list and the same view
// of who is alive route every key identically without ever exchanging
// ring state.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds the ring over the member list (order-insensitive:
// members are sorted and deduplicated, so every peer builds the same
// ring from any spelling of the same set). replicas <= 0 uses the
// default virtual-node count.
func NewRing(members []string, replicas int) (*Ring, error) {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	seen := map[string]bool{}
	var uniq []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("peer: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("peer: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq}
	for _, m := range uniq {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, v), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// pointHash places virtual node v of a member on the ring: the first 8
// bytes of SHA-256 over "member#v", matching the key hash's digest so
// placement stays uniform.
func pointHash(member string, v int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", member, v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a plan key (already a hex SHA-256 string) on the
// ring by hashing it again — cheap, and independent of the key's own
// encoding.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members lists the configured members, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Successors walks the ring clockwise from key's position and returns
// the first n distinct members for which live() is true (nil live =
// every member). The first entry is the key's owner under the given
// liveness view; the rest are its failover order. Consistent-hash
// stability follows from the walk: a member's death only reroutes the
// keys it owned — every other key meets its old owner first.
func (r *Ring) Successors(key string, n int, live func(string) bool) []string {
	if n <= 0 {
		return nil
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []string
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		if live == nil || live(p.member) {
			out = append(out, p.member)
		}
	}
	return out
}

// Owner returns the key's owner under the given liveness view, or
// ok=false when no member is live.
func (r *Ring) Owner(key string, live func(string) bool) (string, bool) {
	s := r.Successors(key, 1, live)
	if len(s) == 0 {
		return "", false
	}
	return s[0], true
}
