package peer

import (
	"testing"
	"time"
)

// fakeClock steps time deterministically — every detector verdict in
// these tests is a pure function of the observation log and this clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func clockedDetector(peers []string, suspect, dead time.Duration) (*Detector, *fakeClock) {
	clk := newFakeClock()
	d := NewDetector(peers, suspect, dead)
	d.setClock(clk.now)
	// Re-anchor the initial grace window on the fake clock.
	for _, p := range peers {
		d.ObserveOK(p)
	}
	return d, clk
}

// TestDetectorLifecycle walks alive → suspect → dead on pure silence,
// then revival, with an injected clock.
func TestDetectorLifecycle(t *testing.T) {
	d, clk := clockedDetector([]string{"p1"}, 100*time.Millisecond, 400*time.Millisecond)

	if st := d.Status("p1"); st != StatusAlive {
		t.Fatalf("initial status %s, want alive", st)
	}
	clk.advance(50 * time.Millisecond)
	if trs := d.Sweep(); len(trs) != 0 {
		t.Fatalf("transitions inside suspect window: %v", trs)
	}
	clk.advance(60 * time.Millisecond) // 110ms silent > 100ms
	trs := d.Sweep()
	if len(trs) != 1 || trs[0].To != StatusSuspect {
		t.Fatalf("suspect transition: got %v", trs)
	}
	if d.Alive("p1") != true {
		t.Fatal("suspect peer must keep ring ownership (Alive=true)")
	}
	clk.advance(300 * time.Millisecond) // 410ms silent > 400ms
	trs = d.Sweep()
	if len(trs) != 1 || trs[0].From != StatusSuspect || trs[0].To != StatusDead {
		t.Fatalf("dead transition: got %v", trs)
	}
	if d.Alive("p1") {
		t.Fatal("dead peer still alive in routing view")
	}
	// Revival: one good probe brings it straight back.
	tr := d.ObserveOK("p1")
	if tr == nil || tr.From != StatusDead || tr.To != StatusAlive {
		t.Fatalf("revival transition: got %v", tr)
	}
	if !d.Alive("p1") {
		t.Fatal("revived peer not alive")
	}
}

// TestDetectorConsecutiveFailShortcut: a peer refusing connections is
// dead after failsToDead misses, without waiting out DeadAfter.
func TestDetectorConsecutiveFailShortcut(t *testing.T) {
	d, _ := clockedDetector([]string{"p1"}, time.Hour, 2*time.Hour)

	tr := d.ObserveFail("p1")
	if tr == nil || tr.To != StatusSuspect {
		t.Fatalf("first failure: got %v, want suspect", tr)
	}
	if tr := d.ObserveFail("p1"); tr != nil {
		t.Fatalf("second failure: unexpected transition %v", tr)
	}
	tr = d.ObserveFail("p1")
	if tr == nil || tr.To != StatusDead {
		t.Fatalf("failure #%d: got %v, want dead", failsToDead, tr)
	}
	// Further failures on a dead peer are not transitions.
	if tr := d.ObserveFail("p1"); tr != nil {
		t.Fatalf("failure after death: unexpected transition %v", tr)
	}
	// Success resets the failure count entirely.
	d.ObserveOK("p1")
	if tr := d.ObserveFail("p1"); tr == nil || tr.To != StatusSuspect {
		t.Fatalf("failure after revival: got %v, want fresh suspect", tr)
	}
}

// TestDetectorUnknownPeer: addresses outside the configured set are
// never routable and produce no transitions.
func TestDetectorUnknownPeer(t *testing.T) {
	d, _ := clockedDetector([]string{"p1"}, time.Second, 4*time.Second)
	if d.Alive("stranger") {
		t.Fatal("unknown peer reported alive")
	}
	if tr := d.ObserveOK("stranger"); tr != nil {
		t.Fatalf("unknown peer ObserveOK transition: %v", tr)
	}
	if tr := d.ObserveFail("stranger"); tr != nil {
		t.Fatalf("unknown peer ObserveFail transition: %v", tr)
	}
}

// TestDetectorSnapshot exposes silence and failure counters for the
// ring view endpoint.
func TestDetectorSnapshot(t *testing.T) {
	d, clk := clockedDetector([]string{"p1", "p2"}, 100*time.Millisecond, 400*time.Millisecond)
	clk.advance(150 * time.Millisecond)
	d.ObserveOK("p2")
	d.Sweep()
	snap := d.Snapshot()
	if snap["p1"].Status != StatusSuspect || snap["p1"].SilentMs < 150 {
		t.Fatalf("p1 snapshot: %+v", snap["p1"])
	}
	if snap["p2"].Status != StatusAlive || snap["p2"].SilentMs != 0 {
		t.Fatalf("p2 snapshot: %+v", snap["p2"])
	}
}
