package peer

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Forward query parameters. A forwarded request is always executed by
// its receiver — never re-forwarded — so divergent ring views during a
// membership change can cost an extra hop's worth of cache locality
// but can never loop. failover marks attempts past the owner, which
// the receiver admits at boosted priority (recovery work preempts
// bulk).
const (
	forwardedParam = "forwarded"
	failoverParam  = "failover"
)

// ForwardResult is the upstream peer's verbatim answer: the caller
// relays status and body to its own client, so a forwarded submission
// looks exactly like a local one (plus the X-VBus-Peer header naming
// the executor).
type ForwardResult struct {
	Peer      string
	Status    int
	Body      []byte
	Type      string // upstream Content-Type
	RetryIn   string // upstream Retry-After, if any
	Attempts  int
	Failovers int // attempts that went past the ring owner
}

// Forwarder posts job submissions to remote peers with bounded
// failover: targets are tried in ring-successor order, each failed
// attempt (transport error, 502, or 503 from a draining peer) feeds
// the failure detector and advances to the next target after a
// backoff with deterministic splitmix64 jitter. With hedging enabled
// (the node hedges when the owner is already suspect) the next target
// is raced after a hedge delay instead of waiting for the current
// attempt to fail, bounding failover latency by the hedge delay
// rather than the attempt timeout.
type Forwarder struct {
	client         *http.Client
	attemptTimeout time.Duration
	backoff        time.Duration
	hedgeDelay     time.Duration
	onResult       func(peer string, ok bool)
	salt           atomic.Uint64
}

// NewForwarder builds the forwarding client. onResult (may be nil)
// receives every attempt's outcome — the node wires it to the failure
// detector so forwarding failures accelerate suspicion without
// waiting for the next gossip tick.
func NewForwarder(attemptTimeout, backoff, hedgeDelay time.Duration, seed uint64, onResult func(string, bool)) *Forwarder {
	if attemptTimeout <= 0 {
		attemptTimeout = 30 * time.Second
	}
	if backoff <= 0 {
		backoff = 15 * time.Millisecond
	}
	if hedgeDelay <= 0 {
		hedgeDelay = 250 * time.Millisecond
	}
	f := &Forwarder{
		client:         &http.Client{},
		attemptTimeout: attemptTimeout,
		backoff:        backoff,
		hedgeDelay:     hedgeDelay,
		onResult:       onResult,
	}
	f.salt.Store(seed)
	return f
}

type attemptResult struct {
	idx    int
	peer   string
	status int
	body   []byte
	ctype  string
	retry  string
	err    error
}

// retryable reports whether an attempt's outcome should advance to
// the next ring successor: transport failure, a dead gateway, or a
// draining peer. Everything else — including 400s and 429s — is a
// valid answer from a live owner and is relayed, not retried (a
// rate-limit verdict must not be laundered through failover).
func (a attemptResult) retryable() bool {
	return a.err != nil || a.status == http.StatusBadGateway || a.status == http.StatusServiceUnavailable
}

// jitter returns d ± up to half of d, deterministically from the
// forwarder's splitmix64 sequence (the PR 8 discipline: replayable
// schedules, no lockstep retry bursts).
func (f *Forwarder) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	h := splitmix64(f.salt.Add(1))
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return d/2 + time.Duration(h%(2*half+1))
}

// Submit forwards body (a JSON job spec) to the first target that
// answers, walking targets in order with bounded retries. wait relays
// the client's ?wait=1; hedge races the next target after hedgeDelay
// instead of waiting for a failure. Returns an error only when every
// target failed — the caller then degrades to local compilation.
func (f *Forwarder) Submit(ctx context.Context, targets []string, body []byte, wait, hedge bool) (*ForwardResult, error) {
	if len(targets) == 0 {
		return nil, errors.New("peer: no live forward targets")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, len(targets))
	timer := time.NewTimer(0) // launch the first attempt immediately
	defer timer.Stop()
	launched, pending, failovers := 0, 0, 0
	var lastErr error
	for {
		select {
		case <-timer.C:
			if launched >= len(targets) {
				break
			}
			idx := launched
			launched++
			pending++
			go f.attempt(ctx, idx, targets[idx], body, wait, results)
			if hedge && launched < len(targets) {
				// Race the next successor after the hedge delay even if
				// this attempt is still in flight.
				timer.Reset(f.jitter(f.hedgeDelay << (launched - 1)))
			}
		case res := <-results:
			pending--
			if !res.retryable() {
				if f.onResult != nil {
					f.onResult(res.peer, true)
				}
				if res.idx > 0 {
					failovers++
				}
				return &ForwardResult{
					Peer:      res.peer,
					Status:    res.status,
					Body:      res.body,
					Type:      res.ctype,
					RetryIn:   res.retry,
					Attempts:  launched,
					Failovers: failovers,
				}, nil
			}
			if f.onResult != nil {
				f.onResult(res.peer, false)
			}
			if res.err != nil {
				lastErr = fmt.Errorf("%s: %w", res.peer, res.err)
			} else {
				lastErr = fmt.Errorf("%s: upstream status %d", res.peer, res.status)
			}
			if res.idx > 0 {
				failovers++
			}
			if launched == len(targets) && pending == 0 {
				return nil, fmt.Errorf("peer: all %d forward attempts failed: %w", launched, lastErr)
			}
			if launched < len(targets) {
				// A failure advances to the next successor after a
				// jittered backoff that doubles per attempt.
				timer.Reset(f.jitter(f.backoff << (launched - 1)))
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt is one POST to one peer, bounded by the attempt timeout.
func (f *Forwarder) attempt(ctx context.Context, idx int, target string, body []byte, wait bool, out chan<- attemptResult) {
	actx, cancel := context.WithTimeout(ctx, f.attemptTimeout)
	defer cancel()
	url := fmt.Sprintf("http://%s/v1/jobs?%s=1", target, forwardedParam)
	if idx > 0 {
		url += "&" + failoverParam + "=1"
	}
	if wait {
		url += "&wait=1"
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		out <- attemptResult{idx: idx, peer: target, err: err}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		out <- attemptResult{idx: idx, peer: target, err: err}
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		out <- attemptResult{idx: idx, peer: target, err: err}
		return
	}
	out <- attemptResult{
		idx:    idx,
		peer:   target,
		status: resp.StatusCode,
		body:   b,
		ctype:  resp.Header.Get("Content-Type"),
		retry:  resp.Header.Get("Retry-After"),
	}
}

// splitmix64 is the stateless mixer shared with the jobs layer's
// jitter discipline: the same sequence index always yields the same
// jitter, so sweeps replay exactly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
