package jobs

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vbuscluster/internal/bench"
)

// TestJournalTornAtEveryByte is the exhaustive torn-write sweep: a
// journal cut at ANY byte offset must be refused whole. The all-or-
// nothing contract is what makes the journal safe as both a crash
// recovery file and the peer handoff wire format — a half-received
// handoff must never warm half a cache silently.
func TestJournalTornAtEveryByte(t *testing.T) {
	full := journalBytes([]Spec{
		{Source: "A", Procs: 2, Grain: "fine", Fabric: "vbus"},
		{Source: "B", Procs: 4, Grain: "coarse", Fabric: "vbus"},
		{Source: "C", Procs: 8, Grain: "fine", Fabric: "ideal"},
	})
	if specs, err := decodeJournal(full); err != nil || len(specs) != 3 {
		t.Fatalf("intact journal: %d specs, err %v", len(specs), err)
	}
	for cut := 0; cut < len(full); cut++ {
		specs, err := decodeJournal(full[:cut])
		if err == nil {
			t.Fatalf("journal truncated at byte %d/%d accepted (%d specs)", cut, len(full), len(specs))
		}
		if len(specs) != 0 {
			t.Fatalf("journal truncated at byte %d returned %d partial specs alongside error", cut, len(specs))
		}
		if !errors.Is(err, ErrJournalTruncated) && !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("journal truncated at byte %d: unexpected error class %v", cut, err)
		}
	}
}

// TestWarmCacheRefusesTornFile: a torn on-disk journal warms nothing —
// zero entries, named error — rather than replaying the readable
// prefix.
func TestWarmCacheRefusesTornFile(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "plans.vbpj")

	s1 := New(Config{Clusters: 1})
	j, err := s1.Submit(Spec{Source: bench.MMSource(16), Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveCache(journal); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, full[:len(full)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{Clusters: 1})
	defer s2.Drain(context.Background())
	n, err := s2.WarmCache(journal)
	if err == nil || n != 0 {
		t.Fatalf("torn journal warmed %d plans, err %v — want 0 and an error", n, err)
	}
	if !errors.Is(err, ErrJournalCorrupt) && !errors.Is(err, ErrJournalTruncated) {
		t.Fatalf("torn journal error class: %v", err)
	}
	if got := len(s2.CachedSpecs()); got != 0 {
		t.Fatalf("cache holds %d entries after refused warm, want 0", got)
	}
}

// TestWarmCacheRefusesFutureVersion: a syntactically valid v2 journal
// (correct magic and CRC) is refused with the named version error —
// format evolution must be explicit, not a silent misparse.
func TestWarmCacheRefusesFutureVersion(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "plans.vbpj")
	v2 := []byte(journalMagic)
	v2 = appendU32(v2, JournalVersion+1)
	v2 = appendU32(v2, 0)
	v2 = appendU32(v2, crcChecksum(v2))
	if err := os.WriteFile(journal, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Clusters: 1})
	defer s.Drain(context.Background())
	n, err := s.WarmCache(journal)
	if !errors.Is(err, ErrJournalBadVersion) || n != 0 {
		t.Fatalf("v2 journal: warmed %d, err %v — want 0 and ErrJournalBadVersion", n, err)
	}
}
