package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"vbuscluster/internal/core"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/interp"
	"vbuscluster/internal/mpi"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// Config sizes the server.
type Config struct {
	// Clusters is the number of concurrent simulated clusters — worker
	// goroutines executing jobs (default 2). Each job still runs its
	// ranks over the interpreter's own bounded pool, so total host
	// parallelism is Clusters × per-run workers.
	Clusters int
	// QueueDepth bounds admitted-but-not-running jobs across all
	// tenants (default 64). Beyond it, submissions shed with
	// ErrQueueFull.
	QueueDepth int
	// CacheEntries sizes the compiled-plan LRU (default 32 plans).
	CacheEntries int
	// RankWorkers is each run's rank-scheduler pool size
	// (core.Options.Workers semantics: 0 = GOMAXPROCS).
	RankWorkers int
	// DefaultFabric is the backend for specs that omit one ("" = vbus).
	DefaultFabric string
	// TenantWeights overrides fair-share weights (default 1 each).
	TenantWeights map[string]int

	// DefaultDeadline bounds jobs whose spec omits deadline_ms
	// (0 = unbounded).
	DefaultDeadline time.Duration
	// MaxDeadline caps every job's deadline, requested or defaulted
	// (0 = no cap).
	MaxDeadline time.Duration
	// MaxRetries bounds re-executions of a transiently failed job
	// (fault-injected cluster errors). Default 2; negative disables
	// retries entirely.
	MaxRetries int
	// RetryBackoff is the base retry delay, doubled per attempt with
	// deterministic jitter (default 25ms).
	RetryBackoff time.Duration
	// BreakerThreshold is how many consecutive worker panics on one
	// plan key quarantine that key (default 2; negative disables the
	// breaker).
	BreakerThreshold int
	// RetainJobs bounds the finished-job table (default 4096).
	RetainJobs int
	// RatePerSec is the default per-tenant sustained admission rate
	// (token bucket, applied before the fair queue; 0 = unlimited).
	RatePerSec float64
	// RateBurst is the token-bucket size (default 2×RatePerSec, min 1).
	RateBurst int
	// TenantRates overrides RatePerSec per tenant (0 = that tenant is
	// unlimited).
	TenantRates map[string]float64
}

func (c Config) withDefaults() Config {
	if c.Clusters == 0 {
		c.Clusters = 2
	}
	if c.Clusters < 1 {
		c.Clusters = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 32
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 2
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = 4096
	}
	if c.RetainJobs < 1 {
		c.RetainJobs = 1
	}
	return c
}

// Server is the long-lived compile-and-run service. New starts its
// workers immediately; Drain retires it.
type Server struct {
	cfg     Config
	cache   *PlanCache
	queue   *Queue
	breaker *breaker
	limiter *rateLimiter
	start   time.Time

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int64
	// retired is the FIFO of finished job IDs; beyond cfg.RetainJobs
	// the oldest records (and their trace recorders) are dropped so a
	// long-lived server's job table stays bounded.
	retired []string

	// flights deduplicates concurrent cold compiles of one plan key:
	// the first submission compiles, contemporaries wait and share.
	flightMu sync.Mutex
	flights  map[string]*flight

	draining  atomic.Bool
	workersWG sync.WaitGroup
	// retryWG tracks jobs parked in retry-backoff timers: every Add
	// happens inside a worker (before workersWG drains), so Drain can
	// safely wait on it after the workers exit.
	retryWG sync.WaitGroup

	submitted       atomic.Int64
	completed       atomic.Int64
	failed          atomic.Int64
	shed            atomic.Int64
	cancelled       atomic.Int64
	quarantined     atomic.Int64
	retries         atomic.Int64
	panicsRecovered atomic.Int64
	breakerTrips    atomic.Int64
	rateLimited     atomic.Int64
	workersReplaced atomic.Int64
	retrySalt       atomic.Uint64

	compileCold sampler
	compileHit  sampler
	runLat      sampler
	totalLat    sampler
}

type flight struct {
	done chan struct{}
	cc   *core.Compiled
	wall time.Duration
	err  error
}

// New builds and starts a server: Config.Clusters workers begin
// waiting on the queue immediately.
func New(cfg Config) *Server {
	s := newServer(cfg)
	s.startWorkers(s.cfg.Clusters)
	return s
}

// newServer builds the server without starting workers (tests admit
// jobs deterministically before dispatch begins).
func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		cache:   NewPlanCache(cfg.CacheEntries),
		queue:   NewQueue(cfg.QueueDepth, cfg.TenantWeights),
		breaker: newBreaker(cfg.BreakerThreshold),
		limiter: newRateLimiter(cfg.RatePerSec, cfg.RateBurst, cfg.TenantRates),
		start:   time.Now(),
		jobs:    map[string]*Job{},
		flights: map[string]*flight{},
	}
}

func (s *Server) startWorkers(n int) {
	for i := 0; i < n; i++ {
		s.workersWG.Add(1)
		go func() {
			defer s.workersWG.Done()
			s.worker()
		}()
	}
}

// Submit validates, admits and enqueues a job. ErrQueueFull and
// ErrRateLimited mean the caller should retry later (HTTP 429);
// ErrDraining means the server is shutting down (HTTP 503). Any other
// error is a rejected spec (HTTP 400).
func (s *Server) Submit(spec Spec) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	spec, err := spec.normalized(s.cfg.DefaultFabric)
	if err != nil {
		return nil, err
	}
	// Admission control before the fair queue: a tenant over its token
	// budget never occupies a queue slot.
	if !s.limiter.allow(spec.Tenant) {
		s.rateLimited.Add(1)
		s.queue.noteRateLimited(spec.Tenant)
		return nil, ErrRateLimited
	}
	deadline := time.Duration(spec.DeadlineMs) * time.Millisecond
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (deadline == 0 || deadline > s.cfg.MaxDeadline) {
		deadline = s.cfg.MaxDeadline
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if deadline > 0 {
		// The clock starts at admission: queueing counts against the
		// deadline, so a job stuck behind a storm is cancelled rather
		// than executed arbitrarily late.
		ctx, cancel = context.WithTimeout(context.Background(), deadline)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	j := &Job{
		Spec:      spec,
		Key:       PlanKey(spec),
		ctx:       ctx,
		cancel:    cancel,
		faults:    spec.faultSpec(),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	s.nextID++
	j.seq = s.nextID
	j.ID = fmt.Sprintf("j-%06d", s.nextID)
	s.jobs[j.ID] = j
	s.mu.Unlock()
	if err := s.queue.Enqueue(j); err != nil {
		cancel()
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		if err == ErrQueueFull {
			s.shed.Add(1)
		}
		return nil, err
	}
	s.submitted.Add(1)
	return j, nil
}

// NormalizeSpec applies the server's defaults and validation to a
// spec without admitting it. The peer layer uses it to compute the
// canonical plan key (PlanKey requires the defaulted fields) before
// deciding which federation member owns the job.
func (s *Server) NormalizeSpec(spec Spec) (Spec, error) {
	return spec.normalized(s.cfg.DefaultFabric)
}

// Job looks up an admitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel aborts a job by ID. A still-queued job is removed from the
// queue and finalized "cancelled" immediately; a running job's context
// is cancelled and the run unwinds with an mpi.ErrCancelled error; a
// job awaiting retry is cancelled when its backoff timer fires.
// Cancelling an already-terminal job is a no-op. ok=false means no
// such job.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	if s.queue.Remove(j) {
		s.refundIfNeverRan(j)
		s.finalize(j, StateCancelled, errors.New("jobs: cancelled by request"))
		return j, true
	}
	j.cancel()
	return j, true
}

// worker is one simulated cluster: it executes queued jobs until the
// queue closes and drains. A job that kills its worker (an injected
// killworker fault, or the unwound stack of a recovered panic) makes
// process return true: the worker replaces itself with a fresh
// goroutine and exits, so the serving capacity stays Config.Clusters.
func (s *Server) worker() {
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		if s.process(j) {
			s.workersReplaced.Add(1)
			s.startWorkers(1)
			return
		}
	}
}

// process runs one job end to end: admission-time checks (expired
// deadline, quarantined plan key, injected server faults), plan
// acquisition (cache hit, or cold compile deduplicated per key), then
// an isolated, panic-guarded run with the job's own recorder and
// context. The return value tells the worker to replace itself.
func (s *Server) process(j *Job) (killWorker bool) {
	// A deadline or cancellation that expired while the job sat queued.
	if j.ctx.Err() != nil {
		s.refundIfNeverRan(j)
		s.finalize(j, StateCancelled, fmt.Errorf("jobs: cancelled before start: %w", j.ctx.Err()))
		return false
	}
	// Quarantined plan keys fail fast instead of re-crashing a worker.
	if s.breaker.isTripped(j.Key) {
		s.finalize(j, StateQuarantined,
			errors.New("jobs: plan key quarantined after repeated panics (circuit breaker open)"))
		return false
	}
	f := j.faults

	// killworker=N: the job assassinates its worker N times, re-queuing
	// itself each time (through the fair queue, so the kills are charged
	// to its tenant), then runs normally — the chaos sweep's proof that
	// worker replacement keeps capacity intact.
	if f != nil && f.KillWorker > 0 {
		j.mu.Lock()
		kill := j.kills < f.KillWorker
		if kill {
			j.kills++
			j.state = StateRetrying
		}
		j.mu.Unlock()
		if kill {
			if err := s.queue.Enqueue(j); err != nil {
				s.finalize(j, StateFailed, fmt.Errorf("jobs: requeue after worker kill: %w", err))
			}
			return true
		}
	}

	j.mu.Lock()
	j.state = StateRunning
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.attempts++
	attempt := j.attempts
	j.mu.Unlock()

	// stalljob=D: wall-clock stall before the run, interruptible by the
	// job's deadline — the chaos sweep's hung-job stand-in.
	if f != nil && f.StallJob > 0 {
		select {
		case <-time.After(wallDuration(f.StallJob)):
		case <-j.ctx.Done():
			s.finalize(j, StateCancelled, fmt.Errorf("jobs: cancelled during stall: %w", j.ctx.Err()))
			return false
		}
	}

	t0 := time.Now()
	cc, hit, err := s.plan(j.Spec, j.Key)
	compileWall := time.Since(t0)
	if hit {
		s.compileHit.add(compileWall)
	} else if err == nil {
		s.compileCold.add(compileWall)
	}
	if err != nil {
		j.mu.Lock()
		j.compile = compileWall
		j.mu.Unlock()
		s.finalize(j, StateFailed, err)
		return false
	}

	var rec *trace.Recorder
	if j.Spec.Trace {
		rec = trace.New()
	}
	var inj *fault.Injector
	if f != nil {
		// Per-attempt seed offset: a retry of a probabilistically
		// faulty run draws a fresh (but still deterministic) fault
		// schedule instead of replaying the exact failure.
		fs := *f
		if fs.Seed != 0 {
			fs.Seed += uint64(attempt - 1)
		}
		inj = fault.New(&fs)
	}

	// The run is panic-guarded: a poison spec (or a compiler/runtime
	// bug) marks this job failed with the recovered stack instead of
	// crashing the server, and the worker replaces itself.
	var res *interp.Result
	var runErr error
	panicked := false
	r0 := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				runErr = fmt.Errorf("jobs: panic in job %s (attempt %d): %v\n%s",
					j.ID, attempt, r, debug.Stack())
			}
		}()
		if f != nil && f.PanicJob {
			panic("poison spec: injected panic (panicjob=1)")
		}
		res, runErr = cc.RunParallelWith(j.Spec.runMode(), core.RunParams{
			Recorder: rec,
			Workers:  s.cfg.RankWorkers,
			Ctx:      j.ctx,
			Faults:   inj,
		})
	}()
	runWall := time.Since(r0)

	j.mu.Lock()
	j.compile = compileWall
	j.run = runWall
	j.cacheHit = hit
	j.mu.Unlock()

	if panicked {
		s.panicsRecovered.Add(1)
		if s.breaker.note(j.Key) {
			s.breakerTrips.Add(1)
		}
		s.finalize(j, StateFailed, runErr)
		return true
	}
	if runErr != nil {
		switch disposition(j, runErr) {
		case StateCancelled:
			s.finalize(j, StateCancelled, fmt.Errorf("run: %w", runErr))
		case StateRetrying:
			if attempt <= s.cfg.MaxRetries && !s.draining.Load() {
				s.scheduleRetry(j, attempt, runErr)
			} else {
				s.finalize(j, StateFailed,
					fmt.Errorf("run: %w (after %d attempts)", runErr, attempt))
			}
		default:
			s.finalize(j, StateFailed, fmt.Errorf("run: %w", runErr))
		}
		return false
	}

	s.runLat.add(runWall)
	s.breaker.reset(j.Key)
	j.mu.Lock()
	j.virtual = res.Elapsed.Seconds()
	j.grain = cc.Grain().String()
	j.output = res.Output
	j.rec = rec
	j.err = nil // clear any transient-failure cause from earlier attempts
	j.mu.Unlock()
	s.finalize(j, StateDone, nil)
	return false
}

// disposition classifies a run error: cancellation (the job's context
// fired, surfacing as mpi.ErrCancelled), transient cluster faults
// (retryable), or a permanent failure.
func disposition(j *Job, err error) State {
	var me *mpi.Error
	if errors.As(err, &me) {
		switch me.Kind {
		case mpi.ErrCancelled:
			return StateCancelled
		case mpi.ErrTimeout, mpi.ErrCrashed, mpi.ErrPeerCrashed, mpi.ErrRevoked:
			return StateRetrying
		}
	}
	if j.ctx.Err() != nil {
		return StateCancelled
	}
	return StateFailed
}

// scheduleRetry parks j in a backoff timer and re-queues it when the
// timer fires: exponential backoff with deterministic per-(job,
// attempt) jitter so a burst of transient failures doesn't retry in
// lockstep. The retry is charged to the tenant (counter now, fair
// queue stride on re-dispatch).
func (s *Server) scheduleRetry(j *Job, attempt int, cause error) {
	backoff := s.cfg.RetryBackoff << (attempt - 1)
	if half := int64(backoff / 2); half > 0 {
		h := splitmix64(uint64(j.seq)<<8 | uint64(attempt))
		backoff += time.Duration(int64(h % uint64(half)))
	}
	j.mu.Lock()
	j.state = StateRetrying
	j.err = cause // visible in snapshots while the job awaits retry
	j.mu.Unlock()
	s.retries.Add(1)
	s.queue.noteRetry(j.Spec.Tenant)
	s.retryWG.Add(1)
	time.AfterFunc(backoff, func() {
		defer s.retryWG.Done()
		if j.ctx.Err() != nil {
			s.finalize(j, StateCancelled, fmt.Errorf("jobs: cancelled awaiting retry: %w", j.ctx.Err()))
			return
		}
		if err := s.queue.Enqueue(j); err != nil {
			s.finalize(j, StateFailed, fmt.Errorf("jobs: retry abandoned: %w", err))
		}
	})
}

// refundIfNeverRan returns the job's admission token to its tenant's
// rate bucket if the job never made an execution attempt: a queued job
// cancelled before running (DELETE storm, or a deadline that expired
// in the queue) must not burn tenant budget. Jobs that ran at least
// once (retries, killworker requeues) consumed service and keep their
// token spent.
func (s *Server) refundIfNeverRan(j *Job) {
	j.mu.Lock()
	never := j.attempts == 0 && j.kills == 0
	j.mu.Unlock()
	if never {
		s.limiter.refund(j.Spec.Tenant)
	}
}

// wallDuration converts a virtual-time token value to wall time (the
// stalljob token reads its units as wall units).
func wallDuration(t sim.Time) time.Duration {
	return time.Duration(int64(t) / int64(sim.Nanosecond))
}

// finalize moves j to a terminal state exactly once: state + counters
// + tenant accounting + Done close + retirement. Late or duplicate
// finalizations (a cancel racing completion) are no-ops, so a job can
// never double-complete or leak its queue slot.
func (s *Server) finalize(j *Job, st State, err error) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = st
	j.finished = time.Now()
	if err != nil {
		j.err = err
	}
	total := j.finished.Sub(j.submitted)
	j.mu.Unlock()
	j.cancel() // release the deadline timer
	switch st {
	case StateDone:
		s.completed.Add(1)
		s.totalLat.add(total)
	case StateCancelled:
		s.cancelled.Add(1)
	case StateQuarantined:
		s.quarantined.Add(1)
	default:
		s.failed.Add(1)
	}
	s.queue.finish(j.Spec.Tenant, st)
	close(j.done)
	s.retire(j.ID)
}

func (s *Server) retire(id string) {
	s.mu.Lock()
	s.retired = append(s.retired, id)
	for len(s.retired) > s.cfg.RetainJobs {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
	s.mu.Unlock()
}

// plan returns the compiled plan for spec, from cache when possible.
// Concurrent misses on one key coalesce onto a single compile; the
// waiters count as hits (they skipped the pipeline).
func (s *Server) plan(spec Spec, key string) (*core.Compiled, bool, error) {
	if cc, _, ok := s.cache.Get(key); ok {
		return cc, true, nil
	}
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		s.flightMu.Unlock()
		<-f.done
		return f.cc, f.err == nil, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	t0 := time.Now()
	f.cc, f.err = core.Compile(spec.Source, spec.compileOptions())
	f.wall = time.Since(t0)
	if f.err == nil {
		s.cache.Put(key, spec, f.cc, f.wall)
	}
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)
	return f.cc, false, f.err
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully retires the server: admission stops (Submit returns
// ErrDraining), every already-admitted job still executes — including
// jobs parked in retry-backoff timers, which resolve to failed once the
// queue refuses them — and Drain returns once the workers and timers
// settle, or with the context's error if it expires first (jobs keep
// draining in the background either way).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		s.retryWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain interrupted with work in flight: %w", ctx.Err())
	}
}

// RetryAfterSeconds estimates when a shed or rate-limited client
// should retry: the backlog over the observed service rate, inflated
// by queue occupancy (a nearly full queue pushes clients further out)
// and spread by deterministic jitter so a burst of shed clients does
// not retry in lockstep and re-saturate admission. Clamped to [1, 30].
func (s *Server) RetryAfterSeconds() int {
	depth := s.queue.Depth()
	est := 1.0
	if rate := s.jobsPerSec(); rate > 0 {
		est = float64(depth) / rate
	}
	occupancy := float64(depth) / float64(s.cfg.QueueDepth)
	est *= 1 + occupancy
	// ±20% jitter, deterministic in the call sequence.
	est *= 0.8 + 0.4*float64(splitmix64(s.retrySalt.Add(1))%1024)/1024
	v := int(est + 0.5)
	if v < 1 {
		v = 1
	}
	if v > 30 {
		v = 30
	}
	return v
}

func (s *Server) jobsPerSec() float64 {
	up := time.Since(s.start).Seconds()
	if up <= 0 {
		return 0
	}
	return float64(s.completed.Load()) / up
}

// Metrics snapshots the server's counters and latency distributions.
func (s *Server) Metrics() Metrics {
	return Metrics{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Submitted:       s.submitted.Load(),
		Completed:       s.completed.Load(),
		Failed:          s.failed.Load(),
		Shed:            s.shed.Load(),
		Cancelled:       s.cancelled.Load(),
		Quarantined:     s.quarantined.Load(),
		Retries:         s.retries.Load(),
		PanicsRecovered: s.panicsRecovered.Load(),
		BreakerTrips:    s.breakerTrips.Load(),
		RateLimited:     s.rateLimited.Load(),
		WorkersReplaced: s.workersReplaced.Load(),
		JobsPerSec:      s.jobsPerSec(),
		QueueDepth:      s.queue.Depth(),
		QueueCap:        s.cfg.QueueDepth,
		Clusters:        s.cfg.Clusters,
		Draining:        s.draining.Load(),
		Cache:           s.cache.Stats(),
		Tenants:         s.queue.Stats(),
		CompileColdMs:   s.compileCold.quantiles(),
		CompileHitMs:    s.compileHit.quantiles(),
		RunMs:           s.runLat.quantiles(),
		TotalMs:         s.totalLat.quantiles(),
	}
}
