package jobs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vbuscluster/internal/core"
	"vbuscluster/internal/trace"
)

// Config sizes the server.
type Config struct {
	// Clusters is the number of concurrent simulated clusters — worker
	// goroutines executing jobs (default 2). Each job still runs its
	// ranks over the interpreter's own bounded pool, so total host
	// parallelism is Clusters × per-run workers.
	Clusters int
	// QueueDepth bounds admitted-but-not-running jobs across all
	// tenants (default 64). Beyond it, submissions shed with
	// ErrQueueFull.
	QueueDepth int
	// CacheEntries sizes the compiled-plan LRU (default 32 plans).
	CacheEntries int
	// RankWorkers is each run's rank-scheduler pool size
	// (core.Options.Workers semantics: 0 = GOMAXPROCS).
	RankWorkers int
	// DefaultFabric is the backend for specs that omit one ("" = vbus).
	DefaultFabric string
	// TenantWeights overrides fair-share weights (default 1 each).
	TenantWeights map[string]int
}

func (c Config) withDefaults() Config {
	if c.Clusters == 0 {
		c.Clusters = 2
	}
	if c.Clusters < 1 {
		c.Clusters = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 32
	}
	return c
}

// Server is the long-lived compile-and-run service. New starts its
// workers immediately; Drain retires it.
type Server struct {
	cfg   Config
	cache *PlanCache
	queue *Queue
	start time.Time

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int64
	// retired is the FIFO of finished job IDs; beyond maxRetainedJobs
	// the oldest records (and their trace recorders) are dropped so a
	// long-lived server's job table stays bounded.
	retired []string

	// flights deduplicates concurrent cold compiles of one plan key:
	// the first submission compiles, contemporaries wait and share.
	flightMu sync.Mutex
	flights  map[string]*flight

	draining  atomic.Bool
	workersWG sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64

	compileCold sampler
	compileHit  sampler
	runLat      sampler
	totalLat    sampler
}

type flight struct {
	done chan struct{}
	cc   *core.Compiled
	wall time.Duration
	err  error
}

// New builds and starts a server: Config.Clusters workers begin
// waiting on the queue immediately.
func New(cfg Config) *Server {
	s := newServer(cfg)
	s.startWorkers(s.cfg.Clusters)
	return s
}

// newServer builds the server without starting workers (tests admit
// jobs deterministically before dispatch begins).
func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		cache:   NewPlanCache(cfg.CacheEntries),
		queue:   NewQueue(cfg.QueueDepth, cfg.TenantWeights),
		start:   time.Now(),
		jobs:    map[string]*Job{},
		flights: map[string]*flight{},
	}
}

func (s *Server) startWorkers(n int) {
	for i := 0; i < n; i++ {
		s.workersWG.Add(1)
		go func() {
			defer s.workersWG.Done()
			s.worker()
		}()
	}
}

// Submit validates, admits and enqueues a job. ErrQueueFull means the
// caller should retry later (HTTP 429); ErrDraining means the server
// is shutting down (HTTP 503). Any other error is a rejected spec
// (HTTP 400).
func (s *Server) Submit(spec Spec) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	spec, err := spec.normalized(s.cfg.DefaultFabric)
	if err != nil {
		return nil, err
	}
	j := &Job{
		Spec:      spec,
		Key:       PlanKey(spec),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	s.nextID++
	j.ID = fmt.Sprintf("j-%06d", s.nextID)
	s.jobs[j.ID] = j
	s.mu.Unlock()
	if err := s.queue.Enqueue(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		if err == ErrQueueFull {
			s.shed.Add(1)
		}
		return nil, err
	}
	s.submitted.Add(1)
	return j, nil
}

// Job looks up an admitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker is one simulated cluster: it executes queued jobs until the
// queue closes and drains.
func (s *Server) worker() {
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.process(j)
	}
}

// process runs one job end to end: plan acquisition (cache hit, or
// cold compile deduplicated per key), then an isolated run with the
// job's own recorder.
func (s *Server) process(j *Job) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()

	t0 := time.Now()
	cc, hit, err := s.plan(j.Spec, j.Key)
	compileWall := time.Since(t0)
	if hit {
		s.compileHit.add(compileWall)
	} else if err == nil {
		s.compileCold.add(compileWall)
	}
	if err != nil {
		s.fail(j, compileWall, err)
		return
	}

	var rec *trace.Recorder
	if j.Spec.Trace {
		rec = trace.New()
	}
	r0 := time.Now()
	res, err := cc.RunParallelWith(j.Spec.runMode(), core.RunParams{
		Recorder: rec,
		Workers:  s.cfg.RankWorkers,
	})
	runWall := time.Since(r0)
	if err != nil {
		s.fail(j, compileWall, fmt.Errorf("run: %w", err))
		return
	}
	s.runLat.add(runWall)

	j.mu.Lock()
	j.state = StateDone
	j.cacheHit = hit
	j.compile = compileWall
	j.run = runWall
	j.finished = time.Now()
	j.virtual = res.Elapsed.Seconds()
	j.grain = cc.Grain().String()
	j.output = res.Output
	j.rec = rec
	total := j.finished.Sub(j.submitted)
	j.mu.Unlock()

	s.totalLat.add(total)
	s.completed.Add(1)
	s.queue.finish(j.Spec.Tenant, false)
	close(j.done)
	s.retire(j.ID)
}

// maxRetainedJobs bounds the finished-job table.
const maxRetainedJobs = 4096

func (s *Server) retire(id string) {
	s.mu.Lock()
	s.retired = append(s.retired, id)
	for len(s.retired) > maxRetainedJobs {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
	s.mu.Unlock()
}

func (s *Server) fail(j *Job, compileWall time.Duration, err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.compile = compileWall
	j.finished = time.Now()
	j.err = err
	j.mu.Unlock()
	s.failed.Add(1)
	s.queue.finish(j.Spec.Tenant, true)
	close(j.done)
	s.retire(j.ID)
}

// plan returns the compiled plan for spec, from cache when possible.
// Concurrent misses on one key coalesce onto a single compile; the
// waiters count as hits (they skipped the pipeline).
func (s *Server) plan(spec Spec, key string) (*core.Compiled, bool, error) {
	if cc, _, ok := s.cache.Get(key); ok {
		return cc, true, nil
	}
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		s.flightMu.Unlock()
		<-f.done
		return f.cc, f.err == nil, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	t0 := time.Now()
	f.cc, f.err = core.Compile(spec.Source, spec.compileOptions())
	f.wall = time.Since(t0)
	if f.err == nil {
		s.cache.Put(key, f.cc, f.wall)
	}
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)
	return f.cc, false, f.err
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully retires the server: admission stops (Submit returns
// ErrDraining), every already-admitted job still executes, and Drain
// returns once the workers exit — or with the context's error if it
// expires first (jobs keep draining in the background either way).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain interrupted with work in flight: %w", ctx.Err())
	}
}

// RetryAfterSeconds estimates when a shed client should retry: the
// current backlog over the observed service rate, clamped to [1, 30].
func (s *Server) RetryAfterSeconds() int {
	rate := s.jobsPerSec()
	if rate <= 0 {
		return 1
	}
	est := int(float64(s.queue.Depth())/rate + 0.5)
	if est < 1 {
		return 1
	}
	if est > 30 {
		return 30
	}
	return est
}

func (s *Server) jobsPerSec() float64 {
	up := time.Since(s.start).Seconds()
	if up <= 0 {
		return 0
	}
	return float64(s.completed.Load()) / up
}

// Metrics snapshots the server's counters and latency distributions.
func (s *Server) Metrics() Metrics {
	return Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Submitted:     s.submitted.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Shed:          s.shed.Load(),
		JobsPerSec:    s.jobsPerSec(),
		QueueDepth:    s.queue.Depth(),
		QueueCap:      s.cfg.QueueDepth,
		Clusters:      s.cfg.Clusters,
		Draining:      s.draining.Load(),
		Cache:         s.cache.Stats(),
		Tenants:       s.queue.Stats(),
		CompileColdMs: s.compileCold.quantiles(),
		CompileHitMs:  s.compileHit.quantiles(),
		RunMs:         s.runLat.quantiles(),
		TotalMs:       s.totalLat.quantiles(),
	}
}
