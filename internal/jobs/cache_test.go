package jobs

import (
	"testing"
	"time"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/core"
	_ "vbuscluster/internal/nic" // register the interconnect backends
)

func TestPlanCacheLRUEviction(t *testing.T) {
	cc, err := core.Compile(bench.CFFTSource(6), core.Options{NumProcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := NewPlanCache(2)
	c.Put("a", Spec{Source: "a"}, cc, time.Millisecond)
	c.Put("b", Spec{Source: "b"}, cc, time.Millisecond)
	c.Get("a") // refresh a: b is now least recently used
	c.Put("c", Spec{Source: "c"}, cc, time.Millisecond)
	if _, _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order ignores Get refresh")
	}
	if _, _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, _, ok := c.Get("c"); !ok {
		t.Fatal("c missing right after Put")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("entries/capacity = %d/%d, want 2/2", st.Entries, st.Capacity)
	}
	// 3 hits (a, a, c) vs 2 misses (b miss pre-insert counted? only
	// the post-eviction b miss and the initial a hit accounting):
	// Get calls above: a(hit), b(miss), a(hit), c(hit) = 3 hits 1 miss.
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestPlanKeySeparatesCompileOptions(t *testing.T) {
	base := Spec{Source: "X", Procs: 4, Grain: "fine", Fabric: "vbus", Mode: "timing"}
	same := base
	same.Mode = "full"   // run-time fidelity shares the plan
	same.Trace = true    // tracing shares the plan
	same.Tenant = "else" // tenancy shares the plan
	if PlanKey(base) != PlanKey(same) {
		t.Fatal("run-time-only fields must not split the plan cache")
	}
	for name, mut := range map[string]func(*Spec){
		"procs":    func(s *Spec) { s.Procs = 8 },
		"grain":    func(s *Spec) { s.Grain = "coarse" },
		"fabric":   func(s *Spec) { s.Fabric = "ideal" },
		"coalesce": func(s *Spec) { s.Coalesce = true },
		"twosided": func(s *Spec) { s.TwoSided = true },
		"pull":     func(s *Spec) { s.PullScatter = true },
		"lockred":  func(s *Spec) { s.LockReductions = true },
		"source":   func(s *Spec) { s.Source = "Y" },
	} {
		d := base
		mut(&d)
		if PlanKey(base) == PlanKey(d) {
			t.Fatalf("%s change did not change the plan key", name)
		}
	}
}

func TestSpecNormalizeDefaultsAndRejects(t *testing.T) {
	s, err := Spec{Source: "      PROGRAM T\n      END\n"}.normalized("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Procs != 4 || s.Grain != "fine" || s.Fabric != "vbus" || s.Mode != "timing" || s.Tenant != "default" {
		t.Fatalf("defaults wrong: %+v", s)
	}
	bad := []Spec{
		{Source: ""},
		{Source: "X", Procs: -1},
		{Source: "X", Procs: 100000},
		{Source: "X", Grain: "chunky"},
		{Source: "X", Fabric: "token-ring"},
		{Source: "X", Mode: "dry-run"},
	}
	for i, b := range bad {
		if _, err := b.normalized(""); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, b)
		}
	}
}
