package jobs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vbuscluster/internal/bench"
)

// decodeEnvelope asserts a response carries the uniform error envelope
// and returns its code.
func decodeEnvelope(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response Content-Type %q, want application/json", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("error body is not the envelope: %v\nbody: %s", err, data)
	}
	if eb.Error.Code == "" || eb.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", data)
	}
	return eb.Error.Code
}

// TestHTTPErrorEnvelopeUniform sweeps every 4xx/5xx surface the API
// can produce and asserts one shape: {"error":{"code","message"}}.
func TestHTTPErrorEnvelopeUniform(t *testing.T) {
	s := New(Config{Clusters: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string, q string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs"+q, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Malformed JSON and unknown fields: bad_spec.
	if code := decodeEnvelope(t, post("{not json", "")); code != "bad_spec" {
		t.Fatalf("malformed JSON code %q, want bad_spec", code)
	}
	if code := decodeEnvelope(t, post(`{"sourcecode": "X"}`, "")); code != "bad_spec" {
		t.Fatalf("unknown field code %q, want bad_spec", code)
	}

	// Out-of-range priority: 400 bad_spec naming the bound.
	body, _ := json.Marshal(Spec{Source: bench.MMSource(8), Tenant: "t", Priority: 99})
	resp := post(string(body), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("priority 99: status %d, want 400", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp); code != "bad_spec" {
		t.Fatalf("priority 99 code %q, want bad_spec", code)
	}

	// Unknown job / trace: not_found family.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
		if code := decodeEnvelope(t, resp); code != "not_found" {
			t.Fatalf("%s code %q, want not_found", path, code)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if code := decodeEnvelope(t, dresp); code != "not_found" {
		t.Fatalf("cancel of unknown job code %q, want not_found", code)
	}

	// Drained server: readiness and submission both answer "draining".
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready while draining: status %d, want 503", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp); code != "draining" {
		t.Fatalf("ready-while-draining code %q, want draining", code)
	}
	good, _ := json.Marshal(Spec{Source: bench.MMSource(8), Tenant: "t"})
	if code := decodeEnvelope(t, post(string(good), "")); code != "draining" {
		t.Fatalf("submit-while-draining code %q, want draining", code)
	}
}

// TestHTTPRateLimitEnvelope: a rate-limited submission answers 429
// with the envelope AND a Retry-After hint.
func TestHTTPRateLimitEnvelope(t *testing.T) {
	s := New(Config{Clusters: 1, RatePerSec: 0.0001, RateBurst: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Spec{Source: bench.MMSource(8), Tenant: "t"})
	first, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", first.StatusCode)
	}
	second, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("limited submit: status %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Fatal("limited submit missing Retry-After")
	}
	if code := decodeEnvelope(t, second); code != "rate_limited" {
		t.Fatalf("limited submit code %q, want rate_limited", code)
	}
}
