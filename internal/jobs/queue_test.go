package jobs

import (
	"fmt"
	"testing"
)

func testJob(tenant string, n int) *Job {
	return &Job{
		ID:   fmt.Sprintf("%s-%d", tenant, n),
		Spec: Spec{Tenant: tenant},
		done: make(chan struct{}),
	}
}

// drainOrder pops every queued job and returns the dispatch order.
func drainOrder(q *Queue) []string {
	var order []string
	for q.Depth() > 0 {
		j, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, j.ID)
	}
	return order
}

func TestQueueShedsWhenFull(t *testing.T) {
	q := NewQueue(2, nil)
	if err := q.Enqueue(testJob("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(testJob("a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(testJob("a", 3)); err != ErrQueueFull {
		t.Fatalf("enqueue beyond capacity: got %v, want ErrQueueFull", err)
	}
	// Shedding is per-tenant-accounted and does not disturb the queue.
	st := q.Stats()["a"]
	if st.Admitted != 2 || st.Shed != 1 {
		t.Fatalf("tenant accounting: admitted=%d shed=%d, want 2/1", st.Admitted, st.Shed)
	}
	if q.Depth() != 2 {
		t.Fatalf("depth %d after shed, want 2", q.Depth())
	}
	// Draining a slot readmits.
	q.Pop()
	if err := q.Enqueue(testJob("a", 4)); err != nil {
		t.Fatalf("enqueue after pop: %v", err)
	}
}

// TestQueueFairnessHostileTenant is the 10:1 hostile mix: a tenant
// with 30 queued jobs must not starve a tenant with 3. Under stride
// scheduling with equal weights the dispatcher alternates, so every
// victim job leaves within the first 2*3 dispatches.
func TestQueueFairnessHostileTenant(t *testing.T) {
	q := NewQueue(64, nil)
	for i := 0; i < 30; i++ {
		if err := q.Enqueue(testJob("hostile", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(testJob("victim", i)); err != nil {
			t.Fatal(err)
		}
	}
	order := drainOrder(q)
	if len(order) != 33 {
		t.Fatalf("drained %d jobs, want 33", len(order))
	}
	last := -1
	for pos, id := range order {
		if id == "victim-2" {
			last = pos
		}
	}
	if last < 0 || last >= 6 {
		t.Fatalf("victim's last job dispatched at position %d of %v; fair share is within the first 6", last, order[:8])
	}
	// Within one tenant the order stays FIFO.
	prev := -1
	for _, id := range order {
		var n int
		if _, err := fmt.Sscanf(id, "hostile-%d", &n); err == nil {
			if n != prev+1 {
				t.Fatalf("hostile tenant order broken: %v", order)
			}
			prev = n
		}
	}
}

// TestQueueWeights: a weight-2 tenant drains twice as fast as a
// weight-1 tenant under contention.
func TestQueueWeights(t *testing.T) {
	q := NewQueue(64, map[string]int{"gold": 2})
	for i := 0; i < 8; i++ {
		q.Enqueue(testJob("gold", i))
		q.Enqueue(testJob("econ", i))
	}
	order := drainOrder(q)
	gold := 0
	for _, id := range order[:6] {
		if id[:4] == "gold" {
			gold++
		}
	}
	if gold != 4 {
		t.Fatalf("first 6 dispatches gave gold %d slots, want 4 (2:1 weight): %v", gold, order[:6])
	}
}

// TestQueueIdleTenantGainsNoCredit: a tenant that slept while others
// ran must re-enter at the current virtual time, not bank its idle
// time into a burst.
func TestQueueIdleTenantGainsNoCredit(t *testing.T) {
	q := NewQueue(64, nil)
	for i := 0; i < 10; i++ {
		q.Enqueue(testJob("busy", i))
	}
	for i := 0; i < 8; i++ {
		q.Pop()
	}
	// The sleeper arrives late with a backlog of 3.
	for i := 0; i < 3; i++ {
		q.Enqueue(testJob("late", i))
	}
	order := drainOrder(q)
	lateRun := 0
	maxRun := 0
	for _, id := range order {
		if id[:4] == "late" {
			lateRun++
			if lateRun > maxRun {
				maxRun = lateRun
			}
		} else {
			lateRun = 0
		}
	}
	if maxRun > 2 {
		t.Fatalf("idle tenant burst %d consecutive dispatches (banked credit): %v", maxRun, order)
	}
}

func TestQueueCloseStopsAdmissionDrainsBacklog(t *testing.T) {
	q := NewQueue(8, nil)
	q.Enqueue(testJob("a", 1))
	q.Enqueue(testJob("a", 2))
	q.Close()
	if err := q.Enqueue(testJob("a", 3)); err != ErrDraining {
		t.Fatalf("enqueue after close: got %v, want ErrDraining", err)
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("backlog must drain after close")
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("backlog must fully drain after close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("drained closed queue must report done")
	}
}
