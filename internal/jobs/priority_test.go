package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"vbuscluster/internal/bench"
)

func prioJob(tenant string, n, prio int) *Job {
	return &Job{
		ID:   fmt.Sprintf("%s-p%d-%d", tenant, prio, n),
		Spec: Spec{Tenant: tenant, Priority: prio},
		done: make(chan struct{}),
	}
}

// TestQueuePriorityBandsPreempt: a higher band always dispatches
// before any lower band has a turn, whatever the arrival order.
func TestQueuePriorityBandsPreempt(t *testing.T) {
	q := NewQueue(64, nil)
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(prioJob("bulk", i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(prioJob("live", i, 9)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := q.Enqueue(prioJob("mid", i, 5)); err != nil {
			t.Fatal(err)
		}
	}
	order := drainOrder(q)
	want := []int{9, 9, 9, 5, 5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if len(order) != len(want) {
		t.Fatalf("drained %d jobs, want %d", len(order), len(want))
	}
	prioOf := map[byte]int{'l': 9, 'm': 5, 'b': 0}
	for i, id := range order {
		if got := prioOf[id[0]]; got != want[i] {
			t.Fatalf("dispatch %d: job %s (band %d), want band %d\norder: %v", i, id, got, want[i], order)
		}
	}
}

// TestQueuePriorityFairnessWithinBand: stride fairness still holds
// inside one band — a hostile tenant with 30 queued priority-5 jobs
// cannot starve a victim's 3 at the same priority.
func TestQueuePriorityFairnessWithinBand(t *testing.T) {
	q := NewQueue(64, nil)
	for i := 0; i < 30; i++ {
		if err := q.Enqueue(prioJob("hostile", i, 5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(prioJob("victim", i, 5)); err != nil {
			t.Fatal(err)
		}
	}
	order := drainOrder(q)
	last := -1
	for pos, id := range order {
		if id == "victim-p5-2" {
			last = pos
		}
	}
	if last < 0 || last >= 6 {
		t.Fatalf("victim's last job left at position %d, want < 6 under stride fairness", last)
	}
}

// TestQueueRemoveAcrossBands: cancellation finds a job whatever band
// it sits in, and per-tenant queued accounting follows it out.
func TestQueueRemoveAcrossBands(t *testing.T) {
	q := NewQueue(64, nil)
	jLow := prioJob("a", 0, 0)
	jHigh := prioJob("a", 0, 9)
	for _, j := range []*Job{jLow, prioJob("a", 1, 0), jHigh} {
		if err := q.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	if !q.Remove(jHigh) {
		t.Fatal("Remove lost a queued high-priority job")
	}
	if q.Remove(jHigh) {
		t.Fatal("Remove found an already-removed job")
	}
	if st := q.Stats()["a"]; st.Queued != 2 {
		t.Fatalf("queued accounting after cross-band remove: %d, want 2", st.Queued)
	}
	for _, id := range drainOrder(q) {
		if id == jHigh.ID {
			t.Fatal("removed job still dispatched")
		}
	}
	if st := q.Stats()["a"]; st.Queued != 0 {
		t.Fatalf("queued accounting after drain: %d, want 0", st.Queued)
	}
}

// TestPriorityOutOfRangeRejected: priorities outside [0, MaxPriority]
// are spec errors, rejected at admission.
func TestPriorityOutOfRangeRejected(t *testing.T) {
	s := New(Config{Clusters: 1})
	defer s.Drain(context.Background())
	for _, p := range []int{-1, MaxPriority + 1, 99} {
		if _, err := s.Submit(Spec{Source: bench.MMSource(8), Tenant: "t", Priority: p}); err == nil {
			t.Fatalf("priority %d admitted, want rejection", p)
		}
	}
	j, err := s.Submit(Spec{Source: bench.MMSource(8), Tenant: "t", Priority: MaxPriority})
	if err != nil {
		t.Fatalf("priority %d rejected: %v", MaxPriority, err)
	}
	<-j.Done()
	if v := j.Snapshot(); v.Priority != MaxPriority {
		t.Fatalf("job view priority %d, want %d", v.Priority, MaxPriority)
	}
}

// TestCancelQueuedRefundsRateToken is the admission-refund contract: a
// job cancelled before it ever ran gives its rate-limiter token back,
// so cancel-heavy interactive use doesn't eat the tenant's budget.
func TestCancelQueuedRefundsRateToken(t *testing.T) {
	// No workers: submissions stay queued, nothing runs. The refill
	// rate is negligible, so the only way to regain a token is refund.
	s := newServer(Config{RatePerSec: 0.0001, RateBurst: 1, QueueDepth: 8})
	spec := Spec{Source: bench.MMSource(8), Tenant: "t"}

	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second submit: %v, want ErrRateLimited", err)
	}
	if _, ok := s.Cancel(j1.ID); !ok {
		t.Fatal("cancel of queued job failed")
	}
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("submit after refunding cancel: %v, want admission", err)
	}
	// The refunded token is spent again: a fourth submission is limited.
	if _, err := s.Submit(spec); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("fourth submit: %v, want ErrRateLimited", err)
	}
}

// TestCancelRunningDoesNotRefund: only never-ran jobs refund — a job
// that already consumed cluster time keeps its token spent.
func TestCancelRunningDoesNotRefund(t *testing.T) {
	s := New(Config{Clusters: 1, RatePerSec: 0.0001, RateBurst: 1})
	defer s.Drain(context.Background())
	j1, err := s.Submit(Spec{Source: bench.MMSource(16), Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done() // ran to completion: attempts > 0, no refund path
	s.Cancel(j1.ID)
	if _, err := s.Submit(Spec{Source: bench.MMSource(16), Tenant: "t"}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("submit after cancelling a ran job: %v, want ErrRateLimited (no refund)", err)
	}
}
