package jobs

import (
	"sync"
	"time"
)

// rateLimiter is per-tenant token-bucket admission control, applied
// before the fair queue: a tenant above its sustained rate is refused
// with ErrRateLimited and never occupies a queue slot, so a hostile
// client cannot convert queue capacity into latency for everyone else
// (the fair queue then only has to arbitrate among tenants that are
// each within their own budget).
//
// Buckets refill lazily on each allow() call — no background
// goroutine. A rate of 0 with no per-tenant override disables limiting
// entirely (every call allows).
type rateLimiter struct {
	mu sync.Mutex
	// rate is the default sustained tokens/sec; burst the bucket size.
	rate      float64
	burst     float64
	overrides map[string]float64 // per-tenant rate (0 = unlimited)
	buckets   map[string]*bucket
	now       func() time.Time // swapped by tests
}

type bucket struct {
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

// maxRateBuckets bounds the tenant-bucket map; past it, an arbitrary
// stale bucket is evicted (the evicted tenant restarts with a full
// bucket — briefly generous, never unbounded).
const maxRateBuckets = 4096

// newRateLimiter builds the limiter; nil when limiting is entirely
// disabled (rate 0, no overrides) so the fast path is a nil check.
func newRateLimiter(rate float64, burst int, overrides map[string]float64) *rateLimiter {
	if rate <= 0 && len(overrides) == 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		// Default burst: 2 seconds of sustained rate, at least 1.
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	return &rateLimiter{
		rate:      rate,
		burst:     b,
		overrides: overrides,
		buckets:   map[string]*bucket{},
		now:       time.Now,
	}
}

// allow consumes one token from tenant's bucket, reporting whether the
// submission may proceed. Nil receiver allows everything.
func (l *rateLimiter) allow(tenant string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rate := l.rate
	if r, ok := l.overrides[tenant]; ok {
		rate = r
	}
	if rate <= 0 {
		return true // this tenant is unlimited
	}
	bk, ok := l.buckets[tenant]
	if !ok {
		if len(l.buckets) >= maxRateBuckets {
			for k := range l.buckets {
				delete(l.buckets, k)
				break
			}
		}
		bk = &bucket{tokens: l.burst, last: l.now(), rate: rate, burst: l.burst}
		l.buckets[tenant] = bk
	}
	now := l.now()
	bk.tokens += now.Sub(bk.last).Seconds() * bk.rate
	if bk.tokens > bk.burst {
		bk.tokens = bk.burst
	}
	bk.last = now
	if bk.tokens < 1 {
		return false
	}
	bk.tokens--
	return true
}

// refund returns one token to the tenant's bucket, capped at burst: a
// queued job cancelled before it ever ran consumed admission but no
// service, so a cancel storm must not burn the tenant's budget. A
// tenant with no bucket yet (or no limiter at all) has nothing to
// refund.
func (l *rateLimiter) refund(tenant string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if bk, ok := l.buckets[tenant]; ok {
		bk.tokens++
		if bk.tokens > bk.burst {
			bk.tokens = bk.burst
		}
	}
}

// splitmix64 is the stateless mixer used for deterministic jitter
// (retry backoff, Retry-After): the same sequence index always yields
// the same jitter, so chaos runs replay exactly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
