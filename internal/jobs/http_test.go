package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vbuscluster/internal/bench"
)

func postJob(t *testing.T, url string, spec Spec, wait bool) (*http.Response, View) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	u := url + "/v1/jobs"
	if wait {
		u += "?wait=1"
	}
	resp, err := http.Post(u, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &v)
	return resp, v
}

// TestHTTPSubmitCacheHitAndTrace walks the full API surface the README
// documents: submit-and-wait twice (second is a cache hit), fetch the
// job record, export its Chrome trace, read the metrics.
func TestHTTPSubmitCacheHitAndTrace(t *testing.T) {
	s := New(Config{Clusters: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := Spec{Source: bench.MMSource(16), Trace: true, Tenant: "web"}
	resp, v1 := postJob(t, ts.URL, spec, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	if v1.State != StateDone || v1.CacheHit {
		t.Fatalf("first job: state=%s hit=%t, want done/false", v1.State, v1.CacheHit)
	}
	resp, v2 := postJob(t, ts.URL, spec, true)
	if resp.StatusCode != http.StatusOK || !v2.CacheHit {
		t.Fatalf("repeat submit: status %d hit=%t, want 200/true", resp.StatusCode, v2.CacheHit)
	}
	if v2.CompileMs > v1.CompileMs/10 {
		t.Fatalf("hit compile %.3fms vs cold %.3fms over HTTP: want <= 1/10", v2.CompileMs, v1.CompileMs)
	}

	// Job record round-trips.
	jr, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID)
	if err != nil || jr.StatusCode != http.StatusOK {
		t.Fatalf("GET job: %v status=%d", err, jr.StatusCode)
	}
	jr.Body.Close()
	if r, _ := http.Get(ts.URL + "/v1/jobs/j-999999"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", r.StatusCode)
	}

	// The trace endpoint serves loadable Chrome trace JSON.
	tr, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID + "/trace")
	if err != nil || tr.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %v status=%d", err, tr.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&chrome); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	tr.Body.Close()
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}

	// Metrics reflect the two jobs.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if m.Completed != 2 || m.Cache.Hits != 1 || m.Tenants["web"].Completed != 2 {
		t.Fatalf("metrics: completed=%d hits=%d tenant=%d", m.Completed, m.Cache.Hits, m.Tenants["web"].Completed)
	}
}

// TestHTTPLoadShedding429: a saturated queue answers 429 with a
// Retry-After hint, the shedding contract of the issue.
func TestHTTPLoadShedding429(t *testing.T) {
	s := newServer(Config{Clusters: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, _ := postJob(t, ts.URL, mmSpec("flood"), false)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("admit %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	resp, _ := postJob(t, ts.URL, mmSpec("flood"), false)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	s.startWorkers(1)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPBadRequests: malformed bodies and invalid specs are 400s,
// not 500s, and unknown fields are rejected loudly.
func TestHTTPBadRequests(t *testing.T) {
	s := New(Config{Clusters: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"not json":      "PROGRAM MM",
		"empty source":  `{"source": ""}`,
		"bad fabric":    fmt.Sprintf(`{"source": %q, "fabric": "token-ring"}`, bench.MMSource(8)),
		"unknown field": fmt.Sprintf(`{"source": %q, "turbo": true}`, bench.MMSource(8)),
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestHTTPHealthzFlipsOnDrain: the health endpoint is the load
// balancer's drain signal.
func TestHTTPHealthzFlipsOnDrain(t *testing.T) {
	s := New(Config{Clusters: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if r, _ := http.Get(ts.URL + "/healthz"); r.StatusCode != http.StatusOK {
		t.Fatalf("healthy server: status %d", r.StatusCode)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r, _ := http.Get(ts.URL + "/healthz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server: status %d, want 503", r.StatusCode)
	}
	resp, _ := postJob(t, ts.URL, mmSpec("late"), false)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
}
