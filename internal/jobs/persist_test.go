package jobs

import (
	"context"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"vbuscluster/internal/bench"
)

// TestJournalRoundTrip: encode → decode must reproduce the specs, in
// order, with every compile-relevant field intact.
func TestJournalRoundTrip(t *testing.T) {
	in := []Spec{
		{Source: "      PROGRAM A\n      END\n", Procs: 4, Grain: "fine", Fabric: "vbus"},
		{Source: "      PROGRAM B\n      END\n", Procs: 8, Grain: "coarse", Fabric: "ideal",
			Coalesce: true, TwoSided: true, PullScatter: true, LockReductions: true},
		{Source: "", Procs: 0, Grain: "", Fabric: ""}, // degenerate entry survives framing
	}
	out, err := decodeJournal(journalBytes(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

// TestJournalRejectsDamage: the decoder must refuse, with the right
// named error, every way a journal can be broken — rather than warming
// the cache from garbage.
func TestJournalRejectsDamage(t *testing.T) {
	good := journalBytes([]Spec{{Source: "X", Procs: 2, Grain: "fine", Fabric: "vbus"}})

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := decodeJournal(flipped); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("bit-flipped journal: %v, want ErrJournalCorrupt", err)
	}

	if _, err := decodeJournal(good[:len(good)-3]); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("torn journal (CRC half-gone): %v, want ErrJournalCorrupt", err)
	}
	if _, err := decodeJournal(good[:6]); !errors.Is(err, ErrJournalTruncated) {
		t.Fatalf("header-only journal: %v, want ErrJournalTruncated", err)
	}

	wrongMagic := append([]byte(nil), good...)
	copy(wrongMagic, "VBCK")
	if _, err := decodeJournal(wrongMagic); !errors.Is(err, ErrJournalBadMagic) {
		t.Fatalf("wrong magic: %v, want ErrJournalBadMagic", err)
	}

	// A future version must be refused even with a valid CRC.
	future := []byte(journalMagic)
	future = appendU32(future, JournalVersion+1)
	future = appendU32(future, 0)
	future = appendU32(future, crcChecksum(future))
	if _, err := decodeJournal(future); !errors.Is(err, ErrJournalBadVersion) {
		t.Fatalf("future version: %v, want ErrJournalBadVersion", err)
	}

	// An entry count pointing past the body is truncation, not a crash.
	lying := []byte(journalMagic)
	lying = appendU32(lying, JournalVersion)
	lying = appendU32(lying, 50)
	lying = appendU32(lying, crcChecksum(lying))
	if _, err := decodeJournal(lying); !errors.Is(err, ErrJournalTruncated) {
		t.Fatalf("overcounted journal: %v, want ErrJournalTruncated", err)
	}
}

// TestSaveWarmCacheAcrossRestart is the crash-safety story end to end:
// run jobs, SaveCache, boot a fresh server, WarmCache, and watch the
// replayed submissions hit the cache without a single cold compile.
func TestSaveWarmCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "plans.vbpj")
	mix := []Spec{
		{Source: bench.MMSource(16), Tenant: "t"},
		{Source: bench.CFFTSource(7), Tenant: "t"},
	}

	s1 := New(Config{Clusters: 1})
	for _, sp := range mix {
		j, err := s1.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveCache(journal); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal not written: %v", err)
	}

	s2 := New(Config{Clusters: 1})
	defer s2.Drain(context.Background())
	warmed, err := s2.WarmCache(journal)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != len(mix) {
		t.Fatalf("warmed %d plans, want %d", warmed, len(mix))
	}
	for _, sp := range mix {
		j, err := s2.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if !j.Snapshot().CacheHit {
			t.Fatalf("post-restart submission missed the warmed cache")
		}
	}
	m := s2.Metrics()
	if m.CompileColdMs.Count != 0 {
		t.Fatalf("%d cold compiles served after warm boot, want 0", m.CompileColdMs.Count)
	}
	if m.Cache.HitRate < 0.9 {
		t.Fatalf("post-restart hit rate %.2f, want >= 0.9", m.Cache.HitRate)
	}

	// Missing journal: cold start, not an error.
	s3 := newServer(Config{})
	if n, err := s3.WarmCache(filepath.Join(dir, "nope.vbpj")); n != 0 || err != nil {
		t.Fatalf("missing journal: warmed=%d err=%v, want 0/nil", n, err)
	}
	// Corrupt journal on disk: refused, cache untouched.
	if err := os.WriteFile(journal, []byte("VBPJgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.WarmCache(journal); err == nil {
		t.Fatal("corrupt journal warmed successfully")
	}
	if s3.Metrics().Cache.Entries != 0 {
		t.Fatal("corrupt journal still populated the cache")
	}
}

// crcChecksum mirrors the journal's trailer computation for crafting
// test vectors.
func crcChecksum(b []byte) uint32 {
	return crc32.Checksum(b, crcTable)
}
