package jobs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"vbuscluster/internal/bench"
)

// waitTerminal waits for any terminal state (unlike waitDone it does
// not require success) and returns the final snapshot.
func waitTerminal(t *testing.T, j *Job) View {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.ID)
	}
	return j.Snapshot()
}

// TestServerDeadlineCancelsStalledJob: a hung job (stalljob) against a
// short deadline must come back cancelled near the deadline, not after
// the stall.
func TestServerDeadlineCancelsStalledJob(t *testing.T) {
	s := New(Config{Clusters: 1})
	defer s.Drain(context.Background())
	sp := mmSpec("dl")
	sp.DeadlineMs = 30
	sp.Faults = "stalljob=10s"
	start := time.Now()
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, j)
	if v.State != StateCancelled {
		t.Fatalf("state %s, want cancelled (err: %v)", v.State, j.Err())
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("deadline cancel took %v; the 10s stall clearly ran to completion", d)
	}
	if s.Metrics().Cancelled != 1 {
		t.Fatal("cancelled counter did not move")
	}
}

// TestServerDeadlineCancelsRunningJob: the deadline must also reach
// inside an executing simulation (via the context monitor and the
// world cancel), not only the pre-run stall.
func TestServerDeadlineCancelsRunningJob(t *testing.T) {
	s := New(Config{Clusters: 1})
	defer s.Drain(context.Background())
	// A large MM whose compile + run far exceeds the 1ms deadline: the
	// context fires while the simulation executes (or before it starts)
	// and the run must unwind instead of finishing. N=1024 keeps the
	// run (~20ms) an order of magnitude past worst-case timer latency,
	// so the cancel can't lose the race to completion under suite load.
	j, err := s.Submit(Spec{Source: bench.MMSource(1024), Tenant: "dl", DeadlineMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitTerminal(t, j); v.State != StateCancelled {
		t.Fatalf("state %s, want cancelled (err: %v)", v.State, j.Err())
	}
}

// TestServerPanicIsolationAndBreaker: a poison spec fails its own job
// with the recovered stack, the worker is replaced, and the second
// panic on the same plan key trips the breaker so the third submission
// is quarantined without running. A clean job still completes after
// all of it.
func TestServerPanicIsolationAndBreaker(t *testing.T) {
	s := New(Config{Clusters: 1})
	defer s.Drain(context.Background())
	poison := mmSpec("boom")
	poison.Faults = "panicjob=1"
	for i := 0; i < 2; i++ {
		j, err := s.Submit(poison)
		if err != nil {
			t.Fatal(err)
		}
		v := waitTerminal(t, j)
		if v.State != StateFailed {
			t.Fatalf("poison job %d state %s, want failed", i, v.State)
		}
		if err := j.Err(); err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("poison job %d error %v, want a recovered panic with stack", i, err)
		}
	}
	j, err := s.Submit(poison)
	if err != nil {
		t.Fatal(err)
	}
	if v := waitTerminal(t, j); v.State != StateQuarantined {
		t.Fatalf("post-trip poison state %s, want quarantined", v.State)
	}
	m := s.Metrics()
	if m.PanicsRecovered != 2 || m.BreakerTrips != 1 || m.Quarantined != 1 || m.WorkersReplaced != 2 {
		t.Fatalf("panics=%d trips=%d quarantined=%d replaced=%d, want 2/1/1/2",
			m.PanicsRecovered, m.BreakerTrips, m.Quarantined, m.WorkersReplaced)
	}
	// A different program still runs: the quarantine is per plan key.
	// (The faultless twin of the poison spec shares its plan key — the
	// breaker deliberately quarantines the plan, not the fault spec.)
	clean, err := s.Submit(Spec{Source: bench.CFFTSource(7), Tenant: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, clean)
}

// TestServerRetriesTransientFault: an injected rank crash is a
// transient cluster fault; the job must burn its whole retry budget
// (visible in Attempts and the retries counter) before failing.
func TestServerRetriesTransientFault(t *testing.T) {
	s := New(Config{Clusters: 1, MaxRetries: 1, RetryBackoff: time.Millisecond})
	defer s.Drain(context.Background())
	sp := mmSpec("crashy")
	sp.Faults = "seed=1,crash=1@10us"
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, j)
	if v.State != StateFailed {
		t.Fatalf("state %s, want failed after retries exhausted", v.State)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (original + 1 retry)", v.Attempts)
	}
	m := s.Metrics()
	if m.Retries != 1 || m.Tenants["crashy"].Retried != 1 {
		t.Fatalf("retries=%d tenant retried=%d, want 1/1", m.Retries, m.Tenants["crashy"].Retried)
	}
}

// TestServerKillWorkerKeepsCapacity: a killworker job assassinates its
// worker N times, re-queues, and still completes — on a server whose
// only worker must therefore have been replaced every time.
func TestServerKillWorkerKeepsCapacity(t *testing.T) {
	s := New(Config{Clusters: 1})
	defer s.Drain(context.Background())
	sp := mmSpec("killer")
	sp.Faults = "killworker=2"
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if got := s.Metrics().WorkersReplaced; got != 2 {
		t.Fatalf("workers replaced = %d, want 2", got)
	}
}

// TestServerCancelShedRaceAtCapacity is the queue-accounting torture
// test: with the queue exactly full and no workers running, cancelling
// a queued job must free its slot immediately (the next submission is
// admitted, not shed), never double-complete, and the cancelled job
// must still be drained out of the retained-jobs table by later
// retirements.
func TestServerCancelShedRaceAtCapacity(t *testing.T) {
	s := newServer(Config{Clusters: 1, QueueDepth: 3, RetainJobs: 2})
	var admitted []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(mmSpec("full"))
		if err != nil {
			t.Fatal(err)
		}
		admitted = append(admitted, j)
	}
	if _, err := s.Submit(mmSpec("full")); err != ErrQueueFull {
		t.Fatalf("overflow submit: got %v, want ErrQueueFull", err)
	}
	// Cancel a queued job: slot freed, terminal immediately.
	victim := admitted[1]
	if _, ok := s.Cancel(victim.ID); !ok {
		t.Fatal("cancel of a queued job reported no such job")
	}
	if v := victim.Snapshot(); v.State != StateCancelled {
		t.Fatalf("cancelled-in-queue state %s, want cancelled", v.State)
	}
	select {
	case <-victim.Done():
	default:
		t.Fatal("cancelled job's Done channel still open")
	}
	// The freed slot is immediately usable — the race this test guards:
	// a leaked slot would shed this admission.
	extra, err := s.Submit(mmSpec("full"))
	if err != nil {
		t.Fatalf("submit after cancel freed a slot: %v", err)
	}
	// Cancelling again (and cancelling a finished job) must be a no-op,
	// not a double finalize (a second close of Done would panic).
	if _, ok := s.Cancel(victim.ID); !ok {
		t.Fatal("re-cancel lost the job record")
	}
	s.startWorkers(1)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{admitted[0], admitted[2], extra} {
		if v := j.Snapshot(); v.State != StateDone {
			t.Fatalf("job %s state %s after drain, want done", j.ID, v.State)
		}
	}
	if v := victim.Snapshot(); v.State != StateCancelled {
		t.Fatalf("victim state changed to %s after drain; cancelled is terminal", v.State)
	}
	// RetainJobs=2: four terminal jobs retired, only the last two records
	// survive — the cancelled entry was evicted, not leaked.
	s.mu.Lock()
	retained := len(s.jobs)
	s.mu.Unlock()
	if retained != 2 {
		t.Fatalf("retained %d job records, want 2 (RetainJobs)", retained)
	}
	if _, ok := s.Job(victim.ID); ok {
		t.Fatal("cancelled job's record survived eviction")
	}
}

// TestServerRateLimitAdmission: a tenant over its token budget is
// refused before the fair queue (no slot consumed), other tenants are
// unaffected, and the Retry-After estimate stays in its documented
// range.
func TestServerRateLimitAdmission(t *testing.T) {
	s := newServer(Config{Clusters: 1, QueueDepth: 32, TenantRates: map[string]float64{"greedy": 1}})
	var refused int
	for i := 0; i < 10; i++ {
		_, err := s.Submit(mmSpec("greedy"))
		if errors.Is(err, ErrRateLimited) {
			refused++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if refused == 0 {
		t.Fatal("ten instant submissions at 1 job/s: none rate-limited")
	}
	m := s.Metrics()
	if m.RateLimited != int64(refused) || m.Tenants["greedy"].RateLimited != int64(refused) {
		t.Fatalf("rate-limited counters %d/%d, want %d", m.RateLimited, m.Tenants["greedy"].RateLimited, refused)
	}
	if m.QueueDepth != 10-refused {
		t.Fatalf("queue depth %d: refused submissions consumed slots", m.QueueDepth)
	}
	if _, err := s.Submit(mmSpec("patient")); err != nil {
		t.Fatalf("unlimited tenant refused: %v", err)
	}
	if ra := s.RetryAfterSeconds(); ra < 1 || ra > 30 {
		t.Fatalf("Retry-After %d out of [1,30]", ra)
	}
	s.startWorkers(1)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRateLimiterRefill pins the token-bucket math with a fake clock:
// burst tokens, then exactly rate tokens per second, independent
// buckets per tenant.
func TestRateLimiterRefill(t *testing.T) {
	l := newRateLimiter(2, 2, nil)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < 2; i++ {
		if !l.allow("a") {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if l.allow("a") {
		t.Fatal("third instant request allowed past a burst of 2")
	}
	if !l.allow("b") {
		t.Fatal("tenant b shares tenant a's bucket")
	}
	now = now.Add(500 * time.Millisecond) // 2/s × 0.5s = 1 token
	if !l.allow("a") {
		t.Fatal("no token after a half-second refill at 2/s")
	}
	if l.allow("a") {
		t.Fatal("half-second refill granted more than one token")
	}
	// Overrides: rate 0 for the default means unlimited; an override
	// still binds its tenant.
	lo := newRateLimiter(0, 0, map[string]float64{"slow": 1})
	lo.now = func() time.Time { return now }
	for i := 0; i < 100; i++ {
		if !lo.allow("anyone") {
			t.Fatal("default-unlimited tenant refused")
		}
	}
	lo.allow("slow")
	lo.allow("slow")
	if lo.allow("slow") {
		t.Fatal("override tenant never limited")
	}
	var nilL *rateLimiter
	if !nilL.allow("x") {
		t.Fatal("nil limiter (no limits configured) must allow everything")
	}
}
