package jobs

import (
	"sort"
	"sync"
	"time"
)

// sampler keeps a bounded ring of latency samples (milliseconds) and
// computes percentiles over the retained window. 4096 samples bound
// both memory and the sort cost of a snapshot while giving p99 two
// significant digits.
type sampler struct {
	mu    sync.Mutex
	ring  [4096]float64
	next  int
	count int64
}

func (s *sampler) add(d time.Duration) {
	s.mu.Lock()
	s.ring[s.next] = ms(d)
	s.next = (s.next + 1) % len(s.ring)
	s.count++
	s.mu.Unlock()
}

// Quantiles summarizes one latency distribution.
type Quantiles struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func (s *sampler) quantiles() Quantiles {
	s.mu.Lock()
	n := int(s.count)
	if n > len(s.ring) {
		n = len(s.ring)
	}
	buf := make([]float64, n)
	if s.count <= int64(len(s.ring)) {
		copy(buf, s.ring[:n])
	} else {
		copy(buf, s.ring[:])
	}
	q := Quantiles{Count: s.count}
	s.mu.Unlock()
	if n == 0 {
		return q
	}
	sort.Float64s(buf)
	q.P50Ms = buf[percentileIndex(n, 50)]
	q.P99Ms = buf[percentileIndex(n, 99)]
	q.MaxMs = buf[n-1]
	return q
}

// percentileIndex is the nearest-rank index of percentile p in a
// sorted sample of n.
func percentileIndex(n, p int) int {
	idx := (n*p + 99) / 100 // ceil(n*p/100)
	if idx < 1 {
		idx = 1
	}
	if idx > n {
		idx = n
	}
	return idx - 1
}

// Metrics is the GET /metrics body.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Submitted     int64   `json:"jobs_submitted"`
	Completed     int64   `json:"jobs_completed"`
	Failed        int64   `json:"jobs_failed"`
	Shed          int64   `json:"jobs_shed"`
	// Cancelled counts deadline and explicit cancellations;
	// Quarantined counts jobs refused by an open circuit breaker
	// (neither is included in Failed).
	Cancelled   int64 `json:"jobs_cancelled"`
	Quarantined int64 `json:"jobs_quarantined"`
	// RateLimited counts submissions refused by token buckets (never
	// admitted, like Shed).
	RateLimited int64 `json:"jobs_rate_limited"`
	// Retries counts re-executions of transiently failed jobs;
	// PanicsRecovered counts worker panics converted to job failures;
	// BreakerTrips counts plan keys newly quarantined;
	// WorkersReplaced counts worker goroutines respawned after a kill
	// or a recovered panic.
	Retries         int64 `json:"retries"`
	PanicsRecovered int64 `json:"panics_recovered"`
	BreakerTrips    int64 `json:"breaker_trips"`
	WorkersReplaced int64 `json:"workers_replaced"`
	// JobsPerSec is completed jobs over uptime: the sustained service
	// throughput.
	JobsPerSec float64 `json:"jobs_per_sec"`
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_capacity"`
	Clusters   int     `json:"clusters"`
	Draining   bool    `json:"draining"`

	Cache   CacheStats             `json:"cache"`
	Tenants map[string]TenantStats `json:"tenants"`

	// CompileColdMs is plan-compile latency on cache misses (the full
	// front end + postpass); CompileHitMs is the cache-lookup latency
	// on hits. The ratio is the cache's whole value proposition.
	CompileColdMs Quantiles `json:"compile_cold_ms"`
	CompileHitMs  Quantiles `json:"compile_hit_ms"`
	RunMs         Quantiles `json:"run_ms"`
	// TotalMs is admission → completion (queueing included).
	TotalMs Quantiles `json:"total_ms"`
}
