package jobs

import (
	"context"
	"sort"
	"testing"
	"time"

	"vbuscluster/internal/bench"
)

func mmSpec(tenant string) Spec {
	return Spec{Source: bench.MMSource(16), Tenant: tenant}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("job %s failed: %v", j.ID, err)
	}
}

// TestServerCacheHitSkipsFrontEnd is the serving layer's core claim: a
// repeat submission of an identical job must hit the plan cache and
// acquire its plan at least 10× faster than the cold compile.
func TestServerCacheHitSkipsFrontEnd(t *testing.T) {
	s := New(Config{Clusters: 1})
	defer s.Drain(context.Background())

	first, err := s.Submit(mmSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)
	second, err := s.Submit(mmSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, second)

	v1, v2 := first.Snapshot(), second.Snapshot()
	if v1.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	if !v2.CacheHit {
		t.Fatal("repeat submission missed the plan cache")
	}
	if v2.CompileMs > v1.CompileMs/10 {
		t.Fatalf("cache hit compile %.3fms, cold %.3fms: hit must be <= cold/10",
			v2.CompileMs, v1.CompileMs)
	}
	if v1.Output != v2.Output {
		t.Fatalf("cached plan changed the program's output: %q vs %q", v1.Output, v2.Output)
	}
	m := s.Metrics()
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Completed != 2 {
		t.Fatalf("completed = %d, want 2", m.Completed)
	}
}

// TestServerShedsWhenSaturated: with no dispatch happening, admissions
// beyond QueueDepth shed with ErrQueueFull and are accounted per
// tenant.
func TestServerShedsWhenSaturated(t *testing.T) {
	s := newServer(Config{Clusters: 1, QueueDepth: 3})
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(mmSpec("flood")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(mmSpec("flood")); err != ErrQueueFull {
		t.Fatalf("saturated submit: got %v, want ErrQueueFull", err)
	}
	m := s.Metrics()
	if m.Shed != 1 || m.QueueDepth != 3 {
		t.Fatalf("shed=%d depth=%d, want 1/3", m.Shed, m.QueueDepth)
	}
	if m.Tenants["flood"].Shed != 1 {
		t.Fatalf("tenant shed=%d, want 1", m.Tenants["flood"].Shed)
	}
	// The backlog still drains once workers start, and shed jobs left
	// no ghost records behind.
	s.startWorkers(1)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Completed; got != 3 {
		t.Fatalf("completed=%d after drain, want 3", got)
	}
}

// TestServerFairnessUnderHostileMix pre-queues a 10:1 hostile mix and
// then lets a single worker drain it: the victim's jobs must all
// complete within the first few dispatches, not behind the flood.
func TestServerFairnessUnderHostileMix(t *testing.T) {
	s := newServer(Config{Clusters: 1, QueueDepth: 64})
	var hostile, victim []*Job
	for i := 0; i < 20; i++ {
		j, err := s.Submit(mmSpec("hostile"))
		if err != nil {
			t.Fatal(err)
		}
		hostile = append(hostile, j)
	}
	for i := 0; i < 2; i++ {
		j, err := s.Submit(mmSpec("victim"))
		if err != nil {
			t.Fatal(err)
		}
		victim = append(victim, j)
	}
	s.startWorkers(1)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A single worker completes jobs in dispatch order, so finish
	// timestamps reconstruct it.
	type fin struct {
		tenant string
		at     time.Time
	}
	var fins []fin
	for _, j := range append(hostile, victim...) {
		waitDone(t, j)
		j.mu.Lock()
		fins = append(fins, fin{j.Spec.Tenant, j.finished})
		j.mu.Unlock()
	}
	sort.Slice(fins, func(a, b int) bool { return fins[a].at.Before(fins[b].at) })
	lastVictim := -1
	for i, f := range fins {
		if f.tenant == "victim" {
			lastVictim = i
		}
	}
	if lastVictim >= 4 {
		t.Fatalf("victim's last job finished at position %d; fair share is within the first 4", lastVictim)
	}
}

// TestServerDrainCompletesAdmitted: every job admitted before Drain
// finishes; admission afterwards is refused.
func TestServerDrainCompletesAdmitted(t *testing.T) {
	s := New(Config{Clusters: 2, QueueDepth: 32})
	var jobsIn []*Job
	for i := 0; i < 10; i++ {
		j, err := s.Submit(mmSpec("drain"))
		if err != nil {
			t.Fatal(err)
		}
		jobsIn = append(jobsIn, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobsIn {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s still open after drain returned", j.ID)
		}
		if st := j.Snapshot().State; st != StateDone {
			t.Fatalf("job %s state %s after drain, want done", j.ID, st)
		}
	}
	if _, err := s.Submit(mmSpec("late")); err != ErrDraining {
		t.Fatalf("submit after drain: got %v, want ErrDraining", err)
	}
	m := s.Metrics()
	if m.Completed != 10 || !m.Draining {
		t.Fatalf("metrics after drain: completed=%d draining=%t", m.Completed, m.Draining)
	}
}

// TestServerConcurrentSameKeyCoalesces: concurrent cold submissions of
// one program compile once (single flight), and every job still
// completes correctly.
func TestServerConcurrentSameKeyCoalesces(t *testing.T) {
	s := New(Config{Clusters: 4, QueueDepth: 32})
	var batch []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit(mmSpec("burst"))
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, j)
	}
	for _, j := range batch {
		waitDone(t, j)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	// CompileColdMs counts actual pipeline executions; waiters that
	// coalesced onto the single flight record as hits. (Cache.Misses
	// can exceed 1: a waiter probes the cache before finding the
	// flight.)
	if m.CompileColdMs.Count != 1 {
		t.Fatalf("one program compiled %d times; single-flight should make it 1", m.CompileColdMs.Count)
	}
	if m.Completed != 8 {
		t.Fatalf("completed=%d, want 8", m.Completed)
	}
}

// TestServerFailedJobAccounting: a program the front end rejects must
// fail the job (not the server), stay uncached and count per tenant.
func TestServerFailedJobAccounting(t *testing.T) {
	s := New(Config{Clusters: 1})
	j, err := s.Submit(Spec{Source: "      THIS IS NOT FORTRAN\n", Tenant: "oops"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("failed job never finished")
	}
	if j.Err() == nil {
		t.Fatal("nonsense program compiled successfully")
	}
	if st := j.Snapshot().State; st != StateFailed {
		t.Fatalf("state %s, want failed", st)
	}
	m := s.Metrics()
	if m.Failed != 1 || m.Tenants["oops"].Failed != 1 {
		t.Fatalf("failed=%d tenant failed=%d, want 1/1", m.Failed, m.Tenants["oops"].Failed)
	}
	if m.Cache.Entries != 0 {
		t.Fatal("failed compile was cached")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
