package jobs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"vbuscluster/internal/core"
)

// Plan-cache journal: the crash-safe persistence that lets a restarted
// daemon start warm. The journal records the cache's working set — the
// normalized, compile-relevant spec of every cached plan, in LRU order
// — not the compiled plans themselves: plans hold interned ASTs and
// closures that do not serialize, and recompiling a journaled spec on
// boot is exactly the cold path the cache exists to amortize, paid
// once per restart instead of once per client.
//
// Framing follows internal/ckpt's discipline: magic, u32 version,
// little-endian length-prefixed fields, and a trailing CRC-32C
// (Castagnoli) over everything before it. A torn write (crash mid-save)
// fails the CRC and WarmCache refuses the file rather than warming from
// garbage; saves go through a temp file + rename so the previous
// journal survives any crash during the save itself.
//
//	"VBPJ" | u32 version | u32 count | count × entry | u32 CRC-32C
//	entry = bytes source | u32 procs | bytes grain | bytes fabric |
//	        u32 flags (bit0 coalesce, bit1 twosided, bit2 pullscatter,
//	                   bit3 lockreductions)

// journalMagic identifies a plan-cache journal file.
const journalMagic = "VBPJ"

// JournalVersion is the current on-disk format version.
const JournalVersion = 1

// Journal read errors.
var (
	ErrJournalTruncated  = errors.New("jobs: journal truncated")
	ErrJournalBadMagic   = errors.New("jobs: not a plan-cache journal (bad magic)")
	ErrJournalBadVersion = errors.New("jobs: unsupported journal version")
	ErrJournalCorrupt    = errors.New("jobs: journal CRC mismatch (torn or corrupted write)")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	flagCoalesce = 1 << iota
	flagTwoSided
	flagPullScatter
	flagLockReductions
)

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendBytes(b []byte, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// journalBytes encodes the cache's current working set.
func journalBytes(entries []Spec) []byte {
	b := []byte(journalMagic)
	b = appendU32(b, JournalVersion)
	b = appendU32(b, uint32(len(entries)))
	for _, sp := range entries {
		b = appendBytes(b, []byte(sp.Source))
		b = appendU32(b, uint32(sp.Procs))
		b = appendBytes(b, []byte(sp.Grain))
		b = appendBytes(b, []byte(sp.Fabric))
		var flags uint32
		if sp.Coalesce {
			flags |= flagCoalesce
		}
		if sp.TwoSided {
			flags |= flagTwoSided
		}
		if sp.PullScatter {
			flags |= flagPullScatter
		}
		if sp.LockReductions {
			flags |= flagLockReductions
		}
		b = appendU32(b, flags)
	}
	return appendU32(b, crc32.Checksum(b, crcTable))
}

// journalReader is the bounds-checked decoder; err latches on first
// failure so call sites read linearly and check once.
type journalReader struct {
	b   []byte
	off int
	err error
}

func (r *journalReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = ErrJournalTruncated
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *journalReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = ErrJournalTruncated
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// decodeJournal validates framing and CRC, returning the journaled
// specs in LRU-to-MRU order.
func decodeJournal(b []byte) ([]Spec, error) {
	if len(b) < len(journalMagic)+12 {
		return nil, ErrJournalTruncated
	}
	if string(b[:len(journalMagic)]) != journalMagic {
		return nil, ErrJournalBadMagic
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.Checksum(body, crcTable) {
		return nil, ErrJournalCorrupt
	}
	r := &journalReader{b: body, off: len(journalMagic)}
	if v := r.u32(); r.err == nil && v != JournalVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrJournalBadVersion, v, JournalVersion)
	}
	count := int(r.u32())
	var out []Spec
	for i := 0; i < count; i++ {
		var sp Spec
		sp.Source = string(r.bytes())
		sp.Procs = int(r.u32())
		sp.Grain = string(r.bytes())
		sp.Fabric = string(r.bytes())
		flags := r.u32()
		sp.Coalesce = flags&flagCoalesce != 0
		sp.TwoSided = flags&flagTwoSided != 0
		sp.PullScatter = flags&flagPullScatter != 0
		sp.LockReductions = flags&flagLockReductions != 0
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, sp)
	}
	return out, nil
}

// EncodeJournal frames specs in the VBPJ v1 journal format (magic,
// version, length-prefixed entries, CRC-32C trailer). Exported for the
// peer layer, which ships cache working sets between federation
// members as journal bytes during warm-cache handoff.
func EncodeJournal(specs []Spec) []byte { return journalBytes(specs) }

// DecodeJournal parses VBPJ journal bytes, refusing torn, corrupted,
// version-skewed or misframed input whole (see the ErrJournal errors).
func DecodeJournal(b []byte) ([]Spec, error) { return decodeJournal(b) }

// CachedSpecs lists the plan cache's current working set from least to
// most recently used — the order that, replayed through WarmSpecs,
// reconstructs the same LRU stacking.
func (s *Server) CachedSpecs() []Spec { return s.cache.Entries() }

// WarmSpecs recompiles each spec and inserts it into the plan cache in
// order, returning how many warmed. Specs that fail normalization or
// no longer compile are skipped — a handoff or journal from an older
// build must not poison the cache.
func (s *Server) WarmSpecs(specs []Spec) int {
	warmed := 0
	for _, sp := range specs {
		sp, err := sp.normalized(s.cfg.DefaultFabric)
		if err != nil {
			continue
		}
		cc, err := core.Compile(sp.Source, sp.compileOptions())
		if err != nil {
			continue
		}
		s.cache.Put(PlanKey(sp), sp, cc, 0)
		warmed++
	}
	return warmed
}

// SaveCache journals the plan cache's working set to path, atomically:
// the bytes land in a temp file first and replace any previous journal
// by rename, so a crash mid-save leaves the old journal intact. Called
// on SIGTERM drain by cmd/vbserve.
func (s *Server) SaveCache(path string) error {
	b := journalBytes(s.cache.Entries())
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("jobs: save cache journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: save cache journal: %w", err)
	}
	return nil
}

// WarmCache replays a journal written by SaveCache: each entry is
// recompiled and inserted in LRU order, so the restarted server's
// cache has the same working set (and the same eviction stacking) as
// the one that drained. A missing file is a cold start, not an error.
// Entries that no longer compile (a compiler change across restart)
// are skipped; the count of warmed plans is returned. A corrupt or
// torn journal returns an error and warms nothing.
func (s *Server) WarmCache(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("jobs: read cache journal: %w", err)
	}
	specs, err := decodeJournal(b)
	if err != nil {
		return 0, err
	}
	return s.WarmSpecs(specs), nil
}
