package jobs

import "sync"

// breaker is the per-plan-key circuit breaker behind panic isolation:
// a plan key whose jobs keep panicking the worker is quarantined, so a
// poison spec resubmitted in a loop costs one map lookup instead of a
// recompile-and-crash per submission. Counting is per key — one
// tenant's poison program cannot quarantine another program.
//
// The policy is deliberately simple: `threshold` consecutive panics on
// one key trip the breaker; a successful run of the key resets its
// count. A tripped key stays quarantined for the server's lifetime
// (the journal does not persist breaker state — a restart retries the
// key once, which is the desired give-it-another-chance behavior).
type breaker struct {
	mu        sync.Mutex
	threshold int // <= 0 disables the breaker entirely
	counts    map[string]int
	tripped   map[string]bool
}

// maxBreakerKeys bounds the tracked-key maps on a long-lived server; a
// hostile stream of unique poison keys evicts arbitrary old counts
// rather than growing without limit (each evicted key merely restarts
// its count from zero).
const maxBreakerKeys = 4096

func newBreaker(threshold int) *breaker {
	return &breaker{
		threshold: threshold,
		counts:    map[string]int{},
		tripped:   map[string]bool{},
	}
}

// note records one panic on key and reports whether this panic tripped
// the breaker (the transition, not the steady state — callers count
// trips from it).
func (b *breaker) note(key string) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tripped[key] {
		return false
	}
	if len(b.counts) >= maxBreakerKeys {
		for k := range b.counts {
			if k != key {
				delete(b.counts, k)
				break
			}
		}
	}
	b.counts[key]++
	if b.counts[key] >= b.threshold {
		if len(b.tripped) >= maxBreakerKeys {
			for k := range b.tripped {
				if k != key {
					delete(b.tripped, k)
					break
				}
			}
		}
		b.tripped[key] = true
		delete(b.counts, key)
		return true
	}
	return false
}

// isTripped reports whether key is quarantined.
func (b *breaker) isTripped(key string) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripped[key]
}

// reset clears key's consecutive-panic count after a successful run.
func (b *breaker) reset(key string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	delete(b.counts, key)
	b.mu.Unlock()
}
