// Package jobs is the serving layer over the compiler and simulated
// cluster: a long-lived service that accepts compile-and-run jobs
// (Fortran 77 source plus fabric/ranks/options), keyed by a content
// hash of (program, compile options), with
//
//   - an LRU compiled-plan cache, so a repeat submission skips the
//     Polaris-style front end and postpass entirely (the §5 pipeline is
//     the cold path; the cache hit is a map lookup),
//   - a bounded job queue with per-tenant weighted fair scheduling and
//     explicit load shedding (ErrQueueFull → HTTP 429 + Retry-After),
//   - N concurrent simulated clusters (worker goroutines) sharing the
//     host, each run on its own cluster with its own trace recorder —
//     safe because a Compiled plan is immutable at run time
//     (core.RunParallelWith; see the concurrent-reuse race test).
//
// cmd/vbserve wraps this package in an HTTP/JSON daemon; vbbench
// -servesweep drives it in-process for the BENCH_serve.json numbers.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"vbuscluster/internal/cliutil"
	"vbuscluster/internal/core"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/trace"
)

// Spec is one compile-and-run request, the POST /v1/jobs body.
type Spec struct {
	// Source is the Fortran 77 program text.
	Source string `json:"source"`
	// Procs is the SPMD rank count (default 4, the paper's machine).
	Procs int `json:"procs,omitempty"`
	// Grain is the communication granularity: "fine" (default),
	// "middle", "coarse" or "auto" (compiler prices all three).
	Grain string `json:"grain,omitempty"`
	// Fabric is the interconnect backend name ("" = the server's
	// default, normally vbus).
	Fabric string `json:"fabric,omitempty"`
	// Mode is the execution fidelity: "timing" (default) or "full".
	Mode string `json:"mode,omitempty"`
	// Coalesce enables the pack-and-coalesce postpass stage.
	Coalesce bool `json:"coalesce,omitempty"`
	// TwoSided generates MPI-1 SEND/RECEIVE pairs instead of
	// one-sided PUT/GET.
	TwoSided bool `json:"two_sided,omitempty"`
	// PullScatter lets slaves GET their scatter regions concurrently.
	PullScatter bool `json:"pull_scatter,omitempty"`
	// LockReductions selects lock-based reduction combining.
	LockReductions bool `json:"lock_reductions,omitempty"`
	// Trace records the run's per-rank timeline, served as Chrome
	// trace-event JSON at GET /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
	// Tenant attributes the job for fair scheduling and accounting
	// ("" = "default").
	Tenant string `json:"tenant,omitempty"`
	// Priority is the job's strict admission priority, 0 (bulk, the
	// default) through 9 (interactive). A higher band always dispatches
	// before a lower one; per-tenant stride fairness applies within a
	// band. Failover-forwarded jobs in peer mode are boosted so
	// recovery work preempts bulk traffic. Run-time only — excluded
	// from the plan cache key.
	Priority int `json:"priority,omitempty"`
	// DeadlineMs bounds the job's wall-clock lifetime from admission
	// (queueing included): past it the run is cancelled and the job
	// ends "cancelled". 0 uses the server default; the server-side cap
	// (Config.MaxDeadline) clamps it either way.
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// Faults is a fault-spec string in the internal/fault grammar.
	// Cluster-level tokens (crash, flitdrop, ...) inject deterministic
	// faults into the simulated run; the server-level chaos tokens
	// (panicjob, stalljob, killworker) drive the serving layer itself.
	// Run-time only — excluded from the plan cache key.
	Faults string `json:"faults,omitempty"`
}

// maxProcs bounds a request's rank count (the scale sweep's ceiling).
const maxProcs = 1024

// MaxPriority is the highest admission priority a spec may request;
// valid priorities are [0, MaxPriority], 0 being the bulk default.
const MaxPriority = 9

// normalized fills defaults and validates the spec. It is called once
// at submission; everything downstream trusts the result.
func (s Spec) normalized(defaultFabric string) (Spec, error) {
	if strings.TrimSpace(s.Source) == "" {
		return s, fmt.Errorf("jobs: empty source")
	}
	if s.Procs == 0 {
		s.Procs = 4
	}
	if s.Procs < 1 || s.Procs > maxProcs {
		return s, fmt.Errorf("jobs: procs %d out of range [1, %d]", s.Procs, maxProcs)
	}
	if s.Grain == "" {
		s.Grain = "fine"
	}
	if s.Grain != "auto" {
		if _, err := lmad.ParseGrain(s.Grain); err != nil {
			return s, fmt.Errorf("jobs: %w (or \"auto\")", err)
		}
	}
	if s.Fabric == "" {
		s.Fabric = defaultFabric
	}
	if s.Fabric == "" {
		s.Fabric = "vbus"
	}
	if err := cliutil.ValidateFabric(s.Fabric); err != nil {
		return s, fmt.Errorf("jobs: %w", err)
	}
	switch s.Mode {
	case "":
		s.Mode = "timing"
	case "timing", "full":
	default:
		return s, fmt.Errorf("jobs: unknown mode %q (want timing or full)", s.Mode)
	}
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if len(s.Tenant) > 64 {
		return s, fmt.Errorf("jobs: tenant name longer than 64 bytes")
	}
	if s.Priority < 0 || s.Priority > MaxPriority {
		return s, fmt.Errorf("jobs: priority %d out of range [0, %d]", s.Priority, MaxPriority)
	}
	if s.DeadlineMs < 0 {
		return s, fmt.Errorf("jobs: negative deadline_ms %d", s.DeadlineMs)
	}
	if s.Faults != "" {
		fs, err := fault.ParseSpec(s.Faults)
		if err != nil {
			return s, fmt.Errorf("jobs: %w", err)
		}
		// Canonical form: equivalent spellings snapshot identically.
		s.Faults = fs.String()
	}
	return s, nil
}

// faultSpec parses the (already canonicalized) fault field; nil when
// the job injects nothing.
func (s Spec) faultSpec() *fault.Spec {
	if s.Faults == "" {
		return nil
	}
	fs, err := fault.ParseSpec(s.Faults)
	if err != nil {
		return nil // normalized() already validated; unreachable
	}
	return fs
}

// compileOptions maps the spec onto the compiler's options.
func (s Spec) compileOptions() core.Options {
	opts := core.Options{
		NumProcs:       s.Procs,
		Fabric:         s.Fabric,
		Coalesce:       s.Coalesce,
		TwoSided:       s.TwoSided,
		PullScatter:    s.PullScatter,
		LockReductions: s.LockReductions,
	}
	if s.Grain == "auto" {
		opts.AutoGrain = true
	} else {
		opts.Grain, _ = lmad.ParseGrain(s.Grain)
	}
	return opts
}

// runMode maps the spec's mode string onto the interpreter mode.
func (s Spec) runMode() core.Mode {
	if s.Mode == "full" {
		return core.Full
	}
	return core.Timing
}

// PlanKey is the compiled-plan cache key: a SHA-256 content hash over
// the program text and every compile-relevant option, in a fixed
// canonical field order. Run-time settings (mode, trace, tenant) are
// deliberately excluded — one cached plan serves timing and full runs
// of any tenant. The normalization above canonicalizes the defaulted
// fields ("" fabric → "vbus", "" grain → "fine"), so spellings that
// compile identically share one cache entry.
func PlanKey(s Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "plan/v1\nprocs=%d\ngrain=%s\nfabric=%s\ncoalesce=%t\ntwosided=%t\npullscatter=%t\nlockred=%t\nsource=%d\n",
		s.Procs, s.Grain, s.Fabric, s.Coalesce, s.TwoSided, s.PullScatter, s.LockReductions, len(s.Source))
	h.Write([]byte(s.Source))
	return hex.EncodeToString(h.Sum(nil))
}

// State is a job's lifecycle position.
type State string

// Job states. The machine is
//
//	queued → running → done
//	                 → failed      (compile/run error, recovered panic,
//	                                retries exhausted)
//	                 → cancelled   (deadline expired or DELETE'd)
//	                 → retrying    (transient fault; re-queued with
//	                                backoff, back to queued → running)
//	queued → quarantined           (plan key tripped the circuit
//	                                breaker after repeated panics)
//
// Shed and rate-limited submissions never become jobs (Submit returns
// ErrQueueFull / ErrRateLimited instead), so every Job ends in one of
// the four terminal states: done, failed, cancelled, quarantined.
const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCancelled   State = "cancelled"
	StateRetrying    State = "retrying"
	StateQuarantined State = "quarantined"
)

// terminal reports whether a state is final (Done() closed, job
// retired).
func (st State) terminal() bool {
	switch st {
	case StateDone, StateFailed, StateCancelled, StateQuarantined:
		return true
	}
	return false
}

// Job is one admitted submission.
type Job struct {
	// ID is the server-assigned job identifier ("j-000042").
	ID string
	// Spec is the normalized request.
	Spec Spec
	// Key is the compiled-plan cache key, PlanKey(Spec).
	Key string

	// ctx bounds the job's lifetime (deadline and explicit
	// cancellation); cancel releases it and is always non-nil for
	// admitted jobs. seq is the numeric ID (deterministic retry
	// jitter); faults is the parsed Spec.Faults (nil when none).
	ctx    context.Context
	cancel context.CancelFunc
	seq    int64
	faults *fault.Spec

	mu        sync.Mutex
	state     State
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	compile   time.Duration
	run       time.Duration
	virtual   float64
	grain     string
	output    string
	err       error
	rec       *trace.Recorder
	// attempts counts execution attempts (1 on the first); kills
	// counts worker kills this job has performed (killworker token).
	attempts int
	kills    int

	done chan struct{}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the terminal error (nil while running or on success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// TraceRecorder returns the run's recorder once the job is done, or
// nil (trace not requested, or job not finished).
func (j *Job) TraceRecorder() *trace.Recorder {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.rec
}

// View is the externally visible snapshot of a job, the GET
// /v1/jobs/{id} body.
type View struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Priority is the effective admission priority (failover boosts
	// show here, not in the submitted spec).
	Priority int   `json:"priority,omitempty"`
	State    State `json:"state"`
	CacheHit bool  `json:"cache_hit"`
	// Grain is the effective granularity ("auto" resolves once the
	// plan is compiled).
	Grain  string `json:"grain,omitempty"`
	Procs  int    `json:"procs"`
	Fabric string `json:"fabric"`
	Mode   string `json:"mode"`
	// QueuedMs is time from admission to execution start.
	QueuedMs float64 `json:"queued_ms"`
	// CompileMs is the plan acquisition latency: the full pipeline on
	// a cache miss, the cache lookup on a hit.
	CompileMs float64 `json:"compile_ms"`
	// RunMs is the host wall time of the simulated run.
	RunMs float64 `json:"run_ms"`
	// TotalMs is admission to completion.
	TotalMs float64 `json:"total_ms"`
	// VirtualSeconds is the simulated execution time.
	VirtualSeconds float64 `json:"virtual_seconds"`
	Output         string  `json:"output,omitempty"`
	Error          string  `json:"error,omitempty"`
	HasTrace       bool    `json:"has_trace,omitempty"`
	// Attempts is how many execution attempts the job has made
	// (retries and post-kill requeues re-run the job).
	Attempts int `json:"attempts,omitempty"`
}

// Snapshot captures the job's current state for reporting.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:       j.ID,
		Tenant:   j.Spec.Tenant,
		Priority: j.Spec.Priority,
		State:    j.state,
		CacheHit: j.cacheHit,
		Grain:    j.grain,
		Procs:    j.Spec.Procs,
		Fabric:   j.Spec.Fabric,
		Mode:     j.Spec.Mode,
		HasTrace: j.rec != nil && j.state == StateDone,
		Attempts: j.attempts,
	}
	if !j.started.IsZero() {
		v.QueuedMs = ms(j.started.Sub(j.submitted))
	}
	v.CompileMs = ms(j.compile)
	v.RunMs = ms(j.run)
	if !j.finished.IsZero() {
		v.TotalMs = ms(j.finished.Sub(j.submitted))
		v.VirtualSeconds = j.virtual
		v.Output = j.output
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
