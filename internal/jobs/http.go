package jobs

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// maxBodyBytes bounds a submission body (a megabyte of Fortran is a
// very large program in this subset).
const maxBodyBytes = 1 << 20

// Handler builds the service's HTTP API:
//
//	POST   /v1/jobs            submit (async by default; ?wait=1 blocks)
//	GET    /v1/jobs/{id}       job state / result
//	DELETE /v1/jobs/{id}       cancel (queued: immediate; running: the
//	                           run is cancelled and unwinds)
//	GET    /v1/jobs/{id}/trace Chrome trace-event JSON (spec.trace jobs)
//	GET    /metrics            counters, cache stats, latency quantiles
//	GET    /healthz/live       200 while the process serves at all
//	GET    /healthz/ready      200 serving / 503 "draining"
//	GET    /healthz            alias for /healthz/ready
//
// Liveness vs readiness split: during a SIGTERM drain the process is
// alive (in-flight jobs still complete, GETs still answer) but must
// stop receiving new traffic — a load balancer watches ready, a
// process supervisor watches live.
//
// Every non-2xx response carries the uniform JSON error envelope
// {"error": {"code": "...", "message": "..."}} (ErrorBody), so clients
// parse one shape whatever went wrong.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleReady)
	mux.HandleFunc("GET /healthz/live", s.handleLive)
	mux.HandleFunc("GET /healthz/ready", s.handleReady)
	return mux
}

// ErrorBody is the uniform error envelope of every 4xx/5xx response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable machine-readable code alongside the
// human-readable message. Codes in use: bad_spec, queue_full,
// rate_limited, draining, not_found, no_trace, forward_failed.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// WriteError writes the uniform JSON error envelope. Exported so the
// peer layer's handlers answer in the same shape.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{ErrorDetail{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		WriteError(w, http.StatusBadRequest, "bad_spec", "bad job spec: "+err.Error())
		return
	}
	s.SubmitHTTP(w, r, spec)
}

// SubmitHTTP runs the submission path for an already-decoded spec:
// admission errors map onto the envelope (429 + Retry-After for
// shedding and rate limits, 503 draining, 400 rejected specs) and
// ?wait=1 blocks until the job reaches a terminal state. The peer
// layer calls it directly for jobs it routes to the local server.
func (s *Server) SubmitHTTP(w http.ResponseWriter, r *http.Request, spec Spec) {
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
		// Load shedding / rate limiting: tell the client when the
		// backlog should have cleared instead of letting it queue-build.
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
		code := "queue_full"
		if errors.Is(err, ErrRateLimited) {
			code = "rate_limited"
		}
		WriteError(w, http.StatusTooManyRequests, code, err.Error())
		return
	case errors.Is(err, ErrDraining):
		WriteError(w, http.StatusServiceUnavailable, "draining", err.Error())
		return
	case err != nil:
		WriteError(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.Snapshot())
		case <-r.Context().Done():
			// Client gave up; the job still runs. Report where it got to.
			writeJSON(w, http.StatusAccepted, j.Snapshot())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "not_found", "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "not_found", "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "not_found", "no such job")
		return
	}
	rec := j.TraceRecorder()
	if rec == nil {
		WriteError(w, http.StatusNotFound, "no_trace",
			"no trace: submit with \"trace\": true and wait for completion")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = rec.WriteChrome(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		WriteError(w, http.StatusServiceUnavailable, "draining", "server draining, not admitting jobs")
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("ok\n"))
}
