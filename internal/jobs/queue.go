package jobs

import (
	"errors"
	"sync"
)

// ErrQueueFull reports that admission would exceed the queue bound:
// the submission is shed (HTTP 429 + Retry-After) rather than letting
// latency grow without limit.
var ErrQueueFull = errors.New("jobs: queue full, try again later")

// ErrDraining reports that the server has stopped admitting work
// (graceful shutdown in progress, HTTP 503).
var ErrDraining = errors.New("jobs: server draining, not admitting jobs")

// ErrRateLimited reports that the tenant's token bucket is empty: the
// submission is refused before it reaches the fair queue (HTTP 429 +
// Retry-After).
var ErrRateLimited = errors.New("jobs: tenant rate limit exceeded, try again later")

// Queue is the bounded admission queue with strict priority bands
// layered over per-tenant weighted fair scheduling. Each priority
// level (Spec.Priority, 0..MaxPriority) is its own stride scheduler:
// Pop always serves the highest non-empty band, so interactive and
// failover work preempts bulk traffic outright; within a band, each
// tenant owns a FIFO and a virtual "pass", and the dispatcher picks
// the active tenant with the smallest pass, advancing it by 1/weight.
// A tenant hammering one band therefore cannot starve the others in
// that band (a 10:1 hostile mix still dequeues ~alternately, see the
// fairness test), and a bulk flood cannot delay an interactive job at
// all. Jobs within one (tenant, priority) pair stay strictly FIFO.
type Queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	size int
	// levels holds one stride scheduler per priority band in use.
	levels map[int]*prioLevel
	// acct is per-tenant accounting across every band.
	acct    map[string]*tenantAcct
	weights map[string]int
	closed  bool
}

// prioLevel is one strict priority band: an independent stride
// scheduler with its own virtual clock.
type prioLevel struct {
	tenants map[string]*tenantFIFO
	// globalPass is the band's virtual clock: the pass of the last
	// dispatch. A tenant going from idle to active starts at the
	// current clock rather than its stale pass, so sleeping never
	// accrues credit.
	globalPass float64
	size       int
}

type tenantFIFO struct {
	name   string
	weight int
	jobs   []*Job
	pass   float64
}

// tenantAcct is one tenant's admission accounting, aggregated across
// priority bands (guarded by Queue.mu).
type tenantAcct struct {
	weight      int
	queued      int
	admitted    int64
	shed        int64
	completed   int64
	failed      int64
	cancelled   int64
	retried     int64
	rateLimited int64
}

// NewQueue builds a queue admitting at most capacity jobs across all
// tenants and priority bands (minimum 1). weights gives per-tenant
// scheduling weight (default 1); a weight-2 tenant receives twice the
// dispatch rate of a weight-1 tenant under contention within a band.
func NewQueue(capacity int, weights map[string]int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{
		cap:     capacity,
		levels:  map[int]*prioLevel{},
		acct:    map[string]*tenantAcct{},
		weights: weights,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *Queue) tenantWeight(name string) int {
	w := q.weights[name]
	if w < 1 {
		w = 1
	}
	return w
}

func (q *Queue) account(name string) *tenantAcct {
	a, ok := q.acct[name]
	if !ok {
		a = &tenantAcct{weight: q.tenantWeight(name)}
		q.acct[name] = a
	}
	return a
}

func (q *Queue) level(priority int) *prioLevel {
	l, ok := q.levels[priority]
	if !ok {
		l = &prioLevel{tenants: map[string]*tenantFIFO{}}
		q.levels[priority] = l
	}
	return l
}

func (l *prioLevel) tenant(name string, weight int) *tenantFIFO {
	t, ok := l.tenants[name]
	if !ok {
		t = &tenantFIFO{name: name, weight: weight}
		l.tenants[name] = t
	}
	return t
}

// Enqueue admits a job or refuses with ErrQueueFull / ErrDraining.
func (q *Queue) Enqueue(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	a := q.account(j.Spec.Tenant)
	if q.closed {
		return ErrDraining
	}
	if q.size >= q.cap {
		a.shed++
		return ErrQueueFull
	}
	l := q.level(j.Spec.Priority)
	t := l.tenant(j.Spec.Tenant, a.weight)
	if len(t.jobs) == 0 && t.pass < l.globalPass {
		t.pass = l.globalPass
	}
	t.jobs = append(t.jobs, j)
	l.size++
	a.admitted++
	a.queued++
	q.size++
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available and returns the pick: the
// highest non-empty priority band's fair-share choice. It returns
// ok=false once the queue is closed and fully drained — the workers'
// exit signal.
func (q *Queue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	var band *prioLevel
	for p := MaxPriority; p >= 0; p-- {
		if l, ok := q.levels[p]; ok && l.size > 0 {
			band = l
			break
		}
	}
	var pick *tenantFIFO
	for _, t := range band.tenants {
		if len(t.jobs) == 0 {
			continue
		}
		if pick == nil || t.pass < pick.pass || (t.pass == pick.pass && t.name < pick.name) {
			pick = t
		}
	}
	j := pick.jobs[0]
	pick.jobs = pick.jobs[1:]
	band.size--
	q.size--
	q.account(j.Spec.Tenant).queued--
	band.globalPass = pick.pass
	pick.pass += 1 / float64(pick.weight)
	return j, true
}

// Remove takes a still-queued job out of its band's tenant FIFO (a
// cancellation racing admission). It reports whether the job was
// found; false means a worker already popped it (or it was never
// queued) and the caller must cancel through the job's context
// instead. The freed slot is immediately available to Enqueue.
func (q *Queue) Remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.levels[j.Spec.Priority]
	if !ok {
		return false
	}
	t, ok := l.tenants[j.Spec.Tenant]
	if !ok {
		return false
	}
	for i, x := range t.jobs {
		if x == j {
			t.jobs = append(t.jobs[:i], t.jobs[i+1:]...)
			l.size--
			q.size--
			q.account(j.Spec.Tenant).queued--
			return true
		}
	}
	return false
}

// noteRetry charges one retry to the tenant's accounting (the retried
// job re-enters its tenant's FIFO, so the fair-share stride charges
// the re-dispatch to the same tenant automatically).
func (q *Queue) noteRetry(tenant string) {
	q.mu.Lock()
	q.account(tenant).retried++
	q.mu.Unlock()
}

// noteRateLimited books one refused-by-rate-limit submission.
func (q *Queue) noteRateLimited(tenant string) {
	q.mu.Lock()
	q.account(tenant).rateLimited++
	q.mu.Unlock()
}

// Close stops admission; queued jobs still drain through Pop.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Depth is the number of queued (admitted, not yet running) jobs.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// finish books a job's terminal state into its tenant's counters.
func (q *Queue) finish(tenant string, st State) {
	q.mu.Lock()
	defer q.mu.Unlock()
	a := q.account(tenant)
	switch st {
	case StateDone:
		a.completed++
	case StateCancelled:
		a.cancelled++
	default: // failed, quarantined
		a.failed++
	}
}

// TenantStats is one tenant's admission accounting.
type TenantStats struct {
	Weight    int   `json:"weight"`
	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Queued    int   `json:"queued"`
	Cancelled int64 `json:"cancelled,omitempty"`
	Retried   int64 `json:"retried,omitempty"`
	// RateLimited counts submissions refused by the tenant's token
	// bucket (never admitted, so not part of Admitted or Shed).
	RateLimited int64 `json:"rate_limited,omitempty"`
}

// Stats snapshots every tenant's counters.
func (q *Queue) Stats() map[string]TenantStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]TenantStats, len(q.acct))
	for name, a := range q.acct {
		out[name] = TenantStats{
			Weight:      a.weight,
			Admitted:    a.admitted,
			Shed:        a.shed,
			Completed:   a.completed,
			Failed:      a.failed,
			Queued:      a.queued,
			Cancelled:   a.cancelled,
			Retried:     a.retried,
			RateLimited: a.rateLimited,
		}
	}
	return out
}
