package jobs

import (
	"errors"
	"sync"
)

// ErrQueueFull reports that admission would exceed the queue bound:
// the submission is shed (HTTP 429 + Retry-After) rather than letting
// latency grow without limit.
var ErrQueueFull = errors.New("jobs: queue full, try again later")

// ErrDraining reports that the server has stopped admitting work
// (graceful shutdown in progress, HTTP 503).
var ErrDraining = errors.New("jobs: server draining, not admitting jobs")

// ErrRateLimited reports that the tenant's token bucket is empty: the
// submission is refused before it reaches the fair queue (HTTP 429 +
// Retry-After).
var ErrRateLimited = errors.New("jobs: tenant rate limit exceeded, try again later")

// Queue is the bounded admission queue with per-tenant weighted fair
// scheduling — stride scheduling over per-tenant FIFOs. Each tenant
// owns a FIFO and a virtual "pass"; Pop always dispatches the active
// tenant with the smallest pass, then advances that pass by 1/weight.
// A tenant hammering the queue therefore cannot starve the others: a
// 10:1 hostile mix still dequeues ~alternately (see the fairness
// test), and the hostile tenant is the one that hits the bound and
// gets shed. Jobs within one tenant stay strictly FIFO.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cap     int
	size    int
	tenants map[string]*tenantQ
	// globalPass is the virtual clock: the pass of the last dispatch.
	// A tenant going from idle to active starts at the current clock
	// rather than its stale pass, so sleeping never accrues credit.
	globalPass float64
	weights    map[string]int
	closed     bool
}

type tenantQ struct {
	name   string
	weight int
	jobs   []*Job
	pass   float64
	// accounting (guarded by Queue.mu)
	admitted    int64
	shed        int64
	completed   int64
	failed      int64
	cancelled   int64
	retried     int64
	rateLimited int64
}

// NewQueue builds a queue admitting at most capacity jobs across all
// tenants (minimum 1). weights gives per-tenant scheduling weight
// (default 1); a weight-2 tenant receives twice the dispatch rate of a
// weight-1 tenant under contention.
func NewQueue(capacity int, weights map[string]int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{cap: capacity, tenants: map[string]*tenantQ{}, weights: weights}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *Queue) tenant(name string) *tenantQ {
	t, ok := q.tenants[name]
	if !ok {
		w := q.weights[name]
		if w < 1 {
			w = 1
		}
		t = &tenantQ{name: name, weight: w}
		q.tenants[name] = t
	}
	return t
}

// Enqueue admits a job or refuses with ErrQueueFull / ErrDraining.
func (q *Queue) Enqueue(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenant(j.Spec.Tenant)
	if q.closed {
		return ErrDraining
	}
	if q.size >= q.cap {
		t.shed++
		return ErrQueueFull
	}
	if len(t.jobs) == 0 && t.pass < q.globalPass {
		t.pass = q.globalPass
	}
	t.jobs = append(t.jobs, j)
	t.admitted++
	q.size++
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available and returns the fair-share pick.
// It returns ok=false once the queue is closed and fully drained —
// the workers' exit signal.
func (q *Queue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	var pick *tenantQ
	for _, t := range q.tenants {
		if len(t.jobs) == 0 {
			continue
		}
		if pick == nil || t.pass < pick.pass || (t.pass == pick.pass && t.name < pick.name) {
			pick = t
		}
	}
	j := pick.jobs[0]
	pick.jobs = pick.jobs[1:]
	q.size--
	q.globalPass = pick.pass
	pick.pass += 1 / float64(pick.weight)
	return j, true
}

// Remove takes a still-queued job out of its tenant's FIFO (a
// cancellation racing admission). It reports whether the job was
// found; false means a worker already popped it (or it was never
// queued) and the caller must cancel through the job's context
// instead. The freed slot is immediately available to Enqueue.
func (q *Queue) Remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tenants[j.Spec.Tenant]
	if !ok {
		return false
	}
	for i, x := range t.jobs {
		if x == j {
			t.jobs = append(t.jobs[:i], t.jobs[i+1:]...)
			q.size--
			return true
		}
	}
	return false
}

// noteRetry charges one retry to the tenant's accounting (the retried
// job re-enters the tenant's own FIFO, so the fair-share stride
// charges the re-dispatch to the same tenant automatically).
func (q *Queue) noteRetry(tenant string) {
	q.mu.Lock()
	q.tenant(tenant).retried++
	q.mu.Unlock()
}

// noteRateLimited books one refused-by-rate-limit submission.
func (q *Queue) noteRateLimited(tenant string) {
	q.mu.Lock()
	q.tenant(tenant).rateLimited++
	q.mu.Unlock()
}

// Close stops admission; queued jobs still drain through Pop.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Depth is the number of queued (admitted, not yet running) jobs.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// finish books a job's terminal state into its tenant's counters.
func (q *Queue) finish(tenant string, st State) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenant(tenant)
	switch st {
	case StateDone:
		t.completed++
	case StateCancelled:
		t.cancelled++
	default: // failed, quarantined
		t.failed++
	}
}

// TenantStats is one tenant's admission accounting.
type TenantStats struct {
	Weight    int   `json:"weight"`
	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Queued    int   `json:"queued"`
	Cancelled int64 `json:"cancelled,omitempty"`
	Retried   int64 `json:"retried,omitempty"`
	// RateLimited counts submissions refused by the tenant's token
	// bucket (never admitted, so not part of Admitted or Shed).
	RateLimited int64 `json:"rate_limited,omitempty"`
}

// Stats snapshots every tenant's counters.
func (q *Queue) Stats() map[string]TenantStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]TenantStats, len(q.tenants))
	for name, t := range q.tenants {
		out[name] = TenantStats{
			Weight:      t.weight,
			Admitted:    t.admitted,
			Shed:        t.shed,
			Completed:   t.completed,
			Failed:      t.failed,
			Queued:      len(t.jobs),
			Cancelled:   t.cancelled,
			Retried:     t.retried,
			RateLimited: t.rateLimited,
		}
	}
	return out
}
