package jobs

import (
	"container/list"
	"sync"
	"time"

	"vbuscluster/internal/core"
)

// PlanCache is the LRU compiled-plan cache. A hit returns the cached
// *core.Compiled — immutable at run time, so concurrent workers run it
// on separate clusters without copying (see core.RunParallelWith) —
// plus the cold compile cost it originally paid, kept so reports can
// show what the hit saved.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     int64
	misses   int64
}

type planEntry struct {
	key      string
	spec     Spec
	compiled *core.Compiled
	coldWall time.Duration
}

// NewPlanCache builds a cache holding up to capacity plans (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
	}
}

// Get returns the cached plan for key and the wall time its cold
// compile took, marking the entry most recently used.
func (c *PlanCache) Get(key string) (*core.Compiled, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*planEntry)
	return e.compiled, e.coldWall, true
}

// Put inserts (or refreshes) a plan, evicting the least recently used
// entry beyond capacity. spec is the normalized spec the plan was
// compiled from, retained so the cache's working set can be journaled
// and recompiled on restart (see SaveCache/WarmCache).
func (c *PlanCache) Put(key string, spec Spec, compiled *core.Compiled, coldWall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*planEntry)
		e.spec, e.compiled, e.coldWall = spec, compiled, coldWall
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, spec: spec, compiled: compiled, coldWall: coldWall})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*planEntry).key)
	}
}

// Entries lists the cached plans' specs from least to most recently
// used — the replay order that reconstructs the same LRU stacking when
// each entry is re-Put in sequence.
func (c *PlanCache) Entries() []Spec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Spec, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*planEntry).spec)
	}
	return out
}

// CacheStats is the cache's externally visible state.
type CacheStats struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}

// Stats snapshots the counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.capacity}
	if total := c.hits + c.misses; total > 0 {
		st.HitRate = float64(c.hits) / float64(total)
	}
	return st
}
