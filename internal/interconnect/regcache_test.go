package interconnect

import "testing"

func key(space string, off int64) RegKey {
	return RegKey{Space: space, Offset: off, Elems: 64}
}

func TestRegCacheHitMissEvict(t *testing.T) {
	c := NewRegCache(2)
	if c.Use(key("a", 0)) {
		t.Fatal("first Use of a region reported registered")
	}
	if !c.Use(key("a", 0)) {
		t.Fatal("second Use of a region reported unregistered")
	}
	c.Use(key("b", 0)) // miss, cache now {b, a} (b MRU)
	c.Use(key("a", 0)) // hit, cache now {a, b}
	c.Use(key("c", 0)) // miss: evicts b, the LRU entry
	if c.Lookup(key("b", 0)) {
		t.Error("LRU entry b survived eviction")
	}
	if !c.Lookup(key("a", 0)) || !c.Lookup(key("c", 0)) {
		t.Error("recently used entries were evicted")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 3 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 hits, 3 misses, 1 eviction", st)
	}
	if st.Size != 2 || st.Cap != 2 {
		t.Errorf("stats size/cap = %d/%d, want 2/2", st.Size, st.Cap)
	}
}

func TestRegCacheLookupDoesNotTouch(t *testing.T) {
	c := NewRegCache(2)
	c.Use(key("a", 0))
	c.Use(key("b", 0))
	// A peek at a must not refresh it: the next insertion still evicts
	// a as the least recently *used* entry.
	if !c.Lookup(key("a", 0)) {
		t.Fatal("a not registered")
	}
	c.Use(key("c", 0))
	if c.Lookup(key("a", 0)) {
		t.Error("Lookup refreshed recency; a should have been evicted")
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Errorf("Lookup counted as a hit: %+v", st)
	}
}

func TestRegCacheKeyIdentity(t *testing.T) {
	c := NewRegCache(8)
	c.Use(RegKey{Space: "a", Offset: 0, Elems: 64})
	for _, k := range []RegKey{
		{Space: "a", Offset: 8, Elems: 64}, // different run
		{Space: "a", Offset: 0, Elems: 32}, // different length
		{Space: "b", Offset: 0, Elems: 64}, // different buffer
	} {
		if c.Lookup(k) {
			t.Errorf("distinct region %+v reported registered", k)
		}
	}
}

func TestRegCacheReset(t *testing.T) {
	c := NewRegCache(4)
	c.Use(key("a", 0))
	c.Use(key("a", 0))
	c.Reset()
	if c.Lookup(key("a", 0)) {
		t.Error("registration survived Reset")
	}
	if st := c.Stats(); st != (RegCacheStats{Cap: 4}) {
		t.Errorf("stats after Reset = %+v, want zeroes", st)
	}
}

func TestRegCacheMinimumCapacity(t *testing.T) {
	c := NewRegCache(0)
	c.Use(key("a", 0))
	if !c.Lookup(key("a", 0)) {
		t.Error("capacity floor of 1 not applied")
	}
}
