package interconnect

// Transport classifies the data path one runtime operation took — the
// qualitative classes the paper's evaluation distinguishes (§2.2): the
// DMA engine for contiguous one-sided transfers, the per-element
// programmed-I/O path for strided ones, the hardware virtual-bus
// broadcast, and wormhole-routed point-to-point messages. The tracing
// subsystem (internal/trace) tags every recorded event with its
// Transport so profiles can split time and bytes by path.
type Transport uint8

const (
	// TransportNone marks events with no data path at all (compiler
	// passes and other auxiliary tracks).
	TransportNone Transport = iota
	// TransportLocal is a rank-local memory copy; no NIC is involved.
	TransportLocal
	// TransportDMA is the contiguous one-sided transfer over the DMA
	// engine: user buffer → remote memory without processor involvement.
	TransportDMA
	// TransportPIO is the strided per-element programmed-I/O path, the
	// penalty the compiler's middle/coarse granularities avoid.
	TransportPIO
	// TransportP2P is a wormhole-routed point-to-point message: every
	// two-sided SEND, and the contiguous path of fabrics without a DMA
	// engine (kernel-mediated Ethernet).
	TransportP2P
	// TransportBcast is a one-to-all broadcast — the V-Bus hardware bus
	// when the fabric has one, a software tree otherwise.
	TransportBcast
	// TransportSync is synchronization: barriers, fences, lock
	// handshakes and receive-side waits. No payload moves.
	TransportSync
	// TransportRetry is reliability overhead: go-back-N retransmissions,
	// ACK timeouts, backoff waits and link-outage stalls charged by the
	// reliable-transport layer under fault injection. Zero-fault runs
	// record no retry events at all.
	TransportRetry
	// TransportCkpt is coordinated-checkpoint traffic: the quiesce
	// rendezvous plus the serialized snapshot each rank streams to
	// stable storage. Non-resilient runs record no checkpoint events.
	TransportCkpt
	// TransportRecovery is crash-recovery traffic: the survivors'
	// agreement round, communicator shrink, and checkpoint restore
	// broadcast after a rank failure.
	TransportRecovery
	// TransportPack is the pack-and-coalesce path for strided one-sided
	// transfers: the origin packs the region into a staging buffer, one
	// contiguous DMA burst moves it, and the far side unpacks — the
	// APENet-style remedy for the per-element PIO penalty. The charge
	// covers memcpy + DMA setup + wire in one interval.
	TransportPack
	// TransportEager is the eager protocol of an RDMA-class fabric: the
	// sender copies the payload into a pre-registered bounce buffer and
	// ships it in one message, paying a per-byte copy to avoid the
	// registration handshake. Small contiguous transfers ride here.
	TransportEager
	// TransportRndv is the rendezvous protocol of an RDMA-class fabric:
	// an RTS/CTS handshake, on-demand memory registration (skipped on a
	// registration-cache hit) and a zero-copy DMA of the user buffer.
	// Large contiguous transfers ride here.
	TransportRndv
	// NumTransports sizes per-transport counter arrays.
	NumTransports
)

// String names the transport class compactly ("dma", "pio", ...).
func (t Transport) String() string {
	switch t {
	case TransportNone:
		return "none"
	case TransportLocal:
		return "local"
	case TransportDMA:
		return "dma"
	case TransportPIO:
		return "pio"
	case TransportP2P:
		return "p2p"
	case TransportBcast:
		return "bcast"
	case TransportSync:
		return "sync"
	case TransportRetry:
		return "retry"
	case TransportCkpt:
		return "ckpt"
	case TransportRecovery:
		return "recovery"
	case TransportPack:
		return "pack"
	case TransportEager:
		return "eager"
	case TransportRndv:
		return "rndv"
	default:
		return "invalid"
	}
}

// TransportFromName maps a transport's canonical name (the String
// form) back to its value. Unknown names report ok=false: consumers
// that validate externally supplied traces use this to reject
// transport classes that were never registered here.
func TransportFromName(name string) (Transport, bool) {
	for t := TransportNone; t < NumTransports; t++ {
		if t.String() == name {
			return t, true
		}
	}
	return TransportNone, false
}

// ContigTransport reports which class a contiguous remote transfer
// travels on this fabric: the DMA engine when the card has one, a
// CPU-mediated point-to-point message otherwise.
func (c Caps) ContigTransport() Transport {
	if c.DMAContig {
		return TransportDMA
	}
	return TransportP2P
}

// StridedTransport reports which class a strided remote transfer
// travels: the per-element programmed-I/O path when the card exposes
// one, else whatever the contiguous path uses (an idealized fabric
// moves strided data as cheaply as contiguous).
func (c Caps) StridedTransport() Transport {
	if c.PIOStrided {
		return TransportPIO
	}
	return c.ContigTransport()
}
