package interconnect

// The memory-registration cache of an RDMA-class fabric. Registering
// (pinning) a user buffer with the NIC is the expensive part of the
// rendezvous path; real MPI implementations over RDMA keep an LRU
// cache of registered regions so repeated transfers from the same
// buffer skip the registration syscall. The machine layer keeps one
// RegCache per physical node (sender-side state, like opsSeen — it
// survives communicator rebuilds and is cleared by Cluster.Reset);
// the static estimator replays the same cache to predict runtime
// charges exactly.
//
// The eager path never touches the cache: eager payloads ride
// pre-registered bounce buffers, so an eager transfer neither warms
// nor consults the registration state.

import (
	"container/list"
	"sync"
)

// RegKey identifies one registered source region: the named buffer
// (array symbol or window) plus the element run within it. An empty
// Space marks an anonymous buffer, which is never cached — callers
// must not insert such keys.
type RegKey struct {
	// Space names the buffer the region lives in (the compiler uses
	// the array symbol name).
	Space string
	// Offset and Elems delimit the element run.
	Offset, Elems int64
}

// RegCacheStats counts cache traffic for profiling and sweeps.
type RegCacheStats struct {
	// Hits and Misses count Use calls that found / did not find the
	// region registered.
	Hits, Misses int64
	// Evictions counts regions dropped to make room.
	Evictions int64
	// Size and Cap are the current and maximum entry counts.
	Size, Cap int
}

// RegCache is a fixed-capacity LRU set of registered regions. It is
// safe for concurrent use; each rank normally touches only its own
// node's cache, but recovery paths may charge from other goroutines.
type RegCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are RegKey
	entries map[RegKey]*list.Element
	stats   RegCacheStats
}

// NewRegCache builds a cache holding up to capacity regions; a
// capacity below 1 is raised to 1 (a cache that can hold nothing would
// make the rendezvous path silently re-register forever).
func NewRegCache(capacity int) *RegCache {
	if capacity < 1 {
		capacity = 1
	}
	return &RegCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[RegKey]*list.Element, capacity),
	}
}

// Lookup peeks whether k is registered without touching recency order
// or statistics — the protocol decision reads the state before the
// runtime commits to a path.
func (c *RegCache) Lookup(k RegKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[k]
	return ok
}

// Use records a rendezvous transfer from region k: a present region is
// touched (hit), an absent one is registered (miss), evicting the
// least recently used entry when full. It reports whether the region
// was already registered — the cost the caller charges follows this.
func (c *RegCache) Use(k RegKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(RegKey))
		c.stats.Evictions++
	}
	c.entries[k] = c.order.PushFront(k)
	return false
}

// Stats snapshots the cache counters.
func (c *RegCache) Stats() RegCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Size = c.order.Len()
	st.Cap = c.cap
	return st
}

// Reset drops every registration and zeroes the counters (the cluster
// reuses it between runs).
func (c *RegCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[RegKey]*list.Element, c.cap)
	c.stats = RegCacheStats{}
}
