package interconnect

import "testing"

func TestTransportStrings(t *testing.T) {
	want := map[Transport]string{
		TransportNone:     "none",
		TransportLocal:    "local",
		TransportDMA:      "dma",
		TransportPIO:      "pio",
		TransportP2P:      "p2p",
		TransportBcast:    "bcast",
		TransportSync:     "sync",
		TransportRetry:    "retry",
		TransportCkpt:     "ckpt",
		TransportRecovery: "recovery",
		TransportPack:     "pack",
		TransportEager:    "eager",
		TransportRndv:     "rndv",
	}
	if len(want) != int(NumTransports) {
		t.Fatalf("test covers %d transports, NumTransports is %d", len(want), NumTransports)
	}
	for tr, s := range want {
		if tr.String() != s {
			t.Errorf("%d.String() = %q, want %q", tr, tr.String(), s)
		}
	}
	if Transport(200).String() != "invalid" {
		t.Errorf("out-of-range transport should stringify as invalid")
	}
}

func TestTransportFromName(t *testing.T) {
	for tr := TransportNone; tr < NumTransports; tr++ {
		got, ok := TransportFromName(tr.String())
		if !ok || got != tr {
			t.Errorf("TransportFromName(%q) = %v, %v; want %v, true", tr.String(), got, ok, tr)
		}
	}
	for _, bad := range []string{"", "invalid", "bogus", "DMA"} {
		if _, ok := TransportFromName(bad); ok {
			t.Errorf("TransportFromName(%q) accepted, want rejection", bad)
		}
	}
}

func TestCapsTransportSelection(t *testing.T) {
	cases := []struct {
		name    string
		caps    Caps
		contig  Transport
		strided Transport
	}{
		{"dma+pio (vbus-like)", Caps{DMAContig: true, PIOStrided: true}, TransportDMA, TransportPIO},
		{"pio only (ethernet-like)", Caps{PIOStrided: true}, TransportP2P, TransportPIO},
		{"dma only (ideal-like)", Caps{DMAContig: true}, TransportDMA, TransportDMA},
		{"bare", Caps{}, TransportP2P, TransportP2P},
	}
	for _, tc := range cases {
		if got := tc.caps.ContigTransport(); got != tc.contig {
			t.Errorf("%s: contig = %v, want %v", tc.name, got, tc.contig)
		}
		if got := tc.caps.StridedTransport(); got != tc.strided {
			t.Errorf("%s: strided = %v, want %v", tc.name, got, tc.strided)
		}
	}
}

func TestRegisteredBackendTransports(t *testing.T) {
	ic, err := New("ideal")
	if err != nil {
		t.Fatal(err)
	}
	caps := ic.Caps()
	if caps.ContigTransport() != TransportDMA {
		t.Errorf("ideal contig = %v, want dma", caps.ContigTransport())
	}
	if caps.StridedTransport() != TransportDMA {
		t.Errorf("ideal strided = %v, want dma (no PIO penalty)", caps.StridedTransport())
	}
}
