package interconnect

import "vbuscluster/internal/sim"

// Ideal is a zero-latency, infinite-bandwidth fabric: every transfer,
// broadcast and setup costs nothing. It is not a model of any card —
// it is the experimental control that isolates compute scaling from
// communication: a run whose speedup is still sublinear on the Ideal
// backend is limited by partitioning overhead or serial sections, not
// by the network.
type Ideal struct{}

// NewIdeal builds the ideal backend.
func NewIdeal() *Ideal { return &Ideal{} }

// Name implements Interconnect.
func (*Ideal) Name() string { return "ideal" }

// SendSetup implements Interconnect.
func (*Ideal) SendSetup() sim.Time { return 0 }

// ContigTime implements Interconnect.
func (*Ideal) ContigTime(bytes, hops int) sim.Time { return 0 }

// StridedTime implements Interconnect.
func (*Ideal) StridedTime(elems, elemSize, hops int) sim.Time { return 0 }

// PerElementOverhead implements Interconnect.
func (*Ideal) PerElementOverhead() sim.Time { return 0 }

// BroadcastTime implements Interconnect.
func (*Ideal) BroadcastTime(bytes, nodes int) sim.Time { return 0 }

// SmallMessageLatency implements Interconnect.
func (*Ideal) SmallMessageLatency() sim.Time { return 0 }

// Caps implements Interconnect: transfers are free regardless of
// shape, so the fabric behaves like perfect DMA with no PIO penalty,
// hardware broadcast, and no placement sensitivity.
func (*Ideal) Caps() Caps {
	return Caps{DMAContig: true, PIOStrided: false, HardwareBroadcast: true, HopSensitive: false}
}

var _ Interconnect = (*Ideal)(nil)

func init() {
	Register("ideal", func() (Interconnect, error) { return NewIdeal(), nil })
}
