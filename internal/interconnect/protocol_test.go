package interconnect_test

import (
	"testing"

	"vbuscluster/internal/interconnect"
)

// protocolModels lists every registered backend that prices an
// eager/rendezvous protocol switch.
func protocolModels(t *testing.T) map[string]interconnect.ProtocolModel {
	t.Helper()
	out := map[string]interconnect.ProtocolModel{}
	for _, name := range interconnect.Names() {
		if pm, ok := interconnect.MustNew(name).(interconnect.ProtocolModel); ok {
			out[name] = pm
		}
	}
	if len(out) == 0 {
		t.Fatal("no registered backend implements ProtocolModel (rdma missing?)")
	}
	return out
}

// TestProtocolCrossoverExact is the property test of the crossover
// search: at hitRate 0 and 1 the blend is the exact integer comparison
// the runtime charges, so eager must win (weakly) strictly below the
// returned byte count and rendezvous strictly at and above it.
func TestProtocolCrossoverExact(t *testing.T) {
	for name, pm := range protocolModels(t) {
		for _, hops := range []int{1, 3} {
			for _, tc := range []struct {
				hitRate    float64
				registered bool
			}{{0, false}, {1, true}} {
				b := pm.ProtocolCrossoverBytes(hops, tc.hitRate)
				if b <= 0 {
					t.Fatalf("%s: ProtocolCrossoverBytes(%d, %v) = %d, want > 0",
						name, hops, tc.hitRate, b)
				}
				below := int(b - 1)
				if pm.RendezvousTime(below, hops, tc.registered) < pm.EagerTime(below, hops) {
					t.Errorf("%s: rendezvous already wins at %d bytes, below crossover %d (hops %d, hit %v)",
						name, below, b, hops, tc.hitRate)
				}
				at := int(b)
				if pm.RendezvousTime(at, hops, tc.registered) >= pm.EagerTime(at, hops) {
					t.Errorf("%s: rendezvous does not win at the crossover %d bytes (hops %d, hit %v)",
						name, b, hops, tc.hitRate)
				}
			}
		}
	}
}

// TestProtocolCrossoverMonotoneInHitRate checks that a better
// registration-cache hit rate never moves the crossover up: caching
// only discounts the rendezvous path, so the switch point can only
// come down (or stay) as the hit rate rises.
func TestProtocolCrossoverMonotoneInHitRate(t *testing.T) {
	for name, pm := range protocolModels(t) {
		for _, hops := range []int{1, 3} {
			prev := int64(-1)
			for _, hit := range []float64{0, 0.25, 0.5, 0.75, 1} {
				b := pm.ProtocolCrossoverBytes(hops, hit)
				if b <= 0 {
					t.Fatalf("%s: no crossover at hops %d, hit %v", name, hops, hit)
				}
				if prev >= 0 && b > prev {
					t.Errorf("%s: crossover grew from %d to %d bytes as hit rate rose to %v (hops %d)",
						name, prev, b, hit, hops)
				}
				prev = b
			}
		}
	}
}
