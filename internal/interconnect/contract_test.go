package interconnect_test

import (
	"testing"

	"vbuscluster/internal/interconnect"
	_ "vbuscluster/internal/nic" // register the vbus and ethernet backends
	"vbuscluster/internal/sim"
)

// TestRegistry checks that the shipped backends are registered and
// constructible, and that unknown names fail with a useful error.
func TestRegistry(t *testing.T) {
	names := interconnect.Names()
	want := map[string]bool{"vbus": false, "vbus3d": false, "ethernet": false, "ideal": false, "rdma": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("backend %q not registered (have %v)", n, names)
		}
	}
	for _, n := range names {
		ic, err := interconnect.New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if ic == nil {
			t.Fatalf("New(%q) returned nil backend", n)
		}
	}
	if _, err := interconnect.New("no-such-fabric"); err == nil {
		t.Error("New of unknown backend succeeded")
	}
}

// TestContract checks every registered backend against the
// Interconnect contract: all costs non-negative, transfer times
// monotone non-decreasing in payload size, broadcast free for a single
// node, and capability flags consistent with reported costs.
func TestContract(t *testing.T) {
	for _, name := range interconnect.Names() {
		t.Run(name, func(t *testing.T) {
			ic, err := interconnect.New(name)
			if err != nil {
				t.Fatal(err)
			}
			nonNeg := func(what string, v sim.Time) {
				t.Helper()
				if v < 0 {
					t.Errorf("%s = %v, want >= 0", what, v)
				}
			}
			nonNeg("SendSetup", ic.SendSetup())
			nonNeg("PerElementOverhead", ic.PerElementOverhead())
			nonNeg("SmallMessageLatency", ic.SmallMessageLatency())

			// Monotone in bytes/elements at several hop counts.
			for _, hops := range []int{0, 1, 4} {
				var prevC, prevS sim.Time
				for i, bytes := range []int{0, 8, 64, 4096, 1 << 20} {
					c := ic.ContigTime(bytes, hops)
					nonNeg("ContigTime", c)
					s := ic.StridedTime(bytes/8, 8, hops)
					nonNeg("StridedTime", s)
					if i > 0 {
						if c < prevC {
							t.Errorf("ContigTime(%d, %d) = %v < ContigTime of smaller payload %v", bytes, hops, c, prevC)
						}
						if s < prevS {
							t.Errorf("StridedTime(%d elems, %d) = %v < smaller payload %v", bytes/8, hops, s, prevS)
						}
					}
					prevC, prevS = c, s
				}
			}

			// Broadcast: free for <=1 node, non-negative and monotone in
			// payload beyond that.
			if bt := ic.BroadcastTime(1<<20, 1); bt != 0 {
				t.Errorf("BroadcastTime(_, 1) = %v, want 0", bt)
			}
			var prev sim.Time
			for i, bytes := range []int{8, 4096, 1 << 20} {
				bt := ic.BroadcastTime(bytes, 4)
				nonNeg("BroadcastTime", bt)
				if i > 0 && bt < prev {
					t.Errorf("BroadcastTime(%d, 4) = %v < smaller payload %v", bytes, bt, prev)
				}
				prev = bt
			}

			if ic.Name() == "" {
				t.Error("empty Name()")
			}
			if got := ic.Caps().String(); got == "" {
				t.Error("empty Caps().String()")
			}

			// Protocol-switched backends: the EagerRendezvous flag and
			// the ProtocolModel interface must agree, and both priced
			// paths obey the non-negativity/monotonicity contract.
			pm, hasProto := ic.(interconnect.ProtocolModel)
			if ic.Caps().EagerRendezvous != hasProto {
				t.Fatalf("EagerRendezvous cap %v but ProtocolModel implemented = %v",
					ic.Caps().EagerRendezvous, hasProto)
			}
			if hasProto {
				if pm.RegCacheCapacity() < 1 {
					t.Errorf("RegCacheCapacity() = %d, want >= 1", pm.RegCacheCapacity())
				}
				for _, hops := range []int{0, 1, 4} {
					var prevE, prevC, prevW sim.Time
					for i, bytes := range []int{0, 8, 64, 4096, 1 << 20} {
						e := pm.EagerTime(bytes, hops)
						cold := pm.RendezvousTime(bytes, hops, false)
						warm := pm.RendezvousTime(bytes, hops, true)
						nonNeg("EagerTime", e)
						nonNeg("RendezvousTime(cold)", cold)
						nonNeg("RendezvousTime(warm)", warm)
						if warm > cold {
							t.Errorf("RendezvousTime(%d, %d, registered) = %v > unregistered %v",
								bytes, hops, warm, cold)
						}
						if i > 0 && (e < prevE || cold < prevC || warm < prevW) {
							t.Errorf("protocol times not monotone at %d bytes, %d hops", bytes, hops)
						}
						prevE, prevC, prevW = e, cold, warm
					}
				}
			}
		})
	}
}

// TestHopSensitivity checks the HopSensitive capability flag tells the
// truth: hop-sensitive backends charge more for farther targets,
// insensitive ones charge the same.
func TestHopSensitivity(t *testing.T) {
	for _, name := range interconnect.Names() {
		ic, err := interconnect.New(name)
		if err != nil {
			t.Fatal(err)
		}
		near := ic.ContigTime(4096, 1)
		far := ic.ContigTime(4096, 6)
		if ic.Caps().HopSensitive {
			if far <= near {
				t.Errorf("%s: hop-sensitive but ContigTime hops=6 (%v) <= hops=1 (%v)", name, far, near)
			}
		} else if far != near {
			t.Errorf("%s: hop-insensitive but ContigTime differs by distance: %v vs %v", name, near, far)
		}
	}
}

// TestIdealIsFree pins the ideal backend's purpose: every cost is zero.
func TestIdealIsFree(t *testing.T) {
	ic, err := interconnect.New("ideal")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []sim.Time{
		ic.SendSetup(), ic.PerElementOverhead(), ic.SmallMessageLatency(),
		ic.ContigTime(1<<20, 8), ic.StridedTime(1<<17, 8, 8), ic.BroadcastTime(1<<20, 64),
	} {
		if v != 0 {
			t.Fatalf("ideal backend charged %v, want 0", v)
		}
	}
}
