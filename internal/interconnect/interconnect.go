// Package interconnect defines the machine-layer seam of the
// environment: the Interconnect interface every network backend
// implements, and a registry of named backends selectable from
// cluster.Params and the -fabric CLI flag.
//
// The paper's central argument is comparative — the V-Bus card against
// Fast Ethernet, DMA against programmed I/O — so the runtime must be
// able to price every operation against interchangeable cost models.
// An Interconnect exposes *cost functions* (how long an operation
// occupies the sender and how long until the payload lands remotely)
// rather than moving bytes itself: the MPI runtime moves the real data
// through Go memory and charges per-process virtual clocks with these
// costs. Swapping the backend therefore changes every virtual time in
// a run while leaving numeric program results bit-identical.
//
// Backends register themselves under a short name (nic registers
// "vbus" and "ethernet" in its init; this package registers "ideal").
// New fabrics plug in by implementing Interconnect and calling
// Register — nothing in cluster, mpi, postpass or the binaries needs
// to change.
package interconnect

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vbuscluster/internal/sim"
)

// Caps describes the data-path capabilities of a backend — the
// qualitative DMA-vs-PIO distinctions of §2.2 that the compiler's
// granularity reasoning is built on, separated from the quantitative
// cost functions.
type Caps struct {
	// DMAContig reports that contiguous transfers move user buffer →
	// driver buffer without interrupting the processor (the V-Bus DMA
	// path). False means the contiguous path is kernel/CPU mediated.
	DMAContig bool
	// PIOStrided reports that strided transfers pay a per-element
	// programmed-I/O cost on the sender — the penalty that makes the
	// compiler's middle/coarse granularities worthwhile.
	PIOStrided bool
	// HardwareBroadcast reports a one-to-all primitive in hardware (the
	// virtual bus). False means broadcasts decay to a software tree of
	// point-to-point messages.
	HardwareBroadcast bool
	// HopSensitive reports that transfer cost grows with mesh hop
	// distance. False models a shared medium (Ethernet) or an idealized
	// fabric where placement is irrelevant.
	HopSensitive bool
	// EagerRendezvous reports that the contiguous path is protocol
	// switched between an eager bounce-buffer copy and a rendezvous
	// registration + zero-copy DMA (the backend implements
	// ProtocolModel and the runtime charges whichever path is chosen
	// per message).
	EagerRendezvous bool
}

// String renders the capability flags compactly, e.g. "dma+pio+hwbcast+hops".
func (c Caps) String() string {
	out := ""
	add := func(on bool, tag string) {
		if !on {
			return
		}
		if out != "" {
			out += "+"
		}
		out += tag
	}
	add(c.DMAContig, "dma")
	add(c.PIOStrided, "pio")
	add(c.HardwareBroadcast, "hwbcast")
	add(c.HopSensitive, "hops")
	add(c.EagerRendezvous, "rndv")
	if out == "" {
		out = "none"
	}
	return out
}

// Interconnect is the cost model of one cluster fabric. All times are
// virtual; implementations must return non-negative times that are
// monotone non-decreasing in payload size (see the contract tests).
type Interconnect interface {
	// Name identifies the backend model.
	Name() string
	// SendSetup is the per-message software overhead on the sender
	// (driver + message-queue handling), charged before any data moves.
	SendSetup() sim.Time
	// ContigTime is the time for a contiguous payload of the given size
	// to move from the sender's user buffer into the receiver's memory
	// over the given hop distance, excluding SendSetup.
	ContigTime(bytes, hops int) sim.Time
	// StridedTime is like ContigTime for a strided region of elems
	// elements of elemSize bytes, using the element-by-element path.
	StridedTime(elems, elemSize, hops int) sim.Time
	// PerElementOverhead is the extra sender-side cost per element of
	// the strided (PIO) path. Exposed for the compiler's cost model.
	PerElementOverhead() sim.Time
	// BroadcastTime is the time for a payload to reach every one of
	// nodes nodes, excluding SendSetup.
	BroadcastTime(bytes, nodes int) sim.Time
	// SmallMessageLatency is the one-way latency of a minimal message
	// across one hop, including setup: the paper's headline latency
	// comparison number.
	SmallMessageLatency() sim.Time
	// Caps reports the backend's data-path capability flags.
	Caps() Caps
}

// GeometryHinter is an optional Interconnect extension: a backend
// whose hop model assumes a particular mesh shape (the 3D-torus
// vbus3d card, for instance, prices hops over three dimensions)
// implements it to tell the machine layer which geometry to build
// for n processes when the caller did not pin one. Backends without
// a preference simply don't implement it and get the default
// near-square 2D mesh.
type GeometryHinter interface {
	// PreferredGeometry returns the mesh dimensions (product >= n)
	// and whether wraparound links should be enabled.
	PreferredGeometry(n int) (dims []int, torus bool)
}

// ProtocolModel is an optional Interconnect extension for RDMA-class
// fabrics whose contiguous path is protocol switched (the rdma card).
// Two paths are priced per transfer: eager copies the payload into a
// pre-registered bounce buffer (per-byte copy cost, no handshake) and
// rendezvous runs an RTS/CTS handshake plus on-demand memory
// registration before a zero-copy DMA. The runtime charges whichever
// path is chosen per message; the compiler's coalesce stage and the
// static estimator consult the same model, so compile-time stamps and
// runtime charges agree by construction.
//
// Both time functions are full origin-side costs (send setup included,
// unlike ContigTime) and must be non-negative and monotone
// non-decreasing in bytes, with the eager path's per-byte slope
// strictly above the rendezvous path's so a crossover, if it exists,
// is unique (the contract tests sweep every registered backend).
type ProtocolModel interface {
	// EagerTime is the origin-side cost of moving bytes over the eager
	// path: post + bounce-buffer copies + wire.
	EagerTime(bytes, hops int) sim.Time
	// RendezvousTime is the origin-side cost of the rendezvous path:
	// post + RTS/CTS handshake + memory registration (skipped when the
	// source region is already registered) + zero-copy wire.
	RendezvousTime(bytes, hops int, registered bool) sim.Time
	// ProtocolCrossoverBytes is the smallest payload at which the
	// rendezvous path beats eager, with the registration cost blended
	// by the expected registration-cache hit rate in [0,1] (0 = every
	// transfer registers, 1 = registration always cached). Returns 0
	// when rendezvous never wins within the search cap. Found by the
	// same doubling + binary-search machinery as
	// nic.PackModel.CrossoverElems.
	ProtocolCrossoverBytes(hops int, hitRate float64) int64
	// RegCacheCapacity is the per-node registration-cache capacity in
	// entries; the machine layer sizes each node's RegCache with it.
	RegCacheCapacity() int
}

// Factory builds a fresh backend instance with its default calibration.
type Factory func() (Interconnect, error)

var registry = struct {
	sync.Mutex
	m map[string]Factory
}{m: map[string]Factory{}}

// Register makes a backend available under name. It panics on a
// duplicate name: backends register from package init functions, where
// a collision is a programming error.
func Register(name string, f Factory) {
	registry.Lock()
	defer registry.Unlock()
	if name == "" || f == nil {
		panic("interconnect: Register with empty name or nil factory")
	}
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("interconnect: backend %q registered twice", name))
	}
	registry.m[name] = f
}

// New builds the named backend. The error lists the registered
// backends with their capability flags so a mistyped -fabric flag is
// self-explaining. The listing is snapshotted under the same lock hold
// as the failed lookup, so it is deterministic even when New races a
// concurrent Register.
func New(name string) (Interconnect, error) {
	registry.Lock()
	f, ok := registry.m[name]
	var snapshot map[string]Factory
	if !ok {
		snapshot = make(map[string]Factory, len(registry.m))
		for n, fac := range registry.m {
			snapshot[n] = fac
		}
	}
	registry.Unlock()
	if !ok {
		return nil, fmt.Errorf("interconnect: unknown backend %q (registered: %s)",
			name, strings.Join(describe(snapshot), ", "))
	}
	return f()
}

// MustNew is New for tests and init-time wiring: it panics on an
// unknown backend or a factory error.
func MustNew(name string) Interconnect {
	ic, err := New(name)
	if err != nil {
		panic(err)
	}
	return ic
}

// Names lists the registered backends in sorted order.
func Names() []string {
	registry.Lock()
	defer registry.Unlock()
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe lists the registered backends with their capability flags —
// "rdma [dma+hops+rndv]" — the rendering registry errors and -fabric
// validation messages print.
func Describe() []string {
	registry.Lock()
	snapshot := make(map[string]Factory, len(registry.m))
	for n, f := range registry.m {
		snapshot[n] = f
	}
	registry.Unlock()
	return describe(snapshot)
}

// describe renders a factory snapshot as sorted "name [caps]" entries.
// Factories are invoked outside the registry lock; one that errors
// lists its bare name.
func describe(snapshot map[string]Factory) []string {
	names := make([]string, 0, len(snapshot))
	for n := range snapshot {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		ic, err := snapshot[n]()
		if err != nil {
			out[i] = n
			continue
		}
		out[i] = fmt.Sprintf("%s [%s]", n, ic.Caps())
	}
	return out
}
