// Package fabric models the physical layer of the V-Bus network card:
// parallel signal lines, conventional pipelining, wave pipelining, and
// the paper's skew-tolerant wave pipelining (SKWP).
//
// The model follows §2.1 of the paper. A link is a bundle of parallel
// signal lines. In conventional pipelining a new data word may only be
// launched after the previous word has fully propagated, so the launch
// interval equals the worst-case line propagation delay. Wave
// pipelining launches several "waves" concurrently; the launch interval
// is then bounded not by propagation delay but by the *skew* between
// the fastest and slowest line (plus a safety margin), because a wave
// must not smear into its neighbor. Plain wave pipelining has two
// problems the paper calls out: tuning the per-line skew requires
// "tremendous efforts", and end-to-end skew accumulates while passing
// through several wave-pipelined cards. SKWP inserts an automatic skew
// sampling circuit at each hop that detects the delay difference
// between all signal lines, samples each line, and re-merges the
// signals in phase — so the inter-hop skew is reset at every card and
// the launch interval is bounded by the (small) residual sampling
// error only.
package fabric

import (
	"fmt"
	"math/rand"

	"vbuscluster/internal/sim"
)

// PipelineMode selects the link signalling discipline.
type PipelineMode int

const (
	// Conventional waits a full propagation delay between words.
	Conventional PipelineMode = iota
	// Wave launches a new word every (accumulated skew + margin).
	Wave
	// SKWP launches a new word every (residual skew + margin); skew is
	// resampled at each hop so it does not accumulate.
	SKWP
)

// String implements fmt.Stringer.
func (m PipelineMode) String() string {
	switch m {
	case Conventional:
		return "conventional"
	case Wave:
		return "wave"
	case SKWP:
		return "skwp"
	default:
		return fmt.Sprintf("PipelineMode(%d)", int(m))
	}
}

// LineSet is the per-line propagation delay profile of one physical
// link. Delays are deterministic for a given seed so experiments are
// reproducible.
type LineSet struct {
	Delays []sim.Time // per-line propagation delay
}

// NewLineSet generates width lines with delays of nominal +/- spread,
// drawn from a seeded PRNG.
func NewLineSet(width int, nominal, spread sim.Time, seed int64) LineSet {
	if width <= 0 {
		panic("fabric: line width must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	d := make([]sim.Time, width)
	for i := range d {
		jitter := sim.Time(rng.Int63n(int64(2*spread+1))) - spread
		d[i] = nominal + jitter
		if d[i] < 1 {
			d[i] = 1
		}
	}
	return LineSet{Delays: d}
}

// Width reports the number of signal lines.
func (ls LineSet) Width() int { return len(ls.Delays) }

// MaxDelay reports the slowest line's propagation delay.
func (ls LineSet) MaxDelay() sim.Time {
	max := sim.Time(0)
	for _, d := range ls.Delays {
		if d > max {
			max = d
		}
	}
	return max
}

// MinDelay reports the fastest line's propagation delay.
func (ls LineSet) MinDelay() sim.Time {
	if len(ls.Delays) == 0 {
		return 0
	}
	min := ls.Delays[0]
	for _, d := range ls.Delays[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Skew reports the spread between the slowest and fastest line. This is
// what bounds the wave launch interval.
func (ls LineSet) Skew() sim.Time { return ls.MaxDelay() - ls.MinDelay() }

// SkewSampler models the automatic skew sampling circuit of §2.1. It
// detects the delay differences between all signal lines, samples each
// signal on a phase grid of the given resolution, and merges them back
// into a single phase. After sampling, the remaining line-to-line skew
// is bounded by the sampling resolution.
type SkewSampler struct {
	// Resolution is the phase-grid step of the sampling circuit. The
	// residual skew after realignment is at most one step.
	Resolution sim.Time
}

// Residual reports the skew left after the sampler realigns the lines.
// A perfectly aligned bundle stays aligned; otherwise the skew collapses
// to at most the sampling resolution.
func (s SkewSampler) Residual(ls LineSet) sim.Time {
	sk := ls.Skew()
	if sk <= s.Resolution {
		return sk
	}
	return s.Resolution
}

// Align returns a new LineSet as seen downstream of the sampler: every
// line delayed to the sampling grid point at or after the slowest line.
// The result's skew is at most the sampler resolution.
func (s SkewSampler) Align(ls LineSet) LineSet {
	if s.Resolution <= 0 {
		panic("fabric: sampler resolution must be positive")
	}
	max := ls.MaxDelay()
	// Round the merge point up to the next grid point.
	grid := ((max + s.Resolution - 1) / s.Resolution) * s.Resolution
	out := LineSet{Delays: make([]sim.Time, len(ls.Delays))}
	for i, d := range ls.Delays {
		// Each line is sampled at the first grid point >= its own
		// arrival, then held until the merge point; downstream all
		// lines present data within one grid step of each other.
		_ = d
		out.Delays[i] = grid
	}
	return out
}

// LinkConfig describes one physical link (one mesh channel).
type LinkConfig struct {
	Mode PipelineMode
	// Lines is the delay profile of the link's signal bundle.
	Lines LineSet
	// Margin is the signalling safety margin added to the skew bound
	// when computing the wave launch interval.
	Margin sim.Time
	// Sampler is the skew sampling circuit; used by SKWP only.
	Sampler SkewSampler
	// Hops the signal has traversed so far without resampling. Plain
	// wave pipelining accumulates skew across hops; SKWP resets it.
	AccumulatedHops int
}

// Link is a unidirectional channel between two routers (or a router and
// a NIC). It computes launch intervals and serialization times from the
// physical model.
type Link struct {
	cfg LinkConfig
}

// NewLink validates the configuration and returns a link.
func NewLink(cfg LinkConfig) (*Link, error) {
	if cfg.Lines.Width() == 0 {
		return nil, fmt.Errorf("fabric: link needs at least one signal line")
	}
	if cfg.Margin < 0 {
		return nil, fmt.Errorf("fabric: negative margin %v", cfg.Margin)
	}
	if cfg.Mode == SKWP && cfg.Sampler.Resolution <= 0 {
		return nil, fmt.Errorf("fabric: SKWP link requires a sampler resolution")
	}
	if cfg.AccumulatedHops < 0 {
		return nil, fmt.Errorf("fabric: negative accumulated hops")
	}
	return &Link{cfg: cfg}, nil
}

// Mode reports the signalling discipline.
func (l *Link) Mode() PipelineMode { return l.cfg.Mode }

// Width reports the number of parallel data lines, i.e. bits moved per
// launch.
func (l *Link) Width() int { return l.cfg.Lines.Width() }

// PropagationDelay is the time for one wavefront to cross the link
// (slowest line).
func (l *Link) PropagationDelay() sim.Time { return l.cfg.Lines.MaxDelay() }

// LaunchInterval is the minimum spacing between consecutive words on
// the link. This is the inverse of link throughput.
func (l *Link) LaunchInterval() sim.Time {
	switch l.cfg.Mode {
	case Conventional:
		// One wave in flight at a time.
		return l.cfg.Lines.MaxDelay() + l.cfg.Margin
	case Wave:
		// Skew accumulates linearly with unsampled hops (paper: "the
		// end-to-end skew between signal lines can be magnified while
		// passing through several wave-pipelined network cards").
		sk := l.cfg.Lines.Skew() * sim.Time(l.cfg.AccumulatedHops+1)
		if pd := l.cfg.Lines.MaxDelay(); sk > pd {
			sk = pd // cannot be worse than conventional
		}
		iv := sk + l.cfg.Margin
		if iv < 1 {
			iv = 1
		}
		return iv
	case SKWP:
		iv := l.cfg.Sampler.Residual(l.cfg.Lines) + l.cfg.Margin
		if iv < 1 {
			iv = 1
		}
		return iv
	default:
		panic(fmt.Sprintf("fabric: unknown mode %v", l.cfg.Mode))
	}
}

// WordsPerSecond reports link throughput in words (Width bits) per
// second.
func (l *Link) WordsPerSecond() float64 {
	return 1.0 / l.LaunchInterval().Seconds()
}

// BandwidthBytesPerSec reports payload bandwidth assuming every line
// carries payload.
func (l *Link) BandwidthBytesPerSec() float64 {
	return l.WordsPerSecond() * float64(l.Width()) / 8.0
}

// SerializationTime is the time to clock nWords onto the link after the
// first word is launched: (n-1) launch intervals plus one propagation.
func (l *Link) SerializationTime(nWords int) sim.Time {
	if nWords <= 0 {
		return 0
	}
	return sim.Time(nWords-1)*l.LaunchInterval() + l.PropagationDelay()
}
