package fabric

import (
	"fmt"

	"vbuscluster/internal/sim"
)

// Path models a multi-hop route built from identical physical links.
// It is used by the card-level microbenchmarks (§2 of the paper) and to
// calibrate the cluster cost model: the mesh simulator in internal/mesh
// handles contention, while Path gives the uncontended pipeline timing.
type Path struct {
	mode          PipelineMode
	lines         LineSet
	margin        sim.Time
	sampler       SkewSampler
	hops          int
	routerLatency sim.Time
	links         []*Link
}

// PathConfig describes a route of hops identical links.
type PathConfig struct {
	Mode          PipelineMode
	Lines         LineSet
	Margin        sim.Time
	Sampler       SkewSampler
	Hops          int
	RouterLatency sim.Time // per-hop routing decision latency
}

// NewPath builds the per-hop links. For Wave mode the accumulated skew
// grows with the hop index; for SKWP every hop starts freshly sampled.
func NewPath(cfg PathConfig) (*Path, error) {
	if cfg.Hops <= 0 {
		return nil, fmt.Errorf("fabric: path needs at least one hop, got %d", cfg.Hops)
	}
	if cfg.RouterLatency < 0 {
		return nil, fmt.Errorf("fabric: negative router latency")
	}
	p := &Path{
		mode:          cfg.Mode,
		lines:         cfg.Lines,
		margin:        cfg.Margin,
		sampler:       cfg.Sampler,
		hops:          cfg.Hops,
		routerLatency: cfg.RouterLatency,
	}
	for h := 0; h < cfg.Hops; h++ {
		acc := 0
		if cfg.Mode == Wave {
			acc = h
		}
		l, err := NewLink(LinkConfig{
			Mode:            cfg.Mode,
			Lines:           cfg.Lines,
			Margin:          cfg.Margin,
			Sampler:         cfg.Sampler,
			AccumulatedHops: acc,
		})
		if err != nil {
			return nil, err
		}
		p.links = append(p.links, l)
	}
	return p, nil
}

// Hops reports the hop count.
func (p *Path) Hops() int { return p.hops }

// BottleneckInterval is the largest launch interval along the path; in
// a wormhole pipeline it bounds the end-to-end word rate.
func (p *Path) BottleneckInterval() sim.Time {
	max := sim.Time(0)
	for _, l := range p.links {
		if iv := l.LaunchInterval(); iv > max {
			max = iv
		}
	}
	return max
}

// HeadLatency is the time for the first word to reach the destination:
// per-hop propagation plus per-hop router latency.
func (p *Path) HeadLatency() sim.Time {
	var t sim.Time
	for _, l := range p.links {
		t += l.PropagationDelay() + p.routerLatency
	}
	return t
}

// TransferTime is the end-to-end time to move nWords through the
// wormhole pipeline: head latency + (n-1) bottleneck intervals.
func (p *Path) TransferTime(nWords int) sim.Time {
	if nWords <= 0 {
		return 0
	}
	return p.HeadLatency() + sim.Time(nWords-1)*p.BottleneckInterval()
}

// EffectiveBandwidth reports sustained payload bytes/sec for a transfer
// of nWords over this path, with width bits per word.
func (p *Path) EffectiveBandwidth(nWords int) float64 {
	t := p.TransferTime(nWords)
	if t <= 0 {
		return 0
	}
	bytes := float64(nWords) * float64(p.lines.Width()) / 8.0
	return bytes / t.Seconds()
}
