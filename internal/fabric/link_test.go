package fabric

import (
	"testing"
	"testing/quick"

	"vbuscluster/internal/sim"
)

// Standard test bundle: 32 lines, 40ns nominal propagation, +/-4ns skew
// spread, 2ns margin, 8ns sampler resolution. These mirror the
// calibration used by internal/cluster.
func testLines() LineSet {
	return NewLineSet(32, 40*sim.Nanosecond, 4*sim.Nanosecond, 1)
}

func mustLink(t *testing.T, cfg LinkConfig) *Link {
	t.Helper()
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLineSetStats(t *testing.T) {
	ls := LineSet{Delays: []sim.Time{10, 30, 20}}
	if ls.MaxDelay() != 30 || ls.MinDelay() != 10 || ls.Skew() != 20 {
		t.Fatalf("stats = max %v min %v skew %v", ls.MaxDelay(), ls.MinDelay(), ls.Skew())
	}
	if ls.Width() != 3 {
		t.Fatalf("width = %d", ls.Width())
	}
}

func TestNewLineSetDeterministic(t *testing.T) {
	a := NewLineSet(64, 40*sim.Nanosecond, 4*sim.Nanosecond, 7)
	b := NewLineSet(64, 40*sim.Nanosecond, 4*sim.Nanosecond, 7)
	for i := range a.Delays {
		if a.Delays[i] != b.Delays[i] {
			t.Fatal("same seed produced different line sets")
		}
	}
	c := NewLineSet(64, 40*sim.Nanosecond, 4*sim.Nanosecond, 8)
	same := true
	for i := range a.Delays {
		if a.Delays[i] != c.Delays[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical line sets")
	}
}

func TestNewLineSetBounds(t *testing.T) {
	ls := NewLineSet(128, 40*sim.Nanosecond, 4*sim.Nanosecond, 3)
	for _, d := range ls.Delays {
		if d < 36*sim.Nanosecond || d > 44*sim.Nanosecond {
			t.Fatalf("line delay %v outside nominal +/- spread", d)
		}
	}
}

func TestConventionalIntervalIsPropagation(t *testing.T) {
	ls := testLines()
	l := mustLink(t, LinkConfig{Mode: Conventional, Lines: ls, Margin: 2 * sim.Nanosecond})
	want := ls.MaxDelay() + 2*sim.Nanosecond
	if l.LaunchInterval() != want {
		t.Fatalf("conventional interval = %v, want %v", l.LaunchInterval(), want)
	}
}

func TestWaveIntervalIsSkewBound(t *testing.T) {
	ls := testLines()
	l := mustLink(t, LinkConfig{Mode: Wave, Lines: ls, Margin: 2 * sim.Nanosecond})
	want := ls.Skew() + 2*sim.Nanosecond
	if l.LaunchInterval() != want {
		t.Fatalf("wave interval = %v, want %v", l.LaunchInterval(), want)
	}
	if l.LaunchInterval() >= ls.MaxDelay() {
		t.Fatal("wave pipelining should beat conventional on this bundle")
	}
}

func TestWaveSkewAccumulatesAcrossHops(t *testing.T) {
	ls := testLines()
	iv := make([]sim.Time, 4)
	for h := 0; h < 4; h++ {
		l := mustLink(t, LinkConfig{Mode: Wave, Lines: ls, Margin: 2 * sim.Nanosecond, AccumulatedHops: h})
		iv[h] = l.LaunchInterval()
	}
	for h := 1; h < 4; h++ {
		if iv[h] < iv[h-1] {
			t.Fatalf("wave interval shrank with hops: %v", iv)
		}
	}
	if iv[3] == iv[0] {
		t.Fatalf("wave interval did not grow with accumulated hops: %v", iv)
	}
}

func TestWaveIntervalCappedAtConventional(t *testing.T) {
	ls := testLines()
	l := mustLink(t, LinkConfig{Mode: Wave, Lines: ls, Margin: 2 * sim.Nanosecond, AccumulatedHops: 1000})
	conv := mustLink(t, LinkConfig{Mode: Conventional, Lines: ls, Margin: 2 * sim.Nanosecond})
	if l.LaunchInterval() > conv.LaunchInterval() {
		t.Fatalf("degenerate wave link (%v) worse than conventional (%v)", l.LaunchInterval(), conv.LaunchInterval())
	}
}

func TestSKWPIntervalConstantAcrossHops(t *testing.T) {
	ls := testLines()
	samp := SkewSampler{Resolution: 8 * sim.Nanosecond}
	var first sim.Time
	for h := 0; h < 8; h++ {
		l := mustLink(t, LinkConfig{Mode: SKWP, Lines: ls, Margin: 2 * sim.Nanosecond, Sampler: samp, AccumulatedHops: h})
		if h == 0 {
			first = l.LaunchInterval()
		} else if l.LaunchInterval() != first {
			t.Fatalf("SKWP interval changed with hops: %v vs %v", l.LaunchInterval(), first)
		}
	}
}

// §2.1: "SKWP increases the bandwidth up to four times higher than
// conventional pipelining."
func TestSKWPRoughlyFourTimesConventional(t *testing.T) {
	ls := testLines()
	samp := SkewSampler{Resolution: 8 * sim.Nanosecond}
	skwp := mustLink(t, LinkConfig{Mode: SKWP, Lines: ls, Margin: 2 * sim.Nanosecond, Sampler: samp})
	conv := mustLink(t, LinkConfig{Mode: Conventional, Lines: ls, Margin: 2 * sim.Nanosecond})
	ratio := skwp.BandwidthBytesPerSec() / conv.BandwidthBytesPerSec()
	if ratio < 3.0 || ratio > 6.0 {
		t.Fatalf("SKWP/conventional bandwidth ratio = %.2f, want ~4x", ratio)
	}
}

func TestSamplerResidual(t *testing.T) {
	samp := SkewSampler{Resolution: 8 * sim.Nanosecond}
	big := LineSet{Delays: []sim.Time{10 * sim.Nanosecond, 50 * sim.Nanosecond}}
	if r := samp.Residual(big); r != 8*sim.Nanosecond {
		t.Fatalf("residual of large skew = %v, want resolution", r)
	}
	small := LineSet{Delays: []sim.Time{10 * sim.Nanosecond, 12 * sim.Nanosecond}}
	if r := samp.Residual(small); r != 2*sim.Nanosecond {
		t.Fatalf("residual of small skew = %v, want 2ns", r)
	}
}

func TestSamplerAlign(t *testing.T) {
	samp := SkewSampler{Resolution: 8 * sim.Nanosecond}
	ls := LineSet{Delays: []sim.Time{11 * sim.Nanosecond, 37 * sim.Nanosecond, 20 * sim.Nanosecond}}
	out := samp.Align(ls)
	if out.Skew() > samp.Resolution {
		t.Fatalf("aligned skew %v exceeds resolution %v", out.Skew(), samp.Resolution)
	}
	if out.MaxDelay() < ls.MaxDelay() {
		t.Fatal("sampler cannot make signals arrive earlier than slowest line")
	}
	if out.MaxDelay()%samp.Resolution != 0 {
		t.Fatalf("merge point %v not on sampling grid", out.MaxDelay())
	}
}

func TestSamplerAlignProperty(t *testing.T) {
	f := func(seed int64, widthRaw uint8) bool {
		width := int(widthRaw%32) + 1
		ls := NewLineSet(width, 40*sim.Nanosecond, 10*sim.Nanosecond, seed)
		samp := SkewSampler{Resolution: 4 * sim.Nanosecond}
		out := samp.Align(ls)
		return out.Skew() <= samp.Resolution && out.MaxDelay() >= ls.MaxDelay() && out.Width() == width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationTime(t *testing.T) {
	ls := testLines()
	l := mustLink(t, LinkConfig{Mode: Conventional, Lines: ls, Margin: 0})
	if l.SerializationTime(0) != 0 {
		t.Fatal("zero words should take zero time")
	}
	if l.SerializationTime(1) != l.PropagationDelay() {
		t.Fatal("single word should take one propagation delay")
	}
	ten := l.SerializationTime(10)
	want := 9*l.LaunchInterval() + l.PropagationDelay()
	if ten != want {
		t.Fatalf("10-word serialization = %v, want %v", ten, want)
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(LinkConfig{}); err == nil {
		t.Fatal("empty link config accepted")
	}
	ls := testLines()
	if _, err := NewLink(LinkConfig{Mode: SKWP, Lines: ls}); err == nil {
		t.Fatal("SKWP without sampler accepted")
	}
	if _, err := NewLink(LinkConfig{Mode: Conventional, Lines: ls, Margin: -1}); err == nil {
		t.Fatal("negative margin accepted")
	}
	if _, err := NewLink(LinkConfig{Mode: Conventional, Lines: ls, AccumulatedHops: -1}); err == nil {
		t.Fatal("negative hops accepted")
	}
}

func TestModeString(t *testing.T) {
	if Conventional.String() != "conventional" || Wave.String() != "wave" || SKWP.String() != "skwp" {
		t.Fatal("mode strings wrong")
	}
	if PipelineMode(42).String() == "" {
		t.Fatal("unknown mode should still stringify")
	}
}
