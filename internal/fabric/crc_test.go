package fabric

import (
	"testing"
	"testing/quick"
)

func TestChecksumDetectsAnySingleBitFlip(t *testing.T) {
	payload := []float64{0, 1, -1, 3.14159, 1e300, -1e-300, 42, 0.5}
	fcs := Checksum(payload)
	if !Verify(payload, fcs) {
		t.Fatal("fresh payload fails its own FCS")
	}
	for bit := 0; bit < len(payload)*64; bit++ {
		corrupted := append([]float64(nil), payload...)
		FlipBit(corrupted, bit)
		if Verify(corrupted, fcs) {
			t.Fatalf("bit flip at %d undetected", bit)
		}
		// Flipping the same bit back must restore the payload.
		FlipBit(corrupted, bit)
		if !Verify(corrupted, fcs) {
			t.Fatalf("double flip at %d does not restore the payload", bit)
		}
	}
}

func TestChecksumDeterministic(t *testing.T) {
	f := func(words []float64) bool {
		return Checksum(words) == Checksum(append([]float64(nil), words...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipBitEdgeCases(t *testing.T) {
	FlipBit(nil, 5) // must not panic
	w := []float64{1}
	FlipBit(w, -3)
	FlipBit(w, -3)
	if w[0] != 1 {
		t.Errorf("negative bit index did not round-trip: %v", w[0])
	}
	FlipBit(w, 64) // reduces to bit 0
	FlipBit(w, 0)
	if w[0] != 1 {
		t.Errorf("modular bit index did not round-trip: %v", w[0])
	}
}
