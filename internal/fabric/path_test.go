package fabric

import (
	"testing"

	"vbuscluster/internal/sim"
)

func stdPath(t *testing.T, mode PipelineMode, hops int) *Path {
	t.Helper()
	p, err := NewPath(PathConfig{
		Mode:          mode,
		Lines:         testLines(),
		Margin:        2 * sim.Nanosecond,
		Sampler:       SkewSampler{Resolution: 8 * sim.Nanosecond},
		Hops:          hops,
		RouterLatency: 60 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPathValidation(t *testing.T) {
	if _, err := NewPath(PathConfig{Lines: testLines(), Hops: 0}); err == nil {
		t.Fatal("zero-hop path accepted")
	}
	if _, err := NewPath(PathConfig{Lines: testLines(), Hops: 1, RouterLatency: -1}); err == nil {
		t.Fatal("negative router latency accepted")
	}
}

func TestHeadLatencyScalesWithHops(t *testing.T) {
	p1 := stdPath(t, SKWP, 1)
	p3 := stdPath(t, SKWP, 3)
	if p3.HeadLatency() != 3*p1.HeadLatency() {
		t.Fatalf("head latency 3 hops = %v, want 3x of %v", p3.HeadLatency(), p1.HeadLatency())
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	p := stdPath(t, SKWP, 4)
	prev := sim.Time(-1)
	for _, n := range []int{0, 1, 2, 16, 256, 4096} {
		tt := p.TransferTime(n)
		if tt <= prev && n > 0 {
			t.Fatalf("transfer time not increasing at n=%d: %v <= %v", n, tt, prev)
		}
		prev = tt
	}
}

// The paper's motivation for SKWP: plain wave pipelining degrades with
// path length because skew accumulates; SKWP does not.
func TestWaveDegradesSKWPDoesNot(t *testing.T) {
	wave1 := stdPath(t, Wave, 1).BottleneckInterval()
	wave6 := stdPath(t, Wave, 6).BottleneckInterval()
	if wave6 <= wave1 {
		t.Fatalf("wave bottleneck did not degrade with hops: %v vs %v", wave6, wave1)
	}
	skwp1 := stdPath(t, SKWP, 1).BottleneckInterval()
	skwp6 := stdPath(t, SKWP, 6).BottleneckInterval()
	if skwp6 != skwp1 {
		t.Fatalf("SKWP bottleneck changed with hops: %v vs %v", skwp6, skwp1)
	}
}

func TestEffectiveBandwidthApproachesLinkRate(t *testing.T) {
	p := stdPath(t, SKWP, 2)
	small := p.EffectiveBandwidth(4)
	large := p.EffectiveBandwidth(1 << 16)
	if large <= small {
		t.Fatalf("bandwidth should grow with message size: small %.0f large %.0f", small, large)
	}
	l, err := NewLink(LinkConfig{Mode: SKWP, Lines: testLines(), Margin: 2 * sim.Nanosecond, Sampler: SkewSampler{Resolution: 8 * sim.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	peak := l.BandwidthBytesPerSec()
	if large > peak {
		t.Fatalf("effective bandwidth %.0f exceeds link peak %.0f", large, peak)
	}
	if large < 0.9*peak {
		t.Fatalf("large-message bandwidth %.0f should approach peak %.0f", large, peak)
	}
}

func TestSKWPPathBeatsConventionalFourX(t *testing.T) {
	n := 1 << 14
	conv := stdPath(t, Conventional, 3).EffectiveBandwidth(n)
	skwp := stdPath(t, SKWP, 3).EffectiveBandwidth(n)
	ratio := skwp / conv
	if ratio < 3.0 || ratio > 6.0 {
		t.Fatalf("SKWP/conventional path bandwidth ratio = %.2f, want ~4", ratio)
	}
}

func TestZeroWordTransfer(t *testing.T) {
	p := stdPath(t, Conventional, 2)
	if p.TransferTime(0) != 0 {
		t.Fatal("zero-word transfer should be free")
	}
	if p.EffectiveBandwidth(0) != 0 {
		t.Fatal("zero-word bandwidth should be zero")
	}
}
