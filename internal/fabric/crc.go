package fabric

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// crcTable is the Castagnoli polynomial table — the FCS the V-Bus
// card's FPGA appends to every packet on the wire.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the frame check sequence of a packet payload of
// machine words (CRC-32C over the little-endian byte image, the order
// the DMA engine streams them out in).
func Checksum(words []float64) uint32 {
	var buf [8]byte
	crc := uint32(0)
	for _, w := range words {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w))
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	return crc
}

// Verify reports whether the payload still matches its frame check
// sequence.
func Verify(words []float64, fcs uint32) bool {
	return Checksum(words) == fcs
}

// FlipBit corrupts one bit of the payload in place — the single-event
// upset the fault injector models. bit indexes the payload's bit image;
// it is reduced modulo the payload size, so any non-negative value is
// valid for a non-empty payload.
func FlipBit(words []float64, bit int) {
	if len(words) == 0 {
		return
	}
	bit %= len(words) * 64
	if bit < 0 {
		bit += len(words) * 64
	}
	i, b := bit/64, uint(bit%64)
	words[i] = math.Float64frombits(math.Float64bits(words[i]) ^ (1 << b))
}
