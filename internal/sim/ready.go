package sim

import "container/heap"

// ReadyQueue orders opaque items by (Time, sequence): the same
// discipline the engine's event queue uses, exposed for higher layers
// that schedule runnable work outside the single-threaded engine. The
// interpreter's bounded worker pool keys parked ranks by their virtual
// clock so a freed worker slot always resumes the furthest-behind
// rank, mirroring the engine's deterministic lowest-time-first order.
//
// ReadyQueue is not safe for concurrent use; callers serialize access
// with their own lock.
type ReadyQueue struct {
	items  readyHeap
	nextID uint64
}

// NewReadyQueue returns an empty queue.
func NewReadyQueue() *ReadyQueue { return &ReadyQueue{} }

// Len reports the number of queued items.
func (q *ReadyQueue) Len() int { return len(q.items) }

// Push enqueues v keyed by time at. Items pushed with equal times pop
// in push order.
func (q *ReadyQueue) Push(at Time, v any) {
	heap.Push(&q.items, readyItem{at: at, seq: q.nextID, v: v})
	q.nextID++
}

// Pop removes and returns the item with the lowest (time, sequence)
// key. ok is false on an empty queue.
func (q *ReadyQueue) Pop() (v any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	it := heap.Pop(&q.items).(readyItem)
	return it.v, true
}

type readyItem struct {
	at  Time
	seq uint64
	v   any
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
