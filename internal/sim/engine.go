// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives the cycle-level models in internal/fabric and
// internal/mesh. Virtual time is measured in integer picoseconds so that
// link-level models (which care about sub-nanosecond skew) and
// cluster-level models (which care about microseconds) share one clock
// without floating-point drift.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in picoseconds.
type Time int64

// Common time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromSeconds converts floating-point seconds to virtual time, rounding
// to the nearest picosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Event is a scheduled callback. Events with equal times fire in the
// order of their sequence numbers (i.e. scheduling order), which makes
// the engine fully deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// Time reports when the event is scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// higher layers that need concurrency (the MPI runtime) keep per-process
// clocks instead and reconcile them at synchronization points.
type Engine struct {
	now    Time
	nextID uint64
	queue  eventQueue
	fired  uint64
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled (including cancelled
// ones not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: that is always a model bug, and silently clamping would mask
// causality violations.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.nextID, fn: fn}
	e.nextID++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time <= deadline. The clock ends at
// min(deadline, last event time). It reports whether any events remain.
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			e.now = deadline
			return true
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return false
}

// RunFor advances the clock by d, firing due events.
func (e *Engine) RunFor(d Time) bool { return e.RunUntil(e.now + d) }
