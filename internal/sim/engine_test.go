package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroEngineUsable(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("zero engine Now = %v, want 0", e.Now())
	}
	ran := false
	e.After(5*Nanosecond, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
	if e.Now() != 5*Nanosecond {
		t.Fatalf("Now = %v, want 5ns", e.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events fired out of scheduling order: %v", got)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulingFromEvent(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.At(10, func() {
		trace = append(trace, e.Now())
		e.After(15, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 25 {
		t.Fatalf("trace = %v, want [10 25]", trace)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*10, func() { count++ })
	}
	remaining := e.RunUntil(55)
	if count != 5 {
		t.Fatalf("fired %d events by t=55, want 5", count)
	}
	if !remaining {
		t.Fatal("RunUntil reported no remaining events")
	}
	if e.Now() != 55 {
		t.Fatalf("Now = %v, want 55", e.Now())
	}
	if e.RunUntil(1000) {
		t.Fatal("RunUntil reported remaining events after draining")
	}
	if count != 10 {
		t.Fatalf("fired %d events total, want 10", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("idle RunUntil left Now = %v, want 500", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine()
	e.RunFor(100)
	e.RunFor(100)
	if e.Now() != 200 {
		t.Fatalf("Now = %v, want 200", e.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2ns"},
		{3 * Microsecond, "3us"},
		{4 * Millisecond, "4ms"},
		{5 * Second, "5s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	// Bounded to ~16s of virtual time: beyond 2^53 ps float64 cannot
	// represent Time exactly and the round trip legitimately drifts.
	f := func(us uint32) bool {
		t := Time(us%16_000_000) * Microsecond
		return FromSeconds(t.Seconds()) == t
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order.
func TestOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fireTimes []Time
		for i := 0; i < n; i++ {
			e.At(Time(rng.Intn(1000)), func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
