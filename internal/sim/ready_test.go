package sim

import "testing"

func TestReadyQueueOrder(t *testing.T) {
	q := NewReadyQueue()
	q.Push(30*Nanosecond, "c")
	q.Push(10*Nanosecond, "a")
	q.Push(20*Nanosecond, "b")
	want := []string{"a", "b", "c"}
	for _, w := range want {
		v, ok := q.Pop()
		if !ok || v.(string) != w {
			t.Fatalf("Pop = %v, %v; want %q", v, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
}

func TestReadyQueueTiesPopInPushOrder(t *testing.T) {
	q := NewReadyQueue()
	for i := 0; i < 5; i++ {
		q.Push(Microsecond, i)
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v.(int) != i {
			t.Fatalf("tie %d popped as %v, %v", i, v, ok)
		}
	}
}

func TestReadyQueueLen(t *testing.T) {
	q := NewReadyQueue()
	if q.Len() != 0 {
		t.Fatalf("empty Len = %d", q.Len())
	}
	q.Push(0, nil)
	q.Push(Second, nil)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Fatalf("Len after Pop = %d, want 1", q.Len())
	}
}
